// Package segment implements the paper's acceleration-based stroke
// segmentation (§III-B): locating start and end frames of individual
// strokes within a continuous Doppler profile by detecting abrupt changes
// in the profile's first-order differential.
//
// The key insight is that writing a stroke is a short, high-acceleration
// movement, while interference — repositioning the hand between strokes, a
// bystander walking past — sustains speed but not acceleration, so an
// acceleration gate separates them.
package segment

import (
	"fmt"
	"math"

	"repro/internal/dsp"
)

// Config holds the segmentation thresholds.
type Config struct {
	// StartThreshold is β: the |acceleration| (Hz per frame, as produced
	// by Eq. 2 over the per-frame profile) above which a stroke is
	// considered underway. The paper quotes 40, but derives it from a
	// Hz-per-second argument (Eq. 4) while Eq. 2 operates per frame
	// (23 ms hops), so the paper's own units are ambiguous; our
	// calibrated motion model yields stroke onsets of 12–20 Hz/frame and
	// repositioning under 5 Hz/frame, so DefaultConfig gates at 10. The
	// paper's γ = β/2 relation is preserved.
	StartThreshold float64
	// EndThreshold is γ: strokes end when |acceleration| stays below γ
	// for EndRun consecutive frames.
	EndThreshold float64
	// StartRun is the number of consecutive frames |acceleration| must
	// exceed β before a stroke onset is accepted; it rejects isolated
	// acceleration spikes from contour noise during repositioning. Zero
	// means 2. (The paper triggers on a single point; its 40-unit β is
	// high enough that spikes do not reach it.)
	StartRun int
	// EndRun is the number of consecutive quiet frames ending a stroke
	// (paper: a point and its following nine → 10).
	EndRun int
	// EndSpeedFloor requires the |Doppler shift| itself to be below this
	// many Hz during the quiet run, so the slow mid-stroke plateaus of
	// long curved strokes (S5) are not mistaken for stroke ends. Zero
	// disables the check (the paper's literal rule).
	EndSpeedFloor float64
	// MinFrames discards segments shorter than this many frames
	// (spurious blips); zero means 4.
	MinFrames int
	// MaxFrames truncates runaway segments; zero means 60 (≈1.4 s, the
	// paper's "no more than 1 second" stroke bound with margin).
	MaxFrames int
}

// DefaultConfig returns thresholds calibrated for the canonical stroke
// shapes (see StartThreshold doc).
func DefaultConfig() Config {
	return Config{
		StartThreshold: 8,
		EndThreshold:   4,
		StartRun:       2,
		EndRun:         10,
		EndSpeedFloor:  16,
		MinFrames:      4,
		MaxFrames:      60,
	}
}

// Validate checks threshold sanity.
func (c Config) Validate() error {
	if c.StartThreshold <= 0 {
		return fmt.Errorf("segment: start threshold must be positive, got %g", c.StartThreshold)
	}
	if c.EndThreshold <= 0 || c.EndThreshold > c.StartThreshold {
		return fmt.Errorf("segment: end threshold must be in (0, %g], got %g", c.StartThreshold, c.EndThreshold)
	}
	if c.EndRun <= 0 {
		return fmt.Errorf("segment: end run must be positive, got %d", c.EndRun)
	}
	return nil
}

// Segment is one detected stroke interval, inclusive frame indices.
type Segment struct {
	Start, End int
}

// Len returns the segment length in frames.
func (s Segment) Len() int { return s.End - s.Start + 1 }

// Detect finds stroke segments in a Doppler profile (Hz per frame).
func Detect(profile []float64, cfg Config) ([]Segment, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	minFrames := cfg.MinFrames
	if minFrames == 0 {
		minFrames = 4
	}
	maxFrames := cfg.MaxFrames
	if maxFrames == 0 {
		maxFrames = 60
	}
	n := len(profile)
	if n == 0 {
		return nil, nil
	}
	startRun := cfg.StartRun
	if startRun == 0 {
		startRun = 2
	}
	acc := dsp.SmoothDerivative(profile)
	// quiet reports whether frame k is below the end thresholds. It
	// captures only loop invariants, so it is hoisted out of the
	// per-segment scan rather than allocated each iteration.
	quiet := func(k int) bool {
		if math.Abs(acc[k]) >= cfg.EndThreshold {
			return false
		}
		return cfg.EndSpeedFloor <= 0 || math.Abs(profile[k]) < cfg.EndSpeedFloor
	}
	var segs []Segment
	i := 0
	for i < n {
		// Find the first point P opening a run of startRun frames with
		// |acc| above β.
		p := -1
		for ; i < n; i++ {
			if math.Abs(acc[i]) <= cfg.StartThreshold {
				continue
			}
			run := 1
			for k := i + 1; k < n && run < startRun; k++ {
				if math.Abs(acc[k]) > cfg.StartThreshold {
					run++
				} else {
					break
				}
			}
			if run >= startRun {
				p = i
				break
			}
		}
		if p < 0 {
			break
		}
		// Search backward from P for the point whose shift is closest to
		// zero — the stroke's true start.
		start := p
		bestAbs := math.Abs(profile[p])
		for j := p - 1; j >= 0; j-- {
			a := math.Abs(profile[j])
			if a <= bestAbs {
				bestAbs = a
				start = j
			} else {
				break
			}
			// Zero shift is assigned literally by mvce for frames with no
			// active pixels, never computed, so exact equality is the
			// right test for "the contour touched rest".
			// ew:exact
			if a == 0 {
				break
			}
			if p-j > maxFrames {
				break
			}
		}
		if len(segs) > 0 && start <= segs[len(segs)-1].End {
			start = segs[len(segs)-1].End + 1
		}
		// Scan forward for a run of EndRun quiet frames.
		end := -1
		for j := p + 1; j < n; j++ {
			if j-start+1 >= maxFrames {
				end = j
				break
			}
			if !quiet(j) {
				continue
			}
			run := 1
			for k := j + 1; k < n && run < cfg.EndRun; k++ {
				if quiet(k) {
					run++
				} else {
					break
				}
			}
			if run >= cfg.EndRun {
				end = j
				break
			}
			// Skip past the partial quiet run.
			j += run - 1
		}
		if end < 0 {
			end = n - 1
		}
		if end-start+1 >= minFrames && start <= end {
			// ew:allow hotprop: one append per detected stroke — a few per
			// window at most, not per-frame work.
			segs = append(segs, Segment{Start: start, End: end})
		}
		i = end + 1
	}
	return segs, nil
}

// Slice returns the sub-profile covered by seg. It validates bounds.
func Slice(profile []float64, seg Segment) ([]float64, error) {
	if seg.Start < 0 || seg.End >= len(profile) || seg.Start > seg.End {
		return nil, fmt.Errorf("segment: segment [%d,%d] out of bounds for profile of %d frames",
			seg.Start, seg.End, len(profile))
	}
	return profile[seg.Start : seg.End+1], nil
}

// DetectEnergy is a baseline segmenter for the ablation study: it
// thresholds |profile| directly (an energy/speed gate rather than an
// acceleration gate), which cannot distinguish a slowly pacing bystander
// from a stroke.
func DetectEnergy(profile []float64, speedThresholdHz float64, minFrames int) []Segment {
	if minFrames <= 0 {
		minFrames = 4
	}
	var segs []Segment
	start := -1
	for i, v := range profile {
		active := math.Abs(v) > speedThresholdHz
		switch {
		case active && start < 0:
			start = i
		case !active && start >= 0:
			if i-start >= minFrames {
				segs = append(segs, Segment{Start: start, End: i - 1})
			}
			start = -1
		}
	}
	if start >= 0 && len(profile)-start >= minFrames {
		segs = append(segs, Segment{Start: start, End: len(profile) - 1})
	}
	return segs
}
