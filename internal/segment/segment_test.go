package segment

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// bell synthesizes a positive Doppler bell of the given peak and width
// starting at frame start, resembling one stroke.
func bell(profile []float64, start, width int, peak float64) {
	for i := 0; i < width; i++ {
		x := float64(i) / float64(width-1)
		profile[start+i] += peak * math.Sin(math.Pi*x) * math.Sin(math.Pi*x)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.StartThreshold = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero β accepted")
	}
	bad = DefaultConfig()
	bad.EndThreshold = bad.StartThreshold * 2
	if err := bad.Validate(); err == nil {
		t.Error("γ > β accepted")
	}
	bad = DefaultConfig()
	bad.EndRun = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero end run accepted")
	}
}

func TestDetectEmptyAndFlat(t *testing.T) {
	segs, err := Detect(nil, DefaultConfig())
	if err != nil || len(segs) != 0 {
		t.Errorf("nil profile: %v, %v", segs, err)
	}
	flat := make([]float64, 100)
	segs, err = Detect(flat, DefaultConfig())
	if err != nil || len(segs) != 0 {
		t.Errorf("flat profile: %v, %v", segs, err)
	}
}

func TestDetectSingleStroke(t *testing.T) {
	profile := make([]float64, 80)
	bell(profile, 20, 14, 100)
	segs, err := Detect(profile, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("found %d segments, want 1: %v", len(segs), segs)
	}
	s := segs[0]
	if s.Start < 16 || s.Start > 23 {
		t.Errorf("start = %d, want ≈20", s.Start)
	}
	if s.End < 30 || s.End > 46 {
		t.Errorf("end = %d, want ≈34", s.End)
	}
}

func TestDetectTwoStrokes(t *testing.T) {
	profile := make([]float64, 140)
	bell(profile, 20, 14, 110)
	bell(profile, 80, 14, -120)
	segs, err := Detect(profile, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("found %d segments, want 2: %v", len(segs), segs)
	}
	if segs[0].End >= segs[1].Start {
		t.Errorf("segments overlap: %v", segs)
	}
}

func TestDetectIgnoresSlowDrift(t *testing.T) {
	// A walking bystander: large but slowly varying shift (acceleration
	// below β) must not segment.
	profile := make([]float64, 300)
	for i := range profile {
		profile[i] = 70 * math.Sin(2*math.Pi*float64(i)/260)
	}
	segs, err := Detect(profile, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Errorf("slow drift segmented: %v", segs)
	}
}

func TestDetectStrokeAmidDrift(t *testing.T) {
	// A stroke superimposed on slow drift should still be found.
	profile := make([]float64, 200)
	for i := range profile {
		profile[i] = 12 * math.Sin(2*math.Pi*float64(i)/180)
	}
	bell(profile, 90, 12, 130)
	segs, err := Detect(profile, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("found %d segments, want 1: %v", len(segs), segs)
	}
	if segs[0].Start < 80 || segs[0].Start > 95 {
		t.Errorf("start = %d, want ≈90", segs[0].Start)
	}
}

func TestDetectRespectsMinFrames(t *testing.T) {
	profile := make([]float64, 60)
	// A 3-frame blip with a huge jump. The detected segment includes the
	// quiet-run margin around the blip (roughly EndRun frames), so the
	// gate must exceed that to reject it.
	profile[20], profile[21], profile[22] = 100, 120, 100
	cfg := DefaultConfig()
	cfg.MinFrames = 14
	segs, err := Detect(profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 0 {
		t.Errorf("blip segmented: %v", segs)
	}
}

func TestDetectTruncatesAtMaxFrames(t *testing.T) {
	// A never-ending oscillation gets chopped at MaxFrames.
	profile := make([]float64, 400)
	for i := range profile {
		profile[i] = 100 * math.Sin(2*math.Pi*float64(i)/16)
	}
	cfg := DefaultConfig()
	cfg.MaxFrames = 50
	segs, err := Detect(profile, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("no segments found")
	}
	for _, s := range segs {
		if s.Len() > 50 {
			t.Errorf("segment %v longer than MaxFrames", s)
		}
	}
}

func TestSegmentsDisjointOrderedProperty(t *testing.T) {
	// Property: detected segments are disjoint, ordered, in bounds.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		profile := make([]float64, 250)
		n := rng.IntN(4)
		pos := 15
		for i := 0; i < n && pos < 200; i++ {
			w := 10 + rng.IntN(10)
			peak := (60 + rng.Float64()*80) * float64(1-2*rng.IntN(2))
			bell(profile, pos, w, peak)
			pos += w + 15 + rng.IntN(30)
		}
		segs, err := Detect(profile, DefaultConfig())
		if err != nil {
			return false
		}
		prevEnd := -1
		for _, s := range segs {
			if s.Start < 0 || s.End >= len(profile) || s.Start > s.End {
				return false
			}
			if s.Start <= prevEnd {
				return false
			}
			prevEnd = s.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSlice(t *testing.T) {
	p := []float64{0, 1, 2, 3, 4}
	s, err := Slice(p, Segment{Start: 1, End: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 3 || s[0] != 1 || s[2] != 3 {
		t.Errorf("slice = %v", s)
	}
	for _, bad := range []Segment{{-1, 2}, {0, 5}, {3, 2}} {
		if _, err := Slice(p, bad); err == nil {
			t.Errorf("segment %v accepted", bad)
		}
	}
}

func TestDetectEnergyBaseline(t *testing.T) {
	profile := make([]float64, 100)
	bell(profile, 20, 14, 100)
	segs := DetectEnergy(profile, 25, 4)
	if len(segs) != 1 {
		t.Fatalf("energy baseline found %d segments, want 1", len(segs))
	}
	// The baseline's known weakness: slow drift above the threshold is
	// segmented as if it were a stroke.
	drift := make([]float64, 300)
	for i := range drift {
		drift[i] = 70 * math.Sin(2*math.Pi*float64(i)/260)
	}
	if segs := DetectEnergy(drift, 25, 4); len(segs) == 0 {
		t.Error("energy baseline unexpectedly rejected drift — it should be fooled")
	}
	// Trailing active region is closed at the profile end.
	tail := make([]float64, 30)
	for i := 20; i < 30; i++ {
		tail[i] = 50
	}
	if segs := DetectEnergy(tail, 25, 4); len(segs) != 1 || segs[0].End != 29 {
		t.Errorf("tail handling wrong: %v", segs)
	}
}

func TestSegmentLen(t *testing.T) {
	if (Segment{Start: 3, End: 7}).Len() != 5 {
		t.Error("Len wrong")
	}
}
