// Package schemeopt implements the paper's §VII-C future work: support
// for user-defined input schemes. It provides the two pieces the paper
// says a self-adjusting EchoWrite needs:
//
//  1. an automatic checker that decides whether a proposed gesture set /
//     letter grouping is usable — gesture Doppler templates must stay
//     mutually distinguishable and the dictionary must not collapse into
//     too-ambiguous stroke sequences; and
//  2. an optimizer that searches letter→stroke groupings minimizing
//     dictionary ambiguity under a workload, so a user who redefines
//     gestures still gets an efficient scheme.
package schemeopt

import (
	"fmt"
	"math"

	"repro/internal/dtw"
	"repro/internal/lexicon"
	"repro/internal/stroke"
)

// CheckReport is the outcome of validating a gesture/scheme combination.
type CheckReport struct {
	// MinTemplateDistance is the smallest pairwise DTW distance between
	// stroke templates (Hz per aligned frame).
	MinTemplateDistance float64
	// TightestPair names the closest template pair ("S2-S6").
	TightestPair string
	// MeanCollisions is the dictionary's words-per-sequence average.
	MeanCollisions float64
	// MaxCollisions is the worst collision class size.
	MaxCollisions int
	// TopKCoverage is the fraction of words recoverable within the top-k
	// of their collision class by frequency rank (the UI's k).
	TopKCoverage float64
	// OK aggregates the acceptance criteria.
	OK bool
	// Reasons lists failed criteria when !OK.
	Reasons []string
}

// Thresholds gate acceptance. Zero values take defaults.
type Thresholds struct {
	// MinTemplateDistance in Hz/frame (default 8, matching the DTW
	// separation at which stroke confusion becomes frequent).
	MinTemplateDistance float64
	// MaxMeanCollisions bounds dictionary ambiguity (default 1.6).
	MaxMeanCollisions float64
	// MinTopKCoverage with k=K (defaults 0.95 at K=5).
	MinTopKCoverage float64
	// K is the candidate list size (default 5).
	K int
}

func (t Thresholds) normalize() Thresholds {
	if t.MinTemplateDistance == 0 {
		t.MinTemplateDistance = 8
	}
	if t.MaxMeanCollisions == 0 {
		t.MaxMeanCollisions = 1.6
	}
	if t.MinTopKCoverage == 0 {
		t.MinTopKCoverage = 0.95
	}
	if t.K == 0 {
		t.K = 5
	}
	return t
}

// Check validates a proposed scheme over a vocabulary: template
// distinguishability (the gesture side) and dictionary ambiguity (the
// text side).
func Check(scheme *stroke.Scheme, words []string, templates *stroke.TemplateSet, th Thresholds) (*CheckReport, error) {
	if scheme == nil || templates == nil {
		return nil, fmt.Errorf("schemeopt: nil scheme or templates")
	}
	th = th.normalize()
	rep := &CheckReport{MinTemplateDistance: math.Inf(1)}

	all := stroke.AllStrokes()
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			d, err := dtw.Distance(templates.Profile(all[i]), templates.Profile(all[j]),
				dtw.Options{Window: 4, Normalize: true})
			if err != nil {
				return nil, fmt.Errorf("schemeopt: comparing %v-%v: %w", all[i], all[j], err)
			}
			if d < rep.MinTemplateDistance {
				rep.MinTemplateDistance = d
				rep.TightestPair = fmt.Sprintf("%v-%v", all[i], all[j])
			}
		}
	}

	dict, err := lexicon.NewDictionary(scheme, words)
	if err != nil {
		return nil, fmt.Errorf("schemeopt: %w", err)
	}
	amb := dict.Ambiguity()
	rep.MeanCollisions = amb.MeanCollisions
	rep.MaxCollisions = amb.MaxCollisions
	rep.TopKCoverage = topKCoverage(dict, th.K)

	rep.OK = true
	if rep.MinTemplateDistance < th.MinTemplateDistance {
		rep.OK = false
		rep.Reasons = append(rep.Reasons, fmt.Sprintf(
			"templates %s separated by only %.1f Hz/frame (need %.1f)",
			rep.TightestPair, rep.MinTemplateDistance, th.MinTemplateDistance))
	}
	if rep.MeanCollisions > th.MaxMeanCollisions {
		rep.OK = false
		rep.Reasons = append(rep.Reasons, fmt.Sprintf(
			"mean dictionary collisions %.2f exceed %.2f",
			rep.MeanCollisions, th.MaxMeanCollisions))
	}
	if rep.TopKCoverage < th.MinTopKCoverage {
		rep.OK = false
		rep.Reasons = append(rep.Reasons, fmt.Sprintf(
			"top-%d coverage %.1f%% below %.1f%%",
			th.K, 100*rep.TopKCoverage, 100*th.MinTopKCoverage))
	}
	return rep, nil
}

// topKCoverage computes the fraction of dictionary words that rank within
// the top k of their collision class by frequency.
func topKCoverage(dict *lexicon.Dictionary, k int) float64 {
	entries := dict.Entries()
	if len(entries) == 0 {
		return 0
	}
	covered := 0
	for i := range entries {
		e := &entries[i]
		rank := 0
		for _, other := range dict.Lookup(e.StrokeSeq) {
			if other.Frequency > e.Frequency {
				rank++
			}
		}
		if rank < k {
			covered++
		}
	}
	return float64(covered) / float64(len(entries))
}

// AmbiguityCost scores a grouping: expected rank of a word within its
// collision class, frequency-weighted — lower is better for top-1
// recognition.
func AmbiguityCost(scheme *stroke.Scheme, words []string) (float64, error) {
	dict, err := lexicon.NewDictionary(scheme, words)
	if err != nil {
		return 0, err
	}
	entries := dict.Entries()
	var cost, mass float64
	for i := range entries {
		e := &entries[i]
		rank := 0
		for _, other := range dict.Lookup(e.StrokeSeq) {
			if other.Frequency > e.Frequency {
				rank++
			}
		}
		w := dict.Prior(e)
		cost += w * float64(rank)
		mass += w
	}
	if mass == 0 {
		return 0, fmt.Errorf("schemeopt: empty dictionary")
	}
	return cost / mass, nil
}

// Optimize greedily improves a letter grouping: starting from base, it
// repeatedly tries moving each letter to each other stroke group and
// keeps the move that most reduces AmbiguityCost, stopping when no move
// helps or maxMoves is reached. Groups are never emptied (each stroke
// must keep at least one letter so the gesture stays meaningful).
func Optimize(base *stroke.Scheme, words []string, maxMoves int) (*stroke.Scheme, float64, error) {
	if base == nil {
		return nil, 0, fmt.Errorf("schemeopt: nil base scheme")
	}
	if maxMoves <= 0 {
		maxMoves = 10
	}
	groups := make(map[stroke.Stroke][]rune, stroke.NumStrokes)
	for _, s := range stroke.AllStrokes() {
		groups[s] = append([]rune(nil), base.Letters(s)...)
	}
	toScheme := func() (*stroke.Scheme, error) {
		m := make(map[stroke.Stroke]string, stroke.NumStrokes)
		for s, ls := range groups {
			m[s] = string(ls)
		}
		return stroke.NewScheme(m)
	}
	cur, err := toScheme()
	if err != nil {
		return nil, 0, err
	}
	curCost, err := AmbiguityCost(cur, words)
	if err != nil {
		return nil, 0, err
	}
	for move := 0; move < maxMoves; move++ {
		type candidate struct {
			letter   rune
			from, to stroke.Stroke
			cost     float64
		}
		best := candidate{cost: curCost}
		improved := false
		for from, letters := range groups {
			if len(letters) <= 1 {
				continue
			}
			for _, l := range letters {
				for _, to := range stroke.AllStrokes() {
					if to == from {
						continue
					}
					moveLetter(groups, l, from, to)
					sc, err := toScheme()
					if err == nil {
						if c, err := AmbiguityCost(sc, words); err == nil && c < best.cost-1e-12 {
							best = candidate{letter: l, from: from, to: to, cost: c}
							improved = true
						}
					}
					moveLetter(groups, l, to, from) // undo
				}
			}
		}
		if !improved {
			break
		}
		moveLetter(groups, best.letter, best.from, best.to)
		curCost = best.cost
	}
	out, err := toScheme()
	if err != nil {
		return nil, 0, err
	}
	return out, curCost, nil
}

func moveLetter(groups map[stroke.Stroke][]rune, l rune, from, to stroke.Stroke) {
	src := groups[from]
	for i, r := range src {
		if r == l {
			groups[from] = append(append([]rune(nil), src[:i]...), src[i+1:]...)
			break
		}
	}
	groups[to] = append(groups[to], l)
}
