package schemeopt

import (
	"testing"

	"repro/internal/lexicon"
	"repro/internal/stroke"
)

func templates(t *testing.T) *stroke.TemplateSet {
	t.Helper()
	ts, err := stroke.NewTemplateSet(stroke.DefaultTemplateConfig())
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestCheckDefaultSchemePasses(t *testing.T) {
	rep, err := Check(stroke.DefaultScheme(), lexicon.DefaultWords(), templates(t), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK {
		t.Errorf("default scheme rejected: %v", rep.Reasons)
	}
	if rep.MinTemplateDistance <= 0 {
		t.Error("template distance not computed")
	}
	if rep.TightestPair == "" {
		t.Error("tightest pair missing")
	}
	if rep.TopKCoverage <= 0.9 {
		t.Errorf("top-k coverage %g unexpectedly low", rep.TopKCoverage)
	}
}

func TestCheckRejectsDegenerateGrouping(t *testing.T) {
	// Everything on one stroke except five singletons: ambiguity explodes.
	bad, err := stroke.NewScheme(map[stroke.Stroke]string{
		stroke.S1: "ABCDEFGHIJKLMNOPQRSTU",
		stroke.S2: "V", stroke.S3: "W", stroke.S4: "X",
		stroke.S5: "Y", stroke.S6: "Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(bad, lexicon.DefaultWords(), templates(t), Thresholds{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Error("degenerate grouping accepted")
	}
	if len(rep.Reasons) == 0 {
		t.Error("no reasons reported")
	}
}

func TestCheckNilInputs(t *testing.T) {
	if _, err := Check(nil, nil, templates(t), Thresholds{}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := Check(stroke.DefaultScheme(), lexicon.DefaultWords(), nil, Thresholds{}); err == nil {
		t.Error("nil templates accepted")
	}
}

func TestAmbiguityCostOrdersSchemes(t *testing.T) {
	words := lexicon.DefaultWords()
	good, err := AmbiguityCost(stroke.DefaultScheme(), words)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := stroke.NewScheme(map[stroke.Stroke]string{
		stroke.S1: "ABCDEFGHIJKLMNOPQRSTU",
		stroke.S2: "V", stroke.S3: "W", stroke.S4: "X",
		stroke.S5: "Y", stroke.S6: "Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	badCost, err := AmbiguityCost(bad, words)
	if err != nil {
		t.Fatal(err)
	}
	if badCost <= good {
		t.Errorf("degenerate scheme cost %g not worse than default %g", badCost, good)
	}
}

func TestOptimizeImprovesBadScheme(t *testing.T) {
	words := lexicon.DefaultWords()
	bad, err := stroke.NewScheme(map[stroke.Stroke]string{
		stroke.S1: "ABCDEFGHIJKLMNOP",
		stroke.S2: "QRSTUV",
		stroke.S3: "W", stroke.S4: "X", stroke.S5: "Y", stroke.S6: "Z",
	})
	if err != nil {
		t.Fatal(err)
	}
	before, err := AmbiguityCost(bad, words)
	if err != nil {
		t.Fatal(err)
	}
	opt, after, err := Optimize(bad, words, 6)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("optimizer made no progress: %g → %g", before, after)
	}
	// The optimized scheme is still a valid alphabet partition.
	total := 0
	for _, s := range stroke.AllStrokes() {
		n := len(opt.Letters(s))
		if n == 0 {
			t.Errorf("optimizer emptied group %v", s)
		}
		total += n
	}
	if total != 26 {
		t.Errorf("optimized scheme covers %d letters", total)
	}
}

func TestOptimizeIdempotentNearOptimum(t *testing.T) {
	// One more pass over an already-optimized scheme should change little.
	words := lexicon.DefaultWords()
	opt1, c1, err := Optimize(stroke.DefaultScheme(), words, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, c2, err := Optimize(opt1, words, 4)
	if err != nil {
		t.Fatal(err)
	}
	if c2 > c1+1e-12 {
		t.Errorf("second pass worsened cost: %g → %g", c1, c2)
	}
}

func TestOptimizeNilBase(t *testing.T) {
	if _, _, err := Optimize(nil, lexicon.DefaultWords(), 3); err == nil {
		t.Error("nil base accepted")
	}
}
