// Package stroke defines EchoWrite's six basic writing strokes, their
// canonical in-air trajectories, the letter→stroke input scheme (the
// paper's Fig. 3), and the analytic Doppler-profile templates that make the
// system training-free: because a stroke's Doppler profile is intrinsic to
// its geometry, templates are derived from the gesture definitions
// themselves rather than from recorded user data (§III-C).
package stroke

import (
	"fmt"
	"strings"
)

// Stroke identifies one of the six basic strokes S1..S6.
type Stroke int

// The six basic strokes. Their gesture shapes are chosen so that (a) each
// produces a unique Doppler profile and (b) the natural confusion structure
// matches the paper's §III-C observation: S2/S4/S6 err toward S1, and S5
// errs toward S2/S6.
const (
	// S1 is a horizontal swipe passing over the device (approach→recede).
	S1 Stroke = iota + 1
	// S2 is a vertical downward swipe toward the device (pure approach).
	S2
	// S3 is a long down-right diagonal across the device.
	S3
	// S4 is a vertical stroke followed by a rightward loop (as when
	// writing P): approach then an oscillating tail.
	S4
	// S5 is an open curve (as when writing C): recede–approach–recede.
	S5
	// S6 is a down-hook (as when writing J): approach then a hooked
	// recede.
	S6
)

// NumStrokes is the size of the stroke alphabet.
const NumStrokes = 6

// AllStrokes lists the strokes in order, for iteration.
func AllStrokes() []Stroke {
	return []Stroke{S1, S2, S3, S4, S5, S6}
}

// Valid reports whether s is one of the six defined strokes.
func (s Stroke) Valid() bool { return s >= S1 && s <= S6 }

// Index returns the zero-based index of the stroke (S1→0 … S6→5). It
// panics on invalid strokes; use Valid first for untrusted input.
func (s Stroke) Index() int {
	if !s.Valid() {
		panic(fmt.Sprintf("stroke: invalid stroke %d", int(s)))
	}
	return int(s) - 1
}

// String implements fmt.Stringer ("S1".."S6").
func (s Stroke) String() string {
	if !s.Valid() {
		return fmt.Sprintf("Stroke(%d)", int(s))
	}
	return fmt.Sprintf("S%d", int(s))
}

// Sequence is an ordered list of strokes, e.g. the encoding of a word.
type Sequence []Stroke

// String renders a sequence as "S2-S5-S1".
func (q Sequence) String() string {
	parts := make([]string, len(q))
	for i, s := range q {
		parts[i] = s.String()
	}
	return strings.Join(parts, "-")
}

// Equal reports element-wise equality.
func (q Sequence) Equal(other Sequence) bool {
	if len(q) != len(other) {
		return false
	}
	for i := range q {
		if q[i] != other[i] {
			return false
		}
	}
	return true
}

// Key returns a compact map key for the sequence ("253…", one digit per
// stroke).
func (q Sequence) Key() string {
	var b strings.Builder
	b.Grow(len(q))
	for _, s := range q {
		b.WriteByte(byte('0' + int(s)))
	}
	return b.String()
}

// ParseSequenceKey inverts Sequence.Key.
func ParseSequenceKey(key string) (Sequence, error) {
	q := make(Sequence, 0, len(key))
	for i := 0; i < len(key); i++ {
		d := int(key[i] - '0')
		s := Stroke(d)
		if !s.Valid() {
			return nil, fmt.Errorf("stroke: invalid sequence key char %q at %d", key[i], i)
		}
		q = append(q, s)
	}
	return q, nil
}
