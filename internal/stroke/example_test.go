package stroke_test

import (
	"fmt"

	"repro/internal/stroke"
)

func ExampleScheme_Encode() {
	scheme := stroke.DefaultScheme()
	seq, err := scheme.Encode("time")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(seq)
	// Output: S1-S2-S2-S1
}

func ExampleScheme_Letters() {
	scheme := stroke.DefaultScheme()
	fmt.Println(string(scheme.Letters(stroke.S6)))
	// Output: JU
}

func ExampleDecompose() {
	seq, err := stroke.Decompose('T')
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(seq)
	// Output: S1-S2
}

func ExampleParseSequenceKey() {
	seq, err := stroke.ParseSequenceKey("251")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(seq)
	// Output: S2-S5-S1
}
