package stroke

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestTemplateConfigValidate(t *testing.T) {
	good := DefaultTemplateConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []TemplateConfig{
		{CarrierHz: 0, SoundSpeed: 340, FrameRate: 43},
		{CarrierHz: 20000, SoundSpeed: 0, FrameRate: 43},
		{CarrierHz: 20000, SoundSpeed: 340, FrameRate: 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTemplateShiftMagnitudePhysical(t *testing.T) {
	cfg := DefaultTemplateConfig()
	for _, s := range AllStrokes() {
		profile, err := Template(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(profile) < 5 {
			t.Fatalf("%v template only %d frames", s, len(profile))
		}
		peak := 0.0
		for _, v := range profile {
			if a := math.Abs(v); a > peak {
				peak = a
			}
		}
		// Finger speeds are well under 4 m/s, so |Δf| < 2·f0·4/340 ≈ 470
		// Hz; and a real stroke must move, so the peak should exceed
		// ~25 Hz (S1, the gentlest gesture, peaks near 27 Hz).
		if peak < 24 || peak > 470 {
			t.Errorf("%v peak shift %g Hz outside plausible range", s, peak)
		}
		// Endpoints are near zero (strokes start and end at rest).
		if math.Abs(profile[0]) > 15 || math.Abs(profile[len(profile)-1]) > 15 {
			t.Errorf("%v profile endpoints %g, %g not near rest", s, profile[0], profile[len(profile)-1])
		}
	}
}

func TestTemplateDopplerSignConvention(t *testing.T) {
	// A trajectory moving straight toward the device must give a positive
	// shift.
	cfg := DefaultTemplateConfig()
	tr, err := geom.NewPolyTrajectory([]geom.Waypoint{
		{T: 0, Pos: geom.Vec3{Y: 0.3}},
		{T: 0.5, Pos: geom.Vec3{Y: 0.1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	profile := ProfileOf(tr, cfg)
	mid := profile[len(profile)/2]
	if mid <= 0 {
		t.Errorf("approaching finger mid-shift = %g, want positive", mid)
	}
	// Physical magnitude check: Δd = 0.2 m over 0.5 s, min-jerk peak
	// speed 0.75 m/s → Δf = 2·20000·0.75/340 ≈ 88 Hz.
	if math.Abs(mid-88) > 6 {
		t.Errorf("mid shift = %g Hz, want ≈88", mid)
	}
}

func TestTemplateSet(t *testing.T) {
	ts, err := NewTemplateSet(DefaultTemplateConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range AllStrokes() {
		if len(ts.Profile(s)) == 0 {
			t.Errorf("missing profile for %v", s)
		}
	}
	if ts.Profile(Stroke(0)) != nil {
		t.Error("invalid stroke returned a profile")
	}
	if ts.Config().CarrierHz != 20000 {
		t.Error("Config not preserved")
	}
}

func TestTemplatesAreDistinct(t *testing.T) {
	// Training-free recognition requires mutually distinguishable
	// templates: pairwise mean absolute difference must be well above
	// zero.
	ts, err := NewTemplateSet(DefaultTemplateConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := AllStrokes()
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := ts.Profile(all[i]), ts.Profile(all[j])
			n := len(a)
			if len(b) > n {
				n = len(b)
			}
			at := func(p []float64, k int) float64 {
				if k < len(p) {
					return p[k]
				}
				return 0 // shorter stroke has ended: finger at rest
			}
			diff := 0.0
			for k := 0; k < n; k++ {
				diff += math.Abs(at(a, k) - at(b, k))
			}
			diff /= float64(n)
			if diff < 10 {
				t.Errorf("%v vs %v mean abs diff %g Hz — too similar", all[i], all[j], diff)
			}
		}
	}
}

func TestTemplateInvalidInputs(t *testing.T) {
	if _, err := Template(S1, TemplateConfig{}); err == nil {
		t.Error("zero config accepted")
	}
	if _, err := Template(Stroke(0), DefaultTemplateConfig()); err == nil {
		t.Error("invalid stroke accepted")
	}
	if _, err := NewTemplateSet(TemplateConfig{}); err == nil {
		t.Error("NewTemplateSet accepted zero config")
	}
}
