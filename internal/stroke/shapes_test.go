package stroke

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestShapeAllStrokes(t *testing.T) {
	for _, s := range AllStrokes() {
		tr, err := Shape(s, ShapeParams{})
		if err != nil {
			t.Fatalf("Shape(%v): %v", s, err)
		}
		dur, err := CanonicalDuration(s)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(tr.Duration()-dur) > 1e-9 {
			t.Errorf("%v duration %g != canonical %g", s, tr.Duration(), dur)
		}
		// The whole gesture stays within arm's reach of the device.
		for _, tt := range []float64{0, dur * 0.25, dur * 0.5, dur * 0.75, dur} {
			d := tr.At(tt).Norm()
			if d < 0.05 || d > 0.6 {
				t.Errorf("%v at t=%g is %g m from device", s, tt, d)
			}
		}
	}
	if _, err := Shape(Stroke(9), ShapeParams{}); err == nil {
		t.Error("invalid stroke accepted")
	}
}

func TestShapeEndpointsMatchHelpers(t *testing.T) {
	for _, s := range AllStrokes() {
		p := ShapeParams{Scale: 1.2, Offset: geom.Vec3{X: 0.01, Y: -0.01, Z: 0.02}}
		tr, err := Shape(s, p)
		if err != nil {
			t.Fatal(err)
		}
		start, err := StartPoint(s, p)
		if err != nil {
			t.Fatal(err)
		}
		end, err := EndPoint(s, p)
		if err != nil {
			t.Fatal(err)
		}
		if tr.At(0).Dist(start) > 1e-9 {
			t.Errorf("%v StartPoint mismatch", s)
		}
		if tr.At(tr.Duration()).Dist(end) > 1e-9 {
			t.Errorf("%v EndPoint mismatch", s)
		}
	}
}

func TestShapeTimeScale(t *testing.T) {
	tr1, err := Shape(S2, ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := Shape(S2, ShapeParams{TimeScale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr2.Duration()-2*tr1.Duration()) > 1e-9 {
		t.Errorf("TimeScale 2: duration %g vs %g", tr2.Duration(), tr1.Duration())
	}
	// Same path endpoints regardless of speed.
	if tr1.At(0).Dist(tr2.At(0)) > 1e-9 {
		t.Error("TimeScale moved the start point")
	}
}

func TestShapeScaleGrowsAboutWritingCenter(t *testing.T) {
	center := geom.Vec3{X: 0, Y: 0.15, Z: 0}
	small, err := StartPoint(S1, ShapeParams{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	big, err := StartPoint(S1, ShapeParams{Scale: 2})
	if err != nil {
		t.Fatal(err)
	}
	if small.Sub(center).Norm() >= big.Sub(center).Norm() {
		t.Error("scale did not grow the gesture about the writing center")
	}
}

func TestShapeJitterApplies(t *testing.T) {
	j := geom.Vec3{X: 0.02, Y: 0, Z: 0}
	plain, err := StartPoint(S2, ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Shape(S2, ShapeParams{JitterSeq: []geom.Vec3{j}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.At(0); got.Dist(plain.Add(j)) > 1e-9 {
		t.Errorf("jitter not applied to first waypoint: %v", got)
	}
}

// TestRadialSignatures verifies each stroke produces its designed
// Doppler-profile signature (DESIGN.md §4 / shapes.go comment), since the
// recognizer's separability depends on it.
func TestRadialSignatures(t *testing.T) {
	cfg := DefaultTemplateConfig()
	signOf := func(v float64) int {
		const eps = 8 // Hz; ignore near-zero wiggle
		switch {
		case v > eps:
			return 1
		case v < -eps:
			return -1
		default:
			return 0
		}
	}
	// Expected coarse sign pattern of each stroke's profile.
	want := map[Stroke][]int{
		S1: {1, -1},
		S2: {1},
		S3: {-1},
		S4: {1, -1, 1},
		S5: {-1, 1},
		S6: {1, -1},
	}
	for _, s := range AllStrokes() {
		profile, err := Template(s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var pattern []int
		last := 0
		for _, v := range profile {
			sg := signOf(v)
			if sg != 0 && sg != last {
				pattern = append(pattern, sg)
				last = sg
			}
		}
		w := want[s]
		if len(pattern) != len(w) {
			t.Errorf("%v sign pattern %v, want %v", s, pattern, w)
			continue
		}
		for i := range w {
			if pattern[i] != w[i] {
				t.Errorf("%v sign pattern %v, want %v", s, pattern, w)
				break
			}
		}
	}
}

func TestCanonicalDurationInvalid(t *testing.T) {
	if _, err := CanonicalDuration(Stroke(0)); err == nil {
		t.Error("invalid stroke accepted")
	}
	if _, err := StartPoint(Stroke(0), ShapeParams{}); err == nil {
		t.Error("invalid stroke accepted by StartPoint")
	}
	if _, err := EndPoint(Stroke(0), ShapeParams{}); err == nil {
		t.Error("invalid stroke accepted by EndPoint")
	}
}

func TestStrokeSpeedsWithinPaperBound(t *testing.T) {
	// The paper bounds finger speed at 4 m/s (its Δf derivation); every
	// canonical gesture must stay well inside it, and path lengths must
	// be hand-sized.
	for _, s := range AllStrokes() {
		tr, err := Shape(s, ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		v, err := geom.PeakSpeed(tr, 2048)
		if err != nil {
			t.Fatal(err)
		}
		if v > 4 {
			t.Errorf("%v peak speed %.2f m/s exceeds the paper's 4 m/s bound", s, v)
		}
		if v < 0.3 {
			t.Errorf("%v peak speed %.2f m/s implausibly slow", s, v)
		}
		l, err := geom.PathLength(tr)
		if err != nil {
			t.Fatal(err)
		}
		if l < 0.08 || l > 0.6 {
			t.Errorf("%v path length %.2f m outside hand-writing range", s, l)
		}
	}
}
