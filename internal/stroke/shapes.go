package stroke

import (
	"fmt"

	"repro/internal/geom"
)

// ShapeParams customize a canonical stroke trajectory for one performance.
// The zero value means "canonical": unit scale, no offset, nominal speed.
type ShapeParams struct {
	// Offset translates the whole gesture (meters). Models where the user
	// holds their hand relative to the device.
	Offset geom.Vec3
	// Scale multiplies the gesture's spatial extent (1 = canonical,
	// typical human range 0.7–1.4).
	Scale float64
	// TimeScale multiplies the gesture duration (1 = canonical; >1 is
	// slower). Doppler magnitude scales inversely with it.
	TimeScale float64
	// Jitter perturbs each waypoint by the given per-axis amplitudes
	// (meters), using JitterSeq as the displacement values consumed in
	// order. Supplied by participant models; empty means no jitter.
	JitterSeq []geom.Vec3
}

func (p ShapeParams) normalize() ShapeParams {
	if p.Scale == 0 {
		p.Scale = 1
	}
	if p.TimeScale == 0 {
		p.TimeScale = 1
	}
	return p
}

// waypointSpec is the canonical definition of one stroke as timed
// waypoints around a nominal writing center ~15 cm in front of the device.
type waypointSpec struct {
	times  []float64
	points []geom.Vec3
}

// canonicalShapes defines the six strokes' geometry. The radial-distance
// pattern of each (|p(t)| relative to the device at the origin) yields its
// Doppler-profile signature:
//
//	S1: approach→recede (symmetric biphasic)
//	S2: pure approach (single bell)
//	S3: pure recede (long single bell)
//	S4: approach, small recede, small approach (loop tail)
//	S5: recede then approach (reverse biphasic, rounded)
//	S6: approach then short sharp recede (hook)
var canonicalShapes = map[Stroke]waypointSpec{
	S1: {
		times:  []float64{0, 0.42},
		points: []geom.Vec3{{X: -0.10, Y: 0.165, Z: 0.02}, {X: 0.10, Y: 0.165, Z: 0.02}},
	},
	S2: {
		times:  []float64{0, 0.40},
		points: []geom.Vec3{{X: 0, Y: 0.21, Z: 0.12}, {X: 0, Y: 0.105, Z: -0.04}},
	},
	S3: {
		times:  []float64{0, 0.48},
		points: []geom.Vec3{{X: 0, Y: 0.11, Z: 0.02}, {X: 0.13, Y: 0.215, Z: -0.10}},
	},
	S4: {
		times: []float64{0, 0.35, 0.55, 0.75},
		points: []geom.Vec3{
			{X: 0, Y: 0.21, Z: 0.11},
			{X: 0, Y: 0.115, Z: -0.02},
			{X: 0.05, Y: 0.17, Z: 0.03},
			{X: 0.03, Y: 0.12, Z: -0.01},
		},
	},
	S5: {
		times: []float64{0, 0.32, 0.68},
		points: []geom.Vec3{
			{X: 0.05, Y: 0.105, Z: 0.05},
			{X: -0.03, Y: 0.23, Z: 0.00},
			{X: 0.04, Y: 0.115, Z: -0.06},
		},
	},
	S6: {
		times: []float64{0, 0.40, 0.58},
		points: []geom.Vec3{
			{X: 0, Y: 0.20, Z: 0.10},
			{X: 0, Y: 0.115, Z: -0.03},
			{X: -0.04, Y: 0.15, Z: -0.045},
		},
	},
}

// CanonicalDuration returns the nominal duration in seconds of stroke s at
// TimeScale 1.
func CanonicalDuration(s Stroke) (float64, error) {
	spec, ok := canonicalShapes[s]
	if !ok {
		return 0, fmt.Errorf("stroke: no canonical shape for %v", s)
	}
	return spec.times[len(spec.times)-1], nil
}

// StartPoint returns the canonical first waypoint of stroke s (unit scale,
// no offset). Participant models use it to plan the repositioning movement
// between strokes.
func StartPoint(s Stroke, p ShapeParams) (geom.Vec3, error) {
	p = p.normalize()
	spec, ok := canonicalShapes[s]
	if !ok {
		return geom.Vec3{}, fmt.Errorf("stroke: no canonical shape for %v", s)
	}
	return scalePoint(spec.points[0], p, 0), nil
}

// EndPoint returns the canonical last waypoint of stroke s under params p
// (ignoring jitter beyond what applies to the final waypoint).
func EndPoint(s Stroke, p ShapeParams) (geom.Vec3, error) {
	p = p.normalize()
	spec, ok := canonicalShapes[s]
	if !ok {
		return geom.Vec3{}, fmt.Errorf("stroke: no canonical shape for %v", s)
	}
	i := len(spec.points) - 1
	pt := scalePoint(spec.points[i], p, i)
	if i < len(p.JitterSeq) {
		pt = pt.Add(p.JitterSeq[i])
	}
	return pt, nil
}

// scalePoint applies scale about the writing center and then the offset.
// The writing center is the centroid-ish reference (0, 0.15, 0): scaling a
// gesture should grow it about where the hand hovers, not about the device.
func scalePoint(pt geom.Vec3, p ShapeParams, _ int) geom.Vec3 {
	center := geom.Vec3{X: 0, Y: 0.15, Z: 0}
	scaled := center.Add(pt.Sub(center).Scale(p.Scale))
	return scaled.Add(p.Offset)
}

// Shape builds the finger trajectory for stroke s under params p.
func Shape(s Stroke, p ShapeParams) (geom.Trajectory, error) {
	p = p.normalize()
	spec, ok := canonicalShapes[s]
	if !ok {
		return nil, fmt.Errorf("stroke: no canonical shape for %v", s)
	}
	wps := make([]geom.Waypoint, len(spec.points))
	for i, pt := range spec.points {
		q := scalePoint(pt, p, i)
		if i < len(p.JitterSeq) {
			q = q.Add(p.JitterSeq[i])
		}
		wps[i] = geom.Waypoint{T: spec.times[i] * p.TimeScale, Pos: q}
	}
	tr, err := geom.NewPolyTrajectory(wps)
	if err != nil {
		return nil, fmt.Errorf("stroke: building %v trajectory: %w", s, err)
	}
	return tr, nil
}
