package stroke

import "testing"

func TestDecomposeCoversAlphabet(t *testing.T) {
	for r := 'A'; r <= 'Z'; r++ {
		seq, err := Decompose(r)
		if err != nil {
			t.Fatalf("Decompose(%q): %v", r, err)
		}
		if len(seq) == 0 || len(seq) > 4 {
			t.Errorf("%q decomposes into %d strokes", r, len(seq))
		}
		for _, s := range seq {
			if !s.Valid() {
				t.Errorf("%q contains invalid stroke %v", r, s)
			}
		}
	}
}

func TestDecomposeCaseInsensitiveAndCopies(t *testing.T) {
	lower, err := Decompose('a')
	if err != nil {
		t.Fatal(err)
	}
	upper, err := Decompose('A')
	if err != nil {
		t.Fatal(err)
	}
	if !lower.Equal(upper) {
		t.Error("case sensitivity in Decompose")
	}
	// The returned slice is a copy: mutating it must not poison the table.
	lower[0] = S6
	again, err := Decompose('A')
	if err != nil {
		t.Fatal(err)
	}
	if again[0] == S6 {
		t.Error("Decompose returned aliased storage")
	}
}

func TestDecomposeUnknownRune(t *testing.T) {
	if _, err := Decompose('3'); err == nil {
		t.Error("digit accepted")
	}
	if _, err := Decompose('ß'); err == nil {
		t.Error("non-English letter accepted")
	}
}

func TestDefaultSchemeFollowsFirstOrSecondStroke(t *testing.T) {
	// The paper's §II-A design principle, checked mechanically: every
	// letter's group stroke is the first or second stroke of its natural
	// decomposition.
	violations, err := SchemeConsistency(DefaultScheme())
	if err != nil {
		t.Fatal(err)
	}
	if len(violations) != 0 {
		t.Errorf("letters violating the first-or-second-stroke principle: %q", violations)
	}
}

func TestSchemeConsistencyNil(t *testing.T) {
	if _, err := SchemeConsistency(nil); err == nil {
		t.Error("nil scheme accepted")
	}
}
