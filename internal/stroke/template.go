package stroke

import (
	"fmt"

	"repro/internal/geom"
)

// TemplateConfig controls analytic Doppler-profile template generation.
type TemplateConfig struct {
	// CarrierHz is the probe tone frequency f0 (paper: 20 kHz).
	CarrierHz float64
	// SoundSpeed is the speed of sound in m/s (paper: 340).
	SoundSpeed float64
	// FrameRate is the spectrogram frame rate in Hz (sample rate / hop;
	// paper: 44100/1024 ≈ 43.07).
	FrameRate float64
}

// DefaultTemplateConfig matches the paper's parameters.
func DefaultTemplateConfig() TemplateConfig {
	return TemplateConfig{CarrierHz: 20000, SoundSpeed: 340, FrameRate: 44100.0 / 1024.0}
}

// Validate checks config sanity.
func (c TemplateConfig) Validate() error {
	if c.CarrierHz <= 0 {
		return fmt.Errorf("stroke: carrier frequency must be positive, got %g", c.CarrierHz)
	}
	if c.SoundSpeed <= 0 {
		return fmt.Errorf("stroke: sound speed must be positive, got %g", c.SoundSpeed)
	}
	if c.FrameRate <= 0 {
		return fmt.Errorf("stroke: frame rate must be positive, got %g", c.FrameRate)
	}
	return nil
}

// Template computes the analytic Doppler-shift profile (Hz per frame tick)
// of stroke s: the frequency offset from the carrier an ideal echo from the
// canonical trajectory would exhibit. Positive values mean the finger
// approaches the device (compressed echo, higher frequency).
//
// Because the profile derives from the gesture's geometry alone — not from
// any user's recordings — matching against these templates is what makes
// EchoWrite training-free.
func Template(s Stroke, cfg TemplateConfig) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tr, err := Shape(s, ShapeParams{})
	if err != nil {
		return nil, err
	}
	return ProfileOf(tr, cfg), nil
}

// ProfileOf samples the Doppler-shift profile of an arbitrary trajectory at
// the configured frame rate: Δf(t) = −2·f0·v_r(t)/c where v_r is the radial
// speed relative to the device at the origin (Eq. 3 of the paper, with the
// factor 2 from the reflected round trip).
func ProfileOf(tr geom.Trajectory, cfg TemplateConfig) []float64 {
	n := int(tr.Duration()*cfg.FrameRate) + 1
	out := make([]float64, n)
	dt := 1 / cfg.FrameRate
	for i := range out {
		t := float64(i) * dt
		vr := geom.RadialSpeed(tr, geom.Vec3{}, t, dt/4)
		out[i] = -2 * cfg.CarrierHz * vr / cfg.SoundSpeed
	}
	return out
}

// TemplateSet holds one analytic profile per stroke, ready for DTW
// matching.
type TemplateSet struct {
	cfg      TemplateConfig
	profiles [NumStrokes][]float64
}

// NewTemplateSet generates all six templates under cfg.
func NewTemplateSet(cfg TemplateConfig) (*TemplateSet, error) {
	ts := &TemplateSet{cfg: cfg}
	for _, s := range AllStrokes() {
		p, err := Template(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("stroke: template for %v: %w", s, err)
		}
		ts.profiles[s.Index()] = p
	}
	return ts, nil
}

// Profile returns the template profile for stroke s. The returned slice
// must not be modified.
func (ts *TemplateSet) Profile(s Stroke) []float64 {
	if !s.Valid() {
		return nil
	}
	return ts.profiles[s.Index()]
}

// Config returns the generation parameters.
func (ts *TemplateSet) Config() TemplateConfig { return ts.cfg }
