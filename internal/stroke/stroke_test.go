package stroke

import (
	"testing"
	"testing/quick"
)

func TestStrokeValidity(t *testing.T) {
	for _, s := range AllStrokes() {
		if !s.Valid() {
			t.Errorf("%v reported invalid", s)
		}
	}
	for _, s := range []Stroke{0, 7, -1} {
		if s.Valid() {
			t.Errorf("Stroke(%d) reported valid", int(s))
		}
	}
}

func TestStrokeIndexAndString(t *testing.T) {
	if S1.Index() != 0 || S6.Index() != 5 {
		t.Error("Index mapping wrong")
	}
	if S3.String() != "S3" {
		t.Errorf("String = %q", S3.String())
	}
	if got := Stroke(9).String(); got != "Stroke(9)" {
		t.Errorf("invalid String = %q", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Index on invalid stroke did not panic")
		}
	}()
	_ = Stroke(0).Index()
}

func TestAllStrokesCount(t *testing.T) {
	if len(AllStrokes()) != NumStrokes {
		t.Fatalf("AllStrokes has %d entries, want %d", len(AllStrokes()), NumStrokes)
	}
}

func TestSequenceStringAndEqual(t *testing.T) {
	q := Sequence{S2, S5, S1}
	if q.String() != "S2-S5-S1" {
		t.Errorf("String = %q", q.String())
	}
	if !q.Equal(Sequence{S2, S5, S1}) {
		t.Error("Equal(false negative)")
	}
	if q.Equal(Sequence{S2, S5}) {
		t.Error("Equal ignored length")
	}
	if q.Equal(Sequence{S2, S5, S2}) {
		t.Error("Equal ignored content")
	}
}

func TestSequenceKeyRoundTripProperty(t *testing.T) {
	// Property: ParseSequenceKey(q.Key()) == q.
	f := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		q := make(Sequence, 0, len(raw))
		for _, b := range raw {
			q = append(q, Stroke(int(b%NumStrokes)+1))
		}
		back, err := ParseSequenceKey(q.Key())
		return err == nil && back.Equal(q)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseSequenceKeyRejectsBadChars(t *testing.T) {
	for _, key := range []string{"0", "7", "12a", "129"} {
		if _, err := ParseSequenceKey(key); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}

func TestDefaultSchemeCoversAlphabet(t *testing.T) {
	sc := DefaultScheme()
	counts := sc.GroupSizes()
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != 26 {
		t.Fatalf("scheme covers %d letters, want 26", total)
	}
	for r := 'A'; r <= 'Z'; r++ {
		st, err := sc.StrokeFor(r)
		if err != nil {
			t.Fatalf("StrokeFor(%q): %v", r, err)
		}
		if !st.Valid() {
			t.Fatalf("StrokeFor(%q) = %v", r, st)
		}
		// The stroke's letter group must contain the letter.
		found := false
		for _, l := range sc.Letters(st) {
			if l == r {
				found = true
			}
		}
		if !found {
			t.Errorf("letter %q missing from its group %v", r, st)
		}
	}
}

func TestStrokeForCaseInsensitive(t *testing.T) {
	sc := DefaultScheme()
	upper, err := sc.StrokeFor('E')
	if err != nil {
		t.Fatal(err)
	}
	lower, err := sc.StrokeFor('e')
	if err != nil {
		t.Fatal(err)
	}
	if upper != lower {
		t.Error("case sensitivity in StrokeFor")
	}
	if _, err := sc.StrokeFor('3'); err == nil {
		t.Error("digit accepted")
	}
}

func TestNewSchemeValidation(t *testing.T) {
	cases := []struct {
		name   string
		groups map[Stroke]string
	}{
		{"duplicate letter", map[Stroke]string{S1: "AB", S2: "BCDEFGHIJKLMNOPQRSTUVWXYZ"}},
		{"missing letter", map[Stroke]string{S1: "ABCDEFGHIJKLMNOPQRSTUVWXY"}},
		{"invalid stroke", map[Stroke]string{Stroke(9): "ABCDEFGHIJKLMNOPQRSTUVWXYZ"}},
		{"non letter", map[Stroke]string{S1: "ABCDEFGHIJKLMNOPQRSTUVWXY1"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewScheme(tc.groups); err == nil {
				t.Error("invalid scheme accepted")
			}
		})
	}
}

func TestEncode(t *testing.T) {
	sc := DefaultScheme()
	seq, err := sc.Encode("tea")
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) != 3 {
		t.Fatalf("encoded length %d, want 3", len(seq))
	}
	// T→S1, E→S1, A→S3 under the default grouping.
	want := Sequence{S1, S1, S3}
	if !seq.Equal(want) {
		t.Errorf("Encode(tea) = %v, want %v", seq, want)
	}
	if _, err := sc.Encode(""); err == nil {
		t.Error("empty word accepted")
	}
	if _, err := sc.Encode("a1b"); err == nil {
		t.Error("word with digit accepted")
	}
}

func TestEncodeMatchesStrokeForProperty(t *testing.T) {
	// Property: Encode(word)[i] == StrokeFor(word[i]).
	sc := DefaultScheme()
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 24 {
			return true
		}
		word := make([]rune, len(raw))
		for i, b := range raw {
			word[i] = rune('a' + int(b%26))
		}
		seq, err := sc.Encode(string(word))
		if err != nil {
			return false
		}
		for i, r := range word {
			st, err := sc.StrokeFor(r)
			if err != nil || seq[i] != st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
