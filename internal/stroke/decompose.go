package stroke

import (
	"fmt"
	"unicode"
)

// decompositions writes each uppercase letter as a sequence of the six
// basic strokes in natural writing order — the paper's Fig. 2(a) idea
// (after the kids'-handwriting stroke-order charts it cites). The exact
// figure is not machine-readable in the source; this table follows
// conventional stroke order with the shape mapping:
//
//	S1 horizontal bar, S2 vertical bar, S3 diagonal, S4 bar+loop
//	(the B/P/R bowl), S5 open curve (C bowl), S6 hook (J/U tail).
var decompositions = map[rune]Sequence{
	'A': {S3, S3, S1},
	'B': {S2, S4, S4},
	'C': {S5},
	'D': {S2, S4},
	'E': {S2, S1, S1, S1},
	'F': {S2, S1, S1},
	'G': {S5, S1},
	'H': {S2, S2, S1},
	'I': {S2},
	'J': {S6},
	'K': {S2, S3, S3},
	'L': {S2, S1},
	'M': {S2, S3, S3, S2},
	'N': {S2, S3, S2},
	'O': {S5, S5},
	'P': {S2, S4},
	'Q': {S5, S5, S3},
	'R': {S2, S4, S3},
	'S': {S5, S5},
	'T': {S1, S2},
	'U': {S6, S2},
	'V': {S3, S3},
	'W': {S3, S3, S3, S3},
	'X': {S3, S3},
	'Y': {S3, S3, S2},
	'Z': {S1, S3, S1},
}

// Decompose returns the basic-stroke decomposition of an uppercase
// English letter in natural writing order (case-insensitive).
func Decompose(r rune) (Sequence, error) {
	r = unicode.ToUpper(r)
	seq, ok := decompositions[r]
	if !ok {
		return nil, fmt.Errorf("stroke: no decomposition for %q", r)
	}
	return append(Sequence(nil), seq...), nil
}

// SchemeConsistency verifies the paper's stated design principle for a
// scheme: every letter's assigned stroke appears among the first two
// strokes of its natural decomposition ("grouping letters according to
// their first or second strokes", §II-A). It returns the letters that
// violate the principle.
func SchemeConsistency(sc *Scheme) ([]rune, error) {
	if sc == nil {
		return nil, fmt.Errorf("stroke: nil scheme")
	}
	var violations []rune
	for r := 'A'; r <= 'Z'; r++ {
		assigned, err := sc.StrokeFor(r)
		if err != nil {
			return nil, err
		}
		dec, err := Decompose(r)
		if err != nil {
			return nil, err
		}
		ok := dec[0] == assigned
		if !ok && len(dec) > 1 {
			ok = dec[1] == assigned
		}
		if !ok {
			violations = append(violations, r)
		}
	}
	return violations, nil
}
