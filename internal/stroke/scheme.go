package stroke

import (
	"fmt"
	"strings"
	"unicode"
)

// Scheme is a letter→stroke input scheme: a many-to-one assignment of the
// 26 uppercase English letters onto the six strokes, T9-style. The default
// scheme groups letters by the first (or, for crowded groups, second)
// stroke of their natural uppercase writing order, the paper's stated
// design principle.
type Scheme struct {
	letterToStroke [26]Stroke
	strokeLetters  [NumStrokes][]rune
}

// DefaultSchemeGroups is the grouping used by the default scheme. The
// paper's Fig. 3 is not machine-readable in the source text, so this
// grouping re-derives it from the two stated principles (see DESIGN.md §4).
var DefaultSchemeGroups = map[Stroke]string{
	S1: "EFTZ",
	S2: "HIKLMN",
	S3: "AVWXY",
	S4: "BDPR",
	S5: "CGOQS",
	S6: "JU",
}

// NewScheme builds a scheme from a stroke→letters grouping. Every one of
// the 26 letters must appear exactly once across the groups.
func NewScheme(groups map[Stroke]string) (*Scheme, error) {
	sc := &Scheme{}
	seen := [26]bool{}
	for st, letters := range groups {
		if !st.Valid() {
			return nil, fmt.Errorf("stroke: scheme group uses invalid stroke %d", int(st))
		}
		for _, r := range strings.ToUpper(letters) {
			if r < 'A' || r > 'Z' {
				return nil, fmt.Errorf("stroke: scheme contains non-letter %q", r)
			}
			i := int(r - 'A')
			if seen[i] {
				return nil, fmt.Errorf("stroke: letter %q assigned twice", r)
			}
			seen[i] = true
			sc.letterToStroke[i] = st
			sc.strokeLetters[st.Index()] = append(sc.strokeLetters[st.Index()], r)
		}
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("stroke: letter %q unassigned", rune('A'+i))
		}
	}
	return sc, nil
}

// DefaultScheme returns the paper-equivalent input scheme. It never fails
// because DefaultSchemeGroups is a complete partition; the error from
// NewScheme is asserted away in a package test.
func DefaultScheme() *Scheme {
	sc, err := NewScheme(DefaultSchemeGroups)
	if err != nil {
		// Unreachable: DefaultSchemeGroups is validated by tests.
		panic("stroke: invalid DefaultSchemeGroups: " + err.Error())
	}
	return sc
}

// StrokeFor returns the stroke assigned to letter r (case-insensitive).
func (sc *Scheme) StrokeFor(r rune) (Stroke, error) {
	r = unicode.ToUpper(r)
	if r < 'A' || r > 'Z' {
		return 0, fmt.Errorf("stroke: %q is not an English letter", r)
	}
	return sc.letterToStroke[r-'A'], nil
}

// Letters returns the letters assigned to stroke st, in insertion order.
// The returned slice must not be modified.
func (sc *Scheme) Letters(st Stroke) []rune {
	if !st.Valid() {
		return nil
	}
	return sc.strokeLetters[st.Index()]
}

// Encode converts a word into its stroke sequence, one stroke per letter.
// The word must consist solely of English letters.
func (sc *Scheme) Encode(word string) (Sequence, error) {
	seq := make(Sequence, 0, len(word))
	for _, r := range word {
		st, err := sc.StrokeFor(r)
		if err != nil {
			return nil, fmt.Errorf("stroke: encoding %q: %w", word, err)
		}
		seq = append(seq, st)
	}
	if len(seq) == 0 {
		return nil, fmt.Errorf("stroke: cannot encode empty word")
	}
	return seq, nil
}

// GroupSizes returns the number of letters per stroke, indexed by
// Stroke.Index. Useful for collision statistics.
func (sc *Scheme) GroupSizes() [NumStrokes]int {
	var out [NumStrokes]int
	for i, ls := range sc.strokeLetters {
		out[i] = len(ls)
	}
	return out
}
