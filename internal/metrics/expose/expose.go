// Package expose renders service counters in the Prometheus text
// exposition format, version 0.0.4 — the `text/plain; version=0.0.4`
// payload every mainstream scrape loop understands. It is deliberately
// tiny and pure-stdlib: a Registry of metric families collected at
// scrape time, plus a concurrent fixed-bucket Histogram instrument for
// the hot paths that must record observations cheaply.
//
// The serving layer (internal/serve) registers collectors that read its
// atomic counters directly, so a scrape never touches the latency
// reservoirs or sorts anything; GET /metricsz on serve.Server renders
// the registry. The package also ships a strict Parse for the same
// format, used by cmd/ewload's end-of-run scrape and the CI smoke so a
// malformed exposition fails loudly instead of silently dropping
// series in a real scraper.
package expose

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Kind is a metric family's type as declared on its `# TYPE` line.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the TYPE-line spelling.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name="value" pair on a sample.
type Label struct {
	Name, Value string
}

// Point is one sample emitted by a collector. Counter and gauge points
// carry Value; histogram points carry Hist instead.
type Point struct {
	Labels []Label
	Value  float64
	Hist   *HistView
}

// Desc declares a metric family: its name, help text and kind.
type Desc struct {
	Name string
	Help string
	Kind Kind
}

// CollectorFunc produces a family's current samples at scrape time by
// calling emit once per sample. It must be safe for concurrent scrapes.
type CollectorFunc func(emit func(Point))

type family struct {
	desc    Desc
	collect CollectorFunc
}

// Registry holds metric families in registration order and renders them
// on demand. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family           // guarded by mu
	byName   map[string]struct{} // guarded by mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]struct{})}
}

// Register adds a family. The name must be a valid metric name, unique
// within the registry, and the help text non-empty (the format requires
// a HELP line per family).
func (r *Registry) Register(d Desc, collect CollectorFunc) error {
	if !validMetricName(d.Name) {
		return fmt.Errorf("expose: invalid metric name %q", d.Name)
	}
	if d.Help == "" {
		return fmt.Errorf("expose: metric %s has empty help", d.Name)
	}
	if collect == nil {
		return fmt.Errorf("expose: metric %s has nil collector", d.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.Name]; dup {
		return fmt.Errorf("expose: duplicate metric name %q", d.Name)
	}
	r.byName[d.Name] = struct{}{}
	r.families = append(r.families, &family{desc: d, collect: collect})
	return nil
}

// MustRegister is Register, panicking on error — for the static
// registration blocks where a failure is a programming bug.
func (r *Registry) MustRegister(d Desc, collect CollectorFunc) {
	if err := r.Register(d, collect); err != nil {
		panic(err)
	}
}

// WriteText renders every family in registration order as Prometheus
// text format v0.0.4. Collectors run outside the registry lock, so a
// slow collector never blocks Register.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	r.mu.Unlock()

	// buf and pts are reused across families: after the first family the
	// encode path stops allocating.
	buf := make([]byte, 0, 1024)
	pts := make([]Point, 0, 16)
	emit := func(p Point) { pts = append(pts, p) }
	for _, f := range fams {
		pts = pts[:0]
		f.collect(emit)
		var err error
		buf, err = writeFamily(w, buf, f.desc, pts)
		if err != nil {
			return err
		}
	}
	return nil
}

// writeFamily renders one family's HELP/TYPE header and samples.
//
// ew:hotpath — this is the exposition encode loop, run for every family
// on every scrape; each sample line is appended into buf (grown once,
// reused across samples and families) and written out, so the loop body
// itself performs no allocation.
func writeFamily(w io.Writer, buf []byte, d Desc, pts []Point) ([]byte, error) {
	buf = appendHeader(buf[:0], d)
	if _, err := w.Write(buf); err != nil {
		return buf, err
	}
	for i := range pts {
		var perr error
		if d.Kind == KindHistogram {
			buf, perr = appendHistogram(buf[:0], d.Name, &pts[i])
		} else {
			buf, perr = appendScalar(buf[:0], d.Name, &pts[i])
		}
		if perr != nil {
			return buf, perr
		}
		if _, err := w.Write(buf); err != nil {
			return buf, err
		}
	}
	return buf, nil
}

// appendHeader renders the `# HELP` and `# TYPE` lines.
func appendHeader(buf []byte, d Desc) []byte {
	buf = append(buf, "# HELP "...)
	buf = append(buf, d.Name...)
	buf = append(buf, ' ')
	buf = appendEscapedHelp(buf, d.Help)
	buf = append(buf, "\n# TYPE "...)
	buf = append(buf, d.Name...)
	buf = append(buf, ' ')
	buf = append(buf, d.Kind.String()...)
	buf = append(buf, '\n')
	return buf
}

// appendScalar renders one counter/gauge sample line.
func appendScalar(buf []byte, name string, p *Point) ([]byte, error) {
	if p.Hist != nil {
		return buf, fmt.Errorf("expose: metric %s: histogram point on a %s family", name, "scalar")
	}
	var err error
	buf = append(buf, name...)
	if buf, err = appendLabels(buf, p.Labels, nil); err != nil {
		return buf, err
	}
	buf = append(buf, ' ')
	buf = appendValue(buf, p.Value)
	buf = append(buf, '\n')
	return buf, nil
}

// appendHistogram renders one histogram point: cumulative `_bucket`
// lines (ending at le="+Inf" = Count), then `_sum` and `_count`.
func appendHistogram(buf []byte, name string, p *Point) ([]byte, error) {
	h := p.Hist
	if h == nil {
		return buf, fmt.Errorf("expose: metric %s: histogram family emitted a scalar point", name)
	}
	if len(h.Cumulative) != len(h.UpperBounds) {
		return buf, fmt.Errorf("expose: metric %s: %d bucket counts for %d bounds",
			name, len(h.Cumulative), len(h.UpperBounds))
	}
	var err error
	le := make([]byte, 0, 24)
	for i, bound := range h.UpperBounds {
		le = appendValue(le[:0], bound)
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		if buf, err = appendLabels(buf, p.Labels, le); err != nil {
			return buf, err
		}
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, h.Cumulative[i], 10)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_bucket"...)
	if buf, err = appendLabels(buf, p.Labels, []byte("+Inf")); err != nil {
		return buf, err
	}
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count, 10)
	buf = append(buf, '\n')

	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	if buf, err = appendLabels(buf, p.Labels, nil); err != nil {
		return buf, err
	}
	buf = append(buf, ' ')
	buf = appendValue(buf, h.Sum)
	buf = append(buf, '\n')

	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	if buf, err = appendLabels(buf, p.Labels, nil); err != nil {
		return buf, err
	}
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count, 10)
	buf = append(buf, '\n')
	return buf, nil
}

// appendLabels renders `{a="b",...}` (nothing for an empty set), with
// an optional trailing le bucket label. Label values are escaped per
// the format: backslash, double quote and newline.
func appendLabels(buf []byte, labels []Label, le []byte) ([]byte, error) {
	if len(labels) == 0 && le == nil {
		return buf, nil
	}
	buf = append(buf, '{')
	for i := range labels {
		if !validLabelName(labels[i].Name) {
			return buf, fmt.Errorf("expose: invalid label name %q", labels[i].Name)
		}
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, labels[i].Name...)
		buf = append(buf, `="`...)
		buf = appendEscapedLabelValue(buf, labels[i].Value)
		buf = append(buf, '"')
	}
	if le != nil {
		if len(labels) > 0 {
			buf = append(buf, ',')
		}
		buf = append(buf, `le="`...)
		buf = append(buf, le...)
		buf = append(buf, '"')
	}
	buf = append(buf, '}')
	return buf, nil
}

// appendValue renders a float the way the format expects: shortest
// round-trip representation, with ±Inf and NaN spelled out.
func appendValue(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// appendEscapedHelp escapes a HELP line: backslash and newline.
func appendEscapedHelp(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// appendEscapedLabelValue escapes a label value: backslash, double
// quote and newline.
func appendEscapedLabelValue(buf []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			buf = append(buf, `\\`...)
		case '"':
			buf = append(buf, `\"`...)
		case '\n':
			buf = append(buf, `\n`...)
		default:
			buf = append(buf, s[i])
		}
	}
	return buf
}

// validMetricName checks the format's metric-name grammar:
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// validLabelName checks [a-zA-Z_][a-zA-Z0-9_]*; the "__" prefix is
// reserved by the format.
func validLabelName(s string) bool {
	if s == "" || (len(s) >= 2 && s[0] == '_' && s[1] == '_') {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		alpha := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// ExpBuckets returns n log-spaced histogram upper bounds: start,
// start·factor, start·factor², … — the spacing a latency histogram
// wants so both sub-millisecond feeds and hundred-millisecond stalls
// land in informative buckets. start must be positive, factor > 1 and
// n ≥ 1.
func ExpBuckets(start, factor float64, n int) ([]float64, error) {
	if !(start > 0) || !(factor > 1) || n < 1 {
		return nil, fmt.Errorf("expose: ExpBuckets(%g, %g, %d): need start > 0, factor > 1, n ≥ 1",
			start, factor, n)
	}
	out := make([]float64, n)
	b := start
	for i := range out {
		out[i] = b
		b *= factor
	}
	return out, nil
}

// sortLabels orders a label set by name (the canonical order the
// writer and parser key on). Exposed internally for the parser.
func sortLabels(ls []Label) {
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
}
