package expose

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed sample line. Name is the full sample name, which
// for histogram families carries the `_bucket`/`_sum`/`_count` suffix.
type Sample struct {
	Name   string
	Labels []Label
	Value  float64
}

// Family is one parsed metric family: its HELP text, TYPE and samples
// in file order.
type Family struct {
	Name    string
	Help    string
	Kind    Kind
	Samples []Sample
}

// Sample returns the first sample with the given full name whose label
// set includes every given pair (order-insensitive), or nil.
func (f *Family) Sample(name string, labels ...Label) *Sample {
next:
	for i := range f.Samples {
		s := &f.Samples[i]
		if s.Name != name {
			continue
		}
		for _, want := range labels {
			if !hasLabel(s.Labels, want) {
				continue next
			}
		}
		return s
	}
	return nil
}

func hasLabel(ls []Label, want Label) bool {
	for _, l := range ls {
		if l == want {
			return true
		}
	}
	return false
}

// Parse reads a Prometheus text-format v0.0.4 exposition strictly: every
// family needs a HELP line immediately followed by a TYPE line before
// its samples, names and labels must match the format's grammar,
// duplicate families and duplicate samples are rejected, counter values
// must be finite and non-negative, and histogram families are checked
// for bucket cumulativity, a `+Inf` bucket agreeing with `_count`, and
// the presence of `_sum`/`_count` per label set. Timestamps (legal in
// the format, never produced by this package's writer) are rejected.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var (
		fams    []Family
		seen    = make(map[string]struct{})
		cur     *Family
		pending string // name from a HELP line awaiting its TYPE line
		help    string
		lineNo  int
	)
	finish := func() error {
		if pending != "" {
			return fmt.Errorf("expose: HELP %s not followed by a TYPE line", pending)
		}
		if cur == nil {
			return nil
		}
		if err := validateFamily(cur); err != nil {
			return err
		}
		fams = append(fams, *cur)
		cur = nil
		return nil
	}
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest, kind, ok := commentDirective(line)
			if !ok {
				continue // arbitrary comment: legal, ignored
			}
			switch kind {
			case "HELP":
				if err := finish(); err != nil {
					return nil, err
				}
				name, text, found := strings.Cut(rest, " ")
				if !found {
					text = ""
				}
				if !validMetricName(name) {
					return nil, fmt.Errorf("expose: line %d: invalid metric name %q in HELP", lineNo, name)
				}
				if _, dup := seen[name]; dup {
					return nil, fmt.Errorf("expose: line %d: duplicate family %q", lineNo, name)
				}
				pending, help = name, unescapeHelp(text)
			case "TYPE":
				name, typ, found := strings.Cut(rest, " ")
				if !found {
					return nil, fmt.Errorf("expose: line %d: TYPE line without a type", lineNo)
				}
				if pending == "" {
					return nil, fmt.Errorf("expose: line %d: TYPE %s without a preceding HELP", lineNo, name)
				}
				if name != pending {
					return nil, fmt.Errorf("expose: line %d: TYPE %s does not match HELP %s", lineNo, name, pending)
				}
				k, err := parseKind(typ)
				if err != nil {
					return nil, fmt.Errorf("expose: line %d: %v", lineNo, err)
				}
				seen[name] = struct{}{}
				cur = &Family{Name: name, Help: help, Kind: k}
				pending = ""
			}
			continue
		}
		if pending != "" {
			return nil, fmt.Errorf("expose: line %d: sample after HELP %s but before its TYPE", lineNo, pending)
		}
		if cur == nil {
			return nil, fmt.Errorf("expose: line %d: sample before any TYPE line", lineNo)
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("expose: line %d: %v", lineNo, err)
		}
		if !sampleNameMatches(cur, s.Name) {
			return nil, fmt.Errorf("expose: line %d: sample %s does not belong to family %s", lineNo, s.Name, cur.Name)
		}
		cur.Samples = append(cur.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := finish(); err != nil {
		return nil, err
	}
	return fams, nil
}

// commentDirective splits a "# HELP name …" / "# TYPE name …" line,
// returning the remainder after the directive.
func commentDirective(line string) (rest, kind string, ok bool) {
	body := strings.TrimPrefix(line, "#")
	body = strings.TrimPrefix(body, " ")
	for _, k := range [...]string{"HELP ", "TYPE "} {
		if strings.HasPrefix(body, k) {
			return body[len(k):], strings.TrimSpace(k), true
		}
	}
	return "", "", false
}

func parseKind(s string) (Kind, error) {
	switch s {
	case "counter":
		return KindCounter, nil
	case "gauge":
		return KindGauge, nil
	case "histogram":
		return KindHistogram, nil
	}
	return 0, fmt.Errorf("unsupported metric type %q", s)
}

// sampleNameMatches accepts the family name itself and, for histograms,
// the three derived sample names.
func sampleNameMatches(f *Family, name string) bool {
	if f.Kind == KindHistogram {
		return name == f.Name+"_bucket" || name == f.Name+"_sum" || name == f.Name+"_count"
	}
	return name == f.Name
}

// parseSample parses `name[{labels}] value`.
func parseSample(line string) (Sample, error) {
	var s Sample
	rest := line
	brace := strings.IndexByte(rest, '{')
	space := strings.IndexByte(rest, ' ')
	if brace >= 0 && (space < 0 || brace < space) {
		s.Name = rest[:brace]
		var err error
		s.Labels, rest, err = parseLabels(rest[brace:])
		if err != nil {
			return s, err
		}
		rest = strings.TrimPrefix(rest, " ")
	} else {
		if space < 0 {
			return s, fmt.Errorf("sample %q has no value", line)
		}
		s.Name, rest = rest[:space], rest[space+1:]
	}
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid sample name %q", s.Name)
	}
	if strings.ContainsAny(rest, " \t") {
		return s, fmt.Errorf("sample %q carries a timestamp or trailing garbage", line)
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q", rest)
	}
	s.Value = v
	return s, nil
}

// parseLabels consumes a `{name="value",...}` block (trailing comma
// permitted, as the format allows) and returns the remaining input.
func parseLabels(in string) ([]Label, string, error) {
	if in == "" || in[0] != '{' {
		return nil, in, fmt.Errorf("label block must start with '{'")
	}
	in = in[1:]
	var out []Label
	for {
		if in == "" {
			return nil, in, fmt.Errorf("unterminated label block")
		}
		if in[0] == '}' {
			return out, in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return nil, in, fmt.Errorf("label without '='")
		}
		name := in[:eq]
		if !validLabelName(name) {
			return nil, in, fmt.Errorf("invalid label name %q", name)
		}
		in = in[eq+1:]
		if in == "" || in[0] != '"' {
			return nil, in, fmt.Errorf("label %s: value must be quoted", name)
		}
		val, rest, err := unquoteLabelValue(in)
		if err != nil {
			return nil, in, fmt.Errorf("label %s: %v", name, err)
		}
		out = append(out, Label{Name: name, Value: val})
		in = rest
		switch {
		case strings.HasPrefix(in, ","):
			in = in[1:]
		case strings.HasPrefix(in, "}"):
			// loop exits on the next iteration
		default:
			return nil, in, fmt.Errorf("label %s: expected ',' or '}' after value", name)
		}
	}
}

// unquoteLabelValue reads a leading quoted label value, processing the
// format's three escapes, and returns the remainder.
func unquoteLabelValue(in string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", in, fmt.Errorf("dangling escape")
			}
			switch in[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", in, fmt.Errorf("unknown escape \\%c", in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", in, fmt.Errorf("unterminated quoted value")
}

func unescapeHelp(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			switch s[i+1] {
			case '\\':
				b.WriteByte('\\')
				i++
				continue
			case 'n':
				b.WriteByte('\n')
				i++
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// validateFamily enforces per-kind sample invariants after a family's
// samples are all in.
func validateFamily(f *Family) error {
	keys := make(map[string]struct{}, len(f.Samples))
	for i := range f.Samples {
		s := &f.Samples[i]
		k := sampleKey(s.Name, s.Labels)
		if _, dup := keys[k]; dup {
			return fmt.Errorf("expose: family %s: duplicate sample %s", f.Name, k)
		}
		keys[k] = struct{}{}
		if f.Kind == KindCounter && (math.IsNaN(s.Value) || math.IsInf(s.Value, 0) || s.Value < 0) {
			return fmt.Errorf("expose: family %s: counter sample %s has value %g", f.Name, k, s.Value)
		}
	}
	if f.Kind == KindHistogram {
		return validateHistogram(f)
	}
	return nil
}

// histSeries accumulates one label set's histogram samples.
type histSeries struct {
	buckets []bucket
	sum     *float64
	count   *float64
}

type bucket struct {
	le float64
	v  float64
}

// validateHistogram checks each label set of a histogram family for the
// full complement of derived series and cumulative buckets.
func validateHistogram(f *Family) error {
	series := make(map[string]*histSeries)
	get := func(labels []Label) *histSeries {
		k := sampleKey("", labels)
		hs := series[k]
		if hs == nil {
			hs = &histSeries{}
			series[k] = hs
		}
		return hs
	}
	for i := range f.Samples {
		s := &f.Samples[i]
		switch s.Name {
		case f.Name + "_bucket":
			le, rest, err := splitLE(s.Labels)
			if err != nil {
				return fmt.Errorf("expose: family %s: %v", f.Name, err)
			}
			hs := get(rest)
			hs.buckets = append(hs.buckets, bucket{le: le, v: s.Value})
		case f.Name + "_sum":
			v := s.Value
			get(s.Labels).sum = &v
		case f.Name + "_count":
			v := s.Value
			get(s.Labels).count = &v
		}
	}
	for k, hs := range series {
		if len(hs.buckets) == 0 {
			return fmt.Errorf("expose: family %s%s: no buckets", f.Name, k)
		}
		if hs.sum == nil || hs.count == nil {
			return fmt.Errorf("expose: family %s%s: missing _sum or _count", f.Name, k)
		}
		sort.Slice(hs.buckets, func(i, j int) bool { return hs.buckets[i].le < hs.buckets[j].le })
		last := hs.buckets[len(hs.buckets)-1]
		if !math.IsInf(last.le, 1) {
			return fmt.Errorf("expose: family %s%s: no le=\"+Inf\" bucket", f.Name, k)
		}
		for i := 1; i < len(hs.buckets); i++ {
			if hs.buckets[i].v < hs.buckets[i-1].v {
				return fmt.Errorf("expose: family %s%s: bucket le=%g count %g below le=%g count %g (not cumulative)",
					f.Name, k, hs.buckets[i].le, hs.buckets[i].v, hs.buckets[i-1].le, hs.buckets[i-1].v)
			}
		}
		if last.v != *hs.count {
			return fmt.Errorf("expose: family %s%s: +Inf bucket %g disagrees with _count %g", f.Name, k, last.v, *hs.count)
		}
	}
	return nil
}

// splitLE extracts the le label from a bucket sample's label set.
func splitLE(labels []Label) (float64, []Label, error) {
	rest := make([]Label, 0, len(labels))
	le := math.NaN()
	found := false
	for _, l := range labels {
		if l.Name == "le" {
			if found {
				return 0, nil, fmt.Errorf("bucket sample with two le labels")
			}
			v, err := strconv.ParseFloat(l.Value, 64)
			if err != nil {
				return 0, nil, fmt.Errorf("bad le value %q", l.Value)
			}
			le, found = v, true
			continue
		}
		rest = append(rest, l)
	}
	if !found {
		return 0, nil, fmt.Errorf("bucket sample without an le label")
	}
	return le, rest, nil
}

// sampleKey canonicalizes a sample identity: name plus sorted labels.
func sampleKey(name string, labels []Label) string {
	ls := append([]Label(nil), labels...)
	sortLabels(ls)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(l.Value)
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}
