package expose

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Histogram is a concurrent fixed-bucket histogram: per-bucket atomic
// counters plus an atomic count and sum, cheap enough to Observe on the
// serving hot path (one binary search and three atomic adds, no lock).
//
// The fields are individually atomic rather than jointly snapshotted,
// so a scrape racing an Observe may see the observation in the total
// count before its bucket counter — the rendered +Inf bucket (which is
// the total count) therefore always dominates the finite buckets and
// the exposition stays cumulative, at the cost of a transient
// one-observation skew between _count and _sum. That is the standard
// monitoring trade-off; exactness would need a lock on every Observe.
type Histogram struct {
	bounds []float64 // ascending finite upper bounds; +Inf is implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

// NewHistogram builds a histogram over the given upper bounds, which
// must be non-empty, finite and strictly ascending.
func NewHistogram(bounds []float64) (*Histogram, error) {
	if len(bounds) == 0 {
		return nil, fmt.Errorf("expose: histogram needs at least one bucket bound")
	}
	for i, b := range bounds {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return nil, fmt.Errorf("expose: bucket bound %d is %g; bounds must be finite (+Inf is implicit)", i, b)
		}
		if i > 0 && b <= bounds[i-1] {
			return nil, fmt.Errorf("expose: bucket bounds must be strictly ascending (bound %d: %g ≤ %g)",
				i, b, bounds[i-1])
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)),
	}
	return h, nil
}

// Observe records one value. NaN observations are dropped (they would
// poison the sum and belong to no bucket).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	// Total first: see the type comment — the scrape-visible +Inf bucket
	// renders from count, so count must never lag a bucket counter.
	h.count.Add(1)
	if i := sort.SearchFloat64s(h.bounds, v); i < len(h.bounds) {
		h.counts[i].Add(1)
	}
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistView is a point-in-time rendering view of a histogram: cumulative
// counts per finite bound (the +Inf bucket is Count).
type HistView struct {
	UpperBounds []float64
	Cumulative  []uint64
	Count       uint64
	Sum         float64
}

// View snapshots the histogram for rendering. Buckets are read before
// the total count — paired with Observe's count-first ordering, any
// bucket increment the view sees is covered by the count it reads, so
// the rendered +Inf bucket (Count) never undercuts a finite bucket.
func (h *Histogram) View() HistView {
	v := HistView{
		UpperBounds: h.bounds,
		Cumulative:  make([]uint64, len(h.bounds)),
	}
	var c uint64
	for i := range h.counts {
		c += h.counts[i].Load()
		v.Cumulative[i] = c
	}
	v.Count = h.count.Load()
	v.Sum = math.Float64frombits(h.sum.Load())
	return v
}
