package expose

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP svc_requests_total Requests served.
# TYPE svc_requests_total counter
svc_requests_total{shard="0"} 3
svc_requests_total{shard="1"} 4
# some free-form comment the format permits
# HELP svc_queue_len Queue depth.
# TYPE svc_queue_len gauge
svc_queue_len -2.5

# HELP svc_latency_ms Latency.
# TYPE svc_latency_ms histogram
svc_latency_ms_bucket{shard="0",le="0.5"} 1
svc_latency_ms_bucket{shard="0",le="1"} 2
svc_latency_ms_bucket{shard="0",le="+Inf"} 4
svc_latency_ms_sum{shard="0"} 12.5
svc_latency_ms_count{shard="0"} 4
`

func TestParseGood(t *testing.T) {
	fams, err := Parse(strings.NewReader(goodExposition))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 3 {
		t.Fatalf("parsed %d families, want 3", len(fams))
	}
	if fams[0].Name != "svc_requests_total" || fams[0].Kind != KindCounter {
		t.Errorf("family 0 = %s (%v)", fams[0].Name, fams[0].Kind)
	}
	s := fams[0].Sample("svc_requests_total", Label{Name: "shard", Value: "1"})
	if s == nil || s.Value != 4 {
		t.Errorf("shard 1 sample = %+v, want value 4", s)
	}
	if fams[1].Samples[0].Value != -2.5 {
		t.Errorf("gauge value = %g", fams[1].Samples[0].Value)
	}
	if got := len(fams[2].Samples); got != 5 {
		t.Errorf("histogram family has %d samples, want 5", got)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"sample before TYPE": `svc_total 1`,
		"TYPE without HELP": `# TYPE svc_total counter
svc_total 1`,
		"HELP without TYPE": `# HELP svc_total help text`,
		"sample between HELP and TYPE": `# HELP svc_total h
svc_total 1`,
		"duplicate family": `# HELP a_total h
# TYPE a_total counter
a_total 1
# HELP a_total h
# TYPE a_total counter
a_total 2`,
		"duplicate sample": `# HELP a_total h
# TYPE a_total counter
a_total{x="1"} 1
a_total{x="1"} 2`,
		"foreign sample in family": `# HELP a_total h
# TYPE a_total counter
b_total 1`,
		"negative counter": `# HELP a_total h
# TYPE a_total counter
a_total -1`,
		"NaN counter": `# HELP a_total h
# TYPE a_total counter
a_total NaN`,
		"unsupported type": `# HELP a h
# TYPE a summary
a 1`,
		"bad label syntax": `# HELP a_total h
# TYPE a_total counter
a_total{x=unquoted} 1`,
		"unterminated label block": `# HELP a_total h
# TYPE a_total counter
a_total{x="1" 1`,
		"reserved label name": `# HELP a_total h
# TYPE a_total counter
a_total{__x="1"} 1`,
		"timestamp rejected": `# HELP a_total h
# TYPE a_total counter
a_total 1 1700000000000`,
		"histogram without +Inf": `# HELP h h
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1`,
		"histogram non-cumulative": `# HELP h h
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5`,
		"histogram +Inf != count": `# HELP h h
# TYPE h histogram
h_bucket{le="1"} 1
h_bucket{le="+Inf"} 4
h_sum 1
h_count 5`,
		"histogram missing sum": `# HELP h h
# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1`,
		"histogram bucket without le": `# HELP h h
# TYPE h histogram
h_bucket{shard="0"} 1
h_sum 1
h_count 1`,
	}
	for name, in := range cases {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseHistogramMultiSeries(t *testing.T) {
	in := `# HELP h h
# TYPE h histogram
h_bucket{shard="0",le="1"} 1
h_bucket{shard="0",le="+Inf"} 2
h_sum{shard="0"} 3
h_count{shard="0"} 2
h_bucket{shard="1",le="1"} 0
h_bucket{shard="1",le="+Inf"} 0
h_sum{shard="1"} 0
h_count{shard="1"} 0
`
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || len(fams[0].Samples) != 8 {
		t.Fatalf("parse = %d families / %d samples", len(fams), len(fams[0].Samples))
	}
}
