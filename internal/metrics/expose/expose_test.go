package expose

import (
	"math"
	"strings"
	"testing"
)

func TestWriteTextGolden(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Desc{Name: "svc_requests_total", Help: "Requests served.", Kind: KindCounter},
		func(emit func(Point)) {
			emit(Point{Labels: []Label{{Name: "shard", Value: "0"}}, Value: 3})
			emit(Point{Labels: []Label{{Name: "shard", Value: "1"}}, Value: 4})
		})
	r.MustRegister(Desc{Name: "svc_queue_len", Help: "Queue depth.", Kind: KindGauge},
		func(emit func(Point)) { emit(Point{Value: 2}) })
	h, err := NewHistogram([]float64{0.5, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.25, 0.75, 1.5, 10} {
		h.Observe(v)
	}
	r.MustRegister(Desc{Name: "svc_latency_ms", Help: "Latency.", Kind: KindHistogram},
		func(emit func(Point)) {
			v := h.View()
			emit(Point{Labels: []Label{{Name: "shard", Value: "0"}}, Hist: &v})
		})

	want := `# HELP svc_requests_total Requests served.
# TYPE svc_requests_total counter
svc_requests_total{shard="0"} 3
svc_requests_total{shard="1"} 4
# HELP svc_queue_len Queue depth.
# TYPE svc_queue_len gauge
svc_queue_len 2
# HELP svc_latency_ms Latency.
# TYPE svc_latency_ms histogram
svc_latency_ms_bucket{shard="0",le="0.5"} 1
svc_latency_ms_bucket{shard="0",le="1"} 2
svc_latency_ms_bucket{shard="0",le="2"} 3
svc_latency_ms_bucket{shard="0",le="+Inf"} 4
svc_latency_ms_sum{shard="0"} 12.5
svc_latency_ms_count{shard="0"} 4
`
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", b.String(), want)
	}
}

func TestWriteTextEscaping(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Desc{Name: "esc_total", Help: "line one\nback\\slash", Kind: KindCounter},
		func(emit func(Point)) {
			emit(Point{Labels: []Label{{Name: "path", Value: "a\"b\\c\nd"}}, Value: 1})
		})
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	want := "# HELP esc_total line one\\nback\\\\slash\n" +
		"# TYPE esc_total counter\n" +
		"esc_total{path=\"a\\\"b\\\\c\\nd\"} 1\n"
	if b.String() != want {
		t.Errorf("escaping mismatch:\ngot  %q\nwant %q", b.String(), want)
	}
	// The strict parser must invert both escapings.
	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if fams[0].Help != "line one\nback\\slash" {
		t.Errorf("help round-trip = %q", fams[0].Help)
	}
	if got := fams[0].Samples[0].Labels[0].Value; got != "a\"b\\c\nd" {
		t.Errorf("label value round-trip = %q", got)
	}
}

func TestRegisterRejects(t *testing.T) {
	r := NewRegistry()
	nop := func(emit func(Point)) {}
	if err := r.Register(Desc{Name: "2bad", Help: "h", Kind: KindGauge}, nop); err == nil {
		t.Error("invalid metric name accepted")
	}
	if err := r.Register(Desc{Name: "ok_total", Help: "", Kind: KindCounter}, nop); err == nil {
		t.Error("empty help accepted")
	}
	if err := r.Register(Desc{Name: "ok_total", Help: "h", Kind: KindCounter}, nil); err == nil {
		t.Error("nil collector accepted")
	}
	if err := r.Register(Desc{Name: "ok_total", Help: "h", Kind: KindCounter}, nop); err != nil {
		t.Errorf("valid registration rejected: %v", err)
	}
	if err := r.Register(Desc{Name: "ok_total", Help: "h", Kind: KindCounter}, nop); err == nil {
		t.Error("duplicate name accepted")
	}
}

func TestWriteTextRejectsBadLabelName(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(Desc{Name: "bad_label_total", Help: "h", Kind: KindCounter},
		func(emit func(Point)) {
			emit(Point{Labels: []Label{{Name: "__reserved", Value: "x"}}, Value: 1})
		})
	if err := r.WriteText(&strings.Builder{}); err == nil {
		t.Error("reserved label name rendered without error")
	}
}

func TestHistogramObserve(t *testing.T) {
	h, err := NewHistogram([]float64{1, 10, 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{0.5, 1, 1.0001, 50, 1000, math.NaN()} {
		h.Observe(v)
	}
	v := h.View()
	// 0.5 and the boundary value 1 land in le=1; NaN is dropped.
	wantCum := []uint64{2, 3, 4}
	for i, c := range v.Cumulative {
		if c != wantCum[i] {
			t.Errorf("bucket le=%g cumulative = %d, want %d", v.UpperBounds[i], c, wantCum[i])
		}
	}
	if v.Count != 5 {
		t.Errorf("count = %d, want 5", v.Count)
	}
	if math.Abs(v.Sum-1052.5001) > 1e-9 {
		t.Errorf("sum = %g, want 1052.5001", v.Sum)
	}
}

func TestNewHistogramRejects(t *testing.T) {
	for _, bounds := range [][]float64{
		nil,
		{},
		{1, 1},
		{2, 1},
		{1, math.Inf(1)},
		{math.NaN()},
	} {
		if _, err := NewHistogram(bounds); err == nil {
			t.Errorf("NewHistogram(%v) accepted", bounds)
		}
	}
}

func TestExpBuckets(t *testing.T) {
	got, err := ExpBuckets(0.25, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.25, 0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d = %g, want %g", i, got[i], want[i])
		}
	}
	for _, c := range []struct {
		start, factor float64
		n             int
	}{
		{0, 2, 3}, {-1, 2, 3}, {1, 1, 3}, {1, 0.5, 3}, {1, 2, 0},
	} {
		if _, err := ExpBuckets(c.start, c.factor, c.n); err == nil {
			t.Errorf("ExpBuckets(%g, %g, %d) accepted", c.start, c.factor, c.n)
		}
	}
}

func TestValueFormatting(t *testing.T) {
	for _, c := range []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{2.5, "2.5"},
		{math.Inf(1), "+Inf"},
		{math.Inf(-1), "-Inf"},
		{math.NaN(), "NaN"},
		{1e21, "1e+21"},
	} {
		if got := string(appendValue(nil, c.v)); got != c.want {
			t.Errorf("appendValue(%g) = %q, want %q", c.v, got, c.want)
		}
	}
}
