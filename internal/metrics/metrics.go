// Package metrics implements the evaluation measures the paper reports:
// per-stroke confusion matrices and accuracies, top-k word accuracy, and
// the WPM/LPM text-entry speed measures (§V).
package metrics

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stroke"
)

// ConfusionMatrix accumulates stroke-recognition outcomes.
// Counts[intended][observed] tallies recognized strokes; Missed[intended]
// tallies instances where no (or more than one) segment was detected.
type ConfusionMatrix struct {
	Counts [stroke.NumStrokes][stroke.NumStrokes]int
	Missed [stroke.NumStrokes]int
}

// Add records one recognition outcome.
func (c *ConfusionMatrix) Add(intended, observed stroke.Stroke) error {
	if !intended.Valid() || !observed.Valid() {
		return fmt.Errorf("metrics: invalid stroke pair (%d, %d)", int(intended), int(observed))
	}
	c.Counts[intended.Index()][observed.Index()]++
	return nil
}

// AddMiss records a detection failure for an intended stroke.
func (c *ConfusionMatrix) AddMiss(intended stroke.Stroke) error {
	if !intended.Valid() {
		return fmt.Errorf("metrics: invalid stroke %d", int(intended))
	}
	c.Missed[intended.Index()]++
	return nil
}

// Merge adds other's counts into c.
func (c *ConfusionMatrix) Merge(other *ConfusionMatrix) {
	for i := range c.Counts {
		for j := range c.Counts[i] {
			c.Counts[i][j] += other.Counts[i][j]
		}
		c.Missed[i] += other.Missed[i]
	}
}

// RowTotal returns the number of recorded instances for an intended
// stroke, including misses.
func (c *ConfusionMatrix) RowTotal(intended stroke.Stroke) int {
	t := c.Missed[intended.Index()]
	for _, n := range c.Counts[intended.Index()] {
		t += n
	}
	return t
}

// Accuracy returns the recognition accuracy of one intended stroke
// (correct / all instances), or NaN when no instances were recorded.
func (c *ConfusionMatrix) Accuracy(intended stroke.Stroke) float64 {
	t := c.RowTotal(intended)
	if t == 0 {
		return math.NaN()
	}
	return float64(c.Counts[intended.Index()][intended.Index()]) / float64(t)
}

// OverallAccuracy returns correct / all recorded instances.
func (c *ConfusionMatrix) OverallAccuracy() float64 {
	correct, total := 0, 0
	for _, s := range stroke.AllStrokes() {
		correct += c.Counts[s.Index()][s.Index()]
		total += c.RowTotal(s)
	}
	if total == 0 {
		return math.NaN()
	}
	return float64(correct) / float64(total)
}

// Probabilities converts counts into a row-normalized probability matrix
// P[intended][observed], treating misses as proportionally distributed
// over observed outcomes (the paper's confusion matrix conditions on a
// stroke being detected). Rows with no detections become uniform.
func (c *ConfusionMatrix) Probabilities() [stroke.NumStrokes][stroke.NumStrokes]float64 {
	var out [stroke.NumStrokes][stroke.NumStrokes]float64
	for i := range c.Counts {
		rowSum := 0
		for _, n := range c.Counts[i] {
			rowSum += n
		}
		if rowSum == 0 {
			for j := range out[i] {
				out[i][j] = 1.0 / stroke.NumStrokes
			}
			continue
		}
		for j, n := range c.Counts[i] {
			out[i][j] = float64(n) / float64(rowSum)
		}
	}
	return out
}

// TopK accumulates top-k word-recognition accuracy for k = 1..K.
type TopK struct {
	// Hits[k-1] counts trials where the intended word ranked within the
	// top k candidates.
	Hits []int
	// Trials is the number of recorded attempts.
	Trials int
}

// NewTopK creates an accumulator for ranks 1..k.
func NewTopK(k int) (*TopK, error) {
	if k <= 0 {
		return nil, fmt.Errorf("metrics: k must be positive, got %d", k)
	}
	return &TopK{Hits: make([]int, k)}, nil
}

// Record notes one word-entry attempt whose intended word ranked at the
// 1-based position rank among candidates (0 = not present).
func (t *TopK) Record(rank int) {
	t.Trials++
	if rank <= 0 {
		return
	}
	for k := rank; k <= len(t.Hits); k++ {
		t.Hits[k-1]++
	}
}

// Accuracy returns the top-k accuracy, or NaN with no trials.
func (t *TopK) Accuracy(k int) float64 {
	if t.Trials == 0 || k < 1 || k > len(t.Hits) {
		return math.NaN()
	}
	return float64(t.Hits[k-1]) / float64(t.Trials)
}

// Speed measures text-entry throughput.
type Speed struct {
	// Words and Letters are the entered totals.
	Words, Letters int
	// Seconds is the elapsed entry time.
	Seconds float64
}

// Add accumulates one entered word of the given letter count taking dt
// seconds.
func (s *Speed) Add(letters int, dt float64) {
	s.Words++
	s.Letters += letters
	s.Seconds += dt
}

// WPM returns words per minute (the paper's primary speed metric), or 0
// when no time has elapsed.
func (s *Speed) WPM() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return float64(s.Words) / s.Seconds * 60
}

// LPM returns letters per minute, the length-aware speed metric of
// Fig. 17.
func (s *Speed) LPM() float64 {
	if s.Seconds <= 0 {
		return 0
	}
	return float64(s.Letters) / s.Seconds * 60
}

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or NaN for
// fewer than one element.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Percentile returns the p-th percentile of xs (p in [0,100]) using
// linear interpolation between closest ranks — the convention load
// reports use for p50/p95/p99. The input is not modified. NaN for empty
// input or p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 || p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile's interpolation over an already-sorted
// non-empty slice — the shared core that lets SummarizeLatencies pay
// for one sort instead of three.
func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Reservoir is a bounded ring of recent latency samples. Once full, new
// samples overwrite the oldest, so the reservoir always summarizes the
// most recent Cap observations. It is not safe for concurrent use; the
// owner (e.g. one serve.Manager shard) guards it with its own lock.
type Reservoir struct {
	samples []float64
	next    int
	full    bool
}

// NewReservoir creates a reservoir bounded at capacity samples
// (capacity must be positive).
func NewReservoir(capacity int) (*Reservoir, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("metrics: reservoir capacity must be positive, got %d", capacity)
	}
	return &Reservoir{samples: make([]float64, 0, capacity)}, nil
}

// Add records one sample, evicting the oldest when full.
func (r *Reservoir) Add(x float64) {
	if !r.full && len(r.samples) < cap(r.samples) {
		r.samples = append(r.samples, x)
		if len(r.samples) == cap(r.samples) {
			r.full = true
		}
		return
	}
	r.samples[r.next] = x
	r.next = (r.next + 1) % len(r.samples)
}

// Len reports how many samples the reservoir currently holds.
func (r *Reservoir) Len() int { return len(r.samples) }

// Samples returns a copy of the retained samples in unspecified order
// (quantiles do not depend on order).
func (r *Reservoir) Samples() []float64 {
	return append([]float64(nil), r.samples...)
}

// MergeLatencies pools several per-shard sample sets into one summary by
// concatenation — exact for quantiles over the union of the retained
// samples, with shards weighted by how many samples each retained. All
// fields are NaN when every group is empty.
func MergeLatencies(groups ...[]float64) LatencySummary {
	total := 0
	for _, g := range groups {
		total += len(g)
	}
	pooled := make([]float64, 0, total)
	for _, g := range groups {
		pooled = append(pooled, g...)
	}
	// pooled is owned here, so it can be summarized in place without the
	// defensive copy SummarizeLatencies makes.
	return summarizeSortingInPlace(pooled)
}

// LatencySummary is the percentile triple every serving report quotes.
type LatencySummary struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
}

// SummarizeLatencies computes the standard p50/p95/p99 triple. The
// input is copied and sorted once, then indexed three times — this sits
// on the stats path of every serving shard, where the previous
// copy-and-sort per percentile tripled the cost on a full 4096-sample
// reservoir. The input is not modified. All fields are NaN for empty
// input.
func SummarizeLatencies(xs []float64) LatencySummary {
	return summarizeSortingInPlace(append([]float64(nil), xs...))
}

// summarizeSortingInPlace sorts xs (which the caller must own) and
// reads the triple out of the single sorted copy.
func summarizeSortingInPlace(xs []float64) LatencySummary {
	if len(xs) == 0 {
		nan := math.NaN()
		return LatencySummary{P50: nan, P95: nan, P99: nan}
	}
	sort.Float64s(xs)
	return LatencySummary{
		P50: percentileSorted(xs, 50),
		P95: percentileSorted(xs, 95),
		P99: percentileSorted(xs, 99),
	}
}
