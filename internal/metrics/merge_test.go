package metrics

import (
	"math"
	"testing"
)

// seq returns [1, 2, …, n] as float64s.
func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}

// TestMergeLatencies drives the quantile merge the aggregated /statsz
// endpoint relies on: pooling per-shard reservoirs must behave like one
// reservoir that saw every sample.
func TestMergeLatencies(t *testing.T) {
	cases := []struct {
		name   string
		groups [][]float64
		want   LatencySummary // NaN fields mean "expect NaN"
	}{
		{
			name:   "all empty",
			groups: [][]float64{nil, {}, nil},
			want:   LatencySummary{P50: math.NaN(), P95: math.NaN(), P99: math.NaN()},
		},
		{
			name:   "no groups",
			groups: nil,
			want:   LatencySummary{P50: math.NaN(), P95: math.NaN(), P99: math.NaN()},
		},
		{
			name:   "single sample in one shard",
			groups: [][]float64{nil, {7.5}, nil},
			want:   LatencySummary{P50: 7.5, P95: 7.5, P99: 7.5},
		},
		{
			name:   "identical constant shards",
			groups: [][]float64{{3, 3, 3}, {3, 3}},
			want:   LatencySummary{P50: 3, P95: 3, P99: 3},
		},
		{
			name: "skewed shard sizes match pooled percentiles",
			// One hot shard with 99 samples, one nearly idle with 1: the
			// merge must weight by sample count, not average summaries.
			groups: [][]float64{seq(99), {100}},
			want: LatencySummary{
				P50: Percentile(seq(100), 50),
				P95: Percentile(seq(100), 95),
				P99: Percentile(seq(100), 99),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := MergeLatencies(tc.groups...)
			check := func(name string, got, want float64) {
				if math.IsNaN(want) {
					if !math.IsNaN(got) {
						t.Errorf("%s = %g, want NaN", name, got)
					}
					return
				}
				if math.Abs(got-want) > 1e-9 {
					t.Errorf("%s = %g, want %g", name, got, want)
				}
			}
			check("P50", got.P50, tc.want.P50)
			check("P95", got.P95, tc.want.P95)
			check("P99", got.P99, tc.want.P99)
		})
	}
}

// TestMergeLatenciesMonotone checks p50 ≤ p95 ≤ p99 across merges of
// arbitrarily skewed groups — the ordering the /statsz consumers assume.
func TestMergeLatenciesMonotone(t *testing.T) {
	groupSets := [][][]float64{
		{seq(1), seq(2), seq(3)},
		{seq(500), {0.001}},
		{{9, 1, 5}, {2, 2, 2, 2, 2, 2, 2, 2}, {100}},
		{seq(4096), seq(1)},
	}
	for i, groups := range groupSets {
		s := MergeLatencies(groups...)
		if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
			t.Errorf("set %d: quantiles not monotone: %+v", i, s)
		}
	}
}

func TestReservoirBoundsAndEviction(t *testing.T) {
	r, err := NewReservoir(4)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || len(r.Samples()) != 0 {
		t.Fatalf("fresh reservoir not empty: len %d", r.Len())
	}
	for i := 1; i <= 10; i++ {
		r.Add(float64(i))
	}
	if r.Len() != 4 {
		t.Fatalf("reservoir len = %d, want capacity 4", r.Len())
	}
	// The four most recent samples (7..10) survive, oldest evicted.
	got := map[float64]bool{}
	for _, x := range r.Samples() {
		got[x] = true
	}
	for _, want := range []float64{7, 8, 9, 10} {
		if !got[want] {
			t.Errorf("recent sample %g evicted; retained %v", want, r.Samples())
		}
	}
	if _, err := NewReservoir(0); err == nil {
		t.Error("NewReservoir(0) accepted a non-positive capacity")
	}
}
