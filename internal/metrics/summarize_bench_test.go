package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// benchSamples mirrors a full serving latency reservoir (the
// latencyRing in internal/serve).
func benchSamples(n int) []float64 {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 5
	}
	return xs
}

// TestSummarizeLatenciesMatchesPercentile pins the sort-once fast path
// to Percentile's documented standalone semantics.
func TestSummarizeLatenciesMatchesPercentile(t *testing.T) {
	for _, n := range []int{1, 2, 7, 100, 4096} {
		xs := benchSamples(n)
		got := SummarizeLatencies(xs)
		want := LatencySummary{
			P50: Percentile(xs, 50),
			P95: Percentile(xs, 95),
			P99: Percentile(xs, 99),
		}
		if got != want {
			t.Errorf("n=%d: SummarizeLatencies = %+v, want %+v", n, got, want)
		}
	}
	empty := SummarizeLatencies(nil)
	if !math.IsNaN(empty.P50) || !math.IsNaN(empty.P95) || !math.IsNaN(empty.P99) {
		t.Errorf("empty input: got %+v, want NaN triple", empty)
	}
}

// BenchmarkSummarizeLatencies measures the shipping sort-once triple.
func BenchmarkSummarizeLatencies(b *testing.B) {
	xs := benchSamples(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SummarizeLatencies(xs)
	}
}

// BenchmarkSummarizeLatenciesTripleSort measures the replaced
// implementation — three independent Percentile calls, each paying its
// own copy and sort — as the comparison baseline.
func BenchmarkSummarizeLatenciesTripleSort(b *testing.B) {
	xs := benchSamples(4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = LatencySummary{
			P50: Percentile(xs, 50),
			P95: Percentile(xs, 95),
			P99: Percentile(xs, 99),
		}
	}
}
