package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stroke"
)

func TestConfusionMatrixBasics(t *testing.T) {
	var c ConfusionMatrix
	for i := 0; i < 9; i++ {
		if err := c.Add(stroke.S1, stroke.S1); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(stroke.S1, stroke.S2); err != nil {
		t.Fatal(err)
	}
	if got := c.Accuracy(stroke.S1); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Accuracy(S1) = %g, want 0.9", got)
	}
	if got := c.RowTotal(stroke.S1); got != 10 {
		t.Errorf("RowTotal = %d, want 10", got)
	}
	if err := c.Add(stroke.Stroke(0), stroke.S1); err == nil {
		t.Error("invalid stroke accepted")
	}
}

func TestConfusionMatrixMisses(t *testing.T) {
	var c ConfusionMatrix
	if err := c.Add(stroke.S2, stroke.S2); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMiss(stroke.S2); err != nil {
		t.Fatal(err)
	}
	if got := c.Accuracy(stroke.S2); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Accuracy with miss = %g, want 0.5", got)
	}
	if err := c.AddMiss(stroke.Stroke(9)); err == nil {
		t.Error("invalid miss accepted")
	}
}

func TestConfusionMatrixMerge(t *testing.T) {
	var a, b ConfusionMatrix
	if err := a.Add(stroke.S1, stroke.S1); err != nil {
		t.Fatal(err)
	}
	if err := b.Add(stroke.S1, stroke.S3); err != nil {
		t.Fatal(err)
	}
	if err := b.AddMiss(stroke.S4); err != nil {
		t.Fatal(err)
	}
	a.Merge(&b)
	if a.RowTotal(stroke.S1) != 2 {
		t.Errorf("merged S1 total = %d, want 2", a.RowTotal(stroke.S1))
	}
	if a.Missed[stroke.S4.Index()] != 1 {
		t.Error("merge lost misses")
	}
}

func TestOverallAccuracy(t *testing.T) {
	var c ConfusionMatrix
	if math.IsNaN(c.OverallAccuracy()) == false {
		t.Error("empty matrix should give NaN")
	}
	for _, s := range stroke.AllStrokes() {
		if err := c.Add(s, s); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Add(stroke.S1, stroke.S2); err != nil {
		t.Fatal(err)
	}
	want := 6.0 / 7.0
	if got := c.OverallAccuracy(); math.Abs(got-want) > 1e-12 {
		t.Errorf("overall = %g, want %g", got, want)
	}
}

func TestProbabilitiesRowsSumToOneProperty(t *testing.T) {
	f := func(seed uint64, counts [6][6]uint8) bool {
		var c ConfusionMatrix
		for i := range counts {
			for j := range counts[i] {
				c.Counts[i][j] = int(counts[i][j])
			}
		}
		p := c.Probabilities()
		for i := range p {
			sum := 0.0
			for _, v := range p[i] {
				if v < 0 || v > 1 {
					return false
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopK(t *testing.T) {
	if _, err := NewTopK(0); err == nil {
		t.Error("zero k accepted")
	}
	tk, err := NewTopK(5)
	if err != nil {
		t.Fatal(err)
	}
	tk.Record(1) // hit at rank 1
	tk.Record(3) // hit at rank 3
	tk.Record(0) // miss
	if got := tk.Accuracy(1); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("top-1 = %g, want 1/3", got)
	}
	if got := tk.Accuracy(3); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("top-3 = %g, want 2/3", got)
	}
	if got := tk.Accuracy(5); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("top-5 = %g, want 2/3", got)
	}
	if !math.IsNaN(tk.Accuracy(9)) {
		t.Error("out-of-range k should give NaN")
	}
}

func TestTopKMonotoneProperty(t *testing.T) {
	// Property: top-k accuracy is nondecreasing in k.
	f := func(ranks []uint8) bool {
		tk, err := NewTopK(5)
		if err != nil {
			return false
		}
		for _, r := range ranks {
			tk.Record(int(r % 7)) // 0..6, some beyond k
		}
		if tk.Trials == 0 {
			return true
		}
		prev := 0.0
		for k := 1; k <= 5; k++ {
			a := tk.Accuracy(k)
			if a < prev-1e-12 {
				return false
			}
			prev = a
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpeed(t *testing.T) {
	var s Speed
	if s.WPM() != 0 || s.LPM() != 0 {
		t.Error("empty speed should be 0")
	}
	s.Add(5, 6)
	s.Add(3, 6)
	// 2 words, 8 letters in 12 s → 10 WPM, 40 LPM.
	if math.Abs(s.WPM()-10) > 1e-12 {
		t.Errorf("WPM = %g, want 10", s.WPM())
	}
	if math.Abs(s.LPM()-40) > 1e-12 {
		t.Errorf("LPM = %g, want 40", s.LPM())
	}
}

func TestMeanStdDev(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(StdDev(nil)) {
		t.Error("empty input should give NaN")
	}
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %g, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %g, want 2", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // unsorted on purpose
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 || xs[4] != 5 {
		t.Error("Percentile mutated its input")
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty input should be NaN")
	}
	if !math.IsNaN(Percentile(xs, 101)) || !math.IsNaN(Percentile(xs, -1)) {
		t.Error("out-of-range p should be NaN")
	}
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("single element = %g, want 7", got)
	}
}

func TestSummarizeLatencies(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := SummarizeLatencies(xs)
	if math.Abs(s.P50-50.5) > 1e-9 || math.Abs(s.P95-95.05) > 1e-9 || math.Abs(s.P99-99.01) > 1e-9 {
		t.Errorf("summary = %+v", s)
	}
	empty := SummarizeLatencies(nil)
	if !math.IsNaN(empty.P50) || !math.IsNaN(empty.P95) || !math.IsNaN(empty.P99) {
		t.Errorf("empty summary = %+v, want NaNs", empty)
	}
}
