package audio

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// NoiseSource generates reproducible pseudo-random noise. All generators
// take an explicit *rand.Rand so experiments are deterministic given a
// seed.
type NoiseSource struct {
	rng *rand.Rand
}

// NewNoiseSource creates a deterministic noise source from a seed.
func NewNoiseSource(seed uint64) *NoiseSource {
	return &NoiseSource{rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))}
}

// White fills a signal with zero-mean Gaussian white noise of the given RMS
// amplitude.
func (n *NoiseSource) White(rate, rms, duration float64) (*Signal, error) {
	s, err := NewSignal(rate, duration)
	if err != nil {
		return nil, err
	}
	for i := range s.Samples {
		s.Samples[i] = rms * n.rng.NormFloat64()
	}
	return s, nil
}

// Pink generates approximately 1/f noise using the Voss-McCartney
// algorithm with 16 octave generators, scaled to the requested RMS.
func (n *NoiseSource) Pink(rate, rms, duration float64) (*Signal, error) {
	s, err := NewSignal(rate, duration)
	if err != nil {
		return nil, err
	}
	const rows = 16
	var vals [rows]float64
	sum := 0.0
	for i := range vals {
		vals[i] = n.rng.NormFloat64()
		sum += vals[i]
	}
	counter := 0
	for i := range s.Samples {
		counter++
		// Index of lowest set bit selects which row to update.
		row := 0
		for b := counter; b&1 == 0 && row < rows-1; b >>= 1 {
			row++
		}
		sum -= vals[row]
		vals[row] = n.rng.NormFloat64()
		sum += vals[row]
		s.Samples[i] = sum / math.Sqrt(rows)
	}
	cur := s.RMS()
	if cur > 0 {
		s.Scale(rms / cur)
	}
	return s, nil
}

// Babble synthesizes speech-like ambient noise: band-limited energy below
// roughly 4 kHz with syllabic (~4 Hz) amplitude modulation. Because its
// spectrum sits far below the 20 kHz probe band, it perturbs the pipeline
// only through front-end quantization, matching the paper's observation
// that conversational noise barely overlaps the band of interest.
func (n *NoiseSource) Babble(rate, rms, duration float64) (*Signal, error) {
	s, err := NewSignal(rate, duration)
	if err != nil {
		return nil, err
	}
	// Sum of a few formant-like tones with random walk frequencies.
	type voice struct {
		freq, phase float64
		modPhase    float64
		modRate     float64
	}
	voices := make([]voice, 6)
	for i := range voices {
		voices[i] = voice{
			freq:     150 + n.rng.Float64()*2800,
			phase:    n.rng.Float64() * 2 * math.Pi,
			modPhase: n.rng.Float64() * 2 * math.Pi,
			modRate:  2 + n.rng.Float64()*4,
		}
	}
	for i := range s.Samples {
		t := float64(i) / rate
		v := 0.0
		for j := range voices {
			vc := &voices[j]
			env := 0.5 * (1 + math.Sin(2*math.Pi*vc.modRate*t+vc.modPhase))
			v += env * math.Sin(2*math.Pi*vc.freq*t+vc.phase)
		}
		// Slow random drift of one voice per ~10k samples keeps the
		// spectrum from being a static comb.
		if i%8192 == 0 {
			k := n.rng.IntN(len(voices))
			voices[k].freq = 150 + n.rng.Float64()*2800
		}
		s.Samples[i] = v
	}
	cur := s.RMS()
	if cur > 0 {
		s.Scale(rms / cur)
	}
	return s, nil
}

// BurstSpec describes a wideband transient event (a knock, an object
// strike, clothing rubbing near the mic). Bursts cover the whole spectrum,
// including the probe band, so they are the noise class the paper reports
// EchoWrite is sensitive to (§VII-B).
type BurstSpec struct {
	// Start is the onset time in seconds.
	Start float64
	// Duration is the burst length in seconds.
	Duration float64
	// Amplitude is the peak envelope of the burst.
	Amplitude float64
}

// Bursts synthesizes a silent signal with exponentially decaying wideband
// bursts at the given positions.
func (n *NoiseSource) Bursts(rate, duration float64, specs []BurstSpec) (*Signal, error) {
	s, err := NewSignal(rate, duration)
	if err != nil {
		return nil, err
	}
	for _, b := range specs {
		if b.Duration <= 0 {
			return nil, fmt.Errorf("audio: burst duration must be positive, got %g", b.Duration)
		}
		start := int(b.Start * rate)
		length := int(b.Duration * rate)
		tau := b.Duration / 4
		for i := 0; i < length; i++ {
			idx := start + i
			if idx < 0 || idx >= len(s.Samples) {
				continue
			}
			t := float64(i) / rate
			env := b.Amplitude * math.Exp(-t/tau)
			s.Samples[idx] += env * n.rng.NormFloat64()
		}
	}
	return s, nil
}

// RandomBursts sprinkles count bursts uniformly over the duration with
// amplitudes in [ampLo, ampHi] and lengths in [durLo, durHi] seconds.
func (n *NoiseSource) RandomBursts(rate, duration float64, count int, ampLo, ampHi, durLo, durHi float64) (*Signal, error) {
	specs := make([]BurstSpec, count)
	for i := range specs {
		specs[i] = BurstSpec{
			Start:     n.rng.Float64() * duration,
			Duration:  durLo + n.rng.Float64()*(durHi-durLo),
			Amplitude: ampLo + n.rng.Float64()*(ampHi-ampLo),
		}
	}
	return n.Bursts(rate, duration, specs)
}

// KeyboardClicks models typing noise: very short, moderately wideband
// transients recurring at a typing cadence.
func (n *NoiseSource) KeyboardClicks(rate, duration float64, clicksPerSecond, amplitude float64) (*Signal, error) {
	if clicksPerSecond <= 0 {
		return NewSignal(rate, duration)
	}
	var specs []BurstSpec
	t := n.rng.Float64() / clicksPerSecond
	for t < duration {
		specs = append(specs, BurstSpec{
			Start:     t,
			Duration:  0.004 + n.rng.Float64()*0.004,
			Amplitude: amplitude * (0.5 + n.rng.Float64()),
		})
		t += n.rng.ExpFloat64() / clicksPerSecond
	}
	return n.Bursts(rate, duration, specs)
}
