package audio

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// WAV encoding constants for 16-bit mono PCM, the only format the tooling
// needs (the paper's prototype records 44.1 kHz mono).
const (
	wavFormatPCM   = 1
	wavBitsPerSamp = 16
)

// EncodeWAV writes s as a 16-bit mono PCM RIFF/WAVE stream.
//
// Quantization matches the serving wire format (serve.EncodePCM16): a
// ×32768 scale with round-half-away-from-zero and saturation at the
// int16 limits. A WAV-decoded trace therefore survives the serve tier's
// PCM16 encode→decode path bit-exactly — the property the record/replay
// harness depends on. (The previous ×32767 scale did not: decoded
// samples re-encoded for the wire shifted by one codepoint at high
// amplitudes.)
func EncodeWAV(w io.Writer, s *Signal) error {
	if s.Rate <= 0 {
		return fmt.Errorf("audio: cannot encode WAV with sample rate %g", s.Rate)
	}
	dataLen := uint32(len(s.Samples) * 2)
	var hdr [44]byte
	copy(hdr[0:4], "RIFF")
	binary.LittleEndian.PutUint32(hdr[4:8], 36+dataLen)
	copy(hdr[8:12], "WAVE")
	copy(hdr[12:16], "fmt ")
	binary.LittleEndian.PutUint32(hdr[16:20], 16)
	binary.LittleEndian.PutUint16(hdr[20:22], wavFormatPCM)
	binary.LittleEndian.PutUint16(hdr[22:24], 1) // channels
	rate := uint32(s.Rate + 0.5)
	binary.LittleEndian.PutUint32(hdr[24:28], rate)
	binary.LittleEndian.PutUint32(hdr[28:32], rate*2) // byte rate
	binary.LittleEndian.PutUint16(hdr[32:34], 2)      // block align
	binary.LittleEndian.PutUint16(hdr[34:36], wavBitsPerSamp)
	copy(hdr[36:40], "data")
	binary.LittleEndian.PutUint32(hdr[40:44], dataLen)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("audio: writing WAV header: %w", err)
	}
	buf := make([]byte, 0, 4096)
	for _, v := range s.Samples {
		f := math.Round(v * 32768)
		if f > 32767 {
			f = 32767
		} else if f < -32768 {
			f = -32768
		}
		q := int16(f)
		buf = binary.LittleEndian.AppendUint16(buf, uint16(q))
		if len(buf) >= 4096 {
			if _, err := w.Write(buf); err != nil {
				return fmt.Errorf("audio: writing WAV data: %w", err)
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return fmt.Errorf("audio: writing WAV data: %w", err)
		}
	}
	return nil
}

// DecodeWAV parses a 16-bit mono PCM RIFF/WAVE stream produced by
// EncodeWAV (or any compatible writer). Unknown chunks are skipped.
func DecodeWAV(r io.Reader) (*Signal, error) {
	var riff [12]byte
	if _, err := io.ReadFull(r, riff[:]); err != nil {
		return nil, fmt.Errorf("audio: reading RIFF header: %w", err)
	}
	if string(riff[0:4]) != "RIFF" || string(riff[8:12]) != "WAVE" {
		return nil, fmt.Errorf("audio: not a RIFF/WAVE stream")
	}
	var (
		rate     uint32
		channels uint16
		bits     uint16
		haveFmt  bool
	)
	for {
		var chunk [8]byte
		if _, err := io.ReadFull(r, chunk[:]); err != nil {
			if err == io.EOF {
				return nil, fmt.Errorf("audio: WAV stream has no data chunk")
			}
			return nil, fmt.Errorf("audio: reading chunk header: %w", err)
		}
		id := string(chunk[0:4])
		size := binary.LittleEndian.Uint32(chunk[4:8])
		switch id {
		case "fmt ":
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, fmt.Errorf("audio: reading fmt chunk: %w", err)
			}
			if len(body) < 16 {
				return nil, fmt.Errorf("audio: fmt chunk too short (%d bytes)", len(body))
			}
			format := binary.LittleEndian.Uint16(body[0:2])
			channels = binary.LittleEndian.Uint16(body[2:4])
			rate = binary.LittleEndian.Uint32(body[4:8])
			bits = binary.LittleEndian.Uint16(body[14:16])
			if format != wavFormatPCM {
				return nil, fmt.Errorf("audio: unsupported WAV format %d (want PCM)", format)
			}
			if channels != 1 {
				return nil, fmt.Errorf("audio: unsupported channel count %d (want mono)", channels)
			}
			if bits != wavBitsPerSamp {
				return nil, fmt.Errorf("audio: unsupported bit depth %d (want 16)", bits)
			}
			haveFmt = true
		case "data":
			if !haveFmt {
				return nil, fmt.Errorf("audio: data chunk before fmt chunk")
			}
			body := make([]byte, size)
			if _, err := io.ReadFull(r, body); err != nil {
				return nil, fmt.Errorf("audio: reading data chunk: %w", err)
			}
			n := int(size) / 2
			s := &Signal{Samples: make([]float64, n), Rate: float64(rate)}
			for i := 0; i < n; i++ {
				q := int16(binary.LittleEndian.Uint16(body[2*i : 2*i+2]))
				s.Samples[i] = float64(q) / 32768
			}
			return s, nil
		default:
			if _, err := io.CopyN(io.Discard, r, int64(size)); err != nil {
				return nil, fmt.Errorf("audio: skipping chunk %q: %w", id, err)
			}
		}
		// Chunks are word-aligned; skip the pad byte of odd-size chunks.
		if size%2 == 1 {
			if _, err := io.CopyN(io.Discard, r, 1); err != nil && err != io.EOF {
				return nil, fmt.Errorf("audio: skipping pad byte: %w", err)
			}
		}
	}
}
