package audio

import (
	"math"
	"testing"
)

func TestWhiteNoiseStats(t *testing.T) {
	ns := NewNoiseSource(1)
	s, err := ns.White(44100, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.RMS(); math.Abs(r-0.1) > 0.01 {
		t.Errorf("white RMS = %g, want ≈0.1", r)
	}
	// Mean should be near zero.
	sum := 0.0
	for _, v := range s.Samples {
		sum += v
	}
	if mean := sum / float64(len(s.Samples)); math.Abs(mean) > 0.005 {
		t.Errorf("white mean = %g, want ≈0", mean)
	}
}

func TestNoiseDeterminism(t *testing.T) {
	a, err := NewNoiseSource(42).White(44100, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNoiseSource(42).White(44100, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatal("same seed produced different noise")
		}
	}
	c, err := NewNoiseSource(43).White(44100, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestPinkNoiseSpectrumSlopes(t *testing.T) {
	ns := NewNoiseSource(7)
	s, err := ns.Pink(44100, 0.1, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if r := s.RMS(); math.Abs(r-0.1) > 0.02 {
		t.Errorf("pink RMS = %g, want ≈0.1", r)
	}
	// Pink noise has more low-frequency than high-frequency energy.
	// Compare energy in two bands via Goertzel-style correlation.
	bandEnergy := func(f float64) float64 {
		w := 2 * math.Pi * f / 44100
		re, im := 0.0, 0.0
		for i, v := range s.Samples {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return re*re + im*im
	}
	low := bandEnergy(100) + bandEnergy(200) + bandEnergy(400)
	high := bandEnergy(8000) + bandEnergy(12000) + bandEnergy(16000)
	if low <= high {
		t.Errorf("pink noise not low-heavy: low=%g high=%g", low, high)
	}
}

func TestBabbleIsBandLimited(t *testing.T) {
	ns := NewNoiseSource(9)
	s, err := ns.Babble(44100, 0.1, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	bandEnergy := func(f float64) float64 {
		w := 2 * math.Pi * f / 44100
		re, im := 0.0, 0.0
		for i, v := range s.Samples {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return re*re + im*im
	}
	speech := bandEnergy(300) + bandEnergy(800) + bandEnergy(2000)
	probe := bandEnergy(19800) + bandEnergy(20000) + bandEnergy(20200)
	if speech < 100*probe {
		t.Errorf("babble leaks into probe band: speech=%g probe=%g", speech, probe)
	}
}

func TestBurstsPlacement(t *testing.T) {
	ns := NewNoiseSource(3)
	s, err := ns.Bursts(44100, 1.0, []BurstSpec{{Start: 0.5, Duration: 0.05, Amplitude: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// Quiet before the burst.
	pre := 0.0
	for _, v := range s.Samples[:22000] {
		pre += v * v
	}
	if pre != 0 {
		t.Error("energy before burst onset")
	}
	// Energy inside the burst.
	mid := 0.0
	for _, v := range s.Samples[22050:24255] {
		mid += v * v
	}
	if mid == 0 {
		t.Error("no energy inside burst")
	}
}

func TestBurstsRejectNonPositiveDuration(t *testing.T) {
	ns := NewNoiseSource(3)
	if _, err := ns.Bursts(44100, 1, []BurstSpec{{Start: 0, Duration: 0, Amplitude: 1}}); err == nil {
		t.Error("zero-duration burst accepted")
	}
}

func TestRandomBurstsCount(t *testing.T) {
	ns := NewNoiseSource(5)
	s, err := ns.RandomBursts(44100, 2.0, 5, 0.1, 0.2, 0.01, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if s.RMS() == 0 {
		t.Error("random bursts produced silence")
	}
}

func TestKeyboardClicks(t *testing.T) {
	ns := NewNoiseSource(6)
	s, err := ns.KeyboardClicks(44100, 2.0, 4, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if s.RMS() == 0 {
		t.Error("keyboard clicks produced silence")
	}
	// Zero rate yields silence.
	quietSig, err := ns.KeyboardClicks(44100, 1.0, 0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if quietSig.RMS() != 0 {
		t.Error("zero click rate produced sound")
	}
}
