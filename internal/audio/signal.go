// Package audio provides the raw-audio substrate: mono PCM signal
// containers, the 20 kHz probe-tone generator, WAV (RIFF) encoding and
// decoding, and the noise generators used to model the paper's three
// experimental environments.
package audio

import (
	"fmt"
	"math"
)

// Signal is a mono PCM stream of float64 samples, nominally in [-1, 1].
type Signal struct {
	// Samples holds the waveform.
	Samples []float64
	// Rate is the sample rate in Hz.
	Rate float64
}

// NewSignal allocates a silent signal of the given duration.
func NewSignal(rate float64, duration float64) (*Signal, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("audio: sample rate must be positive, got %g", rate)
	}
	if duration < 0 {
		return nil, fmt.Errorf("audio: duration must be non-negative, got %g", duration)
	}
	return &Signal{
		Samples: make([]float64, int(rate*duration+0.5)),
		Rate:    rate,
	}, nil
}

// Duration returns the signal length in seconds.
func (s *Signal) Duration() float64 {
	if s.Rate == 0 {
		return 0
	}
	return float64(len(s.Samples)) / s.Rate
}

// Clone deep-copies the signal.
func (s *Signal) Clone() *Signal {
	return &Signal{Samples: append([]float64(nil), s.Samples...), Rate: s.Rate}
}

// AddInPlace mixes other into s sample-by-sample with the given gain,
// truncating at the shorter of the two. Sample rates must match.
func (s *Signal) AddInPlace(other *Signal, gain float64) error {
	if s.Rate != other.Rate {
		return fmt.Errorf("audio: sample-rate mismatch %g vs %g", s.Rate, other.Rate)
	}
	n := len(s.Samples)
	if len(other.Samples) < n {
		n = len(other.Samples)
	}
	for i := 0; i < n; i++ {
		s.Samples[i] += gain * other.Samples[i]
	}
	return nil
}

// Scale multiplies every sample by gain, in place.
func (s *Signal) Scale(gain float64) {
	for i := range s.Samples {
		s.Samples[i] *= gain
	}
}

// RMS returns the root-mean-square amplitude, or 0 for an empty signal.
func (s *Signal) RMS() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Samples {
		sum += v * v
	}
	return math.Sqrt(sum / float64(len(s.Samples)))
}

// Peak returns the maximum absolute sample value.
func (s *Signal) Peak() float64 {
	p := 0.0
	for _, v := range s.Samples {
		if a := math.Abs(v); a > p {
			p = a
		}
	}
	return p
}

// Clamp limits all samples to [-limit, limit] in place, modeling converter
// saturation.
func (s *Signal) Clamp(limit float64) {
	for i, v := range s.Samples {
		if v > limit {
			s.Samples[i] = limit
		} else if v < -limit {
			s.Samples[i] = -limit
		}
	}
}

// Tone synthesizes a continuous sinusoid of the given frequency, amplitude
// and duration — the probe signal EchoWrite's speaker emits (20 kHz in the
// paper).
func Tone(rate, freq, amplitude, duration float64) (*Signal, error) {
	s, err := NewSignal(rate, duration)
	if err != nil {
		return nil, err
	}
	if freq <= 0 || freq >= rate/2 {
		return nil, fmt.Errorf("audio: tone frequency %g outside (0, %g)", freq, rate/2)
	}
	w := 2 * math.Pi * freq / rate
	for i := range s.Samples {
		s.Samples[i] = amplitude * math.Sin(w*float64(i))
	}
	return s, nil
}

// SNRdB computes the signal-to-noise ratio in decibels between a signal and
// a noise floor, based on RMS power. It returns +Inf for zero noise and
// -Inf for zero signal.
func SNRdB(signal, noise *Signal) float64 {
	sr := signal.RMS()
	nr := noise.RMS()
	if nr == 0 {
		return math.Inf(1)
	}
	if sr == 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(sr/nr)
}
