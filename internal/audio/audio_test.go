package audio

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewSignal(t *testing.T) {
	s, err := NewSignal(44100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Samples) != 22050 {
		t.Errorf("len = %d, want 22050", len(s.Samples))
	}
	if math.Abs(s.Duration()-0.5) > 1e-3 {
		t.Errorf("Duration() = %g, want 0.5", s.Duration())
	}
	if _, err := NewSignal(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewSignal(44100, -1); err == nil {
		t.Error("negative duration accepted")
	}
}

func TestToneProperties(t *testing.T) {
	s, err := Tone(44100, 20000, 0.8, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if p := s.Peak(); p > 0.8+1e-9 || p < 0.79 {
		t.Errorf("peak = %g, want ≈0.8", p)
	}
	// RMS of a sine is amplitude/√2.
	if r := s.RMS(); math.Abs(r-0.8/math.Sqrt2) > 1e-3 {
		t.Errorf("RMS = %g, want %g", r, 0.8/math.Sqrt2)
	}
	if _, err := Tone(44100, 0, 1, 1); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := Tone(44100, 23000, 1, 1); err == nil {
		t.Error("above-Nyquist frequency accepted")
	}
}

func TestAddInPlaceAndScale(t *testing.T) {
	a := &Signal{Samples: []float64{1, 2, 3}, Rate: 44100}
	b := &Signal{Samples: []float64{1, 1}, Rate: 44100}
	if err := a.AddInPlace(b, 2); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 4, 3}
	for i := range want {
		if a.Samples[i] != want[i] {
			t.Errorf("a[%d] = %g, want %g", i, a.Samples[i], want[i])
		}
	}
	c := &Signal{Samples: []float64{1}, Rate: 48000}
	if err := a.AddInPlace(c, 1); err == nil {
		t.Error("rate mismatch accepted")
	}
	a.Scale(0.5)
	if a.Samples[0] != 1.5 {
		t.Errorf("Scale: got %g, want 1.5", a.Samples[0])
	}
}

func TestClamp(t *testing.T) {
	s := &Signal{Samples: []float64{-2, 0.5, 3}, Rate: 1}
	s.Clamp(1)
	want := []float64{-1, 0.5, 1}
	for i := range want {
		if s.Samples[i] != want[i] {
			t.Errorf("sample %d = %g, want %g", i, s.Samples[i], want[i])
		}
	}
}

func TestEmptySignalStats(t *testing.T) {
	s := &Signal{Rate: 44100}
	if s.RMS() != 0 || s.Peak() != 0 || s.Duration() != 0 {
		t.Error("empty signal stats should be zero")
	}
}

func TestSNRdB(t *testing.T) {
	sig, err := Tone(44100, 1000, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	noise, err := Tone(44100, 2000, 0.1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if snr := SNRdB(sig, noise); math.Abs(snr-20) > 0.1 {
		t.Errorf("SNR = %g dB, want ≈20", snr)
	}
	silent := &Signal{Rate: 44100, Samples: make([]float64, 10)}
	if !math.IsInf(SNRdB(sig, silent), 1) {
		t.Error("zero noise should give +Inf")
	}
	if !math.IsInf(SNRdB(silent, noise), -1) {
		t.Error("zero signal should give -Inf")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := &Signal{Samples: []float64{1, 2}, Rate: 44100}
	c := s.Clone()
	c.Samples[0] = 9
	if s.Samples[0] == 9 {
		t.Error("Clone shares storage")
	}
}

func TestWAVRoundTrip(t *testing.T) {
	orig, err := Tone(44100, 5000, 0.7, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	// Header sanity: 44-byte header + 2 bytes per sample.
	if buf.Len() != 44+2*len(orig.Samples) {
		t.Errorf("encoded %d bytes, want %d", buf.Len(), 44+2*len(orig.Samples))
	}
	dec, err := DecodeWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Rate != 44100 {
		t.Errorf("decoded rate = %g, want 44100", dec.Rate)
	}
	if len(dec.Samples) != len(orig.Samples) {
		t.Fatalf("decoded %d samples, want %d", len(dec.Samples), len(orig.Samples))
	}
	for i := range orig.Samples {
		if math.Abs(dec.Samples[i]-orig.Samples[i]) > 0.5/32768+1e-9 {
			t.Fatalf("sample %d = %g, want %g (±½ LSB)", i, dec.Samples[i], orig.Samples[i])
		}
	}
}

func TestWAVRoundTripProperty(t *testing.T) {
	// Property: encode→decode reproduces int16-quantized samples exactly.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 11))
		s := &Signal{Rate: 44100, Samples: make([]float64, 64)}
		for i := range s.Samples {
			// Pre-quantize so the round trip is exact.
			q := int16(rng.IntN(65536) - 32768)
			s.Samples[i] = float64(q) / 32768
		}
		var buf bytes.Buffer
		if err := EncodeWAV(&buf, s); err != nil {
			return false
		}
		dec, err := DecodeWAV(&buf)
		if err != nil {
			return false
		}
		for i := range s.Samples {
			if math.Abs(dec.Samples[i]-s.Samples[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWAVEncodeClips(t *testing.T) {
	// Saturation matches the wire PCM16 convention: +overload pins at
	// 32767 (decoding to 32767/32768, not quite 1.0), −overload pins at
	// −32768 which decodes to exactly −1.
	s := &Signal{Samples: []float64{2.0, -2.0}, Rate: 44100}
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, s); err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeWAV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Samples[0] != 32767.0/32768 || dec.Samples[1] != -1 {
		t.Errorf("clipping wrong: %v", dec.Samples)
	}
}

func TestDecodeWAVRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"truncated": []byte("RIFF"),
		"not riff":  append([]byte("JUNK0000JUNK"), make([]byte, 64)...),
	}
	for name, data := range cases {
		if _, err := DecodeWAV(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestDecodeWAVSkipsUnknownChunks(t *testing.T) {
	orig, err := Tone(44100, 1000, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeWAV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Splice a LIST chunk between fmt and data (offset 36).
	var spliced bytes.Buffer
	spliced.Write(raw[:36])
	spliced.WriteString("LIST")
	spliced.Write([]byte{4, 0, 0, 0})
	spliced.WriteString("INFO")
	spliced.Write(raw[36:])
	dec, err := DecodeWAV(&spliced)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Samples) != len(orig.Samples) {
		t.Errorf("decoded %d samples, want %d", len(dec.Samples), len(orig.Samples))
	}
}
