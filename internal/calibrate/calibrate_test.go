package calibrate

import (
	"testing"

	"repro/internal/pipeline"
	"repro/internal/stroke"
)

func TestTemplatesCoverAllStrokes(t *testing.T) {
	tpls, err := Templates(pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i, tpl := range tpls {
		if len(tpl) < 8 {
			t.Errorf("template %d has only %d frames", i+1, len(tpl))
		}
	}
	// Calibrated templates must start and end near rest (the trim
	// invariant).
	for i, tpl := range tpls {
		if abs(tpl[0]) > 20 || abs(tpl[len(tpl)-1]) > 20 {
			t.Errorf("template %d endpoints %g, %g not near rest", i+1, tpl[0], tpl[len(tpl)-1])
		}
	}
}

func TestTemplatesCarryPipelineBias(t *testing.T) {
	// The point of calibration: calibrated templates should differ from
	// the analytic ones (blob broadening inflates extremes).
	cfg := pipeline.DefaultConfig()
	tpls, err := Templates(cfg)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := pipeline.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	analytic := eng.TemplateLibrary()
	differs := false
	for i := range tpls {
		peakC, peakA := 0.0, 0.0
		for _, v := range tpls[i] {
			if a := abs(v); a > peakC {
				peakC = a
			}
		}
		for _, v := range analytic[i] {
			if a := abs(v); a > peakA {
				peakA = a
			}
		}
		if peakC > peakA*1.02 {
			differs = true
		}
	}
	if !differs {
		t.Error("calibrated templates identical to analytic ones — calibration is a no-op")
	}
}

func TestNewCalibratedEngineClassifiesOwnTemplates(t *testing.T) {
	eng, err := NewCalibratedEngine(pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lib := eng.TemplateLibrary()
	for _, st := range stroke.AllStrokes() {
		det, err := eng.ClassifyProfile(lib[st.Index()])
		if err != nil {
			t.Fatal(err)
		}
		if det.Stroke != st {
			t.Errorf("calibrated template %v classified as %v", st, det.Stroke)
		}
	}
}

func TestTemplatesRejectInvalidConfig(t *testing.T) {
	cfg := pipeline.DefaultConfig()
	cfg.CarrierHz = 100
	if _, err := Templates(cfg); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestTrimQuiet(t *testing.T) {
	p := []float64{1, 2, 50, 80, 50, 3, 2, 1}
	out := trimQuiet(p, 16)
	// Keeps one quiet frame each side: [2, 50, 80, 50, 3].
	if len(out) != 5 || out[0] != 2 || out[len(out)-1] != 3 {
		t.Errorf("trimQuiet = %v", out)
	}
	// All-quiet input collapses to at most the two guard frames.
	quiet := trimQuiet([]float64{1, 1, 1, 1}, 16)
	if len(quiet) > 3 {
		t.Errorf("all-quiet trim = %v", quiet)
	}
}
