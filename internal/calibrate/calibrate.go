// Package calibrate derives pipeline-calibrated stroke templates: instead
// of matching against the purely analytic Doppler profiles, each canonical
// stroke is synthesized in a noise-free reference scene and pushed through
// the full recognition front-end, so the stored template carries the same
// systematic signatures (spectral-leakage widening, Gaussian-blur bias,
// MVCE extreme-picking) the live profiles will.
//
// This remains training-free in the paper's sense: templates derive from
// the gesture definitions alone — no user ever records anything — but they
// are expressed in the feature space the pipeline actually observes.
package calibrate

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/geom"
	"repro/internal/pipeline"
	"repro/internal/segment"
	"repro/internal/stroke"
)

// referenceDevice returns an idealized front-end for template generation:
// the configured carrier/sample rate with no noise sources.
func referenceDevice(cfg pipeline.Config) acoustic.DeviceProfile {
	return acoustic.DeviceProfile{
		Name:           "reference",
		SampleRate:     cfg.STFT.SampleRate,
		CarrierHz:      cfg.CarrierHz,
		TxAmplitude:    0.9,
		DirectPathGain: 0.30,
		ReflectionGain: 1.0,
		ADCBits:        0, // no quantization
	}
}

// leadDur/tailDur bracket the canonical stroke in the reference scene so
// spectral subtraction has static frames and the Doppler blob's temporal
// smear is fully captured.
const (
	leadDur = 0.40
	tailDur = 0.45
)

// Templates synthesizes each canonical stroke in a clean reference scene,
// runs cfg's recognition front-end over it, and returns the extracted
// profiles indexed by Stroke.Index(). The template interval is taken from
// the known ground-truth stroke timing (template generation defines the
// gesture, so it knows exactly when the stroke runs) with the same
// low-speed trimming the live segmenter applies at stroke ends.
func Templates(cfg pipeline.Config) ([stroke.NumStrokes][]float64, error) {
	var out [stroke.NumStrokes][]float64
	eng, err := pipeline.NewEngine(cfg)
	if err != nil {
		return out, err
	}
	dev := referenceDevice(cfg)
	frameRate := cfg.FrameRate()
	floor := cfg.Segment.EndSpeedFloor
	if floor <= 0 {
		floor = 16
	}
	for _, st := range stroke.AllStrokes() {
		tr, err := stroke.Shape(st, stroke.ShapeParams{})
		if err != nil {
			return out, fmt.Errorf("calibrate: %w", err)
		}
		start, err := stroke.StartPoint(st, stroke.ShapeParams{})
		if err != nil {
			return out, fmt.Errorf("calibrate: %w", err)
		}
		end, err := stroke.EndPoint(st, stroke.ShapeParams{})
		if err != nil {
			return out, fmt.Errorf("calibrate: %w", err)
		}
		lead := &geom.StaticTrajectory{Pos: start, Dur: leadDur}
		tail := &geom.StaticTrajectory{Pos: end, Dur: tailDur}
		finger, err := geom.NewCompositeTrajectory(lead, tr, tail)
		if err != nil {
			return out, fmt.Errorf("calibrate: %w", err)
		}
		scene := &acoustic.Scene{
			Device:     dev,
			Env:        acoustic.Environment{},
			Reflectors: acoustic.HandReflectors(finger),
			Duration:   finger.Duration(),
			Seed:       1,
		}
		sig, err := scene.Synthesize()
		if err != nil {
			return out, fmt.Errorf("calibrate: synthesizing %v: %w", st, err)
		}
		rec, err := eng.Recognize(sig)
		if err != nil {
			return out, fmt.Errorf("calibrate: recognizing %v: %w", st, err)
		}
		// Ground-truth frame bounds with margin for the pipeline's
		// temporal smear: an 8192-sample window spans 8 hops, so blob
		// energy appears up to ~8 frames before the stroke's sample
		// index; filtering adds a little more on each side.
		lo := int(leadDur*frameRate) - 9
		hi := int((leadDur+tr.Duration())*frameRate) + 9
		if lo < 0 {
			lo = 0
		}
		if hi > len(rec.Profile)-1 {
			hi = len(rec.Profile) - 1
		}
		slice, err := segment.Slice(rec.Profile, segment.Segment{Start: lo, End: hi})
		if err != nil {
			return out, fmt.Errorf("calibrate: %w", err)
		}
		tpl := trimQuiet(slice, floor)
		if len(tpl) < 4 {
			return out, fmt.Errorf("calibrate: canonical %v yielded a %d-frame template; pipeline cannot see its own gesture", st, len(tpl))
		}
		out[st.Index()] = tpl
	}
	return out, nil
}

// trimQuiet removes leading and trailing frames whose |shift| is under the
// floor, mirroring how live segments begin and end near zero speed. One
// quiet frame is kept on each side so templates anchor at rest.
func trimQuiet(p []float64, floor float64) []float64 {
	lo, hi := 0, len(p)-1
	for lo < hi && abs(p[lo]) < floor {
		lo++
	}
	for hi > lo && abs(p[hi]) < floor {
		hi--
	}
	if lo > 0 {
		lo--
	}
	if hi < len(p)-1 {
		hi++
	}
	return append([]float64(nil), p[lo:hi+1]...)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// NewCalibratedEngine builds an engine and installs pipeline-calibrated
// templates in one step.
func NewCalibratedEngine(cfg pipeline.Config) (*pipeline.Engine, error) {
	tpls, err := Templates(cfg)
	if err != nil {
		return nil, err
	}
	eng, err := pipeline.NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.SetTemplateLibrary(tpls); err != nil {
		return nil, err
	}
	return eng, nil
}
