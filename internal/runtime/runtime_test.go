package runtime

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/pipeline"
)

func TestStageBreakdown(t *testing.T) {
	var b StageBreakdown
	if _, err := b.PerStroke(); err == nil {
		t.Error("empty breakdown accepted")
	}
	b.Add(pipeline.StageTimings{
		STFT:        100 * time.Millisecond,
		Enhancement: 60 * time.Millisecond,
		Profile:     20 * time.Millisecond,
		DTW:         10 * time.Millisecond,
	}, 2)
	per, err := b.PerStroke()
	if err != nil {
		t.Fatal(err)
	}
	if per.STFT != 50*time.Millisecond {
		t.Errorf("per-stroke STFT = %v, want 50ms", per.STFT)
	}
	share := b.SignalProcessingShare()
	want := 180.0 / 190.0
	if math.Abs(share-want) > 1e-9 {
		t.Errorf("signal share = %g, want %g", share, want)
	}
	// Zero-stroke add is clamped to 1.
	var b2 StageBreakdown
	b2.Add(pipeline.StageTimings{STFT: time.Millisecond}, 0)
	if b2.Strokes != 1 {
		t.Errorf("clamped strokes = %d", b2.Strokes)
	}
}

func TestSignalProcessingShareEmpty(t *testing.T) {
	var b StageBreakdown
	if !math.IsNaN(b.SignalProcessingShare()) {
		t.Error("empty share should be NaN")
	}
}

func TestEnergyModelMatchesPaperShape(t *testing.T) {
	m := DefaultEnergyModel()
	levels, err := m.BatteryLevels(30, 5, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(levels) != 7 {
		t.Fatalf("got %d samples, want 7", len(levels))
	}
	if levels[0] != 100 {
		t.Errorf("start level = %g", levels[0])
	}
	// Paper: ~87 % after 30 minutes of continuous use.
	final := levels[6]
	if final < 84 || final > 90 {
		t.Errorf("level after 30 min = %g, want ≈87", final)
	}
	// Strictly decreasing.
	for i := 1; i < len(levels); i++ {
		if levels[i] >= levels[i-1] {
			t.Errorf("battery increased at step %d", i)
		}
	}
}

func TestEnergyModelValidation(t *testing.T) {
	m := DefaultEnergyModel()
	if _, err := m.BatteryLevels(0, 5, 1); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := m.BatteryLevels(30, 0, 1); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := m.BatteryLevels(30, 5, 2); err == nil {
		t.Error("duty cycle > 1 accepted")
	}
}

func TestEnergyModelClampsAtZero(t *testing.T) {
	m := DefaultEnergyModel()
	levels, err := m.BatteryLevels(600, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range levels {
		if l < 0 {
			t.Errorf("negative battery level %g", l)
		}
	}
}

func TestRuntimeHours(t *testing.T) {
	m := DefaultEnergyModel()
	h := m.RuntimeHours(1.0)
	// Consistent with Fig. 20's 0.43 %/min drain (the paper's prose
	// quotes 2.8 h, inconsistent with its own figure; see
	// DefaultEnergyModel).
	if h < 3.3 || h > 4.3 {
		t.Errorf("runtime = %g h, want ≈3.9", h)
	}
	// Lower duty cycle lasts longer.
	if m.RuntimeHours(0.2) <= h {
		t.Error("lighter duty should extend runtime")
	}
	if !math.IsInf(EnergyModel{}.RuntimeHours(0), 1) {
		t.Error("zero-drain model should run forever")
	}
}

func TestCPUModel(t *testing.T) {
	m := DefaultCPUModel()
	if _, err := m.Occupancy(time.Millisecond, 0); err == nil {
		t.Error("zero interval accepted")
	}
	// 50 ms host processing per stroke, stroke every 1.6 s, 6.5× slowdown
	// → 325/1600 + baseline.
	occ, err := m.Occupancy(50*time.Millisecond, 1600*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	want := 0.07 + 0.325/1.6
	if math.Abs(occ-want) > 1e-9 {
		t.Errorf("occupancy = %g, want %g", occ, want)
	}
	// Saturation at 1.
	occ, err = m.Occupancy(10*time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if occ != 1 {
		t.Errorf("occupancy = %g, want clamped 1", occ)
	}
}

func TestSharedBreakdownConcurrentAdd(t *testing.T) {
	var sb SharedBreakdown
	const goroutines, adds = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < adds; i++ {
				sb.Add(pipeline.StageTimings{STFT: time.Millisecond, DTW: 2 * time.Millisecond}, 1)
			}
		}()
	}
	wg.Wait()
	got := sb.Snapshot()
	if got.Strokes != goroutines*adds {
		t.Errorf("Strokes = %d, want %d", got.Strokes, goroutines*adds)
	}
	if want := time.Duration(goroutines*adds) * time.Millisecond; got.STFT != want {
		t.Errorf("STFT total = %v, want %v", got.STFT, want)
	}
	if want := time.Duration(goroutines*adds) * 2 * time.Millisecond; got.DTW != want {
		t.Errorf("DTW total = %v, want %v", got.DTW, want)
	}
}
