// Package runtime models the system-overhead dimensions of the paper's
// evaluation (Figs. 19–21): per-stage processing time, battery drain, and
// CPU occupancy. Stage times are measured from the real Go pipeline on the
// host; the energy and CPU figures then scale those measurements through a
// documented device cost model calibrated to the paper's Huawei Mate 9
// observations (≈3 % battery per 5 minutes; 9.5–25.6 % CPU, mean 15.2 %).
package runtime

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// StageBreakdown aggregates measured pipeline stage times over many
// recognitions.
type StageBreakdown struct {
	// Totals accumulate wall time per stage.
	STFT, Enhancement, Profile, Segmentation, DTW time.Duration
	// Strokes is the number of recognized strokes the totals cover.
	Strokes int
}

// Add accumulates one recognition's timings covering n strokes.
func (b *StageBreakdown) Add(t pipeline.StageTimings, n int) {
	b.STFT += t.STFT
	b.Enhancement += t.Enhancement
	b.Profile += t.Profile
	b.Segmentation += t.Segmentation
	b.DTW += t.DTW
	if n < 1 {
		n = 1
	}
	b.Strokes += n
}

// Merge adds another breakdown's totals and stroke count into b — the
// aggregation step when several independent accumulators (e.g. manager
// shards) are summarized as one.
func (b *StageBreakdown) Merge(o StageBreakdown) {
	b.STFT += o.STFT
	b.Enhancement += o.Enhancement
	b.Profile += o.Profile
	b.Segmentation += o.Segmentation
	b.DTW += o.DTW
	b.Strokes += o.Strokes
}

// PerStroke returns mean per-stroke durations. Strokes must be > 0.
func (b *StageBreakdown) PerStroke() (pipeline.StageTimings, error) {
	if b.Strokes == 0 {
		return pipeline.StageTimings{}, fmt.Errorf("runtime: no strokes recorded")
	}
	n := time.Duration(b.Strokes)
	return pipeline.StageTimings{
		STFT:         b.STFT / n,
		Enhancement:  b.Enhancement / n,
		Profile:      b.Profile / n,
		Segmentation: b.Segmentation / n,
		DTW:          b.DTW / n,
	}, nil
}

// SignalProcessingShare returns the fraction of total time spent in signal
// processing (STFT + enhancement + profile extraction) — the paper reports
// over 90 %.
func (b *StageBreakdown) SignalProcessingShare() float64 {
	total := b.STFT + b.Enhancement + b.Profile + b.Segmentation + b.DTW
	if total == 0 {
		return math.NaN()
	}
	sp := b.STFT + b.Enhancement + b.Profile
	return float64(sp) / float64(total)
}

// EnergyModel maps continuous EchoWrite operation to battery drain. The
// defaults are calibrated so continuous operation drains ~3 % per 5
// minutes (Fig. 20: 100 % → 87 % in 30 minutes).
type EnergyModel struct {
	// IdleDrainPerMin is the baseline battery percentage drained per
	// minute with the screen on and the app idle.
	IdleDrainPerMin float64
	// SpeakerDrainPerMin adds the continuous 20 kHz emission cost.
	SpeakerDrainPerMin float64
	// ComputeDrainPerActiveMin adds the DSP cost, scaled by the duty
	// cycle (fraction of time the pipeline is actually processing).
	ComputeDrainPerActiveMin float64
}

// DefaultEnergyModel returns the Mate 9-calibrated model. Calibration
// matches Fig. 20's measured curve (100 % → 87 % over 30 minutes, i.e.
// ≈0.43 %/min); note the paper's prose quotes "about 3 % every 5 minutes"
// and "2.8 hours", which is mutually inconsistent with its own figure —
// we follow the figure.
func DefaultEnergyModel() EnergyModel {
	return EnergyModel{
		IdleDrainPerMin:          0.10,
		SpeakerDrainPerMin:       0.13,
		ComputeDrainPerActiveMin: 0.25,
	}
}

// BatteryLevels simulates battery percentage over total minutes of
// continuous operation, sampled every stepMinutes, starting at 100 %. The
// dutyCycle is the fraction of wall time spent in active DSP.
func (m EnergyModel) BatteryLevels(totalMinutes, stepMinutes, dutyCycle float64) ([]float64, error) {
	if totalMinutes <= 0 || stepMinutes <= 0 {
		return nil, fmt.Errorf("runtime: durations must be positive (total %g, step %g)", totalMinutes, stepMinutes)
	}
	if dutyCycle < 0 || dutyCycle > 1 {
		return nil, fmt.Errorf("runtime: duty cycle %g outside [0,1]", dutyCycle)
	}
	perMin := m.IdleDrainPerMin + m.SpeakerDrainPerMin + m.ComputeDrainPerActiveMin*dutyCycle
	n := int(totalMinutes/stepMinutes) + 1
	out := make([]float64, n)
	for i := range out {
		level := 100 - perMin*stepMinutes*float64(i)
		if level < 0 {
			level = 0
		}
		out[i] = level
	}
	return out, nil
}

// RuntimeHours returns how long a full battery lasts under continuous
// operation at the given duty cycle (the paper: ≈2.8 h).
func (m EnergyModel) RuntimeHours(dutyCycle float64) float64 {
	perMin := m.IdleDrainPerMin + m.SpeakerDrainPerMin + m.ComputeDrainPerActiveMin*dutyCycle
	if perMin <= 0 {
		return math.Inf(1)
	}
	return 100 / perMin / 60
}

// CPUModel converts measured per-stroke processing time into the CPU
// occupancy a mobile SoC would exhibit, by scaling host throughput to the
// target device and accounting for the recognition duty cycle.
type CPUModel struct {
	// HostToDeviceSlowdown is how many times slower the target SoC runs
	// this workload than the benchmark host (Mate 9 class: ~6.5×
	// single-core against a modern x86 core).
	HostToDeviceSlowdown float64
	// BaselineShare is the constant audio-capture overhead share.
	BaselineShare float64
}

// DefaultCPUModel returns the Mate 9-calibrated model.
func DefaultCPUModel() CPUModel {
	return CPUModel{HostToDeviceSlowdown: 6.5, BaselineShare: 0.07}
}

// Occupancy estimates the CPU fraction [0,1] while recognizing
// continuously: processing time per stroke (measured on the host),
// stretched by the device slowdown, divided by the wall time between
// strokes.
func (m CPUModel) Occupancy(perStrokeProcessing time.Duration, strokeInterval time.Duration) (float64, error) {
	if strokeInterval <= 0 {
		return 0, fmt.Errorf("runtime: stroke interval must be positive, got %v", strokeInterval)
	}
	busy := float64(perStrokeProcessing) * m.HostToDeviceSlowdown
	occ := m.BaselineShare + busy/float64(strokeInterval)
	if occ > 1 {
		occ = 1
	}
	return occ, nil
}

// SharedBreakdown is a concurrency-safe StageBreakdown for serving
// contexts where many sessions report timings from worker goroutines
// (internal/serve). Aggregation happens under one mutex; snapshots are
// value copies so readers never observe a torn update.
type SharedBreakdown struct {
	mu sync.Mutex
	b  StageBreakdown // guarded by mu
}

// Add accumulates one recognition's timings covering n strokes.
func (s *SharedBreakdown) Add(t pipeline.StageTimings, n int) {
	s.mu.Lock()
	s.b.Add(t, n)
	s.mu.Unlock()
}

// Snapshot returns a copy of the aggregated breakdown.
func (s *SharedBreakdown) Snapshot() StageBreakdown {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b
}
