package downsample

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/geom"
	"repro/internal/pipeline"
	"repro/internal/segment"
	"repro/internal/stroke"
)

// CalibratedEngine builds an engine on the derived configuration with
// pipeline-calibrated templates: each canonical stroke is synthesized at
// the full rate, pushed through the front-end, and its profile extracted
// by ground-truth span — the downsampled counterpart of
// calibrate.NewCalibratedEngine.
func (f *Frontend) CalibratedEngine() (*pipeline.Engine, error) {
	eng, err := pipeline.NewEngine(f.cfg)
	if err != nil {
		return nil, err
	}
	dev := acoustic.DeviceProfile{
		Name:           "reference",
		SampleRate:     f.base.STFT.SampleRate,
		CarrierHz:      f.base.PhysicalCarrier(),
		TxAmplitude:    0.9,
		DirectPathGain: 0.30,
		ReflectionGain: 1.0,
	}
	const (
		leadDur = 0.40
		tailDur = 0.45
	)
	frameRate := f.cfg.FrameRate()
	floor := f.cfg.Segment.EndSpeedFloor
	if floor <= 0 {
		floor = 16
	}
	var lib [stroke.NumStrokes][]float64
	for _, st := range stroke.AllStrokes() {
		tr, err := stroke.Shape(st, stroke.ShapeParams{})
		if err != nil {
			return nil, fmt.Errorf("downsample: %w", err)
		}
		start, err := stroke.StartPoint(st, stroke.ShapeParams{})
		if err != nil {
			return nil, fmt.Errorf("downsample: %w", err)
		}
		end, err := stroke.EndPoint(st, stroke.ShapeParams{})
		if err != nil {
			return nil, fmt.Errorf("downsample: %w", err)
		}
		finger, err := geom.NewCompositeTrajectory(
			&geom.StaticTrajectory{Pos: start, Dur: leadDur},
			tr,
			&geom.StaticTrajectory{Pos: end, Dur: tailDur},
		)
		if err != nil {
			return nil, fmt.Errorf("downsample: %w", err)
		}
		scene := &acoustic.Scene{
			Device:     dev,
			Reflectors: acoustic.HandReflectors(finger),
			Duration:   finger.Duration(),
			Seed:       1,
		}
		full, err := scene.Synthesize()
		if err != nil {
			return nil, fmt.Errorf("downsample: synthesizing %v: %w", st, err)
		}
		low, err := f.Process(full)
		if err != nil {
			return nil, err
		}
		rec, err := eng.Recognize(low)
		if err != nil {
			return nil, fmt.Errorf("downsample: recognizing %v: %w", st, err)
		}
		lo := int(leadDur*frameRate) - 9
		hi := int((leadDur+tr.Duration())*frameRate) + 9
		if lo < 0 {
			lo = 0
		}
		if hi > len(rec.Profile)-1 {
			hi = len(rec.Profile) - 1
		}
		slice, err := segment.Slice(rec.Profile, segment.Segment{Start: lo, End: hi})
		if err != nil {
			return nil, fmt.Errorf("downsample: %w", err)
		}
		tpl := trimQuiet(slice, floor)
		if len(tpl) < 4 {
			return nil, fmt.Errorf("downsample: canonical %v yielded a %d-frame template", st, len(tpl))
		}
		lib[st.Index()] = tpl
	}
	if err := eng.SetTemplateLibrary(lib); err != nil {
		return nil, err
	}
	return eng, nil
}

// trimQuiet mirrors calibrate.trimQuiet: strip sub-floor edges keeping one
// guard frame on each side.
func trimQuiet(p []float64, floor float64) []float64 {
	abs := func(x float64) float64 {
		if x < 0 {
			return -x
		}
		return x
	}
	lo, hi := 0, len(p)-1
	for lo < hi && abs(p[lo]) < floor {
		lo++
	}
	for hi > lo && abs(p[hi]) < floor {
		hi--
	}
	if lo > 0 {
		lo--
	}
	if hi < len(p)-1 {
		hi++
	}
	return append([]float64(nil), p[lo:hi+1]...)
}
