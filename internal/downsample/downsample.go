// Package downsample implements the paper's §VII-A optimization: a
// bandpass-sampling front-end that reduces the STFT workload. The 20 kHz
// probe band [19530, 20470] Hz is isolated with a linear-phase FIR
// bandpass filter and then decimated by an integer factor; by the
// bandpass sampling theorem the band folds intact into the low-rate
// spectrum, so an FFT a factor smaller recovers the same Doppler
// information. The rest of the pipeline runs unchanged on the derived
// configuration.
//
// With the paper's parameters and factor 8, the per-frame FFT shrinks
// from 8192 to 1024 points at identical bin resolution (5.38 Hz) and
// frame rate.
package downsample

import (
	"fmt"
	"math"

	"repro/internal/audio"
	"repro/internal/dsp"
	"repro/internal/pipeline"
)

// Frontend converts full-rate audio into the decimated stream and carries
// the matching pipeline configuration.
type Frontend struct {
	factor int
	taps   []float64
	base   pipeline.Config
	cfg    pipeline.Config
}

// New designs a front-end for the given base configuration and decimation
// factor. The factor must divide the FFT size and hop, and the probe band
// must fold into a single Nyquist zone of the decimated rate.
func New(base pipeline.Config, factor, firTaps int) (*Frontend, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if factor < 2 {
		return nil, fmt.Errorf("downsample: factor must be >= 2, got %d", factor)
	}
	if base.STFT.FFTSize%factor != 0 || base.STFT.HopSize%factor != 0 {
		return nil, fmt.Errorf("downsample: factor %d must divide FFT size %d and hop %d",
			factor, base.STFT.FFTSize, base.STFT.HopSize)
	}
	fs := base.STFT.SampleRate
	fsOut := fs / float64(factor)
	nyqOut := fsOut / 2

	// Band of interest at full rate.
	f1 := float64(base.STFT.LowBin) * fs / float64(base.STFT.FFTSize)
	f2 := float64(base.STFT.HighBin) * fs / float64(base.STFT.FFTSize)

	// The whole band must sit inside one Nyquist zone of the output
	// rate, or folding would alias it onto itself.
	zone1 := int(f1 / nyqOut)
	zone2 := int((f2 - 1e-9) / nyqOut)
	if zone1 != zone2 {
		return nil, fmt.Errorf("downsample: band [%.0f, %.0f] Hz straddles Nyquist zones %d and %d at fs/%d",
			f1, f2, zone1, zone2, factor)
	}
	inverted := zone1%2 == 1
	alias := func(f float64) float64 {
		if inverted {
			return float64(zone1+1)*nyqOut - f
		}
		return f - float64(zone1)*nyqOut
	}

	taps, err := dsp.FIRBandpass(firTaps, fs, f1-150, f2+150)
	if err != nil {
		return nil, fmt.Errorf("downsample: %w", err)
	}

	cfg := base
	cfg.STFT.SampleRate = fsOut
	cfg.STFT.FFTSize = base.STFT.FFTSize / factor
	cfg.STFT.HopSize = base.STFT.HopSize / factor
	aliasLo, aliasHi := alias(f1), alias(f2)
	if inverted {
		aliasLo, aliasHi = aliasHi, aliasLo
	}
	cfg.STFT.LowBin = int(aliasLo * float64(cfg.STFT.FFTSize) / fsOut)
	cfg.STFT.HighBin = int(aliasHi*float64(cfg.STFT.FFTSize)/fsOut+0.5) + 1
	if cfg.STFT.HighBin > cfg.STFT.FFTSize/2 {
		cfg.STFT.HighBin = cfg.STFT.FFTSize / 2
	}
	cfg.PhysicalCarrierHz = base.PhysicalCarrier()
	cfg.CarrierHz = alias(base.CarrierHz)
	cfg.InvertSpectrum = inverted != base.InvertSpectrum
	// An N/factor-point FFT scales coherent magnitudes down by the same
	// factor, so the absolute energy gate α must shrink with it.
	cfg.EnergyThreshold = base.EnergyThreshold / float64(factor)
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("downsample: derived config: %w", err)
	}
	return &Frontend{factor: factor, taps: taps, base: base, cfg: cfg}, nil
}

// Factor returns the decimation factor.
func (f *Frontend) Factor() int { return f.factor }

// Config returns the derived pipeline configuration for engines consuming
// the decimated stream.
func (f *Frontend) Config() pipeline.Config { return f.cfg }

// Process bandpass-filters and decimates a full-rate signal.
func (f *Frontend) Process(sig *audio.Signal) (*audio.Signal, error) {
	if math.Abs(sig.Rate-f.base.STFT.SampleRate) > 1e-9 {
		return nil, fmt.Errorf("downsample: signal rate %g does not match base rate %g",
			sig.Rate, f.base.STFT.SampleRate)
	}
	out, err := dsp.FilterDecimate(sig.Samples, f.taps, f.factor)
	if err != nil {
		return nil, err
	}
	return &audio.Signal{Samples: out, Rate: sig.Rate / float64(f.factor)}, nil
}

// NewEngine builds a pipeline engine on the derived configuration.
func (f *Frontend) NewEngine() (*pipeline.Engine, error) {
	return pipeline.NewEngine(f.cfg)
}
