package downsample

import (
	"testing"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/capture"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

func TestNewValidation(t *testing.T) {
	base := pipeline.DefaultConfig()
	if _, err := New(base, 1, 127); err == nil {
		t.Error("factor 1 accepted")
	}
	if _, err := New(base, 3, 127); err == nil {
		t.Error("non-dividing factor accepted")
	}
	if _, err := New(base, 8, 126); err == nil {
		t.Error("even tap count accepted")
	}
	bad := base
	bad.CarrierHz = 0
	if _, err := New(bad, 8, 127); err == nil {
		t.Error("invalid base config accepted")
	}
}

func TestDerivedConfigFactor8(t *testing.T) {
	fe, err := New(pipeline.DefaultConfig(), 8, 127)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fe.Config()
	if cfg.STFT.FFTSize != 1024 || cfg.STFT.HopSize != 128 {
		t.Errorf("derived FFT/hop = %d/%d, want 1024/128", cfg.STFT.FFTSize, cfg.STFT.HopSize)
	}
	// Bin resolution and frame rate are preserved.
	base := pipeline.DefaultConfig()
	if got, want := cfg.FrameRate(), base.FrameRate(); got != want {
		t.Errorf("frame rate %g, want %g", got, want)
	}
	// The 20 kHz carrier folds to 22050−20000 = 2050 Hz, inverted.
	if cfg.CarrierHz != 2050 {
		t.Errorf("aliased carrier = %g, want 2050", cfg.CarrierHz)
	}
	if !cfg.InvertSpectrum {
		t.Error("zone-7 fold should be spectrally inverted")
	}
	if cfg.PhysicalCarrier() != 20000 {
		t.Errorf("physical carrier = %g, want 20000", cfg.PhysicalCarrier())
	}
	if fe.Factor() != 8 {
		t.Errorf("Factor() = %d", fe.Factor())
	}
}

func TestProcessRejectsWrongRate(t *testing.T) {
	fe, err := New(pipeline.DefaultConfig(), 8, 127)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fe.Process(&audio.Signal{Samples: make([]float64, 100), Rate: 48000}); err == nil {
		t.Error("wrong rate accepted")
	}
}

func TestDownsampledRecognition(t *testing.T) {
	// The acid test of §VII-A: decimate by 8 and the strokes must still
	// recognize correctly with an 8× smaller FFT.
	fe, err := New(pipeline.DefaultConfig(), 8, 127)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := fe.CalibratedEngine()
	if err != nil {
		t.Fatal(err)
	}
	sess := participant.NewSession(participant.SixParticipants()[0], 3)
	correct, total := 0, 0
	for _, st := range stroke.AllStrokes() {
		for r := 0; r < 2; r++ {
			rec, err := capture.Perform(sess, stroke.Sequence{st},
				acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom),
				uint64(int(st)*10+r))
			if err != nil {
				t.Fatal(err)
			}
			low, err := fe.Process(rec.Signal)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := low.Rate, 44100.0/8; got != want {
				t.Fatalf("decimated rate %g, want %g", got, want)
			}
			out, err := eng.Recognize(low)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if len(out.Detections) == 1 && out.Detections[0].Stroke == st {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.75 {
		t.Errorf("downsampled accuracy %.2f, want >= 0.75 (12 clean trials)", acc)
	}
}

func TestNewRejectsZoneStraddle(t *testing.T) {
	// A band crossing a Nyquist-zone edge of the decimated rate would
	// alias onto itself. With factor 8 (zone edges every 2756.25 Hz, one
	// at 19293.75), a band [19100, 19600] straddles zones 6 and 7.
	base := pipeline.DefaultConfig()
	base.STFT.LowBin = int(19100 * float64(base.STFT.FFTSize) / base.STFT.SampleRate)
	base.STFT.HighBin = int(19600*float64(base.STFT.FFTSize)/base.STFT.SampleRate) + 1
	base.CarrierHz = 19400
	if _, err := New(base, 8, 127); err == nil {
		t.Error("zone-straddling band accepted")
	}
}
