package lexicon

import (
	"fmt"
	"strings"
)

// phraseCorpus is an embedded set of Fry-style instant phrases: short
// high-frequency word groups of the genre the paper draws its text-entry
// blocks from (Fry Instant Phrases, §V-B3). Lines hold one phrase each.
const phraseCorpus = `
the people
by the water
you and i
what will they do
he called me
we had their dog
what did they say
when would you go
no way
a number of people
one or two
how long are they
more than the other
come and get it
how many words
part of the time
this is a good day
can you see
sit down
now and then
but not me
go find her
not now
look for some people
i like him
so there you are
out of the water
a long time
we were here
have you seen it
could you go
one more time
we like to write
all day long
into the water
it is about time
the other people
up in the air
she said to go
which way
each of us
he has it
what are these
if we were older
there was an old man
it could be worse
tell the truth
a long way to go
when did they go
for some of your people
let me help you
this is my cat
she wants to eat
will you be good
give them to me
then we will go
now is the time
an angry cat
may i go first
write your name
this is a good book
you want to eat
where are you
she has been here
two of us
his dog is big
her home is far
take a little
give it back
only a little
it is only me
i know why
three years ago
live and play
a good man
after the game
most of the animals
our best things
just the same
my last name
that old book
take a little water
i think so
where does it live
get on the bus
near the car
between the lines
my own father
in the country
add it up
read the book
this is my mother
such a good time
the first word
we found it here
right now
around the corner
state the facts
the light in the window
keep it clean
because we should
`

// Phrases returns the embedded phrase corpus, one phrase per line,
// normalized to lowercase single-spaced words.
func Phrases() []string {
	var out []string
	for _, line := range strings.Split(phraseCorpus, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		out = append(out, strings.Join(strings.Fields(line), " "))
	}
	return out
}

// PhraseBlocks groups the phrases into blocks of the given size (the
// paper groups paragraphs into five blocks of two). The final block may be
// short.
func PhraseBlocks(phrasesPerBlock int) ([][]string, error) {
	if phrasesPerBlock <= 0 {
		return nil, fmt.Errorf("lexicon: phrases per block must be positive, got %d", phrasesPerBlock)
	}
	ps := Phrases()
	var blocks [][]string
	for start := 0; start < len(ps); start += phrasesPerBlock {
		end := start + phrasesPerBlock
		if end > len(ps) {
			end = len(ps)
		}
		blocks = append(blocks, ps[start:end])
	}
	return blocks, nil
}

// PhraseWords returns the deduplicated set of words used across the
// phrase corpus.
func PhraseWords() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range Phrases() {
		for _, w := range strings.Fields(p) {
			if !seen[w] {
				seen[w] = true
				out = append(out, w)
			}
		}
	}
	return out
}
