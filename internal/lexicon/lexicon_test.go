package lexicon

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/stroke"
)

func mustDefault(t *testing.T) *Dictionary {
	t.Helper()
	d, err := Default()
	if err != nil {
		t.Fatalf("Default(): %v", err)
	}
	return d
}

func TestDefaultDictionarySize(t *testing.T) {
	d := mustDefault(t)
	if d.Size() < 1000 {
		t.Errorf("dictionary has %d words, want >= 1000", d.Size())
	}
}

func TestFrequenciesAreZipfOrdered(t *testing.T) {
	d := mustDefault(t)
	entries := d.Entries()
	for i := 1; i < len(entries); i++ {
		if entries[i].Frequency > entries[i-1].Frequency {
			t.Fatalf("frequency not descending at rank %d", i)
		}
	}
	// Heavy tail: rank-1 frequency dwarfs rank-1000.
	if entries[0].Frequency < 100*entries[999].Frequency {
		t.Errorf("distribution not heavy-tailed: f(1)=%g f(1000)=%g",
			entries[0].Frequency, entries[999].Frequency)
	}
}

func TestLookupRoundTripProperty(t *testing.T) {
	// Property: every entry is found by looking up its own sequence.
	d := mustDefault(t)
	entries := d.Entries()
	f := func(idxRaw uint16) bool {
		e := &entries[int(idxRaw)%len(entries)]
		for _, got := range d.Lookup(e.StrokeSeq) {
			if got.Word == e.Word {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLookupReturnsOnlyMatchingSequencesProperty(t *testing.T) {
	// Property: lookup results all encode to the queried sequence.
	d := mustDefault(t)
	entries := d.Entries()
	f := func(idxRaw uint16) bool {
		e := &entries[int(idxRaw)%len(entries)]
		for _, got := range d.Lookup(e.StrokeSeq) {
			if !got.StrokeSeq.Equal(e.StrokeSeq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFind(t *testing.T) {
	d := mustDefault(t)
	if d.Find("the") == nil {
		t.Error(`"the" missing from dictionary`)
	}
	if d.Find("THE") == nil {
		t.Error("Find not case-insensitive")
	}
	if d.Find("zzzzqqqq") != nil {
		t.Error("nonexistent word found")
	}
}

func TestEntryAttributes(t *testing.T) {
	d := mustDefault(t)
	e := d.Find("water")
	if e == nil {
		t.Fatal(`"water" missing`)
	}
	if e.Length != 5 {
		t.Errorf("Length = %d, want 5", e.Length)
	}
	if len(e.StrokeSeq) != 5 {
		t.Errorf("StrokeSeq length = %d, want 5", len(e.StrokeSeq))
	}
	want, err := d.Scheme().Encode("water")
	if err != nil {
		t.Fatal(err)
	}
	if !e.StrokeSeq.Equal(want) {
		t.Errorf("StrokeSeq = %v, want %v", e.StrokeSeq, want)
	}
}

func TestPriorNormalization(t *testing.T) {
	d := mustDefault(t)
	sum := 0.0
	for i := range d.Entries() {
		e := &d.Entries()[i]
		p := d.Prior(e)
		if p <= 0 || p > 1 {
			t.Fatalf("prior of %q = %g", e.Word, p)
		}
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("priors sum to %g, want 1", sum)
	}
}

func TestTopWords(t *testing.T) {
	d := mustDefault(t)
	top := d.TopWords(10)
	if len(top) != 10 {
		t.Fatalf("TopWords(10) returned %d", len(top))
	}
	if top[0] != "the" {
		t.Errorf("most frequent word = %q, want \"the\"", top[0])
	}
	if got := d.TopWords(1 << 20); len(got) != d.Size() {
		t.Errorf("oversized n returned %d words", len(got))
	}
}

func TestNewDictionaryValidation(t *testing.T) {
	if _, err := NewDictionary(nil, []string{"a"}); err == nil {
		t.Error("nil scheme accepted")
	}
	if _, err := NewDictionary(stroke.DefaultScheme(), []string{"bad-word"}); err == nil {
		t.Error("hyphenated word accepted")
	}
	// Duplicates keep first occurrence.
	d, err := NewDictionary(stroke.DefaultScheme(), []string{"go", "stop", "go"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 2 {
		t.Errorf("Size = %d, want 2 (dedup)", d.Size())
	}
}

func TestAmbiguityStats(t *testing.T) {
	d := mustDefault(t)
	st := d.Ambiguity()
	if st.Sequences <= 0 || st.Sequences > d.Size() {
		t.Errorf("Sequences = %d", st.Sequences)
	}
	if st.MaxCollisions < 1 {
		t.Errorf("MaxCollisions = %d", st.MaxCollisions)
	}
	if st.MeanCollisions < 1 {
		t.Errorf("MeanCollisions = %g", st.MeanCollisions)
	}
	if st.UniqueFraction <= 0 || st.UniqueFraction > 1 {
		t.Errorf("UniqueFraction = %g", st.UniqueFraction)
	}
}

func TestWordsByLength(t *testing.T) {
	d := mustDefault(t)
	words := d.WordsByLength(2, 5)
	if len(words) != 5 {
		t.Fatalf("got %d words, want 5", len(words))
	}
	for _, w := range words {
		if len(w) != 2 {
			t.Errorf("word %q has length %d", w, len(w))
		}
	}
}

func TestSortEntriesForDisplay(t *testing.T) {
	d := mustDefault(t)
	entries := []*Entry{d.Find("water"), d.Find("to"), d.Find("the")}
	scores := []float64{0.9, 0.1, 0.5}
	SortEntriesForDisplay(entries, scores)
	// Length ascending: "to"(2), "the"(3), "water"(5).
	if entries[0].Word != "to" || entries[1].Word != "the" || entries[2].Word != "water" {
		t.Errorf("order = %v", []string{entries[0].Word, entries[1].Word, entries[2].Word})
	}
	if scores[0] != 0.1 || scores[2] != 0.9 {
		t.Errorf("scores not permuted with entries: %v", scores)
	}
}

func TestWordListIsClean(t *testing.T) {
	// Every embedded word must be lowercase ASCII letters.
	for _, w := range strings.Fields(wordList) {
		for _, r := range w {
			if r < 'a' || r > 'z' {
				t.Fatalf("word %q contains %q", w, r)
			}
		}
	}
}
