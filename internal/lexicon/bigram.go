package lexicon

import (
	"fmt"
	"sort"
	"strings"
)

// Bigram is a next-word language model: counts of word pairs with
// add-one-smoothed conditional probabilities. The paper uses COCA 2-gram
// data for its automatic successive-association word prediction (§III-C);
// we train on the embedded phrase corpus plus any extra text the caller
// supplies.
type Bigram struct {
	follows map[string]map[string]int
	unigram map[string]int
	pairs   int
}

// NewBigram returns an empty model.
func NewBigram() *Bigram {
	return &Bigram{
		follows: make(map[string]map[string]int),
		unigram: make(map[string]int),
	}
}

// Train adds the word pairs of one text line (whitespace-tokenized,
// lowercased) to the model.
func (b *Bigram) Train(line string) {
	words := strings.Fields(strings.ToLower(line))
	for i, w := range words {
		b.unigram[w]++
		if i == 0 {
			continue
		}
		prev := words[i-1]
		m := b.follows[prev]
		if m == nil {
			m = make(map[string]int)
			b.follows[prev] = m
		}
		m[w]++
		b.pairs++
	}
}

// TrainCorpus trains on multiple lines.
func (b *Bigram) TrainCorpus(lines []string) {
	for _, l := range lines {
		b.Train(l)
	}
}

// DefaultBigram trains a model on the embedded phrase corpus.
func DefaultBigram() *Bigram {
	m := NewBigram()
	m.TrainCorpus(Phrases())
	return m
}

// Pairs returns the number of trained word pairs (with multiplicity).
func (b *Bigram) Pairs() int { return b.pairs }

// Probability returns the add-one-smoothed conditional P(next|prev).
func (b *Bigram) Probability(prev, next string) float64 {
	prev = strings.ToLower(prev)
	next = strings.ToLower(next)
	m := b.follows[prev]
	count := 0
	total := 0
	if m != nil {
		count = m[next]
		for _, c := range m {
			total += c
		}
	}
	vocab := len(b.unigram)
	if vocab == 0 {
		return 0
	}
	return float64(count+1) / float64(total+vocab)
}

// Prediction is one next-word suggestion.
type Prediction struct {
	Word  string
	Count int
}

// Predict returns up to k next-word suggestions after prev, most frequent
// first, ties broken alphabetically for determinism.
func (b *Bigram) Predict(prev string, k int) ([]Prediction, error) {
	if k <= 0 {
		return nil, fmt.Errorf("lexicon: prediction count must be positive, got %d", k)
	}
	m := b.follows[strings.ToLower(prev)]
	if len(m) == 0 {
		return nil, nil
	}
	out := make([]Prediction, 0, len(m))
	for w, c := range m {
		out = append(out, Prediction{Word: w, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Word < out[j].Word
	})
	if len(out) > k {
		out = out[:k]
	}
	return out, nil
}
