package lexicon

// wordList is the embedded common-English vocabulary, ordered by
// descending frequency rank. It substitutes for the paper's 5000-word COCA
// extract (a licensed corpus): entry frequencies are assigned by a
// Zipf-Mandelbrot law over the rank order, which preserves the statistical
// property Algorithm 2 actually depends on — a heavy-tailed prior over
// candidate words. See DESIGN.md §2.
//
// Words are lowercase and deduplicated; parsing is validated by tests.
const wordList = `
the be to of and a in that have i
it for not on with he as you do at
this but his by from they we say her she
or an will my one all would there their what
so up out if about who get which go me
when make can like time no just him know take
people into year your good some could them see other
than then now look only come its over think also
back after use two how our work first well way
even new want because any these give day most us
is was are been has had were said did get
may must might shall should would can could will am
man woman child world school state family student group country
problem hand part place case week company system program question
night point home water room mother area money story fact
month lot right study book eye job word business issue
side kind head house service friend father power hour game
line end member law car city community name president team
minute idea body information nothing ago lead social understand whether
watch together follow around parent stop face anything create public
already speak others read level allow add office spend door
health person art war history party result change morning reason
research girl guy moment air teacher force education foot boy
age policy everything process music including consider appear actually buy
probably human wait serve market die send expect sense build
stay fall nation plan cut college interest death course someone
experience behind reach local kill six remain effect suggest class
control raise care perhaps little late hard field else pass
former sell major sometimes require along development themselves report role
better economic effort decision rather quite share still development light
believe strong certain clear recent against pattern culture final main
space open ground simple bad white return free easy close
love answer move turn start play run live call try
ask need feel become leave put mean keep let begin
seem help talk show hear play move like live believe
hold bring happen write provide sit stand lose pay meet
include continue set learn lead understand watch follow stop create
speak read allow add spend grow open walk win offer
remember love consider appear buy wait serve die send expect
build stay fall cut reach kill remain suggest raise pass
sell require report decide pull return explain hope develop carry
break receive agree support hit produce eat cover catch draw
choose cause point listen realize place close involve increase wonder
apply hold form visit test fly drive drop push pick
wear save rise worry accept drink join check pay teach
mention walk hurt act manage act attack tend according ready
despite maybe toward especially available likely short single personal current
natural significant similar hot dead central happy serious ready simple
left physical general environmental financial blue democratic dark various entire
medical deep religious cold final huge popular traditional cultural strange
remove song bank military bed variety heart attention weight picture
plant position north paper south plane road support century evidence
window difference glass technology action performance ear security wall mind
wide wind west wish wood worth yard yellow young zone
summer wife window wine winter woman wonder word worker writer
action activity actor actress address adult advance advantage adventure advice
afternoon agency agent agreement airport amount animal answer apartment apple
argument arm army arrival article artist attempt audience author baby
bag ball band bar base basis battle beach bear beauty
bird birth block blood board boat bone border bottle bottom
box brain branch bread bridge brother budget building bus button
cake camera camp campaign cancer candidate capital captain card career
cat cause cell center chair challenge chance chapter character charge
chest chicken chief choice church circle claim clothes club coach
coast coat code coffee colleague collection color column combination comfort
committee computer concept concern condition conference congress connection contact content
context contract conversation cook corner cost cotton couple courage court
cousin crime crisis critic crowd cup customer cycle dance danger
date daughter deal debate debt decade defense degree demand department
design desk detail device dinner direction director dirt discussion disease
distance doctor dog dollar drama dream dress driver drug earth
east economy edge editor egg election employee energy engine engineer
entry environment error escape estate event exam example exchange exercise
exit expert factor factory failure faith fan farm farmer fashion
fear feature feeling figure film finger fire fish flight floor
flower focus food football forest forever fortune frame freedom fruit
fuel fun function fund future garden gas gate gift goal
god gold golf government grass growth guard guess guest gun
hair half hall hat hate heat hell hero highway hill
hole holiday honey horse hospital hotel housing hundred husband ice
image impact income industry injury insect inside instance insurance intention
internet interview iron island item joke judge juice jump jury
key king kitchen knee knife lady lake land language laugh
lawyer layer leader league leg lesson letter library lie life
limit list literature living location lock log loss luck lunch
machine magazine mail manager map march marriage master match material
matter meal meaning measure meat medicine meeting memory message metal
method middle milk million mind mirror mission mistake mix model
mode mood moon mountain mouse mouth movie muscle museum nature
neck network news newspaper noise nose note notice number nurse
object occasion ocean offer officer oil operation opinion option orange
order owner pace package page pain painting pair panel pants
park partner passage past path patient peace pen pencil period
permission pet phase phone photo phrase piano piece pilot pipe
pitch plate platform player pleasure plenty pocket poem poet police
pool population port possibility post pot potato pound practice present
pressure price pride priest prince princess principle print priority prison
private prize procedure product profession professor profile profit project promise
proof property proposal protection purpose quality quarter queen quote race
radio rain range rate ratio reaction reader reality recipe record
region relation relationship rent repair reply request resource respect response
rest restaurant review reward rice ring risk river rock roof
root rope rose round route row rule sale salt sample
sand scale scene schedule scheme science score screen sea season
seat second secret section sector self senator sentence series session
shape shelter ship shirt shock shoe shop shoulder sign signal
silver singer sister site situation size skill skin sky sleep
smile smoke snow society soil soldier solution son sort soul
sound source speech speed spirit sport spot spring square stage
stair standard star statement station status steel step stick stock
stomach stone store storm strategy stream street stress structure style
subject success sugar suit sun surface surgery surprise survey symbol
table target task taste tax tea telephone television temperature term
text theme theory thing thought thousand threat throat ticket tide
title tool tooth topic total touch tour tourist tower town
track trade tradition traffic train transition travel treatment tree trial
trip truck trust truth tube unit universe university user valley
value van vehicle version victim victory video view village violence
vision visit voice volume vote wage wake war warning wave
wealth weapon weather web wedding weekend welfare wheel while whole
winner wire witness worry wound yesterday youth
about above across act active actual add admit adopt advance
afraid again agree ahead alive alone among angry announce annual
anybody anymore anyone apart appeal approach argue arrive aside asleep
assume attend average avoid aware away awful basic beat before
begin behavior belief belong below beside best beyond big bill
bind bite blame blank blind bond born both bother bound
brave brief bright broad brown burn busy calm capable care
careful cast casual catch cheap choose cite civil clean climb
collect commit common compare complete concern confirm connect constant contain
convert cool cope correct count crazy cross cry curious daily
damage dare deal dear decline deliver deny depend describe deserve
destroy direct dismiss divide double doubt dozen drag dry due
each eager early earn ease easily edit either elect email
emerge employ enable end engage enjoy enough ensure enter equal
establish estimate everybody exact examine exist expand explore express extend
extra fail fair fairly familiar famous fast favor feed few
fight fill find fine finish firm fit fix flat float
flow fold forget forgive formal forth forward fresh front full
gain gather gentle glad grab grand grant great green grow
guarantee guide handle hang happy harm heavy hide high hire
honest hope host hug huge hungry hunt hurry ignore ill
imagine immediate import impose impress improve indeed indicate inform initial
insist install instead intend invest invite issue joint keen kick
kiss knock lack large last lay lazy lean legal lend
less lift likely link load loan lonely long loose loud
low lower maintain mark marry mass mature measure mental mere
mild miss mix modern moral moreover narrow near nearly neat
necessary negative neither nervous net never nice nobody nod normal
obtain obvious occur odd official often okay old once operate
oppose ordinary organize ought overall owe own pack paint pale
particular per perfect perform permit pink plain please plus polite
poor positive possess possible pour practical pray prefer prepare pretend
pretty prevent previous prime prior promote proper propose protect proud
prove pure pursue quick quiet raw real recall recently recognize
recover reduce refer reflect refuse regard regular reject relate relax
release relevant rely remind remote repeat replace represent rescue reserve
resist resolve respond restore retain retire reveal reverse rich ride
rough rub rural rush sad safe same score seek seize
seldom select senior separate settle severe shake shall sharp shift
shine shoot shout shut sick silent silly sing sink slide
slight slip slow small smart smell smooth soft solid solve
soon sorry spare spread spin split spoil stare steal steady
stretch strict strike strip struggle stupid succeed sudden suffer supply
suppose sure surround survive sweet swim swing switch tall tape
tear tell tender terrible thank thick thin third throw tie
tight tiny tired tone top tough tour trace transfer transform
translate treat tremble trick trouble true twice typical ugly unable
undergo unique unless until upon upset urban urge useful usual
vary vast very vital vote warm warn wash weak weigh
welcome wet whatever whenever wherever whisper wild willing wise withdraw
wrap wrong yell yet
called more many words down here seen older worse wants where far why hi
three years animals things does between lines such found facts goes
makes comes takes gives gets looks says wrote written done went gone
knew thought told came said saw made her his its their
`
