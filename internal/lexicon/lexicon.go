// Package lexicon provides the vocabulary substrate of EchoWrite's word
// inference: a frequency-ranked dictionary whose entries carry their
// stroke-sequence encodings ({word, frequency, length, strokeSeq} in the
// paper's schema, §III-C), a bigram model for next-word prediction, and
// the phrase corpus used by the text-entry speed experiments.
package lexicon

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/stroke"
)

// Entry is one dictionary word with the paper's four attributes.
type Entry struct {
	// Word is the lowercase word.
	Word string
	// Frequency is the (synthetic Zipf) corpus frequency, used as the
	// prior P(w).
	Frequency float64
	// Length is the word length in letters (== number of strokes).
	Length int
	// StrokeSeq is the word's encoding under the input scheme.
	StrokeSeq stroke.Sequence
}

// Dictionary indexes entries by their stroke sequence for O(1) fuzzy
// lookup, the core operation of Algorithm 2.
type Dictionary struct {
	scheme  *stroke.Scheme
	entries []Entry
	byWord  map[string]*Entry
	bySeq   map[string][]*Entry
	total   float64
}

// zipfMandelbrot assigns frequency C/(rank+q)^s; q=2.7, s=1.07 follow
// common English-corpus fits.
func zipfMandelbrot(rank int) float64 {
	return 1e9 / math.Pow(float64(rank)+2.7, 1.07)
}

// NewDictionary builds a dictionary from an ordered word list (most
// frequent first) under the given scheme. Duplicate words keep their first
// (higher-frequency) position. Words with non-letter characters are
// rejected.
func NewDictionary(scheme *stroke.Scheme, words []string) (*Dictionary, error) {
	if scheme == nil {
		return nil, fmt.Errorf("lexicon: nil scheme")
	}
	d := &Dictionary{
		scheme: scheme,
		byWord: make(map[string]*Entry, len(words)),
		bySeq:  make(map[string][]*Entry, len(words)),
	}
	d.entries = make([]Entry, 0, len(words))
	seen := make(map[string]bool, len(words))
	for _, w := range words {
		w = strings.ToLower(strings.TrimSpace(w))
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		seq, err := scheme.Encode(w)
		if err != nil {
			return nil, fmt.Errorf("lexicon: word %q: %w", w, err)
		}
		rank := len(d.entries) + 1
		d.entries = append(d.entries, Entry{
			Word:      w,
			Frequency: zipfMandelbrot(rank),
			Length:    len([]rune(w)),
			StrokeSeq: seq,
		})
	}
	for i := range d.entries {
		e := &d.entries[i]
		d.byWord[e.Word] = e
		key := e.StrokeSeq.Key()
		d.bySeq[key] = append(d.bySeq[key], e)
		d.total += e.Frequency
	}
	return d, nil
}

// DefaultWords returns the embedded vocabulary in descending frequency
// order, for callers building dictionaries under custom schemes.
func DefaultWords() []string {
	return strings.Fields(wordList)
}

// Default builds the embedded ~1.7k-word dictionary under the default
// input scheme.
func Default() (*Dictionary, error) {
	return NewDictionary(stroke.DefaultScheme(), DefaultWords())
}

// Size returns the number of entries.
func (d *Dictionary) Size() int { return len(d.entries) }

// Scheme returns the input scheme the dictionary was encoded under.
func (d *Dictionary) Scheme() *stroke.Scheme { return d.scheme }

// Lookup returns the entries whose stroke sequence equals seq, or nil.
// The returned slice must not be modified.
func (d *Dictionary) Lookup(seq stroke.Sequence) []*Entry {
	return d.bySeq[seq.Key()]
}

// Find returns the entry for an exact word, or nil.
func (d *Dictionary) Find(word string) *Entry {
	return d.byWord[strings.ToLower(word)]
}

// Prior returns the normalized prior probability P(w) of an entry.
func (d *Dictionary) Prior(e *Entry) float64 {
	if d.total == 0 {
		return 0
	}
	return e.Frequency / d.total
}

// TopWords returns the n most frequent words (the learnability study draws
// its 300-word workload from these).
func (d *Dictionary) TopWords(n int) []string {
	if n > len(d.entries) {
		n = len(d.entries)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = d.entries[i].Word
	}
	return out
}

// Entries returns all entries ordered by descending frequency. The
// returned slice must not be modified.
func (d *Dictionary) Entries() []Entry { return d.entries }

// AmbiguityStats summarizes how many words share each stroke sequence — a
// measure of the input scheme's T9-style collision rate.
type AmbiguityStats struct {
	// Sequences is the number of distinct stroke sequences.
	Sequences int
	// MaxCollisions is the largest number of words on one sequence.
	MaxCollisions int
	// MeanCollisions is the average words-per-sequence.
	MeanCollisions float64
	// UniqueFraction is the fraction of words alone on their sequence.
	UniqueFraction float64
}

// Ambiguity computes collision statistics over the dictionary.
func (d *Dictionary) Ambiguity() AmbiguityStats {
	st := AmbiguityStats{Sequences: len(d.bySeq)}
	unique := 0
	for _, group := range d.bySeq {
		if len(group) > st.MaxCollisions {
			st.MaxCollisions = len(group)
		}
		if len(group) == 1 {
			unique++
		}
	}
	if len(d.bySeq) > 0 {
		st.MeanCollisions = float64(len(d.entries)) / float64(len(d.bySeq))
		st.UniqueFraction = float64(unique) / float64(len(d.entries))
	}
	return st
}

// WordsByLength returns up to n words of exactly the given letter count,
// most frequent first. Used to build Table I-style word sets.
func (d *Dictionary) WordsByLength(length, n int) []string {
	var out []string
	for i := range d.entries {
		if d.entries[i].Length == length {
			out = append(out, d.entries[i].Word)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// SortEntriesForDisplay orders candidate entries the way Algorithm 2's
// final step does: ascending word length, then descending probability.
// The probability for each entry is supplied in scores (parallel to
// entries).
func SortEntriesForDisplay(entries []*Entry, scores []float64) {
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := entries[idx[a]], entries[idx[b]]
		if ea.Length != eb.Length {
			return ea.Length < eb.Length
		}
		return scores[idx[a]] > scores[idx[b]]
	})
	outE := make([]*Entry, len(entries))
	outS := make([]float64, len(scores))
	for i, j := range idx {
		outE[i] = entries[j]
		outS[i] = scores[j]
	}
	copy(entries, outE)
	copy(scores, outS)
}
