package lexicon

import (
	"strings"
	"testing"
)

func TestPhrasesNonEmptyAndNormalized(t *testing.T) {
	ps := Phrases()
	if len(ps) < 80 {
		t.Fatalf("only %d phrases, want >= 80", len(ps))
	}
	for _, p := range ps {
		if p != strings.ToLower(p) {
			t.Errorf("phrase %q not lowercase", p)
		}
		if strings.Contains(p, "  ") {
			t.Errorf("phrase %q has double spaces", p)
		}
	}
}

func TestAllPhraseWordsInDictionary(t *testing.T) {
	// Text-entry experiments write phrases through the dictionary, so
	// every phrase word must be present.
	d := mustDefault(t)
	for _, w := range PhraseWords() {
		if d.Find(w) == nil {
			t.Errorf("phrase word %q missing from dictionary", w)
		}
	}
}

func TestPhraseBlocks(t *testing.T) {
	blocks, err := PhraseBlocks(10)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, b := range blocks {
		if len(b) == 0 {
			t.Errorf("block %d empty", i)
		}
		if len(b) > 10 {
			t.Errorf("block %d has %d phrases", i, len(b))
		}
		total += len(b)
	}
	if total != len(Phrases()) {
		t.Errorf("blocks cover %d phrases, corpus has %d", total, len(Phrases()))
	}
	if _, err := PhraseBlocks(0); err == nil {
		t.Error("zero block size accepted")
	}
}

func TestBigramTrainAndPredict(t *testing.T) {
	b := NewBigram()
	b.Train("the people like the water")
	b.Train("the people")
	if b.Pairs() != 5 {
		t.Errorf("Pairs = %d, want 5", b.Pairs())
	}
	preds, err := b.Predict("the", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(preds) != 2 {
		t.Fatalf("got %d predictions", len(preds))
	}
	if preds[0].Word != "people" || preds[0].Count != 2 {
		t.Errorf("top prediction = %+v, want people×2", preds[0])
	}
	if _, err := b.Predict("the", 0); err == nil {
		t.Error("zero k accepted")
	}
	// Unknown context gives no predictions, no error.
	preds, err = b.Predict("zebra", 3)
	if err != nil || preds != nil {
		t.Errorf("unknown context: %v, %v", preds, err)
	}
}

func TestBigramProbability(t *testing.T) {
	b := NewBigram()
	b.Train("a b a b a c")
	// follows[a] = {b:2, c:1}; vocab = 3.
	pAB := b.Probability("a", "b")
	pAC := b.Probability("a", "c")
	pAX := b.Probability("a", "x")
	if pAB <= pAC || pAC <= pAX {
		t.Errorf("probability ordering wrong: %g, %g, %g", pAB, pAC, pAX)
	}
	if pAX <= 0 {
		t.Error("smoothing failed: unseen pair has zero probability")
	}
	// Empty model returns 0.
	if NewBigram().Probability("a", "b") != 0 {
		t.Error("empty model probability not 0")
	}
}

func TestDefaultBigramTrainsOnPhrases(t *testing.T) {
	b := DefaultBigram()
	if b.Pairs() == 0 {
		t.Fatal("default bigram is empty")
	}
	// "the" is everywhere in the phrase corpus.
	preds, err := b.Predict("the", 3)
	if err != nil || len(preds) == 0 {
		t.Errorf(`no predictions after "the": %v, %v`, preds, err)
	}
}

func TestBigramDeterministicTieBreak(t *testing.T) {
	b := NewBigram()
	b.Train("x a")
	b.Train("x b")
	p1, err := b.Predict("x", 2)
	if err != nil {
		t.Fatal(err)
	}
	if p1[0].Word != "a" || p1[1].Word != "b" {
		t.Errorf("tie not broken alphabetically: %v", p1)
	}
}
