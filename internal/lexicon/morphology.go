package lexicon

import "strings"

// ExpandMorphology grows a base vocabulary with regular English inflections
// (plural/3rd-person -s/-es, past -ed, progressive -ing, and -ly/-er/-est
// derivations), preserving frequency order: each derived form is appended
// after the block of base words with a frequency-rank penalty, so priors
// remain Zipf-plausible. The result approaches the scale of the paper's
// 5000-word COCA extract from the embedded ~2k-word base list.
//
// Expansion is intentionally conservative: irregular forms are not
// attempted, candidates that collide with existing words are dropped, and
// phonologically awkward stems (ending in double vowels etc.) are skipped.
// The goal is vocabulary *scale* with realistic stroke-sequence collision
// statistics, not lexicographic perfection.
func ExpandMorphology(base []string) []string {
	seen := make(map[string]bool, len(base)*3)
	out := make([]string, 0, len(base)*2)
	for _, w := range base {
		w = strings.ToLower(strings.TrimSpace(w))
		if w == "" || seen[w] {
			continue
		}
		seen[w] = true
		out = append(out, w)
	}
	n := len(out)
	// Derived forms appear after the base block, in base-frequency order
	// per suffix family (commonest suffixes first).
	for _, derive := range []func(string) string{sForm, ingForm, edForm, erForm, lyForm} {
		for i := 0; i < n; i++ {
			d := derive(out[i])
			if d == "" || seen[d] {
				continue
			}
			seen[d] = true
			out = append(out, d)
		}
	}
	return out
}

func vowel(b byte) bool {
	return b == 'a' || b == 'e' || b == 'i' || b == 'o' || b == 'u'
}

// usable filters stems too short or awkward to inflect regularly.
func usable(w string) bool {
	return len(w) >= 3 && len(w) <= 10
}

// sForm builds the plural / 3rd-person form.
func sForm(w string) string {
	if !usable(w) {
		return ""
	}
	last := w[len(w)-1]
	switch {
	case last == 's' || last == 'x' || last == 'z' ||
		strings.HasSuffix(w, "ch") || strings.HasSuffix(w, "sh"):
		return w + "es"
	case last == 'y' && !vowel(w[len(w)-2]):
		return w[:len(w)-1] + "ies"
	default:
		return w + "s"
	}
}

// ingForm builds the progressive form.
func ingForm(w string) string {
	if !usable(w) {
		return ""
	}
	last := w[len(w)-1]
	switch {
	case last == 'e' && !strings.HasSuffix(w, "ee"):
		return w[:len(w)-1] + "ing"
	case last == 'y', last == 'w', vowel(last):
		return w + "ing"
	default:
		return w + "ing"
	}
}

// edForm builds the past form.
func edForm(w string) string {
	if !usable(w) {
		return ""
	}
	last := w[len(w)-1]
	switch {
	case last == 'e':
		return w + "d"
	case last == 'y' && !vowel(w[len(w)-2]):
		return w[:len(w)-1] + "ied"
	default:
		return w + "ed"
	}
}

// erForm builds the comparative/agentive form.
func erForm(w string) string {
	if !usable(w) || len(w) > 8 {
		return ""
	}
	last := w[len(w)-1]
	switch {
	case last == 'e':
		return w + "r"
	case last == 'y' && !vowel(w[len(w)-2]):
		return w[:len(w)-1] + "ier"
	default:
		return w + "er"
	}
}

// lyForm builds the adverbial form for plausible adjectives.
func lyForm(w string) string {
	if !usable(w) || len(w) > 9 {
		return ""
	}
	last := w[len(w)-1]
	switch {
	case last == 'y' && !vowel(w[len(w)-2]):
		return w[:len(w)-1] + "ily"
	case last == 'l':
		return w + "ly"
	case strings.HasSuffix(w, "le"):
		return w[:len(w)-1] + "y"
	default:
		return w + "ly"
	}
}

// ExpandedWords returns the embedded vocabulary grown to roughly the
// paper's 5000-word dictionary scale via ExpandMorphology. Experiments
// use the base list by default; pass this to core.Options.Words (or
// lexicon.NewDictionary) to evaluate at full dictionary scale.
func ExpandedWords() []string {
	out := ExpandMorphology(DefaultWords())
	const target = 5000
	if len(out) > target {
		out = out[:target]
	}
	return out
}
