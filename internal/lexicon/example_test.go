package lexicon_test

import (
	"fmt"

	"repro/internal/lexicon"
)

func ExampleDictionary_Lookup() {
	dict, err := lexicon.Default()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	// All words sharing the stroke sequence of "the" (T9-style class).
	the := dict.Find("the")
	for _, e := range dict.Lookup(the.StrokeSeq)[:2] {
		fmt.Println(e.Word)
	}
	// Output:
	// the
	// fit
}

func ExampleBigram_Predict() {
	b := lexicon.NewBigram()
	b.Train("the people like the water")
	b.Train("the water is cold")
	preds, err := b.Predict("the", 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(preds[0].Word)
	// Output: water
}
