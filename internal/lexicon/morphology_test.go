package lexicon

import (
	"testing"

	"repro/internal/stroke"
)

func TestExpandMorphologyForms(t *testing.T) {
	out := ExpandMorphology([]string{"walk", "try", "move", "watch", "box"})
	set := make(map[string]bool, len(out))
	for _, w := range out {
		set[w] = true
	}
	for _, want := range []string{
		"walk", "walks", "walking", "walked", "walker",
		"tries", "trying", "tried",
		"moves", "moving", "moved", "mover",
		"watches", "watching", "watched",
		"boxes", "boxing", "boxed",
	} {
		if !set[want] {
			t.Errorf("missing derived form %q", want)
		}
	}
}

func TestExpandMorphologyNoDuplicatesAndOrder(t *testing.T) {
	out := ExpandMorphology([]string{"run", "runs", "try"})
	seen := map[string]bool{}
	for _, w := range out {
		if seen[w] {
			t.Fatalf("duplicate %q", w)
		}
		seen[w] = true
	}
	// Base words keep their relative order at the front.
	if out[0] != "run" || out[1] != "runs" || out[2] != "try" {
		t.Errorf("base order lost: %v", out[:3])
	}
}

func TestExpandMorphologySkipsShortStems(t *testing.T) {
	out := ExpandMorphology([]string{"go", "a"})
	for _, w := range out {
		if w == "gos" || w == "aing" {
			t.Errorf("short stem inflected: %q", w)
		}
	}
}

func TestExpandedWordsScale(t *testing.T) {
	words := ExpandedWords()
	if len(words) < 4000 || len(words) > 5000 {
		t.Errorf("expanded vocabulary has %d words, want ≈5000 (paper's dictionary size)", len(words))
	}
	for _, w := range words {
		for _, r := range w {
			if r < 'a' || r > 'z' {
				t.Fatalf("expanded word %q has non-letter %q", w, r)
			}
		}
	}
}

func TestExpandedDictionaryBuilds(t *testing.T) {
	dict, err := NewDictionary(stroke.DefaultScheme(), ExpandedWords())
	if err != nil {
		t.Fatal(err)
	}
	if dict.Size() < 4000 {
		t.Errorf("dictionary size %d", dict.Size())
	}
	// More words → denser collision classes than the base dictionary.
	base, err := Default()
	if err != nil {
		t.Fatal(err)
	}
	if dict.Ambiguity().MeanCollisions <= base.Ambiguity().MeanCollisions {
		t.Error("expanded dictionary should be more ambiguous")
	}
	// Inflections still encode consistently.
	e := dict.Find("walking")
	if e == nil {
		t.Fatal(`"walking" missing`)
	}
	want, err := stroke.DefaultScheme().Encode("walking")
	if err != nil {
		t.Fatal(err)
	}
	if !e.StrokeSeq.Equal(want) {
		t.Error("inflected encoding mismatch")
	}
}
