package dtw

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDistanceRejectsEmpty(t *testing.T) {
	if _, err := Distance(nil, []float64{1}, Options{}); err == nil {
		t.Error("empty a accepted")
	}
	if _, err := Distance([]float64{1}, nil, Options{}); err == nil {
		t.Error("empty b accepted")
	}
}

func TestDistanceIdentityProperty(t *testing.T) {
	// Property: d(x, x) == 0.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 21))
		n := 1 + rng.IntN(40)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64() * 50
		}
		for _, opts := range []Options{{}, {Window: 5}, {Normalize: true}} {
			d, err := Distance(x, x, opts)
			if err != nil || d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	// Property: d(x, y) == d(y, x) for the symmetric |·| kernel.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 22))
		x := make([]float64, 1+rng.IntN(25))
		y := make([]float64, 1+rng.IntN(25))
		for i := range x {
			x[i] = rng.NormFloat64() * 10
		}
		for i := range y {
			y[i] = rng.NormFloat64() * 10
		}
		d1, err1 := Distance(x, y, Options{})
		d2, err2 := Distance(y, x, Options{})
		return err1 == nil && err2 == nil && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		x := make([]float64, 1+rng.IntN(20))
		y := make([]float64, 1+rng.IntN(20))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		d, err := Distance(x, y, Options{Normalize: true})
		return err == nil && d >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBandedAtLeastUnbandedProperty(t *testing.T) {
	// Property: constraining the warp path cannot decrease the optimum.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 24))
		x := make([]float64, 10+rng.IntN(15))
		y := make([]float64, 10+rng.IntN(15))
		for i := range x {
			x[i] = rng.NormFloat64() * 20
		}
		for i := range y {
			y[i] = rng.NormFloat64() * 20
		}
		full, err := Distance(x, y, Options{})
		if err != nil {
			return false
		}
		banded, err := Distance(x, y, Options{Window: 3})
		if err != nil {
			return false
		}
		return banded >= full-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDistanceKnownValue(t *testing.T) {
	// Hand-checked: a=[0,1,2], b=[0,2]. Optimal alignment:
	// (0,0)=0, (1,1)=1, (2,1)=0 → total 1.
	d, err := Distance([]float64{0, 1, 2}, []float64{0, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d != 1 {
		t.Errorf("distance = %g, want 1", d)
	}
}

func TestDistanceTimeWarpInvariance(t *testing.T) {
	// A stretched copy of a bell matches far better than a different bell.
	bellAt := func(n int, amp float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			x := float64(i) / float64(n-1)
			out[i] = amp * math.Sin(math.Pi*x)
		}
		return out
	}
	orig := bellAt(20, 100)
	stretched := bellAt(30, 100)
	other := bellAt(20, -100)
	dSame, err := Distance(orig, stretched, Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	dOther, err := Distance(orig, other, Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if dSame*5 > dOther {
		t.Errorf("stretched copy (%g) not much closer than sign-flipped (%g)", dSame, dOther)
	}
}

func TestWindowAutoWidensForLengthGap(t *testing.T) {
	// Window smaller than the length difference must still align.
	a := make([]float64, 30)
	b := make([]float64, 10)
	if _, err := Distance(a, b, Options{Window: 2}); err != nil {
		t.Errorf("auto-widened window failed: %v", err)
	}
}

func TestNormalizeDividesByPathLength(t *testing.T) {
	a := []float64{5, 5, 5, 5}
	b := []float64{0, 0, 0, 0}
	raw, err := Distance(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := Distance(a, b, Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if raw != 20 {
		t.Errorf("raw = %g, want 20", raw)
	}
	if norm != 5 {
		t.Errorf("normalized = %g, want 5 (per-step)", norm)
	}
}

func TestNearestN(t *testing.T) {
	library := [][]float64{
		{0, 0, 0},
		{10, 10, 10},
		{100, 100, 100},
	}
	query := []float64{11, 9, 10}
	matches, err := NearestN(query, library, 2, Options{Normalize: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 {
		t.Fatalf("got %d matches, want 2", len(matches))
	}
	if matches[0].Index != 1 {
		t.Errorf("best match index = %d, want 1", matches[0].Index)
	}
	if matches[0].Distance > matches[1].Distance {
		t.Error("matches not sorted ascending")
	}
	// k clamping.
	matches, err = NearestN(query, library, 99, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Errorf("clamped k gave %d matches", len(matches))
	}
	if _, err := NearestN(query, nil, 1, Options{}); err == nil {
		t.Error("empty library accepted")
	}
}
