// Package dtw implements dynamic time warping, the similarity measure
// EchoWrite uses to match an extracted Doppler profile against the six
// analytic stroke templates (§III-C). DTW tolerates the stretch and
// contraction that different writing speeds introduce.
package dtw

import (
	"fmt"
	"math"
)

// Options configure a DTW computation.
type Options struct {
	// Window is the Sakoe–Chiba band half-width in samples; 0 means an
	// unconstrained full alignment. The band is widened automatically to
	// at least |len(a)−len(b)| so an alignment always exists.
	Window int
	// Normalize, when true, divides the final distance by the alignment
	// path length, making distances comparable across sequence lengths.
	Normalize bool
}

// Distance computes the DTW distance between two sequences under the
// absolute-difference local cost. Either sequence being empty is an error.
//
// ew:hotpath — the inner dynamic-program loop runs len(a)·len(b) times
// per template; the hotalloc analyzer keeps allocations out of it.
func Distance(a, b []float64, opts Options) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("dtw: sequences must be non-empty (got %d, %d)", len(a), len(b))
	}
	n, m := len(a), len(b)
	window := opts.Window
	if window > 0 {
		if d := n - m; d < 0 {
			if -d > window {
				window = -d
			}
		} else if d > window {
			window = d
		}
	}
	const inf = math.MaxFloat64
	// Two-row dynamic program; track path length alongside cost when
	// normalizing.
	prevCost := make([]float64, m+1)
	curCost := make([]float64, m+1)
	prevLen := make([]int, m+1)
	curLen := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prevCost[j] = inf
	}
	prevCost[0] = 0
	for i := 1; i <= n; i++ {
		for j := 0; j <= m; j++ {
			curCost[j] = inf
			curLen[j] = 0
		}
		lo, hi := 1, m
		if window > 0 {
			lo = i - window
			if lo < 1 {
				lo = 1
			}
			hi = i + window
			if hi > m {
				hi = m
			}
		}
		for j := lo; j <= hi; j++ {
			cost := math.Abs(a[i-1] - b[j-1])
			// Choose the cheapest predecessor: match, insertion, deletion.
			bestCost := prevCost[j-1]
			bestLen := prevLen[j-1]
			if prevCost[j] < bestCost {
				bestCost = prevCost[j]
				bestLen = prevLen[j]
			}
			if curCost[j-1] < bestCost {
				bestCost = curCost[j-1]
				bestLen = curLen[j-1]
			}
			// inf is a sentinel copied verbatim from the initialization,
			// never the result of arithmetic, so the comparison is exact.
			// ew:exact
			if bestCost == inf {
				continue
			}
			curCost[j] = cost + bestCost
			curLen[j] = bestLen + 1
		}
		prevCost, curCost = curCost, prevCost
		prevLen, curLen = curLen, prevLen
	}
	total := prevCost[m]
	if total == inf { // ew:exact (same sentinel as above)
		return 0, fmt.Errorf("dtw: no alignment within window %d for lengths %d, %d", opts.Window, n, m)
	}
	if opts.Normalize {
		return total / float64(prevLen[m]), nil
	}
	return total, nil
}

// Match is the result of matching a query against a template library.
type Match struct {
	// Index is the position of the template in the library.
	Index int
	// Distance is the (normalized) DTW distance.
	Distance float64
}

// NearestN returns the k closest templates to query, ascending by
// distance. k is clamped to the library size. Errors from individual
// comparisons (impossible alignments) exclude that template.
func NearestN(query []float64, library [][]float64, k int, opts Options) ([]Match, error) {
	if len(library) == 0 {
		return nil, fmt.Errorf("dtw: empty template library")
	}
	matches := make([]Match, 0, len(library))
	for i, tpl := range library {
		d, err := Distance(query, tpl, opts)
		if err != nil {
			continue
		}
		// ew:allow hotprop: matches has cap len(library) hoisted above the
		// loop and gains at most one entry per template, so this append
		// never grows the backing array.
		matches = append(matches, Match{Index: i, Distance: d})
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("dtw: no template admitted an alignment")
	}
	// Insertion sort: library sizes are tiny (6 templates).
	for i := 1; i < len(matches); i++ {
		for j := i; j > 0 && matches[j].Distance < matches[j-1].Distance; j-- {
			matches[j], matches[j-1] = matches[j-1], matches[j]
		}
	}
	if k > len(matches) {
		k = len(matches)
	}
	if k < 1 {
		k = 1
	}
	return matches[:k], nil
}
