// Package callgraph builds a conservative, module-wide static call
// graph from go/types information — no SSA, no external dependencies.
// It is the substrate the interprocedural analyzers (hotprop,
// lockorder) walk: every way control can plausibly flow from one
// in-module function into another becomes an edge.
//
// Resolution rules, most precise first:
//
//   - Direct calls to named functions and methods resolve statically.
//   - Interface method calls resolve by method-set matching: an edge is
//     added to M's implementation on every in-module concrete type
//     whose (pointer) method set satisfies the interface. Dispatch to
//     out-of-module concrete types is invisible (soundness caveat).
//   - A function literal is its own node. A literal that is called
//     where it appears gets a plain call edge; a literal that escapes
//     (assigned, passed, returned) gets a *ref* edge from the enclosing
//     function, treating creation as a possible call — conservative
//     for reachability, since the creator cannot be proven not to run
//     it.
//   - A bound-method value (`x.M` without a call) likewise gets a ref
//     edge to M at the site of the value's creation.
//   - `go` statements produce edges tagged KindGo so order-sensitive
//     clients (lockorder) can skip them; `defer` runs on the same
//     goroutine and stays a plain edge.
//
// Reflection and assembly stubs are out of scope: a call that reaches
// a function only via reflect.Value.Call is not an edge.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Unit is one loaded, type-checked package — the minimal slice of the
// loader's output the builder needs. The analysis package adapts its
// *Package to this.
type Unit struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
}

// EdgeKind classifies how control reaches the callee.
type EdgeKind int

const (
	// KindStatic is a direct call to a named function or method.
	KindStatic EdgeKind = iota
	// KindInterface is an interface-dispatch edge resolved by
	// method-set matching against in-module concrete types.
	KindInterface
	// KindRef marks a function value escaping at its creation site (a
	// function literal or bound method not immediately called); the
	// enclosing function is conservatively assumed to run it.
	KindRef
	// KindGo is a call made by a `go` statement: reachable, but on a
	// fresh goroutine.
	KindGo
)

func (k EdgeKind) String() string {
	switch k {
	case KindStatic:
		return "static"
	case KindInterface:
		return "interface"
	case KindRef:
		return "ref"
	case KindGo:
		return "go"
	}
	return fmt.Sprintf("EdgeKind(%d)", int(k))
}

// Node is one function in the graph: either a declared function/method
// (Func non-nil; Decl non-nil when the body is in-module) or a
// function literal (Lit non-nil).
type Node struct {
	Func *types.Func   // nil for literals
	Decl *ast.FuncDecl // body of an in-module named function
	Lit  *ast.FuncLit  // body of a literal
	Unit *Unit         // package the body lives in (nil if out-of-module)
}

// Body returns the statement block the node executes, or nil when the
// function's body is outside the module.
func (n *Node) Body() *ast.BlockStmt {
	switch {
	case n.Lit != nil:
		return n.Lit.Body
	case n.Decl != nil:
		return n.Decl.Body
	}
	return nil
}

// Name renders a short, human-readable identity: "Stream.Feed" for
// methods, "Extract" for functions, "func@file:line" for literals.
func (n *Node) Name() string {
	if n.Lit != nil {
		pos := n.Unit.Fset.Position(n.Lit.Pos())
		return fmt.Sprintf("func@%s:%d", shortFile(pos.Filename), pos.Line)
	}
	f := n.Func
	if sig, ok := f.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + f.Name()
		}
	}
	return f.Name()
}

// FullName qualifies Name with the defining package path for
// cross-package unambiguity in messages and JSON trails.
func (n *Node) FullName() string {
	if n.Lit != nil {
		return n.Name()
	}
	if pkg := n.Func.Pkg(); pkg != nil {
		return pkg.Path() + "." + n.Name()
	}
	return n.Name()
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// Edge is one possible transfer of control.
type Edge struct {
	Caller *Node
	Callee *Node
	// Site is the call expression, go statement argument, or escaping
	// function-value expression that created the edge.
	Site ast.Node
	Kind EdgeKind
}

// Pos returns the edge site's position.
func (e *Edge) Pos() token.Position { return e.Caller.Unit.Fset.Position(e.Site.Pos()) }

// Graph is the whole-module call graph.
type Graph struct {
	// funcs maps a named function's canonical object to its node.
	funcs map[*types.Func]*Node
	// lits maps literal bodies to their nodes.
	lits map[*ast.FuncLit]*Node
	// out lists each node's outgoing edges in source order.
	out map[*Node][]*Edge
}

// NodeFor returns the graph node for a named function, or nil when the
// function was never seen (out-of-module and never called).
func (g *Graph) NodeFor(f *types.Func) *Node {
	if f == nil {
		return nil
	}
	return g.funcs[canonical(f)]
}

// LitNode returns the node for a function literal.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.lits[lit] }

// Out returns n's outgoing edges in source order.
func (g *Graph) Out(n *Node) []*Edge { return g.out[n] }

// Nodes returns every node with an in-module body, sorted by position
// for deterministic iteration.
func (g *Graph) Nodes() []*Node {
	var out []*Node
	for _, n := range g.funcs {
		if n.Body() != nil {
			out = append(out, n)
		}
	}
	for _, n := range g.lits {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		ap, bp := a.Unit.Fset.Position(a.Body().Pos()), b.Unit.Fset.Position(b.Body().Pos())
		if ap.Filename != bp.Filename {
			return ap.Filename < bp.Filename
		}
		return ap.Offset < bp.Offset
	})
	return out
}

// canonical strips generic instantiation so every instantiation of one
// declaration shares a node.
func canonical(f *types.Func) *types.Func { return f.Origin() }

// builder carries construction state.
type builder struct {
	g *Graph
	// concrete lists every in-module non-interface named type, the
	// candidate set for interface dispatch.
	concrete []*types.Named
}

// Build constructs the graph over the given units (normally the whole
// module; fixture tests pass a single package).
func Build(units []*Unit) *Graph {
	b := &builder{g: &Graph{
		funcs: make(map[*types.Func]*Node),
		lits:  make(map[*ast.FuncLit]*Node),
		out:   make(map[*Node][]*Edge),
	}}

	// Pass 1: nodes for every declared function, and the concrete-type
	// universe for interface dispatch.
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := u.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				b.g.funcs[canonical(obj)] = &Node{Func: canonical(obj), Decl: fn, Unit: u}
			}
		}
		for _, obj := range u.Info.Defs {
			tn, ok := obj.(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			b.concrete = append(b.concrete, named)
		}
	}
	// Deterministic dispatch order regardless of map iteration.
	sort.Slice(b.concrete, func(i, j int) bool {
		a, c := b.concrete[i].Obj(), b.concrete[j].Obj()
		if a.Pkg().Path() != c.Pkg().Path() {
			return a.Pkg().Path() < c.Pkg().Path()
		}
		return a.Name() < c.Name()
	})

	// Pass 2: edges out of every body.
	for _, u := range units {
		for _, file := range u.Files {
			for _, decl := range file.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := u.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				b.walkBody(b.g.funcs[canonical(obj)], u, fn.Body)
			}
		}
	}
	return b.g
}

// nodeForCallee interns a node for a named callee that may live
// outside the loaded units (stdlib): such nodes have no body and no
// outgoing edges, but still appear as targets.
func (b *builder) nodeForCallee(f *types.Func) *Node {
	f = canonical(f)
	if n, ok := b.g.funcs[f]; ok {
		return n
	}
	n := &Node{Func: f}
	b.g.funcs[f] = n
	return n
}

// walkBody scans one function body for edges. Function literals are
// registered as their own nodes and their bodies walked under the
// literal node, so lock- and loop-context never leaks across the
// closure boundary in clients.
func (b *builder) walkBody(caller *Node, u *Unit, body *ast.BlockStmt) {
	var walk func(n ast.Node, inGo bool)
	walk = func(n ast.Node, inGo bool) {
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.GoStmt:
				// The spawned call's edges (and any literal defined in the
				// arguments) are tagged KindGo.
				walk(c.Call, true)
				return false
			case *ast.FuncLit:
				lit := b.litNode(c, u)
				b.addEdge(caller, lit, c, refKind(inGo))
				b.walkBody(lit, u, c.Body)
				return false
			case *ast.CallExpr:
				b.call(caller, u, c, inGo)
				// Recurse manually: the call's own Fun selector/literal must
				// not double as an escaping function value, but nested
				// expressions inside it still can.
				switch fun := ast.Unparen(c.Fun).(type) {
				case *ast.FuncLit:
					litNode := b.litNode(fun, u)
					b.addEdge(caller, litNode, c, callKind(inGo))
					b.walkBody(litNode, u, fun.Body)
				case *ast.SelectorExpr:
					walk(fun.X, inGo)
				case *ast.Ident:
					// nothing nested
				default:
					walk(c.Fun, inGo)
				}
				for _, a := range c.Args {
					walk(a, inGo)
				}
				return false
			case *ast.SelectorExpr:
				b.methodValue(caller, u, c, inGo)
				return true
			}
			return true
		})
	}
	walk(body, false)
}

func (b *builder) litNode(lit *ast.FuncLit, u *Unit) *Node {
	if n, ok := b.g.lits[lit]; ok {
		return n
	}
	n := &Node{Lit: lit, Unit: u}
	b.g.lits[lit] = n
	return n
}

func refKind(inGo bool) EdgeKind {
	if inGo {
		return KindGo
	}
	return KindRef
}

func callKind(inGo bool) EdgeKind {
	if inGo {
		return KindGo
	}
	return KindStatic
}

// call resolves one call expression to zero or more edges.
func (b *builder) call(caller *Node, u *Unit, call *ast.CallExpr, inGo bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := u.Info.Uses[fun].(*types.Func); ok {
			b.addEdge(caller, b.nodeForCallee(f), call, callKind(inGo))
		}
		// A call through a plain function-typed variable stays
		// unresolved here; the creation-site ref edge covers the targets.
	case *ast.SelectorExpr:
		sel := u.Info.Selections[fun]
		if sel == nil {
			// Package-qualified call (pkg.Func).
			if f, ok := u.Info.Uses[fun.Sel].(*types.Func); ok {
				b.addEdge(caller, b.nodeForCallee(f), call, callKind(inGo))
			}
			return
		}
		if sel.Kind() != types.MethodVal {
			return // field of function type: covered by the ref edge at creation
		}
		f, ok := sel.Obj().(*types.Func)
		if !ok {
			return
		}
		if types.IsInterface(sel.Recv()) {
			b.dispatch(caller, sel.Recv(), f, call, inGo)
			return
		}
		b.addEdge(caller, b.nodeForCallee(f), call, callKind(inGo))
	}
}

// dispatch adds interface-dispatch edges: the callee set is every
// in-module concrete type implementing the receiver interface, via the
// method matching f's name.
func (b *builder) dispatch(caller *Node, recv types.Type, f *types.Func, site ast.Node, inGo bool) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	kind := KindInterface
	if inGo {
		kind = KindGo
	}
	for _, named := range b.concrete {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, f.Pkg(), f.Name())
		m, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		b.addEdge(caller, b.nodeForCallee(m), site, kind)
	}
}

// methodValue adds a ref edge when a method is mentioned without being
// called (a bound-method value like `s.handleFrame` passed elsewhere).
func (b *builder) methodValue(caller *Node, u *Unit, sel *ast.SelectorExpr, inGo bool) {
	s := u.Info.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return
	}
	// The walk never routes a call's own Fun selector here, so any
	// MethodVal arriving escaped as a value.
	f, ok := s.Obj().(*types.Func)
	if !ok {
		return
	}
	if types.IsInterface(s.Recv()) {
		// A bound interface-method value: conservative dispatch ref.
		b.dispatchRef(caller, s.Recv(), f, sel, inGo)
		return
	}
	b.addEdge(caller, b.nodeForCallee(f), sel, refKind(inGo))
}

func (b *builder) dispatchRef(caller *Node, recv types.Type, f *types.Func, site ast.Node, inGo bool) {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return
	}
	kind := KindRef
	if inGo {
		kind = KindGo
	}
	for _, named := range b.concrete {
		var impl types.Type = named
		if !types.Implements(impl, iface) {
			impl = types.NewPointer(named)
			if !types.Implements(impl, iface) {
				continue
			}
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, f.Pkg(), f.Name())
		if m, ok := obj.(*types.Func); ok {
			b.addEdge(caller, b.nodeForCallee(m), site, kind)
		}
	}
}

func (b *builder) addEdge(caller, callee *Node, site ast.Node, kind EdgeKind) {
	b.g.out[caller] = append(b.g.out[caller], &Edge{Caller: caller, Callee: callee, Site: site, Kind: kind})
}
