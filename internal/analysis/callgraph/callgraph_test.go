package callgraph_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

var (
	edgeRe   = regexp.MustCompile(`(^|\s)edge "([^"]*)"`)
	noedgeRe = regexp.MustCompile(`noedge "([^"]*)"`)
)

// nodeName renders a node for expectation matching: literals collapse
// to "lit" so fixture comments stay line-number independent.
func nodeName(n *callgraph.Node) string {
	if n.Lit != nil {
		return "lit"
	}
	return n.Name()
}

// TestFixtureEdges builds the graph over the fixture package and
// checks the edge/noedge expectations in both directions: every `edge`
// comment must name an existing edge (weakened resolution fails), and
// every `noedge` pair must stay absent (over-approximation beyond the
// documented conservatism fails).
func TestFixtureEdges(t *testing.T) {
	modRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "callgraph")
	pkg, err := analysis.LoadDir(modRoot, dir)
	if err != nil {
		t.Fatal(err)
	}
	g := callgraph.Build([]*callgraph.Unit{pkg.Unit()})

	got := make(map[string]bool)  // "caller -> callee kind"
	pairs := make(map[string]bool) // "caller -> callee", any kind
	for _, n := range g.Nodes() {
		for _, e := range g.Out(n) {
			pair := fmt.Sprintf("%s -> %s", nodeName(e.Caller), nodeName(e.Callee))
			got[pair+" "+e.Kind.String()] = true
			pairs[pair] = true
		}
	}

	var edges, noedges []string
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range edgeRe.FindAllStringSubmatch(c.Text, -1) {
					edges = append(edges, m[2])
				}
				for _, m := range noedgeRe.FindAllStringSubmatch(c.Text, -1) {
					noedges = append(noedges, m[1])
				}
			}
		}
	}
	if len(edges) == 0 || len(noedges) == 0 {
		t.Fatalf("fixture must carry both edge and noedge expectations (got %d/%d)", len(edges), len(noedges))
	}
	for _, want := range edges {
		if !got[want] {
			t.Errorf("expected edge missing from graph: %q", want)
		}
	}
	for _, absent := range noedges {
		if pairs[absent] {
			t.Errorf("edge %q exists but fixture asserts it must not", absent)
		}
	}
}

// TestGoEdgesSkippable asserts the kind tag that lets lockorder ignore
// cross-goroutine edges survives graph construction.
func TestGoEdgesSkippable(t *testing.T) {
	modRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", "callgraph")
	pkg, err := analysis.LoadDir(modRoot, dir)
	if err != nil {
		t.Fatal(err)
	}
	g := callgraph.Build([]*callgraph.Unit{pkg.Unit()})
	for _, n := range g.Nodes() {
		if n.Decl == nil || n.Decl.Name.Name != "Spawn" {
			continue
		}
		for _, e := range g.Out(n) {
			if e.Kind != callgraph.KindGo {
				t.Errorf("edge out of Spawn has kind %s, want go", e.Kind)
			}
		}
		return
	}
	t.Fatal("Spawn not found in graph")
}
