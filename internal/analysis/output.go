package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonFinding is the machine-readable shape of one finding, the
// contract behind `ewvet -json`.
type jsonFinding struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Trail    []string `json:"trail,omitempty"`
}

// jsonReport is the top-level `ewvet -json` document.
type jsonReport struct {
	Packages  int           `json:"packages"`
	Analyzers int           `json:"analyzers"`
	Findings  []jsonFinding `json:"findings"`
}

// WriteJSON renders findings as indented JSON, stable across runs for
// a given input (findings arrive sorted from Run).
func WriteJSON(w io.Writer, findings []Finding, packages, analyzers int) error {
	report := jsonReport{Packages: packages, Analyzers: analyzers, Findings: []jsonFinding{}}
	for _, f := range findings {
		report.Findings = append(report.Findings, jsonFinding{
			File:     f.Pos.Filename,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Analyzer: f.Analyzer,
			Message:  f.Message,
			Trail:    f.Trail,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}

// WriteTimings renders the `-timing` table: one line per analyzer in
// registry order, with the matched-package count and wall time.
func WriteTimings(w io.Writer, timings []Timing) {
	for _, t := range timings {
		fmt.Fprintf(w, "%-14s %3d pkg  %12s\n", t.Analyzer, t.Packages, t.Duration)
	}
}
