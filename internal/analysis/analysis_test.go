package analysis_test

import (
	"fmt"
	"path/filepath"
	"regexp"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts golden expectations from fixture comments:
// `// want "substring"` (several per comment allowed). A finding on
// the comment's line must contain the substring; every want must be
// matched, so weakening an analyzer fails its fixture test.
var wantRe = regexp.MustCompile(`want "([^"]*)"`)

type want struct {
	file string
	line int
	sub  string
}

func (w want) String() string { return fmt.Sprintf("%s:%d: %q", w.file, w.line, w.sub) }

// collectWants scans a fixture package's comments for expectations.
func collectWants(pkg *analysis.Package) []want {
	var out []want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					out = append(out, want{file: pos.Filename, line: pos.Line, sub: m[1]})
				}
			}
		}
	}
	return out
}

// TestAnalyzerFixtures runs each analyzer over its fixture package and
// compares findings against the `want` expectations in both
// directions: an unexpected finding is a false positive, an unmatched
// want means the analyzer has been weakened.
func TestAnalyzerFixtures(t *testing.T) {
	modRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range analysis.Registry() {
		t.Run(a.Name(), func(t *testing.T) {
			dir := filepath.Join(modRoot, "internal", "analysis", "testdata", "src", a.Name())
			pkg, err := analysis.LoadDir(modRoot, dir)
			if err != nil {
				t.Fatalf("loading fixture: %v", err)
			}
			if !a.Match(pkg.Path) {
				t.Fatalf("analyzer %s does not Match its own fixture path %q", a.Name(), pkg.Path)
			}
			findings := analysis.Run([]*analysis.Package{pkg}, []analysis.Analyzer{a})
			wants := collectWants(pkg)
			if len(wants) == 0 {
				t.Fatal("fixture has no want expectations")
			}

			matched := make([]bool, len(wants))
			for _, f := range findings {
				ok := false
				for i, w := range wants {
					if w.file == f.Pos.Filename && w.line == f.Pos.Line && contains(f.Message, w.sub) {
						matched[i] = true
						ok = true
					}
				}
				if !ok {
					t.Errorf("unexpected finding: %s", f)
				}
			}
			for i, w := range wants {
				if !matched[i] {
					t.Errorf("expected finding not reported (analyzer weakened?): %s", w)
				}
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestModuleClean loads the whole module and asserts the suite reports
// nothing: the tree must stay annotation-clean, exactly as `make lint`
// requires. It also asserts, via the timing report, that every
// registered analyzer actually ran against at least one module package
// — a Match predicate that silently stopped matching would otherwise
// turn this test into a no-op for that analyzer.
func TestModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	modRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadModule(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	findings, timings := analysis.RunTimed(pkgs, analysis.Registry())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	ran := make(map[string]int)
	for _, tm := range timings {
		ran[tm.Analyzer] = tm.Packages
	}
	for _, a := range analysis.Registry() {
		if n, ok := ran[a.Name()]; !ok {
			t.Errorf("analyzer %s produced no timing entry: it never ran", a.Name())
		} else if n == 0 {
			t.Errorf("analyzer %s matched zero module packages: this test no longer covers it", a.Name())
		}
	}
}
