package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Floateq flags `==` and `!=` between floating-point operands in the
// DSP core packages. The pipeline mixes computed Hz values, bin
// indices converted through float math, and normalized magnitudes;
// exact comparison on any of those silently stops matching after an
// innocuous-looking refactor (the classic Hz-vs-bin unit slip).
//
// Deliberately exact comparisons — against a literal zero that was
// assigned verbatim, or a sentinel like math.MaxFloat64 that is copied
// but never computed — carry `// ew:exact` on the comparison line.
type Floateq struct{}

func (Floateq) Name() string { return "floateq" }
func (Floateq) Doc() string {
	return "float ==/!= in DSP code; use a tolerance or annotate ew:exact"
}

func (Floateq) Match(path string) bool {
	return pathContains(path, "internal/dsp") ||
		pathContains(path, "internal/segment") ||
		pathContains(path, "internal/mvce") ||
		pathContains(path, "internal/dtw") ||
		isFixturePath(path, "floateq")
}

func (f Floateq) Run(pkg *Package) []Finding {
	var out []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.EQL && bin.Op != token.NEQ) {
				return true
			}
			x, y := pkg.Info.Types[bin.X], pkg.Info.Types[bin.Y]
			if !isFloat(x.Type) && !isFloat(y.Type) {
				return true
			}
			if x.Value != nil && y.Value != nil {
				return true // constant-folded at compile time
			}
			if pkg.Notes.Exact(bin.Pos()) {
				return true
			}
			out = append(out, Finding{
				Analyzer: f.Name(),
				Pos:      pkg.Fset.Position(bin.OpPos),
				Message:  "floating-point " + bin.Op.String() + " comparison; use a tolerance or annotate // ew:exact",
			})
			return true
		})
	}
	return out
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}
