package analysis

import (
	"go/token"
)

// Callgraph forces construction of the module-wide call graph and
// validates the annotations that parameterize it: an `ew:coldcall`
// directive must sit on (or directly above) a line that actually
// carries an outgoing call edge, otherwise the opt-out is stale — the
// call it used to cool was moved or deleted, and heat may now be
// propagating where the author believed it was cut.
//
// Running it first in the registry also means a later analyzer crash
// in graph construction surfaces under this analyzer's name, where it
// belongs.
type Callgraph struct{}

func (Callgraph) Name() string { return "callgraph" }
func (Callgraph) Doc() string {
	return "module call-graph construction; flags stale ew:coldcall annotations off any call edge"
}

// Match accepts every package: the graph is module-wide by definition.
func (Callgraph) Match(path string) bool { return true }

func (c Callgraph) RunModule(mod *Module) []Finding {
	g := mod.Graph()

	// Every line with an outgoing edge, per file: a coldcall directive
	// is live if an edge site sits on its line or the line below (the
	// directive may be written above the call).
	edgeLines := make(map[string]map[int]bool)
	for _, n := range g.Nodes() {
		for _, e := range g.Out(n) {
			pos := e.Pos()
			if edgeLines[pos.Filename] == nil {
				edgeLines[pos.Filename] = make(map[int]bool)
			}
			edgeLines[pos.Filename][pos.Line] = true
		}
	}

	var out []Finding
	for _, pkg := range mod.Pkgs {
		for file, lines := range pkg.Notes.ColdcallLines() {
			for line := range lines {
				if edgeLines[file][line] || edgeLines[file][line+1] {
					continue
				}
				out = append(out, Finding{
					Analyzer: c.Name(),
					Pos:      token.Position{Filename: file, Line: line, Column: 1},
					Message:  "stale ew:coldcall: no call edge on this line or the next",
				})
			}
		}
	}
	return out
}
