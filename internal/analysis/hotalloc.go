package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotalloc audits functions annotated `// ew:hotpath`: inside their
// loops it flags make calls, append growth, closure creation, and
// implicit interface conversions (boxing) in call arguments — the
// allocation classes that turn a per-column DSP loop into GC pressure
// under serving load.
//
// Error-handling branches (`if err != nil { ... }`) are treated as
// cold and skipped: allocating while constructing an error is fine.
// Deliberate per-iteration allocations carry `// ew:allow hotalloc`.
type Hotalloc struct{}

func (Hotalloc) Name() string { return "hotalloc" }
func (Hotalloc) Doc() string {
	return "allocation (make/append/closure/boxing) inside a loop of an ew:hotpath function"
}

// Match accepts every package: the analyzer only audits functions that
// opt in via the annotation.
func (Hotalloc) Match(path string) bool { return true }

func (h Hotalloc) Run(pkg *Package) []Finding {
	var out []Finding
	report := func(n ast.Node, msg string) {
		if pkg.Notes.Allowed(n.Pos(), h.Name()) {
			return
		}
		out = append(out, Finding{Analyzer: h.Name(), Pos: pkg.Fset.Position(n.Pos()), Message: msg})
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !IsHotpath(fn) {
				continue
			}
			h.walk(pkg, fn.Body, false, report)
		}
	}
	return out
}

// walk recurses through a hotpath body tracking whether the current
// node sits inside a loop.
func (h Hotalloc) walk(pkg *Package, n ast.Node, inLoop bool, report func(ast.Node, string)) {
	if n == nil {
		return
	}
	switch n := n.(type) {
	case *ast.ForStmt:
		h.walk(pkg, n.Init, inLoop, report)
		h.walk(pkg, n.Cond, inLoop, report)
		h.walk(pkg, n.Post, true, report)
		h.walk(pkg, n.Body, true, report)
		return
	case *ast.RangeStmt:
		h.walk(pkg, n.X, inLoop, report)
		h.walk(pkg, n.Body, true, report)
		return
	case *ast.IfStmt:
		if isErrCheck(pkg, n.Cond) || isErrReturn(pkg, n.Body) {
			// Cold error path: allocations building the error are fine,
			// but the fallthrough after the if is still hot. The condition
			// itself still runs per iteration, so it stays audited.
			h.walk(pkg, n.Cond, inLoop, report)
			h.walk(pkg, n.Else, inLoop, report)
			return
		}
	case *ast.FuncLit:
		if inLoop {
			report(n, "closure allocated inside hot loop; hoist it out of the loop")
		}
		// A closure body runs on its own schedule; audit it as non-loop
		// code unless it contains loops of its own.
		h.walk(pkg, n.Body, false, report)
		return
	case *ast.CallExpr:
		if inLoop {
			h.checkCall(pkg, n, report)
		}
	}
	// Generic recursion over children, preserving loop context.
	children(n, func(c ast.Node) { h.walk(pkg, c, inLoop, report) })
}

func (h Hotalloc) checkCall(pkg *Package, call *ast.CallExpr, report func(ast.Node, string)) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				report(call, "make allocates inside hot loop; preallocate outside")
				return
			case "append":
				report(call, "append may grow its backing array inside hot loop; preallocate with known capacity")
				return
			}
			return
		}
	}
	// Boxing: a concrete argument passed to an interface parameter
	// allocates on every iteration.
	tv, ok := pkg.Info.Types[call.Fun]
	if !ok {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		if sig.Variadic() && i >= params.Len()-1 {
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		} else if i < params.Len() {
			pt = params.At(i).Type()
		} else {
			break
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pkg.Info.Types[arg]
		if at.Type == nil || types.IsInterface(at.Type) || at.IsNil() {
			continue
		}
		report(arg, "argument boxed into interface parameter inside hot loop")
	}
}

// isErrCheck matches `err != nil` / `err == nil` style conditions.
func isErrCheck(pkg *Package, cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return false
	}
	isErr := func(e ast.Expr) bool {
		t := pkg.Info.Types[e].Type
		return t != nil && isErrorType(t)
	}
	return isErr(bin.X) || isErr(bin.Y)
}

// isErrReturn matches branch bodies that are exactly one return
// statement handing back a freshly constructed error (a fmt.Errorf /
// errors.New call among the results) — validation-failure paths like
// `if len(row) != cols { return 0, 0, fmt.Errorf(...) }`. Such a
// branch is cold for the same reason an `if err != nil` body is: it
// runs at most once per call, after which the function is done.
func isErrReturn(pkg *Package, body *ast.BlockStmt) bool {
	if body == nil || len(body.List) != 1 {
		return false
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		call, ok := ast.Unparen(res).(*ast.CallExpr)
		if !ok {
			continue
		}
		if t := pkg.Info.Types[call].Type; t != nil && isErrorType(t) {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the universe error type.
func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// children invokes f on each direct child node of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			f(c)
		}
		return false
	})
}
