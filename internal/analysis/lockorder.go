package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/callgraph"
)

// Lockorder lifts lockhold's per-function must-hold state into a
// global lock-acquisition-order graph and reports every cycle as a
// deadlock risk, with both (or all) acquisition paths spelled out.
//
// Nodes are mutexes keyed by declaration identity: the struct-field
// object for `m.mu` (so Manager.mu is one node no matter how many
// receivers or packages touch it), the variable object for package
// and local mutexes. An edge A → B is added whenever B is acquired at
// a point where A is provably held — directly inside one function, or
// across call edges: if f holds A when it calls g, every lock g (or
// anything g transitively calls on the same goroutine) acquires gets
// an edge from A, with the call chain recorded as the witness.
//
// `go` statements do not propagate held state: the spawned goroutine
// does not run while the caller's critical section blocks on it, so a
// cross-goroutine edge would manufacture false cycles. Two instances
// of the same field (sess1.mu, sess2.mu) collapse to one node, so
// hand-over-hand locking over siblings is invisible — a documented
// soundness trade against flooding every per-item lock with
// self-cycles.
//
// `// ew:allow lockorder` on an acquisition or call site drops the
// edges that site generates, with a justifying comment.
type Lockorder struct{}

func (Lockorder) Name() string { return "lockorder" }
func (Lockorder) Doc() string {
	return "global lock-acquisition-order cycles (deadlock risk) across serve/runtime/ws mutexes"
}

// Match accepts every package: lock identity is global, and a cycle
// may close through a package the serve tree merely calls into.
func (Lockorder) Match(path string) bool { return true }

// lockNode is one mutex in the order graph.
type lockNode struct {
	key  any    // types.Object when resolved, fallback string otherwise
	name string // display name: "serve.Manager.mu"
}

// orderEdge records A → B with its first witness.
type orderEdge struct {
	from, to *lockNode
	pos      token.Position
	desc     string
}

// acqSite is one direct lock acquisition inside a function body.
type acqSite struct {
	node *lockNode
	op   string // Lock or RLock
	pos  token.Position
}

// acqWitness traces how a lock is (transitively) acquired from some
// function: the call chain walked and the final acquisition site.
type acqWitness struct {
	node  *lockNode
	op    string
	chain []string // callee names walked, outermost first; empty = direct
	pos   token.Position
}

type lockorderState struct {
	mod   *Module
	graph *callgraph.Graph
	nodes map[any]*lockNode
	edges map[[2]any]*orderEdge

	// per call-graph node facts
	direct  map[*callgraph.Node][]acqSite
	heldAt  map[*callgraph.Node]map[ast.Node][]string // site → held keys
	idents  map[*callgraph.Node]map[string]*lockNode  // held-key → lock identity
	reaches map[*callgraph.Node]map[any]*acqWitness   // transitive acquisitions
}

func (l Lockorder) RunModule(mod *Module) []Finding {
	st := &lockorderState{
		mod:     mod,
		graph:   mod.Graph(),
		nodes:   make(map[any]*lockNode),
		edges:   make(map[[2]any]*orderEdge),
		direct:  make(map[*callgraph.Node][]acqSite),
		heldAt:  make(map[*callgraph.Node]map[ast.Node][]string),
		idents:  make(map[*callgraph.Node]map[string]*lockNode),
		reaches: make(map[*callgraph.Node]map[any]*acqWitness),
	}

	fnNodes := st.graph.Nodes()
	// Pass 1: per-function walks — direct acquisitions, held-at-site
	// tables, and direct (intra-function) order edges.
	for _, fn := range fnNodes {
		st.scanFunc(fn)
	}
	// Pass 2: transitive acquisition sets, to a fixpoint over the call
	// graph (which may itself be cyclic through recursion).
	st.propagate(fnNodes)
	// Pass 3: cross-call edges — a call made while holding A reaches
	// everything the callee transitively acquires.
	for _, fn := range fnNodes {
		st.crossEdges(fn)
	}
	return st.findCycles()
}

// internLock returns the canonical node for a lock identity.
func (st *lockorderState) internLock(key any, name string) *lockNode {
	if n, ok := st.nodes[key]; ok {
		return n
	}
	n := &lockNode{key: key, name: name}
	st.nodes[key] = n
	return n
}

// scanFunc walks one function body with must-hold state, recording
// acquisitions, per-site held sets, and direct order edges.
func (st *lockorderState) scanFunc(fn *callgraph.Node) {
	pkg := st.mod.PackageFor(fn)
	if pkg == nil {
		return
	}
	body := fn.Body()
	idents := make(map[string]*lockNode)
	st.idents[fn] = idents
	held := make(map[ast.Node][]string)
	st.heldAt[fn] = held

	var seed []string
	if fn.Decl != nil {
		seed = HeldOnEntry(fn.Decl)
		for _, key := range seed {
			if ln := resolveHeldKey(st, pkg, fn.Decl, key); ln != nil {
				idents[key] = ln
			}
		}
	}

	walkHeldBody(pkg, body, seed, false, func(n ast.Node, heldSet heldSet) {
		heldKeys := heldSet.keys()
		// Walk the statement, stopping at function literals (they are
		// their own call-graph nodes) but recording the held set at every
		// potential edge site inside.
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.FuncLit:
				held[c] = heldKeys
				return false
			case *ast.SelectorExpr:
				held[c] = heldKeys
				return true
			case *ast.CallExpr:
				held[c] = heldKeys
				if key, op, ok := lockCallInfo(pkg, c); ok && (op == "Lock" || op == "RLock") {
					st.acquire(fn, pkg, c, key, op, heldKeys, idents)
				}
				return true
			}
			return true
		})
	})
}

// acquire handles one direct Lock/RLock: resolve the lock's identity,
// record the acquisition, and add order edges from everything held.
func (st *lockorderState) acquire(fn *callgraph.Node, pkg *Package, call *ast.CallExpr, key, op string, heldKeys []string, idents map[string]*lockNode) {
	sel := call.Fun.(*ast.SelectorExpr) // shape checked by lockCallInfo
	ln := st.resolveLockExpr(pkg, sel.X)
	if ln == nil {
		// Unresolvable expression (map index, call result): fall back to
		// a package+key identity so at least same-package repeats unify.
		ln = st.internLock("str:"+pkg.Path+"."+key, pkg.Types.Name()+"."+key)
	}
	idents[key] = ln
	pos := posOf(pkg, call.Pos())
	st.direct[fn] = append(st.direct[fn], acqSite{node: ln, op: op, pos: pos})
	if pkg.Notes.Allowed(call.Pos(), "lockorder") {
		return
	}
	for _, hk := range heldKeys {
		from := idents[hk]
		if from == nil || from == ln {
			continue
		}
		st.addEdge(from, ln, pos, fmt.Sprintf("%s %sed at %s:%d while holding %s (in %s)",
			ln.name, op, shortPath(pos.Filename), pos.Line, from.name, fn.Name()))
	}
}

// crossEdges adds A → B edges for every call made while holding A to a
// callee transitively acquiring B. `go` edges are skipped: a spawned
// goroutine's acquisitions are not ordered under the caller's locks.
func (st *lockorderState) crossEdges(fn *callgraph.Node) {
	pkg := st.mod.PackageFor(fn)
	if pkg == nil {
		return
	}
	held := st.heldAt[fn]
	idents := st.idents[fn]
	for _, e := range st.graph.Out(fn) {
		if e.Kind == callgraph.KindGo {
			continue
		}
		heldKeys := held[e.Site]
		if len(heldKeys) == 0 {
			continue
		}
		if pkg.Notes.Allowed(e.Site.Pos(), "lockorder") {
			continue
		}
		callPos := posOf(pkg, e.Site.Pos())
		for _, w := range sortedWitnesses(st.reaches[e.Callee]) {
			for _, hk := range heldKeys {
				from := idents[hk]
				if from == nil || from.key == w.node.key {
					continue
				}
				chain := fn.Name() + " → " + e.Callee.Name()
				for _, c := range w.chain {
					chain += " → " + c
				}
				st.addEdge(from, w.node, callPos, fmt.Sprintf(
					"%s %sed at %s:%d via %s (call at %s:%d holds %s)",
					w.node.name, w.op, shortPath(w.pos.Filename), w.pos.Line,
					chain, shortPath(callPos.Filename), callPos.Line, from.name))
			}
		}
	}
}

// propagate computes each function's transitive acquisition set to a
// fixpoint, witnesses kept from the first (source-ordered) discovery.
func (st *lockorderState) propagate(fnNodes []*callgraph.Node) {
	for _, fn := range fnNodes {
		set := make(map[any]*acqWitness)
		for _, a := range st.direct[fn] {
			if _, ok := set[a.node.key]; !ok {
				set[a.node.key] = &acqWitness{node: a.node, op: a.op, pos: a.pos}
			}
		}
		st.reaches[fn] = set
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fnNodes {
			set := st.reaches[fn]
			for _, e := range st.graph.Out(fn) {
				if e.Kind == callgraph.KindGo {
					continue
				}
				for _, w := range sortedWitnesses(st.reaches[e.Callee]) {
					if _, ok := set[w.node.key]; ok {
						continue
					}
					chain := append([]string{e.Callee.Name()}, w.chain...)
					set[w.node.key] = &acqWitness{node: w.node, op: w.op, chain: chain, pos: w.pos}
					changed = true
				}
			}
		}
	}
}

// sortedWitnesses orders a witness set by lock name for deterministic
// edge creation.
func sortedWitnesses(set map[any]*acqWitness) []*acqWitness {
	out := make([]*acqWitness, 0, len(set))
	for _, w := range set {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].node.name < out[j].node.name })
	return out
}

func (st *lockorderState) addEdge(from, to *lockNode, pos token.Position, desc string) {
	k := [2]any{from.key, to.key}
	if _, ok := st.edges[k]; ok {
		return
	}
	st.edges[k] = &orderEdge{from: from, to: to, pos: pos, desc: desc}
}

// findCycles runs cycle detection over the order graph and renders one
// finding per strongly connected component, the shortest cycle through
// its first node spelled out edge by edge.
func (st *lockorderState) findCycles() []Finding {
	// Adjacency, deterministically ordered.
	adj := make(map[*lockNode][]*orderEdge)
	var nodes []*lockNode
	seen := make(map[*lockNode]bool)
	edges := make([]*orderEdge, 0, len(st.edges))
	for _, e := range st.edges {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from.name != edges[j].from.name {
			return edges[i].from.name < edges[j].from.name
		}
		return edges[i].to.name < edges[j].to.name
	})
	for _, e := range edges {
		adj[e.from] = append(adj[e.from], e)
		for _, n := range []*lockNode{e.from, e.to} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].name < nodes[j].name })

	sccs := stronglyConnected(nodes, adj)
	var out []Finding
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		inSCC := make(map[*lockNode]bool, len(scc))
		for _, n := range scc {
			inSCC[n] = true
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i].name < scc[j].name })
		cycle := shortestCycle(scc[0], inSCC, adj)
		if cycle == nil {
			continue
		}
		names := make([]string, 0, len(cycle)+1)
		trail := make([]string, 0, len(cycle))
		for _, e := range cycle {
			names = append(names, e.from.name)
			trail = append(trail, e.desc)
		}
		names = append(names, cycle[0].from.name)
		out = append(out, Finding{
			Analyzer: "lockorder",
			Pos:      cycle[0].pos,
			Message: fmt.Sprintf("lock-order cycle (deadlock risk): %s — %s",
				joinArrow(names), joinSemicolon(trail)),
			Trail: trail,
		})
	}
	return out
}

// shortestCycle BFS-walks within one SCC from start back to start.
func shortestCycle(start *lockNode, inSCC map[*lockNode]bool, adj map[*lockNode][]*orderEdge) []*orderEdge {
	type step struct {
		node *lockNode
		path []*orderEdge
	}
	visited := map[*lockNode]bool{}
	queue := []step{{node: start}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range adj[cur.node] {
			if !inSCC[e.to] {
				continue
			}
			path := append(append([]*orderEdge{}, cur.path...), e)
			if e.to == start {
				return path
			}
			if visited[e.to] {
				continue
			}
			visited[e.to] = true
			queue = append(queue, step{node: e.to, path: path})
		}
	}
	return nil
}

// stronglyConnected is an iterative Tarjan over the lock graph.
func stronglyConnected(nodes []*lockNode, adj map[*lockNode][]*orderEdge) [][]*lockNode {
	index := make(map[*lockNode]int)
	low := make(map[*lockNode]int)
	onStack := make(map[*lockNode]bool)
	var stack []*lockNode
	var sccs [][]*lockNode
	next := 0

	type frame struct {
		node *lockNode
		edge int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{node: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(adj[f.node]) {
				to := adj[f.node][f.edge].to
				f.edge++
				if _, ok := index[to]; !ok {
					index[to], low[to] = next, next
					next++
					stack = append(stack, to)
					onStack[to] = true
					frames = append(frames, frame{node: to})
				} else if onStack[to] && index[to] < low[f.node] {
					low[f.node] = index[to]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[f.node] < low[parent] {
					low[parent] = low[f.node]
				}
			}
			if low[f.node] == index[f.node] {
				var scc []*lockNode
				for {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[n] = false
					scc = append(scc, n)
					if n == f.node {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

// resolveLockExpr maps a lock expression to its canonical identity:
// struct-field selectors key on the field object, plain identifiers on
// the variable object.
func (st *lockorderState) resolveLockExpr(pkg *Package, e ast.Expr) *lockNode {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel := pkg.Info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			field, ok := sel.Obj().(*types.Var)
			if !ok {
				return nil
			}
			return st.internLock(field, fieldDisplay(sel.Recv(), field))
		}
		// Package-qualified variable (pkg.Mu).
		if obj, ok := pkg.Info.Uses[e.Sel].(*types.Var); ok {
			return st.internLock(obj, varDisplay(obj))
		}
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return st.internLock(v, varDisplay(v))
		}
	case *ast.StarExpr:
		return st.resolveLockExpr(pkg, e.X)
	}
	return nil
}

// resolveHeldKey resolves an ew:holds key ("sess.mu") against a
// function's receiver and parameters to the same identity a direct
// acquisition of that lock would produce.
func resolveHeldKey(st *lockorderState, pkg *Package, decl *ast.FuncDecl, key string) *lockNode {
	parts := splitDots(key)
	if len(parts) == 0 {
		return nil
	}
	root := lookupParam(pkg, decl, parts[0])
	if root == nil {
		// A bare package-level mutex name.
		if len(parts) == 1 {
			if v, ok := pkg.Types.Scope().Lookup(parts[0]).(*types.Var); ok {
				return st.internLock(v, varDisplay(v))
			}
		}
		return nil
	}
	t := root.Type()
	var field *types.Var
	for _, name := range parts[1:] {
		obj, _, _ := types.LookupFieldOrMethod(t, true, pkg.Types, name)
		v, ok := obj.(*types.Var)
		if !ok {
			return nil
		}
		field = v
		t = v.Type()
	}
	if field == nil {
		return st.internLock(root, varDisplay(root))
	}
	return st.internLock(field, fieldDisplay(root.Type(), field))
}

// lookupParam finds a receiver or parameter variable by name.
func lookupParam(pkg *Package, decl *ast.FuncDecl, name string) *types.Var {
	var fields []*ast.Field
	if decl.Recv != nil {
		fields = append(fields, decl.Recv.List...)
	}
	if decl.Type.Params != nil {
		fields = append(fields, decl.Type.Params.List...)
	}
	for _, f := range fields {
		for _, id := range f.Names {
			if id.Name != name {
				continue
			}
			if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
				return v
			}
		}
	}
	return nil
}

// fieldDisplay renders "pkg.Type.field" for a struct-field lock.
func fieldDisplay(recv types.Type, field *types.Var) string {
	t := recv
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		pkgName := ""
		if named.Obj().Pkg() != nil {
			pkgName = named.Obj().Pkg().Name() + "."
		}
		return pkgName + named.Obj().Name() + "." + field.Name()
	}
	if field.Pkg() != nil {
		return field.Pkg().Name() + "." + field.Name()
	}
	return field.Name()
}

// varDisplay renders "pkg.name" for a package or local mutex variable.
func varDisplay(v *types.Var) string {
	if v.Pkg() != nil {
		return v.Pkg().Name() + "." + v.Name()
	}
	return v.Name()
}

func splitDots(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '.' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

func joinArrow(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += " → "
		}
		s += p
	}
	return s
}

func joinSemicolon(parts []string) string {
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += "; "
		}
		s += p
	}
	return s
}

// shortPath trims an absolute filename to its last two path elements
// for readable witnesses ("serve/manager.go").
func shortPath(path string) string {
	slashes := 0
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			slashes++
			if slashes == 2 {
				return path[i+1:]
			}
		}
	}
	return path
}
