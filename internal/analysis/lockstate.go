package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// heldSet is the set of mutexes proven held at a program point, keyed
// by the flattened lock expression ("m.mu", "sess.mu").
type heldSet map[string]bool

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k := range h {
		c[k] = true
	}
	return c
}

// keys returns the held locks sorted, for deterministic messages.
func (h heldSet) keys() []string {
	out := make([]string, 0, len(h))
	for k := range h {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (h heldSet) String() string { return strings.Join(h.keys(), ", ") }

// setTo replaces h's contents with src.
func (h heldSet) setTo(src heldSet) {
	for k := range h {
		delete(h, k)
	}
	for k := range src {
		h[k] = true
	}
}

// intersectSets is the must-hold join: a lock counts as held after a
// branch point only if every arriving path holds it.
func intersectSets(sets []heldSet) heldSet {
	if len(sets) == 0 {
		return heldSet{}
	}
	out := sets[0].clone()
	for _, s := range sets[1:] {
		for k := range out {
			if !s[k] {
				delete(out, k)
			}
		}
	}
	return out
}

// breakCtx collects the held sets at break statements targeting one
// enclosing loop/switch/select, so the post-statement state can join
// them (the "break while holding the lock" admission pattern).
type breakCtx struct {
	isLoop bool
	snaps  []heldSet
}

// lockWalker runs a must-hold lock analysis over one function body.
// visit receives, with the locks held on entry to each:
//   - every atomic statement (assignments, sends, calls, returns, …)
//   - every structural statement's header expression (if/for/switch
//     conditions, range operands)
//   - each SelectStmt node itself (bodies are then walked per clause)
//
// Function literals encountered anywhere are walked afterwards with an
// empty held set: closures run on their own goroutine or at an unknown
// later time, so the creating function's locks are not assumed.
type lockWalker struct {
	pkg      *Package
	visit    func(n ast.Node, held heldSet)
	funcLits []*ast.FuncLit
}

// WalkHeld applies the must-hold analysis to fn, seeding the held set
// from any `ew:holds` directives on its doc comment. Function literals
// inside the body are walked afterwards with an empty held set.
func WalkHeld(pkg *Package, fn *ast.FuncDecl, visit func(n ast.Node, held heldSet)) {
	if fn.Body == nil {
		return
	}
	walkHeldBody(pkg, fn.Body, HeldOnEntry(fn), true, visit)
}

// walkHeldBody is WalkHeld over an arbitrary body with an explicit
// held-on-entry seed. When walkLits is false, function literals are
// not walked at all — interprocedural clients (lockorder) visit each
// literal as its own call-graph node instead, so a literal's
// acquisitions attach to the literal, never to its creator.
func walkHeldBody(pkg *Package, body *ast.BlockStmt, seed []string, walkLits bool, visit func(n ast.Node, held heldSet)) {
	w := &lockWalker{pkg: pkg, visit: visit}
	held := heldSet{}
	for _, key := range seed {
		held[key] = true
	}
	w.block(body.List, held, nil)
	if !walkLits {
		return
	}
	for len(w.funcLits) > 0 {
		lit := w.funcLits[0]
		w.funcLits = w.funcLits[1:]
		w.block(lit.Body.List, heldSet{}, nil)
	}
}

// block walks stmts sequentially, mutating held in place. It reports
// whether the block terminates (return/break/continue on every path).
func (w *lockWalker) block(stmts []ast.Stmt, held heldSet, ctxs []*breakCtx) bool {
	for _, s := range stmts {
		if w.stmt(s, held, ctxs) {
			return true
		}
	}
	return false
}

// atomic reports a leaf statement to the analyzer and queues any
// function literals it contains for a separate walk.
func (w *lockWalker) atomic(n ast.Node, held heldSet) {
	if n == nil {
		return
	}
	w.visit(n, held)
	w.queueFuncLits(n)
}

func (w *lockWalker) queueFuncLits(n ast.Node) {
	ast.Inspect(n, func(c ast.Node) bool {
		if lit, ok := c.(*ast.FuncLit); ok {
			w.funcLits = append(w.funcLits, lit)
			return false // nested literals queue when their parent is walked
		}
		return true
	})
}

func (w *lockWalker) header(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	w.visit(e, held)
	w.queueFuncLits(e)
}

// stmt processes one statement, returning whether control cannot fall
// through to the next statement in the block.
func (w *lockWalker) stmt(s ast.Stmt, held heldSet, ctxs []*breakCtx) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		w.atomic(s, held)
		w.applyLockEffect(s.X, held)
		return false

	case *ast.DeferStmt:
		// `defer mu.Unlock()` keeps the lock held to the end of the
		// function as far as every later statement is concerned, which is
		// exactly what leaving the key in place models.
		if _, op, ok := w.lockCall(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return false
		}
		w.atomic(s, held)
		return false

	case *ast.ReturnStmt:
		w.atomic(s, held)
		return true

	case *ast.BranchStmt:
		w.recordBranch(s, held, ctxs)
		return true

	case *ast.BlockStmt:
		return w.block(s.List, held, ctxs)

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, held, ctxs)

	case *ast.IfStmt:
		if s.Init != nil {
			w.stmt(s.Init, held, ctxs)
		}
		w.header(s.Cond, held)
		var arrivals []heldSet
		thenHeld := held.clone()
		if !w.block(s.Body.List, thenHeld, ctxs) {
			arrivals = append(arrivals, thenHeld)
		}
		if s.Else != nil {
			elseHeld := held.clone()
			if !w.stmt(s.Else, elseHeld, ctxs) {
				arrivals = append(arrivals, elseHeld)
			}
		} else {
			arrivals = append(arrivals, held.clone())
		}
		if len(arrivals) == 0 {
			return true
		}
		held.setTo(intersectSets(arrivals))
		return false

	case *ast.ForStmt:
		if s.Init != nil {
			w.stmt(s.Init, held, ctxs)
		}
		w.header(s.Cond, held)
		ctx := &breakCtx{isLoop: true}
		bodyHeld := held.clone()
		if !w.block(s.Body.List, bodyHeld, append(ctxs, ctx)) && s.Post != nil {
			w.stmt(s.Post, bodyHeld, ctxs)
		}
		arrivals := ctx.snaps
		if s.Cond != nil {
			// The condition can fail before the first iteration.
			arrivals = append(arrivals, held.clone())
		}
		if len(arrivals) == 0 {
			return true // infinite loop with no break: nothing falls through
		}
		held.setTo(intersectSets(arrivals))
		return false

	case *ast.RangeStmt:
		w.header(s.X, held)
		ctx := &breakCtx{isLoop: true}
		bodyHeld := held.clone()
		w.block(s.Body.List, bodyHeld, append(ctxs, ctx))
		arrivals := append(ctx.snaps, held.clone()) // empty ranges fall through
		held.setTo(intersectSets(arrivals))
		return false

	case *ast.SwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held, ctxs)
		}
		w.header(s.Tag, held)
		return w.switchBody(s.Body, held, ctxs, hasDefaultClause(s.Body))

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.stmt(s.Init, held, ctxs)
		}
		return w.switchBody(s.Body, held, ctxs, hasDefaultClause(s.Body))

	case *ast.SelectStmt:
		w.visit(s, held)
		ctx := &breakCtx{}
		var arrivals []heldSet
		for _, c := range s.Body.List {
			clause := c.(*ast.CommClause)
			cHeld := held.clone()
			if !w.block(clause.Body, cHeld, append(ctxs, ctx)) {
				arrivals = append(arrivals, cHeld)
			}
		}
		arrivals = append(arrivals, ctx.snaps...)
		if len(arrivals) == 0 {
			return true
		}
		held.setTo(intersectSets(arrivals))
		return false

	case *ast.GoStmt:
		w.atomic(s, held)
		return false

	case *ast.EmptyStmt:
		return false

	default: // assignments, declarations, inc/dec, sends, …
		w.atomic(s, held)
		return false
	}
}

func (w *lockWalker) switchBody(body *ast.BlockStmt, held heldSet, ctxs []*breakCtx, hasDefault bool) bool {
	ctx := &breakCtx{}
	var arrivals []heldSet
	for _, c := range body.List {
		clause := c.(*ast.CaseClause)
		for _, e := range clause.List {
			w.header(e, held)
		}
		cHeld := held.clone()
		if !w.block(clause.Body, cHeld, append(ctxs, ctx)) {
			arrivals = append(arrivals, cHeld)
		}
	}
	arrivals = append(arrivals, ctx.snaps...)
	if !hasDefault {
		arrivals = append(arrivals, held.clone()) // no case may match
	}
	if len(arrivals) == 0 {
		return true
	}
	held.setTo(intersectSets(arrivals))
	return false
}

func hasDefaultClause(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		switch clause := c.(type) {
		case *ast.CaseClause: // switch / type switch
			if clause.List == nil {
				return true
			}
		case *ast.CommClause: // select
			if clause.Comm == nil {
				return true
			}
		}
	}
	return false
}

// recordBranch snapshots held at break/continue so loop and switch
// exits can join it ("break // holds m.mu" in Manager.open).
func (w *lockWalker) recordBranch(s *ast.BranchStmt, held heldSet, ctxs []*breakCtx) {
	wantLoop := s.Tok.String() == "continue"
	for i := len(ctxs) - 1; i >= 0; i-- {
		if wantLoop && !ctxs[i].isLoop {
			continue
		}
		if s.Tok.String() == "break" {
			ctxs[i].snaps = append(ctxs[i].snaps, held.clone())
		}
		return
	}
}

// lockCall decodes a call as (<expr>.Lock|RLock|Unlock|RUnlock)() on a
// sync.Mutex or sync.RWMutex, returning the flattened lock key and the
// operation name.
func (w *lockWalker) lockCall(call *ast.CallExpr) (key, op string, ok bool) {
	return lockCallInfo(w.pkg, call)
}

// lockCallInfo is the package-level form of lockCall, shared with the
// lockorder analyzer.
func lockCallInfo(pkg *Package, call *ast.CallExpr) (key, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	op = sel.Sel.Name
	switch op {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	selection := pkg.Info.Selections[sel]
	if selection == nil || !isSyncMutex(selection.Recv()) {
		return "", "", false
	}
	key = exprKey(sel.X)
	if key == "" {
		return "", "", false
	}
	return key, op, true
}

func (w *lockWalker) applyLockEffect(e ast.Expr, held heldSet) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return
	}
	key, op, ok := w.lockCall(call)
	if !ok {
		return
	}
	switch op {
	case "Lock", "RLock":
		held[key] = true
	case "Unlock", "RUnlock":
		delete(held, key)
	}
}

// isSyncMutex reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// exprKey flattens a lock or receiver expression to a stable name:
// idents and selector chains only ("m.mu"); anything else (calls,
// indexes) yields "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	case *ast.StarExpr:
		return exprKey(e.X)
	}
	return ""
}

// inspectNoFuncLit walks n without descending into function literals
// (closure bodies are analyzed separately with their own lock state).
func inspectNoFuncLit(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		if _, ok := c.(*ast.FuncLit); ok {
			return false
		}
		return f(c)
	})
}
