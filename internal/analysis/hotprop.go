package analysis

import (
	"go/ast"
	"go/types"
	"sort"

	"repro/internal/analysis/callgraph"
)

// Hotprop propagates `// ew:hotpath` heat through the module call
// graph: every function transitively reachable from an annotated root
// is audited with hotalloc's loop-allocation checks and lockhold's
// blocking-while-locked checks, and each finding carries the call
// trail that makes the site hot ("reached via Feed → process →
// columnsInto").
//
// Propagation is conservative — it follows static calls, interface
// dispatch (in-module implementors), `go` statements, and escaping
// function values. Two opt-outs cut it:
//
//   - `// ew:coldcall` on a call site stops propagation through that
//     edge (the callee runs on an error path or once per session, not
//     per column). The callgraph analyzer flags stale coldcalls.
//   - `// ew:allow hotprop` on a finding site suppresses that one
//     finding, with a justifying comment.
//
// One allocation shape is exempt by policy rather than annotation: the
// builder idiom `dst = append(dst, ...)` where dst is a slice
// parameter of the enclosing function that is also returned. The
// caller owns the backing array and amortizes its growth (the metrics
// exposition encoders are built on this), so the append is not a
// per-iteration allocation attributable to the callee.
//
// Functions annotated ew:hotpath themselves are skipped here: hotalloc
// already audits them directly, and one finding per site is enough.
type Hotprop struct{}

func (Hotprop) Name() string { return "hotprop" }
func (Hotprop) Doc() string {
	return "hotalloc/lockhold checks propagated through the call graph from ew:hotpath roots"
}

// Match accepts every package: reachability, not location, decides
// what is audited.
func (Hotprop) Match(path string) bool { return true }

// hotReach is one reachable function plus the shortest call trail from
// a hot root to it.
type hotReach struct {
	node  *callgraph.Node
	trail []string
}

func (h Hotprop) RunModule(mod *Module) []Finding {
	g := mod.Graph()

	// Roots: every declared function whose doc carries ew:hotpath.
	var queue []hotReach
	seen := make(map[*callgraph.Node]bool)
	for _, n := range g.Nodes() {
		if n.Decl == nil || !IsHotpath(n.Decl) {
			continue
		}
		seen[n] = true
		queue = append(queue, hotReach{node: n, trail: []string{n.Name()}})
	}

	// BFS: shortest trail wins; deterministic because Nodes() and Out()
	// are source-ordered.
	var reached []hotReach
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		pkg := mod.PackageFor(cur.node)
		for _, e := range g.Out(cur.node) {
			if seen[e.Callee] || e.Callee.Body() == nil {
				continue
			}
			if pkg != nil && pkg.Notes.Coldcall(e.Site.Pos()) {
				continue
			}
			seen[e.Callee] = true
			trail := append(append([]string{}, cur.trail...), e.Callee.Name())
			next := hotReach{node: e.Callee, trail: trail}
			reached = append(reached, next)
			queue = append(queue, next)
		}
	}
	// Audit order: source order of the reached bodies.
	sort.Slice(reached, func(i, j int) bool {
		a, b := reached[i], reached[j]
		ap := a.node.Unit.Fset.Position(a.node.Body().Pos())
		bp := b.node.Unit.Fset.Position(b.node.Body().Pos())
		if ap.Filename != bp.Filename {
			return ap.Filename < bp.Filename
		}
		return ap.Offset < bp.Offset
	})

	var out []Finding
	for _, r := range reached {
		pkg := mod.PackageFor(r.node)
		if pkg == nil {
			continue
		}
		// Hotpath-annotated callees are hotalloc's direct responsibility.
		if r.node.Decl != nil && IsHotpath(r.node.Decl) {
			continue
		}
		out = append(out, h.audit(mod, pkg, r)...)
	}
	return out
}

// builderAppend recognizes the exempt builder idiom: an append whose
// destination is a slice parameter of the audited function, which also
// returns that slice type. The caller supplied (and re-receives) the
// backing array, so its growth amortizes across calls at the caller's
// discretion rather than allocating per iteration here.
func builderAppend(pkg *Package, node *callgraph.Node, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pkg.Info.Uses[dst].(*types.Var)
	if !ok {
		return false
	}
	if _, ok := v.Type().Underlying().(*types.Slice); !ok {
		return false
	}
	sig := nodeSignature(pkg, node)
	if sig == nil {
		return false
	}
	isParam := false
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == v {
			isParam = true
			break
		}
	}
	if !isParam {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), v.Type()) {
			return true
		}
	}
	return false
}

// nodeSignature recovers the types.Signature of a graph node's
// function, declared or literal.
func nodeSignature(pkg *Package, n *callgraph.Node) *types.Signature {
	if n.Func != nil {
		if sig, ok := n.Func.Type().(*types.Signature); ok {
			return sig
		}
	}
	if n.Lit != nil {
		if tv, ok := pkg.Info.Types[n.Lit]; ok {
			if sig, ok := tv.Type.(*types.Signature); ok {
				return sig
			}
		}
	}
	return nil
}

// audit runs the intra-procedural hot checks over one reachable body.
func (h Hotprop) audit(mod *Module, pkg *Package, r hotReach) []Finding {
	var out []Finding
	report := func(n ast.Node, msg string) {
		if pkg.Notes.Allowed(n.Pos(), h.Name()) {
			return
		}
		if call, ok := n.(*ast.CallExpr); ok && builderAppend(pkg, r.node, call) {
			return
		}
		out = append(out, Finding{
			Analyzer: h.Name(),
			Pos:      posOf(pkg, n.Pos()),
			Message:  msg,
			Trail:    r.trail,
		})
	}

	body := r.node.Body()

	// hotalloc's checks: allocations inside loops of the hot body. The
	// body is audited exactly as if it carried ew:hotpath itself.
	Hotalloc{}.walk(pkg, body, false, report)

	// lockhold's checks: blocking operations while a mutex is held.
	// Packages lockhold itself matches are skipped — the direct analyzer
	// already reports there, and a second finding with a trail would be
	// noise on the same line.
	if (Lockhold{}).Match(pkg.Path) {
		return out
	}
	var seed []string
	if r.node.Decl != nil {
		seed = HeldOnEntry(r.node.Decl)
	}
	walkHeldBody(pkg, body, seed, false, func(n ast.Node, held heldSet) {
		if len(held) == 0 {
			return
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			if !hasDefaultClause(sel.Body) {
				report(sel, "select with no default may block while holding "+held.String())
			}
			return
		}
		inspectNoFuncLit(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.SendStmt:
				report(c, "channel send may block while holding "+held.String())
			case *ast.UnaryExpr:
				if c.Op.String() == "<-" {
					report(c, "channel receive may block while holding "+held.String())
				}
			case *ast.CallExpr:
				if what, blocking := blockingCall(pkg, c); blocking {
					report(c, what+" while holding "+held.String())
				}
			}
			return true
		})
	})
	return out
}
