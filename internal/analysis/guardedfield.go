package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Guardedfield enforces `// guarded by <mu>` annotations on struct
// fields: any access to an annotated field must occur while the named
// sibling mutex of the same receiver expression is provably held
// (Lock/RLock earlier in the function, a defer-Unlock region, or an
// `ew:holds` precondition on the enclosing function).
//
// Accesses through a value freshly built from a composite literal in
// the same function are exempt — constructors initialize fields before
// the value can be shared. Anything else needs the lock or an
// `// ew:allow guardedfield` annotation with a justification.
type Guardedfield struct{}

func (Guardedfield) Name() string { return "guardedfield" }
func (Guardedfield) Doc() string {
	return "struct field annotated `guarded by <mu>` accessed without the guard held"
}

// Match accepts every package: the analyzer is annotation-driven and
// silent where no `guarded by` comments exist.
func (Guardedfield) Match(path string) bool { return true }

func (g Guardedfield) Run(pkg *Package) []Finding {
	guards, bad := collectGuards(pkg)
	out := bad
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			fresh := freshLocals(pkg, fn)
			WalkHeld(pkg, fn, func(n ast.Node, held heldSet) {
				inspectNoFuncLit(n, func(c ast.Node) bool {
					sel, ok := c.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					selection := pkg.Info.Selections[sel]
					if selection == nil || selection.Kind() != types.FieldVal {
						return true
					}
					field, ok := selection.Obj().(*types.Var)
					if !ok {
						return true
					}
					guard, guarded := guards[field]
					if !guarded {
						return true
					}
					base := exprKey(sel.X)
					if base != "" && held[base+"."+guard] {
						return true
					}
					if obj := rootObject(pkg, sel.X); obj != nil && fresh[obj] {
						return true
					}
					if pkg.Notes.Allowed(sel.Pos(), g.Name()) {
						return true
					}
					want := guard
					if base != "" {
						want = base + "." + guard
					}
					out = append(out, Finding{
						Analyzer: g.Name(),
						Pos:      pkg.Fset.Position(sel.Pos()),
						Message: fmt.Sprintf("field %s is guarded by %s, which is not held here",
							field.Name(), want),
					})
					return true
				})
			})
		}
	}
	return out
}

// collectGuards maps annotated field objects to their guard field
// name, reporting annotations whose guard does not name a sibling
// field.
func collectGuards(pkg *Package) (map[*types.Var]string, []Finding) {
	guards := make(map[*types.Var]string)
	var bad []Finding
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			names := make(map[string]bool)
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					names[name.Name] = true
				}
			}
			for _, f := range st.Fields.List {
				guard, ok := guardComment(f)
				if !ok {
					continue
				}
				if !names[guard] {
					bad = append(bad, Finding{
						Analyzer: "guardedfield",
						Pos:      pkg.Fset.Position(f.Pos()),
						Message:  fmt.Sprintf("guard %q is not a field of this struct", guard),
					})
					continue
				}
				for _, name := range f.Names {
					if obj, ok := pkg.Info.Defs[name].(*types.Var); ok {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards, bad
}

// freshLocals finds variables assigned a composite literal (or its
// address) anywhere in fn: values still private to the constructor.
func freshLocals(pkg *Package, fn *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			if !isCompositeLit(rhs) {
				continue
			}
			id, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := pkg.Info.Defs[id]; obj != nil {
				fresh[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				fresh[obj] = true
			}
		}
		return true
	})
	return fresh
}

func isCompositeLit(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	}
	return false
}

// rootObject resolves the leftmost identifier of a selector chain.
func rootObject(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
