package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// Lockhold flags blocking operations reachable while a sync.Mutex or
// sync.RWMutex is held in the serving-layer packages. A lock-held
// blocking call turns one slow client into a service-wide stall: every
// other goroutine queueing on the same mutex inherits the wait. The
// blocking set is: channel sends/receives and selects without a
// default, time.Sleep, sync WaitGroup/Cond waits, pipeline
// Stream.Feed/Flush (a full DSP pass), and network/file IO.
//
// Deliberate exceptions carry `// ew:allow lockhold` with a
// justification (e.g. a send on a buffered reply channel that by
// construction never blocks).
type Lockhold struct{}

func (Lockhold) Name() string { return "lockhold" }
func (Lockhold) Doc() string {
	return "blocking operation (channel, sleep, Stream.Feed, IO) while a mutex is held"
}

func (Lockhold) Match(path string) bool {
	return pathContains(path, "internal/serve") ||
		pathContains(path, "internal/runtime") ||
		isFixturePath(path, "lockhold")
}

func (l Lockhold) Run(pkg *Package) []Finding {
	var out []Finding
	report := func(pos ast.Node, held heldSet, what string) {
		if pkg.Notes.Allowed(pos.Pos(), l.Name()) {
			return
		}
		out = append(out, Finding{
			Analyzer: l.Name(),
			Pos:      pkg.Fset.Position(pos.Pos()),
			Message:  fmt.Sprintf("%s while holding %s", what, held),
		})
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			WalkHeld(pkg, fn, func(n ast.Node, held heldSet) {
				if len(held) == 0 {
					return
				}
				if sel, ok := n.(*ast.SelectStmt); ok {
					if !hasDefaultClause(sel.Body) {
						report(sel, held, "select with no default may block")
					}
					return
				}
				inspectNoFuncLit(n, func(c ast.Node) bool {
					switch c := c.(type) {
					case *ast.SendStmt:
						report(c, held, "channel send may block")
					case *ast.UnaryExpr:
						if c.Op.String() == "<-" {
							report(c, held, "channel receive may block")
						}
					case *ast.CallExpr:
						if what, blocking := blockingCall(pkg, c); blocking {
							report(c, held, what)
						}
					}
					return true
				})
			})
		}
	}
	return out
}

// blockingCall classifies a call as potentially blocking for lockhold.
func blockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	obj := calleeObject(pkg, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if recv := recvNamed(fn); recv != nil {
		recvPkg := ""
		if recv.Obj().Pkg() != nil {
			recvPkg = recv.Obj().Pkg().Path()
		}
		switch {
		case recvPkg == "sync" && name == "Wait":
			return "sync." + recv.Obj().Name() + ".Wait may block", true
		case pathHasSuffix(recvPkg, "internal/pipeline") && recv.Obj().Name() == "Stream" &&
			(name == "Feed" || name == "Flush"):
			return "pipeline Stream." + name + " (full DSP pass) runs", true
		case strings.HasPrefix(recvPkg, "net"):
			return "network call " + recv.Obj().Name() + "." + name + " runs", true
		}
		return "", false
	}
	if fn.Pkg() == nil {
		return "", false
	}
	switch pkgPath := fn.Pkg().Path(); {
	case pkgPath == "time" && name == "Sleep":
		return "time.Sleep runs", true
	case strings.HasPrefix(pkgPath, "net"):
		return "network call " + pkgPath + "." + name + " runs", true
	case pkgPath == "os" && (name == "Open" || name == "Create" || name == "OpenFile" ||
		name == "ReadFile" || name == "WriteFile" || name == "Pipe"):
		return "file IO os." + name + " runs", true
	case pkgPath == "io" && name == "ReadAll":
		return "io.ReadAll runs", true
	case pkgPath == "os/exec":
		return "subprocess call runs", true
	}
	return "", false
}

// calleeObject resolves the object a call invokes, if it is a named
// function or method.
func calleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return pkg.Info.Uses[fun]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[fun.Sel]
	}
	return nil
}

// recvNamed returns the named type of a method's receiver (behind a
// pointer), or nil for plain functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// pathContains reports whether sub occurs in path at a path-segment
// boundary ("internal/serve" matches "repro/internal/serve" but not
// "repro/internal/server").
func pathContains(path, sub string) bool {
	return strings.Contains("/"+path+"/", "/"+sub+"/")
}
