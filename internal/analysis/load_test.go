package analysis_test

import (
	"testing"

	"repro/internal/analysis"
)

// TestLoadModuleDeterministic pins the contract the parallel loader
// must keep: the package list (and each package's file set) is
// identical run to run regardless of goroutine scheduling.
func TestLoadModuleDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow; run without -short")
	}
	modRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	a, err := analysis.LoadModule(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	b, err := analysis.LoadModule(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("package counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Path != b[i].Path {
			t.Errorf("package %d: %s vs %s", i, a[i].Path, b[i].Path)
		}
		if len(a[i].Files) != len(b[i].Files) {
			t.Errorf("%s: file counts differ: %d vs %d", a[i].Path, len(a[i].Files), len(b[i].Files))
		}
	}
}

// BenchmarkLoadModule pins the loader's wall time: the parse phase
// fans out across packages and type-checking is scheduled over the
// import DAG, so this is the number `make lint` pays before any
// analyzer runs.
func BenchmarkLoadModule(b *testing.B) {
	modRoot, err := analysis.FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.LoadModule(modRoot); err != nil {
			b.Fatal(err)
		}
	}
}
