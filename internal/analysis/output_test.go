package analysis_test

import (
	"go/token"
	"strings"
	"testing"
	"time"

	"repro/internal/analysis"
)

// TestWriteJSONGolden pins the exact `ewvet -json` document shape:
// tooling that consumes the report (CI annotators, editors) parses
// these field names and this layout, so any drift must be deliberate.
func TestWriteJSONGolden(t *testing.T) {
	findings := []analysis.Finding{
		{
			Analyzer: "hotprop",
			Pos:      token.Position{Filename: "internal/dtw/dtw.go", Line: 126, Column: 13},
			Message:  "append may grow its backing array inside hot loop",
			Trail:    []string{"Stream.Feed", "Stream.process", "NearestN"},
		},
		{
			Analyzer: "floateq",
			Pos:      token.Position{Filename: "internal/dsp/filter.go", Line: 112, Column: 10},
			Message:  "floating-point == comparison",
		},
	}
	var buf strings.Builder
	if err := analysis.WriteJSON(&buf, findings, 20, 8); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "packages": 20,
  "analyzers": 8,
  "findings": [
    {
      "file": "internal/dtw/dtw.go",
      "line": 126,
      "col": 13,
      "analyzer": "hotprop",
      "message": "append may grow its backing array inside hot loop",
      "trail": [
        "Stream.Feed",
        "Stream.process",
        "NearestN"
      ]
    },
    {
      "file": "internal/dsp/filter.go",
      "line": 112,
      "col": 10,
      "analyzer": "floateq",
      "message": "floating-point == comparison"
    }
  ]
}
`
	if got := buf.String(); got != golden {
		t.Errorf("JSON report drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestWriteJSONEmpty pins that a clean run still emits a well-formed
// document with an empty findings array, not null.
func TestWriteJSONEmpty(t *testing.T) {
	var buf strings.Builder
	if err := analysis.WriteJSON(&buf, nil, 20, 8); err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "packages": 20,
  "analyzers": 8,
  "findings": []
}
`
	if got := buf.String(); got != golden {
		t.Errorf("empty JSON report drifted from golden.\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestWriteTimingsGolden pins the `-timing` table layout.
func TestWriteTimingsGolden(t *testing.T) {
	timings := []analysis.Timing{
		{Analyzer: "lockhold", Packages: 3, Duration: 1500 * time.Microsecond},
		{Analyzer: "callgraph", Packages: 20, Duration: 250 * time.Millisecond},
	}
	var buf strings.Builder
	analysis.WriteTimings(&buf, timings)
	const golden = "lockhold         3 pkg         1.5ms\n" +
		"callgraph       20 pkg         250ms\n"
	if got := buf.String(); got != golden {
		t.Errorf("timing table drifted from golden.\ngot:\n%q\nwant:\n%q", got, golden)
	}
}
