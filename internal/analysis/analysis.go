// Package analysis is EchoWrite's project-specific static-analysis
// framework: a pure-stdlib loader (go/parser + go/types) plus a set of
// analyzers that encode invariants generic `go vet` cannot see — lock
// discipline in the serving layer, float-equality hygiene in the DSP
// core, allocation budgets on annotated hot paths, and goroutine
// lifecycle rules. cmd/ewvet drives the suite over the whole module;
// `make lint` wires it into CI.
//
// Annotation grammar (all comments, same line or the line above unless
// noted):
//
//	// guarded by <field>   on a struct field: the field may only be
//	                        accessed while the sibling mutex <field> is
//	                        held (enforced by the guardedfield analyzer).
//	// ew:holds <expr>.<mu> on a function's doc comment: the function
//	                        requires the caller to hold the named lock;
//	                        the lock is treated as held throughout.
//	// ew:hotpath           on a function's doc comment: the hotalloc
//	                        analyzer audits every loop in the body, and
//	                        hotprop propagates the heat into every
//	                        callee reachable through the call graph.
//	// ew:coldcall          on a call site inside hot-reachable code:
//	                        the callee is genuinely cold (error path,
//	                        once-per-session setup) and hotprop must
//	                        not propagate through this edge. The
//	                        callgraph analyzer flags stale coldcall
//	                        comments that no longer sit on a call.
//	// ew:exact             on a float ==/!= comparison: the comparison
//	                        is deliberately exact (zero or a sentinel
//	                        value assigned verbatim, never computed).
//	// ew:allow <analyzer>  suppresses one analyzer at this site; use
//	                        only with a justifying comment.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one analyzer hit, formatted file:line:col style by
// cmd/ewvet.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Trail, when non-empty, is the interprocedural path that makes the
	// site relevant — for hotprop the call chain from the ew:hotpath
	// root, for lockorder the acquisition paths around the cycle.
	Trail []string
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
	if len(f.Trail) > 0 {
		s += " (via " + strings.Join(f.Trail, " → ") + ")"
	}
	return s
}

// Package is one loaded, type-checked package: everything an analyzer
// needs to reason about it.
type Package struct {
	// Path is the import path ("repro/internal/serve").
	Path string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset positions every token in Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// Notes indexes the ew:* annotations by file and line.
	Notes *Annotations
}

// Analyzer is one invariant check's identity. Every analyzer also
// implements exactly one of PackageAnalyzer (intra-procedural, sees one
// package at a time) or ModuleAnalyzer (interprocedural, sees the whole
// load at once and may consult the call graph).
type Analyzer interface {
	// Name is the short identifier used in findings and ew:allow tags.
	Name() string
	// Doc is a one-line description for ewvet -list.
	Doc() string
	// Match reports whether the analyzer wants to see the package with
	// the given import path (fixture paths under testdata always match).
	Match(path string) bool
}

// PackageAnalyzer is an analyzer that reasons within function and
// package boundaries. Run must be stateless: the driver may call it
// for many packages.
type PackageAnalyzer interface {
	Analyzer
	// Run analyzes one package and returns its findings.
	Run(pkg *Package) []Finding
}

// ModuleAnalyzer is an analyzer that reasons across packages — it
// receives every loaded package that passed Match, plus the shared
// module context (call graph) built over the full load.
type ModuleAnalyzer interface {
	Analyzer
	// RunModule analyzes the whole module at once.
	RunModule(mod *Module) []Finding
}

// Registry returns the full analyzer suite in stable order:
// intra-procedural analyzers first, then the interprocedural layer
// (callgraph, hotprop, lockorder) that builds on the call graph.
func Registry() []Analyzer {
	return []Analyzer{
		Lockhold{},
		Guardedfield{},
		Floateq{},
		Hotalloc{},
		Goexit{},
		Callgraph{},
		Hotprop{},
		Lockorder{},
	}
}

// Fast filters analyzers down to the intra-procedural subset — the
// inner-loop `make lint-fast` gate, which skips the module-wide
// type-graph construction the interprocedural layer needs.
func Fast(analyzers []Analyzer) []Analyzer {
	var out []Analyzer
	for _, a := range analyzers {
		if _, ok := a.(PackageAnalyzer); ok {
			out = append(out, a)
		}
	}
	return out
}

// Timing records one analyzer's aggregate work during a run.
type Timing struct {
	Analyzer string
	// Packages counts how many loaded packages passed Match — the tree
	// gate test asserts this is non-zero for every registered analyzer.
	Packages int
	Duration time.Duration
}

// Run applies every matching analyzer and returns the findings sorted
// by position.
func Run(pkgs []*Package, analyzers []Analyzer) []Finding {
	findings, _ := RunTimed(pkgs, analyzers)
	return findings
}

// RunTimed is Run plus per-analyzer wall time, in registry order.
func RunTimed(pkgs []*Package, analyzers []Analyzer) ([]Finding, []Timing) {
	mod := NewModule(pkgs)
	var out []Finding
	timings := make([]Timing, 0, len(analyzers))
	for _, a := range analyzers {
		start := time.Now()
		matched := 0
		switch a := a.(type) {
		case PackageAnalyzer:
			for _, pkg := range pkgs {
				if !a.Match(pkg.Path) {
					continue
				}
				matched++
				out = append(out, a.Run(pkg)...)
			}
		case ModuleAnalyzer:
			for _, pkg := range pkgs {
				if a.Match(pkg.Path) {
					matched++
				}
			}
			if matched > 0 {
				out = append(out, a.RunModule(mod)...)
			}
		}
		timings = append(timings, Timing{Analyzer: a.Name(), Packages: matched, Duration: time.Since(start)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, timings
}

// isFixturePath reports whether path points into the analyzer fixture
// tree; analyzers always match their fixtures so the golden tests can
// drive them through the same Match gate ewvet uses.
func isFixturePath(path, analyzer string) bool {
	return pathHasSuffix(path, "internal/analysis/testdata/src/"+analyzer)
}

// pathHasSuffix is strings.HasSuffix over /-separated path elements.
func pathHasSuffix(path, suffix string) bool {
	if len(path) < len(suffix) {
		return false
	}
	if path[len(path)-len(suffix):] != suffix {
		return false
	}
	return len(path) == len(suffix) || path[len(path)-len(suffix)-1] == '/'
}

// pathIsIn reports whether path equals prefix or lies beneath it.
func pathIsIn(path, prefix string) bool {
	if len(path) < len(prefix) || path[:len(prefix)] != prefix {
		return false
	}
	return len(path) == len(prefix) || path[len(prefix)] == '/'
}
