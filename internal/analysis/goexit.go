package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// Goexit audits `go` statements for the two goroutine-lifecycle
// hazards that leak under serving load:
//
//  1. A goroutine with no visible stop mechanism — its body (or the
//     body of the same-package function it calls) contains no channel
//     operation, select, context use, or sync.WaitGroup call, and for
//     cross-package callees no channel/context argument is passed.
//     Such a goroutine can outlive its owner with nothing to end it.
//  2. A closure that captures an enclosing loop variable instead of
//     receiving it as an argument. Per-iteration loop semantics make
//     this well-defined since Go 1.22, but the explicit argument keeps
//     the data flow auditable and survives backports.
//
// Process-lifetime goroutines (an HTTP server in a main package)
// carry `// ew:allow goexit` with a justification.
type Goexit struct{}

func (Goexit) Name() string { return "goexit" }
func (Goexit) Doc() string {
	return "`go` statement with no stop mechanism, or capturing a loop variable"
}

// Match accepts every package: goroutine hygiene is global.
func (Goexit) Match(path string) bool { return true }

func (g Goexit) Run(pkg *Package) []Finding {
	var out []Finding
	decls := packageFuncDecls(pkg)
	report := func(n ast.Node, msg string) {
		if pkg.Notes.Allowed(n.Pos(), g.Name()) {
			return
		}
		out = append(out, Finding{Analyzer: g.Name(), Pos: pkg.Fset.Position(n.Pos()), Message: msg})
	}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			g.checkFunc(pkg, fn, decls, report)
		}
	}
	return out
}

// checkFunc walks fn tracking the loop variables in scope at each `go`
// statement.
func (g Goexit) checkFunc(pkg *Package, fn *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl, report func(ast.Node, string)) {
	var loopVars []types.Object
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		if n == nil {
			return
		}
		switch n := n.(type) {
		case *ast.RangeStmt:
			mark := len(loopVars)
			for _, e := range []ast.Expr{n.Key, n.Value} {
				if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
					if obj := pkg.Info.Defs[id]; obj != nil {
						loopVars = append(loopVars, obj)
					}
				}
			}
			children(n, walk)
			loopVars = loopVars[:mark]
			return
		case *ast.ForStmt:
			mark := len(loopVars)
			if init, ok := n.Init.(*ast.AssignStmt); ok {
				for _, e := range init.Lhs {
					if id, ok := e.(*ast.Ident); ok {
						if obj := pkg.Info.Defs[id]; obj != nil {
							loopVars = append(loopVars, obj)
						}
					}
				}
			}
			children(n, walk)
			loopVars = loopVars[:mark]
			return
		case *ast.GoStmt:
			g.checkGo(pkg, n, loopVars, decls, report)
		}
		children(n, walk)
	}
	walk(fn.Body)
}

func (g Goexit) checkGo(pkg *Package, stmt *ast.GoStmt, loopVars []types.Object, decls map[*types.Func]*ast.FuncDecl, report func(ast.Node, string)) {
	call := stmt.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, lv := range loopVars {
			if usesObject(pkg, lit.Body, lv) {
				report(stmt, fmt.Sprintf("goroutine closure captures loop variable %q; pass it as a call argument", lv.Name()))
				break
			}
		}
		if !hasStopMechanism(pkg, lit.Body) && !argsCarryStop(pkg, call) {
			report(stmt, "goroutine has no stop mechanism (channel, select, context, or WaitGroup) in its body")
		}
		return
	}
	// Named function or method.
	obj, _ := calleeObject(pkg, call).(*types.Func)
	if obj == nil {
		// Dynamic call through a function value: the value itself could
		// do anything; only require a stop argument.
		if !argsCarryStop(pkg, call) {
			report(stmt, "goroutine launches a function value with no channel or context argument")
		}
		return
	}
	if decl := decls[obj]; decl != nil && decl.Body != nil {
		if !hasStopMechanism(pkg, decl.Body) && !argsCarryStop(pkg, call) {
			report(stmt, fmt.Sprintf("goroutine %s has no stop mechanism (channel, select, context, or WaitGroup)", obj.Name()))
		}
		return
	}
	// Cross-package callee: the body is out of reach, so require a
	// channel or context in the call (receiver included).
	if !argsCarryStop(pkg, call) && !recvCarriesStop(pkg, call) {
		report(stmt, fmt.Sprintf("goroutine calls %s with no channel or context argument to stop it", obj.Name()))
	}
}

// hasStopMechanism reports whether body contains any construct that
// can end or coordinate the goroutine: channel ops, select, close,
// sync.WaitGroup calls, or context method calls.
func hasStopMechanism(pkg *Package, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
					if recv := recvNamed(fn); recv != nil && recv.Obj().Pkg() != nil {
						switch recv.Obj().Pkg().Path() {
						case "sync":
							if recv.Obj().Name() == "WaitGroup" {
								found = true
							}
						case "context":
							found = true
						}
					} else if fn.Pkg() != nil && fn.Pkg().Path() == "context" {
						found = true
					}
					// Interface method calls (context.Context.Done).
					if isContextType(pkg.Info.Types[sel.X].Type) {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// argsCarryStop reports whether any call argument is a channel,
// context, or function value — something the callee can use to stop.
func argsCarryStop(pkg *Package, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		t := pkg.Info.Types[arg].Type
		if t == nil {
			continue
		}
		switch t.Underlying().(type) {
		case *types.Chan, *types.Signature:
			return true
		}
		if isContextType(t) {
			return true
		}
	}
	return false
}

// recvCarriesStop reports whether a method call's receiver is itself a
// context or channel (rare, but cheap to accept).
func recvCarriesStop(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pkg.Info.Types[sel.X].Type
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	return isContextType(t)
}

func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesObject reports whether body references obj.
func usesObject(pkg *Package, body ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// packageFuncDecls indexes the package's function declarations by
// their type-checker objects, so goexit can chase same-package callees.
func packageFuncDecls(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pkg.Info.Defs[fn.Name].(*types.Func); ok {
					out[obj] = fn
				}
			}
		}
	}
	return out
}
