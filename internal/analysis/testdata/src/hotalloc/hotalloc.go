// Package hotalloc is the hotalloc analyzer fixture: per-iteration
// allocations inside ew:hotpath loops flagged, hoisted and cold-path
// allocations accepted. The `want` comments are golden expectations
// checked by the analysis tests.
package hotalloc

import (
	"errors"
	"fmt"
)

// process allocates scratch per column instead of hoisting it.
//
// ew:hotpath
func process(cols [][]float64) []float64 {
	out := make([]float64, len(cols)) // accepted: outside the loop
	for i, col := range cols {
		tmp := make([]float64, len(col)) // want "make allocates inside hot loop"
		copy(tmp, col)
		out[i] = sum(tmp)
	}
	return out
}

// gather grows its result by append instead of preallocating.
//
// ew:hotpath
func gather(cols [][]float64) []float64 {
	var out []float64
	for _, col := range cols {
		out = append(out, sum(col)) // want "append may grow its backing array"
	}
	return out
}

// closures builds a closure per iteration.
//
// ew:hotpath
func closures(xs []float64) []func() float64 {
	out := make([]func() float64, len(xs))
	for i, x := range xs {
		out[i] = func() float64 { return x } // want "closure allocated inside hot loop"
	}
	return out
}

// boxed passes a concrete float to an interface parameter each
// iteration, allocating the box.
//
// ew:hotpath
func boxed(xs []float64) {
	for _, x := range xs {
		record(x) // want "argument boxed into interface parameter"
	}
}

func record(v interface{}) { _ = v }

// checked allocates only while constructing an error, which the
// analyzer treats as a cold path: accepted.
//
// ew:hotpath
func checked(cols [][]float64) ([]float64, error) {
	out := make([]float64, len(cols))
	for i, col := range cols {
		v, err := first(col)
		if err != nil {
			return nil, fmt.Errorf("column %d: %w", i, err)
		}
		out[i] = v
	}
	return out, nil
}

// validated returns a fresh error from a validation branch inside the
// loop: the branch terminates the call, so the fmt.Errorf argument
// boxing is cold. Accepted.
//
// ew:hotpath
func validated(cols [][]float64) (float64, error) {
	total := 0.0
	for i, col := range cols {
		if len(col) == 0 {
			return 0, fmt.Errorf("column %d is empty", i)
		}
		total += col[0]
	}
	return total, nil
}

// retained allocates a row that escapes to the caller — a justified,
// annotated exception: accepted.
//
// ew:hotpath
func retained(xs []float64) [][]float64 {
	out := make([][]float64, len(xs))
	for i, x := range xs {
		// ew:allow hotalloc: each emitted row escapes to the caller.
		row := make([]float64, 1)
		row[0] = x
		out[i] = row
	}
	return out
}

// columnsInto is the append-into-dst pattern STFT.Compute uses: the
// backing array's capacity is hoisted above the loop and each iteration
// extends it through a helper, so the loop body itself contains no
// allocation syntax. Accepted — this pins the blessed shape for
// per-column hot loops.
//
// ew:hotpath
func columnsInto(cols [][]float64) []float64 {
	backing := make([]float64, 0, len(cols)) // accepted: hoisted capacity
	for _, col := range cols {
		backing = appendSum(backing, col)
	}
	return backing
}

// appendSum extends dst by one value. Its append sits at body level, not
// in a loop, so it is the helper's cold growth path: a caller that
// preallocated capacity never pays a per-iteration allocation. Accepted.
//
// ew:hotpath
func appendSum(dst []float64, col []float64) []float64 {
	return append(dst, sum(col))
}

// cold is not annotated, so the analyzer ignores its loops entirely:
// accepted.
func cold(cols [][]float64) [][]float64 {
	var out [][]float64
	for _, col := range cols {
		out = append(out, append([]float64(nil), col...))
	}
	return out
}

func first(col []float64) (float64, error) {
	if len(col) == 0 {
		return 0, errors.New("empty column")
	}
	return col[0], nil
}

func sum(col []float64) float64 {
	var t float64
	for _, v := range col {
		t += v
	}
	return t
}
