// Package lockhold is the lockhold analyzer fixture: each blocking
// class appears once flagged and once in an accepted form. The `want`
// comments are golden expectations checked by the analysis tests.
package lockhold

import (
	"sync"
	"time"

	"repro/internal/pipeline"
)

type server struct {
	mu   sync.Mutex
	ch   chan int
	done chan struct{}
	str  *pipeline.Stream
}

// sendHeld blocks on a channel send with the lock held.
func (s *server) sendHeld(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send may block while holding s.mu"
	s.mu.Unlock()
}

// sendReleased sends only after releasing the lock: accepted.
func (s *server) sendReleased(v int) {
	s.mu.Lock()
	s.mu.Unlock()
	s.ch <- v
}

// recvHeld receives inside a defer-unlock region, so the lock is held
// for the whole body.
func (s *server) recvHeld() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.ch // want "channel receive may block"
}

// sleepHeld sleeps with the lock held.
func (s *server) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep runs while holding s.mu"
	s.mu.Unlock()
}

// feedHeld runs the full DSP pass with the lock held.
func (s *server) feedHeld(chunk []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.str.Feed(chunk) // want "pipeline Stream.Feed"
}

// selectHeld blocks in a select with no default.
func (s *server) selectHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want "select with no default may block"
	case <-s.done:
	case v := <-s.ch:
		_ = v
	}
}

// selectDefault polls with a default clause, which never blocks:
// accepted.
func (s *server) selectDefault() (v int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v = <-s.ch:
		ok = true
	default:
	}
	return v, ok
}

// branchRelease unlocks on every path before the send, which the
// must-hold join proves: accepted.
func (s *server) branchRelease(v int, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.ch <- v
}

// replyAllowed sends on a caller-supplied reply channel under the
// lock; the suppression documents why it cannot block.
func (s *server) replyAllowed(reply chan int, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// ew:allow lockhold: reply has capacity 1 and exactly one writer.
	reply <- v
}
