// Package callgraph is the golden fixture for call-graph construction:
// interface dispatch via method-set matching, closures, bound methods,
// go statements — plus the callgraph analyzer's stale-coldcall check.
//
// Edge expectations live in `edge`/`noedge` comments consumed by the
// callgraph package's own test (both directions: an `edge` must exist,
// a `noedge` must not); `want` comments are the analyzer findings
// checked by TestAnalyzerFixtures.
package callgraph

// Ring is implemented by Bell (pointer receiver) and Gong (value
// receiver) but NOT by Flute, whose Chime has the wrong signature.
type Ring interface{ Chime() int }

type Bell struct{ n int }

func (b *Bell) Chime() int { return b.n }

type Gong struct{}

func (Gong) Chime() int { return 1 }

type Flute struct{}

func (Flute) Chime(octave int) int { return octave }

// Sound dispatches through the interface: method-set matching must
// resolve both in-module implementors and neither non-implementor.
//
// edge "Sound -> Bell.Chime interface"
// edge "Sound -> Gong.Chime interface"
// noedge "Sound -> Flute.Chime"
func Sound(r Ring) int { return r.Chime() }

// Direct calls resolve statically.
//
// edge "Direct -> Bell.Chime static"
// noedge "Direct -> Gong.Chime"
func Direct() int {
	b := &Bell{n: 2}
	return b.Chime()
}

// Closure: the literal escapes into a variable, giving the enclosing
// function a ref edge to the literal; the literal's body calls Direct.
//
// edge "Closures -> lit ref"
// edge "lit -> Direct static"
func Closures() int {
	f := func() int { return Direct() }
	return f()
}

// Immediate: a literal called where it appears is a plain call edge.
//
// edge "Immediate -> lit static"
func Immediate() int {
	return func() int { return Sound(Gong{}) }()
}

// Bound method value: `g.Chime` escapes without being called, so the
// creation site conservatively counts as a possible call.
//
// edge "Bound -> Gong.Chime ref"
// noedge "Bound -> Bell.Chime"
func Bound() func() int {
	g := Gong{}
	return g.Chime
}

// Spawn: go statements produce edges tagged go, which order-sensitive
// clients skip.
//
// edge "Spawn -> Direct go"
func Spawn() {
	go Direct()
}

// Stale directive: the comment below sits on a line with no call, so
// the callgraph analyzer must flag it.
func Stale() int {
	x := 1 // ew:coldcall — stale: nothing is called here. // want "stale ew:coldcall"
	return x
}

// Live directive: coldcall on a real call site is fine (hotprop reads
// it; callgraph must not flag it).
func Live() int {
	return Direct() // ew:coldcall — fixture: a genuinely cold callee
}
