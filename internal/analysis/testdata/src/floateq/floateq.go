// Package floateq is the floateq analyzer fixture: exact float
// comparisons flagged, tolerant and annotated forms accepted. The
// `want` comments are golden expectations checked by the analysis
// tests.
package floateq

import "math"

const eps = 1e-9

// equalExact compares two computed floats exactly.
func equalExact(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

// nonzeroExact compares a float against an untyped constant.
func nonzeroExact(a float64) bool {
	return a != 0 // want "floating-point != comparison"
}

// equalTolerant compares within a tolerance: accepted.
func equalTolerant(a, b float64) bool {
	return math.Abs(a-b) < eps
}

// zeroSentinel compares against a verbatim sentinel: annotated,
// accepted.
func zeroSentinel(shift float64) bool {
	return shift == 0 // ew:exact (zero is assigned literally, never computed)
}

// sentinelAbove carries the annotation on the line above: accepted.
func sentinelAbove(cost float64) bool {
	// ew:exact: MaxFloat64 is copied from the initialization, never
	// the result of arithmetic.
	return cost == math.MaxFloat64
}

// constFold compares two constants, folded at compile time: accepted.
func constFold() bool {
	return eps == 1e-9
}

// intsFine compares integers: not a float comparison, accepted.
func intsFine(a, b int) bool {
	return a == b
}
