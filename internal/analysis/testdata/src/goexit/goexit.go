// Package goexit is the goexit analyzer fixture: goroutines without a
// stop mechanism and loop-variable captures flagged, stoppable and
// argument-passing forms accepted. The `want` comments are golden
// expectations checked by the analysis tests.
package goexit

import (
	"context"
	"sync"
)

// leaky spins a goroutine nothing can stop.
func leaky() {
	go func() { // want "no stop mechanism"
		for {
			_ = 1
		}
	}()
}

// stopped polls a quit channel: accepted.
func stopped(quit chan struct{}) {
	go func() {
		for {
			select {
			case <-quit:
				return
			default:
			}
		}
	}()
}

// captures closes over the range variable instead of passing it.
func captures(jobs []int, done chan int) {
	for _, j := range jobs {
		go func() { // want "captures loop variable"
			done <- j
		}()
	}
}

// argPassed hands the loop variable to the goroutine explicitly:
// accepted.
func argPassed(jobs []int, done chan int) {
	for _, j := range jobs {
		go func(j int) {
			done <- j
		}(j)
	}
}

// indexCapture closes over a for-loop index.
func indexCapture(done chan int) {
	for i := 0; i < 4; i++ {
		go func() { // want "captures loop variable"
			done <- i
		}()
	}
}

// runForever has no stop mechanism in its body.
func runForever() {
	for {
		_ = 1
	}
}

// spawnNamed launches a same-package function whose body the analyzer
// chases.
func spawnNamed() {
	go runForever() // want "runForever has no stop mechanism"
}

// serveForever is process-lifetime by design — a justified, annotated
// exception: accepted.
func serveForever() {
	// ew:allow goexit: process-lifetime worker, stopped only by exit.
	go runForever()
}

// drain stops when its channel closes; spawnDrain passes that channel,
// so both sides are visible: accepted.
func drain(ch chan int) {
	for range ch {
	}
}

func spawnDrain(ch chan int) {
	go drain(ch)
}

// watch hands its goroutine a context to stop it: accepted.
func watch(ctx context.Context, tick func()) {
	go poll(ctx, tick)
}

func poll(ctx context.Context, tick func()) {
	<-ctx.Done()
	tick()
}

// waits coordinates through a WaitGroup: accepted.
func waits(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = i
		}(i)
	}
	wg.Wait()
}

// dynamic launches an opaque function value with nothing to stop it.
func dynamic(f func()) {
	go f() // want "function value with no channel or context argument"
}

// dynamicStopped hands the function value a quit channel: accepted.
func dynamicStopped(f func(chan struct{}), quit chan struct{}) {
	go f(quit)
}
