// Package guardedfield is the guardedfield analyzer fixture: accesses
// to `guarded by` fields with and without the guard held. The `want`
// comments are golden expectations checked by the analysis tests.
package guardedfield

import "sync"

type counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// hits counts reads. guarded by mu
	hits int
}

// incLocked holds the guard across the access: accepted.
func (c *counter) incLocked() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// incUnlocked touches the field without the guard.
func (c *counter) incUnlocked() {
	c.n++ // want "field n is guarded by c.mu, which is not held here"
}

// readDefer reads inside a defer-unlock region: accepted.
func (c *counter) readDefer() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits++
	return c.n
}

// readEarlyUnlock reads after the guard has been released.
func (c *counter) readEarlyUnlock() int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.n // want "field n is guarded by c.mu"
}

// newCounter writes fields of a value it just built, still private to
// the constructor: accepted.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	c.hits = 0
	return c
}

// snapshotLocked declares the caller-holds precondition, so the body
// may access guarded fields freely: accepted.
//
// ew:holds c.mu — every caller locks the counter first.
func (c *counter) snapshotLocked() int {
	return c.n + c.hits
}

// resetAllowed carries a justified suppression: accepted.
func (c *counter) resetAllowed() {
	c.n = 0 // ew:allow guardedfield: only called before the counter is shared.
}

// badGuard names a guard that is not a sibling field; the annotation
// itself is the defect.
type badGuard struct {
	// guarded by lock
	v int // want "is not a field of this struct"
}
