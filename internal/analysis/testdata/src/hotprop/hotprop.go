// Package hotprop is the golden fixture for hot-path propagation:
// a transitive allocation two call frames below the ew:hotpath root, a
// coldcall opt-out, interface dispatch into a hot implementor, closure
// bodies, blocking-while-locked in a reachable callee, and allow/clean
// variants.
package hotprop

import (
	"sync"
	"time"
)

// Feed is the hot root: everything it can reach is audited.
//
// ew:hotpath — fixture root.
func Feed(samples []float64) float64 {
	return process(samples)
}

// process is one frame below the root: no allocation of its own, but
// it forwards the heat.
func process(samples []float64) float64 {
	return columnsInto(samples) + finishStroke(len(samples))
}

// columnsInto is two frames below the root; the make inside its loop
// must be reported with the full trail Feed → process → columnsInto.
func columnsInto(samples []float64) float64 {
	total := 0.0
	for range samples {
		scratch := make([]float64, 8) // want "make allocates inside hot loop"
		total += scratch[0]
	}
	return total
}

// finishStroke runs once per detected stroke, not per column: the edge
// is annotated cold, so coldAlloc's loop allocation stays unreported.
func finishStroke(n int) float64 {
	return coldAlloc(n) // ew:coldcall — per-stroke emission, not per-column work
}

func coldAlloc(n int) float64 {
	out := 0.0
	for i := 0; i < n; i++ {
		buf := make([]float64, 4) // cold: unreachable through a hot edge
		out += buf[0]
	}
	return out
}

// Window is dispatched through an interface from the hot root; the
// in-module implementor's loop allocation must be found.
type Window interface{ Apply([]float64) }

type Hann struct{}

func (Hann) Apply(frame []float64) {
	for i := range frame {
		w := append([]float64(nil), frame[i]) // want "append may grow its backing array inside hot loop"
		frame[i] = w[0]
	}
}

// FeedWindowed is a second hot root exercising interface dispatch.
//
// ew:hotpath — fixture root (interface dispatch).
func FeedWindowed(w Window, frame []float64) {
	w.Apply(frame)
}

// hotClosure escapes from a reachable function; its body is hot too.
func hotClosure() func(int) []int {
	return func(n int) []int {
		var out []int
		for i := 0; i < n; i++ {
			out = append(out, i) // want "append may grow its backing array inside hot loop"
		}
		return out
	}
}

// FeedClosure reaches the closure through two edges: the call and the
// escaping literal.
//
// ew:hotpath — fixture root (closure tracking).
func FeedClosure() []int {
	return hotClosure()(4)
}

// locker is reachable from Feed's package-mate root below: hotprop
// re-runs lockhold's blocking checks here even though the lockhold
// analyzer itself never matches this package.
type locker struct {
	mu sync.Mutex
}

func (l *locker) slowSync() {
	l.mu.Lock()
	defer l.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time.Sleep runs while holding l.mu"
}

// FeedLocked is a hot root whose callee blocks under a mutex.
//
// ew:hotpath — fixture root (lockhold propagation).
func FeedLocked(l *locker) {
	l.slowSync()
}

// allowedAlloc shows the site-level opt-out: the justification rides
// on the annotation.
func allowedAlloc(n int) []byte {
	var out []byte
	for i := 0; i < n; i++ {
		// ew:allow hotprop — fixture: amortized growth is deliberate here.
		out = append(out, byte(i))
	}
	return out
}

// FeedAllowed reaches the allowed site; no finding.
//
// ew:hotpath — fixture root (allow opt-out).
func FeedAllowed() []byte {
	return allowedAlloc(3)
}

// buildInto is the exempt builder idiom: dst is a slice parameter and
// the function returns it, so the caller owns the amortized capacity.
// No finding despite the in-loop append.
func buildInto(dst []byte, n int) []byte {
	for i := 0; i < n; i++ {
		dst = append(dst, byte(i))
	}
	return dst
}

// FeedBuilder reaches the builder; the carve-out keeps it clean.
//
// ew:hotpath — fixture root (builder-append carve-out).
func FeedBuilder() []byte {
	return buildInto(make([]byte, 0, 8), 8)
}

// NotReached allocates in a loop but no hot root can reach it: clean.
func NotReached(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
