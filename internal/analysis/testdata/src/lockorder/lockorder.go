// Package lockorder is the golden fixture for global lock-order
// deadlock detection: a direct 2-cycle, a 3-cycle spread over three
// functions, a cycle closed across call edges, and the clean variants
// — consistent ordering, unlock-before-acquire, and the ew:allow
// opt-out.
package lockorder

import "sync"

// ---- 2-cycle: inverted pair inside two functions -------------------

type Alpha struct{ mu sync.Mutex }
type Beta struct{ mu sync.Mutex }

func TakeAB(a *Alpha, b *Beta) {
	a.mu.Lock()
	defer a.mu.Unlock()
	// Both acquisition paths must be named in the finding: the forward
	// edge made here and the reverse edge from TakeBA.
	b.mu.Lock() // want "lock-order cycle (deadlock risk): lockorder.Alpha.mu → lockorder.Beta.mu → lockorder.Alpha.mu" want "while holding lockorder.Alpha.mu (in TakeAB)" want "while holding lockorder.Beta.mu (in TakeBA)"
	b.mu.Unlock()
}

func TakeBA(a *Alpha, b *Beta) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	a.mu.Unlock()
}

// ---- 3-cycle: each function is individually consistent -------------

type Cyan struct{ mu sync.Mutex }
type Dove struct{ mu sync.Mutex }
type Erin struct{ mu sync.Mutex }

func RingCD(c *Cyan, d *Dove) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d.mu.Lock() // want "lockorder.Cyan.mu → lockorder.Dove.mu → lockorder.Erin.mu → lockorder.Cyan.mu"
	d.mu.Unlock()
}

func RingDE(d *Dove, e *Erin) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e.mu.Lock()
	e.mu.Unlock()
}

func RingEC(e *Erin, c *Cyan) {
	e.mu.Lock()
	defer e.mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}

// ---- cross-call cycle: the second acquisition hides in a callee ----

type Inner struct{ mu sync.Mutex }
type Outer struct{ mu sync.Mutex }

func (o *Outer) Flush(in *Inner) {
	o.mu.Lock()
	defer o.mu.Unlock()
	in.grab()
}

func (in *Inner) grab() {
	in.mu.Lock()
	in.mu.Unlock()
}

func (in *Inner) Reverse(o *Outer) {
	in.mu.Lock()
	defer in.mu.Unlock()
	o.poke() // want "lockorder.Inner.mu → lockorder.Outer.mu → lockorder.Inner.mu"
}

func (o *Outer) poke() {
	o.mu.Lock()
	o.mu.Unlock()
}

// ---- clean: consistent order with a defer-unlock region ------------

type Pine struct{ mu sync.Mutex }
type Quip struct{ mu sync.Mutex }

func OrderedOne(p *Pine, q *Quip) {
	p.mu.Lock()
	defer p.mu.Unlock()
	q.mu.Lock()
	q.mu.Unlock()
}

// OrderedTwo releases q.mu before taking p.mu, so no Quip→Pine edge
// forms and the pair stays acyclic despite the reversed source order.
func OrderedTwo(p *Pine, q *Quip) {
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Lock()
	p.mu.Unlock()
}

// ---- clean: goroutine acquisitions are not ordered under the caller –

type Vane struct{ mu sync.Mutex }
type Wisp struct{ mu sync.Mutex }

// SpawnUnordered holds Vane.mu while *spawning* a goroutine that takes
// Wisp.mu; the inverse order in GoOther would only cycle if go-edges
// propagated held state, which they must not.
func SpawnUnordered(v *Vane, w *Wisp) {
	v.mu.Lock()
	defer v.mu.Unlock()
	go func() {
		w.mu.Lock()
		w.mu.Unlock()
	}()
}

func GoOther(v *Vane, w *Wisp) {
	w.mu.Lock()
	defer w.mu.Unlock()
	go func() {
		v.mu.Lock()
		v.mu.Unlock()
	}()
}

// ---- clean: explicit opt-out with justification --------------------

type Rook struct{ mu sync.Mutex }
type Swan struct{ mu sync.Mutex }

func AllowedAB(r *Rook, s *Swan) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s.mu.Lock() // ew:allow lockorder — fixture: startup-only path, external ordering
	s.mu.Unlock()
}

func AllowedBA(r *Rook, s *Swan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r.mu.Lock() // ew:allow lockorder — fixture: startup-only path, external ordering
	r.mu.Unlock()
}
