package analysis

import (
	"go/token"

	"repro/internal/analysis/callgraph"
)

// Module is the shared context ModuleAnalyzers run against: the full
// set of loaded packages plus a lazily built, memoized call graph.
// Building the graph once and handing it to every interprocedural
// analyzer keeps the expanded suite's cost one graph construction, not
// one per analyzer.
type Module struct {
	Pkgs []*Package

	graph  *callgraph.Graph
	byPath map[string]*Package
}

// NewModule wraps a loaded package set. The call graph is not built
// until an analyzer asks for it.
func NewModule(pkgs []*Package) *Module {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	return &Module{Pkgs: pkgs, byPath: byPath}
}

// Graph returns the module-wide call graph, building it on first use.
func (m *Module) Graph() *callgraph.Graph {
	if m.graph == nil {
		units := make([]*callgraph.Unit, len(m.Pkgs))
		for i, p := range m.Pkgs {
			units[i] = p.Unit()
		}
		m.graph = callgraph.Build(units)
	}
	return m.graph
}

// PackageFor resolves the loaded package a call-graph node's body lives
// in, or nil for bodiless (out-of-module) nodes.
func (m *Module) PackageFor(n *callgraph.Node) *Package {
	if n == nil || n.Unit == nil {
		return nil
	}
	return m.byPath[n.Unit.Path]
}

// Unit adapts a loaded package to the callgraph builder's input.
func (p *Package) Unit() *callgraph.Unit {
	return &callgraph.Unit{Path: p.Path, Fset: p.Fset, Files: p.Files, Info: p.Info}
}

// posOf returns the fset position of a node in pkg, a tiny helper the
// interprocedural analyzers share.
func posOf(pkg *Package, pos token.Pos) token.Position { return pkg.Fset.Position(pos) }
