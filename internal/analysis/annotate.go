package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Annotations indexes every `ew:` comment directive in a package by
// file and line, so analyzers can answer "is this site annotated?" in
// O(1) without re-walking comment lists.
type Annotations struct {
	fset *token.FileSet
	// tags maps filename → line → directive bodies found on that line
	// (the text after "ew:", e.g. "exact" or "allow lockhold").
	tags map[string]map[int][]string
}

// NewAnnotations scans the comment lists of files.
func NewAnnotations(fset *token.FileSet, files []*ast.File) *Annotations {
	a := &Annotations{fset: fset, tags: make(map[string]map[int][]string)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "ew:")
				if idx < 0 || !directiveStart(text, idx) {
					continue
				}
				body := strings.TrimSpace(text[idx+len("ew:"):])
				// A directive ends at the first period or double space so
				// prose can follow: "// ew:allow lockhold: reply is buffered".
				if cut := strings.IndexAny(body, ".;"); cut >= 0 {
					body = body[:cut]
				}
				body = strings.TrimSpace(body)
				if body == "" {
					continue
				}
				pos := fset.Position(c.Pos())
				byLine := a.tags[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]string)
					a.tags[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], body)
				// A directive inside a multi-line comment group also covers
				// the statement the group is attached to, so register it at
				// the group's last line as well (onOrAbove looks one line up).
				if end := fset.Position(cg.End()).Line; end != pos.Line {
					byLine[end] = append(byLine[end], body)
				}
			}
		}
	}
	return a
}

// directiveStart reports whether the "ew:" at text[idx:] begins the
// comment's content — only the comment marker and whitespace may
// precede it. Mentions of the grammar in prose ("use ew:exact", or an
// indented `// ew:coldcall` example inside a doc comment) are not
// directives; a trailing-comment directive like `x() // ew:coldcall`
// still qualifies because the statement is not part of c.Text.
func directiveStart(text string, idx int) bool {
	lead := text[:idx]
	lead = strings.TrimPrefix(lead, "//")
	lead = strings.TrimPrefix(lead, "/*")
	return strings.TrimLeft(lead, " \t") == ""
}

// at returns the directives on the given file line.
func (a *Annotations) at(filename string, line int) []string {
	return a.tags[filename][line]
}

// onOrAbove reports whether a directive matching ok appears on pos's
// line or the line directly above it (the two idiomatic placements).
func (a *Annotations) onOrAbove(pos token.Pos, ok func(string) bool) bool {
	p := a.fset.Position(pos)
	for _, line := range []int{p.Line, p.Line - 1} {
		for _, tag := range a.at(p.Filename, line) {
			if ok(tag) {
				return true
			}
		}
	}
	return false
}

// Allowed reports whether the site at pos carries `ew:allow <analyzer>`.
func (a *Annotations) Allowed(pos token.Pos, analyzer string) bool {
	return a.onOrAbove(pos, func(tag string) bool {
		rest, found := strings.CutPrefix(tag, "allow")
		if !found {
			return false
		}
		fields := strings.Fields(strings.TrimPrefix(strings.TrimSpace(rest), ":"))
		// The analyzer name may be followed by explanatory prose introduced
		// with a colon: "ew:allow lockhold: reply is buffered".
		return len(fields) > 0 && strings.TrimRight(fields[0], ":,") == analyzer
	})
}

// Coldcall reports whether the call site at pos carries `ew:coldcall`,
// optionally followed by prose ("ew:coldcall — once per session"). The
// hotprop analyzer does not propagate heat through such an edge.
func (a *Annotations) Coldcall(pos token.Pos) bool {
	return a.onOrAbove(pos, func(tag string) bool {
		rest, found := strings.CutPrefix(tag, "coldcall")
		return found && (rest == "" || rest[0] == ' ' || rest[0] == ':' || rest[0] == '(')
	})
}

// ColdcallLines lists every (file, line) carrying an `ew:coldcall`
// directive, so the callgraph analyzer can flag stale annotations that
// no longer sit on a call site.
func (a *Annotations) ColdcallLines() map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for file, byLine := range a.tags {
		for line, tags := range byLine {
			for _, tag := range tags {
				rest, found := strings.CutPrefix(tag, "coldcall")
				if !found || !(rest == "" || rest[0] == ' ' || rest[0] == ':' || rest[0] == '(') {
					continue
				}
				if out[file] == nil {
					out[file] = make(map[int]bool)
				}
				out[file][line] = true
			}
		}
	}
	return out
}

// Exact reports whether the comparison at pos carries `ew:exact`,
// optionally followed by prose ("ew:exact (same sentinel)").
func (a *Annotations) Exact(pos token.Pos) bool {
	return a.onOrAbove(pos, func(tag string) bool {
		rest, found := strings.CutPrefix(tag, "exact")
		return found && (rest == "" || rest[0] == ' ' || rest[0] == ':' || rest[0] == '(')
	})
}

// docDirective scans a function's doc comment for a directive with the
// given keyword, returning its argument list and whether it was found.
func docDirective(doc *ast.CommentGroup, keyword string) ([]string, bool) {
	if doc == nil {
		return nil, false
	}
	for _, c := range doc.List {
		text := c.Text
		idx := strings.Index(text, "ew:"+keyword)
		if idx < 0 || !directiveStart(text, idx) {
			continue
		}
		rest := text[idx+len("ew:")+len(keyword):]
		if cut := strings.IndexByte(rest, ';'); cut >= 0 {
			rest = rest[:cut]
		}
		// Arguments are identifier chains like "sess.mu"; explanatory prose
		// after them (— such as this) is dropped at the first non-argument
		// token. Cutting at '.' would split the chains themselves.
		var args []string
		for _, f := range strings.Fields(rest) {
			if !isExprToken(f) {
				break
			}
			args = append(args, f)
		}
		return args, true
	}
	return nil, false
}

// isExprToken reports whether f looks like a directive argument — an
// identifier chain such as "mu" or "sess.mu" — rather than prose.
func isExprToken(f string) bool {
	for i, r := range f {
		switch {
		case r == '_' || ('a' <= r && r <= 'z') || ('A' <= r && r <= 'Z'):
		case i > 0 && (r == '.' || ('0' <= r && r <= '9')):
		default:
			return false
		}
	}
	return f != ""
}

// IsHotpath reports whether fn's doc carries `ew:hotpath`.
func IsHotpath(fn *ast.FuncDecl) bool {
	_, ok := docDirective(fn.Doc, "hotpath")
	return ok
}

// HeldOnEntry returns the lock expressions a function's `ew:holds`
// directives assert are held by every caller (e.g. "sess.mu").
func HeldOnEntry(fn *ast.FuncDecl) []string {
	args, ok := docDirective(fn.Doc, "holds")
	if !ok {
		return nil
	}
	return args
}

// guardComment extracts the guard field name from a struct field's
// `// guarded by <name>` comment (doc or trailing), if present.
func guardComment(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := c.Text
			idx := strings.Index(text, "guarded by ")
			if idx < 0 {
				continue
			}
			fields := strings.Fields(text[idx+len("guarded by "):])
			if len(fields) > 0 {
				return strings.TrimRight(fields[0], ".,;"), true
			}
		}
	}
	return "", false
}
