package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// loader parses and type-checks module packages. Imports of
// module-internal paths resolve through the loader's package map (or
// recurse, on the sequential fixture path); stdlib imports fall back
// to the source importer (the module has no external dependencies, so
// those two cases are exhaustive).
//
// The loader is safe for the concurrent type-check phase of
// LoadModule: the shared token.FileSet synchronizes internally, pkgs
// is guarded by pkgsMu, and the stdlib source importer — which makes
// no concurrency promises — is serialized behind stdMu.
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string

	stdMu sync.Mutex // serializes std, which is not documented as concurrency-safe
	std   types.Importer

	pkgsMu  sync.RWMutex
	pkgs    map[string]*Package // completed module packages by import path
	loading map[string]bool     // import-cycle guard (sequential path only)
}

func newLoader(modRoot string) (*loader, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// parsedPkg is one package after the parse phase, before type-checking.
type parsedPkg struct {
	dir   string
	path  string
	files []*ast.File
	deps  []string // module-internal imports
}

// LoadModule loads and type-checks every package in the module rooted
// at modRoot, skipping testdata and hidden directories. Packages come
// back sorted by import path.
//
// Loading runs in two phases. All package directories parse
// concurrently (parsing touches only the FileSet, which is
// concurrency-safe). Type-checking is then scheduled over the import
// DAG extracted from the parsed files: a bounded worker pool checks
// any package whose module-internal dependencies have completed, so
// independent subtrees check in parallel while dependents wait exactly
// as long as they must.
func LoadModule(modRoot string) ([]*Package, error) {
	l, err := newLoader(modRoot)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(dirs) {
		workers = len(dirs)
	}
	if workers < 1 {
		workers = 1
	}

	// Phase 1: parse every directory concurrently.
	parsed := make([]*parsedPkg, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			parsed[i], errs[i] = l.parseDir(dir)
		}(i, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	if len(parsed) == 0 {
		return nil, nil
	}

	byPath := make(map[string]*parsedPkg, len(parsed))
	for _, p := range parsed {
		byPath[p.path] = p
	}
	// Restrict deps to packages in this load; anything else resolves
	// through the importer (stdlib).
	indeg := make(map[string]int, len(parsed))
	dependents := make(map[string][]*parsedPkg)
	for _, p := range parsed {
		for _, dep := range p.deps {
			if _, ok := byPath[dep]; !ok {
				continue
			}
			indeg[p.path]++
			dependents[dep] = append(dependents[dep], p)
		}
	}
	if err := checkAcyclic(parsed, indeg, dependents); err != nil {
		return nil, err
	}

	// Phase 2: type-check in topological waves, bounded workers. The
	// ready channel holds every package at most once, so sends under
	// the lock never block.
	ready := make(chan *parsedPkg, len(parsed))
	var (
		mu       sync.Mutex
		firstErr error
		done     int
	)
	abort := make(chan struct{})
	for _, p := range parsed {
		if indeg[p.path] == 0 {
			ready <- p
		}
	}
	var cwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				select {
				case p, ok := <-ready:
					if !ok {
						return
					}
					if err := l.check(p); err != nil {
						mu.Lock()
						if firstErr == nil {
							firstErr = err
							close(abort)
						}
						mu.Unlock()
						return
					}
					mu.Lock()
					done++
					for _, d := range dependents[p.path] {
						indeg[d.path]--
						if indeg[d.path] == 0 {
							ready <- d
						}
					}
					if done == len(parsed) {
						close(ready)
					}
					mu.Unlock()
				case <-abort:
					return
				}
			}
		}()
	}
	cwg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	pkgs := make([]*Package, 0, len(parsed))
	l.pkgsMu.RLock()
	for _, p := range parsed {
		pkgs = append(pkgs, l.pkgs[p.path])
	}
	l.pkgsMu.RUnlock()
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// checkAcyclic runs Kahn's algorithm over a copy of the indegree map:
// if some package is unreachable from the zero-indegree frontier the
// module import graph has a cycle, which would deadlock the scheduler.
func checkAcyclic(parsed []*parsedPkg, indeg map[string]int, dependents map[string][]*parsedPkg) error {
	left := make(map[string]int, len(indeg))
	for k, v := range indeg {
		left[k] = v
	}
	var frontier []string
	for _, p := range parsed {
		if left[p.path] == 0 {
			frontier = append(frontier, p.path)
		}
	}
	seen := 0
	for len(frontier) > 0 {
		path := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		seen++
		for _, d := range dependents[path] {
			left[d.path]--
			if left[d.path] == 0 {
				frontier = append(frontier, d.path)
			}
		}
	}
	if seen != len(parsed) {
		var stuck []string
		for _, p := range parsed {
			if left[p.path] > 0 {
				stuck = append(stuck, p.path)
			}
		}
		sort.Strings(stuck)
		return fmt.Errorf("analysis: import cycle among %s", strings.Join(stuck, ", "))
	}
	return nil
}

// LoadDir loads a single package directory (used by the fixture tests
// to type-check testdata packages the module walk skips). modRoot
// anchors module-internal imports inside the fixtures.
func LoadDir(modRoot, dir string) (*Package, error) {
	l, err := newLoader(modRoot)
	if err != nil {
		return nil, err
	}
	return l.loadDir(dir)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute package directory to its import path
// within the module.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module paths come from the package
// map (already checked, on the parallel path, because the scheduler
// orders dependencies first) or load recursively on the sequential
// path; everything else is stdlib and defers to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if pathIsIn(path, l.modPath) {
		l.pkgsMu.RLock()
		pkg, ok := l.pkgs[path]
		l.pkgsMu.RUnlock()
		if ok {
			return pkg.Types, nil
		}
		pkg, err := l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath))))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// parseDir parses one package directory's buildable Go files and
// records its module-internal imports for the scheduler.
func (l *loader) parseDir(dir string) (*parsedPkg, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and GOOS/GOARCH
		// file suffixes) the way the go tool would: tag-gated variants
		// like race_on.go/race_off.go must not both enter one package.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	p := &parsedPkg{dir: dir, path: path, files: files}
	depSet := make(map[string]bool)
	for _, f := range files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if pathIsIn(ip, l.modPath) && !depSet[ip] {
				depSet[ip] = true
				p.deps = append(p.deps, ip)
			}
		}
	}
	sort.Strings(p.deps)
	return p, nil
}

// check type-checks a parsed package and publishes it in the package
// map. On the parallel path every module-internal dependency is
// already in the map by scheduling order.
func (l *loader) check(p *parsedPkg) error {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(p.path, l.fset, p.files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-check %s: %w", p.path, err)
	}
	pkg := &Package{
		Path:  p.path,
		Dir:   p.dir,
		Fset:  l.fset,
		Files: p.files,
		Types: tpkg,
		Info:  info,
		Notes: NewAnnotations(l.fset, p.files),
	}
	l.pkgsMu.Lock()
	l.pkgs[p.path] = pkg
	l.pkgsMu.Unlock()
	return nil
}

// loadDir parses and type-checks one package directory, memoized by
// import path — the sequential path used by LoadDir and recursive
// fixture imports. It must only run single-goroutine (the loading
// cycle guard is unsynchronized by design).
func (l *loader) loadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	l.pkgsMu.RLock()
	pkg, ok := l.pkgs[path]
	l.pkgsMu.RUnlock()
	if ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	p, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if err := l.check(p); err != nil {
		return nil, err
	}
	l.pkgsMu.RLock()
	pkg = l.pkgs[path]
	l.pkgsMu.RUnlock()
	return pkg, nil
}
