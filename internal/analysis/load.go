package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// loader parses and type-checks module packages on demand. Imports of
// module-internal paths recurse through the loader; stdlib imports fall
// back to the source importer (the module has no external
// dependencies, so those two cases are exhaustive).
type loader struct {
	fset    *token.FileSet
	modPath string
	modRoot string
	std     types.Importer
	pkgs    map[string]*Package // completed module packages by import path
	loading map[string]bool     // import-cycle guard
}

func newLoader(modRoot string) (*loader, error) {
	modPath, err := modulePath(modRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modPath: modPath,
		modRoot: modRoot,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the directory containing go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from root's go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s/go.mod", root)
}

// LoadModule loads and type-checks every package in the module rooted
// at modRoot, skipping testdata and hidden directories. Packages come
// back sorted by import path.
func LoadModule(modRoot string) ([]*Package, error) {
	l, err := newLoader(modRoot)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single package directory (used by the fixture tests
// to type-check testdata packages the module walk skips). modRoot
// anchors module-internal imports inside the fixtures.
func LoadDir(modRoot, dir string) (*Package, error) {
	l, err := newLoader(modRoot)
	if err != nil {
		return nil, err
	}
	return l.loadDir(dir)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute package directory to its import path
// within the module.
func (l *loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.modRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modPath, nil
	}
	return l.modPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer: module paths load recursively,
// everything else is stdlib and defers to the source importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if pathIsIn(path, l.modPath) {
		pkg, err := l.loadDir(filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath))))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// loadDir parses and type-checks one package directory, memoized by
// import path.
func (l *loader) loadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Respect build constraints (//go:build lines and GOOS/GOARCH
		// file suffixes) the way the go tool would: tag-gated variants
		// like race_on.go/race_off.go must not both enter one package.
		if match, err := build.Default.MatchFile(dir, name); err != nil || !match {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
		Notes: NewAnnotations(l.fset, files),
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
