package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/stroke"

	"repro/internal/testutil/leak"
)

// TestServerGoldenAlphabet is the end-to-end golden test: one writer
// performs the full six-stroke alphabet S1…S6 in a single recording,
// streamed through the HTTP front end of a sharded service, and the
// decoded stroke sequence must come back exactly — covering the whole
// open → audio… → flush → close lifecycle in one pass.
func TestServerGoldenAlphabet(t *testing.T) {
	leak.Check(t)
	golden := stroke.Sequence(stroke.AllStrokes())
	sig := synthesizeSequence(t, golden, 5)

	sm, err := NewShardedManager(Config{MaxSessions: 8, Workers: 3, Prewarm: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()
	ts := httptest.NewServer(NewServer(sm).Handler())
	defer ts.Close()

	// Open.
	var opened struct {
		Session string `json:"session"`
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", nil, &opened); code != http.StatusOK {
		t.Fatalf("open status %d", code)
	}
	if opened.Session == "" {
		t.Fatal("open returned no session id")
	}

	// Audio, chunk by chunk.
	wire := EncodePCM16(sig.Samples)
	var got stroke.Sequence
	const chunkBytes = 2 * 8192
	for off := 0; off < len(wire); off += chunkBytes {
		end := min(off+chunkBytes, len(wire))
		var out audioResponse
		code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+opened.Session+"/audio", wire[off:end], &out)
		if code != http.StatusOK {
			t.Fatalf("audio status %d at offset %d", code, off)
		}
		for _, d := range out.Detections {
			seq, err := stroke.ParseSequenceKey(d.Stroke[1:])
			if err != nil {
				t.Fatalf("bad stroke %q: %v", d.Stroke, err)
			}
			got = append(got, seq...)
		}
	}

	// Flush.
	var fl flushResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+opened.Session+"/flush", nil, &fl); code != http.StatusOK {
		t.Fatalf("flush status %d", code)
	}
	for _, d := range fl.Detections {
		seq, err := stroke.ParseSequenceKey(d.Stroke[1:])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, seq...)
	}

	if !got.Equal(golden) {
		t.Errorf("served alphabet = %v, want %v", got, golden)
	}

	// Close, and the session is really gone.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+opened.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete status %d", resp.StatusCode)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+opened.Session+"/audio",
		bytes.Repeat([]byte{0}, 64), nil); code != http.StatusNotFound {
		t.Errorf("audio after close status %d, want 404", code)
	}

	// The aggregated statsz saw exactly this traffic.
	var st Stats
	sresp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.ActiveSessions != 0 {
		t.Errorf("statsz active sessions = %d, want 0", st.ActiveSessions)
	}
	if st.Detections != uint64(len(golden)) {
		t.Errorf("statsz detections = %d, want %d", st.Detections, len(golden))
	}
	if len(st.Shards) != 3 {
		t.Errorf("statsz shards = %d, want 3", len(st.Shards))
	}
}
