package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/audio"
	"repro/internal/pipeline"
	"repro/internal/stroke"

	"repro/internal/testutil/leak"
)

func postJSON(t *testing.T, client *http.Client, url string, body []byte, out any) int {
	t.Helper()
	resp, err := client.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestServerEndToEnd(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 4, Workers: 2, Prewarm: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	sig := synthesizeSequence(t, stroke.Sequence{stroke.S2, stroke.S3}, 9)
	// The wire quantizes to 16-bit PCM; the batch reference must see the
	// same quantized samples for exact equivalence.
	wire := EncodePCM16(sig.Samples)
	quantized := make([]float64, len(sig.Samples))
	for i := range quantized {
		quantized[i] = float64(int16(uint16(wire[2*i])|uint16(wire[2*i+1])<<8)) / 32768
	}
	eng, err := pipeline.NewEngine(pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Recognize(&audio.Signal{Samples: quantized, Rate: sig.Rate})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Sequence) == 0 {
		t.Fatal("batch reference found no strokes; test premise broken")
	}

	var opened struct {
		Session string `json:"session"`
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", nil, &opened); code != http.StatusOK {
		t.Fatalf("open status %d", code)
	}

	var got stroke.Sequence
	const chunkBytes = 2 * 4096
	for off := 0; off < len(wire); off += chunkBytes {
		end := min(off+chunkBytes, len(wire))
		var out audioResponse
		code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+opened.Session+"/audio", wire[off:end], &out)
		if code != http.StatusOK {
			t.Fatalf("audio status %d at offset %d", code, off)
		}
		for _, d := range out.Detections {
			seq, err := stroke.ParseSequenceKey(d.Stroke[1:])
			if err != nil {
				t.Fatalf("bad stroke %q: %v", d.Stroke, err)
			}
			got = append(got, seq...)
		}
	}
	var fl flushResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+opened.Session+"/flush", nil, &fl); code != http.StatusOK {
		t.Fatalf("flush status %d", code)
	}
	for _, d := range fl.Detections {
		seq, err := stroke.ParseSequenceKey(d.Stroke[1:])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, seq...)
	}
	if !got.Equal(rec.Sequence) {
		t.Errorf("served sequence %v, batch %v", got, rec.Sequence)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/"+opened.Session, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Errorf("delete status %d", resp.StatusCode)
	}

	// statsz reflects the traffic.
	var st Stats
	sresp, err := ts.Client().Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if st.ActiveSessions != 0 {
		t.Errorf("statsz active sessions = %d, want 0", st.ActiveSessions)
	}
	if st.Chunks == 0 || st.Detections != uint64(len(rec.Sequence)) {
		t.Errorf("statsz chunks %d detections %d, want >0 and %d", st.Chunks, st.Detections, len(rec.Sequence))
	}
}

func TestServerErrorMapping(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 1, Workers: 1, Prewarm: 1, MaxChunk: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	// Unknown session → 404.
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/nope/audio", make([]byte, 16), nil); code != http.StatusNotFound {
		t.Errorf("unknown session status %d, want 404", code)
	}
	// Session table full → 503.
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", nil, nil); code != http.StatusOK {
		t.Fatalf("open status %d", code)
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", nil, nil); code != http.StatusServiceUnavailable {
		t.Errorf("session-limit status %d, want 503", code)
	}

	var opened struct {
		Session string `json:"session"`
	}
	mgr2, err := NewManager(Config{MaxSessions: 2, Workers: 1, Prewarm: 1, MaxChunk: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Shutdown()
	ts2 := httptest.NewServer(NewServer(mgr2).Handler())
	defer ts2.Close()
	if code := postJSON(t, ts2.Client(), ts2.URL+"/v1/sessions", nil, &opened); code != http.StatusOK {
		t.Fatal("open failed")
	}
	audioURL := ts2.URL + "/v1/sessions/" + opened.Session + "/audio"
	// Odd byte count → 400.
	if code := postJSON(t, ts2.Client(), audioURL, make([]byte, 15), nil); code != http.StatusBadRequest {
		t.Errorf("odd-body status %d, want 400", code)
	}
	// Body over the chunk cap → 413.
	if code := postJSON(t, ts2.Client(), audioURL, make([]byte, 2*4096+2), nil); code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized status %d, want 413", code)
	}
}
