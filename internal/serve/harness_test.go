package serve

import (
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/testutil/leak"
)

// TestRunLoadInProcess exercises the whole serving stack the way
// cmd/ewload does: concurrent writers over HTTP against an in-process
// server, aggregated into a throughput/latency report.
func TestRunLoadInProcess(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 8, Workers: 2, QueueDepth: 16, Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	report, err := RunLoad(LoadConfig{
		BaseURL:      ts.URL,
		Writers:      4,
		Signals:      1,
		Word:         "on",
		ChunkSamples: 8192,
		Seed:         7,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)

	if report.Errors != 0 {
		t.Errorf("load run hit %d errors", report.Errors)
	}
	if report.ChunksSent == 0 || report.AudioSeconds <= 0 {
		t.Errorf("no traffic recorded: %+v", report)
	}
	// Every writer writes a real word, so strokes must be detected and
	// the latency quantiles populated and ordered.
	if report.Detections == 0 {
		t.Error("no detections under load")
	}
	c := report.ChunkLatencyMs
	if !(c.P50 > 0 && c.P50 <= c.P95 && c.P95 <= c.P99) {
		t.Errorf("chunk latency quantiles unordered: %+v", c)
	}
	s := report.StrokeLatencyMs
	if !(s.P50 > 0 && s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("stroke latency quantiles unordered: %+v", s)
	}
	if report.RealTimeFactor() <= 0 {
		t.Errorf("real-time factor = %g", report.RealTimeFactor())
	}

	// The server side saw the same traffic.
	st := mgr.Snapshot()
	if st.Chunks == 0 || st.ActiveSessions != 0 {
		t.Errorf("server snapshot %+v after load", st)
	}
	if report.Sessions != 4 {
		t.Errorf("single-pass run completed %d sessions, want one per writer", report.Sessions)
	}
}

// TestRunLoadReplaySoak drives the scenario-replay path: pre-recorded
// traces instead of synthesis, looped until a soak deadline. The replay
// must send exactly the recording's bytes (chunk math below) and the
// soak must complete more sessions than writers.
func TestRunLoadReplaySoak(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 8, Workers: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	// A short recording (quarter second) so each session pass is quick.
	rec := &audio.Signal{Rate: 44100, Samples: make([]float64, 11025)}
	for i := range rec.Samples {
		rec.Samples[i] = 0.1 * math.Sin(2*math.Pi*20000*float64(i)/44100)
	}
	report, err := RunLoad(LoadConfig{
		BaseURL:      ts.URL,
		Writers:      2,
		ChunkSamples: 4096,
		Client:       ts.Client(),
		Recordings:   []*audio.Signal{rec},
		Duration:     300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)
	if report.Errors != 0 {
		t.Errorf("soak hit %d errors", report.Errors)
	}
	if report.Sessions <= report.Writers {
		t.Errorf("soak completed %d sessions over %d writers; deadline loop never looped", report.Sessions, report.Writers)
	}
	chunksPerPass := (len(rec.Samples) + 4095) / 4096
	if report.ChunksSent != report.Sessions*chunksPerPass {
		t.Errorf("chunks sent %d, want %d sessions × %d chunks: replay did not send the recording verbatim",
			report.ChunksSent, report.Sessions, chunksPerPass)
	}
	if got, want := report.AudioSeconds, float64(report.Sessions)*rec.Duration(); math.Abs(got-want) > 1e-9 {
		t.Errorf("audio seconds %g, want %g", got, want)
	}
}
