package serve

import (
	"net/http/httptest"
	"testing"

	"repro/internal/testutil/leak"
)

// TestRunLoadInProcess exercises the whole serving stack the way
// cmd/ewload does: concurrent writers over HTTP against an in-process
// server, aggregated into a throughput/latency report.
func TestRunLoadInProcess(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 8, Workers: 2, QueueDepth: 16, Prewarm: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	report, err := RunLoad(LoadConfig{
		BaseURL:      ts.URL,
		Writers:      4,
		Signals:      1,
		Word:         "on",
		ChunkSamples: 8192,
		Seed:         7,
		Client:       ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", report)

	if report.Errors != 0 {
		t.Errorf("load run hit %d errors", report.Errors)
	}
	if report.ChunksSent == 0 || report.AudioSeconds <= 0 {
		t.Errorf("no traffic recorded: %+v", report)
	}
	// Every writer writes a real word, so strokes must be detected and
	// the latency quantiles populated and ordered.
	if report.Detections == 0 {
		t.Error("no detections under load")
	}
	c := report.ChunkLatencyMs
	if !(c.P50 > 0 && c.P50 <= c.P95 && c.P95 <= c.P99) {
		t.Errorf("chunk latency quantiles unordered: %+v", c)
	}
	s := report.StrokeLatencyMs
	if !(s.P50 > 0 && s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Errorf("stroke latency quantiles unordered: %+v", s)
	}
	if report.RealTimeFactor() <= 0 {
		t.Errorf("real-time factor = %g", report.RealTimeFactor())
	}

	// The server side saw the same traffic.
	st := mgr.Snapshot()
	if st.Chunks == 0 || st.ActiveSessions != 0 {
		t.Errorf("server snapshot %+v after load", st)
	}
}
