// Package stress is the adversarial test layer for the sharded serving
// stack: a race-enabled concurrent stress test with fault injection, a
// deterministic sharded-vs-single equivalence test, and shard
// routing/eviction/backpressure invariant tests.
//
// The suite has two gears: the default parameters keep `go test -race`
// inside the tier-1 budget; setting EW_STRESS=long (what `make stress`
// does) multiplies the goroutine and iteration counts for a sustained
// soak.
package stress

import (
	"errors"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/serve"

	"repro/internal/testutil/leak"
)

// scale returns short unless EW_STRESS=long, in which case long.
func scale(short, long int) int {
	if os.Getenv("EW_STRESS") == "long" {
		return long
	}
	return short
}

// TestStressShardedManagerUnderFire hammers one ShardedManager from
// hundreds of goroutines that open, feed, flush, close, double-close and
// misuse sessions while eviction sweeps and snapshots run concurrently.
// A fault-injection hook stalls ~1 % of jobs at the worker boundary to
// shake interleavings. The test passes when only documented error types
// surface and the final aggregate counters reconcile exactly with what
// the clients observed.
func TestStressShardedManagerUnderFire(t *testing.T) {
	leak.Check(t)
	var (
		writers = scale(48, 384)
		opsEach = scale(30, 200)
		shards  = 4
	)

	var hookRng sync.Mutex
	faultRng := rand.New(rand.NewSource(42))
	sm, err := serve.NewShardedManager(serve.Config{
		MaxSessions: writers, // headroom: sessions are short-lived
		Workers:     4 * shards,
		QueueDepth:  8 * shards,
		Prewarm:     shards,
		MaxChunk:    8192,
		JobStartHook: func(string) {
			hookRng.Lock()
			stall := faultRng.Intn(100) == 0
			hookRng.Unlock()
			if stall {
				runtime.Gosched() // fault point: yield mid-queue-drain
			}
		},
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	var (
		okFeeds    atomic.Uint64 // successful Feed jobs
		okFlushes  atomic.Uint64 // successful Flush jobs
		detections atomic.Uint64
		rejected   atomic.Uint64 // ErrBackpressure observed by clients
		unexpected = make(chan error, writers)
	)

	// A background antagonist: eviction sweeps and snapshot reads race
	// the writers (eviction finds nothing — no fake clock — but takes
	// every table lock; Snapshot walks all shards).
	stop := make(chan struct{})
	var antagonist sync.WaitGroup
	antagonist.Add(1)
	go func() {
		defer antagonist.Done()
		for {
			select {
			case <-stop:
				return
			default:
				sm.EvictIdle()
				_ = sm.Snapshot()
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w) + 1))
			chunk := make([]float64, 512)
			for i := range chunk {
				chunk[i] = rng.Float64()*2 - 1
			}
			for op := 0; op < opsEach; op++ {
				id, err := sm.Open()
				if err != nil {
					if errors.Is(err, serve.ErrSessionLimit) {
						continue // legitimate under full table
					}
					unexpected <- err
					return
				}
				feeds := 1 + rng.Intn(4)
				for f := 0; f < feeds; f++ {
					var dets []pipeline.Detection
					var err error
					switch rng.Intn(8) {
					case 0: // fault point: oversized chunk must bounce cleanly
						_, err = sm.Feed(id, make([]float64, 16384))
						if !errors.Is(err, pipeline.ErrOversizedChunk) {
							unexpected <- errors.New("oversized feed not rejected: " + errString(err))
							return
						}
						continue
					case 1: // fault point: empty chunk is legal
						dets, err = sm.Feed(id, nil)
					default:
						dets, err = sm.Feed(id, chunk)
					}
					switch {
					case err == nil:
						okFeeds.Add(1)
						detections.Add(uint64(len(dets)))
					case errors.Is(err, serve.ErrBackpressure):
						rejected.Add(1)
					default:
						unexpected <- err
						return
					}
				}
				if rng.Intn(3) == 0 {
					dets, _, err := sm.Flush(id)
					switch {
					case err == nil:
						okFlushes.Add(1)
						detections.Add(uint64(len(dets)))
					case errors.Is(err, serve.ErrBackpressure):
						rejected.Add(1)
					default:
						unexpected <- err
						return
					}
				}
				if err := sm.Close(id); err != nil {
					unexpected <- err
					return
				}
				// Fault points: use-after-close and double-close must be
				// deterministic typed errors, never a wedge or panic.
				if _, err := sm.Feed(id, chunk); !errors.Is(err, serve.ErrUnknownSession) {
					unexpected <- errors.New("feed after close: " + errString(err))
					return
				}
				if err := sm.Close(id); !errors.Is(err, serve.ErrUnknownSession) {
					unexpected <- errors.New("double close: " + errString(err))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	antagonist.Wait()
	close(unexpected)
	for err := range unexpected {
		t.Error(err)
	}

	st := sm.Snapshot()
	if st.ActiveSessions != 0 {
		t.Errorf("sessions leaked: %d active after all closed", st.ActiveSessions)
	}
	// Every successful job the clients saw is in the chunk counter, and
	// nothing else (chunks counts Feed and Flush jobs alike).
	if want := okFeeds.Load() + okFlushes.Load(); st.Chunks != want {
		t.Errorf("chunks processed = %d, want %d (feeds %d + flushes %d)",
			st.Chunks, want, okFeeds.Load(), okFlushes.Load())
	}
	if st.Detections != detections.Load() {
		t.Errorf("detections = %d, clients observed %d", st.Detections, detections.Load())
	}
	if st.Backpressure != rejected.Load() {
		t.Errorf("backpressure rejects = %d, clients observed %d", st.Backpressure, rejected.Load())
	}
	var shardChunks uint64
	for _, sh := range st.Shards {
		shardChunks += sh.Chunks
	}
	if shardChunks != st.Chunks {
		t.Errorf("per-shard chunks sum %d != aggregate %d", shardChunks, st.Chunks)
	}
}

func errString(err error) string {
	if err == nil {
		return "<nil>"
	}
	return err.Error()
}
