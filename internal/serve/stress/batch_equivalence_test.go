package stress

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/pipeline"
	"repro/internal/serve"

	"repro/internal/testutil/leak"
)

// feedTranscript streams one signal into a session and returns the full
// detection transcript — every Detection struct verbatim, including the
// per-template distance and likelihood vectors, so two services can be
// compared byte for byte rather than just by stroke label.
func feedTranscript(svc serve.Service, id string, samples []float64, chunk int) ([]pipeline.Detection, error) {
	var got []pipeline.Detection
	for off := 0; off < len(samples); off += chunk {
		end := min(off+chunk, len(samples))
		for {
			dets, err := svc.Feed(id, samples[off:end])
			if errors.Is(err, serve.ErrBackpressure) {
				continue
			}
			if err != nil {
				return nil, err
			}
			got = append(got, dets...)
			break
		}
	}
	for {
		dets, _, err := svc.Flush(id)
		if errors.Is(err, serve.ErrBackpressure) {
			continue
		}
		if err != nil {
			return nil, err
		}
		return append(got, dets...), nil
	}
}

// TestBatchedEquivalentToWorkers is the batching tentpole's determinism
// gate: with STFTBatch enabled, concurrent sessions multiplexed through
// the per-shard batch collectors must produce detection transcripts
// byte-identical to the per-worker path fed sequentially — batching,
// cycle boundaries, lane packing and collector interleavings must never
// leak into recognition results.
func TestBatchedEquivalentToWorkers(t *testing.T) {
	leak.Check(t)
	words := []string{"on", "to", "it"}
	signals := synthWords(t, words, 47)

	sessions := scale(10, 32)
	// Chunk sizes straddle the hop and frame sizes so cycles see zero,
	// one and several pending frames per session.
	chunkOf := func(i int) int { return []int{2048, 4096, 8192, 3001}[i%4] }

	// Reference: the per-worker path, fed sequentially.
	workers, err := serve.NewManager(serve.Config{
		MaxSessions: sessions, Workers: 2, QueueDepth: 64, Prewarm: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer workers.Shutdown()
	want := make([][]pipeline.Detection, sessions)
	for i := 0; i < sessions; i++ {
		id, err := workers.Open()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := feedTranscript(workers, id, signals[i%len(signals)].Samples, chunkOf(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(tr) == 0 {
			t.Fatalf("reference session %d produced no detections; premise broken", i)
		}
		want[i] = tr
		if err := workers.Close(id); err != nil {
			t.Fatal(err)
		}
	}

	// Batched: per-shard collectors, all sessions concurrent so cycles
	// actually multiplex frames from different sessions into one pass.
	sm, err := serve.NewShardedManager(serve.Config{
		MaxSessions: sessions, Workers: 8, QueueDepth: 64, Prewarm: 4,
		STFTBatch: 16,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := sm.Open()
			if err != nil {
				errCh <- err
				return
			}
			defer sm.Close(id)
			got, err := feedTranscript(sm, id, signals[i%len(signals)].Samples, chunkOf(i))
			if err != nil {
				errCh <- err
				return
			}
			if len(got) != len(want[i]) {
				errCh <- fmt.Errorf("session %s: batched emitted %d detections, workers %d",
					id, len(got), len(want[i]))
				return
			}
			for d := range got {
				if got[d] != want[i][d] {
					errCh <- fmt.Errorf("session %s detection %d differs:\nbatched: %+v\nworkers: %+v",
						id, d, got[d], want[i][d])
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := sm.Snapshot()
	if st.ActiveSessions != 0 {
		t.Errorf("sessions left open: %d", st.ActiveSessions)
	}
	if st.FeedErrors != 0 {
		t.Errorf("batched run recorded %d feed errors, want 0", st.FeedErrors)
	}
	var wantDets uint64
	for i := range want {
		wantDets += uint64(len(want[i]))
	}
	if st.Detections != wantDets {
		t.Errorf("aggregate detections = %d, want %d", st.Detections, wantDets)
	}
}
