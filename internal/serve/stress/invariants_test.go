package stress

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"

	"repro/internal/testutil/leak"
)

// TestShardBackpressureIsolation proves graceful per-shard degradation:
// with one shard's only worker wedged and its queue full, sessions on
// that shard get ErrBackpressure while sessions on every other shard
// keep feeding normally.
func TestShardBackpressureIsolation(t *testing.T) {
	leak.Check(t)
	const shards = 4
	victimGate := make(chan struct{})
	var victimID string
	var mu sync.Mutex

	sm, err := serve.NewShardedManager(serve.Config{
		MaxSessions: 8 * shards,
		Workers:     shards, // one worker per shard
		QueueDepth:  shards, // queue depth one per shard
		Prewarm:     1,
		JobStartHook: func(id string) {
			mu.Lock()
			wedge := id == victimID
			mu.Unlock()
			if wedge {
				<-victimGate // wedge the victim shard's worker
			}
		},
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	// Open sessions until we hold one on every shard.
	byShard := map[int]string{}
	for len(byShard) < shards {
		id, err := sm.Open()
		if err != nil {
			t.Fatal(err)
		}
		byShard[sm.ShardFor(id)] = id
	}
	victimShard := 0
	mu.Lock()
	victimID = byShard[victimShard]
	mu.Unlock()

	chunk := make([]float64, 256)
	// Job 1 wedges the victim shard's worker.
	wedged := make(chan error, 1)
	go func() {
		_, err := sm.Feed(byShard[victimShard], chunk)
		wedged <- err
	}()
	// Job 2 fills the shard's queue slot. It may need a few tries to
	// arrive after job 1 is actually holding the worker.
	queued := make(chan error, 1)
	go func() {
		for {
			_, err := sm.Feed(byShard[victimShard], chunk)
			if !errors.Is(err, serve.ErrBackpressure) {
				queued <- err
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait until the victim shard reports a full queue.
	deadline := time.After(10 * time.Second)
	for {
		st := sm.Snapshot()
		if st.Shards[victimShard].QueueLen == st.Shards[victimShard].QueueCap &&
			st.Shards[victimShard].QueueCap > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("victim shard queue never filled")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// The victim shard now sheds load…
	if _, err := sm.Feed(byShard[victimShard], chunk); !errors.Is(err, serve.ErrBackpressure) {
		t.Fatalf("wedged shard feed error = %v, want ErrBackpressure", err)
	}
	// …while every other shard still serves.
	for sh, id := range byShard {
		if sh == victimShard {
			continue
		}
		if _, err := sm.Feed(id, chunk); err != nil {
			t.Errorf("healthy shard %d degraded by wedged shard: %v", sh, err)
		}
	}

	st := sm.Snapshot()
	if st.Shards[victimShard].Backpressure == 0 {
		t.Error("victim shard recorded no backpressure")
	}
	for sh := range byShard {
		if sh != victimShard && st.Shards[sh].Backpressure != 0 {
			t.Errorf("healthy shard %d recorded backpressure %d", sh, st.Shards[sh].Backpressure)
		}
	}

	mu.Lock()
	victimID = "" // un-arm before releasing, so cleanup can't re-wedge
	mu.Unlock()
	close(victimGate)
	if err := <-wedged; err != nil {
		t.Errorf("wedged feed failed after release: %v", err)
	}
	if err := <-queued; err != nil {
		t.Errorf("queued feed failed after release: %v", err)
	}
}

// TestShardRebalanceAfterEviction: sessions evicted from a full shard
// free exactly that shard's capacity; reopening lands new sessions
// without disturbing survivors, and routing stays consistent throughout.
func TestShardRebalanceAfterEviction(t *testing.T) {
	leak.Check(t)
	now := time.Unix(5000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time { clockMu.Lock(); defer clockMu.Unlock(); return now }
	advance := func(d time.Duration) { clockMu.Lock(); now = now.Add(d); clockMu.Unlock() }

	const shards = 4
	sm, err := serve.NewShardedManager(serve.Config{
		MaxSessions: 8 * shards,
		Workers:     shards,
		Prewarm:     1,
		IdleTimeout: time.Minute,
		Clock:       clock,
	}, shards)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	// Fill the service, tracking shard membership.
	var ids []string
	perShard := map[int]int{}
	for {
		id, err := sm.Open()
		if err != nil {
			if !errors.Is(err, serve.ErrSessionLimit) {
				t.Fatal(err)
			}
			break
		}
		ids = append(ids, id)
		perShard[sm.ShardFor(id)]++
	}
	if len(ids) < 8*shards/2 {
		t.Fatalf("opened only %d sessions at capacity %d", len(ids), 8*shards)
	}

	// Keep every third session fresh; let the rest go idle.
	advance(45 * time.Second)
	var fresh, stale []string
	for i, id := range ids {
		if i%3 == 0 {
			if _, err := sm.Feed(id, make([]float64, 64)); err != nil {
				t.Fatal(err)
			}
			fresh = append(fresh, id)
		} else {
			stale = append(stale, id)
		}
	}
	advance(30 * time.Second)

	if n := sm.EvictIdle(); n != len(stale) {
		t.Fatalf("evicted %d, want %d", n, len(stale))
	}
	st := sm.Snapshot()
	if st.ActiveSessions != len(fresh) {
		t.Fatalf("active = %d after eviction, want %d", st.ActiveSessions, len(fresh))
	}
	// Per-shard actives must reflect exactly the fresh survivors' hashes.
	wantPerShard := map[int]int{}
	for _, id := range fresh {
		wantPerShard[sm.ShardFor(id)]++
	}
	for sh, s := range st.Shards {
		if s.ActiveSessions != wantPerShard[sh] {
			t.Errorf("shard %d active = %d, want %d", sh, s.ActiveSessions, wantPerShard[sh])
		}
	}

	// Freed capacity is reusable and routing of survivors is intact.
	reopened := 0
	for i := 0; i < len(stale); i++ {
		if _, err := sm.Open(); err != nil {
			break
		}
		reopened++
	}
	if reopened < len(stale)/2 {
		t.Errorf("reopened only %d of %d evicted slots", reopened, len(stale))
	}
	for _, id := range fresh {
		if _, err := sm.Feed(id, make([]float64, 64)); err != nil {
			t.Errorf("survivor %q lost after rebalance: %v", id, err)
		}
	}
}
