package stress

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/capture"
	"repro/internal/participant"
	"repro/internal/serve"
	"repro/internal/stroke"

	"repro/internal/testutil/leak"
)

// synthWords renders n distinct recordings the way cmd/ewload does.
func synthWords(t *testing.T, words []string, seed uint64) []*audio.Signal {
	t.Helper()
	roster := participant.SixParticipants()
	out := make([]*audio.Signal, len(words))
	for i, w := range words {
		sess := participant.NewSession(roster[i%len(roster)], seed+uint64(i))
		rec, err := capture.PerformWord(sess, stroke.DefaultScheme(), w,
			acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom),
			seed+uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		out[i] = rec.Signal
	}
	return out
}

// feedAll streams one signal into a session with the given chunk size,
// retrying on backpressure so the audio stays contiguous, and returns
// the stroke sequence the service emitted.
func feedAll(svc serve.Service, id string, sig *audio.Signal, chunk int) (stroke.Sequence, error) {
	var got stroke.Sequence
	for off := 0; off < len(sig.Samples); off += chunk {
		end := min(off+chunk, len(sig.Samples))
		for {
			dets, err := svc.Feed(id, sig.Samples[off:end])
			if errors.Is(err, serve.ErrBackpressure) {
				continue
			}
			if err != nil {
				return nil, err
			}
			for _, d := range dets {
				got = append(got, d.Stroke)
			}
			break
		}
	}
	for {
		dets, _, err := svc.Flush(id)
		if errors.Is(err, serve.ErrBackpressure) {
			continue
		}
		if err != nil {
			return nil, err
		}
		for _, d := range dets {
			got = append(got, d.Stroke)
		}
		return got, nil
	}
}

// TestShardedEquivalentToSingleShard is the tentpole's determinism
// guarantee: for the same per-session audio, a hash-sharded manager
// driven by concurrent clients produces exactly the stroke outputs a
// single-shard manager produces sequentially — sharding, queue order and
// goroutine interleaving must never leak into recognition results.
func TestShardedEquivalentToSingleShard(t *testing.T) {
	leak.Check(t)
	words := []string{"on", "to", "it"}
	signals := synthWords(t, words, 31)

	sessions := scale(12, 48)
	// Per-session chunk sizes vary, so each run covers several distinct
	// interleavings of frame completion against the shared queues.
	chunkOf := func(i int) int { return []int{2048, 4096, 8192, 3001}[i%4] }

	// Single-shard reference, fed sequentially.
	single, err := serve.NewManager(serve.Config{
		MaxSessions: sessions, Workers: 2, QueueDepth: 64, Prewarm: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Shutdown()
	want := make([]stroke.Sequence, sessions)
	for i := 0; i < sessions; i++ {
		id, err := single.Open()
		if err != nil {
			t.Fatal(err)
		}
		seq, err := feedAll(single, id, signals[i%len(signals)], chunkOf(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) == 0 {
			t.Fatalf("reference session %d produced no strokes; premise broken", i)
		}
		want[i] = seq
		if err := single.Close(id); err != nil {
			t.Fatal(err)
		}
	}

	// Sharded, all sessions concurrent.
	sm, err := serve.NewShardedManager(serve.Config{
		MaxSessions: sessions, Workers: 8, QueueDepth: 64, Prewarm: 4,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id, err := sm.Open()
			if err != nil {
				errCh <- err
				return
			}
			defer sm.Close(id)
			got, err := feedAll(sm, id, signals[i%len(signals)], chunkOf(i))
			if err != nil {
				errCh <- err
				return
			}
			if !got.Equal(want[i]) {
				errCh <- errors.New("session " + id + ": sharded " + got.String() +
					", single-shard " + want[i].String())
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := sm.Snapshot()
	if st.ActiveSessions != 0 {
		t.Errorf("sessions left open: %d", st.ActiveSessions)
	}
	var wantDets int
	for i := 0; i < sessions; i++ {
		wantDets += len(want[i])
	}
	if st.Detections != uint64(wantDets) {
		t.Errorf("aggregate detections = %d, want %d", st.Detections, wantDets)
	}
}
