package stress

import (
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/stroke"

	"repro/internal/testutil/leak"
)

// streamAll drives one /v1/stream connection end to end — chunked
// sends, flush, close command — and returns the stroke sequence the
// server pushed incrementally.
func streamAll(baseURL string, samples []float64, chunk int) (stroke.Sequence, error) {
	sc, err := serve.DialStream(baseURL, "", 10*time.Second)
	if err != nil {
		return nil, err
	}
	var got stroke.Sequence
	collect := func(dets []serve.DetectionJSON) error {
		for _, d := range dets {
			seq, err := stroke.ParseSequenceKey(d.Stroke[1:])
			if err != nil {
				return err
			}
			got = append(got, seq...)
		}
		return nil
	}
	for off := 0; off < len(samples); off += chunk {
		end := min(off+chunk, len(samples))
		dets, err := sc.SendChunk(serve.EncodePCM16(samples[off:end]))
		if err != nil {
			sc.Abort()
			return nil, err
		}
		if err := collect(dets); err != nil {
			sc.Abort()
			return nil, err
		}
	}
	dets, _, err := sc.Flush()
	if err != nil {
		sc.Abort()
		return nil, err
	}
	if err := collect(dets); err != nil {
		sc.Abort()
		return nil, err
	}
	return got, sc.Close()
}

// TestStreamShardedEquivalentToSingleShard extends the determinism
// guarantee to the WebSocket ingest path: concurrent /v1/stream
// writers against a sharded service must reproduce, stroke for stroke,
// what a single-shard manager fed sequentially through the Go API
// produces — transport, sharding and interleaving never leak into
// recognition results.
func TestStreamShardedEquivalentToSingleShard(t *testing.T) {
	leak.Check(t)
	words := []string{"on", "it"}
	signals := synthWords(t, words, 47)

	sessions := scale(8, 32)
	chunkOf := func(i int) int { return []int{2048, 4096, 8192, 3001}[i%4] }

	// Single-shard reference, fed sequentially through the Go API.
	single, err := serve.NewManager(serve.Config{
		MaxSessions: sessions, Workers: 2, QueueDepth: 64, Prewarm: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer single.Shutdown()
	want := make([]stroke.Sequence, sessions)
	for i := 0; i < sessions; i++ {
		id, err := single.Open()
		if err != nil {
			t.Fatal(err)
		}
		seq, err := feedAll(single, id, signals[i%len(signals)], chunkOf(i))
		if err != nil {
			t.Fatal(err)
		}
		if len(seq) == 0 {
			t.Fatalf("reference session %d produced no strokes; premise broken", i)
		}
		want[i] = seq
		if err := single.Close(id); err != nil {
			t.Fatal(err)
		}
	}

	// Sharded service behind the HTTP front end, all writers streaming
	// concurrently over WebSockets.
	sm, err := serve.NewShardedManager(serve.Config{
		MaxSessions: sessions, Workers: 8, QueueDepth: 64, Prewarm: 4,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()
	ts := httptest.NewServer(serve.NewServer(sm).Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sig := signals[i%len(signals)]
			got, err := streamAll(ts.URL, sig.Samples, chunkOf(i))
			if err != nil {
				errCh <- err
				return
			}
			if !got.Equal(want[i]) {
				errCh <- errors.New("stream writer " + got.String() +
					" != single-shard reference " + want[i].String())
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Every connection-owned session was reclaimed by its close command.
	if st := sm.Snapshot(); st.ActiveSessions != 0 {
		t.Errorf("sessions left open after stream closes: %d", st.ActiveSessions)
	}
}
