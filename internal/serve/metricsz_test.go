package serve

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"repro/internal/infer"
	"repro/internal/metrics/expose"
	"repro/internal/pipeline"
	"repro/internal/stroke"

	"repro/internal/testutil/leak"
)

// scrape fetches a server path and returns status, content type, body.
func scrape(t *testing.T, base, path string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestMetricszGoldenZeroTraffic pins the full exposition — metric
// names, HELP/TYPE ordering, label rendering, histogram bucket layout
// with the +Inf bucket — byte for byte against testdata, for both a
// single manager and a sharded one.
func TestMetricszGoldenZeroTraffic(t *testing.T) {
	leak.Check(t)
	cases := []struct {
		name   string
		golden string
		mk     func(t *testing.T) Service
	}{
		{"single", "testdata/metricsz_single_zero.txt", func(t *testing.T) Service {
			mgr, err := NewManager(Config{MaxSessions: 4, Workers: 2, Prewarm: 1})
			if err != nil {
				t.Fatal(err)
			}
			return mgr
		}},
		{"sharded", "testdata/metricsz_sharded_zero.txt", func(t *testing.T) Service {
			sm, err := NewShardedManager(Config{MaxSessions: 4, Workers: 2, QueueDepth: 8, Prewarm: 2}, 2)
			if err != nil {
				t.Fatal(err)
			}
			return sm
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want, err := os.ReadFile(c.golden)
			if err != nil {
				t.Fatal(err)
			}
			svc := c.mk(t)
			defer svc.Shutdown()
			ts := httptest.NewServer(NewServer(svc).Handler())
			defer ts.Close()
			status, ct, body := scrape(t, ts.URL, "/metricsz")
			if status != http.StatusOK {
				t.Fatalf("/metricsz status = %d", status)
			}
			if ct != metricsContentType {
				t.Errorf("content type = %q, want %q", ct, metricsContentType)
			}
			if body != string(want) {
				t.Errorf("exposition differs from %s:\n--- got ---\n%s", c.golden, body)
			}
			// The golden must itself satisfy the strict parser, including
			// histogram cumulativity.
			if _, err := expose.Parse(strings.NewReader(body)); err != nil {
				t.Errorf("golden exposition does not parse: %v", err)
			}
		})
	}
}

// TestMetricszSmoke is the CI smoke gate (`make metricsz-smoke`): boot
// a sharded service, drive real audio through it, then strictly parse
// the exposition and cross-check every counter family against /statsz.
func TestMetricszSmoke(t *testing.T) {
	leak.Check(t)
	sm, err := NewShardedManager(Config{MaxSessions: 8, Workers: 2, QueueDepth: 64, Prewarm: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()
	ts := httptest.NewServer(NewServer(sm).Handler())
	defer ts.Close()

	// Real traffic on two sessions, then quiesce before scraping so the
	// two endpoints see identical counters.
	sig := synthesizeSequence(t, stroke.Sequence{stroke.S2, stroke.S3}, 9)
	for i := 0; i < 2; i++ {
		id, err := sm.Open()
		if err != nil {
			t.Fatal(err)
		}
		feedAll(t, sm, id, sig.Samples)
		if _, _, err := sm.Flush(id); err != nil {
			t.Fatal(err)
		}
	}

	status, _, body := scrape(t, ts.URL, "/metricsz")
	if status != http.StatusOK {
		t.Fatalf("/metricsz status = %d", status)
	}
	fams, err := expose.Parse(strings.NewReader(body))
	if err != nil {
		t.Fatalf("strict parse: %v", err)
	}
	byName := make(map[string]*expose.Family, len(fams))
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}

	st := sm.Snapshot()
	sumShards := func(family string) float64 {
		f := byName[family]
		if f == nil {
			t.Fatalf("family %s missing from exposition", family)
		}
		if len(f.Samples) != sm.NumShards() {
			t.Errorf("family %s has %d samples, want one per shard (%d)", family, len(f.Samples), sm.NumShards())
		}
		total := 0.0
		for _, s := range f.Samples {
			total += s.Value
		}
		return total
	}
	for _, c := range []struct {
		family string
		want   float64
	}{
		{"echowrite_active_sessions", float64(st.ActiveSessions)},
		{"echowrite_queue_len", float64(st.QueueLen)},
		{"echowrite_queue_cap", float64(st.QueueCap)},
		{"echowrite_chunks_total", float64(st.Chunks)},
		{"echowrite_detections_total", float64(st.Detections)},
		{"echowrite_backpressure_rejects_total", float64(st.Backpressure)},
		{"echowrite_idle_evictions_total", float64(st.Evictions)},
	} {
		if got := sumShards(c.family); got != c.want {
			t.Errorf("%s summed over shards = %g, /statsz says %g", c.family, got, c.want)
		}
	}
	if st.Chunks == 0 || st.Detections == 0 {
		t.Fatalf("smoke drove no traffic (chunks=%d detections=%d); test premise broken", st.Chunks, st.Detections)
	}

	single := func(family string) float64 {
		f := byName[family]
		if f == nil {
			t.Fatalf("family %s missing from exposition", family)
		}
		if len(f.Samples) != 1 {
			t.Fatalf("family %s has %d samples, want 1", family, len(f.Samples))
		}
		return f.Samples[0].Value
	}
	if got := single("echowrite_max_sessions"); got != float64(st.MaxSessions) {
		t.Errorf("max_sessions = %g, /statsz says %d", got, st.MaxSessions)
	}
	if got := single("echowrite_workers"); got != float64(st.Workers) {
		t.Errorf("workers = %g, /statsz says %d", got, st.Workers)
	}
	if got := single("echowrite_engine_pool_created_total"); got != float64(st.Pool.Created) {
		t.Errorf("pool created = %g, /statsz says %d", got, st.Pool.Created)
	}
	if got := single("echowrite_engine_pool_reused_total"); got != float64(st.Pool.Reused) {
		t.Errorf("pool reused = %g, /statsz says %d", got, st.Pool.Reused)
	}
	if got := single("echowrite_strokes_total"); got != float64(st.PerStroke.Strokes) {
		t.Errorf("strokes_total = %g, /statsz says %d", got, st.PerStroke.Strokes)
	}

	// The per-stage counters must cover the same stages /statsz reports.
	stages := byName["echowrite_stage_seconds_total"]
	if stages == nil {
		t.Fatal("echowrite_stage_seconds_total missing")
	}
	for _, stage := range []string{"stft", "enhancement", "profile", "segmentation", "dtw"} {
		if stages.Sample("echowrite_stage_seconds_total", expose.Label{Name: "stage", Value: stage}) == nil {
			t.Errorf("stage %s missing from echowrite_stage_seconds_total", stage)
		}
	}

	// Every processed chunk records one histogram observation, per shard.
	hist := byName["echowrite_feed_latency_milliseconds"]
	if hist == nil {
		t.Fatal("feed-latency histogram missing")
	}
	var histCount float64
	for shard := 0; shard < sm.NumShards(); shard++ {
		s := hist.Sample("echowrite_feed_latency_milliseconds_count",
			expose.Label{Name: "shard", Value: strconv.Itoa(shard)})
		if s == nil {
			t.Fatalf("histogram _count missing for shard %d", shard)
		}
		histCount += s.Value
	}
	if histCount != float64(st.Chunks) {
		t.Errorf("histogram observations = %g, chunks processed = %d", histCount, st.Chunks)
	}
}

// feedAll streams samples through Feed in pipeline-sized chunks,
// retrying on backpressure (the queue is sized to make that rare).
func feedAll(t *testing.T, svc Service, id string, samples []float64) {
	t.Helper()
	const chunk = 4096
	for off := 0; off < len(samples); off += chunk {
		end := min(off+chunk, len(samples))
		for {
			_, err := svc.Feed(id, samples[off:end])
			if err == nil {
				break
			}
			if !errors.Is(err, ErrBackpressure) {
				t.Fatal(err)
			}
		}
	}
}

// onlyService hides the manager's metrics surface, modeling an embedder
// that wraps the Service interface with middleware.
type onlyService struct{ s Service }

func (o onlyService) Open() (string, error) { return o.s.Open() }
func (o onlyService) Feed(id string, chunk []float64) ([]pipeline.Detection, error) {
	return o.s.Feed(id, chunk)
}
func (o onlyService) Flush(id string) ([]pipeline.Detection, []infer.Candidate, error) {
	return o.s.Flush(id)
}
func (o onlyService) Close(id string) error { return o.s.Close(id) }
func (o onlyService) EvictIdle() int        { return o.s.EvictIdle() }
func (o onlyService) Snapshot() Stats       { return o.s.Snapshot() }
func (o onlyService) MaxChunk() int         { return o.s.MaxChunk() }
func (o onlyService) Shutdown()             { o.s.Shutdown() }

// TestMetricszForeignService checks the documented fallback: a Service
// that is not one of the package's managers still serves /statsz but
// 404s /metricsz instead of exposing a half-built registry.
func TestMetricszForeignService(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 2, Workers: 1, Prewarm: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(onlyService{s: mgr}).Handler())
	defer ts.Close()
	if status, _, _ := scrape(t, ts.URL, "/metricsz"); status != http.StatusNotFound {
		t.Errorf("/metricsz on foreign service = %d, want 404", status)
	}
	if status, _, _ := scrape(t, ts.URL, "/statsz"); status != http.StatusOK {
		t.Errorf("/statsz on foreign service = %d, want 200", status)
	}
}
