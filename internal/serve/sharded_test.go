package serve

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/testutil/leak"
)

// TestShardedRoutingStable: every operation on an ID must land on the
// same shard, so a session opened through the sharded front door is
// reachable for its whole lifecycle.
func TestShardedRoutingStable(t *testing.T) {
	leak.Check(t)
	sm, err := NewShardedManager(Config{MaxSessions: 64, Workers: 4, Prewarm: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	ids := make([]string, 0, 16)
	for i := 0; i < 16; i++ {
		id, err := sm.Open()
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate session id %q across shards", id)
		}
		seen[id] = true
		// The owning shard (and only it) knows the session.
		owner := sm.ShardFor(id)
		for i, m := range sm.shards {
			_, err := m.lookup(id)
			if i == owner && err != nil {
				t.Errorf("owning shard %d does not know %q: %v", i, id, err)
			}
			if i != owner && !errors.Is(err, ErrUnknownSession) {
				t.Errorf("shard %d unexpectedly knows %q", i, id)
			}
		}
		if _, err := sm.Feed(id, make([]float64, 256)); err != nil {
			t.Errorf("feed %q: %v", id, err)
		}
	}

	st := sm.Snapshot()
	if st.ActiveSessions != 16 {
		t.Errorf("aggregated active sessions = %d, want 16", st.ActiveSessions)
	}
	if len(st.Shards) != 4 {
		t.Fatalf("snapshot shards = %d, want 4", len(st.Shards))
	}
	sum := 0
	for _, sh := range st.Shards {
		sum += sh.ActiveSessions
	}
	if sum != 16 {
		t.Errorf("per-shard active sessions sum to %d, want 16", sum)
	}
	if st.Chunks != 16 {
		t.Errorf("aggregated chunks = %d, want 16", st.Chunks)
	}
	if st.FeedLatencyMs.P50 <= 0 {
		t.Errorf("merged latency quantiles empty: %+v", st.FeedLatencyMs)
	}

	for _, id := range ids {
		if err := sm.Close(id); err != nil {
			t.Errorf("close %q: %v", id, err)
		}
		if err := sm.Close(id); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("double close error = %v, want ErrUnknownSession", err)
		}
	}
	if st := sm.Snapshot(); st.ActiveSessions != 0 {
		t.Errorf("sessions left after close: %d", st.ActiveSessions)
	}
}

// TestShardedOpenRetriesFullShard: a single full shard must not refuse
// the whole service while other shards have room.
func TestShardedOpenRetriesFullShard(t *testing.T) {
	leak.Check(t)
	// 4 shards × 2 sessions each. IdleTimeout <0 disables eviction so a
	// full shard stays full.
	sm, err := NewShardedManager(Config{
		MaxSessions: 8, Workers: 4, Prewarm: 1, IdleTimeout: -1,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	opened := 0
	for {
		_, err := sm.Open()
		if err != nil {
			if !errors.Is(err, ErrSessionLimit) {
				t.Fatalf("open error = %v, want ErrSessionLimit", err)
			}
			break
		}
		opened++
		if opened > 8 {
			t.Fatal("opened more sessions than the service-wide bound")
		}
	}
	// Hash skew can fill one shard before the global total is reached,
	// but the retry loop must get well past a single shard's capacity.
	if opened < 5 {
		t.Errorf("opened only %d sessions before limit; retry across shards broken", opened)
	}
}

// TestShardedEvictionPerShard: idle eviction sweeps every shard and the
// per-shard counters sum to the aggregate.
func TestShardedEvictionPerShard(t *testing.T) {
	leak.Check(t)
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }

	sm, err := NewShardedManager(Config{
		MaxSessions: 32, Workers: 4, Prewarm: 1,
		IdleTimeout: time.Minute, Clock: clock,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()

	var stale, fresh []string
	for i := 0; i < 6; i++ {
		id, err := sm.Open()
		if err != nil {
			t.Fatal(err)
		}
		stale = append(stale, id)
	}
	mu.Lock()
	now = now.Add(45 * time.Second)
	mu.Unlock()
	for i := 0; i < 3; i++ {
		id, err := sm.Open()
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, id)
	}
	mu.Lock()
	now = now.Add(30 * time.Second) // stale 75 s idle, fresh 30 s
	mu.Unlock()

	if n := sm.EvictIdle(); n != len(stale) {
		t.Fatalf("evicted %d, want %d", n, len(stale))
	}
	for _, id := range stale {
		if _, err := sm.Feed(id, make([]float64, 64)); !errors.Is(err, ErrUnknownSession) {
			t.Errorf("stale %q still alive: %v", id, err)
		}
	}
	for _, id := range fresh {
		if _, err := sm.Feed(id, make([]float64, 64)); err != nil {
			t.Errorf("fresh %q evicted: %v", id, err)
		}
	}
	st := sm.Snapshot()
	var perShard uint64
	for _, sh := range st.Shards {
		perShard += sh.Evictions
	}
	if st.Evictions != uint64(len(stale)) || perShard != st.Evictions {
		t.Errorf("evictions aggregate %d, per-shard sum %d, want %d",
			st.Evictions, perShard, len(stale))
	}
}

func TestShardedShutdown(t *testing.T) {
	leak.Check(t)
	sm, err := NewShardedManager(Config{MaxSessions: 8, Workers: 2, Prewarm: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	id, err := sm.Open()
	if err != nil {
		t.Fatal(err)
	}
	sm.Shutdown()
	sm.Shutdown() // idempotent per shard
	if _, err := sm.Open(); !errors.Is(err, ErrClosed) {
		t.Errorf("open after shutdown error = %v, want ErrClosed", err)
	}
	if _, err := sm.Feed(id, make([]float64, 8)); !errors.Is(err, ErrClosed) {
		t.Errorf("feed after shutdown error = %v, want ErrClosed", err)
	}
}

// TestShardedStatszZeroTraffic is the NaN regression gate: with no
// traffic every shard's latency reservoir is empty, quantiles are NaN
// before sanitization, and encoding/json aborts on NaN — a regression
// in the summarizeFeedLatency choke point surfaces here as truncated
// /statsz JSON. The decoder runs strict so a half-written body fails.
func TestShardedStatszZeroTraffic(t *testing.T) {
	leak.Check(t)
	sm, err := NewShardedManager(Config{MaxSessions: 8, Workers: 2, Prewarm: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()
	ts := httptest.NewServer(NewServer(sm).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statsz status = %d", resp.StatusCode)
	}
	var st Stats
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&st); err != nil {
		t.Fatalf("zero-traffic /statsz is not valid JSON: %v", err)
	}
	if st.FeedLatencyMs.P50 != 0 || st.FeedLatencyMs.P95 != 0 || st.FeedLatencyMs.P99 != 0 {
		t.Errorf("zero-traffic quantiles = %+v, want zeros", st.FeedLatencyMs)
	}
	if len(st.Shards) != 4 {
		t.Errorf("shards = %d, want 4", len(st.Shards))
	}

	// The direct (non-HTTP) snapshot must be encodable too — embedders
	// serialize it themselves.
	if err := json.NewEncoder(io.Discard).Encode(sm.Snapshot()); err != nil {
		t.Errorf("Snapshot not JSON-encodable: %v", err)
	}
}
