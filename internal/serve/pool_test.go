package serve

import (
	"testing"

	"repro/internal/pipeline"

	"repro/internal/testutil/leak"
)

func TestEnginePoolPrewarmAndReuse(t *testing.T) {
	leak.Check(t)
	pool, err := NewEnginePool(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Created != 2 || st.Free != 2 {
		t.Fatalf("after prewarm stats = %+v, want Created 2 Free 2", st)
	}

	a, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("pool handed out the same stream twice")
	}
	if st := pool.Stats(); st.Created != 2 || st.Free != 0 {
		t.Fatalf("after two gets stats = %+v, want Created 2 Free 0", st)
	}

	// Draining the free list builds a fresh engine instead of blocking.
	c, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if st := pool.Stats(); st.Created != 3 {
		t.Fatalf("cold get did not build: stats = %+v", st)
	}

	// Dirty a stream, return it, and check the next checkout gets it back
	// reset (LIFO) without building engine #4.
	if _, err := a.Feed(make([]float64, 9000)); err != nil {
		t.Fatal(err)
	}
	if a.FramesSeen() == 0 {
		t.Fatal("feed produced no frames; test premise broken")
	}
	pool.Put(a)
	got, err := pool.Get()
	if err != nil {
		t.Fatal(err)
	}
	if got != a {
		t.Error("free list is not LIFO: expected the just-returned stream")
	}
	if got.FramesSeen() != 0 {
		t.Errorf("checked-out stream not reset: FramesSeen = %d", got.FramesSeen())
	}
	if st := pool.Stats(); st.Created != 3 {
		t.Errorf("reuse built a new engine: stats = %+v", st)
	}

	pool.Put(b)
	pool.Put(c)
	pool.Put(nil) // must be a no-op
	if st := pool.Stats(); st.Free != 2 {
		t.Errorf("final stats = %+v, want Free 2", st)
	}
}

func TestEnginePoolCustomFactory(t *testing.T) {
	leak.Check(t)
	calls := 0
	factory := func() (*pipeline.Engine, error) {
		calls++
		return pipeline.NewEngine(pipeline.DefaultConfig())
	}
	pool, err := NewEnginePool(factory, 3)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("factory called %d times during prewarm, want 3", calls)
	}
	if _, err := pool.Get(); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("warm get invoked the factory (calls = %d)", calls)
	}
}
