package serve

import (
	"errors"
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"repro/internal/infer"
	"repro/internal/metrics/expose"
	"repro/internal/pipeline"
	ewruntime "repro/internal/runtime"
)

// ShardedManager hash-partitions sessions by session ID across N
// independent Manager shards. Each shard owns its own session table, job
// queue, worker pool and EnginePool, so no mutex or channel is shared
// between sessions on different shards — the single Manager's global
// queue/lock disappears from every hot path. Backpressure and idle
// eviction are per-shard: a hot shard 429s its own sessions while the
// rest of the service keeps serving.
//
// Session IDs are minted centrally from an atomic counter and routed by
// FNV-1a hash, so any holder of an ID (HTTP handlers, load generators)
// reaches the owning shard without a routing table. Sequential counter
// values hash near-uniformly, which keeps shards balanced.
type ShardedManager struct {
	shards []*Manager
	nextID atomic.Uint64
}

// ShardFor returns the index of the shard that owns (or would own) a
// session ID. Exposed for the stress/invariant test layer.
func (sm *ShardedManager) ShardFor(id string) int {
	return shardIndex(id, len(sm.shards))
}

// NumShards reports the shard count.
func (sm *ShardedManager) NumShards() int { return len(sm.shards) }

// shardIndex is FNV-1a over the ID, reduced mod n.
func shardIndex(id string, n int) int {
	h := uint32(2166136261)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= 16777619
	}
	return int(h % uint32(n))
}

// NewShardedManager splits cfg's totals across shards and starts them.
// shards <= 0 defaults to GOMAXPROCS. The config's MaxSessions, Workers,
// QueueDepth and Prewarm are service-wide totals, divided per shard (at
// least one each); under hash skew a single shard may therefore fill
// slightly before the service-wide session total is reached.
func NewShardedManager(cfg Config, shards int) (*ShardedManager, error) {
	if shards <= 0 {
		shards = stdruntime.GOMAXPROCS(0)
	}
	cfg = cfg.withDefaults() // resolve totals before dividing
	per := cfg
	per.MaxSessions = ceilDiv(cfg.MaxSessions, shards)
	per.Workers = max(1, cfg.Workers/shards)
	per.QueueDepth = max(1, cfg.QueueDepth/shards)
	per.Prewarm = ceilDiv(cfg.Prewarm, shards)

	sm := &ShardedManager{shards: make([]*Manager, shards)}
	for i := range sm.shards {
		m, err := NewManager(per)
		if err != nil {
			for _, built := range sm.shards[:i] {
				built.Shutdown()
			}
			return nil, fmt.Errorf("serve: shard %d: %w", i, err)
		}
		sm.shards[i] = m
	}
	return sm, nil
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

func (sm *ShardedManager) shard(id string) *Manager {
	return sm.shards[shardIndex(id, len(sm.shards))]
}

// Open mints a fresh session ID and opens it on the shard the ID hashes
// to. When that shard's table is full, a new ID is minted (which hashes
// elsewhere) for up to NumShards attempts before giving up with the
// shard's error — so one full shard does not refuse the whole service.
func (sm *ShardedManager) Open() (string, error) {
	var lastErr error
	for attempt := 0; attempt < len(sm.shards); attempt++ {
		id := fmt.Sprintf("s%08d", sm.nextID.Add(1))
		err := sm.shard(id).OpenWithID(id)
		if err == nil {
			return id, nil
		}
		lastErr = err
		if !errors.Is(err, ErrSessionLimit) {
			return "", err
		}
	}
	return "", lastErr
}

// Feed routes one audio chunk to the owning shard.
func (sm *ShardedManager) Feed(id string, chunk []float64) ([]pipeline.Detection, error) {
	return sm.shard(id).Feed(id, chunk)
}

// Flush drains a session on its owning shard.
func (sm *ShardedManager) Flush(id string) ([]pipeline.Detection, []infer.Candidate, error) {
	return sm.shard(id).Flush(id)
}

// Close removes a session from its owning shard.
func (sm *ShardedManager) Close(id string) error {
	return sm.shard(id).Close(id)
}

// Touch refreshes a session's idle clock on its owning shard.
func (sm *ShardedManager) Touch(id string) error {
	return sm.shard(id).Touch(id)
}

// EvictIdle sweeps every shard and returns the total evicted. Each shard
// holds only its own lock during its sweep.
func (sm *ShardedManager) EvictIdle() int {
	n := 0
	for _, m := range sm.shards {
		n += m.EvictIdle()
	}
	return n
}

// Shutdown stops every shard, in parallel so slow drains overlap.
func (sm *ShardedManager) Shutdown() {
	var wg sync.WaitGroup
	for _, m := range sm.shards {
		wg.Add(1)
		go func(m *Manager) {
			defer wg.Done()
			m.Shutdown()
		}(m)
	}
	wg.Wait()
}

// MaxChunk reports the per-feed sample cap (identical on every shard).
func (sm *ShardedManager) MaxChunk() int { return sm.shards[0].MaxChunk() }

// Snapshot aggregates every shard into one Stats view: counters and
// occupancy sum, feed-latency quantiles merge over the pooled per-shard
// samples (shards weighted by how much traffic each retained), stage
// breakdowns merge before the per-stroke division, and Shards carries
// the per-shard queue/backpressure/eviction detail. Per-shard quantiles
// are never computed: each shard contributes raw samples and the merge
// sorts the pool once, through the same summarizeFeedLatency choke
// point that keeps empty-sample NaN out of the JSON.
func (sm *ShardedManager) Snapshot() Stats {
	var (
		agg     Stats
		stages  ewruntime.StageBreakdown
		latency = make([][]float64, 0, len(sm.shards))
	)
	agg.Shards = sm.shardStats()
	for i, m := range sm.shards {
		sv := agg.Shards[i]
		agg.ActiveSessions += sv.ActiveSessions
		agg.MaxSessions += m.cfg.MaxSessions
		agg.Workers += m.cfg.Workers
		agg.QueueLen += sv.QueueLen
		agg.QueueCap += sv.QueueCap
		p := m.pool.Stats()
		agg.Pool.Created += p.Created
		agg.Pool.Reused += p.Reused
		agg.Pool.Free += p.Free
		agg.Chunks += sv.Chunks
		agg.Detections += sv.Detections
		agg.Backpressure += sv.Backpressure
		agg.FeedErrors += sv.FeedErrors
		agg.Evictions += sv.Evictions
		stages.Merge(m.stages.Snapshot())
		latency = append(latency, m.latencySamples())
	}
	agg.FeedLatencyMs = summarizeFeedLatency(latency...)
	agg.PerStroke = stageMillis(stages)
	return agg
}

// shardStats implements metricsSource: every shard's counter view, in
// shard-index order.
func (sm *ShardedManager) shardStats() []ShardStats {
	out := make([]ShardStats, len(sm.shards))
	for i, m := range sm.shards {
		out[i] = m.shardView()
	}
	return out
}

// feedLatencyHistograms implements metricsSource: one histogram per
// shard, index-aligned with shardStats.
func (sm *ShardedManager) feedLatencyHistograms() []*expose.Histogram {
	out := make([]*expose.Histogram, len(sm.shards))
	for i, m := range sm.shards {
		out[i] = m.latHist
	}
	return out
}

// stageTotals implements metricsSource: stage time merged over shards.
func (sm *ShardedManager) stageTotals() ewruntime.StageBreakdown {
	var b ewruntime.StageBreakdown
	for _, m := range sm.shards {
		b.Merge(m.stages.Snapshot())
	}
	return b
}

// limits implements metricsSource: service-wide bounds summed over the
// per-shard splits (which is what admission control actually enforces).
func (sm *ShardedManager) limits() (maxSessions, workers int) {
	for _, m := range sm.shards {
		maxSessions += m.cfg.MaxSessions
		workers += m.cfg.Workers
	}
	return maxSessions, workers
}

// poolStats implements metricsSource: pool occupancy summed over shards.
func (sm *ShardedManager) poolStats() PoolStats {
	var p PoolStats
	for _, m := range sm.shards {
		s := m.pool.Stats()
		p.Created += s.Created
		p.Reused += s.Reused
		p.Free += s.Free
	}
	return p
}
