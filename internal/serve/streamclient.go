package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/url"
	"strings"
	"time"

	"repro/internal/ws"
)

// StreamClient drives one /v1/stream WebSocket connection with the
// synchronous request/ack discipline the load generator and tests use:
// send a chunk (or flush), then read events until its acknowledgement
// arrives. Detections still stream incrementally — every chunk's
// detection event carries results as soon as that chunk is processed,
// without waiting for a flush — and backpressure events passing by are
// counted rather than treated as failures. Not safe for concurrent use.
type StreamClient struct {
	conn *ws.Conn
	// Session is the session this stream is bound to: server-minted for
	// open-on-connect dials, echoed back for attaches.
	Session string
	// Backpressured counts backpressure events observed on this stream.
	Backpressured uint64
	seq           uint64
}

// DialStream connects to baseURL's /v1/stream endpoint ("http://host"
// or "ws://host"). An empty session opens a connection-owned session
// (closed by the server on disconnect); a non-empty one attaches to an
// existing session, which survives the connection. The returned client
// has already consumed the ready event.
func DialStream(baseURL, session string, timeout time.Duration) (*StreamClient, error) {
	target := strings.TrimSuffix(baseURL, "/") + "/v1/stream"
	if session != "" {
		target += "?session=" + url.QueryEscape(session)
	}
	conn, err := ws.Dial(target, timeout)
	if err != nil {
		return nil, err
	}
	c := &StreamClient{conn: conn}
	_ = conn.SetReadDeadline(time.Now().Add(timeout))
	ev, err := c.readEvent()
	_ = conn.SetReadDeadline(time.Time{})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: stream handshake: %w", err)
	}
	switch ev.Type {
	case StreamEventReady:
		c.Session = ev.Session
		return c, nil
	case StreamEventError:
		conn.Close()
		return nil, fmt.Errorf("serve: stream rejected: %s", ev.Error)
	default:
		conn.Close()
		return nil, fmt.Errorf("serve: stream handshake: unexpected %q event", ev.Type)
	}
}

// readEvent blocks for the next server event frame.
func (c *StreamClient) readEvent() (StreamEvent, error) {
	var ev StreamEvent
	typ, data, err := c.conn.ReadMessage()
	if err != nil {
		return ev, err
	}
	if typ != ws.Text {
		return ev, fmt.Errorf("serve: unexpected %v frame from stream server", typ)
	}
	if err := json.Unmarshal(data, &ev); err != nil {
		return ev, fmt.Errorf("serve: malformed stream event: %w", err)
	}
	return ev, nil
}

// awaitAck reads events until the detection event acknowledging seq,
// tallying backpressure along the way. An error event for this seq (or
// a terminal one without a seq) fails the operation.
func (c *StreamClient) awaitAck(seq uint64) ([]DetectionJSON, error) {
	for {
		ev, err := c.readEvent()
		if err != nil {
			return nil, err
		}
		switch ev.Type {
		case StreamEventDetection:
			if ev.Seq == seq {
				return ev.Detections, nil
			}
		case StreamEventBackpressure:
			c.Backpressured++
		case StreamEventError:
			if ev.Seq == seq || ev.Seq == 0 {
				return nil, fmt.Errorf("serve: stream error: %s", ev.Error)
			}
		}
	}
}

// SendChunk ships one PCM16 chunk and blocks for its detection ack,
// returning the strokes completed by that chunk.
func (c *StreamClient) SendChunk(pcm []byte) ([]DetectionJSON, error) {
	if err := c.conn.WriteMessage(ws.Binary, pcm); err != nil {
		return nil, err
	}
	c.seq++
	return c.awaitAck(c.seq)
}

// Flush drains the session's partial frame, returning the final
// detections and the word candidates for the accumulated strokes.
func (c *StreamClient) Flush() ([]DetectionJSON, []CandidateJSON, error) {
	if err := c.writeCommand("flush"); err != nil {
		return nil, nil, err
	}
	c.seq++
	dets, err := c.awaitAck(c.seq)
	if err != nil {
		return nil, nil, err
	}
	for {
		ev, err := c.readEvent()
		if err != nil {
			return nil, nil, err
		}
		switch ev.Type {
		case StreamEventCandidates:
			if ev.Seq == c.seq {
				return dets, ev.Words, nil
			}
		case StreamEventError:
			return nil, nil, fmt.Errorf("serve: stream error: %s", ev.Error)
		}
	}
}

func (c *StreamClient) writeCommand(cmd string) error {
	data, err := json.Marshal(streamCommand{Cmd: cmd})
	if err != nil {
		return err
	}
	return c.conn.WriteMessage(ws.Text, data)
}

// Close ends the session server-side and completes the close handshake.
func (c *StreamClient) Close() error {
	if err := c.writeCommand("close"); err != nil {
		c.conn.Close()
		return err
	}
	// The server answers with a close frame; drain anything pending
	// until it surfaces (ReadMessage echoes our half automatically).
	_ = c.conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	for {
		if _, _, err := c.conn.ReadMessage(); err != nil {
			var ce *ws.CloseError
			cerr := c.conn.Close()
			if errors.As(err, &ce) {
				return cerr
			}
			return err
		}
	}
}

// Abort drops the connection without a close handshake; the server
// reclaims connection-owned sessions when the read loop fails.
func (c *StreamClient) Abort() error { return c.conn.Close() }
