package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/capture"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/stroke"
)

// LoadConfig drives RunLoad, the multi-writer load generator behind
// cmd/ewload. Writers are synthetic users: each opens a session against
// BaseURL, streams a pre-synthesized recording chunk by chunk over the
// wire protocol, flushes, and closes.
type LoadConfig struct {
	// BaseURL targets an ewserve instance, e.g. "http://127.0.0.1:8791".
	BaseURL string
	// Writers is the number of concurrent sessions (default 8).
	Writers int
	// Word is what every writer writes (default "on" — short, so a run
	// stays quick; any letters-only word works).
	Word string
	// Signals is how many distinct recordings to synthesize; writers
	// share them round-robin so load scales without paying synthesis per
	// writer (default min(Writers, 4)).
	Signals int
	// ChunkSamples is the ingest chunk size (default 2205 = 50 ms at
	// 44.1 kHz).
	ChunkSamples int
	// Seed varies the synthesized scenes.
	Seed uint64
	// BackpressureRetries bounds how often one chunk is retried after a
	// 429 before the writer gives up on it (default 100). Retrying keeps
	// the audio contiguous, which recognition needs.
	BackpressureRetries int
	// Client overrides the HTTP client (default http.DefaultClient).
	Client *http.Client
	// WS switches writers from per-chunk HTTP POSTs to one persistent
	// /v1/stream WebSocket connection each: chunks go out as binary
	// frames and detections come back as incremental events. Chunk
	// latency then measures the frame→ack round trip, head-to-head
	// comparable with the POST round trip.
	WS bool
	// Recordings, when non-empty, replaces synthesis: writers share
	// these pre-recorded traces round-robin and Word/Signals/Seed are
	// ignored. This is the scenario replay path — the bytes on the wire
	// come from a trace cache, identical run after run.
	Recordings []*audio.Signal
	// Duration switches the run into soak mode: every writer performs
	// full sessions back to back (open, stream, flush, close) until the
	// deadline passes, instead of stopping after one. Zero keeps the
	// single-pass behavior.
	Duration time.Duration
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Writers <= 0 {
		c.Writers = 8
	}
	if c.Word == "" {
		c.Word = "on"
	}
	if c.Signals <= 0 {
		c.Signals = min(c.Writers, 4)
	}
	if c.ChunkSamples <= 0 {
		c.ChunkSamples = 2205
	}
	if c.BackpressureRetries <= 0 {
		c.BackpressureRetries = 100
	}
	if c.Client == nil {
		c.Client = http.DefaultClient
	}
	return c
}

// LoadReport is RunLoad's aggregated result.
type LoadReport struct {
	Writers      int
	ChunksSent   int
	Detections   int
	Words        int // sessions whose flush produced ≥1 word candidate
	Sessions     int // completed writer sessions (= Writers unless soaking)
	Backpressure int // 429 responses (HTTP) or backpressure events (WS) observed
	Errors       int // non-backpressure failures (chunks dropped, HTTP errors)
	Elapsed      time.Duration
	AudioSeconds float64 // total audio streamed across writers

	// StrokeLatencyMs summarizes wall time from submitting the chunk
	// whose processing completed a stroke to receiving that detection.
	StrokeLatencyMs metrics.LatencySummary
	// ChunkLatencyMs summarizes the round-trip of every audio POST.
	ChunkLatencyMs metrics.LatencySummary
}

// RealTimeFactor is audio seconds processed per wall-clock second — the
// headline concurrency number (>1 means faster than real time in
// aggregate).
func (r *LoadReport) RealTimeFactor() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return r.AudioSeconds / r.Elapsed.Seconds()
}

// ErrorRate is the fraction of attempted operations that failed
// outright (backpressure retries that eventually succeeded do not
// count). cmd/ewload exits non-zero when this exceeds its threshold, so
// a load run doubles as a CI smoke gate.
func (r *LoadReport) ErrorRate() float64 {
	total := r.ChunksSent + r.Errors
	if total == 0 {
		return 0
	}
	return float64(r.Errors) / float64(total)
}

// String renders the human-readable summary cmd/ewload prints.
func (r *LoadReport) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "writers            %d (%d sessions)\n", r.Writers, r.Sessions)
	fmt.Fprintf(&b, "audio streamed     %.1f s (%.2f× real time)\n", r.AudioSeconds, r.RealTimeFactor())
	fmt.Fprintf(&b, "chunks sent        %d in %v (%.0f chunks/s)\n",
		r.ChunksSent, r.Elapsed.Round(time.Millisecond),
		float64(r.ChunksSent)/r.Elapsed.Seconds())
	fmt.Fprintf(&b, "detections         %d\n", r.Detections)
	fmt.Fprintf(&b, "sessions w/ words  %d\n", r.Words)
	fmt.Fprintf(&b, "backpressure       %d\n", r.Backpressure)
	fmt.Fprintf(&b, "errors             %d (%.2f%% of chunks)\n", r.Errors, 100*r.ErrorRate())
	fmt.Fprintf(&b, "chunk latency ms   p50 %.2f  p95 %.2f  p99 %.2f\n",
		r.ChunkLatencyMs.P50, r.ChunkLatencyMs.P95, r.ChunkLatencyMs.P99)
	fmt.Fprintf(&b, "stroke latency ms  p50 %.2f  p95 %.2f  p99 %.2f\n",
		r.StrokeLatencyMs.P50, r.StrokeLatencyMs.P95, r.StrokeLatencyMs.P99)
	return b.String()
}

// RunLoad synthesizes (or replays) the writer recordings, drives
// Writers concurrent sessions against the server and aggregates the
// report. With Duration set, each writer loops whole sessions until the
// deadline (soak mode).
func RunLoad(cfg LoadConfig) (*LoadReport, error) {
	cfg = cfg.withDefaults()
	signals := cfg.Recordings
	if len(signals) == 0 {
		var err error
		signals, err = synthesizeWriters(cfg)
		if err != nil {
			return nil, err
		}
	}

	var (
		mu        sync.Mutex
		report    = LoadReport{Writers: cfg.Writers}
		chunkLat  []float64
		strokeLat []float64
		wg        sync.WaitGroup
	)
	drive := driveWriter
	if cfg.WS {
		drive = driveWriterWS
	}
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for w := 0; w < cfg.Writers; w++ {
		sig := signals[w%len(signals)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				res := drive(cfg, sig)
				mu.Lock()
				report.Sessions++
				report.ChunksSent += res.chunks
				report.Detections += res.detections
				report.Backpressure += res.backpressure
				report.Errors += res.errors
				report.AudioSeconds += sig.Duration()
				if res.words > 0 {
					report.Words++
				}
				chunkLat = append(chunkLat, res.chunkLat...)
				strokeLat = append(strokeLat, res.strokeLat...)
				mu.Unlock()
				if cfg.Duration <= 0 || !time.Now().Before(deadline) {
					return
				}
			}
		}()
	}
	wg.Wait()
	report.Elapsed = time.Since(start)
	report.ChunkLatencyMs = metrics.SummarizeLatencies(chunkLat)
	report.StrokeLatencyMs = metrics.SummarizeLatencies(strokeLat)
	return &report, nil
}

// synthesizeWriters renders the distinct recordings writers share.
func synthesizeWriters(cfg LoadConfig) ([]*audio.Signal, error) {
	roster := participant.SixParticipants()
	signals := make([]*audio.Signal, cfg.Signals)
	for i := range signals {
		sess := participant.NewSession(roster[i%len(roster)], cfg.Seed+uint64(i))
		rec, err := capture.PerformWord(sess, stroke.DefaultScheme(), cfg.Word,
			acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom),
			cfg.Seed+uint64(i))
		if err != nil {
			return nil, fmt.Errorf("serve: synthesize writer %d: %w", i, err)
		}
		signals[i] = rec.Signal
	}
	return signals, nil
}

type writerResult struct {
	chunks, detections, words int
	backpressure, errors      int
	chunkLat, strokeLat       []float64
}

// driveWriter runs one synthetic user end to end. Failures count into
// errors rather than aborting the run: a load test should report a sick
// server, not crash on it.
func driveWriter(cfg LoadConfig, sig *audio.Signal) writerResult {
	var res writerResult
	id, err := openSession(cfg)
	if err != nil {
		res.errors++
		return res
	}
	defer closeSession(cfg, id)

	for off := 0; off < len(sig.Samples); off += cfg.ChunkSamples {
		end := min(off+cfg.ChunkSamples, len(sig.Samples))
		body := EncodePCM16(sig.Samples[off:end])
		n, lat, err := postChunk(cfg, id, body, &res)
		if err != nil {
			res.errors++
			continue
		}
		res.chunks++
		latMs := float64(lat) / float64(time.Millisecond)
		res.chunkLat = append(res.chunkLat, latMs)
		if n > 0 {
			res.detections += n
			// The stroke became available with this chunk's round trip.
			res.strokeLat = append(res.strokeLat, latMs)
		}
	}

	dets, words, err := flushSession(cfg, id)
	if err != nil {
		res.errors++
		return res
	}
	res.detections += dets
	res.words = words
	return res
}

// driveWriterWS is driveWriter over one persistent stream connection.
// Backpressure shows up as server-pushed events (the server itself
// retries the queue, so chunks stay contiguous without a client loop);
// a connection-level failure ends the writer since every later frame
// would fail the same way. The named return matters: the deferred
// accumulation below must land in the return value, not a dead local.
func driveWriterWS(cfg LoadConfig, sig *audio.Signal) (res writerResult) {
	sc, err := DialStream(cfg.BaseURL, "", 10*time.Second)
	if err != nil {
		res.errors++
		return res
	}
	closed := false
	defer func() {
		res.backpressure += int(sc.Backpressured)
		if !closed {
			_ = sc.Abort()
		}
	}()

	for off := 0; off < len(sig.Samples); off += cfg.ChunkSamples {
		end := min(off+cfg.ChunkSamples, len(sig.Samples))
		body := EncodePCM16(sig.Samples[off:end])
		t0 := time.Now()
		dets, err := sc.SendChunk(body)
		if err != nil {
			res.errors++
			return res
		}
		res.chunks++
		latMs := float64(time.Since(t0)) / float64(time.Millisecond)
		res.chunkLat = append(res.chunkLat, latMs)
		if len(dets) > 0 {
			res.detections += len(dets)
			res.strokeLat = append(res.strokeLat, latMs)
		}
	}

	dets, words, err := sc.Flush()
	if err != nil {
		res.errors++
		return res
	}
	res.detections += len(dets)
	res.words = len(words)
	if err := sc.Close(); err != nil {
		res.errors++
		return res
	}
	closed = true
	return res
}

func openSession(cfg LoadConfig) (string, error) {
	resp, err := cfg.Client.Post(cfg.BaseURL+"/v1/sessions", "application/json", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("open: status %d", resp.StatusCode)
	}
	var out struct {
		Session string `json:"session"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", err
	}
	return out.Session, nil
}

// postChunk sends one chunk, retrying on backpressure so the audio stays
// contiguous. Returns the number of detections and the (final) round
// trip time.
func postChunk(cfg LoadConfig, id string, body []byte, res *writerResult) (int, time.Duration, error) {
	url := cfg.BaseURL + "/v1/sessions/" + id + "/audio"
	for attempt := 0; ; attempt++ {
		t0 := time.Now()
		resp, err := cfg.Client.Post(url, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			return 0, 0, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			resp.Body.Close()
			res.backpressure++
			if attempt >= cfg.BackpressureRetries {
				return 0, 0, fmt.Errorf("chunk dropped after %d backpressure retries", attempt)
			}
			time.Sleep(2 * time.Millisecond)
			continue
		}
		lat := time.Since(t0)
		var out struct {
			Detections []DetectionJSON `json:"detections"`
		}
		err = json.NewDecoder(resp.Body).Decode(&out)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return 0, 0, fmt.Errorf("audio: status %d", resp.StatusCode)
		}
		if err != nil {
			return 0, 0, err
		}
		return len(out.Detections), lat, nil
	}
}

func flushSession(cfg LoadConfig, id string) (dets, words int, err error) {
	resp, err := cfg.Client.Post(cfg.BaseURL+"/v1/sessions/"+id+"/flush", "application/json", nil)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, 0, fmt.Errorf("flush: status %d", resp.StatusCode)
	}
	var out struct {
		Detections []DetectionJSON `json:"detections"`
		Words      []CandidateJSON `json:"words"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, 0, err
	}
	return len(out.Detections), len(out.Words), nil
}

func closeSession(cfg LoadConfig, id string) {
	req, err := http.NewRequest(http.MethodDelete, cfg.BaseURL+"/v1/sessions/"+id, nil)
	if err != nil {
		return
	}
	if resp, err := cfg.Client.Do(req); err == nil {
		resp.Body.Close()
	}
}
