package serve

import (
	"strconv"
	"time"

	"repro/internal/metrics/expose"
	ewruntime "repro/internal/runtime"
)

// metricsSource is the cheap-read surface the /metricsz collectors
// scrape: per-shard counter views, per-shard feed-latency histograms
// (index-aligned with the shard views), cumulative stage totals and the
// configured bounds. *Manager and *ShardedManager both implement it;
// unlike Snapshot, none of these reads sorts latency samples, so a
// tight scrape loop stays off the quantile path entirely.
type metricsSource interface {
	shardStats() []ShardStats
	feedLatencyHistograms() []*expose.Histogram
	stageTotals() ewruntime.StageBreakdown
	limits() (maxSessions, workers int)
	poolStats() PoolStats
}

// stageNames orders the per-stage counter series; the accessor pulls
// the matching duration out of a StageBreakdown.
var stageNames = [...]struct {
	name string
	get  func(b *ewruntime.StageBreakdown) time.Duration
}{
	{"stft", func(b *ewruntime.StageBreakdown) time.Duration { return b.STFT }},
	{"enhancement", func(b *ewruntime.StageBreakdown) time.Duration { return b.Enhancement }},
	{"profile", func(b *ewruntime.StageBreakdown) time.Duration { return b.Profile }},
	{"segmentation", func(b *ewruntime.StageBreakdown) time.Duration { return b.Segmentation }},
	{"dtw", func(b *ewruntime.StageBreakdown) time.Duration { return b.DTW }},
}

// newServiceRegistry builds the /metricsz registry over a metrics
// source. Every family either carries a shard="N" label (per-shard
// counters and the feed-latency histogram, so cross-shard skew — the
// ROADMAP's rebalancing concern — is visible from a dashboard) or is a
// service-wide scalar. Label sets are precomputed: the shard count is
// fixed for the life of the manager, so scrapes only allocate the
// per-scrape point slices.
func newServiceRegistry(ms metricsSource) *expose.Registry {
	r := expose.NewRegistry()
	shards := len(ms.feedLatencyHistograms())
	labels := make([][]expose.Label, shards)
	for i := range labels {
		labels[i] = []expose.Label{{Name: "shard", Value: strconv.Itoa(i)}}
	}

	perShard := func(name, help string, kind expose.Kind, get func(ShardStats) float64) {
		r.MustRegister(expose.Desc{Name: name, Help: help, Kind: kind},
			func(emit func(expose.Point)) {
				for i, sv := range ms.shardStats() {
					emit(expose.Point{Labels: labels[i], Value: get(sv)})
				}
			})
	}
	perShard("echowrite_active_sessions", "Open sessions in the shard's table.",
		expose.KindGauge, func(s ShardStats) float64 { return float64(s.ActiveSessions) })
	perShard("echowrite_queue_len", "Jobs waiting in the shard's ingest queue.",
		expose.KindGauge, func(s ShardStats) float64 { return float64(s.QueueLen) })
	perShard("echowrite_queue_cap", "Capacity of the shard's ingest queue.",
		expose.KindGauge, func(s ShardStats) float64 { return float64(s.QueueCap) })
	perShard("echowrite_chunks_total", "Audio chunks processed successfully.",
		expose.KindCounter, func(s ShardStats) float64 { return float64(s.Chunks) })
	perShard("echowrite_detections_total", "Strokes detected.",
		expose.KindCounter, func(s ShardStats) float64 { return float64(s.Detections) })
	perShard("echowrite_backpressure_rejects_total", "Feeds shed with 429 because the shard's queue was full.",
		expose.KindCounter, func(s ShardStats) float64 { return float64(s.Backpressure) })
	perShard("echowrite_feed_errors_total", "Feeds that failed inside the pipeline after admission (e.g. oversized chunks); their latency and stage time are still recorded.",
		expose.KindCounter, func(s ShardStats) float64 { return float64(s.FeedErrors) })
	perShard("echowrite_idle_evictions_total", "Sessions reclaimed after IdleTimeout.",
		expose.KindCounter, func(s ShardStats) float64 { return float64(s.Evictions) })

	r.MustRegister(expose.Desc{Name: "echowrite_max_sessions",
		Help: "Configured session-table bound, summed over shards.", Kind: expose.KindGauge},
		func(emit func(expose.Point)) {
			maxSessions, _ := ms.limits()
			emit(expose.Point{Value: float64(maxSessions)})
		})
	r.MustRegister(expose.Desc{Name: "echowrite_workers",
		Help: "Worker goroutines, summed over shards.", Kind: expose.KindGauge},
		func(emit func(expose.Point)) {
			_, workers := ms.limits()
			emit(expose.Point{Value: float64(workers)})
		})
	r.MustRegister(expose.Desc{Name: "echowrite_engine_pool_created_total",
		Help: "Recognizer engines built over the service lifetime.", Kind: expose.KindCounter},
		func(emit func(expose.Point)) {
			emit(expose.Point{Value: float64(ms.poolStats().Created)})
		})
	r.MustRegister(expose.Desc{Name: "echowrite_engine_pool_reused_total",
		Help: "Engine checkouts served from the warm free list.", Kind: expose.KindCounter},
		func(emit func(expose.Point)) {
			emit(expose.Point{Value: float64(ms.poolStats().Reused)})
		})
	r.MustRegister(expose.Desc{Name: "echowrite_engine_pool_free",
		Help: "Warm engines currently checked in.", Kind: expose.KindGauge},
		func(emit func(expose.Point)) {
			emit(expose.Point{Value: float64(ms.poolStats().Free)})
		})

	stageLabels := make([][]expose.Label, len(stageNames))
	for i := range stageNames {
		stageLabels[i] = []expose.Label{{Name: "stage", Value: stageNames[i].name}}
	}
	r.MustRegister(expose.Desc{Name: "echowrite_stage_seconds_total",
		Help: "Cumulative pipeline time per stage; divide by echowrite_strokes_total for the per-stroke breakdown /statsz reports.",
		Kind: expose.KindCounter},
		func(emit func(expose.Point)) {
			b := ms.stageTotals()
			for i := range stageNames {
				emit(expose.Point{Labels: stageLabels[i], Value: stageNames[i].get(&b).Seconds()})
			}
		})
	r.MustRegister(expose.Desc{Name: "echowrite_strokes_total",
		Help: "Strokes covered by the stage totals.", Kind: expose.KindCounter},
		func(emit func(expose.Point)) {
			emit(expose.Point{Value: float64(ms.stageTotals().Strokes)})
		})

	r.MustRegister(expose.Desc{Name: "echowrite_feed_latency_milliseconds",
		Help: "Per-feed pipeline latency histogram (log-spaced ms buckets), per shard.",
		Kind: expose.KindHistogram},
		func(emit func(expose.Point)) {
			for i, h := range ms.feedLatencyHistograms() {
				v := h.View()
				emit(expose.Point{Labels: labels[i], Hist: &v})
			}
		})
	return r
}

// registerWSMetrics appends the streaming subsystem's families to the
// service registry, so one /metricsz scrape covers both ingest paths.
// The counters are server-wide (connections are not pinned to shards).
func registerWSMetrics(r *expose.Registry, ws *wsStats) {
	r.MustRegister(expose.Desc{Name: "echowrite_ws_connections",
		Help: "Open /v1/stream WebSocket connections.", Kind: expose.KindGauge},
		func(emit func(expose.Point)) {
			emit(expose.Point{Value: float64(ws.connections.Load())})
		})
	r.MustRegister(expose.Desc{Name: "echowrite_ws_frames_in_total",
		Help: "Client frames received on stream connections (audio chunks and commands).",
		Kind: expose.KindCounter},
		func(emit func(expose.Point)) {
			emit(expose.Point{Value: float64(ws.framesIn.Load())})
		})
	r.MustRegister(expose.Desc{Name: "echowrite_ws_frames_out_total",
		Help: "Event frames pushed to stream clients.", Kind: expose.KindCounter},
		func(emit func(expose.Point)) {
			emit(expose.Point{Value: float64(ws.framesOut.Load())})
		})
	r.MustRegister(expose.Desc{Name: "echowrite_ws_push_latency_milliseconds",
		Help: "Queue-to-wire latency of pushed stream events (log-spaced ms buckets).",
		Kind: expose.KindHistogram},
		func(emit func(expose.Point)) {
			v := ws.pushLat.View()
			emit(expose.Point{Hist: &v})
		})
}
