package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/infer"
	"repro/internal/metrics/expose"
	"repro/internal/pipeline"
	"repro/internal/ws"
)

// The /v1/stream wire protocol — the persistent duplex alternative to
// the per-chunk POST round trip:
//
//	GET /v1/stream[?session=ID]   WebSocket upgrade. Without a session
//	                              parameter a new session is opened and
//	                              owned by the connection (closed when
//	                              the connection ends); with one, the
//	                              connection attaches to the existing
//	                              session and leaves it open on
//	                              disconnect.
//
// Client → server frames:
//
//	binary                        one audio chunk (16-bit LE mono PCM,
//	                              same format as POST /audio)
//	text {"cmd":"flush"}          drain the partial frame and emit word
//	                              candidates
//	text {"cmd":"close"}          close the session, then the connection
//
// Server → client frames are text JSON StreamEvents. Every audio chunk
// and flush is acknowledged by exactly one "detection" event carrying
// the input's sequence number (binary chunks and flushes share one
// counter), so detections stream incrementally and a client can measure
// per-chunk round trips; a flush additionally produces a "candidates"
// event. A full ingest queue emits a "backpressure" event while the
// server keeps retrying the same chunk — frames are never dropped — and
// "error" reports per-input failures (oversized or malformed chunks)
// or terminal ones (unknown session).
const (
	// wsKeepaliveDefault paces server pings; each tick also refreshes
	// the session's idle clock, so an open stream is never evicted.
	wsKeepaliveDefault = 30 * time.Second
	// wsOutboundDepth bounds the per-connection write pump's queue.
	wsOutboundDepth = 64
	// wsWriteTimeout bounds one frame write to a (possibly dead) peer.
	wsWriteTimeout = 10 * time.Second
	// wsBackpressureDelay is the pause between server-side retries of a
	// chunk rejected by a full shard queue (mirrors cmd/ewload's retry
	// delay on 429).
	wsBackpressureDelay = 2 * time.Millisecond
	// wsBackpressureRetries bounds those retries before the chunk is
	// reported failed.
	wsBackpressureRetries = 400
	// wsCloseTimeout bounds the closing handshake drain.
	wsCloseTimeout = 2 * time.Second
)

// Stream event types.
const (
	StreamEventReady        = "ready"
	StreamEventDetection    = "detection"
	StreamEventCandidates   = "candidates"
	StreamEventBackpressure = "backpressure"
	StreamEventError        = "error"
)

// StreamEvent is one server→client message on the /v1/stream
// WebSocket. Type selects which fields are meaningful; Seq ties
// detection/candidates/backpressure/error events back to the input
// (chunk or flush) that produced them.
type StreamEvent struct {
	Type       string          `json:"type"`
	Session    string          `json:"session,omitempty"`
	Seq        uint64          `json:"seq,omitempty"`
	Detections []DetectionJSON `json:"detections,omitempty"`
	Words      []CandidateJSON `json:"words,omitempty"`
	Error      string          `json:"error,omitempty"`
	RetryMs    int             `json:"retry_ms,omitempty"`
}

// streamCommand is one client→server text frame.
type streamCommand struct {
	Cmd string `json:"cmd"`
}

// sessionToucher refreshes a session's idle clock without submitting
// work. *Manager and *ShardedManager implement it; the stream handler
// uses it so a live connection counts as session activity for
// EvictIdle, and to validate attach targets.
type sessionToucher interface {
	Touch(id string) error
}

// wsPushLatencyBuckets are the upper bounds (milliseconds) of the
// push-latency histogram: octaves from 50 µs, so the healthy
// enqueue-to-wire path (tens of microseconds) and a slow-client stall
// both land in informative buckets.
var wsPushLatencyBuckets = mustExpBuckets(0.05, 2, 12)

// wsStats is the /metricsz surface of the streaming subsystem.
type wsStats struct {
	connections atomic.Int64  // currently open stream connections
	framesIn    atomic.Uint64 // client frames received (chunks + commands)
	framesOut   atomic.Uint64 // event frames pushed
	pushLat     *expose.Histogram
}

func newWSStats() *wsStats {
	hist, err := expose.NewHistogram(wsPushLatencyBuckets)
	if err != nil {
		panic(err) // static bucket layout; failure is a programming bug
	}
	return &wsStats{pushLat: hist}
}

// wsOut is one queued outbound event: the encoded frame plus its
// enqueue time, so the pump can observe queue-to-wire push latency.
type wsOut struct {
	data []byte
	t    time.Time
}

// wsPump serializes all event writes for one connection through a
// bounded queue drained by a single goroutine, so the read loop never
// blocks on a slow peer's TCP window and events stay ordered.
type wsPump struct {
	conn  *ws.Conn
	stats *wsStats
	ch    chan wsOut
	done  chan struct{}
}

func newWSPump(conn *ws.Conn, stats *wsStats) *wsPump {
	p := &wsPump{
		conn:  conn,
		stats: stats,
		ch:    make(chan wsOut, wsOutboundDepth),
		done:  make(chan struct{}),
	}
	go p.run()
	return p
}

// run drains the queue until close(). On a write failure it tears down
// the connection (waking the read loop) and keeps draining so senders
// can never block on a dead pump.
func (p *wsPump) run() {
	defer close(p.done)
	failed := false
	for out := range p.ch {
		if failed {
			continue
		}
		_ = p.conn.SetWriteDeadline(time.Now().Add(wsWriteTimeout))
		if err := p.conn.WriteMessage(ws.Text, out.data); err != nil {
			// An event racing the close frame out the door is benign —
			// the peer asked to close; don't tear the handshake down.
			if !errors.Is(err, ws.ErrCloseSent) {
				failed = true
				p.conn.Close()
			}
			continue
		}
		p.stats.framesOut.Add(1)
		p.stats.pushLat.Observe(float64(time.Since(out.t)) / float64(time.Millisecond))
	}
}

// send encodes and enqueues one event. It may block briefly when the
// queue is full; the pump drains unconditionally, so it never blocks
// for good.
func (p *wsPump) send(ev StreamEvent) {
	data, err := json.Marshal(ev)
	if err != nil {
		return // event structs marshal by construction
	}
	p.ch <- wsOut{data: data, t: time.Now()}
}

// close flushes the queue and stops the pump goroutine.
func (p *wsPump) close() {
	close(p.ch)
	<-p.done
}

// touch refreshes a session's idle clock when the service supports it.
func (s *Server) touch(id string) error {
	if t, ok := s.mgr.(sessionToucher); ok {
		return t.Touch(id)
	}
	return nil
}

// handleStream is GET /v1/stream: upgrade, resolve the session, then
// pump events out while the read loop feeds chunks and commands in.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("session")
	conn, err := ws.Accept(w, r)
	if err != nil {
		return // Accept already wrote the HTTP error
	}
	defer conn.Close()
	conn.MaxPayload = 2*int64(s.mgr.MaxChunk()) + 1024 // PCM bytes per chunk, plus command slack

	s.ws.connections.Add(1)
	defer s.ws.connections.Add(-1)

	opened := false
	if id == "" {
		id, err = s.mgr.Open()
		if err != nil {
			s.rejectStream(conn, err)
			return
		}
		opened = true
	} else if err := s.touch(id); err != nil {
		s.rejectStream(conn, err)
		return
	}
	// From here the session must not leak: every return path closes it
	// if this connection opened it.
	defer func() {
		if opened {
			_ = s.mgr.Close(id)
		}
	}()

	pump := newWSPump(conn, s.ws)
	defer pump.close()

	stop := make(chan struct{})
	defer close(stop)
	go s.wsKeepaliveLoop(conn, id, stop)

	pump.send(StreamEvent{Type: StreamEventReady, Session: id})
	var seq uint64
	for {
		typ, data, err := conn.ReadMessage()
		if err != nil {
			return // peer closed (CloseError), vanished, or misbehaved
		}
		s.ws.framesIn.Add(1)
		_ = s.touch(id)
		switch typ {
		case ws.Binary:
			seq++
			if terminal := s.streamFeed(pump, id, seq, data); terminal {
				conn.WriteClose(ws.StatusPolicyViolation, "session gone")
				return
			}
		case ws.Text:
			var cmd streamCommand
			if err := json.Unmarshal(data, &cmd); err != nil {
				pump.send(StreamEvent{Type: StreamEventError, Error: "malformed command: " + err.Error()})
				continue
			}
			switch cmd.Cmd {
			case "flush":
				seq++
				if terminal := s.streamFlush(pump, id, seq); terminal {
					conn.WriteClose(ws.StatusPolicyViolation, "session gone")
					return
				}
			case "close":
				if err := s.mgr.Close(id); err == nil {
					opened = false // already closed; the defer must not double-close
				}
				// Finish the handshake: send close, then keep reading
				// until the peer's reply surfaces as a CloseError.
				conn.WriteClose(ws.StatusNormalClosure, "")
			default:
				pump.send(StreamEvent{Type: StreamEventError, Error: "unknown command " + cmd.Cmd})
			}
		}
	}
}

// rejectStream reports a pre-stream failure (open or attach) on a
// connection that has no pump yet, then closes with a policy code.
func (s *Server) rejectStream(conn *ws.Conn, err error) {
	data, merr := json.Marshal(StreamEvent{Type: StreamEventError, Error: err.Error()})
	if merr == nil {
		_ = conn.SetWriteDeadline(time.Now().Add(wsWriteTimeout))
		_ = conn.WriteMessage(ws.Text, data)
		s.ws.framesOut.Add(1)
	}
	_ = conn.CloseHandshake(ws.StatusPolicyViolation, err.Error(), wsCloseTimeout)
}

// wsKeepaliveLoop pings the peer and refreshes the session's idle
// clock until stop closes. Write failures are ignored: the read loop
// observes the dead connection and tears everything down.
func (s *Server) wsKeepaliveLoop(conn *ws.Conn, id string, stop <-chan struct{}) {
	interval := s.wsKeepalive
	if interval <= 0 {
		interval = wsKeepaliveDefault
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = conn.SetWriteDeadline(time.Now().Add(wsWriteTimeout))
			_ = conn.WritePing(nil)
			_ = s.touch(id)
		case <-stop:
			return
		}
	}
}

// streamFeed decodes and feeds one binary chunk, retrying through
// shard backpressure so the audio stays contiguous — a full queue
// surfaces to the client as a backpressure event, never a dropped
// frame. Exactly one detection (or error) event with this seq is
// emitted. The return value reports terminal session errors.
func (s *Server) streamFeed(pump *wsPump, id string, seq uint64, body []byte) bool {
	chunk, err := decodePCM16(body, int64(2*s.mgr.MaxChunk()))
	if err != nil {
		pump.send(StreamEvent{Type: StreamEventError, Seq: seq, Error: err.Error()})
		return false
	}
	dets, err := s.streamSubmit(pump, seq, func() ([]pipeline.Detection, error) {
		return s.mgr.Feed(id, chunk)
	})
	if err != nil {
		pump.send(StreamEvent{Type: StreamEventError, Seq: seq, Error: err.Error()})
		return errors.Is(err, ErrUnknownSession) || errors.Is(err, ErrClosed)
	}
	pump.send(StreamEvent{Type: StreamEventDetection, Seq: seq, Detections: detectionsJSON(dets)})
	return false
}

// streamFlush drains the session and emits the detection event plus a
// candidates event (always, even when empty, so clients have a
// definite end-of-flush marker).
func (s *Server) streamFlush(pump *wsPump, id string, seq uint64) bool {
	var cands []infer.Candidate
	dets, err := s.streamSubmit(pump, seq, func() ([]pipeline.Detection, error) {
		var ferr error
		dets, cs, ferr := s.mgr.Flush(id)
		cands = cs
		return dets, ferr
	})
	if err != nil {
		pump.send(StreamEvent{Type: StreamEventError, Seq: seq, Error: err.Error()})
		return errors.Is(err, ErrUnknownSession) || errors.Is(err, ErrClosed)
	}
	pump.send(StreamEvent{Type: StreamEventDetection, Seq: seq, Detections: detectionsJSON(dets)})
	pump.send(StreamEvent{Type: StreamEventCandidates, Seq: seq, Words: candidatesJSON(cands)})
	return false
}

// streamSubmit runs one ingest operation with bounded backpressure
// retries, emitting a single backpressure event on the first
// rejection.
func (s *Server) streamSubmit(pump *wsPump, seq uint64, op func() ([]pipeline.Detection, error)) ([]pipeline.Detection, error) {
	for attempt := 0; ; attempt++ {
		dets, err := op()
		if !errors.Is(err, ErrBackpressure) {
			return dets, err
		}
		if attempt == 0 {
			pump.send(StreamEvent{
				Type:    StreamEventBackpressure,
				Seq:     seq,
				RetryMs: int(wsBackpressureDelay / time.Millisecond),
			})
		}
		if attempt >= wsBackpressureRetries {
			return nil, err
		}
		time.Sleep(wsBackpressureDelay)
	}
}
