package serve

import (
	"time"

	"repro/internal/dsp"
	"repro/internal/pipeline"
)

// collector is the per-manager batch-STFT drain loop enabled by
// Config.STFTBatch: instead of one worker goroutine per Feed, a single
// goroutine drains up to STFTBatch ready sessions from the ingest queue
// each cycle, copies their pending FFT frames out under each session's
// lock, computes every column through one shared dsp.BatchSTFT pass
// with no locks held, then commits columns and runs each session's
// detection pass under its own lock again. The shared plan's twiddle
// tables and scratch stay cache-hot across the whole batch, which is
// where the cross-session throughput win comes from (BenchmarkSTFTBatch
// measures it).
//
// Correctness contract, kept identical to the worker path:
//   - Per-session serialization: only the collector processes jobs, and
//     any job for a session already touched this cycle is deferred and
//     run strictly after the batch commit, in arrival order.
//   - Flush jobs and over-long feeds never batch; they run through the
//     same sequential code as the worker path.
//   - Columns are bit-identical to Stream.Feed's per-frame path (pinned
//     by the dsp differential tests and the stress equivalence test),
//     so detection transcripts do not change when batching is enabled.
//   - A session closed between copy-out and commit is detected under
//     its lock at commit time; its freed stream is never touched.
type collector struct {
	m *Manager
	k int // lanes per cycle (Config.STFTBatch)

	// bs and scratch are built lazily from the first batched session's
	// engine config (engines are uniform per manager: one factory).
	bs      *dsp.BatchSTFT
	scratch [][]float64 // k frame copies, each FFTSize samples
	views   [][]float64 // reused header over scratch for Columns
	dsts    [][]float64 // reused header over entry columns for Columns

	used     int // scratch lanes filled this cycle
	entries  []batchEntry
	deferred []*job
	touched  map[*session]bool
}

// batchEntry is one session's share of a batch cycle: the job, its
// latency clock, and the freshly allocated columns (lane..lane+n) the
// commit phase hands over to the stream.
type batchEntry struct {
	j     *job
	start time.Time
	n     int
	cols  [][]float64
}

// collectorLoop runs on the manager's single collector goroutine when
// STFTBatch is enabled, replacing the worker pool.
func (m *Manager) collectorLoop() {
	defer m.wg.Done()
	c := &collector{m: m, k: m.cfg.STFTBatch, touched: make(map[*session]bool)}
	for {
		select {
		case j := <-m.jobs:
			c.cycle(j)
		case <-m.quit:
			return
		}
	}
}

// cycle processes one drain of the ingest queue: the blocking first job
// plus whatever else is already queued, up to k jobs.
func (c *collector) cycle(first *job) {
	c.used = 0
	c.entries = c.entries[:0]
	c.deferred = c.deferred[:0]
	clear(c.touched)

	c.admit(first)
drain:
	for n := 1; n < c.k; n++ {
		select {
		case j := <-c.m.jobs:
			c.admit(j)
		default:
			break drain
		}
	}
	share, computeErr := c.compute()
	c.commit(share, computeErr)
	// Deferred jobs (flushes, and later jobs of sessions already touched
	// this cycle) run after the batch commit, in arrival order, through
	// the exact worker-path code.
	for _, j := range c.deferred {
		c.m.runJob(j)
	}
}

// admit routes one job: defer it if it cannot join this batch, finish
// it inline if its frames don't fit, otherwise copy its pending frames
// into the batch under the session lock (phase A).
func (c *collector) admit(j *job) {
	sess := j.sess
	if j.flush || c.touched[sess] {
		c.touched[sess] = true
		c.deferred = append(c.deferred, j)
		return
	}
	c.touched[sess] = true
	m := c.m
	if m.testJobStart != nil {
		m.testJobStart()
	}
	if m.cfg.JobStartHook != nil {
		m.cfg.JobStartHook(sess.id)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed || sess.stream == nil {
		// ew:allow lockhold: reply has capacity 1 and exactly one writer
		// per job, so this send never blocks.
		j.reply <- jobResult{err: ErrUnknownSession}
		return
	}
	start := time.Now()
	if err := sess.stream.Accumulate(j.chunk); err != nil {
		m.finishJob(j, start, nil, err)
		return
	}
	if c.bs == nil {
		c.init(sess.stream.Engine().Config().STFT)
	}
	n := sess.stream.PendingFrames()
	if n == 0 || c.used+n > c.k || c.bs == nil {
		// Nothing to batch (quiet chunk), no lane space left, or the
		// engine config has no batchable shape — finish the feed inline:
		// the chunk is already accumulated, so an empty Feed runs the
		// in-stream hop loop and detection pass, identically to the
		// worker path.
		//
		// ew:allow lockhold: per-session serialization, as in runJob.
		dets, err := sess.stream.Feed(nil)
		m.finishJob(j, start, dets, err)
		return
	}
	for i := 0; i < n; i++ {
		copy(c.scratch[c.used+i], sess.stream.PendingFrame(i))
	}
	c.used += n
	cols := make([][]float64, n)
	for i := range cols {
		// Freshly allocated per column: AcceptColumns hands ownership to
		// the stream's spectrogram window, exactly like FrameColumn's
		// per-column allocation on the worker path.
		cols[i] = make([]float64, c.bs.Bins())
	}
	c.entries = append(c.entries, batchEntry{j: j, start: start, n: n, cols: cols})
}

// init builds the shared BatchSTFT and frame scratch from the engine
// config; engines are uniform per manager, so the first session's
// config stands for all. A config NewBatchSTFT rejects cannot occur for
// a pool-built engine (its STFT validated the same config), but if it
// does, bs stays nil and every feed runs inline.
func (c *collector) init(cfg dsp.STFTConfig) {
	bs, err := dsp.NewBatchSTFT(cfg, c.k)
	if err != nil {
		return
	}
	c.bs = bs
	c.scratch = make([][]float64, c.k)
	for i := range c.scratch {
		c.scratch[i] = make([]float64, bs.Config().FFTSize)
	}
	c.views = make([][]float64, 0, c.k)
	c.dsts = make([][]float64, 0, c.k)
}

// compute runs the shared batch pass over all copied frames with no
// session locks held (phase B), returning the per-lane share of the
// pass for stage attribution.
func (c *collector) compute() (share time.Duration, err error) {
	if c.used == 0 {
		return 0, nil
	}
	c.views = c.views[:0]
	for i := 0; i < c.used; i++ {
		c.views = append(c.views, c.scratch[i])
	}
	c.dsts = c.dsts[:0]
	for _, e := range c.entries {
		c.dsts = append(c.dsts, e.cols...)
	}
	t0 := time.Now()
	err = c.bs.Columns(c.views, c.dsts)
	return time.Since(t0) / time.Duration(c.used), err
}

// commit hands each session its columns and runs its detection pass
// under its own lock (phase C). A session that closed since phase A
// (Close, eviction, shutdown — its stream is already reset and back in
// the pool) is detected here and its job fails with ErrUnknownSession,
// the same answer the worker path gives a feed racing a close.
func (c *collector) commit(share time.Duration, computeErr error) {
	m := c.m
	for i := range c.entries {
		e := &c.entries[i]
		sess := e.j.sess
		sess.mu.Lock()
		if sess.closed || sess.stream == nil {
			// ew:allow lockhold: reply has capacity 1 and exactly one
			// writer per job, so this send never blocks.
			e.j.reply <- jobResult{err: ErrUnknownSession}
			sess.mu.Unlock()
			continue
		}
		var dets []pipeline.Detection
		err := computeErr
		if err == nil {
			err = sess.stream.AcceptColumns(e.cols)
		}
		if err == nil {
			sess.stream.AccrueSTFT(share * time.Duration(e.n))
			dets, err = sess.stream.Detect()
		}
		m.finishJob(e.j, e.start, dets, err)
		sess.mu.Unlock()
	}
}
