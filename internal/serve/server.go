package serve

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"repro/internal/infer"
	"repro/internal/metrics/expose"
	"repro/internal/pipeline"
)

// Server is the chunked-ingest HTTP front end. Wire protocol:
//
//	POST   /v1/sessions            → {"session":"s000001"}
//	POST   /v1/sessions/{id}/audio → body: 16-bit little-endian mono PCM
//	                                 at the engine's sample rate;
//	                                 response: completed detections
//	POST   /v1/sessions/{id}/flush → drains the partial frame; response
//	                                 adds word candidates for the
//	                                 accumulated stroke sequence
//	DELETE /v1/sessions/{id}       → close the session
//	GET    /statsz                 → Stats snapshot (JSON)
//	GET    /metricsz               → Prometheus text exposition
//	                                 (text/plain; version=0.0.4)
//
// Backpressure surfaces as 429 (retry the same chunk), an oversized
// chunk as 413, an unknown/evicted session as 404, and a full session
// table as 503.
type Server struct {
	mgr Service
	mux *http.ServeMux
	// reg is the /metricsz registry; nil when mgr is a foreign Service
	// implementation that does not expose the internal metrics surface.
	reg *expose.Registry
	// ws aggregates the streaming subsystem's metrics (see ws.go).
	ws *wsStats
	// wsKeepalive overrides the stream ping/touch interval; zero means
	// wsKeepaliveDefault. Tests shrink it to exercise the keepalive path.
	wsKeepalive time.Duration
}

// Service is the session-manager surface the HTTP front end drives.
// *Manager and *ShardedManager both implement it; embedders can wrap
// either with their own middleware.
type Service interface {
	Open() (string, error)
	Feed(id string, chunk []float64) ([]pipeline.Detection, error)
	Flush(id string) ([]pipeline.Detection, []infer.Candidate, error)
	Close(id string) error
	EvictIdle() int
	Snapshot() Stats
	MaxChunk() int
	Shutdown()
}

var (
	_ Service = (*Manager)(nil)
	_ Service = (*ShardedManager)(nil)
)

// NewServer wires the routes around an existing manager (sharded or
// single). /metricsz renders the Prometheus exposition when mgr is one
// of the package's managers (or embeds one); a foreign Service gets
// the JSON /statsz only and 404 on /metricsz.
func NewServer(mgr Service) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), ws: newWSStats()}
	if ms, ok := mgr.(metricsSource); ok {
		s.reg = newServiceRegistry(ms)
		registerWSMetrics(s.reg, s.ws)
	}
	s.mux.HandleFunc("POST /v1/sessions", s.handleOpen)
	s.mux.HandleFunc("GET /v1/stream", s.handleStream)
	s.mux.HandleFunc("POST /v1/sessions/{id}/audio", s.handleAudio)
	s.mux.HandleFunc("POST /v1/sessions/{id}/flush", s.handleFlush)
	s.mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleClose)
	s.mux.HandleFunc("GET /statsz", s.handleStatsz)
	s.mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	return s
}

// Handler returns the route table for use with http.Server or tests.
func (s *Server) Handler() http.Handler { return s.mux }

// RunEvictor loops idle-session eviction every interval until stop is
// closed. cmd/ewserve runs it next to ListenAndServe.
func (s *Server) RunEvictor(interval time.Duration, stop <-chan struct{}) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.mgr.EvictIdle()
		case <-stop:
			return
		}
	}
}

// DetectionJSON is one recognized stroke on the wire. Frame indices are
// absolute from session start at the engine's hop rate.
type DetectionJSON struct {
	Stroke       string `json:"stroke"`
	StartFrame   int    `json:"start_frame"`
	EndFrame     int    `json:"end_frame"`
	Contaminated bool   `json:"contaminated,omitempty"`
}

// CandidateJSON is one scored word suggestion on the wire.
type CandidateJSON struct {
	Word      string  `json:"word"`
	Score     float64 `json:"score"`
	Corrected bool    `json:"corrected,omitempty"`
}

type openResponse struct {
	Session string `json:"session"`
}

type audioResponse struct {
	Session    string          `json:"session"`
	Detections []DetectionJSON `json:"detections"`
}

type flushResponse struct {
	Session    string          `json:"session"`
	Detections []DetectionJSON `json:"detections"`
	Words      []CandidateJSON `json:"words"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) handleOpen(w http.ResponseWriter, r *http.Request) {
	id, err := s.mgr.Open()
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, openResponse{Session: id})
}

func (s *Server) handleAudio(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	chunk, err := readPCM16(w, r, s.maxBodyBytes())
	if err != nil {
		writeError(w, err)
		return
	}
	dets, err := s.mgr.Feed(id, chunk)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, audioResponse{Session: id, Detections: detectionsJSON(dets)})
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	dets, cands, err := s.mgr.Flush(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, flushResponse{
		Session:    id,
		Detections: detectionsJSON(dets),
		Words:      candidatesJSON(cands),
	})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if err := s.mgr.Close(r.PathValue("id")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStatsz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Snapshot())
}

// metricsContentType is the Prometheus text exposition content type.
const metricsContentType = "text/plain; version=0.0.4; charset=utf-8"

func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	if s.reg == nil {
		http.Error(w, "metrics exposition unavailable for this service implementation", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", metricsContentType)
	if err := s.reg.WriteText(w); err != nil {
		// Headers are out; nothing useful left to do (mirrors writeJSON).
		_ = err
	}
}

// maxBodyBytes caps an audio POST at the manager's per-feed sample cap.
func (s *Server) maxBodyBytes() int64 {
	return 2 * int64(s.mgr.MaxChunk())
}

// errBadBody marks malformed request bodies (maps to 400).
var errBadBody = errors.New("serve: malformed audio body")

// readPCM16 decodes a request body of 16-bit little-endian mono PCM into
// the [-1,1) float samples the pipeline consumes.
func readPCM16(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]float64, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, fmt.Errorf("%w: body over %d bytes", pipeline.ErrOversizedChunk, maxBytes)
		}
		return nil, fmt.Errorf("%w: %v", errBadBody, err)
	}
	return decodePCM16(body, maxBytes)
}

// decodePCM16 converts one wire chunk (16-bit LE mono PCM) into float
// samples — the shared decode path for the HTTP body and WebSocket
// binary-frame ingest routes.
func decodePCM16(body []byte, maxBytes int64) ([]float64, error) {
	if int64(len(body)) > maxBytes {
		return nil, fmt.Errorf("%w: body over %d bytes", pipeline.ErrOversizedChunk, maxBytes)
	}
	if len(body)%2 != 0 {
		return nil, fmt.Errorf("%w: odd byte count %d", errBadBody, len(body))
	}
	out := make([]float64, len(body)/2)
	for i := range out {
		out[i] = float64(int16(binary.LittleEndian.Uint16(body[2*i:]))) / 32768
	}
	return out, nil
}

// EncodePCM16 converts float samples to the wire format. Exported for
// load generators and client tooling.
//
// The scale is 32768 — the same one readPCM16 divides by — with
// round-half-away-from-zero and saturation at the int16 limits, so
// encode→decode round-trips within half a quantization step
// (1/65536) everywhere except at the positive clip, where +1.0
// saturates to 32767 and the error reaches 1/32768; -1.0 maps exactly
// to -32768 and back. (The previous *32767-and-truncate encoding was
// asymmetric with the decoder: every sample came back biased toward
// zero and the -32768 codepoint was unreachable.)
func EncodePCM16(samples []float64) []byte {
	out := make([]byte, 2*len(samples))
	for i, v := range samples {
		f := math.Round(v * 32768)
		if f > 32767 {
			f = 32767
		} else if f < -32768 {
			f = -32768
		}
		binary.LittleEndian.PutUint16(out[2*i:], uint16(int16(f)))
	}
	return out
}

func detectionsJSON(dets []pipeline.Detection) []DetectionJSON {
	out := make([]DetectionJSON, len(dets))
	for i, d := range dets {
		out[i] = DetectionJSON{
			Stroke:       d.Stroke.String(),
			StartFrame:   d.Segment.Start,
			EndFrame:     d.Segment.End,
			Contaminated: d.Contaminated,
		}
	}
	return out
}

func candidatesJSON(cands []infer.Candidate) []CandidateJSON {
	out := make([]CandidateJSON, len(cands))
	for i, c := range cands {
		out[i] = CandidateJSON{Word: c.Word, Score: c.Score, Corrected: c.Corrected}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are out; nothing useful left to do.
		_ = err
	}
}

// writeError maps typed service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBackpressure):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownSession):
		status = http.StatusNotFound
	case errors.Is(err, ErrSessionLimit), errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, pipeline.ErrOversizedChunk):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, errBadBody):
		status = http.StatusBadRequest
	}
	writeJSON(w, status, errorResponse{Error: err.Error()})
}
