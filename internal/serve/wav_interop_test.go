package serve

import (
	"bytes"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/audio"
)

// TestWAVDecodeSurvivesPCM16Wire proves the property the record/replay
// harness leans on: a WAV-decoded trace pushed through the serving wire
// codec (EncodePCM16 → decodePCM16) comes back bit-identical, because
// both sides quantize on the same ×32768 grid. Random — not
// pre-quantized — signals, so the WAV encoder's own rounding is under
// test too.
func TestWAVDecodeSurvivesPCM16Wire(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 31))
		s := &audio.Signal{Rate: 44100, Samples: make([]float64, 128)}
		for i := range s.Samples {
			// Span the full range including overloads beyond ±1.
			s.Samples[i] = (rng.Float64() - 0.5) * 2.4
		}
		var buf bytes.Buffer
		if err := audio.EncodeWAV(&buf, s); err != nil {
			t.Logf("encode: %v", err)
			return false
		}
		dec, err := audio.DecodeWAV(&buf)
		if err != nil {
			t.Logf("decode: %v", err)
			return false
		}
		wire, err := decodePCM16(EncodePCM16(dec.Samples), 1<<20)
		if err != nil {
			t.Logf("wire: %v", err)
			return false
		}
		for i := range dec.Samples {
			if math.Float64bits(wire[i]) != math.Float64bits(dec.Samples[i]) {
				t.Logf("sample %d: wav %v -> wire %v", i, dec.Samples[i], wire[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestWAVWireDoubleRoundTrip pins the stronger idempotence claim: once a
// signal has been through WAV quantization, a second WAV round trip and
// the wire round trip all agree exactly.
func TestWAVWireDoubleRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	s := &audio.Signal{Rate: 44100, Samples: make([]float64, 512)}
	for i := range s.Samples {
		s.Samples[i] = (rng.Float64() - 0.5) * 2
	}
	var first bytes.Buffer
	if err := audio.EncodeWAV(&first, s); err != nil {
		t.Fatal(err)
	}
	once, err := audio.DecodeWAV(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := audio.EncodeWAV(&second, once); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("second WAV encode changed bytes: quantization is not idempotent")
	}
	if !bytes.Equal(EncodePCM16(once.Samples), second.Bytes()[44:]) {
		t.Fatal("wire PCM16 disagrees with WAV data chunk for quantized samples")
	}
}
