package serve

import (
	"errors"
	"fmt"
	"math"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/infer"
	"repro/internal/metrics"
	"repro/internal/metrics/expose"
	"repro/internal/pipeline"
	ewruntime "repro/internal/runtime"
	"repro/internal/stroke"
)

// Typed service errors. The HTTP front end maps these onto status codes;
// embedded callers branch with errors.Is.
var (
	// ErrBackpressure means the ingest queue is full: the service sheds
	// the chunk instead of buffering without bound. Clients retry after
	// a short delay.
	ErrBackpressure = errors.New("serve: ingest queue full")
	// ErrSessionLimit means the bounded session table is full even after
	// idle eviction.
	ErrSessionLimit = errors.New("serve: session limit reached")
	// ErrUnknownSession means the session ID was never opened, was
	// closed, or was evicted for idleness.
	ErrUnknownSession = errors.New("serve: unknown session")
	// ErrClosed means the manager has been shut down.
	ErrClosed = errors.New("serve: manager closed")
)

// Config parameterizes a Manager. The zero value is usable: every field
// has a serving-appropriate default.
type Config struct {
	// Engines builds recognizer engines for the pool (nil: default
	// pipeline configuration).
	Engines EngineFactory
	// Recognizer, when set, produces word candidates from each session's
	// accumulated stroke sequence on Flush. It is shared across sessions
	// and must therefore be used read-only (infer.Recognizer is).
	Recognizer *infer.Recognizer
	// MaxSessions bounds the session table (default 64).
	MaxSessions int
	// IdleTimeout is how long a session may sit without a Feed before
	// EvictIdle may reclaim it (default 2 minutes; <0 disables).
	IdleTimeout time.Duration
	// Workers is the processing goroutine count (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the shared ingest queue; a full queue yields
	// ErrBackpressure (default 4×Workers).
	QueueDepth int
	// Prewarm engines built at startup (default min(2, MaxSessions)).
	Prewarm int
	// MaxChunk caps buffered samples per Feed call per session
	// (default pipeline.DefaultMaxChunk).
	MaxChunk int
	// MaxWindow bounds each session's retained spectrogram columns
	// (default 0: the stream's own 1024-frame default).
	MaxWindow int
	// STFTBatch, when positive, replaces the worker pool with a single
	// batch collector per manager: each cycle drains up to STFTBatch
	// ready sessions from the ingest queue, computes all their pending
	// STFT columns through one shared dsp.BatchSTFT pass, then runs each
	// session's detection pass under its own lock. Per-session
	// serialization, backpressure, and the reply contract are unchanged;
	// detections are bit-identical to the per-worker path. Zero disables
	// batching (the default: one Feed per worker). Workers still sizes
	// the queue-depth default and is reported in stats.
	STFTBatch int
	// Clock supplies time for idle accounting (default time.Now); tests
	// inject a fake.
	Clock func() time.Time
	// JobStartHook, when set, runs at the top of every worker job with
	// the job's session ID. It exists for fault injection: the stress
	// suite uses it to stall chosen sessions, saturate queues
	// deterministically, and shake goroutine interleavings. Production
	// configs leave it nil.
	JobStartHook func(sessionID string)
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.Workers <= 0 {
		c.Workers = stdruntime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Prewarm <= 0 {
		c.Prewarm = 2
	}
	if c.Prewarm > c.MaxSessions {
		c.Prewarm = c.MaxSessions
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	return c
}

// latencyRing bounds how many recent feed latencies the stats snapshot
// summarizes.
const latencyRing = 4096

// feedLatencyBuckets are the upper bounds (milliseconds) of the
// /metricsz feed-latency histogram: octaves from 0.25 ms to 512 ms, so
// both a warm sub-millisecond feed and a cold-engine or contended-shard
// stall land in informative buckets.
var feedLatencyBuckets = mustExpBuckets(0.25, 2, 12)

func mustExpBuckets(start, factor float64, n int) []float64 {
	b, err := expose.ExpBuckets(start, factor, n)
	if err != nil {
		panic(err)
	}
	return b
}

// Manager owns per-session stream state keyed by session ID and pushes
// every chunk through a bounded worker pool. Feed and Flush are
// synchronous: they enqueue a job and wait for its result, so a caller
// that feeds one session sequentially observes detections in order.
// Distinct sessions are processed concurrently up to Workers.
type Manager struct {
	cfg  Config
	pool *EnginePool
	jobs chan *job
	quit chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	sessions map[string]*session // guarded by mu
	nextID   uint64              // guarded by mu
	closed   bool                // guarded by mu

	chunks     atomic.Uint64
	detections atomic.Uint64
	rejected   atomic.Uint64
	evictions  atomic.Uint64
	feedErrors atomic.Uint64
	stages     ewruntime.SharedBreakdown

	latMu sync.Mutex
	lat   *metrics.Reservoir // guarded by latMu

	// latHist is the cumulative feed-latency histogram behind /metricsz;
	// internally atomic, so no lock is shared with the reservoir.
	latHist *expose.Histogram

	// testJobStart, when set, runs at the top of every worker job; tests
	// use it to hold workers and saturate the queue deterministically.
	testJobStart func()
}

// session serializes all pipeline work for one client. The mutex is held
// for the duration of each job, so a session's stream never runs on two
// workers at once.
type session struct {
	id string

	mu     sync.Mutex
	stream *pipeline.Stream // guarded by mu
	seq    stroke.Sequence  // guarded by mu
	// pendingStages accumulates stream stage-time deltas since the last
	// emitted stroke, so the shared breakdown attributes quiet-feed cost
	// to the strokes it ultimately produced.
	pendingStages pipeline.StageTimings // guarded by mu
	lastStages    pipeline.StageTimings // guarded by mu
	closed        bool                  // guarded by mu

	lastActive atomic.Int64 // unix nanoseconds
}

type job struct {
	sess  *session
	chunk []float64
	flush bool
	reply chan jobResult
}

type jobResult struct {
	dets []pipeline.Detection
	err  error
}

// NewManager validates cfg, pre-warms the engine pool and starts the
// worker goroutines. Call Shutdown to release them.
func NewManager(cfg Config) (*Manager, error) {
	cfg = cfg.withDefaults()
	pool, err := NewEnginePool(cfg.Engines, cfg.Prewarm)
	if err != nil {
		return nil, err
	}
	lat, err := metrics.NewReservoir(latencyRing)
	if err != nil {
		return nil, err
	}
	hist, err := expose.NewHistogram(feedLatencyBuckets)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:      cfg,
		pool:     pool,
		jobs:     make(chan *job, cfg.QueueDepth),
		quit:     make(chan struct{}),
		sessions: make(map[string]*session),
		lat:      lat,
		latHist:  hist,
	}
	if cfg.STFTBatch > 0 {
		m.wg.Add(1)
		go m.collectorLoop()
	} else {
		m.wg.Add(cfg.Workers)
		for i := 0; i < cfg.Workers; i++ {
			go m.worker()
		}
	}
	return m, nil
}

// Open registers a new session and returns its ID. When the table is
// full it first attempts idle eviction; if the table is still full the
// call fails with ErrSessionLimit.
func (m *Manager) Open() (string, error) {
	return m.open("")
}

// OpenWithID registers a session under a caller-chosen ID — the hook a
// ShardedManager uses to mint IDs that hash to the shard it routes
// through. The ID must be non-empty and not currently in the table.
func (m *Manager) OpenWithID(id string) error {
	if id == "" {
		return fmt.Errorf("serve: empty session id")
	}
	_, err := m.open(id)
	return err
}

// open shares the admission path of Open and OpenWithID: an empty id
// means "mint the next sequential one".
func (m *Manager) open(id string) (string, error) {
	for attempt := 0; ; attempt++ {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return "", ErrClosed
		}
		if id != "" {
			if _, dup := m.sessions[id]; dup {
				m.mu.Unlock()
				return "", fmt.Errorf("serve: duplicate session id %q", id)
			}
		}
		if len(m.sessions) < m.cfg.MaxSessions {
			break // holds m.mu
		}
		m.mu.Unlock()
		if attempt > 0 || m.EvictIdle() == 0 {
			return "", ErrSessionLimit
		}
	}
	if id == "" {
		m.nextID++
		id = fmt.Sprintf("s%06d", m.nextID)
	}
	sess := &session{id: id}
	sess.lastActive.Store(m.cfg.Clock().UnixNano())
	m.sessions[id] = sess
	m.mu.Unlock()

	// Engine checkout happens outside m.mu: building a cold engine is
	// the slow path and must not block unrelated sessions.
	st, err := m.pool.Get()
	if err != nil {
		m.mu.Lock()
		delete(m.sessions, id)
		m.mu.Unlock()
		return "", err
	}
	st.MaxChunk = m.cfg.MaxChunk
	st.MaxWindow = m.cfg.MaxWindow
	sess.mu.Lock()
	sess.stream = st
	sess.mu.Unlock()
	return id, nil
}

// Feed pushes one audio chunk into a session and returns the strokes
// that completed. A full ingest queue yields ErrBackpressure without
// touching session state.
func (m *Manager) Feed(id string, chunk []float64) ([]pipeline.Detection, error) {
	sess, err := m.lookup(id)
	if err != nil {
		return nil, err
	}
	return m.submit(sess, chunk, false)
}

// Flush drains a session's partial frame, returning the final
// detections plus word candidates for the accumulated stroke sequence
// (when a Recognizer is configured). The sequence resets afterwards so
// the next word starts clean; the session itself stays open.
func (m *Manager) Flush(id string) ([]pipeline.Detection, []infer.Candidate, error) {
	sess, err := m.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	dets, err := m.submit(sess, nil, true)
	if err != nil {
		return nil, nil, err
	}
	sess.mu.Lock()
	seq := sess.seq
	sess.seq = nil
	sess.mu.Unlock()
	if m.cfg.Recognizer == nil || len(seq) == 0 {
		return dets, nil, nil
	}
	cands, err := m.cfg.Recognizer.Recognize(seq)
	if err != nil {
		return dets, nil, fmt.Errorf("serve: word candidates: %w", err)
	}
	return dets, cands, nil
}

// Close removes a session and returns its engine to the pool.
func (m *Manager) Close(id string) error {
	m.mu.Lock()
	sess, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	if !ok {
		return ErrUnknownSession
	}
	m.release(sess)
	return nil
}

// Touch refreshes a session's idle clock without submitting work. The
// streaming front end calls it so a live connection counts as session
// activity for EvictIdle even when no audio is flowing.
func (m *Manager) Touch(id string) error {
	sess, err := m.lookup(id)
	if err != nil {
		return err
	}
	sess.lastActive.Store(m.cfg.Clock().UnixNano())
	return nil
}

// EvictIdle reclaims sessions idle past IdleTimeout, returning how many
// were evicted. The HTTP server calls this on a timer; Open calls it
// when the table is full.
func (m *Manager) EvictIdle() int {
	if m.cfg.IdleTimeout <= 0 {
		return 0
	}
	cutoff := m.cfg.Clock().Add(-m.cfg.IdleTimeout).UnixNano()
	m.mu.Lock()
	var idle []*session
	for id, sess := range m.sessions {
		if sess.lastActive.Load() < cutoff {
			idle = append(idle, sess)
			delete(m.sessions, id)
		}
	}
	m.mu.Unlock()
	for _, sess := range idle {
		m.release(sess)
	}
	if len(idle) > 0 {
		m.evictions.Add(uint64(len(idle)))
	}
	return len(idle)
}

// Shutdown closes every session, stops the workers and waits for them.
// Queued jobs are abandoned; their callers receive ErrClosed.
func (m *Manager) Shutdown() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	var open []*session
	for id, sess := range m.sessions {
		open = append(open, sess)
		delete(m.sessions, id)
	}
	m.mu.Unlock()
	for _, sess := range open {
		m.release(sess)
	}
	close(m.quit)
	m.wg.Wait()
}

func (m *Manager) lookup(id string) (*session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	sess, ok := m.sessions[id]
	if !ok {
		return nil, ErrUnknownSession
	}
	return sess, nil
}

// release marks a session closed and checks its stream back in. It must
// be called after the session left the table, so no new jobs target it;
// an in-flight job finishes first because both sides take sess.mu.
func (m *Manager) release(sess *session) {
	sess.mu.Lock()
	if !sess.closed {
		sess.closed = true
		if sess.stream != nil {
			m.pool.Put(sess.stream)
			sess.stream = nil
		}
	}
	sess.mu.Unlock()
}

// submit enqueues one job with admission control and waits for it.
func (m *Manager) submit(sess *session, chunk []float64, flush bool) ([]pipeline.Detection, error) {
	j := &job{sess: sess, chunk: chunk, flush: flush, reply: make(chan jobResult, 1)}
	select {
	case m.jobs <- j:
	default:
		m.rejected.Add(1)
		return nil, ErrBackpressure
	}
	select {
	case r := <-j.reply:
		return r.dets, r.err
	case <-m.quit:
		return nil, ErrClosed
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case j := <-m.jobs:
			m.runJob(j)
		case <-m.quit:
			return
		}
	}
}

func (m *Manager) runJob(j *job) {
	if m.testJobStart != nil {
		m.testJobStart()
	}
	if m.cfg.JobStartHook != nil {
		m.cfg.JobStartHook(j.sess.id)
	}
	sess := j.sess
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed || sess.stream == nil {
		// ew:allow lockhold: reply has capacity 1 and exactly one writer
		// per job, so this send never blocks.
		j.reply <- jobResult{err: ErrUnknownSession}
		return
	}
	start := time.Now()
	var (
		dets []pipeline.Detection
		err  error
	)
	if j.flush {
		// ew:allow lockhold: holding sess.mu across the DSP pass is the
		// design — the per-session lock serializes the stream without
		// stalling other sessions, which lock only their own mutexes.
		dets, err = sess.stream.Flush()
	} else {
		// ew:allow lockhold: same per-session serialization as Flush.
		dets, err = sess.stream.Feed(j.chunk)
	}
	m.finishJob(j, start, dets, err)
}

// finishJob is the accounting and reply tail every processed job goes
// through, worker and batch-collector paths alike. Latency and stage
// deltas are recorded on the error branch too: a failed feed has
// already spent real pipeline time (the stream accrues its hop-loop
// cost on every exit), and hiding it made error storms look free on
// /metricsz while their cost bled into the next successful feed's
// attribution. Successful-chunk and detection counters stay
// success-only; errors land in feedErrors (echowrite_feed_errors_total).
//
// ew:holds sess.mu — callers invoke this with the job's session locked.
func (m *Manager) finishJob(j *job, start time.Time, dets []pipeline.Detection, err error) {
	sess := j.sess
	m.recordLatency(time.Since(start))
	m.accountStages(sess, len(dets))
	if err == nil {
		m.chunks.Add(1)
		for _, d := range dets {
			sess.seq = append(sess.seq, d.Stroke)
		}
		if len(dets) > 0 {
			m.detections.Add(uint64(len(dets)))
		}
	} else {
		m.feedErrors.Add(1)
	}
	sess.lastActive.Store(m.cfg.Clock().UnixNano())
	// ew:allow lockhold: reply has capacity 1 and exactly one writer per
	// job, so this send never blocks.
	j.reply <- jobResult{dets: dets, err: err}
}

// accountStages folds the stream's stage-time delta since the previous
// job into the session's pending bucket, and flushes the bucket into the
// shared breakdown whenever strokes completed — so per-stroke stage
// means include the quiet feeds that led up to each stroke.
//
// ew:holds sess.mu — only runJob calls this, with the session locked.
func (m *Manager) accountStages(sess *session, strokes int) {
	t := sess.stream.Timings()
	last := sess.lastStages
	sess.lastStages = t
	sess.pendingStages.STFT += t.STFT - last.STFT
	sess.pendingStages.Enhancement += t.Enhancement - last.Enhancement
	sess.pendingStages.Profile += t.Profile - last.Profile
	sess.pendingStages.Segmentation += t.Segmentation - last.Segmentation
	sess.pendingStages.DTW += t.DTW - last.DTW
	if strokes > 0 {
		m.stages.Add(sess.pendingStages, strokes)
		sess.pendingStages = pipeline.StageTimings{}
	}
}

func (m *Manager) recordLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.latMu.Lock()
	m.lat.Add(ms)
	m.latMu.Unlock()
	m.latHist.Observe(ms)
}

// latencySamples copies the retained feed-latency samples; the sharded
// aggregator pools them across shards for merged quantiles.
func (m *Manager) latencySamples() []float64 {
	m.latMu.Lock()
	defer m.latMu.Unlock()
	return m.lat.Samples()
}

// MaxChunk reports the per-feed sample cap admission control enforces
// (the HTTP front end derives its body limit from it).
func (m *Manager) MaxChunk() int {
	if m.cfg.MaxChunk > 0 {
		return m.cfg.MaxChunk
	}
	return pipeline.DefaultMaxChunk
}

// StageMillis is the per-stroke stage cost view exposed by Snapshot,
// in milliseconds.
type StageMillis struct {
	STFT         float64 `json:"stft"`
	Enhancement  float64 `json:"enhancement"`
	Profile      float64 `json:"profile"`
	Segmentation float64 `json:"segmentation"`
	DTW          float64 `json:"dtw"`
	Total        float64 `json:"total"`
	Strokes      int     `json:"strokes"`
}

// ShardStats is one shard's contribution to an aggregated snapshot:
// enough to spot a hot shard (deep queue, heavy backpressure) from
// /statsz without scraping each shard separately.
type ShardStats struct {
	ActiveSessions int    `json:"active_sessions"`
	QueueLen       int    `json:"queue_len"`
	QueueCap       int    `json:"queue_cap"`
	Chunks         uint64 `json:"chunks_processed"`
	Detections     uint64 `json:"detections"`
	Backpressure   uint64 `json:"backpressure_rejects"`
	FeedErrors     uint64 `json:"feed_errors"`
	Evictions      uint64 `json:"idle_evictions"`
}

// Stats is the /statsz snapshot: service health, pool occupancy,
// throughput counters, feed-latency quantiles and per-stroke stage cost
// aggregated across all sessions. For a ShardedManager the top-level
// fields aggregate every shard (latency quantiles are merged over the
// pooled per-shard samples) and Shards carries the per-shard view.
type Stats struct {
	ActiveSessions int                    `json:"active_sessions"`
	MaxSessions    int                    `json:"max_sessions"`
	Workers        int                    `json:"workers"`
	QueueLen       int                    `json:"queue_len"`
	QueueCap       int                    `json:"queue_cap"`
	Pool           PoolStats              `json:"engine_pool"`
	Chunks         uint64                 `json:"chunks_processed"`
	Detections     uint64                 `json:"detections"`
	Backpressure   uint64                 `json:"backpressure_rejects"`
	FeedErrors     uint64                 `json:"feed_errors"`
	Evictions      uint64                 `json:"idle_evictions"`
	FeedLatencyMs  metrics.LatencySummary `json:"feed_latency_ms"`
	PerStroke      StageMillis            `json:"per_stroke_ms"`
	Shards         []ShardStats           `json:"shards,omitempty"`
}

// Snapshot assembles a consistent-enough stats view for monitoring. A
// single Manager reports itself as one shard, so /statsz and /metricsz
// have the same shape whether or not the service is sharded.
func (m *Manager) Snapshot() Stats {
	sv := m.shardView()
	return Stats{
		ActiveSessions: sv.ActiveSessions,
		MaxSessions:    m.cfg.MaxSessions,
		Workers:        m.cfg.Workers,
		QueueLen:       sv.QueueLen,
		QueueCap:       sv.QueueCap,
		Pool:           m.pool.Stats(),
		Chunks:         sv.Chunks,
		Detections:     sv.Detections,
		Backpressure:   sv.Backpressure,
		FeedErrors:     sv.FeedErrors,
		Evictions:      sv.Evictions,
		FeedLatencyMs:  summarizeFeedLatency(m.latencySamples()),
		PerStroke:      stageMillis(m.stages.Snapshot()),
		Shards:         []ShardStats{sv},
	}
}

// shardView reads this manager's counters as one shard's contribution —
// cheap (atomic loads plus a brief table lock), with no latency sorting,
// so the /metricsz collectors can call it on every scrape.
func (m *Manager) shardView() ShardStats {
	m.mu.Lock()
	active := len(m.sessions)
	m.mu.Unlock()
	return ShardStats{
		ActiveSessions: active,
		QueueLen:       len(m.jobs),
		QueueCap:       cap(m.jobs),
		Chunks:         m.chunks.Load(),
		Detections:     m.detections.Load(),
		Backpressure:   m.rejected.Load(),
		FeedErrors:     m.feedErrors.Load(),
		Evictions:      m.evictions.Load(),
	}
}

// shardStats implements metricsSource for a single manager: one shard.
func (m *Manager) shardStats() []ShardStats { return []ShardStats{m.shardView()} }

// feedLatencyHistograms implements metricsSource: one histogram per
// shard, index-aligned with shardStats.
func (m *Manager) feedLatencyHistograms() []*expose.Histogram {
	return []*expose.Histogram{m.latHist}
}

// stageTotals implements metricsSource: cumulative stage time and
// stroke count since startup.
func (m *Manager) stageTotals() ewruntime.StageBreakdown { return m.stages.Snapshot() }

// limits implements metricsSource: the configured service-wide bounds.
func (m *Manager) limits() (maxSessions, workers int) { return m.cfg.MaxSessions, m.cfg.Workers }

// poolStats implements metricsSource.
func (m *Manager) poolStats() PoolStats { return m.pool.Stats() }

// stageMillis converts an aggregated stage breakdown into the per-stroke
// millisecond view /statsz exposes (zero value when no strokes yet).
func stageMillis(b ewruntime.StageBreakdown) StageMillis {
	per, err := b.PerStroke()
	if err != nil {
		return StageMillis{}
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return StageMillis{
		STFT:         ms(per.STFT),
		Enhancement:  ms(per.Enhancement),
		Profile:      ms(per.Profile),
		Segmentation: ms(per.Segmentation),
		DTW:          ms(per.DTW),
		Total:        ms(per.Total()),
		Strokes:      b.Strokes,
	}
}

// summarizeFeedLatency is the single choke point where feed-latency
// samples become the quantile triple /statsz serves: with no samples
// (zero traffic) the quantiles are NaN, which encoding/json rejects —
// the encoder would abort mid-body and the scrape would see truncated
// JSON — so NaN is reported as zero here, once, for both the single
// Manager and the ShardedManager aggregation path.
func summarizeFeedLatency(groups ...[]float64) metrics.LatencySummary {
	s := metrics.MergeLatencies(groups...)
	if math.IsNaN(s.P50) {
		s.P50 = 0
	}
	if math.IsNaN(s.P95) {
		s.P95 = 0
	}
	if math.IsNaN(s.P99) {
		s.P99 = 0
	}
	return s
}
