// Package serve is EchoWrite's multi-session recognition service: it
// accepts interleaved audio chunks from many concurrent clients and runs
// them through the existing pipeline safely.
//
// The building blocks are an EnginePool (pre-warmed recognizer state so
// sessions never pay the 8192-pt STFT setup per request), a Manager that
// owns per-session pipeline.Stream state behind a bounded worker pool
// with backpressure admission control, an HTTP front end (Server), and a
// load harness (RunLoad) used by cmd/ewload.
package serve

import (
	"fmt"
	"sync"

	"repro/internal/pipeline"
)

// EngineFactory builds one recognizer engine. The default factory wires
// pipeline.DefaultConfig; serving setups that want calibrated templates
// install their own (see calibrate.NewCalibratedEngine).
type EngineFactory func() (*pipeline.Engine, error)

// EnginePool is a free-list of pipeline streams, each bound to its own
// Engine (engines are not safe for concurrent use, so pooling whole
// engine+stream pairs is the unit of reuse). Unlike sync.Pool the free
// list survives GC cycles: a warmed engine holds the FFT plan, window
// tables and analytic templates, which are exactly the allocations the
// pool exists to amortize.
type EnginePool struct {
	factory EngineFactory

	mu      sync.Mutex
	free    []*pipeline.Stream // guarded by mu
	created int                // guarded by mu
	reused  int                // guarded by mu
}

// PoolStats is a point-in-time view of pool occupancy.
type PoolStats struct {
	// Created counts engines built over the pool's lifetime.
	Created int `json:"created"`
	// Reused counts checkouts served from the free list — the
	// amortization the pool exists for; a low reuse rate under load
	// means Prewarm is too small.
	Reused int `json:"reused"`
	// Free counts streams currently checked in.
	Free int `json:"free"`
}

// NewEnginePool builds a pool around factory and pre-warms it with
// prewarm ready-to-use streams. A nil factory uses the default pipeline
// configuration.
func NewEnginePool(factory EngineFactory, prewarm int) (*EnginePool, error) {
	if factory == nil {
		factory = func() (*pipeline.Engine, error) {
			return pipeline.NewEngine(pipeline.DefaultConfig())
		}
	}
	p := &EnginePool{factory: factory}
	for i := 0; i < prewarm; i++ {
		s, err := p.build()
		if err != nil {
			return nil, fmt.Errorf("serve: prewarm engine %d: %w", i, err)
		}
		p.free = append(p.free, s)
	}
	return p, nil
}

func (p *EnginePool) build() (*pipeline.Stream, error) {
	eng, err := p.factory()
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.created++
	p.mu.Unlock()
	return pipeline.NewStream(eng), nil
}

// Get checks out a stream, building a fresh engine only when the free
// list is empty. The returned stream is always in the reset state.
func (p *EnginePool) Get() (*pipeline.Stream, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		p.reused++
		p.mu.Unlock()
		return s, nil
	}
	p.mu.Unlock()
	return p.build()
}

// Put resets a stream and returns it to the free list. The caller must
// no longer use the stream afterwards.
func (p *EnginePool) Put(s *pipeline.Stream) {
	if s == nil {
		return
	}
	s.Reset()
	p.mu.Lock()
	p.free = append(p.free, s)
	p.mu.Unlock()
}

// Stats reports pool occupancy.
func (p *EnginePool) Stats() PoolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return PoolStats{Created: p.created, Reused: p.reused, Free: len(p.free)}
}
