package serve

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/geom"
	"repro/internal/pipeline"
	"repro/internal/stroke"

	"repro/internal/testutil/leak"
)

// synthesizeSequence renders a multi-stroke writing in a quiet scene,
// mirroring the pipeline package's streaming tests.
func synthesizeSequence(t *testing.T, seq stroke.Sequence, seed uint64) *audio.Signal {
	t.Helper()
	var parts []geom.Trajectory
	prev, err := stroke.StartPoint(seq[0], stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	parts = append(parts, &geom.StaticTrajectory{Pos: prev, Dur: 0.4})
	for i, st := range seq {
		start, err := stroke.StartPoint(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			parts = append(parts, &geom.StaticTrajectory{Pos: prev, Dur: 0.35})
			rep, err := geom.NewPolyTrajectory([]geom.Waypoint{
				{T: 0, Pos: prev}, {T: 1.0, Pos: start},
			})
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, rep)
		}
		tr, err := stroke.Shape(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, tr)
		prev, err = stroke.EndPoint(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
	}
	parts = append(parts, &geom.StaticTrajectory{Pos: prev, Dur: 0.5})
	finger, err := geom.NewCompositeTrajectory(parts...)
	if err != nil {
		t.Fatal(err)
	}
	sc := &acoustic.Scene{
		Device:     acoustic.Mate9(),
		Env:        acoustic.StandardEnvironment(acoustic.MeetingRoom),
		Reflectors: acoustic.HandReflectors(finger),
		Duration:   finger.Duration(),
		Seed:       seed,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

// TestManagerConcurrentSessionsMatchBatch is the subsystem's core
// guarantee: ≥32 concurrent sessions through one shared Manager each
// produce exactly the detections the single-threaded batch pipeline
// yields for the same audio.
func TestManagerConcurrentSessionsMatchBatch(t *testing.T) {
	leak.Check(t)
	signals := []*audio.Signal{
		synthesizeSequence(t, stroke.Sequence{stroke.S2, stroke.S3}, 9),
		synthesizeSequence(t, stroke.Sequence{stroke.S3, stroke.S1}, 11),
	}

	// Single-threaded batch reference.
	eng, err := pipeline.NewEngine(pipeline.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]stroke.Sequence, len(signals))
	for i, sig := range signals {
		rec, err := eng.Recognize(sig)
		if err != nil {
			t.Fatal(err)
		}
		if len(rec.Sequence) == 0 {
			t.Fatalf("batch reference %d found no strokes; test premise broken", i)
		}
		want[i] = rec.Sequence
	}

	const sessions = 32
	mgr, err := NewManager(Config{
		MaxSessions: sessions,
		Workers:     4,
		QueueDepth:  2 * sessions,
		Prewarm:     4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()

	var wg sync.WaitGroup
	errCh := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		sig := signals[i%len(signals)]
		wantSeq := want[i%len(signals)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := mgr.Open()
			if err != nil {
				errCh <- err
				return
			}
			var got stroke.Sequence
			for off := 0; off < len(sig.Samples); off += 8192 {
				end := min(off+8192, len(sig.Samples))
				dets, err := mgr.Feed(id, sig.Samples[off:end])
				if err != nil {
					errCh <- err
					return
				}
				for _, d := range dets {
					got = append(got, d.Stroke)
				}
			}
			tail, _, err := mgr.Flush(id)
			if err != nil {
				errCh <- err
				return
			}
			for _, d := range tail {
				got = append(got, d.Stroke)
			}
			if err := mgr.Close(id); err != nil {
				errCh <- err
				return
			}
			if !got.Equal(wantSeq) {
				errCh <- errors.New("session " + id + ": got " + got.String() + ", want " + wantSeq.String())
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	st := mgr.Snapshot()
	if st.ActiveSessions != 0 {
		t.Errorf("sessions left open: %d", st.ActiveSessions)
	}
	if got, want := st.Detections, uint64(sessions*2); got != want {
		t.Errorf("snapshot detections = %d, want %d", got, want)
	}
	if st.Pool.Created > sessions {
		t.Errorf("pool built %d engines for %d sessions", st.Pool.Created, sessions)
	}
	if st.PerStroke.Strokes == 0 || st.PerStroke.Total <= 0 {
		t.Errorf("per-stroke stage breakdown not aggregated: %+v", st.PerStroke)
	}
	if st.FeedLatencyMs.P50 <= 0 || st.FeedLatencyMs.P99 < st.FeedLatencyMs.P50 {
		t.Errorf("implausible feed latency summary: %+v", st.FeedLatencyMs)
	}
}

// TestManagerBackpressure saturates the worker pool deterministically
// and checks admission control sheds load with ErrBackpressure instead
// of queueing without bound or deadlocking.
func TestManagerBackpressure(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{Workers: 1, QueueDepth: 1, Prewarm: 1, MaxSessions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()

	started := make(chan struct{}, 4)
	release := make(chan struct{})
	mgr.testJobStart = func() {
		started <- struct{}{}
		<-release
	}

	a, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}

	chunk := make([]float64, 512)
	feedErr := make(chan error, 2)
	go func() { _, err := mgr.Feed(a, chunk); feedErr <- err }()
	<-started // the single worker now holds job 1

	go func() { _, err := mgr.Feed(b, chunk); feedErr <- err }()
	// Wait until job 2 occupies the queue slot.
	deadline := time.After(5 * time.Second)
	for len(mgr.jobs) == 0 {
		select {
		case <-deadline:
			t.Fatal("second job never queued")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Queue full, worker busy: admission control must reject immediately.
	if _, err := mgr.Feed(b, chunk); !errors.Is(err, ErrBackpressure) {
		t.Fatalf("saturated feed error = %v, want ErrBackpressure", err)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-feedErr; err != nil {
			t.Errorf("queued feed %d failed: %v", i, err)
		}
	}
	if got := mgr.Snapshot().Backpressure; got != 1 {
		t.Errorf("backpressure counter = %d, want 1", got)
	}
}

func TestManagerSessionLimitAndClose(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 2, Workers: 1, Prewarm: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()

	a, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(); !errors.Is(err, ErrSessionLimit) {
		t.Fatalf("third open error = %v, want ErrSessionLimit", err)
	}
	if err := mgr.Close(a); err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Open(); err != nil {
		t.Fatalf("open after close failed: %v", err)
	}
	if err := mgr.Close(a); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("double close error = %v, want ErrUnknownSession", err)
	}
	if _, err := mgr.Feed(a, make([]float64, 8)); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("feed after close error = %v, want ErrUnknownSession", err)
	}
}

func TestManagerIdleEviction(t *testing.T) {
	leak.Check(t)
	now := time.Unix(1000, 0)
	var clockMu sync.Mutex
	clock := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		now = now.Add(d)
		clockMu.Unlock()
	}

	mgr, err := NewManager(Config{
		MaxSessions: 2,
		IdleTimeout: time.Minute,
		Workers:     1,
		Prewarm:     1,
		Clock:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()

	stale, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}

	// Keep one session active past the idle horizon of the other.
	advance(45 * time.Second)
	if _, err := mgr.Feed(fresh, make([]float64, 512)); err != nil {
		t.Fatal(err)
	}
	advance(30 * time.Second) // stale idle 75 s, fresh idle 30 s

	if n := mgr.EvictIdle(); n != 1 {
		t.Fatalf("EvictIdle evicted %d sessions, want 1", n)
	}
	if _, err := mgr.Feed(stale, make([]float64, 512)); !errors.Is(err, ErrUnknownSession) {
		t.Errorf("evicted session feed error = %v, want ErrUnknownSession", err)
	}
	if _, err := mgr.Feed(fresh, make([]float64, 512)); err != nil {
		t.Errorf("fresh session was evicted: %v", err)
	}
	st := mgr.Snapshot()
	if st.Evictions != 1 || st.ActiveSessions != 1 {
		t.Errorf("snapshot = %+v, want 1 eviction and 1 active session", st)
	}

	// A full table frees itself via idle eviction on Open.
	advance(2 * time.Minute)
	if _, err := mgr.Open(); err != nil {
		t.Errorf("open at full-but-idle table failed: %v", err)
	}
}

func TestManagerOversizedFeed(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{Workers: 1, Prewarm: 1, MaxChunk: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	id, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Feed(id, make([]float64, 5000)); !errors.Is(err, pipeline.ErrOversizedChunk) {
		t.Fatalf("oversized feed error = %v, want pipeline.ErrOversizedChunk", err)
	}
	// The session survives and accepts capped chunks.
	if _, err := mgr.Feed(id, make([]float64, 4096)); err != nil {
		t.Fatalf("in-cap feed failed: %v", err)
	}
}

// TestManagerFeedErrorAccounting pins the accounting contract for feeds
// that fail after admission: the error increments feed_errors (in both
// worker and batch-collector modes), the chunk counter stays
// success-only, and the failed feed's latency is still recorded so the
// histogram covers everything the workers actually did.
func TestManagerFeedErrorAccounting(t *testing.T) {
	leak.Check(t)
	for _, tc := range []struct {
		name  string
		batch int
	}{
		{"workers", 0},
		{"batched", 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mgr, err := NewManager(Config{Workers: 1, Prewarm: 1, MaxChunk: 4096, STFTBatch: tc.batch})
			if err != nil {
				t.Fatal(err)
			}
			defer mgr.Shutdown()
			id, err := mgr.Open()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := mgr.Feed(id, make([]float64, 2048)); err != nil {
				t.Fatalf("in-cap feed failed: %v", err)
			}
			if _, err := mgr.Feed(id, make([]float64, 5000)); !errors.Is(err, pipeline.ErrOversizedChunk) {
				t.Fatalf("oversized feed error = %v, want pipeline.ErrOversizedChunk", err)
			}
			st := mgr.Snapshot()
			if st.FeedErrors != 1 {
				t.Errorf("FeedErrors = %d, want 1", st.FeedErrors)
			}
			if st.Chunks != 1 {
				t.Errorf("Chunks = %d, want 1 (errors must not count as processed)", st.Chunks)
			}
			if got := mgr.latHist.View().Count; got != 2 {
				t.Errorf("latency histogram count = %d, want 2 (failed feeds are still timed)", got)
			}
		})
	}
}

func TestManagerShutdown(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{Workers: 2, Prewarm: 1})
	if err != nil {
		t.Fatal(err)
	}
	id, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	mgr.Shutdown()
	mgr.Shutdown() // idempotent
	if _, err := mgr.Open(); !errors.Is(err, ErrClosed) {
		t.Errorf("open after shutdown error = %v, want ErrClosed", err)
	}
	if _, err := mgr.Feed(id, make([]float64, 8)); !errors.Is(err, ErrClosed) {
		t.Errorf("feed after shutdown error = %v, want ErrClosed", err)
	}
}
