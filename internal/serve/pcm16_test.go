package serve

import (
	"encoding/binary"
	"math"
	"testing"
)

// decode runs the production wire decoder (shared by the HTTP and
// WebSocket ingest paths) with an unlimited size cap.
func decode(t *testing.T, wire []byte) []float64 {
	t.Helper()
	out, err := decodePCM16(wire, int64(len(wire)))
	if err != nil {
		t.Fatalf("decodePCM16: %v", err)
	}
	return out
}

// TestPCM16RoundTrip asserts the documented error bound of the unified
// /32768 scale with round-half-away encoding: half a quantization step
// (1/65536) everywhere except at the positive clip, where saturation to
// 32767 costs up to a full step (1/32768). The old *32767-truncate
// encoder failed both bounds and never produced the -32768 codepoint.
func TestPCM16RoundTrip(t *testing.T) {
	const (
		step     = 1.0 / 32768
		halfStep = 1.0 / 65536
		eps      = 1e-12 // float64 noise on top of the exact bounds
	)
	// Dense sweep over the full range plus the exact edge cases.
	xs := make([]float64, 0, 1<<17+8)
	for i := 0; i <= 1<<17; i++ {
		xs = append(xs, -1+float64(i)/(1<<16))
	}
	xs = append(xs, -1, -0.5, -step, -halfStep, 0, halfStep, step, 0.5, 1)
	wire := EncodePCM16(xs)
	back := decode(t, wire)
	for i, x := range xs {
		bound := halfStep
		if x > 1-1.5*step {
			// Saturation region: 32767 is the nearest representable code.
			bound = step
		}
		if diff := math.Abs(back[i] - x); diff > bound+eps {
			t.Fatalf("round trip of %v: got %v (error %g, bound %g)", x, back[i], back[i]-x, bound)
		}
	}
}

// TestPCM16Codepoints pins the exact endpoints: -1.0 must reach the
// -32768 codepoint and decode back exactly; +1.0 saturates at 32767.
// Out-of-range input clips instead of wrapping.
func TestPCM16Codepoints(t *testing.T) {
	cases := []struct {
		in   float64
		code int16
	}{
		{-1, -32768},
		{1, 32767},
		{-2, -32768},
		{2, 32767},
		{0, 0},
		{0.5, 16384},
		{-0.5, -16384},
		// Half-away rounding, both signs.
		{1.5 / 32768, 2},
		{-1.5 / 32768, -2},
		{0.4 / 32768, 0},
		{-0.4 / 32768, 0},
	}
	for _, c := range cases {
		wire := EncodePCM16([]float64{c.in})
		if got := int16(binary.LittleEndian.Uint16(wire)); got != c.code {
			t.Errorf("EncodePCM16(%v) = code %d, want %d", c.in, got, c.code)
		}
	}
	if got := decode(t, EncodePCM16([]float64{-1}))[0]; got != -1 {
		t.Errorf("-1.0 round trip = %v, want exactly -1", got)
	}
}
