package serve

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/audio"
	"repro/internal/stroke"
	"repro/internal/ws"

	"repro/internal/testutil/leak"
)

// chunkRecord flattens a served transcript — which chunk produced which
// detection — so the HTTP and WebSocket ingest paths can be compared
// byte for byte after JSON marshaling.
type chunkRecord struct {
	Chunk      int             `json:"chunk"`
	Detections []DetectionJSON `json:"detections"`
	Words      []CandidateJSON `json:"words"`
}

func marshalTranscript(t *testing.T, recs []chunkRecord) []byte {
	t.Helper()
	for i := range recs {
		// Normalize empty-vs-nil slices: the HTTP responses always carry
		// [] while stream events omit empty fields.
		if len(recs[i].Detections) == 0 {
			recs[i].Detections = []DetectionJSON{}
		}
		if len(recs[i].Words) == 0 {
			recs[i].Words = []CandidateJSON{}
		}
	}
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStreamGoldenAlphabet is the WebSocket twin of
// TestServerGoldenAlphabet: the same six-stroke recording goes through
// the HTTP POST path and a /v1/stream connection on the same sharded
// service, chunked identically, and the two transcripts — which chunk
// completed which detection, and the final flush candidates — must be
// byte-identical. Incremental delivery is implied: every detection
// arrives attached to the chunk that completed it, before the flush.
func TestStreamGoldenAlphabet(t *testing.T) {
	leak.Check(t)
	golden := stroke.Sequence(stroke.AllStrokes())
	sig := synthesizeSequence(t, golden, 5)

	sm, err := NewShardedManager(Config{MaxSessions: 8, Workers: 3, Prewarm: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer sm.Shutdown()
	ts := httptest.NewServer(NewServer(sm).Handler())
	defer ts.Close()

	wire := EncodePCM16(sig.Samples)
	const chunkBytes = 2 * 8192

	// HTTP transcript.
	var opened struct {
		Session string `json:"session"`
	}
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions", nil, &opened); code != 200 {
		t.Fatalf("open status %d", code)
	}
	var httpRecs []chunkRecord
	chunkIdx := 0
	for off := 0; off < len(wire); off += chunkBytes {
		end := min(off+chunkBytes, len(wire))
		var out audioResponse
		if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+opened.Session+"/audio", wire[off:end], &out); code != 200 {
			t.Fatalf("audio status %d at offset %d", code, off)
		}
		httpRecs = append(httpRecs, chunkRecord{Chunk: chunkIdx, Detections: out.Detections})
		chunkIdx++
	}
	var fl flushResponse
	if code := postJSON(t, ts.Client(), ts.URL+"/v1/sessions/"+opened.Session+"/flush", nil, &fl); code != 200 {
		t.Fatalf("flush status %d", code)
	}
	httpRecs = append(httpRecs, chunkRecord{Chunk: chunkIdx, Detections: fl.Detections, Words: fl.Words})

	// WebSocket transcript of the identical byte stream.
	sc, err := DialStream(ts.URL, "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Session == "" {
		t.Fatal("stream opened no session")
	}
	var wsRecs []chunkRecord
	chunkIdx = 0
	for off := 0; off < len(wire); off += chunkBytes {
		end := min(off+chunkBytes, len(wire))
		dets, err := sc.SendChunk(wire[off:end])
		if err != nil {
			t.Fatalf("stream chunk at offset %d: %v", off, err)
		}
		wsRecs = append(wsRecs, chunkRecord{Chunk: chunkIdx, Detections: dets})
		chunkIdx++
	}
	dets, words, err := sc.Flush()
	if err != nil {
		t.Fatalf("stream flush: %v", err)
	}
	wsRecs = append(wsRecs, chunkRecord{Chunk: chunkIdx, Detections: dets, Words: words})
	if err := sc.Close(); err != nil {
		t.Fatalf("stream close: %v", err)
	}

	httpJSON, wsJSON := marshalTranscript(t, httpRecs), marshalTranscript(t, wsRecs)
	if string(httpJSON) != string(wsJSON) {
		t.Errorf("transcripts differ\n--- http ---\n%s\n--- ws ---\n%s", httpJSON, wsJSON)
	}

	// Both decode to the golden alphabet.
	var got stroke.Sequence
	for _, rec := range wsRecs {
		for _, d := range rec.Detections {
			seq, err := stroke.ParseSequenceKey(d.Stroke[1:])
			if err != nil {
				t.Fatalf("bad stroke %q: %v", d.Stroke, err)
			}
			got = append(got, seq...)
		}
	}
	if !got.Equal(golden) {
		t.Errorf("streamed alphabet = %v, want %v", got, golden)
	}

	// Both sessions are gone and the streaming metrics saw the traffic.
	if st := sm.Snapshot(); st.ActiveSessions != 1 {
		// The HTTP session is still open (never explicitly closed); the
		// stream's close command must have reclaimed the other.
		t.Errorf("active sessions after stream close = %d, want 1", st.ActiveSessions)
	}
	// The connection gauge decrements in the handler's deferred cleanup,
	// which can trail the client's view of the close handshake briefly.
	deadline := time.Now().Add(5 * time.Second)
	var body string
	for {
		_, _, body = scrape(t, ts.URL, "/metricsz")
		if strings.Contains(body, "echowrite_ws_connections 0") {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("/metricsz never returned to \"echowrite_ws_connections 0\"")
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, family := range []string{"echowrite_ws_frames_in_total", "echowrite_ws_frames_out_total"} {
		if strings.Contains(body, family+" 0\n") {
			t.Errorf("%s still zero after stream traffic", family)
		}
	}
}

// TestStreamSessionLifecycle covers open-on-connect ownership (the
// session dies with the connection, cleanly or not) and attach
// semantics (the session outlives the connection).
func TestStreamSessionLifecycle(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 4, Workers: 1, Prewarm: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	waitActive := func(want int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			if got := mgr.Snapshot().ActiveSessions; got == want {
				return
			} else if time.Now().After(deadline) {
				t.Fatalf("active sessions = %d, want %d", got, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Open-on-connect, clean close command.
	sc, err := DialStream(ts.URL, "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	waitActive(1)
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
	waitActive(0)

	// Open-on-connect, abrupt disconnect: the server reclaims the
	// session when the read loop fails.
	sc, err = DialStream(ts.URL, "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	waitActive(1)
	if err := sc.Abort(); err != nil {
		t.Fatal(err)
	}
	waitActive(0)

	// Attach: the session belongs to the caller and survives disconnect.
	id, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	sc, err = DialStream(ts.URL, id, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if sc.Session != id {
		t.Errorf("attached session = %q, want %q", sc.Session, id)
	}
	if _, err := sc.SendChunk(make([]byte, 64)); err != nil {
		t.Fatal(err)
	}
	if err := sc.Abort(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond) // give a buggy server time to close it
	waitActive(1)
	if err := mgr.Close(id); err != nil {
		t.Fatal(err)
	}

	// Attaching to a session that does not exist fails the handshake.
	if _, err := DialStream(ts.URL, "s999999", 2*time.Second); err == nil ||
		!strings.Contains(err.Error(), "unknown session") {
		t.Errorf("attach to unknown session = %v, want rejection", err)
	}
}

// stageSaturation parks one feed in the single worker and a second in
// the depth-one queue, so the next submission is guaranteed a
// backpressure rejection. The hook's started signal removes the race a
// snapshot poll has: "queue empty" is also true before the first feed
// ever submits, and acting on that spurious state lets the two feeds
// race each other — one gets rejected and the staging never completes.
func stageSaturation(t *testing.T, mgr *Manager, id string, started <-chan struct{}, feedErr chan<- error) {
	t.Helper()
	// First feed: the worker signals pickup through the hook, then parks.
	go func() {
		_, err := mgr.Feed(id, make([]float64, 32))
		feedErr <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never picked up the first feed")
	}
	// Second feed: with the worker parked it can only sit in the queue.
	go func() {
		_, err := mgr.Feed(id, make([]float64, 32))
		feedErr <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for mgr.Snapshot().QueueLen != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("second feed never queued (len=%d)", mgr.Snapshot().QueueLen)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestStreamBackpressure saturates a one-worker, depth-one queue while
// a stream chunk is in flight: the client must see a backpressure event
// and the chunk must still land once the queue drains — backpressure
// informs, it never drops.
func TestStreamBackpressure(t *testing.T) {
	leak.Check(t)
	hold := make(chan struct{})
	started := make(chan struct{}, 1)
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(hold) }) }
	mgr, err := NewManager(Config{
		MaxSessions: 4,
		Workers:     1,
		QueueDepth:  1,
		Prewarm:     1,
		JobStartHook: func(string) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-hold
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	// Registered after Shutdown so it runs first: a failing assertion
	// must unpark the worker or Shutdown would wait on it forever.
	defer release()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	blocker, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	feedErr := make(chan error, 2)
	stageSaturation(t, mgr, blocker, started, feedErr)

	sc, err := DialStream(ts.URL, "", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Release the worker while the stream chunk is retrying against the
	// full queue.
	timer := time.AfterFunc(50*time.Millisecond, release)
	defer timer.Stop()
	if _, err := sc.SendChunk(make([]byte, 64)); err != nil {
		t.Fatalf("backpressured chunk never landed: %v", err)
	}
	if sc.Backpressured == 0 {
		t.Error("client saw no backpressure event despite a full queue")
	}
	for i := 0; i < 2; i++ {
		if err := <-feedErr; err != nil {
			t.Errorf("blocking feed %d: %v", i, err)
		}
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDriveWriterWSReportsBackpressure pins the load-harness counter
// itself: backpressure events observed on the stream must survive into
// the writerResult that RunLoad aggregates. This is the regression
// guard for the deferred accumulation in driveWriterWS, which once
// mutated a local after the return value had already been copied out —
// every ewload -ws run silently reported zero backpressure.
func TestDriveWriterWSReportsBackpressure(t *testing.T) {
	leak.Check(t)
	hold := make(chan struct{})
	started := make(chan struct{}, 1)
	var releaseOnce sync.Once
	release := func() { releaseOnce.Do(func() { close(hold) }) }
	mgr, err := NewManager(Config{
		MaxSessions: 4,
		Workers:     1,
		QueueDepth:  1,
		Prewarm:     1,
		JobStartHook: func(string) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-hold
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	defer release() // a failing assertion must still unpark the worker
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	blocker, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	feedErr := make(chan error, 2)
	stageSaturation(t, mgr, blocker, started, feedErr)

	timer := time.AfterFunc(50*time.Millisecond, release)
	defer timer.Stop()
	res := driveWriterWS(LoadConfig{BaseURL: ts.URL, ChunkSamples: 2048},
		&audio.Signal{Samples: make([]float64, 4096), Rate: 44100})
	if res.errors != 0 {
		t.Fatalf("writer hit %d errors under backpressure; chunks must never drop", res.errors)
	}
	if res.chunks != 2 {
		t.Errorf("writer sent %d chunks, want 2", res.chunks)
	}
	if res.backpressure == 0 {
		t.Error("writerResult lost the stream's backpressure count")
	}
	for i := 0; i < 2; i++ {
		if err := <-feedErr; err != nil {
			t.Errorf("blocking feed %d: %v", i, err)
		}
	}
}

// TestStreamKeepaliveTouch pins the eviction interplay: a connected
// stream counts as session activity, so EvictIdle reclaims a control
// session that crossed IdleTimeout but spares the streamed one, whose
// idle clock the keepalive loop keeps refreshing.
func TestStreamKeepaliveTouch(t *testing.T) {
	leak.Check(t)
	var now atomic.Int64
	now.Store(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC).UnixNano())
	clock := func() time.Time { return time.Unix(0, now.Load()) }
	mgr, err := NewManager(Config{
		MaxSessions: 4,
		Workers:     1,
		Prewarm:     1,
		IdleTimeout: time.Minute,
		Clock:       clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	srv := NewServer(mgr)
	srv.wsKeepalive = 5 * time.Millisecond
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	idle, err := mgr.Open()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := DialStream(ts.URL, "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Jump past the idle horizon, then give the keepalive loop a few
	// real-time ticks to re-stamp the streamed session at the new clock.
	now.Add(int64(2 * time.Minute))
	time.Sleep(100 * time.Millisecond)
	if evicted := mgr.EvictIdle(); evicted != 1 {
		t.Errorf("EvictIdle = %d, want 1 (only the control session %s)", evicted, idle)
	}
	if st := mgr.Snapshot(); st.ActiveSessions != 1 {
		t.Errorf("active sessions after eviction = %d, want the streamed one", st.ActiveSessions)
	}
	// The streamed session is still usable end to end.
	if _, err := sc.SendChunk(make([]byte, 64)); err != nil {
		t.Errorf("chunk on surviving session: %v", err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamBadInput: malformed chunks and commands produce error
// events without killing the connection.
func TestStreamBadInput(t *testing.T) {
	leak.Check(t)
	mgr, err := NewManager(Config{MaxSessions: 4, Workers: 1, Prewarm: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Shutdown()
	ts := httptest.NewServer(NewServer(mgr).Handler())
	defer ts.Close()

	sc, err := DialStream(ts.URL, "", 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Odd byte count cannot be PCM16.
	if _, err := sc.SendChunk(make([]byte, 33)); err == nil ||
		!strings.Contains(err.Error(), "odd byte count") {
		t.Errorf("odd-length chunk = %v, want decode error", err)
	}
	// Oversized chunk is refused without feeding.
	huge := make([]byte, 2*mgr.MaxChunk()+2)
	if _, err := sc.SendChunk(huge); err == nil ||
		!strings.Contains(err.Error(), "over") {
		t.Errorf("oversized chunk = %v, want size error", err)
	}
	// Unknown and unparsable commands are reported, not fatal.
	for _, raw := range []string{`{"cmd":"bogus"}`, `{not json`} {
		if err := sc.writeRaw(raw); err != nil {
			t.Fatal(err)
		}
		ev, err := sc.readEvent()
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type != StreamEventError {
			t.Errorf("after %q got %q event, want error", raw, ev.Type)
		}
	}
	// The connection survived all of it.
	if _, err := sc.SendChunk(make([]byte, 64)); err != nil {
		t.Errorf("valid chunk after errors: %v", err)
	}
	if err := sc.Close(); err != nil {
		t.Fatal(err)
	}
}

// writeRaw ships an arbitrary text frame (test hook for malformed
// commands).
func (c *StreamClient) writeRaw(s string) error {
	return c.conn.WriteMessage(ws.Text, []byte(s))
}
