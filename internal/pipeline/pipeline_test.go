package pipeline

import (
	"math"
	"testing"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/geom"
	"repro/internal/stroke"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"carrier outside band", func(c *Config) { c.CarrierHz = 10000 }},
		{"zero static frames", func(c *Config) { c.StaticFrames = 0 }},
		{"negative energy threshold", func(c *Config) { c.EnergyThreshold = -1 }},
		{"even gaussian", func(c *Config) { c.GaussianKernel = 4 }},
		{"binarize out of range", func(c *Config) { c.BinarizeThreshold = 1.5 }},
		{"bad contour", func(c *Config) { c.Contour = ContourMethod(9) }},
		{"bad segment", func(c *Config) { c.Segment.StartThreshold = -1 }},
		{"bad sound speed", func(c *Config) { c.SoundSpeed = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
			if _, err := NewEngine(cfg); err == nil {
				t.Error("NewEngine accepted invalid config")
			}
		})
	}
}

func TestConfigDerivedQuantities(t *testing.T) {
	cfg := DefaultConfig()
	if got := cfg.binWidthHz(); math.Abs(got-44100.0/8192) > 1e-9 {
		t.Errorf("bin width = %g", got)
	}
	if got := cfg.FrameRate(); math.Abs(got-44100.0/1024) > 1e-9 {
		t.Errorf("frame rate = %g", got)
	}
	lb := cfg.carrierLocalBin()
	if lb < 0 || lb > float64(cfg.STFT.HighBin-cfg.STFT.LowBin) {
		t.Errorf("carrier local bin %g outside band", lb)
	}
}

func TestRecognizeRejectsWrongRate(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sig := &audio.Signal{Samples: make([]float64, 48000), Rate: 48000}
	if _, err := eng.Recognize(sig); err == nil {
		t.Error("wrong sample rate accepted")
	}
}

func TestRecognizeSilence(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := &acoustic.Scene{
		Device:   acoustic.Mate9(),
		Env:      acoustic.Environment{},
		Duration: 1.0,
		Seed:     1,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Recognize(sig)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Segments) != 0 {
		t.Errorf("silence produced segments: %v", rec.Segments)
	}
	if rec.Timings.Total() <= 0 {
		t.Error("timings not recorded")
	}
}

// synthesizeStroke renders one canonical stroke in a quiet scene.
func synthesizeStroke(t *testing.T, st stroke.Stroke) *audio.Signal {
	t.Helper()
	tr, err := stroke.Shape(st, stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	start, err := stroke.StartPoint(st, stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	end, err := stroke.EndPoint(st, stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	finger, err := geom.NewCompositeTrajectory(
		&geom.StaticTrajectory{Pos: start, Dur: 0.4},
		tr,
		&geom.StaticTrajectory{Pos: end, Dur: 0.45},
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := &acoustic.Scene{
		Device:     acoustic.Mate9(),
		Env:        acoustic.StandardEnvironment(acoustic.MeetingRoom),
		Reflectors: acoustic.HandReflectors(finger),
		Duration:   finger.Duration(),
		Seed:       uint64(st) * 7,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestRecognizeCanonicalStrokesEndToEnd(t *testing.T) {
	// The integration test of the whole chain: every canonical stroke,
	// synthesized through the physics simulator, must come back as
	// exactly one detection of the right class.
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range stroke.AllStrokes() {
		rec, err := eng.Recognize(synthesizeStroke(t, st))
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if len(rec.Detections) != 1 {
			t.Errorf("%v: %d detections, want 1", st, len(rec.Detections))
			continue
		}
		if got := rec.Detections[0].Stroke; got != st {
			t.Errorf("%v recognized as %v (distances %v)", st, got, rec.Detections[0].Distances)
		}
	}
}

func TestRecognizeKeepStages(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	eng.KeepStages = true
	rec, err := eng.Recognize(synthesizeStroke(t, stroke.S2))
	if err != nil {
		t.Fatal(err)
	}
	st := rec.Stages
	if st == nil {
		t.Fatal("stages not kept")
	}
	if st.Raw == nil || st.Raw.Frames() == 0 {
		t.Error("raw spectrogram missing")
	}
	if len(st.Denoised) == 0 || len(st.Binary) == 0 || len(st.RawProfile) == 0 {
		t.Error("intermediate stages missing")
	}
	if len(st.Binary) != len(rec.Profile) {
		t.Errorf("binary frames %d != profile frames %d", len(st.Binary), len(rec.Profile))
	}
}

func TestDetectionLikelihoodsNormalized(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Recognize(synthesizeStroke(t, stroke.S4))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Detections) == 0 {
		t.Fatal("no detections")
	}
	sum := 0.0
	maxIdx := 0
	det := rec.Detections[0]
	for i, l := range det.Likelihoods {
		if l < 0 || l > 1 {
			t.Errorf("likelihood[%d] = %g", i, l)
		}
		sum += l
		if l > det.Likelihoods[maxIdx] {
			maxIdx = i
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("likelihoods sum to %g", sum)
	}
	if stroke.Stroke(maxIdx+1) != det.Stroke {
		t.Error("max likelihood does not match chosen stroke")
	}
}

func TestSetTemplateLibrary(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var empty [stroke.NumStrokes][]float64
	if err := eng.SetTemplateLibrary(empty); err == nil {
		t.Error("empty templates accepted")
	}
	lib := eng.TemplateLibrary()
	// Mutating the returned copy must not affect the engine.
	lib[0][0] = 12345
	if eng.TemplateLibrary()[0][0] == 12345 {
		t.Error("TemplateLibrary returned aliased storage")
	}
	var custom [stroke.NumStrokes][]float64
	for i := range custom {
		custom[i] = []float64{1, 2, 3}
	}
	if err := eng.SetTemplateLibrary(custom); err != nil {
		t.Fatal(err)
	}
	got := eng.TemplateLibrary()
	if got[3][1] != 2 {
		t.Error("custom templates not installed")
	}
}

func TestClassifyProfileDirect(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Feed a template directly: it must classify as itself with zero
	// distance.
	tpl := eng.TemplateLibrary()[stroke.S3.Index()]
	det, err := eng.ClassifyProfile(tpl)
	if err != nil {
		t.Fatal(err)
	}
	if det.Stroke != stroke.S3 {
		t.Errorf("template classified as %v", det.Stroke)
	}
	if det.Distances[stroke.S3.Index()] != 0 {
		t.Errorf("self-distance = %g", det.Distances[stroke.S3.Index()])
	}
}

func TestContourMaxBinConfigWorks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Contour = ContourMaxBin
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Recognize(synthesizeStroke(t, stroke.S2)); err != nil {
		t.Fatalf("max-bin contour failed: %v", err)
	}
}

func TestUnitNormalize(t *testing.T) {
	out := unitNormalize([]float64{2, -4, 1})
	if out[1] != -1 || out[0] != 0.5 {
		t.Errorf("unitNormalize = %v", out)
	}
	zeros := unitNormalize([]float64{0, 0})
	if zeros[0] != 0 || zeros[1] != 0 {
		t.Error("all-zero input should stay zero")
	}
}

func TestStageTimingsTotal(t *testing.T) {
	tm := StageTimings{STFT: 1, Enhancement: 2, Profile: 3, Segmentation: 4, DTW: 5}
	if tm.Total() != 15 {
		t.Errorf("Total = %d", tm.Total())
	}
}
