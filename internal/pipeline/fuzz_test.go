package pipeline

import (
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/stroke"
)

// fuzzMaxSamples bounds one fuzz input (~1.4 s at 44.1 kHz, ≈46 STFT
// frames) so each exec stays fast while still spanning several strokes'
// worth of frames.
const fuzzMaxSamples = 60000

// pcm16ToSamples decodes little-endian 16-bit PCM bytes into [-1,1)
// floats, ignoring a trailing odd byte and truncating to the cap — the
// same wire decode the serve front end performs.
func pcm16ToSamples(data []byte, maxSamples int) []float64 {
	n := len(data) / 2
	if n > maxSamples {
		n = maxSamples
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(int16(binary.LittleEndian.Uint16(data[2*i:]))) / 32768
	}
	return out
}

// samplesToPCM16 is the inverse, used to seed the corpus with real
// synthesized recordings.
func samplesToPCM16(samples []float64) []byte {
	out := make([]byte, 2*len(samples))
	for i, v := range samples {
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		binary.LittleEndian.PutUint16(out[2*i:], uint16(int16(v*32767)))
	}
	return out
}

// FuzzStreamFeed asserts the streaming chain's chunking invariance: for
// any audio and any split of it into chunks, incremental feeding yields
// the same strokes as one whole-buffer feed, and no input — short,
// odd-length, silent, or over the residue cap — panics or corrupts the
// stream.
func FuzzStreamFeed(f *testing.F) {
	// One engine per stream; fuzz execs run sequentially per worker
	// process, and each exec Resets before use.
	engWhole, err := NewEngine(DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	engChunk, err := NewEngine(DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	engCapped, err := NewEngine(DefaultConfig())
	if err != nil {
		f.Fatal(err)
	}
	whole := NewStream(engWhole)
	chunked := NewStream(engChunk)
	capped := NewStream(engCapped)
	capped.MaxChunk = 4096

	// Seed corpus: a real two-stroke recording (truncated to the exec
	// budget), plus degenerate shapes the invariant must survive.
	real2 := synthesizeSequence(f, stroke.Sequence{stroke.S2, stroke.S3})
	realBytes := samplesToPCM16(real2.Samples)
	if len(realBytes) > 2*fuzzMaxSamples {
		realBytes = realBytes[:2*fuzzMaxSamples]
	}
	f.Add(realBytes, uint64(1))
	f.Add([]byte{}, uint64(0))
	f.Add([]byte{0x7f}, uint64(3))                                // odd length
	f.Add(make([]byte, 100), uint64(7))                           // short silence
	f.Add(make([]byte, 2*20000), uint64(9))                       // long silence
	f.Add(realBytes[:min(len(realBytes), 2*8192)], uint64(12345)) // exactly one frame

	f.Fuzz(func(t *testing.T, data []byte, splitSeed uint64) {
		samples := pcm16ToSamples(data, fuzzMaxSamples)

		// Reference: one whole-buffer feed, then flush.
		whole.Reset()
		want, wantErr := whole.Feed(samples)
		if wantErr == nil {
			tail, err := whole.Flush()
			if err != nil {
				t.Fatalf("whole-buffer flush: %v", err)
			}
			want = append(want, tail...)
		}

		// Same audio in arbitrary chunk splits (bounded count so a
		// pathological seed cannot make one exec quadratic).
		rng := rand.New(rand.NewSource(int64(splitSeed)))
		chunked.Reset()
		var got []Detection
		var gotErr error
		for off := 0; off < len(samples) && gotErr == nil; {
			n := 1 + rng.Intn(8192)
			if rem := len(samples) - off; n > rem {
				n = rem
			}
			dets, err := chunked.Feed(samples[off : off+n])
			gotErr = err
			got = append(got, dets...)
			off += n
		}
		if gotErr == nil {
			tail, err := chunked.Flush()
			if err != nil {
				t.Fatalf("chunked flush: %v", err)
			}
			got = append(got, tail...)
		}

		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error mismatch: whole-buffer %v, chunked %v", wantErr, gotErr)
		}
		if wantErr != nil {
			return
		}
		if len(got) != len(want) {
			t.Fatalf("chunked emitted %d detections, whole-buffer %d", len(got), len(want))
		}
		for i := range got {
			if got[i].Stroke != want[i].Stroke {
				t.Errorf("detection %d: chunked %v, whole-buffer %v", i, got[i].Stroke, want[i].Stroke)
			}
			if !got[i].Stroke.Valid() {
				t.Errorf("detection %d: invalid stroke %d", i, int(got[i].Stroke))
			}
			// Emitted exactly once, in order, within the stream extent.
			if d := got[i].Segment.Start - want[i].Segment.Start; d < -4 || d > 4 {
				t.Errorf("detection %d start %d, whole-buffer %d", i, got[i].Segment.Start, want[i].Segment.Start)
			}
			if i > 0 && got[i].Segment.Start <= got[i-1].Segment.End {
				t.Errorf("detections %d/%d overlap: %+v %+v", i-1, i, got[i-1].Segment, got[i].Segment)
			}
			if got[i].Segment.End >= chunked.FramesSeen() {
				t.Errorf("detection %d ends at %d past stream head %d", i, got[i].Segment.End, chunked.FramesSeen())
			}
		}
		if whole.FramesSeen() != chunked.FramesSeen() {
			t.Errorf("frames seen diverge: whole %d, chunked %d", whole.FramesSeen(), chunked.FramesSeen())
		}

		// Residue-cap robustness: an over-cap feed must fail with the
		// typed error, change nothing, and leave the stream usable.
		capped.Reset()
		if _, err := capped.Feed(make([]float64, 8000)); !errors.Is(err, ErrOversizedChunk) {
			t.Fatalf("oversized feed error = %v, want ErrOversizedChunk", err)
		}
		if capped.FramesSeen() != 0 {
			t.Fatal("rejected chunk advanced stream state")
		}
		in := samples
		if len(in) > 4096 {
			in = in[:4096]
		}
		if _, err := capped.Feed(in); err != nil {
			t.Fatalf("in-cap feed after rejection failed: %v", err)
		}
	})
}
