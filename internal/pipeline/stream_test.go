package pipeline

import (
	"errors"
	"math"
	"testing"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/geom"
	"repro/internal/mvce"
	"repro/internal/stroke"
)

// synthesizeSequence renders a multi-stroke writing in a quiet scene with
// rests and gentle repositions between strokes. testing.TB so the fuzz
// harness can seed its corpus with the same audio.
func synthesizeSequence(t testing.TB, seq stroke.Sequence) *audio.Signal {
	t.Helper()
	var parts []geom.Trajectory
	prev, err := stroke.StartPoint(seq[0], stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	parts = append(parts, &geom.StaticTrajectory{Pos: prev, Dur: 0.4})
	for i, st := range seq {
		start, err := stroke.StartPoint(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 {
			parts = append(parts, &geom.StaticTrajectory{Pos: prev, Dur: 0.35})
			rep, err := geom.NewPolyTrajectory([]geom.Waypoint{
				{T: 0, Pos: prev}, {T: 1.0, Pos: start},
			})
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, rep)
		}
		tr, err := stroke.Shape(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, tr)
		prev, err = stroke.EndPoint(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
	}
	parts = append(parts, &geom.StaticTrajectory{Pos: prev, Dur: 0.5})
	finger, err := geom.NewCompositeTrajectory(parts...)
	if err != nil {
		t.Fatal(err)
	}
	sc := &acoustic.Scene{
		Device:     acoustic.Mate9(),
		Env:        acoustic.StandardEnvironment(acoustic.MeetingRoom),
		Reflectors: acoustic.HandReflectors(finger),
		Duration:   finger.Duration(),
		Seed:       9,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestStreamMatchesBatch(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := stroke.Sequence{stroke.S2, stroke.S3, stroke.S1}
	sig := synthesizeSequence(t, seq)

	// Batch reference.
	batch, err := eng.Recognize(sig)
	if err != nil {
		t.Fatal(err)
	}

	// Stream the same audio in awkward chunk sizes.
	stream := NewStream(eng)
	var got []Detection
	for start := 0; start < len(sig.Samples); start += 3001 {
		end := start + 3001
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		dets, err := stream.Feed(sig.Samples[start:end])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, dets...)
	}
	tail, err := stream.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, tail...)

	if len(got) != len(batch.Detections) {
		t.Fatalf("stream emitted %d detections, batch %d", len(got), len(batch.Detections))
	}
	for i, d := range got {
		if d.Stroke != batch.Detections[i].Stroke {
			t.Errorf("detection %d: stream %v, batch %v", i, d.Stroke, batch.Detections[i].Stroke)
		}
		// Absolute frame indices should agree within the smear margin.
		if diff := d.Segment.Start - batch.Detections[i].Segment.Start; diff < -4 || diff > 4 {
			t.Errorf("detection %d start %d vs batch %d", i, d.Segment.Start, batch.Detections[i].Segment.Start)
		}
	}
}

func TestStreamEmitsIncrementally(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := stroke.Sequence{stroke.S2, stroke.S3}
	sig := synthesizeSequence(t, seq)
	stream := NewStream(eng)

	// Feed only the first ~60 % of the audio: the first stroke must
	// already be emitted before the recording ends.
	cut := len(sig.Samples) * 6 / 10
	dets, err := stream.Feed(sig.Samples[:cut])
	if err != nil {
		t.Fatal(err)
	}
	if len(dets) == 0 {
		t.Fatal("no detection emitted mid-stream")
	}
	if dets[0].Stroke != stroke.S2 {
		t.Errorf("first detection %v, want S2", dets[0].Stroke)
	}
	// Feeding the rest completes the second stroke; nothing is emitted
	// twice.
	rest, err := stream.Feed(sig.Samples[cut:])
	if err != nil {
		t.Fatal(err)
	}
	tail, err := stream.Flush()
	if err != nil {
		t.Fatal(err)
	}
	total := append(append([]Detection(nil), dets...), rest...)
	total = append(total, tail...)
	if len(total) != 2 {
		t.Fatalf("emitted %d detections overall, want 2 (%v)", len(total), total)
	}
	if total[1].Stroke != stroke.S3 {
		t.Errorf("second detection %v, want S3", total[1].Stroke)
	}
}

func TestStreamWindowCompaction(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream := NewStream(eng)
	stream.MaxWindow = 64
	sig := synthesizeSequence(t, stroke.Sequence{stroke.S2, stroke.S1, stroke.S3})
	var got []Detection
	for start := 0; start < len(sig.Samples); start += 8192 {
		end := start + 8192
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		dets, err := stream.Feed(sig.Samples[start:end])
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, dets...)
	}
	tail, err := stream.Flush()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, tail...)
	if len(got) != 3 {
		t.Fatalf("compacted stream emitted %d detections, want 3", len(got))
	}
	want := stroke.Sequence{stroke.S2, stroke.S1, stroke.S3}
	for i, d := range got {
		if d.Stroke != want[i] {
			t.Errorf("detection %d = %v, want %v", i, d.Stroke, want[i])
		}
	}
	if stream.FramesSeen() < 200 {
		t.Errorf("FramesSeen = %d unexpectedly small", stream.FramesSeen())
	}
}

func TestStreamSilenceEmitsNothing(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sc := &acoustic.Scene{
		Device:   acoustic.Mate9(),
		Env:      acoustic.StandardEnvironment(acoustic.MeetingRoom),
		Duration: 2.0,
		Seed:     3,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	stream := NewStream(eng)
	dets, err := stream.Feed(sig.Samples)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := stream.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(dets)+len(tail) != 0 {
		t.Errorf("silence produced %d detections", len(dets)+len(tail))
	}
}

func TestStreamAdaptiveStatic(t *testing.T) {
	// After the hand comes to rest in a NEW position (a static echo the
	// initial template has never seen), the fixed-template stream keeps a
	// residual foreground there forever; the adaptive stream absorbs it.
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Scene: rest at A (template learned) → stroke → long rest at B.
	start, err := stroke.StartPoint(stroke.S2, stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	end, err := stroke.EndPoint(stroke.S2, stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := stroke.Shape(stroke.S2, stroke.ShapeParams{})
	if err != nil {
		t.Fatal(err)
	}
	finger, err := geom.NewCompositeTrajectory(
		&geom.StaticTrajectory{Pos: start, Dur: 0.4},
		tr,
		&geom.StaticTrajectory{Pos: end, Dur: 6.0}, // long rest at B
	)
	if err != nil {
		t.Fatal(err)
	}
	sc := &acoustic.Scene{
		Device:     acoustic.Mate9(),
		Env:        acoustic.StandardEnvironment(acoustic.MeetingRoom),
		Reflectors: acoustic.HandReflectors(finger),
		Duration:   finger.Duration(),
		Seed:       5,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}

	tailBias := func(adaptive bool) float64 {
		stream := NewStream(eng)
		stream.AdaptiveStatic = adaptive
		for off := 0; off < len(sig.Samples); off += 4410 {
			endIdx := min(off+4410, len(sig.Samples))
			if _, err := stream.Feed(sig.Samples[off:endIdx]); err != nil {
				t.Fatal(err)
			}
		}
		// Inspect the final window's profile tail directly.
		bin, _, err := eng.enhanceColumns(stream.columns, stream.static)
		if err != nil {
			t.Fatal(err)
		}
		profile, err := mvceExtractForTest(eng, bin)
		if err != nil {
			t.Fatal(err)
		}
		// Mean |shift| over the last 40 frames (pure rest at B).
		sum := 0.0
		n := 0
		for i := len(profile) - 40; i < len(profile); i++ {
			if i >= 0 {
				sum += math.Abs(profile[i])
				n++
			}
		}
		return sum / float64(n)
	}

	fixed := tailBias(false)
	adaptive := tailBias(true)
	t.Logf("rest-at-B residual: fixed %.1f Hz, adaptive %.1f Hz", fixed, adaptive)
	if adaptive > fixed {
		t.Errorf("adaptive template did not reduce residual: %.1f vs %.1f", adaptive, fixed)
	}
	if adaptive > 6 {
		t.Errorf("adaptive residual %.1f Hz still large", adaptive)
	}

	// The adaptive template must actually have moved away from the
	// initial one (the hand's static echo changed from A to B).
	mkStatic := func(adapt bool) []float64 {
		stream := NewStream(eng)
		stream.AdaptiveStatic = adapt
		for off := 0; off < len(sig.Samples); off += 4410 {
			endIdx := min(off+4410, len(sig.Samples))
			if _, err := stream.Feed(sig.Samples[off:endIdx]); err != nil {
				t.Fatal(err)
			}
		}
		return append([]float64(nil), stream.static...)
	}
	fixedTpl := mkStatic(false)
	adaptTpl := mkStatic(true)
	diff := 0.0
	for b := range fixedTpl {
		diff += math.Abs(fixedTpl[b] - adaptTpl[b])
	}
	if diff == 0 {
		t.Error("adaptive template never updated")
	}
}

// mvceExtractForTest exposes contour extraction on a binary window.
func mvceExtractForTest(eng *Engine, bin [][]uint8) ([]float64, error) {
	return mvce.Extract(bin, eng.cfg.mvceConfig())
}

func TestStreamResetMatchesFresh(t *testing.T) {
	// A pooled stream is Reset between recordings; after Reset it must be
	// indistinguishable from a freshly constructed stream on the canonical
	// six-stroke alphabet.
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	seq := stroke.Sequence{stroke.S1, stroke.S2, stroke.S3, stroke.S4, stroke.S5, stroke.S6}
	sig := synthesizeSequence(t, seq)

	run := func(stream *Stream) []Detection {
		var got []Detection
		for start := 0; start < len(sig.Samples); start += 4096 {
			end := min(start+4096, len(sig.Samples))
			dets, err := stream.Feed(sig.Samples[start:end])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, dets...)
		}
		tail, err := stream.Flush()
		if err != nil {
			t.Fatal(err)
		}
		return append(got, tail...)
	}

	fresh := run(NewStream(eng))

	// Dirty a stream with part of the same audio, then Reset and rerun.
	reused := NewStream(eng)
	if _, err := reused.Feed(sig.Samples[:len(sig.Samples)/3]); err != nil {
		t.Fatal(err)
	}
	reused.Reset()
	if reused.FramesSeen() != 0 {
		t.Fatalf("FramesSeen = %d after Reset, want 0", reused.FramesSeen())
	}
	again := run(reused)

	if len(fresh) != len(again) {
		t.Fatalf("fresh stream emitted %d detections, reset stream %d", len(fresh), len(again))
	}
	for i := range fresh {
		if fresh[i].Stroke != again[i].Stroke {
			t.Errorf("detection %d: fresh %v, reset %v", i, fresh[i].Stroke, again[i].Stroke)
		}
		if fresh[i].Segment != again[i].Segment {
			t.Errorf("detection %d: fresh segment %+v, reset segment %+v",
				i, fresh[i].Segment, again[i].Segment)
		}
	}
}

func TestStreamFeedOversizedChunk(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream := NewStream(eng)
	stream.MaxChunk = 10000

	// Oversized in one call: typed error, no state change.
	if _, err := stream.Feed(make([]float64, 10001)); !errors.Is(err, ErrOversizedChunk) {
		t.Fatalf("Feed(10001) error = %v, want ErrOversizedChunk", err)
	}
	if stream.FramesSeen() != 0 {
		t.Errorf("rejected feed still produced %d frames", stream.FramesSeen())
	}

	// The cap applies to buffered residue, not just the chunk: two calls
	// that together exceed it must also fail.
	if _, err := stream.Feed(make([]float64, 6000)); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Feed(make([]float64, 9000)); !errors.Is(err, ErrOversizedChunk) {
		t.Fatalf("cumulative overflow error = %v, want ErrOversizedChunk", err)
	}

	// Within the cap everything keeps working.
	if _, err := stream.Feed(make([]float64, 1000)); err != nil {
		t.Fatalf("in-cap feed failed: %v", err)
	}
}

func TestStreamDefaultChunkCap(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	stream := NewStream(eng)
	if _, err := stream.Feed(make([]float64, DefaultMaxChunk+1)); !errors.Is(err, ErrOversizedChunk) {
		t.Fatalf("default cap error = %v, want ErrOversizedChunk", err)
	}
}
