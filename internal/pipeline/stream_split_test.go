package pipeline

import (
	"errors"
	"testing"
	"time"

	"repro/internal/dsp"
	"repro/internal/stroke"
)

// TestStreamFeedTimingAccruedOnError pins the Feed accounting fix: when
// the hop loop exits on an error after consuming samples, the time
// already spent extracting frames must still land in Timings().STFT —
// previously the early returns skipped the accrual and error feeds
// looked free to the serving layer's stage accounting.
func TestStreamFeedTimingAccruedOnError(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(eng)
	sentinel := errors.New("injected frame failure")
	calls := 0
	s.testFrameHook = func() error {
		calls++
		if calls > 2 {
			// Make the spent window unambiguous on coarse clocks.
			time.Sleep(2 * time.Millisecond)
			return sentinel
		}
		return nil
	}
	cfg := eng.cfg.STFT
	chunk := make([]float64, cfg.FFTSize+3*cfg.HopSize)
	if _, err := s.Feed(chunk); !errors.Is(err, sentinel) {
		t.Fatalf("Feed error = %v, want injected failure", err)
	}
	if calls != 3 {
		t.Fatalf("hook ran %d times, want 3 (two frames extracted, third aborted)", calls)
	}
	if got := s.Timings().STFT; got < 2*time.Millisecond {
		t.Fatalf("STFT timing after failed feed = %v, want the spent time accrued", got)
	}
}

// TestStreamSplitMatchesFeed drives one stream with Feed and a second
// through the split API — Accumulate, PendingFrame reads into a shared
// BatchSTFT, AcceptColumns, AccrueSTFT, Detect — and requires the two
// to emit byte-identical detections. This is the single-session
// equivalence the serve-layer batch collector relies on.
func TestStreamSplitMatchesFeed(t *testing.T) {
	engA, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	engB, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const lanes = 16
	bs, err := dsp.NewBatchSTFT(engB.cfg.STFT, lanes)
	if err != nil {
		t.Fatal(err)
	}
	if !bs.Batched() {
		t.Fatal("default config should take the shared-plan batch path")
	}
	sig := synthesizeSequence(t, stroke.Sequence{stroke.S2, stroke.S1})
	a, b := NewStream(engA), NewStream(engB)
	frames := make([][]float64, lanes)
	for start := 0; start < len(sig.Samples); start += 2777 {
		end := start + 2777
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		chunk := sig.Samples[start:end]
		detsA, err := a.Feed(chunk)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Accumulate(chunk); err != nil {
			t.Fatal(err)
		}
		for n := b.PendingFrames(); n > 0; n = b.PendingFrames() {
			k := n
			if k > lanes {
				k = lanes
			}
			cols := make([][]float64, k)
			for i := 0; i < k; i++ {
				frames[i] = b.PendingFrame(i)
				cols[i] = make([]float64, bs.Bins())
			}
			t0 := time.Now()
			if err := bs.Columns(frames[:k], cols); err != nil {
				t.Fatal(err)
			}
			b.AccrueSTFT(time.Since(t0))
			if err := b.AcceptColumns(cols); err != nil {
				t.Fatal(err)
			}
		}
		detsB, err := b.Detect()
		if err != nil {
			t.Fatal(err)
		}
		if len(detsA) != len(detsB) {
			t.Fatalf("feed emitted %d detections, split %d", len(detsA), len(detsB))
		}
		for i := range detsA {
			if detsA[i].Stroke != detsB[i].Stroke ||
				detsA[i].Segment != detsB[i].Segment ||
				detsA[i].Contaminated != detsB[i].Contaminated {
				t.Fatalf("detection %d differs: feed %+v, split %+v", i, detsA[i], detsB[i])
			}
		}
	}
	tailA, err := a.Flush()
	if err != nil {
		t.Fatal(err)
	}
	tailB, err := b.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(tailA) != len(tailB) {
		t.Fatalf("flush emitted %d vs %d detections", len(tailA), len(tailB))
	}
	for i := range tailA {
		if tailA[i].Stroke != tailB[i].Stroke || tailA[i].Segment != tailB[i].Segment {
			t.Fatalf("flush detection %d differs: %+v vs %+v", i, tailA[i], tailB[i])
		}
	}
	if b.Timings().STFT <= 0 {
		t.Fatal("split-driven stream accrued no STFT time")
	}
	if b.FramesSeen() != a.FramesSeen() {
		t.Fatalf("split stream saw %d frames, feed stream %d", b.FramesSeen(), a.FramesSeen())
	}
}

// TestStreamSplitAPIErrors pins the AcceptColumns contract: offering
// more columns than pending frames, or malformed columns, leaves the
// stream unchanged.
func TestStreamSplitAPIErrors(t *testing.T) {
	eng, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(eng)
	cfg := eng.cfg.STFT
	if err := s.Accumulate(make([]float64, cfg.FFTSize)); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingFrames(); got != 1 {
		t.Fatalf("PendingFrames = %d, want 1", got)
	}
	bins := eng.stft.Bins()
	two := [][]float64{make([]float64, bins), make([]float64, bins)}
	if err := s.AcceptColumns(two); err == nil {
		t.Fatal("2 columns for 1 pending frame accepted")
	}
	if err := s.AcceptColumns([][]float64{make([]float64, bins-1)}); err == nil {
		t.Fatal("short column accepted")
	}
	if got := s.PendingFrames(); got != 1 {
		t.Fatalf("rejected AcceptColumns consumed residue: PendingFrames = %d, want 1", got)
	}
	if err := s.AcceptColumns([][]float64{make([]float64, bins)}); err != nil {
		t.Fatal(err)
	}
	if got := s.PendingFrames(); got != 0 {
		t.Fatalf("PendingFrames after accept = %d, want 0", got)
	}
	if got := s.FramesSeen(); got != 1 {
		t.Fatalf("FramesSeen = %d, want 1", got)
	}
}

// TestStreamCompactionClampMidStroke is the boundary regression for the
// window-compaction clamp: when MaxWindow is exactly reached while a
// stroke is still unemitted, the clamp must hold every frame of that
// stroke in the window (letting it exceed MaxWindow) rather than drop
// them. A clamped stream must emit detections identical to an unbounded
// one.
func TestStreamCompactionClampMidStroke(t *testing.T) {
	engRef, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	engClamped, err := NewEngine(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sig := synthesizeSequence(t, stroke.Sequence{stroke.S3, stroke.S2})
	ref, clamped := NewStream(engRef), NewStream(engClamped)
	// Small enough that the cap is hit during the first stroke, before
	// anything has been emitted (first emission waits out the stroke
	// plus the safety margin).
	clamped.MaxWindow = 40
	var refDets, clampedDets []Detection
	overfull := 0
	for start := 0; start < len(sig.Samples); start += 2048 {
		end := start + 2048
		if end > len(sig.Samples) {
			end = len(sig.Samples)
		}
		d1, err := ref.Feed(sig.Samples[start:end])
		if err != nil {
			t.Fatal(err)
		}
		refDets = append(refDets, d1...)
		d2, err := clamped.Feed(sig.Samples[start:end])
		if err != nil {
			t.Fatal(err)
		}
		clampedDets = append(clampedDets, d2...)
		if len(clamped.columns) > clamped.MaxWindow {
			overfull++
		}
	}
	d1, err := ref.Flush()
	if err != nil {
		t.Fatal(err)
	}
	refDets = append(refDets, d1...)
	d2, err := clamped.Flush()
	if err != nil {
		t.Fatal(err)
	}
	clampedDets = append(clampedDets, d2...)
	if overfull == 0 {
		t.Fatal("clamp never engaged: window stayed within MaxWindow, boundary untested")
	}
	if len(refDets) == 0 {
		t.Fatal("reference stream emitted nothing; scenario is degenerate")
	}
	if len(refDets) != len(clampedDets) {
		t.Fatalf("clamped stream emitted %d detections, reference %d", len(clampedDets), len(refDets))
	}
	for i := range refDets {
		if refDets[i].Stroke != clampedDets[i].Stroke || refDets[i].Segment != clampedDets[i].Segment {
			t.Fatalf("detection %d differs under clamp: %+v vs %+v", i, clampedDets[i], refDets[i])
		}
	}
}
