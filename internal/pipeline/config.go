// Package pipeline is EchoWrite's core: the end-to-end signal chain that
// turns a raw microphone stream into recognized strokes. It wires together
// the substrate packages exactly as the paper's Fig. 7 flowchart does:
//
//	audio → STFT → band crop → median filter → spectral subtraction →
//	energy gate (α) → Gaussian smoothing → zero-one normalization →
//	binarization → flood-fill → MVCE profile → acceleration segmentation →
//	DTW against analytic stroke templates.
//
// The engine records per-stage wall time so the system-overhead
// experiments (Fig. 19–21) measure the real implementation.
package pipeline

import (
	"fmt"

	"repro/internal/dsp"
	"repro/internal/dtw"
	"repro/internal/mvce"
	"repro/internal/segment"
)

// ContourMethod selects the profile extractor.
type ContourMethod int

// Contour extractors. MVCE is the paper's; MaxBin exists for the ablation
// study.
const (
	ContourMVCE ContourMethod = iota + 1
	ContourMaxBin
)

// Config assembles every tunable of the recognition chain. The zero value
// is not usable; start from DefaultConfig.
type Config struct {
	// STFT is the front-end transform configuration, including the band
	// of interest crop.
	STFT dsp.STFTConfig
	// CarrierHz is the probe tone frequency as observed in the processed
	// stream (must sit inside the STFT band). For the full-rate pipeline
	// this is the emitted 20 kHz; a bandpass-sampled front-end supplies
	// the aliased carrier instead.
	CarrierHz float64
	// PhysicalCarrierHz is the emitted probe frequency used for template
	// generation; zero means CarrierHz. It differs from CarrierHz only
	// under bandpass sampling, where Doppler magnitudes are still set by
	// the true 20 kHz carrier.
	PhysicalCarrierHz float64
	// InvertSpectrum marks front-ends whose band folds from an odd
	// Nyquist zone (spectral inversion); contour extraction negates
	// shifts to restore the physical sign convention.
	InvertSpectrum bool
	// StaticFrames is the number of initial frames averaged into the
	// static-background template for spectral subtraction (paper: 5).
	StaticFrames int
	// EnergyThreshold is α, the post-subtraction magnitude gate
	// (paper: 8, hardware-dependent).
	EnergyThreshold float64
	// GaussianKernel is the smoothing kernel size (paper: 5).
	GaussianKernel int
	// BinarizeThreshold is applied after zero-one normalization
	// (paper: 0.15).
	BinarizeThreshold float64
	// MinComponentSize removes binary components smaller than this many
	// pixels before contour extraction; 0 disables.
	MinComponentSize int
	// Contour selects the profile extractor (default MVCE).
	Contour ContourMethod
	// ProfileSmoothWindow is the moving-average window on the raw profile
	// (paper: 3).
	ProfileSmoothWindow int
	// Burst configures wideband transient suppression (§VII-B future
	// work; disabled in the paper's prototype and by default here).
	Burst BurstConfig
	// Segment holds the acceleration-gate thresholds.
	Segment segment.Config
	// DTW configures template matching.
	DTW dtw.Options
	// AmplitudeNormalize, when true, rescales both the query profile and
	// each template to unit peak magnitude before DTW. The absolute
	// (unnormalized) comparison empirically separates the stroke alphabet
	// better — peak Doppler magnitude is itself a gesture signature — so
	// the default is false; the normalized variant remains for the
	// ablation study.
	AmplitudeNormalize bool
	// SoundSpeed in m/s for template generation (paper: 340).
	SoundSpeed float64
}

// DefaultConfig returns the paper's parameterization end to end.
func DefaultConfig() Config {
	return Config{
		STFT:                dsp.DefaultSTFTConfig(),
		CarrierHz:           20000,
		StaticFrames:        5,
		EnergyThreshold:     8,
		GaussianKernel:      5,
		BinarizeThreshold:   0.15,
		MinComponentSize:    6,
		Contour:             ContourMVCE,
		ProfileSmoothWindow: 3,
		Segment:             segment.DefaultConfig(),
		DTW:                 dtw.Options{Window: 4, Normalize: true},
		AmplitudeNormalize:  false,
		SoundSpeed:          340,
	}
}

// Validate checks cross-field consistency.
func (c Config) Validate() error {
	if err := c.STFT.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	carrierBin := c.CarrierHz * float64(c.STFT.FFTSize) / c.STFT.SampleRate
	if int(carrierBin) < c.STFT.LowBin || int(carrierBin) >= c.STFT.HighBin {
		return fmt.Errorf("pipeline: carrier %g Hz (bin %.1f) outside STFT band [%d,%d)",
			c.CarrierHz, carrierBin, c.STFT.LowBin, c.STFT.HighBin)
	}
	if c.StaticFrames < 1 {
		return fmt.Errorf("pipeline: StaticFrames must be >= 1, got %d", c.StaticFrames)
	}
	if c.EnergyThreshold < 0 {
		return fmt.Errorf("pipeline: EnergyThreshold must be >= 0, got %g", c.EnergyThreshold)
	}
	if c.GaussianKernel <= 0 || c.GaussianKernel%2 == 0 {
		return fmt.Errorf("pipeline: GaussianKernel must be odd and positive, got %d", c.GaussianKernel)
	}
	if c.BinarizeThreshold <= 0 || c.BinarizeThreshold >= 1 {
		return fmt.Errorf("pipeline: BinarizeThreshold must be in (0,1), got %g", c.BinarizeThreshold)
	}
	if c.Contour != ContourMVCE && c.Contour != ContourMaxBin {
		return fmt.Errorf("pipeline: unknown contour method %d", c.Contour)
	}
	if err := c.Segment.Validate(); err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	if c.SoundSpeed <= 0 {
		return fmt.Errorf("pipeline: SoundSpeed must be positive, got %g", c.SoundSpeed)
	}
	return nil
}

// carrierLocalBin returns the (fractional) local bin index of the carrier
// within the cropped band.
func (c Config) carrierLocalBin() float64 {
	return c.CarrierHz*float64(c.STFT.FFTSize)/c.STFT.SampleRate - float64(c.STFT.LowBin)
}

// binWidthHz returns Hz per FFT bin.
func (c Config) binWidthHz() float64 {
	return c.STFT.SampleRate / float64(c.STFT.FFTSize)
}

// FrameRate returns spectrogram frames per second.
func (c Config) FrameRate() float64 {
	return c.STFT.SampleRate / float64(c.STFT.HopSize)
}

// mvceConfig derives the contour-extraction configuration.
func (c Config) mvceConfig() mvce.Config {
	w := c.ProfileSmoothWindow
	if w == 0 {
		w = 3
	}
	return mvce.Config{
		CarrierBin:   c.carrierLocalBin(),
		BinWidthHz:   c.binWidthHz(),
		SmoothWindow: w,
		Invert:       c.InvertSpectrum,
	}
}

// PhysicalCarrier returns the emitted carrier frequency for template
// generation.
func (c Config) PhysicalCarrier() float64 {
	if c.PhysicalCarrierHz != 0 {
		return c.PhysicalCarrierHz
	}
	return c.CarrierHz
}
