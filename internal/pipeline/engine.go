package pipeline

import (
	"fmt"
	"math"
	"time"

	"repro/internal/audio"
	"repro/internal/dsp"
	"repro/internal/dtw"
	"repro/internal/imgproc"
	"repro/internal/mvce"
	"repro/internal/segment"
	"repro/internal/stroke"
)

// StageTimings records wall time spent per pipeline stage for one
// recognition call; the paper's Fig. 19 reports these.
type StageTimings struct {
	STFT         time.Duration
	Enhancement  time.Duration
	Profile      time.Duration
	Segmentation time.Duration
	DTW          time.Duration
}

// Total sums all stage durations.
func (t StageTimings) Total() time.Duration {
	return t.STFT + t.Enhancement + t.Profile + t.Segmentation + t.DTW
}

// Detection is one recognized stroke.
type Detection struct {
	// Segment is the frame interval of the stroke.
	Segment segment.Segment
	// Stroke is the best-matching template.
	Stroke stroke.Stroke
	// Distances holds the normalized DTW distance to each template,
	// indexed by Stroke.Index().
	Distances [stroke.NumStrokes]float64
	// Likelihoods are softmax scores over the (negated) distances: a
	// template-conditional observation likelihood usable as P(s|l) when
	// no empirical confusion matrix is available.
	Likelihoods [stroke.NumStrokes]float64
	// Contaminated marks detections whose segment overlaps burst-suspect
	// frames (see Config.Burst); the UI should ask for a rewrite rather
	// than trust the classification.
	Contaminated bool
}

// Recognition is the full output of one pipeline run.
type Recognition struct {
	// Profile is the extracted Doppler-shift profile in Hz per frame.
	Profile []float64
	// Segments are the detected stroke intervals.
	Segments []segment.Segment
	// Detections pair each segment with its classification.
	Detections []Detection
	// Sequence is the recognized stroke sequence (one entry per
	// detection).
	Sequence stroke.Sequence
	// BurstFrames lists frames flagged as wideband-burst contaminated
	// (empty when suppression is disabled).
	BurstFrames []int
	// Timings records per-stage processing cost.
	Timings StageTimings
	// Stages optionally retains intermediate matrices (see
	// Engine.KeepStages).
	Stages *Stages
}

// Stages holds intermediate artifacts for debugging and for reproducing
// the paper's Fig. 8 pipeline illustration.
type Stages struct {
	// Raw is the cropped magnitude spectrogram before any cleaning.
	Raw *dsp.Spectrogram
	// Denoised is the spectrogram after median filtering, spectral
	// subtraction, the energy gate and Gaussian smoothing.
	Denoised [][]float64
	// Binary is the binarized, hole-filled image.
	Binary [][]uint8
	// RawProfile is the contour before moving-average smoothing.
	RawProfile []float64
}

// Engine is a reusable recognizer. It owns the STFT state and the analytic
// template set. An Engine is not safe for concurrent use; create one per
// goroutine.
type Engine struct {
	cfg       Config
	stft      *dsp.STFT
	templates *stroke.TemplateSet
	// library holds the matching profiles actually used by DTW, indexed
	// by Stroke.Index(). By default these are the analytic templates;
	// SetTemplateLibrary installs pipeline-calibrated replacements.
	library [stroke.NumStrokes][]float64
	// KeepStages, when set, retains intermediate matrices in each
	// Recognition (costs memory; off by default).
	KeepStages bool
}

// NewEngine validates cfg and prepares the STFT plan and template set.
func NewEngine(cfg Config) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	st, err := dsp.NewSTFT(cfg.STFT)
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	ts, err := stroke.NewTemplateSet(stroke.TemplateConfig{
		CarrierHz:  cfg.PhysicalCarrier(),
		SoundSpeed: cfg.SoundSpeed,
		FrameRate:  cfg.FrameRate(),
	})
	if err != nil {
		return nil, fmt.Errorf("pipeline: %w", err)
	}
	e := &Engine{cfg: cfg, stft: st, templates: ts}
	for _, s := range stroke.AllStrokes() {
		e.library[s.Index()] = ts.Profile(s)
	}
	return e, nil
}

// SetTemplateLibrary replaces the matching templates (indexed by
// Stroke.Index()). Every profile must be non-empty. Use this to install
// pipeline-calibrated templates (see the calibrate package).
func (e *Engine) SetTemplateLibrary(profiles [stroke.NumStrokes][]float64) error {
	for i, p := range profiles {
		if len(p) == 0 {
			return fmt.Errorf("pipeline: template %d is empty", i)
		}
	}
	for i, p := range profiles {
		e.library[i] = append([]float64(nil), p...)
	}
	return nil
}

// TemplateLibrary returns a copy of the active matching templates.
func (e *Engine) TemplateLibrary() [stroke.NumStrokes][]float64 {
	var out [stroke.NumStrokes][]float64
	for i, p := range e.library {
		out[i] = append([]float64(nil), p...)
	}
	return out
}

// Config returns the engine's configuration.
func (e *Engine) Config() Config { return e.cfg }

// Templates exposes the analytic template set (read-only).
func (e *Engine) Templates() *stroke.TemplateSet { return e.templates }

// Recognize runs the full chain over a recorded signal.
func (e *Engine) Recognize(sig *audio.Signal) (*Recognition, error) {
	if sig.Rate != e.cfg.STFT.SampleRate {
		return nil, fmt.Errorf("pipeline: signal rate %g does not match config rate %g",
			sig.Rate, e.cfg.STFT.SampleRate)
	}
	rec := &Recognition{}
	if e.KeepStages {
		rec.Stages = &Stages{}
	}

	// Stage 1: STFT with band crop.
	t0 := time.Now()
	spec, err := e.stft.Compute(sig.Samples)
	if err != nil {
		return nil, fmt.Errorf("pipeline: STFT: %w", err)
	}
	rec.Timings.STFT = time.Since(t0)
	if rec.Stages != nil {
		rec.Stages.Raw = spec.Clone()
	}

	// Stage 2: Doppler enhancement.
	t0 = time.Now()
	binary, denoised, burstFrames, err := e.enhance(spec.Data)
	if err != nil {
		return nil, fmt.Errorf("pipeline: enhancement: %w", err)
	}
	rec.BurstFrames = burstFrames
	rec.Timings.Enhancement = time.Since(t0)
	if rec.Stages != nil {
		rec.Stages.Denoised = denoised
		rec.Stages.Binary = binary
	}

	// Stage 3: contour extraction.
	t0 = time.Now()
	profile, rawProfile, err := e.extractProfile(binary)
	if err != nil {
		return nil, fmt.Errorf("pipeline: profile: %w", err)
	}
	rec.Timings.Profile = time.Since(t0)
	rec.Profile = profile
	if rec.Stages != nil {
		rec.Stages.RawProfile = rawProfile
	}

	// Stage 4: segmentation.
	t0 = time.Now()
	segs, err := segment.Detect(profile, e.cfg.Segment)
	if err != nil {
		return nil, fmt.Errorf("pipeline: segmentation: %w", err)
	}
	rec.Timings.Segmentation = time.Since(t0)
	rec.Segments = segs

	// Stage 5: DTW classification.
	t0 = time.Now()
	for _, sg := range segs {
		slice, err := segment.Slice(profile, sg)
		if err != nil {
			return nil, fmt.Errorf("pipeline: %w", err)
		}
		det, err := e.ClassifyProfile(slice)
		if err != nil {
			return nil, fmt.Errorf("pipeline: classify segment [%d,%d]: %w", sg.Start, sg.End, err)
		}
		det.Segment = sg
		det.Contaminated = overlapsBurst(sg, rec.BurstFrames)
		rec.Detections = append(rec.Detections, det)
		rec.Sequence = append(rec.Sequence, det.Stroke)
	}
	rec.Timings.DTW = time.Since(t0)
	return rec, nil
}

// enhance applies the paper's cleaning chain to the raw magnitude matrix,
// returning the binary image and (when stages are kept) the pre-binarize
// denoised matrix. The static-background template is the mean of the
// initial StaticFrames frames.
func (e *Engine) enhance(raw [][]float64) ([][]uint8, [][]float64, []int, error) {
	if len(raw) < e.cfg.StaticFrames {
		return nil, nil, nil, fmt.Errorf("spectrogram has %d frames, need at least %d static frames",
			len(raw), e.cfg.StaticFrames)
	}
	cols := len(raw[0])
	static := make([]float64, cols)
	for f := 0; f < e.cfg.StaticFrames; f++ {
		for b, v := range raw[f] {
			static[b] += v
		}
	}
	for b := range static {
		static[b] /= float64(e.cfg.StaticFrames)
	}
	return e.enhanceStages(raw, static)
}

// enhanceColumns is the streaming entry point: the static template is
// supplied by the caller (estimated once at stream start). The input is
// not mutated.
func (e *Engine) enhanceColumns(raw [][]float64, static []float64) ([][]uint8, []int, error) {
	bin, _, bursts, err := e.enhanceStages(raw, static)
	return bin, bursts, err
}

// enhanceStages runs median filter → spectral subtraction → energy gate →
// Gaussian blur → zero-one normalization → binarization → flood fill →
// speck removal.
func (e *Engine) enhanceStages(raw [][]float64, static []float64) ([][]uint8, [][]float64, []int, error) {
	m, err := imgproc.Median3x3(raw)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, row := range m {
		for b := range row {
			row[b] -= static[b]
			if row[b] < 0 {
				row[b] = 0
			}
		}
	}
	imgproc.Threshold(m, e.cfg.EnergyThreshold)
	bursts := suppressBursts(m, e.cfg.Burst)
	m, err = imgproc.GaussianBlur(m, e.cfg.GaussianKernel, 0)
	if err != nil {
		return nil, nil, nil, err
	}
	imgproc.Normalize01(m)
	bin := imgproc.Binarize(m, e.cfg.BinarizeThreshold)
	bin, err = imgproc.FillHoles(bin)
	if err != nil {
		return nil, nil, nil, err
	}
	if e.cfg.MinComponentSize > 1 {
		bin, err = imgproc.RemoveSmallComponents(bin, e.cfg.MinComponentSize)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	var denoised [][]float64
	if e.KeepStages {
		denoised = m
	}
	return bin, denoised, bursts, nil
}

// overlapsBurst reports whether any burst-suspect frame falls inside the
// segment.
func overlapsBurst(sg segment.Segment, bursts []int) bool {
	for _, f := range bursts {
		if f >= sg.Start && f <= sg.End {
			return true
		}
	}
	return false
}

// extractProfile runs the configured contour extractor, returning the
// smoothed profile and, when stages are kept, the raw one.
func (e *Engine) extractProfile(bin [][]uint8) (smoothed, raw []float64, err error) {
	cfg := e.cfg.mvceConfig()
	switch e.cfg.Contour {
	case ContourMaxBin:
		smoothed, err = mvce.ExtractMaxBin(bin, cfg)
	default:
		smoothed, err = mvce.Extract(bin, cfg)
	}
	if err != nil {
		return nil, nil, err
	}
	if e.KeepStages {
		rawCfg := cfg
		rawCfg.SmoothWindow = 1
		raw, err = mvce.Extract(bin, rawCfg)
		if err != nil {
			return nil, nil, err
		}
	}
	return smoothed, raw, nil
}

// Softmax temperatures converting DTW distances into likelihoods,
// calibrated so a clearly better template dominates while near-ties stay
// soft. Amplitude-normalized profiles live on a unit scale, absolute ones
// on an Hz scale.
const (
	softmaxTemperatureHz   = 20.0
	softmaxTemperatureUnit = 0.06
)

// unitNormalize scales x to unit peak magnitude (no-op for all-zero
// input), returning a new slice.
func unitNormalize(x []float64) []float64 {
	peak := 0.0
	for _, v := range x {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	out := make([]float64, len(x))
	if peak == 0 {
		return out
	}
	for i, v := range x {
		out[i] = v / peak
	}
	return out
}

// ClassifyProfile matches one segmented profile against the template set.
func (e *Engine) ClassifyProfile(profile []float64) (Detection, error) {
	var det Detection
	temperature := softmaxTemperatureHz
	query := profile
	library := make([][]float64, stroke.NumStrokes)
	copy(library, e.library[:])
	if e.cfg.AmplitudeNormalize {
		temperature = softmaxTemperatureUnit
		query = unitNormalize(profile)
		for i, tpl := range library {
			library[i] = unitNormalize(tpl)
		}
	}
	matches, err := dtw.NearestN(query, library, stroke.NumStrokes, e.cfg.DTW)
	if err != nil {
		return det, err
	}
	for i := range det.Distances {
		det.Distances[i] = -1 // sentinel for "no alignment"
	}
	minD := matches[0].Distance
	det.Stroke = stroke.Stroke(matches[0].Index + 1)
	sum := 0.0
	for _, m := range matches {
		det.Distances[m.Index] = m.Distance
		l := softmaxExp(-(m.Distance - minD) / temperature)
		det.Likelihoods[m.Index] = l
		sum += l
	}
	if sum > 0 {
		for i := range det.Likelihoods {
			det.Likelihoods[i] /= sum
		}
	}
	return det, nil
}

// softmaxExp is a clipped exponential avoiding underflow churn.
func softmaxExp(x float64) float64 {
	if x < -40 {
		return 0
	}
	// math.Exp inlined via the standard library; kept in a helper for the
	// clipping.
	return exp(x)
}

// exp delegates to math.Exp; split out so the clipping helper reads
// cleanly.
func exp(x float64) float64 { return math.Exp(x) }
