package pipeline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mvce"
	"repro/internal/segment"
)

// ErrOversizedChunk is returned by Stream.Feed when a single call would
// grow the buffered residue past the stream's chunk cap. Callers should
// split the input into smaller chunks; the stream state is unchanged.
var ErrOversizedChunk = errors.New("pipeline: chunk exceeds stream residue cap")

// DefaultMaxChunk bounds how many samples one Feed call may buffer
// (≈24 s at 44.1 kHz). A serving front end exposed to untrusted clients
// should set Stream.MaxChunk far lower (one network frame).
const DefaultMaxChunk = 1 << 20

// Stream is the incremental recognizer matching the paper's prototype
// (§IV-A): audio arrives in arbitrary chunks, STFT frames are produced as
// soon as a hop completes, and detections are emitted as strokes finish —
// without waiting for the recording to end.
//
// The static-background template for spectral subtraction is estimated
// once from the first StaticFrames frames of the stream (the paper's
// "initial 5 frames"), so streams must begin with a short rest, exactly
// as the batch pipeline requires.
//
// A Stream keeps a bounded window of spectrogram columns (MaxWindow
// frames); enhancement and contour extraction re-run over the window on
// each feed, which mirrors the prototype's process-on-buffer-full loop.
type Stream struct {
	eng *Engine
	// MaxWindow bounds the retained spectrogram columns; 0 means 1024
	// frames (≈24 s at the paper's hop).
	MaxWindow int
	// AdaptiveStatic slowly refreshes the spectral-subtraction template
	// during quiet frames, so a hand that comes to rest in a new spot
	// (changing the static echo field) stops biasing later profiles. The
	// paper's prototype re-estimates per stroke; this is the streaming
	// equivalent. Off by default (the paper's fixed initial template).
	AdaptiveStatic bool
	// MaxChunk caps how many samples a single Feed call may leave
	// buffered; 0 means DefaultMaxChunk. Oversized calls fail with
	// ErrOversizedChunk instead of growing memory without bound.
	MaxChunk int

	// testFrameHook, when set, runs before each frame extraction in
	// Feed; a non-nil error aborts the hop loop. Tests use it to reach
	// Feed's error exits, which are otherwise unreachable in-process
	// (FrameColumn always sees exact-size frames and pushColumn cannot
	// fail), to pin that accrued stage time survives an error return.
	testFrameHook func() error

	samples     []float64   // residue not yet consumed into frames
	columns     [][]float64 // raw magnitude columns in the window
	frameOffset int         // absolute index of columns[0]
	static      []float64   // spectral-subtraction template
	staticAccum [][]float64 // first frames accumulated for the template
	emittedEnd  int         // absolute frame index before which detections were emitted
	timings     StageTimings
}

// NewStream wraps an engine for incremental use. The engine must not be
// used concurrently by other callers while the stream is active.
func NewStream(eng *Engine) *Stream {
	return &Stream{eng: eng}
}

// FramesSeen returns how many STFT frames have been produced so far.
func (s *Stream) FramesSeen() int { return s.frameOffset + len(s.columns) }

// Engine returns the engine this stream wraps. The engine stays bound to
// the stream for its whole pooled lifetime; callers must not use it
// concurrently with Feed/Flush.
func (s *Stream) Engine() *Engine { return s.eng }

// Timings returns the accumulated per-stage processing time since the
// stream was created or last Reset. The streaming chain re-runs
// enhancement over its window each feed, so these measure real serving
// cost rather than the batch pipeline's one-pass cost.
func (s *Stream) Timings() StageTimings { return s.timings }

// Reset clears all per-recording state — buffered samples, spectrogram
// window, the static-background template, and emission bookkeeping — so
// the stream (and its engine's FFT machinery) can be reused for a new
// recording without reallocation. Tuning fields (MaxWindow,
// AdaptiveStatic, MaxChunk) are preserved. A reset stream behaves
// identically to a freshly constructed one.
func (s *Stream) Reset() {
	s.samples = s.samples[:0]
	s.columns = s.columns[:0]
	s.frameOffset = 0
	s.static = nil
	s.staticAccum = nil
	s.emittedEnd = 0
	s.timings = StageTimings{}
}

// maxChunk resolves the residue cap.
func (s *Stream) maxChunk() int {
	if s.MaxChunk > 0 {
		return s.MaxChunk
	}
	return DefaultMaxChunk
}

// Feed appends raw samples (at the configured sample rate) and returns
// any strokes that completed. Detections are emitted exactly once, in
// order, with Segment frame indices absolute from the stream start.
//
// A call that would buffer more than MaxChunk samples fails with an
// error wrapping ErrOversizedChunk before any state changes; the caller
// can split the chunk and retry.
//
// Feed is Accumulate followed by the in-stream hop loop (one
// FrameColumn per completed hop) and a Detect pass; batched callers
// drive those steps separately via PendingFrames/AcceptColumns.
//
// ew:hotpath — the streaming STFT column loop runs once per hop on the
// serving path; the hotalloc analyzer keeps allocations out of it.
func (s *Stream) Feed(chunk []float64) ([]Detection, error) {
	if err := s.Accumulate(chunk); err != nil {
		return nil, err
	}
	cfg := s.eng.cfg.STFT
	t0 := time.Now()
	var err error
	for len(s.samples) >= cfg.FFTSize {
		if s.testFrameHook != nil {
			if err = s.testFrameHook(); err != nil {
				break
			}
		}
		var col []float64
		if col, err = s.eng.stft.FrameColumn(s.samples[:cfg.FFTSize]); err != nil {
			err = fmt.Errorf("pipeline: stream frame: %w", err)
			break
		}
		s.samples = s.samples[cfg.HopSize:]
		if err = s.pushColumn(col); err != nil {
			break
		}
	}
	// Accrue the hop loop's cost on every exit: an error mid-extraction
	// has already spent the time, and the serving layer folds these
	// deltas into its stage accounting whether or not the feed failed.
	s.timings.STFT += time.Since(t0)
	if err != nil {
		return nil, err
	}
	return s.process(false)
}

// Accumulate appends raw samples to the stream's residue without
// extracting any frames — the first half of Feed. A call that would
// buffer more than MaxChunk samples fails with an error wrapping
// ErrOversizedChunk before any state changes.
func (s *Stream) Accumulate(chunk []float64) error {
	if total := len(s.samples) + len(chunk); total > s.maxChunk() {
		return fmt.Errorf("%w: %d buffered samples (cap %d)",
			ErrOversizedChunk, total, s.maxChunk())
	}
	s.samples = append(s.samples, chunk...)
	return nil
}

// PendingFrames reports how many complete FFT frames the buffered
// residue holds — the number of FrameColumn calls the next Feed's hop
// loop would make, and the number of frames an external batcher may
// read with PendingFrame before committing columns via AcceptColumns.
func (s *Stream) PendingFrames() int {
	cfg := s.eng.cfg.STFT
	if len(s.samples) < cfg.FFTSize {
		return 0
	}
	return (len(s.samples)-cfg.FFTSize)/cfg.HopSize + 1
}

// PendingFrame returns the i-th pending frame (0 <= i < PendingFrames)
// as a view into the residue buffer. The view is valid only until the
// next call that mutates the stream (Accumulate, AcceptColumns, Feed,
// Flush, Reset); batched callers copy it out before releasing the
// stream.
func (s *Stream) PendingFrame(i int) []float64 {
	cfg := s.eng.cfg.STFT
	off := i * cfg.HopSize
	return s.samples[off : off+cfg.FFTSize]
}

// AcceptColumns commits externally computed magnitude columns for the
// first len(cols) pending frames, consuming one hop of residue per
// column — the exact state transition the in-stream hop loop performs,
// so a stream driven by an external batcher is indistinguishable from
// one running Feed. The stream takes ownership of each column slice
// (they join the spectrogram window); callers must hand over freshly
// allocated columns, not reused scratch. Columns beyond PendingFrames,
// or of the wrong width, are rejected with the stream unchanged.
func (s *Stream) AcceptColumns(cols [][]float64) error {
	if len(cols) == 0 {
		return nil
	}
	if pending := s.PendingFrames(); len(cols) > pending {
		return fmt.Errorf("pipeline: %d columns offered for %d pending frames", len(cols), pending)
	}
	bins := s.eng.stft.Bins()
	for i, col := range cols {
		if len(col) != bins {
			return fmt.Errorf("pipeline: column %d has %d bins, want %d", i, len(col), bins)
		}
	}
	hop := s.eng.cfg.STFT.HopSize
	for _, col := range cols {
		s.samples = s.samples[hop:]
		if err := s.pushColumn(col); err != nil {
			return err
		}
	}
	return nil
}

// AccrueSTFT folds externally measured column-computation time into the
// stream's STFT stage timing, keeping Timings meaningful when an
// external batcher computes the columns: each session is attributed its
// share of the shared batch pass.
func (s *Stream) AccrueSTFT(d time.Duration) { s.timings.STFT += d }

// Detect runs the enhancement chain over the current window and returns
// newly finalized detections — the tail half of Feed, for callers that
// committed columns via AcceptColumns.
func (s *Stream) Detect() ([]Detection, error) { return s.process(false) }

// Flush processes whatever remains (zero-padding the final partial frame)
// and emits any still-open detections. The stream remains usable.
func (s *Stream) Flush() ([]Detection, error) {
	cfg := s.eng.cfg.STFT
	if len(s.samples) > cfg.HopSize {
		frame := make([]float64, cfg.FFTSize)
		copy(frame, s.samples)
		col, err := s.eng.stft.FrameColumn(frame)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stream flush: %w", err)
		}
		s.samples = s.samples[:0]
		if err := s.pushColumn(col); err != nil {
			return nil, err
		}
	}
	return s.process(true)
}

func (s *Stream) pushColumn(col []float64) error {
	// Accumulate the static template from the first frames.
	if s.static == nil {
		s.staticAccum = append(s.staticAccum, col)
		if len(s.staticAccum) == s.eng.cfg.StaticFrames {
			s.static = make([]float64, len(col))
			for _, c := range s.staticAccum {
				for b, v := range c {
					s.static[b] += v
				}
			}
			for b := range s.static {
				s.static[b] /= float64(len(s.staticAccum))
			}
			s.staticAccum = nil
		}
	}
	s.columns = append(s.columns, col)
	maxW := s.MaxWindow
	if maxW == 0 {
		maxW = 1024
	}
	// Compact the window, but never drop frames that might belong to a
	// stroke not yet emitted.
	if len(s.columns) > maxW {
		drop := len(s.columns) - maxW
		if limit := s.emittedEnd - s.frameOffset; drop > limit {
			drop = limit
		}
		if drop > 0 {
			s.columns = s.columns[drop:]
			s.frameOffset += drop
		}
	}
	return nil
}

// emitSafety is how many frames behind the stream head a segment must end
// before it is considered final (the quiet run plus smear).
const emitSafety = 14

// process runs the enhancement chain over the current window and emits
// newly finalized detections. When final is true, open segments are
// emitted regardless of the safety margin.
func (s *Stream) process(final bool) ([]Detection, error) {
	if s.static == nil || len(s.columns) < s.eng.cfg.StaticFrames+4 {
		return nil, nil
	}
	// Enhancement over the window with the stream's static template.
	t0 := time.Now()
	bin, bursts, err := s.eng.enhanceColumns(s.columns, s.static)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stream enhance: %w", err)
	}
	s.timings.Enhancement += time.Since(t0)
	t0 = time.Now()
	profile, err := mvce.Extract(bin, s.eng.cfg.mvceConfig())
	if err != nil {
		return nil, fmt.Errorf("pipeline: stream contour: %w", err)
	}
	s.timings.Profile += time.Since(t0)
	t0 = time.Now()
	segs, err := segment.Detect(profile, s.eng.cfg.Segment)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stream segment: %w", err)
	}
	s.timings.Segmentation += time.Since(t0)
	if s.AdaptiveStatic {
		s.adaptStatic(bin)
	}
	var out []Detection
	head := len(profile)
	for _, sg := range segs {
		absStart := sg.Start + s.frameOffset
		absEnd := sg.End + s.frameOffset
		if absStart < s.emittedEnd {
			continue // already emitted
		}
		if !final && sg.End > head-emitSafety {
			break // may still be growing
		}
		slice, err := segment.Slice(profile, sg)
		if err != nil {
			return nil, err
		}
		t0 = time.Now()
		det, err := s.eng.ClassifyProfile(slice)
		s.timings.DTW += time.Since(t0)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stream classify: %w", err)
		}
		det.Segment = segment.Segment{Start: absStart, End: absEnd}
		det.Contaminated = overlapsBurst(sg, bursts)
		// ew:allow hotprop: one append per classified stroke per flush —
		// detections are user-scale events, not per-column work.
		out = append(out, det)
		s.emittedEnd = absEnd + 1
	}
	return out, nil
}

// staticAdaptRate is the per-quiet-frame EMA coefficient for adaptive
// template refresh; ~60 quiet frames (1.4 s) absorb a static change.
const staticAdaptRate = 0.03

// adaptStatic folds the most recent quiet (no-foreground) frames of the
// window into the subtraction template with a slow exponential moving
// average. Only trailing quiet frames are used so a stroke in progress
// never leaks into the template.
func (s *Stream) adaptStatic(bin [][]uint8) {
	for i := len(bin) - 1; i >= 0 && i >= len(bin)-4; i-- {
		active := 0
		for _, v := range bin[i] {
			if v == 1 {
				active++
			}
		}
		if active > 0 {
			return
		}
		raw := s.columns[i]
		for b := range s.static {
			s.static[b] = (1-staticAdaptRate)*s.static[b] + staticAdaptRate*raw[b]
		}
	}
}
