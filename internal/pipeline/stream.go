package pipeline

import (
	"fmt"

	"repro/internal/mvce"
	"repro/internal/segment"
)

// Stream is the incremental recognizer matching the paper's prototype
// (§IV-A): audio arrives in arbitrary chunks, STFT frames are produced as
// soon as a hop completes, and detections are emitted as strokes finish —
// without waiting for the recording to end.
//
// The static-background template for spectral subtraction is estimated
// once from the first StaticFrames frames of the stream (the paper's
// "initial 5 frames"), so streams must begin with a short rest, exactly
// as the batch pipeline requires.
//
// A Stream keeps a bounded window of spectrogram columns (MaxWindow
// frames); enhancement and contour extraction re-run over the window on
// each feed, which mirrors the prototype's process-on-buffer-full loop.
type Stream struct {
	eng *Engine
	// MaxWindow bounds the retained spectrogram columns; 0 means 1024
	// frames (≈24 s at the paper's hop).
	MaxWindow int
	// AdaptiveStatic slowly refreshes the spectral-subtraction template
	// during quiet frames, so a hand that comes to rest in a new spot
	// (changing the static echo field) stops biasing later profiles. The
	// paper's prototype re-estimates per stroke; this is the streaming
	// equivalent. Off by default (the paper's fixed initial template).
	AdaptiveStatic bool

	samples     []float64   // residue not yet consumed into frames
	columns     [][]float64 // raw magnitude columns in the window
	frameOffset int         // absolute index of columns[0]
	static      []float64   // spectral-subtraction template
	staticAccum [][]float64 // first frames accumulated for the template
	emittedEnd  int         // absolute frame index before which detections were emitted
}

// NewStream wraps an engine for incremental use. The engine must not be
// used concurrently by other callers while the stream is active.
func NewStream(eng *Engine) *Stream {
	return &Stream{eng: eng}
}

// FramesSeen returns how many STFT frames have been produced so far.
func (s *Stream) FramesSeen() int { return s.frameOffset + len(s.columns) }

// Feed appends raw samples (at the configured sample rate) and returns
// any strokes that completed. Detections are emitted exactly once, in
// order, with Segment frame indices absolute from the stream start.
func (s *Stream) Feed(chunk []float64) ([]Detection, error) {
	s.samples = append(s.samples, chunk...)
	cfg := s.eng.cfg.STFT
	for len(s.samples) >= cfg.FFTSize {
		col, err := s.eng.stft.FrameColumn(s.samples[:cfg.FFTSize])
		if err != nil {
			return nil, fmt.Errorf("pipeline: stream frame: %w", err)
		}
		s.samples = s.samples[cfg.HopSize:]
		if err := s.pushColumn(col); err != nil {
			return nil, err
		}
	}
	return s.process(false)
}

// Flush processes whatever remains (zero-padding the final partial frame)
// and emits any still-open detections. The stream remains usable.
func (s *Stream) Flush() ([]Detection, error) {
	cfg := s.eng.cfg.STFT
	if len(s.samples) > cfg.HopSize {
		frame := make([]float64, cfg.FFTSize)
		copy(frame, s.samples)
		col, err := s.eng.stft.FrameColumn(frame)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stream flush: %w", err)
		}
		s.samples = s.samples[:0]
		if err := s.pushColumn(col); err != nil {
			return nil, err
		}
	}
	return s.process(true)
}

func (s *Stream) pushColumn(col []float64) error {
	// Accumulate the static template from the first frames.
	if s.static == nil {
		s.staticAccum = append(s.staticAccum, col)
		if len(s.staticAccum) == s.eng.cfg.StaticFrames {
			s.static = make([]float64, len(col))
			for _, c := range s.staticAccum {
				for b, v := range c {
					s.static[b] += v
				}
			}
			for b := range s.static {
				s.static[b] /= float64(len(s.staticAccum))
			}
			s.staticAccum = nil
		}
	}
	s.columns = append(s.columns, col)
	maxW := s.MaxWindow
	if maxW == 0 {
		maxW = 1024
	}
	// Compact the window, but never drop frames that might belong to a
	// stroke not yet emitted.
	if len(s.columns) > maxW {
		drop := len(s.columns) - maxW
		if limit := s.emittedEnd - s.frameOffset; drop > limit {
			drop = limit
		}
		if drop > 0 {
			s.columns = s.columns[drop:]
			s.frameOffset += drop
		}
	}
	return nil
}

// emitSafety is how many frames behind the stream head a segment must end
// before it is considered final (the quiet run plus smear).
const emitSafety = 14

// process runs the enhancement chain over the current window and emits
// newly finalized detections. When final is true, open segments are
// emitted regardless of the safety margin.
func (s *Stream) process(final bool) ([]Detection, error) {
	if s.static == nil || len(s.columns) < s.eng.cfg.StaticFrames+4 {
		return nil, nil
	}
	// Enhancement over the window with the stream's static template.
	bin, bursts, err := s.eng.enhanceColumns(s.columns, s.static)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stream enhance: %w", err)
	}
	profile, err := mvce.Extract(bin, s.eng.cfg.mvceConfig())
	if err != nil {
		return nil, fmt.Errorf("pipeline: stream contour: %w", err)
	}
	segs, err := segment.Detect(profile, s.eng.cfg.Segment)
	if err != nil {
		return nil, fmt.Errorf("pipeline: stream segment: %w", err)
	}
	if s.AdaptiveStatic {
		s.adaptStatic(bin)
	}
	var out []Detection
	head := len(profile)
	for _, sg := range segs {
		absStart := sg.Start + s.frameOffset
		absEnd := sg.End + s.frameOffset
		if absStart < s.emittedEnd {
			continue // already emitted
		}
		if !final && sg.End > head-emitSafety {
			break // may still be growing
		}
		slice, err := segment.Slice(profile, sg)
		if err != nil {
			return nil, err
		}
		det, err := s.eng.ClassifyProfile(slice)
		if err != nil {
			return nil, fmt.Errorf("pipeline: stream classify: %w", err)
		}
		det.Segment = segment.Segment{Start: absStart, End: absEnd}
		det.Contaminated = overlapsBurst(sg, bursts)
		out = append(out, det)
		s.emittedEnd = absEnd + 1
	}
	return out, nil
}

// staticAdaptRate is the per-quiet-frame EMA coefficient for adaptive
// template refresh; ~60 quiet frames (1.4 s) absorb a static change.
const staticAdaptRate = 0.03

// adaptStatic folds the most recent quiet (no-foreground) frames of the
// window into the subtraction template with a slow exponential moving
// average. Only trailing quiet frames are used so a stroke in progress
// never leaks into the template.
func (s *Stream) adaptStatic(bin [][]uint8) {
	for i := len(bin) - 1; i >= 0 && i >= len(bin)-4; i-- {
		active := 0
		for _, v := range bin[i] {
			if v == 1 {
				active++
			}
		}
		if active > 0 {
			return
		}
		raw := s.columns[i]
		for b := range s.static {
			s.static[b] = (1-staticAdaptRate)*s.static[b] + staticAdaptRate*raw[b]
		}
	}
}
