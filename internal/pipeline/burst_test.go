package pipeline

import (
	"testing"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/geom"
	"repro/internal/stroke"
)

func TestSuppressBurstsDisabled(t *testing.T) {
	m := [][]float64{{1, 1, 1}, {1, 1, 1}}
	if frames := suppressBursts(m, BurstConfig{}); len(frames) != 0 {
		t.Errorf("disabled suppression flagged %d frames", len(frames))
	}
	if m[0][0] != 1 {
		t.Error("disabled suppression modified data")
	}
}

func TestSuppressBurstsInterpolates(t *testing.T) {
	// Frames 0 and 4 are clean (one narrow blob); frames 1-3 are a burst
	// lighting the whole band.
	mk := func() [][]float64 {
		m := make([][]float64, 5)
		for f := range m {
			m[f] = make([]float64, 10)
		}
		m[0][3] = 10
		m[4][3] = 20
		for f := 1; f <= 3; f++ {
			for b := range m[f] {
				m[f][b] = 50
			}
		}
		return m
	}
	m := mk()
	frames := suppressBursts(m, DefaultBurstConfig())
	if len(frames) != 3 {
		t.Fatalf("flagged %d frames, want 3", len(frames))
	}
	// Interpolation between 10 (frame 0) and 20 (frame 4) at bin 3.
	if m[2][3] != 15 {
		t.Errorf("interpolated center = %g, want 15", m[2][3])
	}
	// Other bins interpolate between zeros.
	if m[2][7] != 0 {
		t.Errorf("off-blob bin = %g, want 0", m[2][7])
	}
}

func TestSuppressBurstsLeavesLongEventsAlone(t *testing.T) {
	// A wideband event longer than MaxFrames (16) must survive.
	m := make([][]float64, 20)
	for f := range m {
		m[f] = make([]float64, 10)
		for b := range m[f] {
			m[f][b] = 5
		}
	}
	cfg := DefaultBurstConfig()
	// Long events are still flagged (for contamination marking) but not
	// repaired.
	frames := suppressBursts(m, cfg)
	if len(frames) == 0 {
		t.Error("long event not flagged")
	}
	if m[6][4] != 5 {
		t.Error("long event content altered")
	}
}

func TestSuppressBurstsNarrowBlobsUntouched(t *testing.T) {
	// A stroke-like narrow blob never triggers suppression.
	m := make([][]float64, 8)
	for f := range m {
		m[f] = make([]float64, 20)
		for b := 4; b < 8; b++ {
			m[f][b] = 30
		}
	}
	if frames := suppressBursts(m, DefaultBurstConfig()); len(frames) != 0 {
		t.Errorf("narrow blob flagged (%d frames)", len(frames))
	}
}

// TestBurstSuppressionEndToEnd verifies §VII-B: with heavy knock-like
// bursts injected into the scene, suppression recovers accuracy the bare
// pipeline loses.
func TestBurstSuppressionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	// A harsh environment: frequent loud wideband bursts.
	env := acoustic.StandardEnvironment(acoustic.MeetingRoom)
	env.BurstRate = 4.0
	env.BurstAmp = 0.9

	strokeSignal := func(st stroke.Stroke, seed uint64) *audio.Signal {
		start, err := stroke.StartPoint(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		end, err := stroke.EndPoint(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := stroke.Shape(st, stroke.ShapeParams{})
		if err != nil {
			t.Fatal(err)
		}
		finger, err := geom.NewCompositeTrajectory(
			&geom.StaticTrajectory{Pos: start, Dur: 0.4},
			tr,
			&geom.StaticTrajectory{Pos: end, Dur: 0.45},
		)
		if err != nil {
			t.Fatal(err)
		}
		sc := &acoustic.Scene{
			Device:     acoustic.Mate9(),
			Env:        env,
			Reflectors: acoustic.HandReflectors(finger),
			Duration:   finger.Duration(),
			Seed:       seed,
		}
		sig, err := sc.Synthesize()
		if err != nil {
			t.Fatal(err)
		}
		return sig
	}

	// score counts silent misrecognitions (the harmful outcome): a trial
	// is safe when the single detection is correct, or when the system
	// flags the entry as burst-contaminated so the UI requests a rewrite
	// instead of accepting a wrong stroke.
	score := func(burst BurstConfig) (correct, flagged, silentWrong int) {
		cfg := DefaultConfig()
		cfg.Burst = burst
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, st := range stroke.AllStrokes() {
			for r := uint64(0); r < 3; r++ {
				out, err := eng.Recognize(strokeSignal(st, uint64(st)*10+r))
				if err != nil {
					t.Fatal(err)
				}
				switch {
				case len(out.Detections) == 1 && out.Detections[0].Stroke == st &&
					!out.Detections[0].Contaminated:
					correct++
				case anyContaminated(out.Detections):
					flagged++
				default:
					silentWrong++
				}
			}
		}
		return correct, flagged, silentWrong
	}

	bareOK, _, bareWrong := score(BurstConfig{})
	okS, flaggedS, wrongS := score(DefaultBurstConfig())
	t.Logf("bursty scene (18 trials): bare %d correct / %d silent-wrong; "+
		"suppressed+flagged %d correct / %d flagged-for-rewrite / %d silent-wrong",
		bareOK, bareWrong, okS, flaggedS, wrongS)
	// §VII-B's goal: stop silently accepting corrupted strokes.
	if wrongS > bareWrong {
		t.Errorf("suppression increased silent errors: %d vs %d", wrongS, bareWrong)
	}
	if wrongS > 5 {
		t.Errorf("silent-wrong rate %d/18 with suppression — flagging not effective", wrongS)
	}
}

func anyContaminated(dets []Detection) bool {
	for _, d := range dets {
		if d.Contaminated {
			return true
		}
	}
	return false
}
