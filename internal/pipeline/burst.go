package pipeline

// Burst suppression implements the paper's §VII-B proposal: bursting
// noises (knocks, object strikes, rubbing) span the whole frequency band
// — including the probe band — but last only a few frames. Exploiting
// exactly the "short duration" property the paper suggests, frames whose
// post-subtraction band occupancy is implausibly wide are treated as
// burst-contaminated and temporally interpolated from their clean
// neighbors before smoothing and binarization.

// BurstConfig parameterizes suppression. The zero value disables it.
type BurstConfig struct {
	// Enabled turns suppression on.
	Enabled bool
	// OccupancyThreshold is the fraction of band bins that must be
	// active (above the energy gate) for a frame to be burst-suspect;
	// finger blobs occupy a narrow band, bursts light up most of it.
	// Zero means 0.45.
	OccupancyThreshold float64
	// MaxFrames is the longest run of suspect frames still treated as a
	// burst (longer runs are assumed to be real wideband events the
	// pipeline should not silently erase). Zero means 16 (~370 ms: an
	// 8192-sample STFT window smears a short knock across ~8 hops, so
	// a 100 ms transient contaminates 12+ frames).
	MaxFrames int
}

// DefaultBurstConfig returns the calibrated suppression settings.
func DefaultBurstConfig() BurstConfig {
	return BurstConfig{Enabled: true, OccupancyThreshold: 0.40, MaxFrames: 16}
}

// suppressBursts zeroes-and-interpolates burst-contaminated frames of the
// thresholded magnitude matrix in place. It returns the indices of the
// suspect frames (repaired or not), which Recognize uses to flag
// detections whose segments were contaminated — the "discard signal
// segments containing bursting noises" half of §VII-B.
func suppressBursts(m [][]float64, cfg BurstConfig) []int {
	if !cfg.Enabled || len(m) == 0 {
		return nil
	}
	occTh := cfg.OccupancyThreshold
	if occTh == 0 {
		occTh = 0.45
	}
	maxRun := cfg.MaxFrames
	if maxRun == 0 {
		maxRun = 16
	}
	cols := len(m[0])
	suspect := make([]bool, len(m))
	for f, row := range m {
		active := 0
		for _, v := range row {
			if v > 0 {
				active++
			}
		}
		suspect[f] = float64(active) >= occTh*float64(cols)
	}
	var frames []int
	for f := 0; f < len(m); {
		if !suspect[f] {
			f++
			continue
		}
		run := f
		for run < len(m) && suspect[run] {
			run++
		}
		for k := f; k < run; k++ {
			// ew:allow hotprop: grows only while a burst is present — nil in
			// the common clean-window case, bounded by the window length
			// otherwise; preallocating would charge every flush for the
			// rare contaminated one.
			frames = append(frames, k)
		}
		if run-f <= maxRun {
			lo, hi := f-1, run // clean neighbors
			for k := f; k < run; k++ {
				for b := 0; b < cols; b++ {
					var left, right float64
					if lo >= 0 {
						left = m[lo][b]
					}
					if hi < len(m) {
						right = m[hi][b]
					}
					// Linear interpolation across the burst gap.
					span := float64(hi - lo)
					t := float64(k-lo) / span
					m[k][b] = left*(1-t) + right*t
				}
			}
		}
		f = run
	}
	return frames
}
