package pipeline

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"repro/internal/dsp"
	"repro/internal/stroke"
)

const goldenSpectrogramPath = "testdata/golden_spectrogram_band.txt"

// goldenProbes pins individual matrix cells alongside the whole-stream
// hash so a drift report names a frame and bin instead of just "hash
// mismatch". Spread across the matrix via fixed strides.
const goldenProbeCount = 16

// TestGoldenSpectrogramBand is the spectrogram regression gate for the
// band engine: the six-stroke golden trace's retained band must
// reproduce the committed dump byte-for-byte. The golden file records
// the matrix shape, the SHA-256 of the little-endian float64 column
// stream, and probe cells for diagnosis. Regenerate deliberately with
//
//	EW_UPDATE_GOLDEN=1 go test -run TestGoldenSpectrogramBand ./internal/pipeline
//
// and commit the diff next to the change that caused it. The byte-exact
// comparison is pinned on amd64 (other architectures contract fused
// multiply-adds and round differently); the recognition cross-check
// below runs everywhere.
func TestGoldenSpectrogramBand(t *testing.T) {
	golden := stroke.Sequence(stroke.AllStrokes())
	sig := synthesizeSequence(t, golden)

	cfg := DefaultConfig()
	st, err := dsp.NewSTFT(cfg.STFT)
	if err != nil {
		t.Fatal(err)
	}
	if st.EngineKind() == dsp.EngineFFT {
		t.Fatalf("default config resolved to the reference engine %v; the golden pins the band engine", st.EngineKind())
	}
	spec, err := st.Compute(sig.Samples)
	if err != nil {
		t.Fatal(err)
	}

	// Cross-check against the serve golden transcript's semantics: the
	// same trace recognized end to end must still spell the six-stroke
	// alphabet under the band engine.
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := eng.Recognize(sig)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Sequence.Equal(golden) {
		t.Errorf("band engine recognized %v, want the golden alphabet %v", rec.Sequence, golden)
	}

	if os.Getenv("EW_UPDATE_GOLDEN") != "" {
		writeGoldenSpectrogram(t, spec)
		return
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("byte-exact golden pinned on amd64; GOARCH=%s contracts floating point differently", runtime.GOARCH)
	}
	checkGoldenSpectrogram(t, spec)
}

// spectrogramDigest hashes the column stream as little-endian float64
// bytes — the byte-exact identity the golden pins.
func spectrogramDigest(spec *dsp.Spectrogram) string {
	h := sha256.New()
	var buf [8]byte
	for _, col := range spec.Data {
		for _, v := range col {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

func probeCells(spec *dsp.Spectrogram) [][2]int {
	frames, bins := spec.Frames(), spec.Bins()
	cells := make([][2]int, 0, goldenProbeCount)
	for i := 0; i < goldenProbeCount; i++ {
		f := (i*frames + frames/2) / goldenProbeCount % frames
		b := (i*31 + i) % bins
		cells = append(cells, [2]int{f, b})
	}
	return cells
}

func writeGoldenSpectrogram(t *testing.T, spec *dsp.Spectrogram) {
	t.Helper()
	var sb strings.Builder
	fmt.Fprintf(&sb, "# Golden band spectrogram of the six-stroke alphabet trace.\n")
	fmt.Fprintf(&sb, "# sha256 covers the columns as little-endian float64 bytes; probes\n")
	fmt.Fprintf(&sb, "# record single cells (frame bin bits) to localize any drift.\n")
	fmt.Fprintf(&sb, "frames %d\n", spec.Frames())
	fmt.Fprintf(&sb, "bins %d\n", spec.Bins())
	fmt.Fprintf(&sb, "binlow %d\n", spec.BinLow)
	fmt.Fprintf(&sb, "sha256 %s\n", spectrogramDigest(spec))
	for _, c := range probeCells(spec) {
		fmt.Fprintf(&sb, "probe %d %d %#016x\n", c[0], c[1], math.Float64bits(spec.Data[c[0]][c[1]]))
	}
	if err := os.MkdirAll(filepath.Dir(goldenSpectrogramPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenSpectrogramPath, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d frames × %d bins)", goldenSpectrogramPath, spec.Frames(), spec.Bins())
}

func checkGoldenSpectrogram(t *testing.T, spec *dsp.Spectrogram) {
	t.Helper()
	f, err := os.Open(goldenSpectrogramPath)
	if err != nil {
		t.Fatalf("%v (regenerate with EW_UPDATE_GOLDEN=1)", err)
	}
	defer f.Close()
	want := map[string]string{}
	type probe struct {
		frame, bin int
		bits       uint64
	}
	var probes []probe
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "probe" {
			if len(fields) != 4 {
				t.Fatalf("malformed probe line %q", line)
			}
			fr, err1 := strconv.Atoi(fields[1])
			b, err2 := strconv.Atoi(fields[2])
			bits, err3 := strconv.ParseUint(strings.TrimPrefix(fields[3], "0x"), 16, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				t.Fatalf("malformed probe line %q", line)
			}
			probes = append(probes, probe{fr, b, bits})
			continue
		}
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	if g := strconv.Itoa(spec.Frames()); g != want["frames"] {
		t.Fatalf("frames = %s, golden %s", g, want["frames"])
	}
	if g := strconv.Itoa(spec.Bins()); g != want["bins"] {
		t.Fatalf("bins = %s, golden %s", g, want["bins"])
	}
	if g := strconv.Itoa(spec.BinLow); g != want["binlow"] {
		t.Fatalf("binlow = %s, golden %s", g, want["binlow"])
	}
	for _, p := range probes {
		if p.frame >= spec.Frames() || p.bin >= spec.Bins() {
			t.Fatalf("probe (%d,%d) outside %dx%d", p.frame, p.bin, spec.Frames(), spec.Bins())
		}
		if got := math.Float64bits(spec.Data[p.frame][p.bin]); got != p.bits {
			t.Errorf("frame %d bin %d = %#016x (%.17g), golden %#016x (%.17g)",
				p.frame, p.bin, got, spec.Data[p.frame][p.bin], p.bits, math.Float64frombits(p.bits))
		}
	}
	if got := spectrogramDigest(spec); got != want["sha256"] {
		t.Errorf("spectrogram bytes drifted: sha256 %s, golden %s (every probe above matched: drift is in unprobed cells; regenerate only for a deliberate numeric change)", got, want["sha256"])
	}
}
