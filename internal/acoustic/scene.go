package acoustic

import (
	"fmt"
	"math"

	"repro/internal/audio"
	"repro/internal/geom"
)

// Reflector is one moving sound reflector in the scene: a trajectory plus
// a reflection strength. The echo it contributes is the probe tone delayed
// by the time-varying round-trip 2·|p(t)|/c and attenuated by inverse
// square of distance — the time-varying delay is what physically produces
// the Doppler shift the pipeline measures.
type Reflector struct {
	// Traj is the reflector's path; positions are relative to the device
	// at the origin.
	Traj geom.Trajectory
	// BaseGain is the echo amplitude when the reflector sits at
	// RefDistance.
	BaseGain float64
	// RefDistance is the distance (m) at which BaseGain applies. Zero
	// means the default 0.15 m.
	RefDistance float64
	// Start delays the trajectory's local time origin within the scene
	// (seconds). Before Start and after Start+Traj.Duration() the
	// reflector holds its endpoint positions (a hand at rest still
	// reflects).
	Start float64
}

func (r Reflector) positionAt(t float64) geom.Vec3 {
	return r.Traj.At(t - r.Start)
}

// Scene is a complete acoustic situation to synthesize: a device, an
// environment, and moving reflectors (the writing finger, the hand/arm
// behind it, bystanders).
type Scene struct {
	// Device is the acoustic front-end.
	Device DeviceProfile
	// Env is the ambient environment.
	Env Environment
	// Reflectors are the moving bodies.
	Reflectors []Reflector
	// Duration is the scene length in seconds.
	Duration float64
	// Seed drives all stochastic components (noise, bursts) so scenes are
	// reproducible.
	Seed uint64
	// SoundSpeed in m/s; zero means 340 (the paper's value).
	SoundSpeed float64
}

// Synthesize renders the microphone stream the device would record.
func (sc *Scene) Synthesize() (*audio.Signal, error) {
	if sc.Duration <= 0 {
		return nil, fmt.Errorf("acoustic: scene duration must be positive, got %g", sc.Duration)
	}
	if sc.Device.SampleRate <= 0 {
		return nil, fmt.Errorf("acoustic: device sample rate must be positive, got %g", sc.Device.SampleRate)
	}
	c := sc.SoundSpeed
	if c == 0 {
		c = 340
	}
	rate := sc.Device.SampleRate
	n := int(rate*sc.Duration + 0.5)
	out := &audio.Signal{Samples: make([]float64, n), Rate: rate}

	omega := 2 * math.Pi * sc.Device.CarrierHz
	amp := sc.Device.TxAmplitude

	// Assemble all echo paths: static reflectors from the environment
	// (plus the diffuse reverberation tail) and the walker plus the
	// scene's moving reflectors.
	staticPaths := append([]StaticPath(nil), sc.Env.StaticReflectors...)
	staticPaths = append(staticPaths, sc.Env.Reverb.paths(sc.Seed, c)...)
	reflectors := append([]Reflector(nil), sc.Reflectors...)
	if w := sc.Env.Walker; w != nil {
		reflectors = append(reflectors, walkerReflector(*w, sc.Duration))
	}
	if sw := sc.Env.SecondWriter; sw != nil {
		reflectors = append(reflectors, secondWriterReflector(*sw, sc.Duration))
	}

	for i := 0; i < n; i++ {
		t := float64(i) / rate
		// Direct speaker→mic leakage (fixed minimal delay, modeled as a
		// 1 cm path).
		v := sc.Device.DirectPathGain * amp * math.Sin(omega*(t-0.01/c))
		// Static environment multipath (discrete paths + reverb tail).
		for _, p := range staticPaths {
			v += p.Gain * amp * math.Sin(omega*(t-2*p.Distance/c))
		}
		// Moving reflectors with time-varying delay.
		for _, r := range reflectors {
			d := r.positionAt(t).Norm()
			if d < 0.02 {
				d = 0.02
			}
			ref := r.RefDistance
			if ref == 0 {
				ref = 0.15
			}
			g := sc.Device.ReflectionGain * r.BaseGain * (ref / d) * (ref / d)
			v += g * amp * math.Sin(omega*(t-2*d/c))
		}
		out.Samples[i] = v
	}

	if err := sc.addNoise(out); err != nil {
		return nil, err
	}
	quantize(out, sc.Device.ADCBits)
	return out, nil
}

// addNoise mixes in ambient, babble, typing, environmental bursts, mic
// self-noise and hardware bursts.
func (sc *Scene) addNoise(out *audio.Signal) error {
	ns := audio.NewNoiseSource(sc.Seed)
	rate := out.Rate
	dur := sc.Duration

	mix := func(s *audio.Signal, err error) error {
		if err != nil {
			return err
		}
		return out.AddInPlace(s, 1)
	}

	if sc.Device.NoiseFloorRMS > 0 {
		if err := mix(ns.White(rate, sc.Device.NoiseFloorRMS, dur)); err != nil {
			return fmt.Errorf("acoustic: mic noise: %w", err)
		}
	}
	if sc.Env.AmbientRMS > 0 {
		if err := mix(ns.Pink(rate, sc.Env.AmbientRMS, dur)); err != nil {
			return fmt.Errorf("acoustic: ambient noise: %w", err)
		}
	}
	if sc.Env.BabbleRMS > 0 {
		if err := mix(ns.Babble(rate, sc.Env.BabbleRMS, dur)); err != nil {
			return fmt.Errorf("acoustic: babble noise: %w", err)
		}
	}
	if sc.Env.KeyboardClicksPerSecond > 0 {
		if err := mix(ns.KeyboardClicks(rate, dur, sc.Env.KeyboardClicksPerSecond, sc.Env.KeyboardClickAmp)); err != nil {
			return fmt.Errorf("acoustic: keyboard noise: %w", err)
		}
	}
	if sc.Env.BurstRate > 0 {
		count := int(sc.Env.BurstRate*dur + 0.5)
		if count > 0 {
			if err := mix(ns.RandomBursts(rate, dur, count, sc.Env.BurstAmp/2, sc.Env.BurstAmp, 0.02, 0.12)); err != nil {
				return fmt.Errorf("acoustic: environment bursts: %w", err)
			}
		}
	}
	if sc.Device.HardwareBurstRate > 0 {
		count := int(sc.Device.HardwareBurstRate*dur + 0.5)
		if count > 0 {
			if err := mix(ns.RandomBursts(rate, dur, count, sc.Device.HardwareBurstAmp/2, sc.Device.HardwareBurstAmp, 0.002, 0.01)); err != nil {
				return fmt.Errorf("acoustic: hardware bursts: %w", err)
			}
		}
	}
	return nil
}

// walkerReflector models a bystander pacing past the device: a large slow
// reflector oscillating along a line parallel to the device at the given
// closest distance. Its Doppler signature is a slowly varying shift with
// low acceleration — the interference class the paper's segmentation gate
// rejects.
func walkerReflector(w WalkerSpec, duration float64) Reflector {
	span := 1.2 // pacing half-length in meters
	period := 4 * span / w.Speed
	return Reflector{
		Traj:     &pacingTrajectory{distance: w.Distance, span: span, period: period, dur: duration},
		BaseGain: w.Gain,
		// A torso is calibrated at a larger reference distance: its gain
		// is specified at the walking distance itself.
		RefDistance: w.Distance,
	}
}

// pacingTrajectory oscillates sinusoidally along x at constant y.
type pacingTrajectory struct {
	distance float64
	span     float64
	period   float64
	dur      float64
}

// At implements geom.Trajectory.
func (p *pacingTrajectory) At(t float64) geom.Vec3 {
	x := p.span * math.Sin(2*math.Pi*t/p.period)
	return geom.Vec3{X: x, Y: p.distance, Z: 0}
}

// Duration implements geom.Trajectory.
func (p *pacingTrajectory) Duration() float64 { return p.dur }

var _ geom.Trajectory = (*pacingTrajectory)(nil)

// secondWriterReflector models a nearby second writer: a finger-scale
// reflector tracing a Lissajous scribble at stroke-like rates. Its radial
// speed reaches writing speeds (~2π·StrokeHz·Span ≈ 0.25 m/s at the
// defaults), so unlike the walker its Doppler shifts land inside the
// segmentation band — the confounder the scenario matrix stresses.
func secondWriterReflector(w SecondWriterSpec, duration float64) Reflector {
	return Reflector{
		Traj: &scribbleTrajectory{
			distance: w.Distance,
			span:     w.Span,
			rate:     w.StrokeHz,
			dur:      duration,
		},
		BaseGain:    w.Gain,
		RefDistance: w.Distance,
	}
}

// scribbleTrajectory loops a 2:3 Lissajous figure in the x/z plane
// around a standoff y that breathes by the full span at the stroke rate,
// so the range — and therefore the echo delay — swings like a real
// stroke's (peak radial speed ≈ 2π·rate·span ≈ 0.26 m/s at defaults).
type scribbleTrajectory struct {
	distance float64
	span     float64
	rate     float64
	dur      float64
}

// At implements geom.Trajectory.
func (s *scribbleTrajectory) At(t float64) geom.Vec3 {
	w := 2 * math.Pi * s.rate
	return geom.Vec3{
		X: s.span * math.Sin(2*w*t),
		Y: s.distance + s.span*math.Sin(w*t),
		Z: s.span * math.Sin(3*w*t+math.Pi/4),
	}
}

// Duration implements geom.Trajectory.
func (s *scribbleTrajectory) Duration() float64 { return s.dur }

var _ geom.Trajectory = (*scribbleTrajectory)(nil)

// quantize rounds samples to the device's ADC resolution.
func quantize(s *audio.Signal, bits int) {
	if bits <= 0 || bits >= 32 {
		return
	}
	scale := float64(int64(1) << (bits - 1))
	for i, v := range s.Samples {
		q := math.Round(v*scale) / scale
		if q > 1 {
			q = 1
		} else if q < -1 {
			q = -1
		}
		s.Samples[i] = q
	}
}
