package acoustic

import "repro/internal/geom"

// ArmTrajectory derives the hand/arm secondary reflector from a finger
// trajectory: the arm follows the finger at a fraction of its displacement
// about a shoulder-side pivot, so it moves slower and produces the
// lower-shift multipath band the paper's Fig. 10 marks with a green square.
type ArmTrajectory struct {
	// Finger is the primary trajectory.
	Finger geom.Trajectory
	// Pivot approximates the elbow/shoulder position.
	Pivot geom.Vec3
	// Ratio is the displacement fraction (0.4–0.6 is realistic).
	Ratio float64
}

// At implements geom.Trajectory.
func (a *ArmTrajectory) At(t float64) geom.Vec3 {
	f := a.Finger.At(t)
	return a.Pivot.Add(f.Sub(a.Pivot).Scale(a.Ratio))
}

// Duration implements geom.Trajectory.
func (a *ArmTrajectory) Duration() float64 { return a.Finger.Duration() }

var _ geom.Trajectory = (*ArmTrajectory)(nil)

// DefaultArmPivot is the nominal elbow position for a right-handed user
// writing in front of the device.
var DefaultArmPivot = geom.Vec3{X: 0.28, Y: 0.38, Z: -0.12}

// HandReflectors builds the standard reflector pair for a writing hand: a
// finger (primary) and the hand/arm mass behind it (secondary, slower,
// stronger). The finger trajectory should span the whole scene (rests
// included).
func HandReflectors(finger geom.Trajectory) []Reflector {
	return []Reflector{
		{Traj: finger, BaseGain: 0.050},
		{
			Traj:     &ArmTrajectory{Finger: finger, Pivot: DefaultArmPivot, Ratio: 0.45},
			BaseGain: 0.040,
			// The arm's bulk is calibrated at its typical hover distance.
			RefDistance: 0.28,
		},
	}
}
