package acoustic

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestDeviceProfiles(t *testing.T) {
	phone := Mate9()
	watch := Watch2()
	if phone.SampleRate != 44100 || watch.SampleRate != 44100 {
		t.Error("both devices record at 44.1 kHz in the paper")
	}
	if phone.CarrierHz != 20000 || watch.CarrierHz != 20000 {
		t.Error("both devices emit 20 kHz")
	}
	// The watch front-end is strictly weaker.
	if watch.ReflectionGain >= phone.ReflectionGain {
		t.Error("watch echoes should be weaker than phone's")
	}
	if watch.NoiseFloorRMS <= phone.NoiseFloorRMS {
		t.Error("watch mic should be noisier")
	}
}

func TestStandardEnvironments(t *testing.T) {
	meeting := StandardEnvironment(MeetingRoom)
	lab := StandardEnvironment(LabArea)
	resting := StandardEnvironment(RestingZone)
	if meeting.Kind != MeetingRoom || lab.Kind != LabArea || resting.Kind != RestingZone {
		t.Error("Kind not set")
	}
	if lab.KeyboardClicksPerSecond <= 0 {
		t.Error("lab should have typing noise")
	}
	if resting.Walker == nil {
		t.Fatal("resting zone should have a walker")
	}
	if resting.Walker.Distance < 0.3 || resting.Walker.Distance > 0.4 {
		t.Errorf("walker distance %g outside the paper's 30–40 cm", resting.Walker.Distance)
	}
	if resting.BurstRate <= lab.BurstRate {
		t.Error("resting zone should have the most bursting noise")
	}
	unknown := StandardEnvironment(EnvironmentKind(9))
	if unknown.AmbientRMS != 0 {
		t.Error("unknown environment should be silent")
	}
	for _, k := range []EnvironmentKind{MeetingRoom, LabArea, RestingZone, EnvironmentKind(9)} {
		if k.String() == "" {
			t.Error("empty String()")
		}
	}
}

func TestSceneValidation(t *testing.T) {
	sc := &Scene{Device: Mate9(), Duration: 0}
	if _, err := sc.Synthesize(); err == nil {
		t.Error("zero duration accepted")
	}
	dev := Mate9()
	dev.SampleRate = 0
	sc = &Scene{Device: dev, Duration: 1}
	if _, err := sc.Synthesize(); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestSynthesizeStaticSceneSpectrum(t *testing.T) {
	// A scene with no movement: energy should concentrate at the carrier.
	dev := Mate9()
	dev.NoiseFloorRMS = 0
	dev.HardwareBurstRate = 0
	sc := &Scene{
		Device:   dev,
		Env:      Environment{},
		Duration: 0.5,
		Seed:     1,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if got := int(sig.Rate); got != 44100 {
		t.Errorf("rate = %d", got)
	}
	if len(sig.Samples) != 22050 {
		t.Errorf("samples = %d", len(sig.Samples))
	}
	// Correlate against the carrier and an off-band tone.
	corr := func(f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / sig.Rate
		for i, v := range sig.Samples {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	if carrier, off := corr(20000), corr(15000); carrier < 100*off {
		t.Errorf("carrier %g not dominant over off-band %g", carrier, off)
	}
}

func TestSynthesizeDeterministicPerSeed(t *testing.T) {
	mk := func(seed uint64) []float64 {
		sc := &Scene{
			Device:   Mate9(),
			Env:      StandardEnvironment(LabArea),
			Duration: 0.2,
			Seed:     seed,
		}
		sig, err := sc.Synthesize()
		if err != nil {
			t.Fatal(err)
		}
		return sig.Samples
	}
	a, b, c := mk(5), mk(5), mk(6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed differs")
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds identical")
	}
}

func TestMovingReflectorCreatesDopplerSidebands(t *testing.T) {
	// A reflector approaching at ~0.7 m/s should add energy ≈82 Hz above
	// the carrier (2·f0·v/c) that a static scene lacks.
	dev := Mate9()
	dev.NoiseFloorRMS = 0
	dev.HardwareBurstRate = 0
	traj, err := geom.NewPolyTrajectory([]geom.Waypoint{
		{T: 0, Pos: geom.Vec3{Y: 0.30}},
		{T: 0.6, Pos: geom.Vec3{Y: 0.05}},
	})
	if err != nil {
		t.Fatal(err)
	}
	moving := &Scene{
		Device:     dev,
		Duration:   0.6,
		Seed:       1,
		Reflectors: []Reflector{{Traj: traj, BaseGain: 0.05}},
	}
	still := &Scene{Device: dev, Duration: 0.6, Seed: 1}
	sigM, err := moving.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	sigS, err := still.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	corr := func(s []float64, f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / 44100
		for i, v := range s {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	// Mid-stroke shift ≈ 2·20000·(1.875·0.25/0.6)/340 ≈ 92 Hz; probe a
	// band around it.
	side := 0.0
	for _, df := range []float64{60, 80, 100} {
		side += corr(sigM.Samples, 20000+df)
	}
	base := 0.0
	for _, df := range []float64{60, 80, 100} {
		base += corr(sigS.Samples, 20000+df)
	}
	if side < 3*base {
		t.Errorf("no Doppler sideband: moving %g vs static %g", side, base)
	}
}

func TestQuantizeClampsAndRounds(t *testing.T) {
	dev := Mate9()
	dev.TxAmplitude = 2.0 // force overload
	dev.DirectPathGain = 1.0
	sc := &Scene{Device: dev, Duration: 0.01, Seed: 1}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sig.Samples {
		if v > 1 || v < -1 {
			t.Fatalf("sample %d = %g outside [-1,1]", i, v)
		}
	}
}

func TestHandReflectors(t *testing.T) {
	traj := &geom.StaticTrajectory{Pos: geom.Vec3{Y: 0.15}, Dur: 1}
	refs := HandReflectors(traj)
	if len(refs) != 2 {
		t.Fatalf("got %d reflectors, want finger+arm", len(refs))
	}
	arm, ok := refs[1].Traj.(*ArmTrajectory)
	if !ok {
		t.Fatal("second reflector is not the arm")
	}
	if arm.Ratio <= 0 || arm.Ratio >= 1 {
		t.Errorf("arm ratio %g outside (0,1)", arm.Ratio)
	}
	// The arm moves less than the finger for the same finger displacement.
	f0 := geom.Vec3{Y: 0.15}
	f1 := geom.Vec3{Y: 0.25}
	armTr := &ArmTrajectory{Finger: traj, Pivot: DefaultArmPivot, Ratio: 0.45}
	a0 := armTr.At(0)
	armTr2 := &ArmTrajectory{
		Finger: &geom.StaticTrajectory{Pos: f1, Dur: 1},
		Pivot:  DefaultArmPivot, Ratio: 0.45,
	}
	a1 := armTr2.At(0)
	if a0.Dist(a1) >= f0.Dist(f1) {
		t.Error("arm displacement not scaled down")
	}
	if armTr.Duration() != 1 {
		t.Error("arm duration mismatch")
	}
}

func TestWalkerReflectorPaces(t *testing.T) {
	r := walkerReflector(WalkerSpec{Distance: 0.35, Speed: 0.8, Gain: 0.02}, 10)
	if r.Traj.Duration() != 10 {
		t.Errorf("walker duration = %g", r.Traj.Duration())
	}
	// The walker stays at the configured lateral distance.
	for _, tt := range []float64{0, 1, 3, 7} {
		p := r.Traj.At(tt)
		if p.Y != 0.35 {
			t.Errorf("walker Y = %g at t=%g", p.Y, tt)
		}
	}
	// And actually moves along X.
	if r.Traj.At(0).Dist(r.Traj.At(1.5)) < 0.1 {
		t.Error("walker barely moves")
	}
}

func TestReverbSpecPaths(t *testing.T) {
	var nilSpec *ReverbSpec
	if nilSpec.paths(1, 340) != nil {
		t.Error("nil spec produced paths")
	}
	spec := &ReverbSpec{RT60: 0.5, Density: 40, Gain: 0.02}
	paths := spec.paths(7, 340)
	if len(paths) != 40 {
		t.Fatalf("got %d paths, want 40", len(paths))
	}
	for _, p := range paths {
		if p.Gain <= 0 || p.Gain > 0.02+1e-12 {
			t.Errorf("path gain %g outside (0, 0.02]", p.Gain)
		}
		if p.Distance <= 0 || p.Distance > 0.52*340/2+1 {
			t.Errorf("path distance %g implausible", p.Distance)
		}
	}
	// Deterministic per seed, different across seeds.
	again := spec.paths(7, 340)
	if again[5] != paths[5] {
		t.Error("reverb paths not deterministic")
	}
	other := spec.paths(8, 340)
	if other[5] == paths[5] {
		t.Error("reverb paths identical across seeds")
	}
}

func TestReverbDoesNotBreakRecognitionSpectrum(t *testing.T) {
	// A reverberant static scene still concentrates energy at the
	// carrier; the tail only adds static components.
	dev := Mate9()
	dev.NoiseFloorRMS = 0
	dev.HardwareBurstRate = 0
	env := Environment{Reverb: &ReverbSpec{RT60: 0.6, Density: 60, Gain: 0.03}}
	sc := &Scene{Device: dev, Env: env, Duration: 0.4, Seed: 3}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	corr := func(f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / sig.Rate
		for i, v := range sig.Samples {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	if carrier, off := corr(20000), corr(12000); carrier < 50*off {
		t.Errorf("reverb destroyed carrier dominance: %g vs %g", carrier, off)
	}
}
