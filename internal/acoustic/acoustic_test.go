package acoustic

import (
	"math"
	"testing"

	"repro/internal/geom"
)

func TestDeviceRegistry(t *testing.T) {
	names := DeviceNames()
	if len(names) < 4 {
		t.Fatalf("expected ≥4 device profiles, got %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		dev, err := DeviceByName(n)
		if err != nil {
			t.Fatalf("DeviceByName(%q): %v", n, err)
		}
		if dev.SampleRate != 44100 || dev.CarrierHz != 20000 {
			t.Errorf("%s: every profile probes at 20 kHz / 44.1 kHz, got %g/%g", n, dev.CarrierHz, dev.SampleRate)
		}
		if seen[dev.Name] {
			t.Errorf("duplicate profile name %q", dev.Name)
		}
		seen[dev.Name] = true
	}
	if _, err := DeviceByName("gramophone"); err == nil {
		t.Error("DeviceByName accepted a bogus slug")
	}
	tablet, budget := TabletM5(), BudgetPhone()
	if tablet.ReflectionGain <= Mate9().ReflectionGain {
		t.Error("tablet speaker should out-reflect the phone")
	}
	if budget.NoiseFloorRMS <= Watch2().NoiseFloorRMS {
		t.Error("budget handset should be the noisiest front-end")
	}
	if budget.ADCBits >= 16 {
		t.Error("budget handset should have a coarse converter")
	}
}

func TestDeviceProfiles(t *testing.T) {
	phone := Mate9()
	watch := Watch2()
	if phone.SampleRate != 44100 || watch.SampleRate != 44100 {
		t.Error("both devices record at 44.1 kHz in the paper")
	}
	if phone.CarrierHz != 20000 || watch.CarrierHz != 20000 {
		t.Error("both devices emit 20 kHz")
	}
	// The watch front-end is strictly weaker.
	if watch.ReflectionGain >= phone.ReflectionGain {
		t.Error("watch echoes should be weaker than phone's")
	}
	if watch.NoiseFloorRMS <= phone.NoiseFloorRMS {
		t.Error("watch mic should be noisier")
	}
}

func TestStandardEnvironments(t *testing.T) {
	meeting := StandardEnvironment(MeetingRoom)
	lab := StandardEnvironment(LabArea)
	resting := StandardEnvironment(RestingZone)
	if meeting.Kind != MeetingRoom || lab.Kind != LabArea || resting.Kind != RestingZone {
		t.Error("Kind not set")
	}
	if lab.KeyboardClicksPerSecond <= 0 {
		t.Error("lab should have typing noise")
	}
	if resting.Walker == nil {
		t.Fatal("resting zone should have a walker")
	}
	if resting.Walker.Distance < 0.3 || resting.Walker.Distance > 0.4 {
		t.Errorf("walker distance %g outside the paper's 30–40 cm", resting.Walker.Distance)
	}
	if resting.BurstRate <= lab.BurstRate {
		t.Error("resting zone should have the most bursting noise")
	}
	cafe := StandardEnvironment(CafeBabble)
	if cafe.BabbleRMS <= lab.BabbleRMS {
		t.Error("café should out-babble the lab")
	}
	if cafe.Reverb == nil {
		t.Error("café should be reverberant")
	}
	cabin := StandardEnvironment(VehicleCabin)
	if cabin.AmbientRMS <= meeting.AmbientRMS {
		t.Error("vehicle cabin should out-rumble the meeting room")
	}
	if len(cabin.StaticReflectors) == 0 || cabin.StaticReflectors[0].Distance > 0.5 {
		t.Error("cabin should have close static reflections")
	}
	second := StandardEnvironment(SecondWriter)
	if second.SecondWriter == nil {
		t.Fatal("second-writer setting should carry a second writer")
	}
	if second.SecondWriter.Distance < 0.3 || second.SecondWriter.Distance > 1 {
		t.Errorf("second writer distance %g implausible", second.SecondWriter.Distance)
	}
}

// TestEnvironmentKindTable enumerates every kind in both directions:
// kind → String/Slug and name → kind, plus the loud-unknown contract.
func TestEnvironmentKindTable(t *testing.T) {
	cases := []struct {
		kind    EnvironmentKind
		display string
		slug    string
	}{
		{MeetingRoom, "meeting room", "meeting-room"},
		{LabArea, "lab area", "lab-area"},
		{RestingZone, "resting zone", "resting-zone"},
		{CafeBabble, "cafe babble", "cafe-babble"},
		{VehicleCabin, "vehicle cabin", "vehicle-cabin"},
		{SecondWriter, "second writer", "second-writer"},
	}
	if got, want := len(AllEnvironmentKinds()), len(cases); got != want {
		t.Fatalf("AllEnvironmentKinds has %d kinds, test table %d — keep both in sync", got, want)
	}
	for _, c := range cases {
		if got := c.kind.String(); got != c.display {
			t.Errorf("%d.String() = %q, want %q", c.kind, got, c.display)
		}
		if got := c.kind.Slug(); got != c.slug {
			t.Errorf("%d.Slug() = %q, want %q", c.kind, got, c.slug)
		}
		for _, name := range []string{c.slug, c.display} {
			k, err := ParseEnvironmentKind(name)
			if err != nil || k != c.kind {
				t.Errorf("ParseEnvironmentKind(%q) = %v, %v; want %v", name, k, err, c.kind)
			}
		}
		env, err := EnvironmentByKind(c.kind)
		if err != nil {
			t.Errorf("EnvironmentByKind(%v): %v", c.kind, err)
		}
		if env.Kind != c.kind {
			t.Errorf("EnvironmentByKind(%v).Kind = %v", c.kind, env.Kind)
		}
		// Every standard setting must actually make noise: a zero-value
		// environment aliasing a real one is exactly the bug the loud
		// unknown handling exists to prevent.
		if env.AmbientRMS <= 0 {
			t.Errorf("%v: zero ambient noise", c.kind)
		}
	}

	// Unknown kinds: visible String, error from the parser and from
	// EnvironmentByKind, panic from StandardEnvironment.
	bogus := EnvironmentKind(42)
	if got := bogus.String(); got != "EnvironmentKind(42)" {
		t.Errorf("bogus String() = %q", got)
	}
	if _, err := ParseEnvironmentKind("disco"); err == nil {
		t.Error("ParseEnvironmentKind accepted a bogus name")
	}
	if _, err := EnvironmentByKind(bogus); err == nil {
		t.Error("EnvironmentByKind accepted a bogus kind")
	}
	defer func() {
		if recover() == nil {
			t.Error("StandardEnvironment did not panic on an unknown kind")
		}
	}()
	StandardEnvironment(bogus)
}

func TestSceneValidation(t *testing.T) {
	sc := &Scene{Device: Mate9(), Duration: 0}
	if _, err := sc.Synthesize(); err == nil {
		t.Error("zero duration accepted")
	}
	dev := Mate9()
	dev.SampleRate = 0
	sc = &Scene{Device: dev, Duration: 1}
	if _, err := sc.Synthesize(); err == nil {
		t.Error("zero sample rate accepted")
	}
}

func TestSynthesizeStaticSceneSpectrum(t *testing.T) {
	// A scene with no movement: energy should concentrate at the carrier.
	dev := Mate9()
	dev.NoiseFloorRMS = 0
	dev.HardwareBurstRate = 0
	sc := &Scene{
		Device:   dev,
		Env:      Environment{},
		Duration: 0.5,
		Seed:     1,
	}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if got := int(sig.Rate); got != 44100 {
		t.Errorf("rate = %d", got)
	}
	if len(sig.Samples) != 22050 {
		t.Errorf("samples = %d", len(sig.Samples))
	}
	// Correlate against the carrier and an off-band tone.
	corr := func(f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / sig.Rate
		for i, v := range sig.Samples {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	if carrier, off := corr(20000), corr(15000); carrier < 100*off {
		t.Errorf("carrier %g not dominant over off-band %g", carrier, off)
	}
}

// TestSynthesizeDeterministicPerSeed pins the record/replay cache's core
// assumption: for every environment kind — including the scenario-matrix
// additions — identical seeds give bit-identical samples and distinct
// seeds differ.
func TestSynthesizeDeterministicPerSeed(t *testing.T) {
	for _, kind := range AllEnvironmentKinds() {
		t.Run(kind.Slug(), func(t *testing.T) {
			mk := func(seed uint64) []float64 {
				sc := &Scene{
					Device:   Mate9(),
					Env:      StandardEnvironment(kind),
					Duration: 0.2,
					Seed:     seed,
				}
				sig, err := sc.Synthesize()
				if err != nil {
					t.Fatal(err)
				}
				return sig.Samples
			}
			a, b, c := mk(5), mk(5), mk(6)
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
					t.Fatalf("same seed differs at sample %d", i)
				}
			}
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
					break
				}
			}
			if same {
				t.Error("different seeds identical")
			}
		})
	}
}

func TestMovingReflectorCreatesDopplerSidebands(t *testing.T) {
	// A reflector approaching at ~0.7 m/s should add energy ≈82 Hz above
	// the carrier (2·f0·v/c) that a static scene lacks.
	dev := Mate9()
	dev.NoiseFloorRMS = 0
	dev.HardwareBurstRate = 0
	traj, err := geom.NewPolyTrajectory([]geom.Waypoint{
		{T: 0, Pos: geom.Vec3{Y: 0.30}},
		{T: 0.6, Pos: geom.Vec3{Y: 0.05}},
	})
	if err != nil {
		t.Fatal(err)
	}
	moving := &Scene{
		Device:     dev,
		Duration:   0.6,
		Seed:       1,
		Reflectors: []Reflector{{Traj: traj, BaseGain: 0.05}},
	}
	still := &Scene{Device: dev, Duration: 0.6, Seed: 1}
	sigM, err := moving.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	sigS, err := still.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	corr := func(s []float64, f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / 44100
		for i, v := range s {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	// Mid-stroke shift ≈ 2·20000·(1.875·0.25/0.6)/340 ≈ 92 Hz; probe a
	// band around it.
	side := 0.0
	for _, df := range []float64{60, 80, 100} {
		side += corr(sigM.Samples, 20000+df)
	}
	base := 0.0
	for _, df := range []float64{60, 80, 100} {
		base += corr(sigS.Samples, 20000+df)
	}
	if side < 3*base {
		t.Errorf("no Doppler sideband: moving %g vs static %g", side, base)
	}
}

func TestQuantizeClampsAndRounds(t *testing.T) {
	dev := Mate9()
	dev.TxAmplitude = 2.0 // force overload
	dev.DirectPathGain = 1.0
	sc := &Scene{Device: dev, Duration: 0.01, Seed: 1}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range sig.Samples {
		if v > 1 || v < -1 {
			t.Fatalf("sample %d = %g outside [-1,1]", i, v)
		}
	}
}

func TestHandReflectors(t *testing.T) {
	traj := &geom.StaticTrajectory{Pos: geom.Vec3{Y: 0.15}, Dur: 1}
	refs := HandReflectors(traj)
	if len(refs) != 2 {
		t.Fatalf("got %d reflectors, want finger+arm", len(refs))
	}
	arm, ok := refs[1].Traj.(*ArmTrajectory)
	if !ok {
		t.Fatal("second reflector is not the arm")
	}
	if arm.Ratio <= 0 || arm.Ratio >= 1 {
		t.Errorf("arm ratio %g outside (0,1)", arm.Ratio)
	}
	// The arm moves less than the finger for the same finger displacement.
	f0 := geom.Vec3{Y: 0.15}
	f1 := geom.Vec3{Y: 0.25}
	armTr := &ArmTrajectory{Finger: traj, Pivot: DefaultArmPivot, Ratio: 0.45}
	a0 := armTr.At(0)
	armTr2 := &ArmTrajectory{
		Finger: &geom.StaticTrajectory{Pos: f1, Dur: 1},
		Pivot:  DefaultArmPivot, Ratio: 0.45,
	}
	a1 := armTr2.At(0)
	if a0.Dist(a1) >= f0.Dist(f1) {
		t.Error("arm displacement not scaled down")
	}
	if armTr.Duration() != 1 {
		t.Error("arm duration mismatch")
	}
}

func TestSecondWriterReflectorScribbles(t *testing.T) {
	spec := SecondWriterSpec{Distance: 0.5, StrokeHz: 1.4, Span: 0.03, Gain: 0.018}
	r := secondWriterReflector(spec, 8)
	if r.Traj.Duration() != 8 {
		t.Errorf("duration = %g", r.Traj.Duration())
	}
	if r.RefDistance != 0.5 {
		t.Errorf("ref distance = %g", r.RefDistance)
	}
	// The scribble stays near the standoff but genuinely moves, and its
	// peak radial speed reaches the stroke band (≳0.15 m/s) — fast enough
	// that the segmenter cannot dismiss it as walker-class clutter.
	maxSpeed := 0.0
	const dt = 1e-3
	for tt := 0.0; tt < 2; tt += dt {
		p := r.Traj.At(tt)
		d := p.Norm()
		if d < 0.4 || d > 0.6 {
			t.Fatalf("scribble range %g at t=%g left the standoff neighborhood", d, tt)
		}
		v := (r.Traj.At(tt+dt).Norm() - d) / dt
		if s := math.Abs(v); s > maxSpeed {
			maxSpeed = s
		}
	}
	if maxSpeed < 0.15 {
		t.Errorf("peak radial speed %g m/s below the stroke band", maxSpeed)
	}
}

// TestSecondWriterAddsInBandDoppler verifies the interferer shows up as
// sideband energy near the carrier, like a real writing finger would.
func TestSecondWriterAddsInBandDoppler(t *testing.T) {
	dev := Mate9()
	dev.NoiseFloorRMS = 0
	dev.HardwareBurstRate = 0
	quiet := &Scene{Device: dev, Duration: 0.6, Seed: 1}
	busy := &Scene{
		Device:   dev,
		Env:      Environment{SecondWriter: &SecondWriterSpec{Distance: 0.5, StrokeHz: 1.4, Span: 0.03, Gain: 0.018}},
		Duration: 0.6,
		Seed:     1,
	}
	sigQ, err := quiet.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	sigB, err := busy.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	corr := func(s []float64, f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / 44100
		for i, v := range s {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	side, base := 0.0, 0.0
	for _, df := range []float64{15, 25, 35} {
		side += corr(sigB.Samples, 20000+df)
		base += corr(sigQ.Samples, 20000+df)
	}
	if side < 3*base {
		t.Errorf("second writer added no sideband energy: %g vs %g", side, base)
	}
}

func TestWalkerReflectorPaces(t *testing.T) {
	r := walkerReflector(WalkerSpec{Distance: 0.35, Speed: 0.8, Gain: 0.02}, 10)
	if r.Traj.Duration() != 10 {
		t.Errorf("walker duration = %g", r.Traj.Duration())
	}
	// The walker stays at the configured lateral distance.
	for _, tt := range []float64{0, 1, 3, 7} {
		p := r.Traj.At(tt)
		if p.Y != 0.35 {
			t.Errorf("walker Y = %g at t=%g", p.Y, tt)
		}
	}
	// And actually moves along X.
	if r.Traj.At(0).Dist(r.Traj.At(1.5)) < 0.1 {
		t.Error("walker barely moves")
	}
}

func TestReverbSpecPaths(t *testing.T) {
	var nilSpec *ReverbSpec
	if nilSpec.paths(1, 340) != nil {
		t.Error("nil spec produced paths")
	}
	spec := &ReverbSpec{RT60: 0.5, Density: 40, Gain: 0.02}
	paths := spec.paths(7, 340)
	if len(paths) != 40 {
		t.Fatalf("got %d paths, want 40", len(paths))
	}
	for _, p := range paths {
		if p.Gain <= 0 || p.Gain > 0.02+1e-12 {
			t.Errorf("path gain %g outside (0, 0.02]", p.Gain)
		}
		if p.Distance <= 0 || p.Distance > 0.52*340/2+1 {
			t.Errorf("path distance %g implausible", p.Distance)
		}
	}
	// Deterministic per seed, different across seeds.
	again := spec.paths(7, 340)
	if again[5] != paths[5] {
		t.Error("reverb paths not deterministic")
	}
	other := spec.paths(8, 340)
	if other[5] == paths[5] {
		t.Error("reverb paths identical across seeds")
	}
}

func TestReverbDoesNotBreakRecognitionSpectrum(t *testing.T) {
	// A reverberant static scene still concentrates energy at the
	// carrier; the tail only adds static components.
	dev := Mate9()
	dev.NoiseFloorRMS = 0
	dev.HardwareBurstRate = 0
	env := Environment{Reverb: &ReverbSpec{RT60: 0.6, Density: 60, Gain: 0.03}}
	sc := &Scene{Device: dev, Env: env, Duration: 0.4, Seed: 3}
	sig, err := sc.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	corr := func(f float64) float64 {
		re, im := 0.0, 0.0
		w := 2 * math.Pi * f / sig.Rate
		for i, v := range sig.Samples {
			re += v * math.Cos(w*float64(i))
			im += v * math.Sin(w*float64(i))
		}
		return math.Hypot(re, im)
	}
	if carrier, off := corr(20000), corr(12000); carrier < 50*off {
		t.Errorf("reverb destroyed carrier dominance: %g vs %g", carrier, off)
	}
}
