// Package acoustic is the physics simulator substituting for the paper's
// phone-in-a-room testbed. It synthesizes the microphone stream a device
// would record while its speaker emits the 20 kHz probe tone and a finger
// writes strokes nearby: direct path, static multipath, moving reflectors
// with time-varying propagation delay (which is what physically produces
// Doppler), environment noise, and front-end imperfections.
//
// The DSP pipeline consumes the synthesized stream exactly as it would a
// real recording, so every downstream algorithm (STFT, enhancement, MVCE,
// segmentation, DTW, inference) is exercised on its real input format.
package acoustic

import (
	"fmt"
	"strings"
)

// DeviceProfile models one acoustic front-end: a speaker-microphone pair
// plus converter characteristics. Two concrete profiles reproduce the
// paper's hardware: a Huawei Mate 9 class smartphone and a Huawei Watch 2
// class smartwatch (Fig. 11 compares them).
type DeviceProfile struct {
	// Name labels the device in reports.
	Name string
	// SampleRate in Hz (both paper devices record at 44.1 kHz).
	SampleRate float64
	// CarrierHz is the emitted probe frequency (20 kHz).
	CarrierHz float64
	// TxAmplitude is the emitted tone amplitude at the speaker, in
	// full-scale units referenced to the ADC (the direct path arrives at
	// DirectPathGain × TxAmplitude).
	TxAmplitude float64
	// DirectPathGain is the speaker→mic leakage gain (the strong static
	// component spectral subtraction must remove).
	DirectPathGain float64
	// ReflectionGain scales all echo amplitudes; it folds in speaker SPL,
	// mic sensitivity and the device's baffle. Watches are weaker.
	ReflectionGain float64
	// NoiseFloorRMS is the mic self-noise RMS in full-scale units.
	NoiseFloorRMS float64
	// HardwareBurstRate is the expected number of bursting hardware-noise
	// events per second (§III-A's "bursting hardware noise").
	HardwareBurstRate float64
	// HardwareBurstAmp is the amplitude of those bursts.
	HardwareBurstAmp float64
	// ADCBits is the converter resolution used for quantization.
	ADCBits int
}

// deviceProfiles maps the canonical slug of every built-in profile to
// its constructor, in presentation order.
var deviceProfiles = []struct {
	slug string
	make func() DeviceProfile
}{
	{"mate9", Mate9},
	{"watch2", Watch2},
	{"tablet", TabletM5},
	{"budget", BudgetPhone},
}

// DeviceNames returns the slugs of every built-in device profile.
func DeviceNames() []string {
	out := make([]string, len(deviceProfiles))
	for i, d := range deviceProfiles {
		out[i] = d.slug
	}
	return out
}

// DeviceByName resolves a device slug ("mate9", "watch2", "tablet",
// "budget") to its profile.
func DeviceByName(name string) (DeviceProfile, error) {
	for _, d := range deviceProfiles {
		if d.slug == name {
			return d.make(), nil
		}
	}
	return DeviceProfile{}, fmt.Errorf("acoustic: unknown device %q (have %s)",
		name, strings.Join(DeviceNames(), ", "))
}

// Mate9 returns the smartphone front-end profile (the paper's primary
// prototype device).
func Mate9() DeviceProfile {
	return DeviceProfile{
		Name:              "Huawei Mate 9",
		SampleRate:        44100,
		CarrierHz:         20000,
		TxAmplitude:       0.9,
		DirectPathGain:    0.30,
		ReflectionGain:    1.0,
		NoiseFloorRMS:     0.0015,
		HardwareBurstRate: 0.8,
		HardwareBurstAmp:  0.02,
		ADCBits:           16,
	}
}

// Watch2 returns the smartwatch front-end profile: smaller speaker (lower
// SPL, so weaker echoes), noisier mic, the same sample rate. Fig. 11 shows
// its offline accuracy trails the phone by only ~0.3 %.
func Watch2() DeviceProfile {
	return DeviceProfile{
		Name:              "Huawei Watch 2",
		SampleRate:        44100,
		CarrierHz:         20000,
		TxAmplitude:       0.8,
		DirectPathGain:    0.32,
		ReflectionGain:    0.75,
		NoiseFloorRMS:     0.0040,
		HardwareBurstRate: 1.1,
		HardwareBurstAmp:  0.035,
		ADCBits:           16,
	}
}

// TabletM5 returns a MediaPad M5 class tablet front-end: a larger
// speaker cavity (more SPL, so stronger echoes and stronger direct
// leakage for spectral subtraction to remove) with a quieter mic path
// than either paper device.
func TabletM5() DeviceProfile {
	return DeviceProfile{
		Name:              "Huawei MediaPad M5",
		SampleRate:        44100,
		CarrierHz:         20000,
		TxAmplitude:       1.0,
		DirectPathGain:    0.34,
		ReflectionGain:    1.15,
		NoiseFloorRMS:     0.0012,
		HardwareBurstRate: 0.5,
		HardwareBurstAmp:  0.015,
		ADCBits:           16,
	}
}

// BudgetPhone returns a low-end handset front-end: weak speaker, noisy
// mic, frequent hardware bursts and a coarse 12-bit effective converter —
// the worst-case hardware cell of the scenario matrix.
func BudgetPhone() DeviceProfile {
	return DeviceProfile{
		Name:              "budget handset",
		SampleRate:        44100,
		CarrierHz:         20000,
		TxAmplitude:       0.7,
		DirectPathGain:    0.36,
		ReflectionGain:    0.6,
		NoiseFloorRMS:     0.0060,
		HardwareBurstRate: 2.0,
		HardwareBurstAmp:  0.05,
		ADCBits:           12,
	}
}
