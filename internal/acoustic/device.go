// Package acoustic is the physics simulator substituting for the paper's
// phone-in-a-room testbed. It synthesizes the microphone stream a device
// would record while its speaker emits the 20 kHz probe tone and a finger
// writes strokes nearby: direct path, static multipath, moving reflectors
// with time-varying propagation delay (which is what physically produces
// Doppler), environment noise, and front-end imperfections.
//
// The DSP pipeline consumes the synthesized stream exactly as it would a
// real recording, so every downstream algorithm (STFT, enhancement, MVCE,
// segmentation, DTW, inference) is exercised on its real input format.
package acoustic

// DeviceProfile models one acoustic front-end: a speaker-microphone pair
// plus converter characteristics. Two concrete profiles reproduce the
// paper's hardware: a Huawei Mate 9 class smartphone and a Huawei Watch 2
// class smartwatch (Fig. 11 compares them).
type DeviceProfile struct {
	// Name labels the device in reports.
	Name string
	// SampleRate in Hz (both paper devices record at 44.1 kHz).
	SampleRate float64
	// CarrierHz is the emitted probe frequency (20 kHz).
	CarrierHz float64
	// TxAmplitude is the emitted tone amplitude at the speaker, in
	// full-scale units referenced to the ADC (the direct path arrives at
	// DirectPathGain × TxAmplitude).
	TxAmplitude float64
	// DirectPathGain is the speaker→mic leakage gain (the strong static
	// component spectral subtraction must remove).
	DirectPathGain float64
	// ReflectionGain scales all echo amplitudes; it folds in speaker SPL,
	// mic sensitivity and the device's baffle. Watches are weaker.
	ReflectionGain float64
	// NoiseFloorRMS is the mic self-noise RMS in full-scale units.
	NoiseFloorRMS float64
	// HardwareBurstRate is the expected number of bursting hardware-noise
	// events per second (§III-A's "bursting hardware noise").
	HardwareBurstRate float64
	// HardwareBurstAmp is the amplitude of those bursts.
	HardwareBurstAmp float64
	// ADCBits is the converter resolution used for quantization.
	ADCBits int
}

// Mate9 returns the smartphone front-end profile (the paper's primary
// prototype device).
func Mate9() DeviceProfile {
	return DeviceProfile{
		Name:              "Huawei Mate 9",
		SampleRate:        44100,
		CarrierHz:         20000,
		TxAmplitude:       0.9,
		DirectPathGain:    0.30,
		ReflectionGain:    1.0,
		NoiseFloorRMS:     0.0015,
		HardwareBurstRate: 0.8,
		HardwareBurstAmp:  0.02,
		ADCBits:           16,
	}
}

// Watch2 returns the smartwatch front-end profile: smaller speaker (lower
// SPL, so weaker echoes), noisier mic, the same sample rate. Fig. 11 shows
// its offline accuracy trails the phone by only ~0.3 %.
func Watch2() DeviceProfile {
	return DeviceProfile{
		Name:              "Huawei Watch 2",
		SampleRate:        44100,
		CarrierHz:         20000,
		TxAmplitude:       0.8,
		DirectPathGain:    0.32,
		ReflectionGain:    0.75,
		NoiseFloorRMS:     0.0040,
		HardwareBurstRate: 1.1,
		HardwareBurstAmp:  0.035,
		ADCBits:           16,
	}
}
