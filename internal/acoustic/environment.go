package acoustic

import "math"

// EnvironmentKind enumerates the paper's three experimental settings
// (§IV-B).
type EnvironmentKind int

// The three evaluation environments.
const (
	// MeetingRoom: air conditioner on, windows closed, 60–70 dB ambient.
	MeetingRoom EnvironmentKind = iota + 1
	// LabArea: 8 m × 9 m room with ~20 students working, chatting,
	// occasionally walking.
	LabArea
	// RestingZone: open area near a corridor; people walk and talk close
	// by, including a walker 30–40 cm from the device.
	RestingZone
)

// String implements fmt.Stringer.
func (k EnvironmentKind) String() string {
	switch k {
	case MeetingRoom:
		return "meeting room"
	case LabArea:
		return "lab area"
	case RestingZone:
		return "resting zone"
	default:
		return "unknown environment"
	}
}

// Environment describes the ambient acoustic conditions of a scene.
type Environment struct {
	Kind EnvironmentKind
	// AmbientRMS is the broadband background (HVAC etc.) RMS level.
	AmbientRMS float64
	// BabbleRMS is the speech-band noise level (conversations).
	BabbleRMS float64
	// KeyboardClicksPerSecond is the typing-transient rate.
	KeyboardClicksPerSecond float64
	// KeyboardClickAmp is the typing-transient amplitude.
	KeyboardClickAmp float64
	// BurstRate is the rate (events/s) of wideband environmental bursts
	// (knocks, object strikes, rubbing) that overlap the probe band —
	// the noise class §VII-B reports EchoWrite is sensitive to.
	BurstRate float64
	// BurstAmp is the peak amplitude of those bursts.
	BurstAmp float64
	// Walker, when non-nil, adds a person pacing near the device.
	Walker *WalkerSpec
	// StaticReflectors adds environment clutter: each entry is a distance
	// (m) and gain for an extra static echo path (walls, furniture).
	StaticReflectors []StaticPath
	// Reverb, when non-nil, adds a diffuse late-reverberation tail on top
	// of the discrete static paths. Because the tail is static it is
	// removed by spectral subtraction, but it raises the pre-subtraction
	// floor like a real room does.
	Reverb *ReverbSpec
}

// ReverbSpec parameterizes the diffuse tail as a sparse bank of decaying
// echoes.
type ReverbSpec struct {
	// RT60 is the 60 dB decay time in seconds (typical office: 0.4–0.7).
	RT60 float64
	// Density is the number of diffuse echoes to synthesize.
	Density int
	// Gain is the level of the earliest diffuse echo relative to
	// TxAmplitude.
	Gain float64
}

// paths expands the spec into concrete static paths with exponentially
// decaying gains, deterministically from the scene seed.
func (r *ReverbSpec) paths(seed uint64, soundSpeed float64) []StaticPath {
	if r == nil || r.Density <= 0 || r.RT60 <= 0 {
		return nil
	}
	// Simple multiplicative congruential stream for reproducibility
	// without importing rand here.
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	out := make([]StaticPath, 0, r.Density)
	for i := 0; i < r.Density; i++ {
		// Echo arrival times spread over the first RT60 seconds.
		delay := 0.004 + next()*r.RT60
		// -60 dB at RT60 → gain decays as 10^(-3·t/RT60).
		decay := r.Gain * math.Pow(10, -3*delay/r.RT60)
		out = append(out, StaticPath{
			Distance: delay * soundSpeed / 2, // one-way distance
			Gain:     decay,
		})
	}
	return out
}

// WalkerSpec describes a bystander walking near the device: a large, slow
// reflector producing low-frequency-shift multipath interference.
type WalkerSpec struct {
	// Distance is the closest approach in meters (paper: 0.3–0.4 m).
	Distance float64
	// Speed is the walking speed in m/s.
	Speed float64
	// Gain is the reflection gain of the torso (bigger than a finger).
	Gain float64
}

// StaticPath is one immobile multipath component.
type StaticPath struct {
	// Distance is the one-way path length in meters.
	Distance float64
	// Gain is the echo amplitude relative to TxAmplitude.
	Gain float64
}

// StandardEnvironment returns the calibrated environment model for one of
// the paper's three settings.
func StandardEnvironment(kind EnvironmentKind) Environment {
	switch kind {
	case MeetingRoom:
		return Environment{
			Kind:       MeetingRoom,
			AmbientRMS: 0.004, // HVAC hum, 60–70 dB SPL class
			BabbleRMS:  0.001,
			BurstRate:  0.02,
			BurstAmp:   0.05,
			StaticReflectors: []StaticPath{
				{Distance: 0.9, Gain: 0.012},
				{Distance: 1.6, Gain: 0.006},
			},
		}
	case LabArea:
		return Environment{
			Kind:                    LabArea,
			AmbientRMS:              0.003,
			BabbleRMS:               0.004,
			KeyboardClicksPerSecond: 3,
			KeyboardClickAmp:        0.02,
			BurstRate:               0.04,
			BurstAmp:                0.05,
			StaticReflectors: []StaticPath{
				{Distance: 0.7, Gain: 0.014},
				{Distance: 1.2, Gain: 0.008},
				{Distance: 2.0, Gain: 0.004},
			},
		}
	case RestingZone:
		return Environment{
			Kind:       RestingZone,
			AmbientRMS: 0.0035,
			BabbleRMS:  0.006,
			BurstRate:  0.12,
			BurstAmp:   0.09,
			// The torso is a large reflector, but at 20 kHz clothing
			// absorbs strongly and the walker stands to the device's
			// side, off the speaker/mic main lobe; the calibrated gain
			// leaves a visible low-acceleration trace (Fig. 10's circled
			// interference) without overpowering the finger echo.
			Walker: &WalkerSpec{
				Distance: 0.35,
				Speed:    0.8,
				Gain:     0.016,
			},
			StaticReflectors: []StaticPath{
				{Distance: 1.1, Gain: 0.010},
				{Distance: 2.4, Gain: 0.005},
			},
		}
	default:
		return Environment{Kind: kind}
	}
}
