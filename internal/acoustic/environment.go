package acoustic

import (
	"fmt"
	"math"
)

// EnvironmentKind enumerates the simulated ambient settings: the paper's
// three experimental ones (§IV-B) plus the extended scenario-matrix
// settings the load harness exercises.
type EnvironmentKind int

// The evaluation environments.
const (
	// MeetingRoom: air conditioner on, windows closed, 60–70 dB ambient.
	MeetingRoom EnvironmentKind = iota + 1
	// LabArea: 8 m × 9 m room with ~20 students working, chatting,
	// occasionally walking.
	LabArea
	// RestingZone: open area near a corridor; people walk and talk close
	// by, including a walker 30–40 cm from the device.
	RestingZone
	// CafeBabble: a busy café — dense overlapping conversation, cup and
	// cutlery clatter, a live reverberant room. Dominated by speech-band
	// noise rather than the paper's HVAC hum.
	CafeBabble
	// VehicleCabin: inside a moving car — strong broadband engine/road
	// rumble, tight close reflections off the dashboard and windows,
	// occasional bump transients, almost no babble.
	VehicleCabin
	// SecondWriter: a quiet room with a second person performing writing
	// motions ~0.5 m away. Their finger is a genuine Doppler source in
	// the probe band — the interference class WhisperWand treats as a
	// first-class confounder, not rejectable by the static-noise gates.
	SecondWriter
)

// environmentKinds orders every defined kind; slugs are the canonical
// machine-readable names (scenario matrix grammar, CLI flags).
var environmentKinds = []struct {
	kind    EnvironmentKind
	display string
	slug    string
}{
	{MeetingRoom, "meeting room", "meeting-room"},
	{LabArea, "lab area", "lab-area"},
	{RestingZone, "resting zone", "resting-zone"},
	{CafeBabble, "cafe babble", "cafe-babble"},
	{VehicleCabin, "vehicle cabin", "vehicle-cabin"},
	{SecondWriter, "second writer", "second-writer"},
}

// AllEnvironmentKinds returns every defined kind in declaration order.
func AllEnvironmentKinds() []EnvironmentKind {
	out := make([]EnvironmentKind, len(environmentKinds))
	for i, e := range environmentKinds {
		out[i] = e.kind
	}
	return out
}

// String implements fmt.Stringer. Unknown kinds render as
// "EnvironmentKind(n)" so a bogus value is visible instead of aliasing a
// real setting.
func (k EnvironmentKind) String() string {
	for _, e := range environmentKinds {
		if e.kind == k {
			return e.display
		}
	}
	return fmt.Sprintf("EnvironmentKind(%d)", int(k))
}

// Slug returns the canonical machine-readable name ("meeting-room").
// Unknown kinds render like String.
func (k EnvironmentKind) Slug() string {
	for _, e := range environmentKinds {
		if e.kind == k {
			return e.slug
		}
	}
	return fmt.Sprintf("EnvironmentKind(%d)", int(k))
}

// ParseEnvironmentKind resolves a slug or display name ("cafe-babble",
// "cafe babble") to its kind.
func ParseEnvironmentKind(name string) (EnvironmentKind, error) {
	for _, e := range environmentKinds {
		if name == e.slug || name == e.display {
			return e.kind, nil
		}
	}
	return 0, fmt.Errorf("acoustic: unknown environment %q (have %s)", name, knownEnvironmentSlugs())
}

func knownEnvironmentSlugs() string {
	s := ""
	for i, e := range environmentKinds {
		if i > 0 {
			s += ", "
		}
		s += e.slug
	}
	return s
}

// Environment describes the ambient acoustic conditions of a scene.
type Environment struct {
	Kind EnvironmentKind
	// AmbientRMS is the broadband background (HVAC etc.) RMS level.
	AmbientRMS float64
	// BabbleRMS is the speech-band noise level (conversations).
	BabbleRMS float64
	// KeyboardClicksPerSecond is the typing-transient rate.
	KeyboardClicksPerSecond float64
	// KeyboardClickAmp is the typing-transient amplitude.
	KeyboardClickAmp float64
	// BurstRate is the rate (events/s) of wideband environmental bursts
	// (knocks, object strikes, rubbing) that overlap the probe band —
	// the noise class §VII-B reports EchoWrite is sensitive to.
	BurstRate float64
	// BurstAmp is the peak amplitude of those bursts.
	BurstAmp float64
	// Walker, when non-nil, adds a person pacing near the device.
	Walker *WalkerSpec
	// SecondWriter, when non-nil, adds a bystander performing writing-like
	// finger motions near the device — an interfering Doppler source in
	// the same shift band as the real writer's strokes.
	SecondWriter *SecondWriterSpec
	// StaticReflectors adds environment clutter: each entry is a distance
	// (m) and gain for an extra static echo path (walls, furniture).
	StaticReflectors []StaticPath
	// Reverb, when non-nil, adds a diffuse late-reverberation tail on top
	// of the discrete static paths. Because the tail is static it is
	// removed by spectral subtraction, but it raises the pre-subtraction
	// floor like a real room does.
	Reverb *ReverbSpec
}

// ReverbSpec parameterizes the diffuse tail as a sparse bank of decaying
// echoes.
type ReverbSpec struct {
	// RT60 is the 60 dB decay time in seconds (typical office: 0.4–0.7).
	RT60 float64
	// Density is the number of diffuse echoes to synthesize.
	Density int
	// Gain is the level of the earliest diffuse echo relative to
	// TxAmplitude.
	Gain float64
}

// paths expands the spec into concrete static paths with exponentially
// decaying gains, deterministically from the scene seed.
func (r *ReverbSpec) paths(seed uint64, soundSpeed float64) []StaticPath {
	if r == nil || r.Density <= 0 || r.RT60 <= 0 {
		return nil
	}
	// Simple multiplicative congruential stream for reproducibility
	// without importing rand here.
	state := seed*6364136223846793005 + 1442695040888963407
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	out := make([]StaticPath, 0, r.Density)
	for i := 0; i < r.Density; i++ {
		// Echo arrival times spread over the first RT60 seconds.
		delay := 0.004 + next()*r.RT60
		// -60 dB at RT60 → gain decays as 10^(-3·t/RT60).
		decay := r.Gain * math.Pow(10, -3*delay/r.RT60)
		out = append(out, StaticPath{
			Distance: delay * soundSpeed / 2, // one-way distance
			Gain:     decay,
		})
	}
	return out
}

// WalkerSpec describes a bystander walking near the device: a large, slow
// reflector producing low-frequency-shift multipath interference.
type WalkerSpec struct {
	// Distance is the closest approach in meters (paper: 0.3–0.4 m).
	Distance float64
	// Speed is the walking speed in m/s.
	Speed float64
	// Gain is the reflection gain of the torso (bigger than a finger).
	Gain float64
}

// SecondWriterSpec describes a second person writing near the device:
// a small reflector tracing fast finger-scale loops. Unlike the walker
// its radial speeds sit inside the stroke Doppler band, so it collides
// with segmentation rather than being filtered as low-acceleration
// clutter.
type SecondWriterSpec struct {
	// Distance is the interferer's standoff from the device in meters.
	Distance float64
	// StrokeHz is the loop rate of the writing motion (strokes/second).
	StrokeHz float64
	// Span is the motion half-amplitude in meters (finger-scale: ~3 cm).
	Span float64
	// Gain is the reflection gain, referenced at Distance.
	Gain float64
}

// StaticPath is one immobile multipath component.
type StaticPath struct {
	// Distance is the one-way path length in meters.
	Distance float64
	// Gain is the echo amplitude relative to TxAmplitude.
	Gain float64
}

// StandardEnvironment returns the calibrated environment model for a
// defined setting. It panics on an unknown kind — a silent zero-value
// environment would alias "perfectly quiet room" and skew any experiment
// that iterates kinds. Use EnvironmentByKind when the kind comes from
// input that may be invalid.
func StandardEnvironment(kind EnvironmentKind) Environment {
	env, err := EnvironmentByKind(kind)
	if err != nil {
		panic(err)
	}
	return env
}

// EnvironmentByKind is StandardEnvironment with an error instead of a
// panic for unknown kinds.
func EnvironmentByKind(kind EnvironmentKind) (Environment, error) {
	switch kind {
	case MeetingRoom:
		return Environment{
			Kind:       MeetingRoom,
			AmbientRMS: 0.004, // HVAC hum, 60–70 dB SPL class
			BabbleRMS:  0.001,
			BurstRate:  0.02,
			BurstAmp:   0.05,
			StaticReflectors: []StaticPath{
				{Distance: 0.9, Gain: 0.012},
				{Distance: 1.6, Gain: 0.006},
			},
		}, nil
	case LabArea:
		return Environment{
			Kind:                    LabArea,
			AmbientRMS:              0.003,
			BabbleRMS:               0.004,
			KeyboardClicksPerSecond: 3,
			KeyboardClickAmp:        0.02,
			BurstRate:               0.04,
			BurstAmp:                0.05,
			StaticReflectors: []StaticPath{
				{Distance: 0.7, Gain: 0.014},
				{Distance: 1.2, Gain: 0.008},
				{Distance: 2.0, Gain: 0.004},
			},
		}, nil
	case RestingZone:
		return Environment{
			Kind:       RestingZone,
			AmbientRMS: 0.0035,
			BabbleRMS:  0.006,
			BurstRate:  0.12,
			BurstAmp:   0.09,
			// The torso is a large reflector, but at 20 kHz clothing
			// absorbs strongly and the walker stands to the device's
			// side, off the speaker/mic main lobe; the calibrated gain
			// leaves a visible low-acceleration trace (Fig. 10's circled
			// interference) without overpowering the finger echo.
			Walker: &WalkerSpec{
				Distance: 0.35,
				Speed:    0.8,
				Gain:     0.016,
			},
			StaticReflectors: []StaticPath{
				{Distance: 1.1, Gain: 0.010},
				{Distance: 2.4, Gain: 0.005},
			},
		}, nil
	case CafeBabble:
		return Environment{
			Kind: CafeBabble,
			// Espresso machines and HVAC under a dense conversation bed.
			AmbientRMS: 0.0030,
			BabbleRMS:  0.011,
			// Cup/cutlery clatter: frequent, sharp, wideband.
			BurstRate: 0.35,
			BurstAmp:  0.08,
			StaticReflectors: []StaticPath{
				{Distance: 0.6, Gain: 0.015},
				{Distance: 1.4, Gain: 0.007},
			},
			// A live room: hard tables and glass keep the tail audible.
			Reverb: &ReverbSpec{RT60: 0.55, Density: 50, Gain: 0.022},
		}, nil
	case VehicleCabin:
		return Environment{
			Kind: VehicleCabin,
			// Engine and road rumble dominate; pink noise approximates the
			// low-frequency-heavy cabin spectrum at highway speed.
			AmbientRMS: 0.014,
			BabbleRMS:  0.0015,
			// Expansion joints and potholes: sparse but strong transients.
			BurstRate: 0.10,
			BurstAmp:  0.12,
			// The cabin is tiny: dashboard and side window echoes arrive
			// close and strong, the rear shelf a little later.
			StaticReflectors: []StaticPath{
				{Distance: 0.35, Gain: 0.022},
				{Distance: 0.55, Gain: 0.016},
				{Distance: 1.3, Gain: 0.006},
			},
			Reverb: &ReverbSpec{RT60: 0.12, Density: 25, Gain: 0.018},
		}, nil
	case SecondWriter:
		return Environment{
			Kind: SecondWriter,
			// Quiet office ambience — the interference here is motion, not
			// noise.
			AmbientRMS: 0.0035,
			BabbleRMS:  0.0015,
			BurstRate:  0.02,
			BurstAmp:   0.05,
			// A colleague writing ~0.5 m away: finger-scale loops at
			// stroke-like rates put genuine Doppler energy in the band the
			// segmenter watches. Gain calibrated below the primary finger
			// (farther off the mic's main lobe) but well above the floor.
			SecondWriter: &SecondWriterSpec{
				Distance: 0.5,
				StrokeHz: 1.4,
				Span:     0.03,
				Gain:     0.018,
			},
			StaticReflectors: []StaticPath{
				{Distance: 0.9, Gain: 0.012},
				{Distance: 1.7, Gain: 0.006},
			},
		}, nil
	default:
		return Environment{}, fmt.Errorf("acoustic: no standard environment for kind %v", kind)
	}
}
