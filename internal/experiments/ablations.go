package experiments

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/calibrate"
	"repro/internal/capture"
	"repro/internal/dtw"
	"repro/internal/infer"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/segment"
	"repro/internal/stroke"
)

// The ablation suite exercises the design decisions DESIGN.md §6 calls
// out. Each ablation reruns the stroke protocol (meeting room, Mate 9)
// under a configuration variant and compares accuracy.

// strokeAccuracyWith runs the meeting-room protocol under the given
// pipeline configuration, optionally with pipeline-calibrated templates.
func strokeAccuracyWith(cfg Config, pcfg pipeline.Config, calibrated bool) (float64, error) {
	var (
		eng *pipeline.Engine
		err error
	)
	if calibrated {
		eng, err = calibrate.NewCalibratedEngine(pcfg)
	} else {
		eng, err = pipeline.NewEngine(pcfg)
	}
	if err != nil {
		return 0, err
	}
	cm, _, err := strokeProtocol(eng, cfg, acoustic.Mate9(), acoustic.MeetingRoom)
	if err != nil {
		return 0, err
	}
	return cm.OverallAccuracy(), nil
}

// AblationTemplates compares pipeline-calibrated templates against pure
// analytic ones (DESIGN.md decision 1).
func AblationTemplates(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	pcfg := pipeline.DefaultConfig()
	withCal, err := strokeAccuracyWith(cfg, pcfg, true)
	if err != nil {
		return nil, err
	}
	analytic, err := strokeAccuracyWith(cfg, pcfg, false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A1",
		Title:  "template source: pipeline-calibrated vs analytic",
		Header: []string{"templates", "stroke accuracy"},
	}
	t.Rows = append(t.Rows,
		[]string{"pipeline-calibrated", pct(withCal)},
		[]string{"analytic", pct(analytic)},
	)
	t.Notes = append(t.Notes, "calibrated templates absorb the front-end's blob-broadening bias")
	return t, nil
}

// AblationContour compares MVCE against the naive max-|shift| contour
// (DESIGN.md decision 2; the paper argues MVCE's necessity in §III-B).
func AblationContour(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	base := pipeline.DefaultConfig()
	mvceAcc, err := strokeAccuracyWith(cfg, base, true)
	if err != nil {
		return nil, err
	}
	maxbin := base
	maxbin.Contour = pipeline.ContourMaxBin
	maxAcc, err := strokeAccuracyWith(cfg, maxbin, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A2",
		Title:  "contour extractor: MVCE vs max-bin",
		Header: []string{"extractor", "stroke accuracy"},
	}
	t.Rows = append(t.Rows,
		[]string{"MVCE (paper)", pct(mvceAcc)},
		[]string{"max-bin", pct(maxAcc)},
	)
	return t, nil
}

// AblationSegmentation compares the acceleration gate against an
// energy/speed gate under bystander interference (DESIGN.md decision 3).
func AblationSegmentation(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	// Run the resting-zone protocol twice over the same profiles: once
	// with the paper's detector, once with the energy baseline.
	accAcc, err := segmentationAccuracy(eng, cfg, false)
	if err != nil {
		return nil, err
	}
	engAcc, err := segmentationAccuracy(eng, cfg, true)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A3",
		Title:  "segmentation: acceleration gate vs energy gate (resting zone)",
		Header: []string{"segmenter", "single-segment rate"},
	}
	t.Rows = append(t.Rows,
		[]string{"acceleration (paper)", pct(accAcc)},
		[]string{"energy baseline", pct(engAcc)},
	)
	t.Notes = append(t.Notes, "rate of trials where exactly one stroke segment is detected amid walker interference")
	return t, nil
}

// AblationDTWBand sweeps the Sakoe–Chiba window (DESIGN.md decision 4).
func AblationDTWBand(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A4",
		Title:  "DTW Sakoe–Chiba window sweep",
		Header: []string{"window (frames)", "stroke accuracy"},
	}
	for _, w := range []int{0, 2, 4, 8, 16} {
		pcfg := pipeline.DefaultConfig()
		pcfg.DTW = dtw.Options{Window: w, Normalize: true}
		acc, err := strokeAccuracyWith(cfg, pcfg, true)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d", w)
		if w == 0 {
			label = "unbounded"
		}
		if w == 4 {
			label += " (default)"
		}
		t.Rows = append(t.Rows, []string{label, pct(acc)})
	}
	return t, nil
}

// AblationCorrectionScope compares no correction, the paper's restricted
// substitutions and exhaustive edit-distance-1 (DESIGN.md decision 5).
func AblationCorrectionScope(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A5",
		Title:  "stroke-correction scope (top-3 word accuracy over Table I)",
		Header: []string{"scope", "top-1", "top-3", "candidate seqs/word"},
	}
	for _, scope := range []infer.CorrectionScope{infer.CorrectionNone, infer.CorrectionPaper, infer.CorrectionFull} {
		_, overall, err := runTopK(cfg, scope)
		if err != nil {
			return nil, err
		}
		// Candidate-set size for a representative 6-stroke word of
		// all-S1 observations (the worst case for the paper rule).
		rep := stroke.Sequence{stroke.S1, stroke.S1, stroke.S1, stroke.S1, stroke.S1, stroke.S1}
		seqs := len(infer.Corrections(rep, scope))
		t.Rows = append(t.Rows, []string{
			scope.String(), pct(overall.Accuracy(1)), pct(overall.Accuracy(3)), fmt.Sprintf("%d", seqs),
		})
	}
	return t, nil
}

// AblationSTFT sweeps FFT size / hop (DESIGN.md decision 6).
func AblationSTFT(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "Ablation A6",
		Title:  "STFT size/hop sweep",
		Header: []string{"fft/hop", "stroke accuracy"},
	}
	for _, v := range []struct{ fft, hop int }{
		{4096, 512}, {8192, 1024}, {8192, 2048}, {16384, 2048},
	} {
		pcfg := pipeline.DefaultConfig()
		pcfg.STFT.FFTSize = v.fft
		pcfg.STFT.HopSize = v.hop
		pcfg.STFT.LowBin = int(19530 * float64(v.fft) / pcfg.STFT.SampleRate)
		pcfg.STFT.HighBin = int(20470*float64(v.fft)/pcfg.STFT.SampleRate+0.5) + 1
		acc, err := strokeAccuracyWith(cfg, pcfg, true)
		if err != nil {
			return nil, err
		}
		label := fmt.Sprintf("%d/%d", v.fft, v.hop)
		if v.fft == 8192 && v.hop == 1024 {
			label += " (paper)"
		}
		t.Rows = append(t.Rows, []string{label, pct(acc)})
	}
	return t, nil
}

// segmentationAccuracy measures how often a single-stroke trial in the
// resting zone yields exactly one detected segment, using either the
// paper's detector (energy=false) or the energy baseline.
func segmentationAccuracy(eng *pipeline.Engine, cfg Config, energy bool) (float64, error) {
	roster := participant.SixParticipants()[:cfg.Participants]
	ok, total := 0, 0
	for pi, p := range roster {
		sess := participant.NewSession(p, cfg.Seed+uint64(pi*37))
		for _, st := range stroke.AllStrokes() {
			for r := 0; r < cfg.Reps; r++ {
				rec, err := capture.Perform(sess, stroke.Sequence{st}, acoustic.Mate9(),
					acoustic.StandardEnvironment(acoustic.RestingZone),
					cfg.Seed+uint64(pi*100000+int(st)*1000+r))
				if err != nil {
					return 0, err
				}
				out, err := eng.Recognize(rec.Signal)
				if err != nil {
					return 0, err
				}
				total++
				var n int
				if energy {
					n = len(segment.DetectEnergy(out.Profile, 25, 4))
				} else {
					n = len(out.Segments)
				}
				if n == 1 {
					ok++
				}
			}
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("experiments: no segmentation trials ran")
	}
	return float64(ok) / float64(total), nil
}
