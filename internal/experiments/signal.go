package experiments

import (
	"fmt"
	"math"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/participant"
	"repro/internal/segment"
	"repro/internal/stroke"
)

// Fig08PipelineStages reproduces Fig. 8's qualitative pipeline
// illustration quantitatively: for one written stroke it reports, per
// stage, how concentrated the spectrogram energy is (foreground pixel
// counts), demonstrating the enhancement chain's effect.
func Fig08PipelineStages(cfg Config) (*Table, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	eng.KeepStages = true
	defer func() { eng.KeepStages = false }()
	sess := participant.NewSession(participant.SixParticipants()[0], cfg.Seed)
	rec, err := capture.Perform(sess, stroke.Sequence{stroke.S2}, acoustic.Mate9(),
		acoustic.StandardEnvironment(acoustic.LabArea), cfg.Seed)
	if err != nil {
		return nil, err
	}
	out, err := eng.Recognize(rec.Signal)
	if err != nil {
		return nil, err
	}
	st := out.Stages
	if st == nil {
		return nil, fmt.Errorf("experiments: stages not captured")
	}
	count := func(m [][]float64, thresh float64) int {
		n := 0
		for _, row := range m {
			for _, v := range row {
				if v > thresh {
					n++
				}
			}
		}
		return n
	}
	rawActive := count(st.Raw.Data, st.Raw.MaxValue()*0.05)
	denActive := count(st.Denoised, 0)
	binActive := 0
	for _, row := range st.Binary {
		for _, v := range row {
			if v == 1 {
				binActive++
			}
		}
	}
	pixels := st.Raw.Frames() * st.Raw.Bins()
	profileActive := 0
	for _, v := range out.Profile {
		if math.Abs(v) > 1 {
			profileActive++
		}
	}
	t := &Table{
		ID:         "Fig. 8",
		Title:      "spectrogram enhancement stages (active pixels per stage)",
		PaperClaim: "raw spectrogram → denoised → binary → 1-D Doppler profile",
		Header:     []string{"stage", "active", "of pixels", "fraction"},
	}
	t.Rows = append(t.Rows,
		[]string{"raw (>5% of max)", fmt.Sprintf("%d", rawActive), fmt.Sprintf("%d", pixels), pct(float64(rawActive) / float64(pixels))},
		[]string{"denoised (>0)", fmt.Sprintf("%d", denActive), fmt.Sprintf("%d", pixels), pct(float64(denActive) / float64(pixels))},
		[]string{"binary (=1)", fmt.Sprintf("%d", binActive), fmt.Sprintf("%d", pixels), pct(float64(binActive) / float64(pixels))},
		[]string{"profile (|Δf|>1 Hz)", fmt.Sprintf("%d", profileActive), fmt.Sprintf("%d frames", len(out.Profile)), pct(float64(profileActive) / float64(len(out.Profile)))},
	)
	t.Notes = append(t.Notes, "each stage concentrates the Doppler information; the binary image keeps only the stroke blob")
	return t, nil
}

// Fig09Profiles reproduces Fig. 9: each stroke's measured Doppler profile
// versus its stored template (peak shifts and sign structure).
func Fig09Profiles(cfg Config) (*Table, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Fig. 9",
		Title:      "Doppler profiles of the six strokes (measured vs template)",
		PaperClaim: "each stroke exhibits a unique, user-independent profile",
		Header:     []string{"stroke", "meas +peak", "meas −peak", "tpl +peak", "tpl −peak", "frames", "match rate"},
	}
	lib := eng.TemplateLibrary()
	sess := participant.NewSession(participant.SixParticipants()[0], cfg.Seed+5)
	reps := cfg.Reps * 2
	for _, st := range stroke.AllStrokes() {
		var sumPos, sumNeg, sumFrames float64
		matched, n := 0, 0
		for r := 0; r < reps; r++ {
			rec, err := capture.Perform(sess, stroke.Sequence{st}, acoustic.Mate9(),
				acoustic.StandardEnvironment(acoustic.MeetingRoom), cfg.Seed+uint64(int(st)*100+r))
			if err != nil {
				return nil, err
			}
			out, err := eng.Recognize(rec.Signal)
			if err != nil {
				return nil, err
			}
			if len(out.Detections) != 1 {
				continue
			}
			slice, err := segment.Slice(out.Profile, out.Detections[0].Segment)
			if err != nil {
				return nil, err
			}
			mPos, mNeg := peaks(slice)
			sumPos += mPos
			sumNeg += mNeg
			sumFrames += float64(len(slice))
			n++
			if out.Detections[0].Stroke == st {
				matched++
			}
		}
		if n == 0 {
			t.Rows = append(t.Rows, []string{st.String(), "-", "-", "-", "-", "-", "0%"})
			continue
		}
		tPos, tNeg := peaks(lib[st.Index()])
		t.Rows = append(t.Rows, []string{
			st.String(),
			f1(sumPos/float64(n)) + " Hz", f1(sumNeg/float64(n)) + " Hz",
			f1(tPos) + " Hz", f1(tNeg) + " Hz",
			f1(sumFrames / float64(n)),
			pct(float64(matched) / float64(n)),
		})
	}
	return t, nil
}

func peaks(p []float64) (pos, neg float64) {
	for _, v := range p {
		if v > pos {
			pos = v
		}
		if v < neg {
			neg = v
		}
	}
	return pos, neg
}

// Fig10Segmentation reproduces Fig. 10: segmenting a continuous writing
// series amid multipath and irrelevant movements (a pacing bystander). It
// reports boundary precision/recall against ground truth.
func Fig10Segmentation(cfg Config) (*Table, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	frameRate := eng.Config().FrameRate()
	roster := participant.SixParticipants()[:cfg.Participants]
	seq := stroke.Sequence{stroke.S2, stroke.S1, stroke.S5, stroke.S3, stroke.S6, stroke.S4}
	matched, detected, truth := 0, 0, 0
	startErr := 0.0
	for pi, p := range roster {
		for r := 0; r < cfg.Reps; r++ {
			sess := participant.NewSession(p, cfg.Seed+uint64(pi*991+r))
			// The resting zone includes the walking bystander.
			rec, err := capture.Perform(sess, seq, acoustic.Mate9(),
				acoustic.StandardEnvironment(acoustic.RestingZone), cfg.Seed+uint64(pi*13+r))
			if err != nil {
				return nil, err
			}
			out, err := eng.Recognize(rec.Signal)
			if err != nil {
				return nil, err
			}
			detected += len(out.Segments)
			truth += len(rec.Performance.Spans)
			used := make([]bool, len(out.Segments))
			for _, span := range rec.Performance.Spans {
				tStart := int(span.Start * frameRate)
				tEnd := int(span.End * frameRate)
				for i, sg := range out.Segments {
					if used[i] {
						continue
					}
					// A detection matches when it overlaps the truth span.
					if sg.Start <= tEnd+6 && sg.End >= tStart-6 {
						used[i] = true
						matched++
						startErr += math.Abs(float64(sg.Start-tStart)) / frameRate
						break
					}
				}
			}
		}
	}
	t := &Table{
		ID:         "Fig. 10",
		Title:      "stroke segmentation under multipath + bystander interference",
		PaperClaim: "start/end points detected despite multipath (green square) and irrelevant movement (circle)",
		Header:     []string{"metric", "value"},
	}
	recall := float64(matched) / float64(truth)
	precision := float64(matched) / float64(detected)
	t.Rows = append(t.Rows,
		[]string{"true strokes", fmt.Sprintf("%d", truth)},
		[]string{"detected segments", fmt.Sprintf("%d", detected)},
		[]string{"recall", pct(recall)},
		[]string{"precision", pct(precision)},
		[]string{"mean |start error|", fmt.Sprintf("%.0f ms", 1000*startErr/float64(max(matched, 1)))},
	)
	return t, nil
}
