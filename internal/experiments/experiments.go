// Package experiments reproduces every table and figure of the paper's
// evaluation (§II prelim study and §V). Each experiment is a function
// returning a Table whose rows mirror what the paper plots; cmd/ewbench
// prints them and bench_test.go wraps them as benchmarks.
//
// Experiments are deterministic given a Config seed. Rep counts scale
// down in Quick mode so the suite stays runnable under `go test -bench`.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/acoustic"
	"repro/internal/calibrate"
	"repro/internal/pipeline"
)

// Config scales and seeds the experiment suite.
type Config struct {
	// Reps is the per-cell repetition count (the paper uses 30).
	Reps int
	// Participants limits the roster (paper: 6).
	Participants int
	// Seed drives all randomness.
	Seed uint64
}

// Full returns the paper's protocol sizes (3240 stroke instances, 30 reps
// per word, …).
func Full() Config { return Config{Reps: 30, Participants: 6, Seed: 1} }

// Quick returns a scaled-down configuration preserving every sweep
// dimension (for benchmarks and CI).
func Quick() Config { return Config{Reps: 3, Participants: 3, Seed: 1} }

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Reps < 1 {
		return fmt.Errorf("experiments: Reps must be >= 1, got %d", c.Reps)
	}
	if c.Participants < 1 || c.Participants > 6 {
		return fmt.Errorf("experiments: Participants must be in [1,6], got %d", c.Participants)
	}
	return nil
}

// Table is one reproduced figure or table.
type Table struct {
	// ID names the paper artifact ("Fig. 12", "Table I").
	ID string
	// Title describes what is shown.
	Title string
	// PaperClaim summarizes what the paper reports, for side-by-side
	// comparison.
	PaperClaim string
	// Header labels the columns.
	Header []string
	// Rows hold the measured values, pre-formatted.
	Rows [][]string
	// Notes carry caveats (substitutions, scaled protocols).
	Notes []string
}

// Render formats the table as aligned plain text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "   paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		b.WriteString("   ")
		for i, cell := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], cell)
			} else {
				b.WriteString(cell + "  ")
			}
		}
		b.WriteString("\n")
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "   note: %s\n", n)
	}
	return b.String()
}

// RenderMarkdown formats the table as a GitHub-flavored Markdown section.
func (t *Table) RenderMarkdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "*Paper:* %s\n\n", t.PaperClaim)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Header)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n> %s\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// pct formats a ratio as a percentage.
func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// f1 formats with one decimal.
func f1(x float64) string { return fmt.Sprintf("%.1f", x) }

// f2 formats with two decimals.
func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

// newCalibratedEngine builds the standard recognition engine used across
// experiments.
func newCalibratedEngine() (*pipeline.Engine, error) {
	return calibrate.NewCalibratedEngine(pipeline.DefaultConfig())
}

// environments lists the paper's three settings in presentation order.
func environments() []acoustic.EnvironmentKind {
	return []acoustic.EnvironmentKind{acoustic.MeetingRoom, acoustic.LabArea, acoustic.RestingZone}
}
