package experiments

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/stroke"
)

// TestWords returns the Table I word set: ten common words of short,
// medium and long lengths that jointly cover all six strokes. The paper's
// own table is not machine-readable in the source text, so the set is
// re-derived under its stated constraints (common words, three length
// classes, full stroke coverage) from the embedded dictionary.
func TestWords() []string {
	return []string{
		// short
		"he", "do", "in",
		// medium
		"time", "good", "water",
		// long
		"people", "morning", "problem", "question",
	}
}

// Table1Words reproduces Table I: the selected experiment words with
// their lengths and stroke sequences, verifying full stroke coverage.
func Table1Words(cfg Config) (*Table, error) {
	dict, err := lexicon.Default()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Table I",
		Title:      "selected test words (short/medium/long, covering all strokes)",
		PaperClaim: "10 common COCA words across three length classes covering all six strokes",
		Header:     []string{"word", "length", "strokes"},
	}
	covered := map[stroke.Stroke]bool{}
	for _, w := range TestWords() {
		e := dict.Find(w)
		if e == nil {
			return nil, fmt.Errorf("experiments: test word %q missing from dictionary", w)
		}
		for _, s := range e.StrokeSeq {
			covered[s] = true
		}
		t.Rows = append(t.Rows, []string{e.Word, fmt.Sprintf("%d", e.Length), e.StrokeSeq.String()})
	}
	for _, s := range stroke.AllStrokes() {
		if !covered[s] {
			return nil, fmt.Errorf("experiments: stroke %v not covered by the word set", s)
		}
	}
	t.Notes = append(t.Notes, "all six strokes covered; word identities re-derived (Table I unreadable in source)")
	return t, nil
}

// runTopK runs the word-recognition protocol over the Table I set with
// the given correction scope, returning a per-word top-k accumulator plus
// the overall one.
func runTopK(cfg Config, scope infer.CorrectionScope) (map[string]*metrics.TopK, *metrics.TopK, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, nil, err
	}
	rec, err := newWordRecognizer(scope)
	if err != nil {
		return nil, nil, err
	}
	roster := participant.SixParticipants()[:cfg.Participants]
	perWord := make(map[string]*metrics.TopK, len(TestWords()))
	overall, err := metrics.NewTopK(5)
	if err != nil {
		return nil, nil, err
	}
	for _, w := range TestWords() {
		tk, err := metrics.NewTopK(5)
		if err != nil {
			return nil, nil, err
		}
		perWord[w] = tk
	}
	for pi, p := range roster {
		sess := participant.NewSession(p, cfg.Seed+uint64(pi*7919))
		for wi, w := range TestWords() {
			for r := 0; r < cfg.Reps; r++ {
				seed := cfg.Seed + uint64(pi*1000000+wi*10000+r)
				oc, err := wordTrial(eng, rec, sess, w, acoustic.Mate9(), acoustic.MeetingRoom, seed)
				if err != nil {
					return nil, nil, err
				}
				perWord[w].Record(oc.rank)
				overall.Record(oc.rank)
			}
		}
	}
	return perWord, overall, nil
}

// Fig14TopK reproduces Fig. 14: top-1..5 accuracy per test word with
// stroke correction enabled.
func Fig14TopK(cfg Config) (*Table, error) {
	perWord, overall, err := runTopK(cfg, infer.CorrectionPaper)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Fig. 14",
		Title:      "top-k word accuracy per test word (with stroke correction)",
		PaperClaim: "averages 73.2/85.4/94.9/95.1/95.7 % for k=1..5",
		Header:     []string{"word", "top-1", "top-2", "top-3", "top-4", "top-5"},
	}
	for _, w := range TestWords() {
		tk := perWord[w]
		row := []string{w}
		for k := 1; k <= 5; k++ {
			row = append(row, pct(tk.Accuracy(k)))
		}
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"average"}
	for k := 1; k <= 5; k++ {
		avg = append(avg, pct(overall.Accuracy(k)))
	}
	t.Rows = append(t.Rows, avg)
	return t, nil
}

// Fig15Correction reproduces Fig. 15: average top-k accuracy with and
// without stroke correction.
func Fig15Correction(cfg Config) (*Table, error) {
	_, with, err := runTopK(cfg, infer.CorrectionPaper)
	if err != nil {
		return nil, err
	}
	_, without, err := runTopK(cfg, infer.CorrectionNone)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Fig. 15",
		Title:      "average top-k accuracy with vs without stroke correction",
		PaperClaim: "averages 88.9 % (with) vs 84.5 % (without); correction helps at every k",
		Header:     []string{"k", "with correction", "without correction"},
	}
	sumW, sumWo := 0.0, 0.0
	for k := 1; k <= 5; k++ {
		aw, awo := with.Accuracy(k), without.Accuracy(k)
		sumW += aw
		sumWo += awo
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", k), pct(aw), pct(awo)})
	}
	t.Rows = append(t.Rows, []string{"mean", pct(sumW / 5), pct(sumWo / 5)})
	return t, nil
}
