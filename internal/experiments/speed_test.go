package experiments

import (
	"testing"

	"repro/internal/lexicon"
	"repro/internal/participant"
)

func TestKeyboardSpeedCalibration(t *testing.T) {
	phrases := lexicon.Phrases()
	sp := keyboardSpeed(phrases, 0.1, 1)
	// Paper baseline: ≈5.5 WPM / ≈18.8 LPM for novices.
	if wpm := sp.WPM(); wpm < 4.5 || wpm > 6.5 {
		t.Errorf("novice keyboard speed %.1f WPM, want ≈5.5", wpm)
	}
	if lpm := sp.LPM(); lpm < 15 || lpm > 23 {
		t.Errorf("novice keyboard speed %.1f LPM, want ≈18.8", lpm)
	}
}

func TestKeyboardSpeedImprovesWithProficiency(t *testing.T) {
	phrases := lexicon.Phrases()[:30]
	novice := keyboardSpeed(phrases, 0.0, 2)
	expert := keyboardSpeed(phrases, 1.0, 2)
	if expert.WPM() <= novice.WPM() {
		t.Errorf("practice did not speed up typing: %.1f vs %.1f WPM",
			expert.WPM(), novice.WPM())
	}
}

func TestKeyboardSpeedDeterministicPerSeed(t *testing.T) {
	phrases := lexicon.Phrases()[:10]
	a := keyboardSpeed(phrases, 0.2, 7)
	b := keyboardSpeed(phrases, 0.2, 7)
	if a.Seconds != b.Seconds {
		t.Error("same seed produced different typing times")
	}
	c := keyboardSpeed(phrases, 0.2, 8)
	if a.Seconds == c.Seconds {
		t.Error("different seeds produced identical typing times")
	}
}

func TestPhraseBlocksQuickTrim(t *testing.T) {
	blocks, err := phraseBlocks(Config{Reps: 2, Participants: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks) > 5 {
		t.Errorf("got %d blocks, want <= 5", len(blocks))
	}
	for i, b := range blocks {
		if len(b) > 2 {
			t.Errorf("block %d has %d phrases under Reps=2", i, len(b))
		}
	}
	// Full-size protocols keep 10 phrases per block.
	blocks, err = phraseBlocks(Config{Reps: 30, Participants: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(blocks[0]) != 10 {
		t.Errorf("full block has %d phrases, want 10", len(blocks[0]))
	}
}

func TestEntrySessionRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := newWordRecognizer(2) // infer.CorrectionPaper
	if err != nil {
		t.Fatal(err)
	}
	p := sixth(t).WithProficiency(0.5)
	sp, err := entrySession(eng, rec, p, []string{"the people"}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Words != 2 || sp.Letters != 9 {
		t.Errorf("accounted %d words / %d letters, want 2 / 9", sp.Words, sp.Letters)
	}
	if sp.Seconds <= 0 {
		t.Error("no time accounted")
	}
}

// sixth returns the first modeled participant.
func sixth(t *testing.T) participant.Participant {
	t.Helper()
	return participant.SixParticipants()[0]
}
