package experiments

// Experiment is one named, runnable paper artifact.
type Experiment struct {
	// Name is the short CLI identifier ("fig14").
	Name string
	// Run produces the reproduced table.
	Run func(Config) (*Table, error)
}

// All returns every experiment in paper order: the preliminary study,
// the evaluation figures, Table I, and the ablation suite.
func All() []Experiment {
	return []Experiment{
		{Name: "fig4", Run: Fig04Learnability},
		{Name: "fig5", Run: Fig05LearnSpeed},
		{Name: "fig6", Run: Fig06LearnAccuracy},
		{Name: "fig8", Run: Fig08PipelineStages},
		{Name: "fig9", Run: Fig09Profiles},
		{Name: "fig10", Run: Fig10Segmentation},
		{Name: "fig11", Run: Fig11Devices},
		{Name: "fig12", Run: Fig12Environments},
		{Name: "fig13", Run: Fig13Participants},
		{Name: "table1", Run: Table1Words},
		{Name: "fig14", Run: Fig14TopK},
		{Name: "fig15", Run: Fig15Correction},
		{Name: "fig16", Run: Fig16EntrySpeed},
		{Name: "fig17", Run: Fig17LPM},
		{Name: "fig18", Run: Fig18Training},
		{Name: "fig19", Run: Fig19StageTime},
		{Name: "fig20", Run: Fig20Energy},
		{Name: "fig21", Run: Fig21CPU},
		{Name: "ablation-templates", Run: AblationTemplates},
		{Name: "ablation-contour", Run: AblationContour},
		{Name: "ablation-segmentation", Run: AblationSegmentation},
		{Name: "ablation-dtw-band", Run: AblationDTWBand},
		{Name: "ablation-correction", Run: AblationCorrectionScope},
		{Name: "ablation-stft", Run: AblationSTFT},
		{Name: "ablation-downsample", Run: AblationDownsample},
		{Name: "ablation-scoring", Run: AblationScoring},
		{Name: "ablation-dictsize", Run: AblationDictSize},
		{Name: "scenario", Run: ScenarioAccuracy},
	}
}

// Find returns the experiment with the given name, or nil.
func Find(name string) *Experiment {
	for _, e := range All() {
		if e.Name == name {
			return &e
		}
	}
	return nil
}
