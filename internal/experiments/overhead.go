package experiments

import (
	"fmt"
	"time"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/participant"
	ewruntime "repro/internal/runtime"
	"repro/internal/stroke"
)

// measureStageTimes runs the real pipeline over per-stroke recordings and
// accumulates measured stage wall times.
func measureStageTimes(cfg Config) (*ewruntime.StageBreakdown, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	sess := participant.NewSession(participant.SixParticipants()[0], cfg.Seed+3)
	var b ewruntime.StageBreakdown
	for _, st := range stroke.AllStrokes() {
		for r := 0; r < cfg.Reps; r++ {
			rec, err := capture.Perform(sess, stroke.Sequence{st}, acoustic.Mate9(),
				acoustic.StandardEnvironment(acoustic.MeetingRoom), cfg.Seed+uint64(int(st)*100+r))
			if err != nil {
				return nil, err
			}
			out, err := eng.Recognize(rec.Signal)
			if err != nil {
				return nil, err
			}
			b.Add(out.Timings, max(len(out.Detections), 1))
		}
	}
	return &b, nil
}

// Fig19StageTime reproduces Fig. 19: per-stage processing time for one
// stroke, measured from this implementation.
func Fig19StageTime(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b, err := measureStageTimes(cfg)
	if err != nil {
		return nil, err
	}
	per, err := b.PerStroke()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Fig. 19",
		Title:      "processing time per stroke by pipeline stage (measured)",
		PaperClaim: "total < 200 ms per stroke; signal processing > 90 % of it",
		Header:     []string{"stage", "time"},
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.2f ms", float64(d)/1e6) }
	t.Rows = append(t.Rows,
		[]string{"STFT", ms(per.STFT)},
		[]string{"Doppler enhancement", ms(per.Enhancement)},
		[]string{"profile extraction", ms(per.Profile)},
		[]string{"segmentation", ms(per.Segmentation)},
		[]string{"DTW matching", ms(per.DTW)},
		[]string{"total", ms(per.Total())},
		[]string{"signal-processing share", pct(b.SignalProcessingShare())},
	)
	t.Notes = append(t.Notes,
		"measured on this host; the paper's Mate 9 numbers scale by its SoC (see Fig. 21 model)")
	return t, nil
}

// Fig20Energy reproduces Fig. 20: battery level over 30 minutes of
// continuous recognition.
func Fig20Energy(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := ewruntime.DefaultEnergyModel()
	// Continuous text entry: the pipeline is busy whenever strokes are
	// being processed; with the paper's usage pattern the DSP duty cycle
	// is high.
	const dutyCycle = 0.8
	levels, err := m.BatteryLevels(30, 5, dutyCycle)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Fig. 20",
		Title:      "battery level during continuous operation",
		PaperClaim: "100% → 87% over 30 minutes (≈0.43%/min)",
		Header:     []string{"minute", "battery"},
	}
	for i, l := range levels {
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", i*5), f1(l) + "%"})
	}
	t.Rows = append(t.Rows, []string{"runtime (full charge)", f2(m.RuntimeHours(dutyCycle)) + " h"})
	t.Notes = append(t.Notes,
		"the paper's prose (3%/5 min, 2.8 h) is inconsistent with its own Fig. 20; the model follows the figure")
	return t, nil
}

// Fig21CPU reproduces Fig. 21: CPU occupancy while recognizing words,
// derived from measured per-stroke processing time through the device
// model.
func Fig21CPU(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b, err := measureStageTimes(cfg)
	if err != nil {
		return nil, err
	}
	per, err := b.PerStroke()
	if err != nil {
		return nil, err
	}
	model := ewruntime.DefaultCPUModel()
	t := &Table{
		ID:         "Fig. 21",
		Title:      "CPU occupancy during continuous word recognition (device model)",
		PaperClaim: "9.5–25.6 %, mean 15.2 %, σ 2.3 %",
		Header:     []string{"writing pace (strokes/s)", "CPU occupancy"},
	}
	var accs []float64
	// Sweep realistic writing paces: casual (0.5 strokes/s) to trained
	// continuous entry (1.3 strokes/s).
	for _, pace := range []float64{0.5, 0.7, 0.9, 1.1, 1.3} {
		interval := time.Duration(float64(time.Second) / pace)
		occ, err := model.Occupancy(per.Total(), interval)
		if err != nil {
			return nil, err
		}
		accs = append(accs, occ)
		t.Rows = append(t.Rows, []string{f2(pace), pct(occ)})
	}
	mean := 0.0
	for _, a := range accs {
		mean += a
	}
	mean /= float64(len(accs))
	t.Rows = append(t.Rows, []string{"mean", pct(mean)})
	t.Notes = append(t.Notes,
		fmt.Sprintf("host per-stroke processing %.1f ms scaled by a %gx Mate 9 slowdown model",
			float64(per.Total())/1e6, model.HostToDeviceSlowdown))
	return t, nil
}
