package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestAblationContourFavorsMVCE(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := AblationContour(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	mvceAcc := parsePct(t, tab.Rows[0][1])
	if mvceAcc < 70 {
		t.Errorf("MVCE accuracy %g%% too low even for the tiny protocol", mvceAcc)
	}
}

func TestAblationTemplates(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := AblationTemplates(tiny())
	if err != nil {
		t.Fatal(err)
	}
	calibrated := parsePct(t, tab.Rows[0][1])
	analytic := parsePct(t, tab.Rows[1][1])
	// Calibrated templates must not be worse than analytic ones.
	if calibrated < analytic-10 {
		t.Errorf("calibrated %g%% clearly worse than analytic %g%%", calibrated, analytic)
	}
}

func TestAblationDownsamplePreservesAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := AblationDownsample(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	full := parsePct(t, tab.Rows[0][1])
	dec8 := parsePct(t, tab.Rows[2][1])
	if dec8 < full-20 {
		t.Errorf("factor-8 accuracy %g%% collapsed vs full %g%%", dec8, full)
	}
	// The band-limited engine made the full-rate STFT cheaper than the
	// FIR decimator, so decimation no longer buys the ~6x the full-FFT
	// engine saw (EXPERIMENTS.md A7). The accuracy check above is the
	// claim this table carries; here only require the front-end cost not
	// to blow up outright.
	sp := strings.TrimSuffix(tab.Rows[2][3], "x")
	v, err := strconv.ParseFloat(sp, 64)
	if err != nil {
		t.Fatalf("parsing speedup %q: %v", tab.Rows[2][3], err)
	}
	if v <= 0.3 {
		t.Errorf("factor-8 front-end speedup %gx, want > 0.3x (decimation should not triple the front-end cost)", v)
	}
}

func TestAblationScoringRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := AblationScoring(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if parsePct(t, row[3]) < 40 {
			t.Errorf("%s top-5 %s unusable", row[0], row[3])
		}
	}
}
