package experiments

import (
	"fmt"

	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/participant"
)

// phraseBlocks returns the Fry-style blocks, trimmed for Quick mode.
func phraseBlocks(cfg Config) ([][]string, error) {
	blocks, err := lexicon.PhraseBlocks(10)
	if err != nil {
		return nil, err
	}
	// Five blocks as in the paper; Quick mode keeps one phrase per block.
	if len(blocks) > 5 {
		blocks = blocks[:5]
	}
	if cfg.Reps < 10 {
		per := cfg.Reps
		if per < 1 {
			per = 1
		}
		for i := range blocks {
			if len(blocks[i]) > per {
				blocks[i] = blocks[i][:per]
			}
		}
	}
	return blocks, nil
}

// Fig16EntrySpeed reproduces Fig. 16: phrase-entry speed per block,
// EchoWrite (novice users) versus a smartwatch soft keyboard.
func Fig16EntrySpeed(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	rec, err := newWordRecognizer(infer.CorrectionPaper)
	if err != nil {
		return nil, err
	}
	blocks, err := phraseBlocks(cfg)
	if err != nil {
		return nil, err
	}
	roster := participant.SixParticipants()[:cfg.Participants]
	t := &Table{
		ID:         "Fig. 16",
		Title:      "phrase-entry speed by block: EchoWrite vs smartwatch keyboard (WPM)",
		PaperClaim: "EchoWrite 7.5 WPM vs touchscreen 5.5 WPM on average",
		Header:     []string{"block", "EchoWrite WPM", "keyboard WPM"},
	}
	var ewAll, kbAll []float64
	for bi, block := range blocks {
		var ew, kb metrics.Speed
		for pi, p := range roster {
			// Novice proficiency: first exposure, as in Fig. 16.
			sp, err := entrySession(eng, rec, p.WithProficiency(0.1), block,
				cfg.Seed+uint64(bi*100+pi))
			if err != nil {
				return nil, err
			}
			ew.Words += sp.Words
			ew.Letters += sp.Letters
			ew.Seconds += sp.Seconds
			ksp := keyboardSpeed(block, 0.1, cfg.Seed+uint64(bi*100+pi))
			kb.Words += ksp.Words
			kb.Letters += ksp.Letters
			kb.Seconds += ksp.Seconds
		}
		ewAll = append(ewAll, ew.WPM())
		kbAll = append(kbAll, kb.WPM())
		t.Rows = append(t.Rows, []string{fmt.Sprintf("B%d", bi+1), f1(ew.WPM()), f1(kb.WPM())})
	}
	t.Rows = append(t.Rows, []string{"average", f1(metrics.Mean(ewAll)), f1(metrics.Mean(kbAll))})
	return t, nil
}

// Fig17LPM reproduces Fig. 17: the same comparison in letters per minute.
func Fig17LPM(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	rec, err := newWordRecognizer(infer.CorrectionPaper)
	if err != nil {
		return nil, err
	}
	blocks, err := phraseBlocks(cfg)
	if err != nil {
		return nil, err
	}
	roster := participant.SixParticipants()[:cfg.Participants]
	t := &Table{
		ID:         "Fig. 17",
		Title:      "letter-entry speed: EchoWrite vs smartwatch keyboard (LPM)",
		PaperClaim: "EchoWrite ≈25.6 LPM vs smartwatch ≈18.8 LPM",
		Header:     []string{"system", "LPM"},
	}
	var ew, kb metrics.Speed
	for bi, block := range blocks {
		for pi, p := range roster {
			sp, err := entrySession(eng, rec, p.WithProficiency(0.1), block,
				cfg.Seed+uint64(7000+bi*100+pi))
			if err != nil {
				return nil, err
			}
			ew.Words += sp.Words
			ew.Letters += sp.Letters
			ew.Seconds += sp.Seconds
			ksp := keyboardSpeed(block, 0.1, cfg.Seed+uint64(7000+bi*100+pi))
			kb.Words += ksp.Words
			kb.Letters += ksp.Letters
			kb.Seconds += ksp.Seconds
		}
	}
	t.Rows = append(t.Rows,
		[]string{"EchoWrite", f1(ew.LPM())},
		[]string{"smartwatch keyboard", f1(kb.LPM())},
	)
	return t, nil
}

// Fig18Training reproduces Fig. 18: WPM and LPM across 15 practice
// sessions (paper: stabilizes at ~16.6 WPM / 55.3 LPM by session 13).
func Fig18Training(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	rec, err := newWordRecognizer(infer.CorrectionPaper)
	if err != nil {
		return nil, err
	}
	blocks, err := phraseBlocks(cfg)
	if err != nil {
		return nil, err
	}
	block := blocks[0]
	roster := participant.SixParticipants()[:cfg.Participants]
	t := &Table{
		ID:         "Fig. 18",
		Title:      "entry speed vs practice session",
		PaperClaim: "grows to ~16.6 WPM / 55.3 LPM, stable from session ~13",
		Header:     []string{"session", "WPM", "LPM"},
	}
	sessions := 15
	for s := 1; s <= sessions; s++ {
		prof := participant.SessionProficiency(s)
		var sp metrics.Speed
		for pi, p := range roster {
			one, err := entrySession(eng, rec, p.WithProficiency(prof), block,
				cfg.Seed+uint64(9000+s*100+pi))
			if err != nil {
				return nil, err
			}
			sp.Words += one.Words
			sp.Letters += one.Letters
			sp.Seconds += one.Seconds
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", s), f1(sp.WPM()), f1(sp.LPM())})
	}
	return t, nil
}
