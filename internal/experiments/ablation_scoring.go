package experiments

import (
	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/infer"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

// AblationScoring compares Algorithm 2's confusion-matrix scoring with
// the likelihood-scoring extension (per-detection DTW softmax) over the
// Table I protocol.
func AblationScoring(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	rec, err := newWordRecognizer(infer.CorrectionPaper)
	if err != nil {
		return nil, err
	}
	confusionTK, err := metrics.NewTopK(5)
	if err != nil {
		return nil, err
	}
	likelihoodTK, err := metrics.NewTopK(5)
	if err != nil {
		return nil, err
	}
	roster := participant.SixParticipants()[:cfg.Participants]
	for pi, p := range roster {
		sess := participant.NewSession(p, cfg.Seed+uint64(pi*7919))
		for wi, w := range TestWords() {
			for r := 0; r < cfg.Reps; r++ {
				seed := cfg.Seed + uint64(pi*1000000+wi*10000+r)
				capRec, err := capture.PerformWord(sess, rec.Dictionary().Scheme(), w,
					acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom), seed)
				if err != nil {
					return nil, err
				}
				out, err := eng.Recognize(capRec.Signal)
				if err != nil {
					return nil, err
				}
				rc, err := rankByConfusion(rec, out, w)
				if err != nil {
					return nil, err
				}
				confusionTK.Record(rc)
				rl, err := rankByLikelihood(rec, out, w)
				if err != nil {
					return nil, err
				}
				likelihoodTK.Record(rl)
			}
		}
	}
	t := &Table{
		ID:     "Ablation A8",
		Title:  "word scoring: confusion matrix (paper) vs per-detection likelihoods",
		Header: []string{"scoring", "top-1", "top-3", "top-5"},
	}
	t.Rows = append(t.Rows,
		[]string{"confusion matrix (paper)", pct(confusionTK.Accuracy(1)), pct(confusionTK.Accuracy(3)), pct(confusionTK.Accuracy(5))},
		[]string{"DTW likelihoods (extension)", pct(likelihoodTK.Accuracy(1)), pct(likelihoodTK.Accuracy(3)), pct(likelihoodTK.Accuracy(5))},
	)
	return t, nil
}

// rankByConfusion returns the intended word's 1-based rank under the
// paper's scorer (0 if absent or no strokes).
func rankByConfusion(rec *infer.Recognizer, out *pipeline.Recognition, word string) (int, error) {
	if len(out.Sequence) == 0 {
		return 0, nil
	}
	cands, err := rec.Recognize(out.Sequence)
	if err != nil {
		return 0, err
	}
	for i, c := range cands {
		if c.Word == word {
			return i + 1, nil
		}
	}
	return 0, nil
}

// rankByLikelihood is rankByConfusion with the likelihood scorer.
func rankByLikelihood(rec *infer.Recognizer, out *pipeline.Recognition, word string) (int, error) {
	if len(out.Sequence) == 0 {
		return 0, nil
	}
	rows := make([][stroke.NumStrokes]float64, len(out.Detections))
	for i, d := range out.Detections {
		rows[i] = d.Likelihoods
	}
	cands, err := rec.RecognizeWithLikelihoods(out.Sequence, rows)
	if err != nil {
		return 0, err
	}
	for i, c := range cands {
		if c.Word == word {
			return i + 1, nil
		}
	}
	return 0, nil
}
