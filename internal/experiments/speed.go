package experiments

import (
	"math/rand/v2"
	"strings"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/infer"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/pipeline"
)

// UI interaction costs for the entry-speed model (seconds). The paper's
// interface shows top-k candidates; an unchosen list auto-accepts the top
// candidate after one second.
const (
	uiSelectTop     = 0.6 // tapping the first candidate
	uiSelectLower   = 1.2 // scanning the list and tapping a lower one
	uiAutoAccept    = 1.0 // the paper's 1-second auto-accept
	uiPredictAccept = 0.8 // accepting a next-word prediction
)

// entrySession simulates a participant entering phrases with EchoWrite
// through the full pipeline, returning the accumulated speed. The
// participant's Proficiency drives both motor speed (via the performance
// model) and two cognitive factors: per-word hesitation while recalling
// the scheme, and how reliably they notice next-word predictions.
func entrySession(eng *pipeline.Engine, rec *infer.Recognizer, p participant.Participant, phrases []string, seed uint64) (*metrics.Speed, error) {
	sess := participant.NewSession(p, seed)
	uiSession := infer.NewSession(rec)
	rng := rand.New(rand.NewPCG(seed, 31))
	prof := p.Proficiency
	hesitation := 2.4*(1-prof)*(1-prof) + 0.2
	predictUse := 0.85 * prof
	var sp metrics.Speed
	for _, phrase := range phrases {
		uiSession.Reset()
		for _, word := range strings.Fields(phrase) {
			r, err := capture.PerformWord(sess, rec.Dictionary().Scheme(), word,
				acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom),
				seed+uint64(rng.IntN(1<<30)))
			if err != nil {
				return nil, err
			}
			out, err := eng.Recognize(r.Signal)
			if err != nil {
				return nil, err
			}
			write := hesitation + r.Performance.Finger.Duration() - 0.55
			if len(out.Sequence) == 0 {
				// Nothing detected: the user sees no candidates and
				// rewrites the word once (counted as double time).
				sp.Add(len(word), 2*write+uiSelectTop)
				continue
			}
			res, err := uiSession.EnterWord(word, out.Sequence)
			if err != nil {
				return nil, err
			}
			var dt float64
			switch {
			case res.Predicted && rng.Float64() < predictUse:
				// The user notices the suggestion and taps it instead of
				// writing.
				dt = uiPredictAccept
			case res.Predicted:
				// Suggestion available but unnoticed: the word is written
				// anyway (it would land at rank 1 as entered text).
				dt = write + uiAutoAccept
			case res.Rank == 1:
				dt = write + uiAutoAccept
			case res.Rank > 1:
				dt = write + uiSelectLower
			default:
				// Wrong word accepted; the user notices and moves on
				// (the paper measures throughput, not error-free text).
				dt = write + uiSelectTop
			}
			sp.Add(len(word), dt)
		}
	}
	return &sp, nil
}

// keyboardSpeed models the baseline: typing the same phrases on a
// smartwatch soft keyboard. Fat-finger errors force re-taps; calibrated
// to the paper's ≈5.5 WPM / ≈18.8 LPM.
func keyboardSpeed(phrases []string, proficiency float64, seed uint64) *metrics.Speed {
	rng := rand.New(rand.NewPCG(seed, 41))
	var sp metrics.Speed
	tapTime := 2.3 - 0.5*proficiency // seconds per intended letter
	errorRate := 0.16 - 0.06*proficiency
	for _, phrase := range phrases {
		for _, word := range strings.Fields(phrase) {
			dt := 0.0
			for range word {
				dt += tapTime * (0.8 + 0.4*rng.Float64())
				if rng.Float64() < errorRate {
					// Delete + re-tap.
					dt += 2 * tapTime * (0.8 + 0.4*rng.Float64())
				}
			}
			dt += tapTime * 0.6 // space / confirm
			sp.Add(len(word), dt)
		}
	}
	return &sp
}
