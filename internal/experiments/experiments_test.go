package experiments

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/testutil/race"
)

// tiny returns the smallest useful protocol for smoke tests.
func tiny() Config { return Config{Reps: 1, Participants: 1, Seed: 1} }

func TestConfigValidate(t *testing.T) {
	if err := Full().Validate(); err != nil {
		t.Error(err)
	}
	if err := Quick().Validate(); err != nil {
		t.Error(err)
	}
	if err := (Config{Reps: 0, Participants: 1}).Validate(); err == nil {
		t.Error("zero reps accepted")
	}
	if err := (Config{Reps: 1, Participants: 7}).Validate(); err == nil {
		t.Error("7 participants accepted")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID:         "Fig. X",
		Title:      "demo",
		PaperClaim: "something",
		Header:     []string{"a", "b"},
		Rows:       [][]string{{"1", "2"}, {"333", "4"}},
		Notes:      []string{"note"},
	}
	out := tab.Render()
	for _, want := range []string{"Fig. X", "demo", "paper:", "333", "note:"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryCoversAllPaperArtifacts(t *testing.T) {
	names := map[string]bool{}
	for _, e := range All() {
		if names[e.Name] {
			t.Errorf("duplicate experiment %q", e.Name)
		}
		names[e.Name] = true
	}
	// Every evaluation figure and table of the paper must be present.
	for _, want := range []string{
		"fig4", "fig5", "fig6", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "table1", "fig14", "fig15", "fig16", "fig17", "fig18",
		"fig19", "fig20", "fig21",
	} {
		if !names[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	// Plus the six design-decision ablations.
	ablations := 0
	for n := range names {
		if strings.HasPrefix(n, "ablation-") {
			ablations++
		}
	}
	if ablations < 6 {
		t.Errorf("only %d ablations registered, want >= 6", ablations)
	}
	if Find("fig12") == nil {
		t.Error("Find failed on fig12")
	}
	if Find("nonexistent") != nil {
		t.Error("Find invented an experiment")
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestFig04LearnabilityCurve(t *testing.T) {
	tab, err := Fig04Learnability(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 15 {
		t.Fatalf("got %d rows, want 15 minutes", len(tab.Rows))
	}
	first := parsePct(t, tab.Rows[0][1])
	last := parsePct(t, tab.Rows[14][1])
	if last <= first {
		t.Errorf("no learning: %g%% → %g%%", first, last)
	}
	if last < 93 {
		t.Errorf("final accuracy %g%%, want ≳95 (paper: 98)", last)
	}
}

func TestFig05SpeedNearPaper(t *testing.T) {
	tab, err := Fig05LearnSpeed(Quick())
	if err != nil {
		t.Fatal(err)
	}
	avgRow := tab.Rows[len(tab.Rows)-1]
	wpm, err := strconv.ParseFloat(avgRow[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if wpm < 8 || wpm > 14 {
		t.Errorf("learnability speed %g WPM, paper ≈11", wpm)
	}
}

func TestFig06Accuracy(t *testing.T) {
	tab, err := Fig06LearnAccuracy(Quick())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if sa := parsePct(t, row[1]); sa < 95 {
			t.Errorf("%s stroke accuracy %g%%, want high after practice", row[0], sa)
		}
	}
}

func TestTable1Words(t *testing.T) {
	tab, err := Table1Words(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 10 {
		t.Fatalf("Table I has %d words, want 10", len(tab.Rows))
	}
}

func TestFig08Stages(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig08PipelineStages(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("got %d stages", len(tab.Rows))
	}
	// Binarization must keep only a small fraction of pixels.
	if frac := parsePct(t, tab.Rows[2][3]); frac > 25 {
		t.Errorf("binary stage keeps %g%% of pixels — not concentrated", frac)
	}
}

func TestFig09ProfilesMatch(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig09Profiles(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("got %d strokes", len(tab.Rows))
	}
}

func TestFig10SegmentationQuality(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig10Segmentation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var recall float64
	for _, row := range tab.Rows {
		if row[0] == "recall" {
			recall = parsePct(t, row[1])
		}
	}
	if recall < 80 {
		t.Errorf("segmentation recall %g%%, want high", recall)
	}
}

func TestFig12EnvironmentOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig12Environments(Config{Reps: 2, Participants: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("got %d environments", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		avg := parsePct(t, row[7])
		if avg < 75 {
			t.Errorf("%s average %g%% unexpectedly low", row[0], avg)
		}
	}
}

func TestFig14TopKMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig14TopK(tiny())
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Rows[len(tab.Rows)-1]
	prev := 0.0
	for k := 1; k <= 5; k++ {
		a := parsePct(t, avg[k])
		if a < prev {
			t.Errorf("top-%d (%g) below top-%d (%g)", k, a, k-1, prev)
		}
		prev = a
	}
	if prev < 60 {
		t.Errorf("top-5 average %g%%, want usable", prev)
	}
}

func TestFig16SpeedComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig16EntrySpeed(tiny())
	if err != nil {
		t.Fatal(err)
	}
	avg := tab.Rows[len(tab.Rows)-1]
	ew, err := strconv.ParseFloat(avg[1], 64)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := strconv.ParseFloat(avg[2], 64)
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim: EchoWrite beats the smartwatch keyboard.
	if ew <= kb {
		t.Errorf("EchoWrite %g WPM not faster than keyboard %g WPM", ew, kb)
	}
	if ew < 5 || ew > 12 {
		t.Errorf("novice EchoWrite speed %g WPM, paper ≈7.5", ew)
	}
}

func TestFig19TimingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig19StageTime(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var share float64
	for _, row := range tab.Rows {
		if row[0] == "signal-processing share" {
			share = parsePct(t, row[1])
		}
	}
	// Paper: signal processing dominates (>90 %).
	if share < 90 {
		t.Errorf("signal-processing share %g%%, paper >90%%", share)
	}
}

func TestFig20EnergyShape(t *testing.T) {
	tab, err := Fig20Energy(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Final 30-minute level ≈ 87 %.
	var final float64
	for _, row := range tab.Rows {
		if row[0] == "30" {
			final, _ = strconv.ParseFloat(strings.TrimSuffix(row[1], "%"), 64)
		}
	}
	if final < 85 || final > 89 {
		t.Errorf("battery after 30 min = %g%%, paper 87%%", final)
	}
}

func TestFig21CPUShape(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	tab, err := Fig21CPU(tiny())
	if err != nil {
		t.Fatal(err)
	}
	var mean float64
	for _, row := range tab.Rows {
		if row[0] == "mean" {
			mean = parsePct(t, row[1])
		}
	}
	// Paper: mean 15.2 % within 9.5–25.6 %. The occupancy model feeds on
	// real measured per-stroke wall time, so the race detector's ~5-10×
	// slowdown pushes the mean far above the band; under -race only check
	// that the model produced a sane percentage.
	if race.Enabled {
		if mean <= 0 || mean > 100 {
			t.Errorf("CPU mean %g%% not a valid occupancy under race detector", mean)
		}
		return
	}
	if mean < 8 || mean > 26 {
		t.Errorf("CPU mean %g%% outside the paper's plausible band", mean)
	}
}

func TestEstimateConfusionStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("audio-heavy")
	}
	cm, err := EstimateConfusion(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if cm.OverallAccuracy() < 0.7 {
		t.Errorf("estimated confusion accuracy %g too low", cm.OverallAccuracy())
	}
}
