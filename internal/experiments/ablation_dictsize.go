package experiments

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/stroke"
)

// AblationDictSize evaluates dictionary scale: the embedded ~2k-word base
// vocabulary versus the morphology-expanded ~5k-word one (the paper's
// dictionary size). More words mean denser stroke-sequence collision
// classes, so top-1 should drop while top-5 stays usable.
func AblationDictSize(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Ablation A9",
		Title:      "dictionary scale: base vocabulary vs 5000-word expansion",
		PaperClaim: "the paper's dictionary holds the top 5000 COCA words",
		Header:     []string{"dictionary", "words", "mean collisions", "top-1", "top-3", "top-5"},
	}
	for _, v := range []struct {
		name  string
		words []string
	}{
		{"base (embedded)", lexicon.DefaultWords()},
		{"expanded ×morphology", lexicon.ExpandedWords()},
	} {
		dict, err := lexicon.NewDictionary(stroke.DefaultScheme(), v.words)
		if err != nil {
			return nil, err
		}
		rec, err := infer.NewRecognizer(dict, infer.DefaultConfusion(), nil, infer.DefaultConfig())
		if err != nil {
			return nil, err
		}
		tk, err := metrics.NewTopK(5)
		if err != nil {
			return nil, err
		}
		roster := participant.SixParticipants()[:cfg.Participants]
		for pi, p := range roster {
			sess := participant.NewSession(p, cfg.Seed+uint64(pi*7919))
			for wi, w := range TestWords() {
				for r := 0; r < cfg.Reps; r++ {
					seed := cfg.Seed + uint64(pi*1000000+wi*10000+r)
					oc, err := wordTrial(eng, rec, sess, w, acoustic.Mate9(), acoustic.MeetingRoom, seed)
					if err != nil {
						return nil, err
					}
					tk.Record(oc.rank)
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			v.name,
			fmt.Sprintf("%d", dict.Size()),
			f2(dict.Ambiguity().MeanCollisions),
			pct(tk.Accuracy(1)), pct(tk.Accuracy(3)), pct(tk.Accuracy(5)),
		})
	}
	return t, nil
}
