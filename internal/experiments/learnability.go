package experiments

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/participant"
)

// The paper's §II-A preliminary user study: participants transcribe the
// 300 most frequent COCA words into stroke sequences for 15 minutes,
// seeing each word once, no corrections allowed. Figs. 4–6 report
// per-minute sequence accuracy, words-input speed, and stroke accuracy.
//
// This is a behavioural simulation (no audio): what is under test is the
// input scheme's learnability, which the participant recall model carries.

// learnWordTime returns the seconds a participant needs to write one
// word's stroke sequence after the given practice minutes: per-stroke
// motor time shrinking from ~2.3 s to ~1.15 s (11 WPM at 4.4 letters).
func learnWordTime(p participant.Participant, word string, practicedMin float64, rng *rand.Rand) float64 {
	perStroke := 1.05 + 1.45/(1+practicedMin/2.5)
	jitter := 0.85 + 0.3*rng.Float64()
	return perStroke * float64(len(word)) * jitter * p.SpeedScale
}

// Fig04Learnability reproduces Fig. 4: average stroke-sequence accuracy
// per practice minute over the 15-minute study (→ ≈98 %).
func Fig04Learnability(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dict, err := lexicon.Default()
	if err != nil {
		return nil, err
	}
	words := dict.TopWords(300)
	roster := participant.SixParticipants()[:cfg.Participants]
	t := &Table{
		ID:         "Fig. 4",
		Title:      "stroke-sequence accuracy per practice minute (15-minute study)",
		PaperClaim: "average accuracy reaches ~98% after 15 minutes",
		Header:     []string{"minute", "seq-accuracy"},
	}
	for minute := 1; minute <= 15; minute++ {
		correct, total := 0, 0
		for pi, p := range roster {
			sess := participant.NewSession(p, cfg.Seed+uint64(pi)*77)
			rng := rand.New(rand.NewPCG(cfg.Seed+uint64(minute*100+pi), 3))
			acc := p.RecallAccuracy(float64(minute))
			// Words attempted this minute at the participant's pace.
			elapsed := 0.0
			for elapsed < 60 {
				w := words[rng.IntN(len(words))]
				elapsed += learnWordTime(p, w, float64(minute), rng)
				intended, err := dict.Scheme().Encode(w)
				if err != nil {
					return nil, err
				}
				got := sess.RecallSequence(intended, acc)
				total++
				if got.Equal(intended) {
					correct++
				}
			}
		}
		t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", minute), pct(float64(correct) / float64(total))})
	}
	return t, nil
}

// Fig05LearnSpeed reproduces Fig. 5: per-participant words-input speed
// after the 15-minute practice (paper: ≈11 WPM average).
func Fig05LearnSpeed(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dict, err := lexicon.Default()
	if err != nil {
		return nil, err
	}
	words := dict.TopWords(300)
	roster := participant.SixParticipants()[:cfg.Participants]
	t := &Table{
		ID:         "Fig. 5",
		Title:      "words-input speed per participant after 15-min practice",
		PaperClaim: "participants enter words at ~11 WPM",
		Header:     []string{"participant", "WPM"},
	}
	var all []float64
	for pi, p := range roster {
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(pi)*13, 5))
		var sp metrics.Speed
		for i := 0; i < 60*cfg.Reps/3+20; i++ {
			w := words[rng.IntN(len(words))]
			sp.Add(len(w), learnWordTime(p, w, 15, rng))
		}
		all = append(all, sp.WPM())
		t.Rows = append(t.Rows, []string{p.Name, f1(sp.WPM())})
	}
	t.Rows = append(t.Rows, []string{"average", f1(metrics.Mean(all))})
	return t, nil
}

// Fig06LearnAccuracy reproduces Fig. 6: per-participant stroke-input
// accuracy after practice (paper: ≈90 % word accuracy under the assumed
// 90 % stroke-recognition accuracy; per-stroke recall itself is ~98–99 %).
func Fig06LearnAccuracy(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	dict, err := lexicon.Default()
	if err != nil {
		return nil, err
	}
	words := dict.TopWords(300)
	roster := participant.SixParticipants()[:cfg.Participants]
	t := &Table{
		ID:         "Fig. 6",
		Title:      "stroke-input accuracy per participant after 15-min practice",
		PaperClaim: "word accuracy ≈90% (assumed 90% stroke recognition × sequence accuracy)",
		Header:     []string{"participant", "stroke-acc", "seq-acc", "word-acc (×0.9 assumption)"},
	}
	const assumedStrokeRecognition = 0.90
	for pi, p := range roster {
		sess := participant.NewSession(p, cfg.Seed+uint64(pi)*31)
		rng := rand.New(rand.NewPCG(cfg.Seed+uint64(pi), 7))
		acc := p.RecallAccuracy(15)
		okStrokes, totStrokes := 0, 0
		okSeq, totSeq := 0, 0
		for i := 0; i < 100*cfg.Reps/3+30; i++ {
			w := words[rng.IntN(len(words))]
			intended, err := dict.Scheme().Encode(w)
			if err != nil {
				return nil, err
			}
			got := sess.RecallSequence(intended, acc)
			totSeq++
			if got.Equal(intended) {
				okSeq++
			}
			for j := range intended {
				totStrokes++
				if got[j] == intended[j] {
					okStrokes++
				}
			}
		}
		sa := float64(okStrokes) / float64(totStrokes)
		qa := float64(okSeq) / float64(totSeq)
		t.Rows = append(t.Rows, []string{
			p.Name, pct(sa), pct(qa), pct(qa * assumedStrokeRecognition),
		})
	}
	t.Notes = append(t.Notes,
		"the paper multiplies sequence accuracy by an assumed 90% stroke-recognition rate (its footnote 2)")
	return t, nil
}
