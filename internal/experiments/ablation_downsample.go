package experiments

import (
	"fmt"
	"time"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/downsample"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

// AblationDownsample evaluates the §VII-A bandpass-sampling optimization:
// stroke accuracy and measured STFT time at the full rate versus factor-4
// and factor-8 decimation.
func AblationDownsample(cfg Config) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Ablation A7",
		Title:      "bandpass-sampling front-end (paper §VII-A future work)",
		PaperClaim: "downsampling should cut the dominant STFT cost without altering the method",
		Header:     []string{"front-end", "stroke accuracy", "STFT per stroke", "speedup"},
	}
	type variant struct {
		name   string
		factor int
	}
	var baseSTFT time.Duration
	for _, v := range []variant{{"full rate (8192-pt FFT)", 0}, {"decimate ×4 (2048-pt)", 4}, {"decimate ×8 (1024-pt)", 8}} {
		acc, stftTime, err := downsampleTrial(cfg, v.factor)
		if err != nil {
			return nil, err
		}
		if v.factor == 0 {
			baseSTFT = stftTime
		}
		speedup := "1.0x"
		if v.factor != 0 && stftTime > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(baseSTFT)/float64(stftTime))
		}
		t.Rows = append(t.Rows, []string{
			v.name, pct(acc), fmt.Sprintf("%.2f ms", float64(stftTime)/1e6), speedup,
		})
	}
	t.Notes = append(t.Notes, "decimated variants include the FIR bandpass+decimate cost in their STFT column")
	t.Notes = append(t.Notes, "the band-limited engine (DESIGN.md 12) makes the full-rate STFT cheap enough that the decimator dominates; accuracy preservation is the claim this table carries")
	return t, nil
}

// downsampleTrial measures accuracy and per-stroke STFT(+front-end) time
// for a given decimation factor (0 = full-rate baseline).
func downsampleTrial(cfg Config, factor int) (float64, time.Duration, error) {
	var (
		eng *pipeline.Engine
		fe  *downsample.Frontend
		err error
	)
	if factor == 0 {
		eng, err = newCalibratedEngine()
	} else {
		fe, err = downsample.New(pipeline.DefaultConfig(), factor, 127)
		if err != nil {
			return 0, 0, err
		}
		eng, err = fe.CalibratedEngine()
	}
	if err != nil {
		return 0, 0, err
	}
	roster := participant.SixParticipants()[:cfg.Participants]
	cm := &metrics.ConfusionMatrix{}
	var stftTotal time.Duration
	strokes := 0
	for pi, p := range roster {
		sess := participant.NewSession(p, cfg.Seed+uint64(pi*53))
		for _, st := range stroke.AllStrokes() {
			for r := 0; r < cfg.Reps; r++ {
				rec, err := capture.Perform(sess, stroke.Sequence{st}, acoustic.Mate9(),
					acoustic.StandardEnvironment(acoustic.MeetingRoom),
					cfg.Seed+uint64(pi*10000+int(st)*100+r))
				if err != nil {
					return 0, 0, err
				}
				sig := rec.Signal
				var feTime time.Duration
				if fe != nil {
					t0 := time.Now()
					sig, err = fe.Process(sig)
					feTime = time.Since(t0)
					if err != nil {
						return 0, 0, err
					}
				}
				out, err := eng.Recognize(sig)
				if err != nil {
					return 0, 0, err
				}
				stftTotal += out.Timings.STFT + feTime
				strokes++
				if len(out.Detections) == 1 {
					if err := cm.Add(st, out.Detections[0].Stroke); err != nil {
						return 0, 0, err
					}
				} else if err := cm.AddMiss(st); err != nil {
					return 0, 0, err
				}
			}
		}
	}
	return cm.OverallAccuracy(), stftTotal / time.Duration(max(strokes, 1)), nil
}
