package experiments

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/stroke"
)

// Fig11Devices reproduces Fig. 11: stroke-recognition accuracy on the
// smartphone (Mate 9 class) versus the smartwatch (Watch 2 class, offline
// processing in the paper).
func Fig11Devices(cfg Config) (*Table, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Fig. 11",
		Title:      "stroke accuracy by device",
		PaperClaim: "smartphone 94.7%, smartwatch 94.4% (near-identical)",
		Header:     []string{"device", "accuracy", "instances"},
	}
	for _, dev := range []acoustic.DeviceProfile{acoustic.Mate9(), acoustic.Watch2()} {
		total := &metrics.ConfusionMatrix{}
		for _, env := range environments() {
			cm, _, err := strokeProtocol(eng, cfg, dev, env)
			if err != nil {
				return nil, err
			}
			total.Merge(cm)
		}
		n := 0
		for _, s := range stroke.AllStrokes() {
			n += total.RowTotal(s)
		}
		t.Rows = append(t.Rows, []string{dev.Name, pct(total.OverallAccuracy()), fmt.Sprintf("%d", n)})
	}
	return t, nil
}

// Fig12Environments reproduces Fig. 12: per-stroke accuracy in the three
// environments.
func Fig12Environments(cfg Config) (*Table, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:         "Fig. 12",
		Title:      "per-stroke accuracy by environment",
		PaperClaim: "averages 94.4% (meeting), 94.9% (lab), 93.2% (resting); min 87.8% (S5, resting)",
		Header:     []string{"environment", "S1", "S2", "S3", "S4", "S5", "S6", "avg"},
	}
	for _, env := range environments() {
		cm, _, err := strokeProtocol(eng, cfg, acoustic.Mate9(), env)
		if err != nil {
			return nil, err
		}
		row := []string{env.String()}
		for _, s := range stroke.AllStrokes() {
			row = append(row, pct(cm.Accuracy(s)))
		}
		row = append(row, pct(cm.OverallAccuracy()))
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig13Participants reproduces Fig. 13: per-participant accuracy over all
// settings (paper: 95.6/93.5/93.1/93.0/94.8/95.0, σ≈1.1%).
func Fig13Participants(cfg Config) (*Table, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	roster := participant.SixParticipants()[:cfg.Participants]
	totals := make([]*metrics.ConfusionMatrix, len(roster))
	for i := range totals {
		totals[i] = &metrics.ConfusionMatrix{}
	}
	for _, env := range environments() {
		_, perP, err := strokeProtocol(eng, cfg, acoustic.Mate9(), env)
		if err != nil {
			return nil, err
		}
		for i := range perP {
			totals[i].Merge(perP[i])
		}
	}
	t := &Table{
		ID:         "Fig. 13",
		Title:      "per-participant stroke accuracy over all settings",
		PaperClaim: "95.6/93.5/93.1/93.0/94.8/95.0 %, max gap 2.6 pp, σ ≈ 1.1 pp",
		Header:     []string{"participant", "accuracy"},
	}
	var accs []float64
	for i, p := range roster {
		a := totals[i].OverallAccuracy()
		accs = append(accs, a)
		t.Rows = append(t.Rows, []string{p.Name, pct(a)})
	}
	t.Rows = append(t.Rows,
		[]string{"mean", pct(metrics.Mean(accs))},
		[]string{"stddev", fmt.Sprintf("%.1f pp", 100*metrics.StdDev(accs))},
	)
	return t, nil
}

// EstimateConfusion runs the stroke protocol across all environments and
// returns the empirical confusion model — the P(sᵢ|lᵢ) source Algorithm 2
// uses.
func EstimateConfusion(cfg Config) (*metrics.ConfusionMatrix, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	total := &metrics.ConfusionMatrix{}
	for _, env := range environments() {
		cm, _, err := strokeProtocol(eng, cfg, acoustic.Mate9(), env)
		if err != nil {
			return nil, err
		}
		total.Merge(cm)
	}
	return total, nil
}
