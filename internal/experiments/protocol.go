package experiments

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/capture"
	"repro/internal/infer"
	"repro/internal/lexicon"
	"repro/internal/metrics"
	"repro/internal/participant"
	"repro/internal/pipeline"
	"repro/internal/stroke"
)

// strokeProtocol runs the paper's §IV-B stroke-recognition protocol: each
// participant performs each stroke Reps times on the given device in the
// given environment, and every instance goes through the full pipeline.
// It returns the confusion matrix plus per-participant matrices indexed
// by roster position.
func strokeProtocol(eng *pipeline.Engine, cfg Config, dev acoustic.DeviceProfile, env acoustic.EnvironmentKind) (*metrics.ConfusionMatrix, []*metrics.ConfusionMatrix, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	roster := participant.SixParticipants()[:cfg.Participants]
	total := &metrics.ConfusionMatrix{}
	perP := make([]*metrics.ConfusionMatrix, len(roster))
	for pi, p := range roster {
		perP[pi] = &metrics.ConfusionMatrix{}
		sess := participant.NewSession(p, cfg.Seed+uint64(1000*pi)+uint64(17*int(env)))
		for _, st := range stroke.AllStrokes() {
			for r := 0; r < cfg.Reps; r++ {
				seed := cfg.Seed + uint64(pi*100000+int(env)*10000+int(st)*100+r)
				rec, err := capture.Perform(sess, stroke.Sequence{st}, dev,
					acoustic.StandardEnvironment(env), seed)
				if err != nil {
					return nil, nil, err
				}
				out, err := eng.Recognize(rec.Signal)
				if err != nil {
					return nil, nil, fmt.Errorf("experiments: recognize %v: %w", st, err)
				}
				if len(out.Detections) == 1 {
					if err := total.Add(st, out.Detections[0].Stroke); err != nil {
						return nil, nil, err
					}
					if err := perP[pi].Add(st, out.Detections[0].Stroke); err != nil {
						return nil, nil, err
					}
				} else {
					if err := total.AddMiss(st); err != nil {
						return nil, nil, err
					}
					if err := perP[pi].AddMiss(st); err != nil {
						return nil, nil, err
					}
				}
			}
		}
	}
	return total, perP, nil
}

// wordOutcome is the result of one word-entry trial.
type wordOutcome struct {
	// rank is the 1-based rank of the intended word among candidates
	// (0 = absent).
	rank int
	// strokes is the recognized sequence length.
	strokes int
	// writeSeconds is the finger-motion time for the word.
	writeSeconds float64
}

// wordTrial synthesizes one writing of word, recognizes it, and ranks the
// intended word among the candidates.
func wordTrial(eng *pipeline.Engine, rec *infer.Recognizer, sess *participant.Session, word string, dev acoustic.DeviceProfile, env acoustic.EnvironmentKind, seed uint64) (*wordOutcome, error) {
	r, err := capture.PerformWord(sess, rec.Dictionary().Scheme(), word, dev, acoustic.StandardEnvironment(env), seed)
	if err != nil {
		return nil, err
	}
	out, err := eng.Recognize(r.Signal)
	if err != nil {
		return nil, err
	}
	oc := &wordOutcome{
		strokes:      len(out.Sequence),
		writeSeconds: r.Signal.Duration(),
	}
	if len(out.Sequence) == 0 {
		return oc, nil
	}
	cands, err := rec.Recognize(out.Sequence)
	if err != nil {
		return nil, err
	}
	for i, c := range cands {
		if c.Word == word {
			oc.rank = i + 1
			break
		}
	}
	return oc, nil
}

// newWordRecognizer builds the standard inference stack used by the word
// experiments.
func newWordRecognizer(scope infer.CorrectionScope) (*infer.Recognizer, error) {
	dict, err := lexicon.Default()
	if err != nil {
		return nil, err
	}
	cfg := infer.DefaultConfig()
	cfg.Correction = scope
	return infer.NewRecognizer(dict, infer.DefaultConfusion(), lexicon.DefaultBigram(), cfg)
}
