package experiments

import (
	"repro/internal/acoustic"
	"repro/internal/metrics"
)

// ScenarioAccuracy extends the paper's environment sweep (Fig. 12) to
// the soak harness's scenario matrix (internal/scenario): per-stroke
// recognition accuracy in every simulated environment — including the
// adversarial café-babble, vehicle-cabin and second-writer additions —
// on each device class the matrix drives. Not a paper artifact; it
// quantifies how hard each soak cell is, so a load-test accuracy
// regression can be read against an expected baseline.
func ScenarioAccuracy(cfg Config) (*Table, error) {
	eng, err := newCalibratedEngine()
	if err != nil {
		return nil, err
	}
	devices := []acoustic.DeviceProfile{acoustic.Mate9(), acoustic.TabletM5(), acoustic.BudgetPhone()}
	t := &Table{
		ID:     "Scenario",
		Title:  "stroke accuracy per scenario-matrix environment and device",
		Header: []string{"environment"},
		Notes: []string{
			"beyond the paper: café/cabin/second-writer environments and tablet/budget devices stress the soak matrix",
		},
	}
	totals := make([]*metrics.ConfusionMatrix, len(devices))
	for i, dev := range devices {
		t.Header = append(t.Header, dev.Name)
		totals[i] = &metrics.ConfusionMatrix{}
	}
	for _, env := range acoustic.AllEnvironmentKinds() {
		row := []string{env.Slug()}
		for di, dev := range devices {
			cm, _, err := strokeProtocol(eng, cfg, dev, env)
			if err != nil {
				return nil, err
			}
			totals[di].Merge(cm)
			row = append(row, pct(cm.OverallAccuracy()))
		}
		t.Rows = append(t.Rows, row)
	}
	mean := []string{"mean"}
	for _, total := range totals {
		mean = append(mean, pct(total.OverallAccuracy()))
	}
	t.Rows = append(t.Rows, mean)
	return t, nil
}
