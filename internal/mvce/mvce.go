// Package mvce implements the paper's mean value-based contour extraction
// (Algorithm 1): reducing a cleaned, binarized spectrogram to a
// one-dimensional Doppler-shift profile, one value per frame.
//
// The challenge MVCE addresses is multipath: echoes from the hand, arm and
// body produce lower-shift energy alongside the finger's. MVCE first uses
// the mean of a frame's active bins to decide the overall movement
// direction (above or below the carrier), then picks the extreme bin in
// that direction — the finger, the fastest-moving part.
package mvce

import (
	"fmt"

	"repro/internal/dsp"
)

// Config parameterizes extraction.
type Config struct {
	// CarrierBin is the local bin index of the probe tone within the
	// matrix columns (the "cf" of Algorithm 1). It may be fractional when
	// the carrier falls between bins.
	CarrierBin float64
	// BinWidthHz converts bin offsets to Hz (sampleRate / fftSize).
	BinWidthHz float64
	// SmoothWindow is the moving-average window applied to the raw
	// profile (paper: 3). Zero means 3; 1 disables smoothing.
	SmoothWindow int
	// Invert negates extracted shifts. Bandpass-sampled front-ends whose
	// band of interest folds from an odd Nyquist zone arrive spectrally
	// inverted (higher true frequency → lower aliased bin); setting
	// Invert restores the physical sign convention.
	Invert bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BinWidthHz <= 0 {
		return fmt.Errorf("mvce: bin width must be positive, got %g", c.BinWidthHz)
	}
	if c.SmoothWindow < 0 || (c.SmoothWindow > 0 && c.SmoothWindow%2 == 0) {
		return fmt.Errorf("mvce: smooth window must be odd and positive, got %d", c.SmoothWindow)
	}
	return nil
}

// Extract runs Algorithm 1 over a binarized spectrogram (bin[frame][freqBin],
// 1 = active) and returns the Doppler-shift profile in Hz per frame:
// positive above the carrier (approaching finger), zero where a frame has
// no active pixels.
//
// ew:hotpath — contour extraction re-runs over the window every feed;
// the hotalloc analyzer keeps per-column allocations out of it.
func Extract(bin [][]uint8, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(bin) == 0 {
		return nil, fmt.Errorf("mvce: empty spectrogram")
	}
	window := cfg.SmoothWindow
	if window == 0 {
		window = 3
	}
	raw := make([]float64, len(bin))
	for i, col := range bin {
		sum, count := 0.0, 0
		minBin, maxBin := -1, -1
		for b, v := range col {
			if v == 0 {
				continue
			}
			sum += float64(b)
			count++
			if minBin < 0 {
				minBin = b
			}
			maxBin = b
		}
		if count == 0 {
			raw[i] = 0 // DopShift initialized to cf → zero shift.
			continue
		}
		mean := sum / float64(count)
		var pick float64
		if mean > cfg.CarrierBin {
			pick = float64(maxBin)
		} else {
			pick = float64(minBin)
		}
		raw[i] = (pick - cfg.CarrierBin) * cfg.BinWidthHz
		if cfg.Invert {
			raw[i] = -raw[i]
		}
	}
	if window == 1 {
		return raw, nil
	}
	smoothed, err := dsp.MovingAverage(raw, window)
	if err != nil {
		return nil, fmt.Errorf("mvce: smoothing: %w", err)
	}
	return smoothed, nil
}

// ExtractMaxBin is the naive contour extractor the paper argues against
// (§III-B): it picks the bin with the maximum absolute shift regardless of
// the dominant direction, making it fragile to single-pixel fluctuations
// on the far side of the carrier. Kept for the ablation benchmark.
func ExtractMaxBin(bin [][]uint8, cfg Config) ([]float64, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(bin) == 0 {
		return nil, fmt.Errorf("mvce: empty spectrogram")
	}
	window := cfg.SmoothWindow
	if window == 0 {
		window = 3
	}
	raw := make([]float64, len(bin))
	for i, col := range bin {
		best := 0.0
		found := false
		for b, v := range col {
			if v == 0 {
				continue
			}
			shift := (float64(b) - cfg.CarrierBin) * cfg.BinWidthHz
			if !found || abs(shift) > abs(best) {
				best = shift
				found = true
			}
		}
		if found {
			raw[i] = best
			if cfg.Invert {
				raw[i] = -raw[i]
			}
		}
	}
	if window == 1 {
		return raw, nil
	}
	smoothed, err := dsp.MovingAverage(raw, window)
	if err != nil {
		return nil, fmt.Errorf("mvce: smoothing: %w", err)
	}
	return smoothed, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
