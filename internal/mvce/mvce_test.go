package mvce

import (
	"math"
	"testing"
)

// mk builds a binary spectrogram matrix frame×bin.
func mk(frames, bins int, active func(f, b int) bool) [][]uint8 {
	m := make([][]uint8, frames)
	for f := range m {
		m[f] = make([]uint8, bins)
		for b := range m[f] {
			if active(f, b) {
				m[f][b] = 1
			}
		}
	}
	return m
}

func cfg() Config {
	return Config{CarrierBin: 10, BinWidthHz: 5, SmoothWindow: 1}
}

func TestConfigValidate(t *testing.T) {
	if err := cfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := cfg()
	bad.BinWidthHz = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero bin width accepted")
	}
	bad = cfg()
	bad.SmoothWindow = 2
	if err := bad.Validate(); err == nil {
		t.Error("even smooth window accepted")
	}
}

func TestExtractEmptyInput(t *testing.T) {
	if _, err := Extract(nil, cfg()); err == nil {
		t.Error("empty spectrogram accepted")
	}
}

func TestExtractQuietFramesAreZero(t *testing.T) {
	m := mk(5, 21, func(f, b int) bool { return false })
	p, err := Extract(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range p {
		if v != 0 {
			t.Errorf("frame %d = %g, want 0", i, v)
		}
	}
}

func TestExtractPositiveDirectionPicksMax(t *testing.T) {
	// Active bins 13..16, all above carrier (10) → mean > cf → pick max
	// bin 16 → shift (16-10)*5 = 30 Hz.
	m := mk(1, 21, func(f, b int) bool { return b >= 13 && b <= 16 })
	p, err := Extract(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != 30 {
		t.Errorf("shift = %g, want 30", p[0])
	}
}

func TestExtractNegativeDirectionPicksMin(t *testing.T) {
	m := mk(1, 21, func(f, b int) bool { return b >= 3 && b <= 7 })
	p, err := Extract(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != (3-10)*5 {
		t.Errorf("shift = %g, want %g", p[0], float64((3-10)*5))
	}
}

func TestExtractMultipathPicksFingerExtreme(t *testing.T) {
	// The MVCE design case: a slow arm blob (bins 11-12) and a fast
	// finger blob (bins 15-17), both above carrier. The mean is above cf
	// so the extractor must return the fastest (max) bin — the finger.
	m := mk(1, 21, func(f, b int) bool {
		return (b >= 11 && b <= 12) || (b >= 15 && b <= 17)
	})
	p, err := Extract(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != (17-10)*5 {
		t.Errorf("shift = %g, want %g (finger extreme)", p[0], float64((17-10)*5))
	}
}

func TestExtractDirectionVote(t *testing.T) {
	// Majority below the carrier pulls the vote negative even when a
	// stray pixel sits above.
	m := mk(1, 21, func(f, b int) bool {
		return b == 2 || b == 3 || b == 4 || b == 14
	})
	p, err := Extract(m, cfg())
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != (2-10)*5 {
		t.Errorf("shift = %g, want %g", p[0], float64((2-10)*5))
	}
}

func TestExtractSmoothing(t *testing.T) {
	// Default window (3) averages neighbors.
	m := mk(3, 21, func(f, b int) bool {
		switch f {
		case 0:
			return b == 12
		case 1:
			return b == 14
		default:
			return b == 16
		}
	})
	c := cfg()
	c.SmoothWindow = 0 // default = 3
	p, err := Extract(m, c)
	if err != nil {
		t.Fatal(err)
	}
	// Raw shifts: 10, 20, 30 → smoothed center = 20.
	if p[1] != 20 {
		t.Errorf("smoothed center = %g, want 20", p[1])
	}
	if math.Abs(p[0]-15) > 1e-9 {
		t.Errorf("smoothed edge = %g, want 15", p[0])
	}
}

func TestExtractMaxBinDiffersFromMVCE(t *testing.T) {
	// A spurious far-side pixel near enough not to flip the mean vote:
	// MVCE follows the majority direction; max-bin jumps to the outlier
	// because its |shift| is larger. This is the fluctuation fragility
	// the paper cites (§III-B).
	m := mk(1, 41, func(f, b int) bool {
		return b == 23 || b == 24 || b == 25 || b == 26 || b == 10
	})
	c := Config{CarrierBin: 20, BinWidthHz: 5, SmoothWindow: 1}
	mvceP, err := Extract(m, c)
	if err != nil {
		t.Fatal(err)
	}
	maxP, err := ExtractMaxBin(m, c)
	if err != nil {
		t.Fatal(err)
	}
	if mvceP[0] != (26-20)*5 {
		t.Errorf("MVCE shift = %g, want %g (majority-side extreme)", mvceP[0], float64((26-20)*5))
	}
	if maxP[0] != (10-20)*5 {
		t.Errorf("max-bin shift = %g, want %g (outlier)", maxP[0], float64((10-20)*5))
	}
}

func TestExtractMaxBinEmptyAndErrors(t *testing.T) {
	if _, err := ExtractMaxBin(nil, cfg()); err == nil {
		t.Error("empty accepted")
	}
	bad := cfg()
	bad.BinWidthHz = -1
	if _, err := ExtractMaxBin(mk(1, 5, func(f, b int) bool { return false }), bad); err == nil {
		t.Error("invalid config accepted")
	}
}
