package geom

import "fmt"

// ArcLength numerically integrates the path length of tr over [t0, t1]
// using the given number of linear segments (≥1). Writing-speed and
// gesture-size statistics in the participant models build on this.
func ArcLength(tr Trajectory, t0, t1 float64, steps int) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("geom: arc-length steps must be >= 1, got %d", steps)
	}
	if t1 < t0 {
		return 0, fmt.Errorf("geom: arc-length interval [%g, %g] inverted", t0, t1)
	}
	dt := (t1 - t0) / float64(steps)
	total := 0.0
	prev := tr.At(t0)
	for i := 1; i <= steps; i++ {
		cur := tr.At(t0 + float64(i)*dt)
		total += cur.Dist(prev)
		prev = cur
	}
	return total, nil
}

// PathLength is ArcLength over the trajectory's whole domain with a
// resolution of 512 segments.
func PathLength(tr Trajectory) (float64, error) {
	return ArcLength(tr, 0, tr.Duration(), 512)
}

// PeakSpeed samples the trajectory's speed (m/s) at the given resolution
// and returns the maximum. Useful for checking gestures against the
// paper's 4 m/s finger-speed bound.
func PeakSpeed(tr Trajectory, steps int) (float64, error) {
	if steps < 2 {
		return 0, fmt.Errorf("geom: peak-speed steps must be >= 2, got %d", steps)
	}
	dt := tr.Duration() / float64(steps)
	if dt <= 0 {
		return 0, nil
	}
	peak := 0.0
	prev := tr.At(0)
	for i := 1; i <= steps; i++ {
		cur := tr.At(float64(i) * dt)
		if v := cur.Dist(prev) / dt; v > peak {
			peak = v
		}
		prev = cur
	}
	return peak, nil
}
