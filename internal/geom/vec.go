// Package geom supplies the small geometry toolkit behind the acoustic
// simulator: 3-D vectors, minimum-jerk motion profiles and sampled
// trajectories with arc-length parameterization.
package geom

import "math"

// Vec3 is a point or direction in 3-D space, in meters. The device sits at
// the origin; by convention X points right along the device, Y away from
// the screen (toward the writing finger), and Z up.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns |v − w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// Lerp linearly interpolates from v to w by t in [0, 1].
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return Vec3{
		v.X + (w.X-v.X)*t,
		v.Y + (w.Y-v.Y)*t,
		v.Z + (w.Z-v.Z)*t,
	}
}
