package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArcLengthStraightLine(t *testing.T) {
	tr, err := NewPolyTrajectory([]Waypoint{
		{T: 0, Pos: Vec3{0, 0, 0}},
		{T: 1, Pos: Vec3{3, 4, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A straight segment has length 5 regardless of the easing profile.
	l, err := ArcLength(tr, 0, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-5) > 1e-6 {
		t.Errorf("length = %g, want 5", l)
	}
	// Partial interval is shorter.
	half, err := ArcLength(tr, 0, 0.5, 256)
	if err != nil {
		t.Fatal(err)
	}
	if half >= l {
		t.Errorf("half interval %g not shorter than full %g", half, l)
	}
}

func TestArcLengthValidation(t *testing.T) {
	st := &StaticTrajectory{Pos: Vec3{}, Dur: 1}
	if _, err := ArcLength(st, 0, 1, 0); err == nil {
		t.Error("zero steps accepted")
	}
	if _, err := ArcLength(st, 1, 0, 8); err == nil {
		t.Error("inverted interval accepted")
	}
	l, err := ArcLength(st, 0, 1, 8)
	if err != nil || l != 0 {
		t.Errorf("static trajectory length = %g, %v", l, err)
	}
}

func TestPathLengthCurve(t *testing.T) {
	// A quarter unit circle has length π/2.
	c, err := NewCurveTrajectory(Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 0, math.Pi/2, 1)
	if err != nil {
		t.Fatal(err)
	}
	l, err := PathLength(c)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l-math.Pi/2) > 1e-3 {
		t.Errorf("quarter-circle length = %g, want %g", l, math.Pi/2)
	}
}

func TestArcLengthMonotoneInIntervalProperty(t *testing.T) {
	tr, err := NewPolyTrajectory([]Waypoint{
		{T: 0, Pos: Vec3{0, 0, 0}},
		{T: 1, Pos: Vec3{1, 2, 3}},
		{T: 2, Pos: Vec3{-1, 0, 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(aRaw, bRaw uint16) bool {
		a := 2 * float64(aRaw) / 65535
		b := 2 * float64(bRaw) / 65535
		if a > b {
			a, b = b, a
		}
		inner, err := ArcLength(tr, a, b, 64)
		if err != nil {
			return false
		}
		outer, err := ArcLength(tr, 0, 2, 64)
		if err != nil {
			return false
		}
		return inner <= outer+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPeakSpeed(t *testing.T) {
	tr, err := NewPolyTrajectory([]Waypoint{
		{T: 0, Pos: Vec3{0, 0, 0}},
		{T: 1, Pos: Vec3{1, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Minimum-jerk peak speed over a unit move in unit time is 1.875.
	v, err := PeakSpeed(tr, 2048)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1.875) > 0.01 {
		t.Errorf("peak speed = %g, want 1.875", v)
	}
	if _, err := PeakSpeed(tr, 1); err == nil {
		t.Error("single step accepted")
	}
}
