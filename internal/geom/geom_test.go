package geom

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestVecOps(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, -5, 6}
	if got := a.Add(b); got != (Vec3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != 1*4-2*5+3*6 {
		t.Errorf("Dot = %g", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %g", got)
	}
	if got := (Vec3{1, 0, 0}).Dist(Vec3{4, 4, 0}); got != 5 {
		t.Errorf("Dist = %g", got)
	}
	if got := a.Lerp(b, 0); got != a {
		t.Errorf("Lerp(0) = %v", got)
	}
	if got := a.Lerp(b, 1); got != b {
		t.Errorf("Lerp(1) = %v", got)
	}
	mid := a.Lerp(b, 0.5)
	if mid != (Vec3{2.5, -1.5, 4.5}) {
		t.Errorf("Lerp(0.5) = %v", mid)
	}
}

func TestMinimumJerkBoundaries(t *testing.T) {
	if MinimumJerk(0) != 0 || MinimumJerk(1) != 1 {
		t.Error("endpoints wrong")
	}
	if MinimumJerk(-1) != 0 || MinimumJerk(2) != 1 {
		t.Error("clamping wrong")
	}
	if MinimumJerkVelocity(0) != 0 || MinimumJerkVelocity(1) != 0 {
		t.Error("boundary velocities must be zero")
	}
	// Peak velocity is 1.875 at t=0.5.
	if v := MinimumJerkVelocity(0.5); math.Abs(v-1.875) > 1e-12 {
		t.Errorf("peak velocity = %g, want 1.875", v)
	}
}

func TestMinimumJerkMonotoneProperty(t *testing.T) {
	// Property: s(t) is nondecreasing on [0,1].
	f := func(aRaw, bRaw uint16) bool {
		a := float64(aRaw) / 65535
		b := float64(bRaw) / 65535
		if a > b {
			a, b = b, a
		}
		return MinimumJerk(a) <= MinimumJerk(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinimumJerkVelocityConsistencyProperty(t *testing.T) {
	// Property: numeric derivative of MinimumJerk matches
	// MinimumJerkVelocity.
	f := func(raw uint16) bool {
		tt := 0.05 + 0.9*float64(raw)/65535
		const h = 1e-6
		num := (MinimumJerk(tt+h) - MinimumJerk(tt-h)) / (2 * h)
		return math.Abs(num-MinimumJerkVelocity(tt)) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPolyTrajectoryValidation(t *testing.T) {
	if _, err := NewPolyTrajectory(nil); err == nil {
		t.Error("empty waypoints accepted")
	}
	if _, err := NewPolyTrajectory([]Waypoint{{T: 0}}); err == nil {
		t.Error("single waypoint accepted")
	}
	if _, err := NewPolyTrajectory([]Waypoint{{T: 1}, {T: 2}}); err == nil {
		t.Error("nonzero start time accepted")
	}
	if _, err := NewPolyTrajectory([]Waypoint{{T: 0}, {T: 0}}); err == nil {
		t.Error("non-increasing times accepted")
	}
}

func TestPolyTrajectoryEndpointsAndClamping(t *testing.T) {
	a := Vec3{0, 0, 0}
	b := Vec3{1, 0, 0}
	tr, err := NewPolyTrajectory([]Waypoint{{T: 0, Pos: a}, {T: 2, Pos: b}})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Duration() != 2 {
		t.Errorf("Duration = %g", tr.Duration())
	}
	if tr.At(-1) != a || tr.At(0) != a {
		t.Error("start clamp wrong")
	}
	if tr.At(2) != b || tr.At(99) != b {
		t.Error("end clamp wrong")
	}
	// Midpoint follows the minimum-jerk fraction (0.5 at half time).
	mid := tr.At(1)
	if math.Abs(mid.X-0.5) > 1e-12 {
		t.Errorf("mid X = %g, want 0.5", mid.X)
	}
}

func TestPolyTrajectoryZeroVelocityAtWaypoints(t *testing.T) {
	tr, err := NewPolyTrajectory([]Waypoint{
		{T: 0, Pos: Vec3{0, 0, 0}},
		{T: 1, Pos: Vec3{1, 0, 0}},
		{T: 2, Pos: Vec3{1, 1, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-5
	for _, wt := range []float64{0, 1, 2} {
		v := tr.At(wt + h).Sub(tr.At(wt - h)).Scale(1 / (2 * h)).Norm()
		if v > 1e-3 {
			t.Errorf("speed at waypoint t=%g is %g, want ≈0", wt, v)
		}
	}
}

func TestCurveTrajectory(t *testing.T) {
	if _, err := NewCurveTrajectory(Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 0, math.Pi, 0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := NewCurveTrajectory(Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 1, 1, 1); err == nil {
		t.Error("zero angular extent accepted")
	}
	c, err := NewCurveTrajectory(Vec3{}, Vec3{1, 0, 0}, Vec3{0, 1, 0}, 0, math.Pi/2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.At(0); got.Dist(Vec3{1, 0, 0}) > 1e-12 {
		t.Errorf("start = %v", got)
	}
	if got := c.At(2); got.Dist(Vec3{0, 1, 0}) > 1e-12 {
		t.Errorf("end = %v", got)
	}
	// Points stay on the unit circle.
	for _, tt := range []float64{0.3, 0.9, 1.4} {
		if r := c.At(tt).Norm(); math.Abs(r-1) > 1e-12 {
			t.Errorf("radius at t=%g is %g", tt, r)
		}
	}
}

func TestCompositeTrajectory(t *testing.T) {
	if _, err := NewCompositeTrajectory(); err == nil {
		t.Error("empty composite accepted")
	}
	s1 := &StaticTrajectory{Pos: Vec3{1, 0, 0}, Dur: 1}
	leg, err := NewPolyTrajectory([]Waypoint{{T: 0, Pos: Vec3{1, 0, 0}}, {T: 1, Pos: Vec3{2, 0, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	comp, err := NewCompositeTrajectory(s1, leg)
	if err != nil {
		t.Fatal(err)
	}
	if comp.Duration() != 2 {
		t.Errorf("Duration = %g, want 2", comp.Duration())
	}
	if comp.At(0.5) != (Vec3{1, 0, 0}) {
		t.Error("first part not honored")
	}
	if got := comp.At(1.5).X; math.Abs(got-1.5) > 1e-12 {
		t.Errorf("second part mid = %g, want 1.5", got)
	}
	if comp.At(5) != (Vec3{2, 0, 0}) {
		t.Error("end clamp wrong")
	}
	if comp.At(-1) != (Vec3{1, 0, 0}) {
		t.Error("start clamp wrong")
	}
}

func TestRadialSpeed(t *testing.T) {
	// Moving straight away from origin at 2 m/s.
	tr, err := NewPolyTrajectory([]Waypoint{
		{T: 0, Pos: Vec3{1, 0, 0}},
		{T: 1, Pos: Vec3{3, 0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// At mid-time, minimum-jerk speed is 1.875 × mean = 3.75 m/s.
	v := RadialSpeed(tr, Vec3{}, 0.5, 1e-4)
	if math.Abs(v-3.75) > 1e-2 {
		t.Errorf("radial speed = %g, want 3.75", v)
	}
	// Static trajectory has zero radial speed.
	st := &StaticTrajectory{Pos: Vec3{1, 1, 1}, Dur: 1}
	if v := RadialSpeed(st, Vec3{}, 0.5, 1e-4); v != 0 {
		t.Errorf("static radial speed = %g", v)
	}
	// Non-positive dt falls back to a default step without panicking.
	_ = RadialSpeed(st, Vec3{}, 0.5, 0)
}

func TestCompositeArcContinuityProperty(t *testing.T) {
	// Property: composite position is continuous across part boundaries
	// when parts share endpoints.
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 13))
		p0 := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		p1 := Vec3{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		leg1, err := NewPolyTrajectory([]Waypoint{{T: 0, Pos: p0}, {T: 1, Pos: p1}})
		if err != nil {
			return false
		}
		leg2 := &StaticTrajectory{Pos: p1, Dur: 0.5}
		comp, err := NewCompositeTrajectory(leg1, leg2)
		if err != nil {
			return false
		}
		const h = 1e-9
		return comp.At(1-h).Dist(comp.At(1+h)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
