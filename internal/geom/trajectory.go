package geom

import (
	"fmt"
	"math"
)

// MinimumJerk returns the canonical minimum-jerk position fraction for
// normalized time t in [0, 1]:
//
//	s(t) = 10t³ − 15t⁴ + 6t⁵
//
// Human point-to-point reaching movements (including writing strokes)
// closely follow this profile, giving the bell-shaped velocity curve the
// paper's acceleration-based segmentation relies on. Inputs are clamped to
// [0, 1].
func MinimumJerk(t float64) float64 {
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return 1
	}
	t3 := t * t * t
	return 10*t3 - 15*t3*t + 6*t3*t*t
}

// MinimumJerkVelocity returns ds/dt of the minimum-jerk profile, the
// normalized speed at normalized time t (peak 1.875 at t=0.5).
func MinimumJerkVelocity(t float64) float64 {
	if t <= 0 || t >= 1 {
		return 0
	}
	t2 := t * t
	return 30*t2 - 60*t2*t + 30*t2*t2
}

// Trajectory is a time-parameterized 3-D path. Implementations must be
// defined on [0, Duration()].
type Trajectory interface {
	// At returns the position at time t (seconds), clamping t to the
	// trajectory's domain.
	At(t float64) Vec3
	// Duration returns the total time extent in seconds.
	Duration() float64
}

// Waypoint anchors a polyline trajectory: reach Pos at time T.
type Waypoint struct {
	T   float64
	Pos Vec3
}

// PolyTrajectory moves through a sequence of waypoints, easing each leg
// with a minimum-jerk profile so velocity is zero at every waypoint. This
// models a human finger that starts at rest, writes the stroke's segments,
// and stops.
type PolyTrajectory struct {
	points []Waypoint
}

// NewPolyTrajectory validates that waypoints are time-ordered and returns
// the trajectory. At least two waypoints are required.
func NewPolyTrajectory(points []Waypoint) (*PolyTrajectory, error) {
	if len(points) < 2 {
		return nil, fmt.Errorf("geom: polyline needs at least 2 waypoints, got %d", len(points))
	}
	for i := 1; i < len(points); i++ {
		if points[i].T <= points[i-1].T {
			return nil, fmt.Errorf("geom: waypoint %d time %g not after previous %g", i, points[i].T, points[i-1].T)
		}
	}
	if points[0].T != 0 {
		return nil, fmt.Errorf("geom: first waypoint must be at t=0, got %g", points[0].T)
	}
	return &PolyTrajectory{points: append([]Waypoint(nil), points...)}, nil
}

// At implements Trajectory.
func (p *PolyTrajectory) At(t float64) Vec3 {
	pts := p.points
	if t <= pts[0].T {
		return pts[0].Pos
	}
	last := pts[len(pts)-1]
	if t >= last.T {
		return last.Pos
	}
	// Linear scan: waypoint counts are tiny (< 10).
	for i := 1; i < len(pts); i++ {
		if t <= pts[i].T {
			span := pts[i].T - pts[i-1].T
			frac := MinimumJerk((t - pts[i-1].T) / span)
			return pts[i-1].Pos.Lerp(pts[i].Pos, frac)
		}
	}
	return last.Pos
}

// Duration implements Trajectory.
func (p *PolyTrajectory) Duration() float64 { return p.points[len(p.points)-1].T }

// CurveTrajectory sweeps an elliptical arc with a minimum-jerk progression
// along the arc, modeling curved strokes (the C-like S5 or the loop of S4).
type CurveTrajectory struct {
	// Center of the ellipse.
	Center Vec3
	// A and B are the semi-axis vectors; position = Center + A·cosθ + B·sinθ.
	A, B Vec3
	// ThetaStart and ThetaEnd bound the swept angle in radians.
	ThetaStart, ThetaEnd float64
	// Dur is the total duration in seconds.
	Dur float64
}

// NewCurveTrajectory validates parameters.
func NewCurveTrajectory(center, a, b Vec3, thetaStart, thetaEnd, dur float64) (*CurveTrajectory, error) {
	if dur <= 0 {
		return nil, fmt.Errorf("geom: curve duration must be positive, got %g", dur)
	}
	if thetaStart == thetaEnd {
		return nil, fmt.Errorf("geom: curve has zero angular extent")
	}
	return &CurveTrajectory{Center: center, A: a, B: b, ThetaStart: thetaStart, ThetaEnd: thetaEnd, Dur: dur}, nil
}

// At implements Trajectory.
func (c *CurveTrajectory) At(t float64) Vec3 {
	frac := MinimumJerk(t / c.Dur)
	theta := c.ThetaStart + (c.ThetaEnd-c.ThetaStart)*frac
	return c.Center.Add(c.A.Scale(math.Cos(theta))).Add(c.B.Scale(math.Sin(theta)))
}

// Duration implements Trajectory.
func (c *CurveTrajectory) Duration() float64 { return c.Dur }

// CompositeTrajectory chains sub-trajectories end to end in time. Spatial
// continuity is the caller's responsibility.
type CompositeTrajectory struct {
	parts []Trajectory
	total float64
}

// NewCompositeTrajectory concatenates parts; at least one is required.
func NewCompositeTrajectory(parts ...Trajectory) (*CompositeTrajectory, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("geom: composite needs at least one part")
	}
	total := 0.0
	for _, p := range parts {
		total += p.Duration()
	}
	return &CompositeTrajectory{parts: append([]Trajectory(nil), parts...), total: total}, nil
}

// At implements Trajectory.
func (c *CompositeTrajectory) At(t float64) Vec3 {
	if t <= 0 {
		return c.parts[0].At(0)
	}
	rem := t
	for _, p := range c.parts {
		if rem <= p.Duration() {
			return p.At(rem)
		}
		rem -= p.Duration()
	}
	last := c.parts[len(c.parts)-1]
	return last.At(last.Duration())
}

// Duration implements Trajectory.
func (c *CompositeTrajectory) Duration() float64 { return c.total }

// StaticTrajectory stays at one point for a fixed duration (rest between
// strokes, or a bystander standing still).
type StaticTrajectory struct {
	Pos Vec3
	Dur float64
}

// At implements Trajectory.
func (s *StaticTrajectory) At(float64) Vec3 { return s.Pos }

// Duration implements Trajectory.
func (s *StaticTrajectory) Duration() float64 { return s.Dur }

// Verify interface compliance.
var (
	_ Trajectory = (*PolyTrajectory)(nil)
	_ Trajectory = (*CurveTrajectory)(nil)
	_ Trajectory = (*CompositeTrajectory)(nil)
	_ Trajectory = (*StaticTrajectory)(nil)
)

// RadialSpeed numerically differentiates the distance from origin to the
// trajectory at time t, returning d|p(t)|/dt in m/s — the quantity the
// Doppler shift is proportional to. Positive means receding.
func RadialSpeed(tr Trajectory, origin Vec3, t, dt float64) float64 {
	if dt <= 0 {
		dt = 1e-4
	}
	d0 := tr.At(t - dt/2).Dist(origin)
	d1 := tr.At(t + dt/2).Dist(origin)
	return (d1 - d0) / dt
}
