// Package capture glues the behavioural and physical models together: it
// turns a participant's writing performance into the audio stream a device
// would record in a given environment. Experiments, examples and tests all
// synthesize their recordings through this package so scene construction
// stays consistent.
package capture

import (
	"fmt"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/participant"
	"repro/internal/stroke"
)

// Recording bundles the synthesized audio with its ground truth.
type Recording struct {
	// Signal is the microphone stream.
	Signal *audio.Signal
	// Performance carries the finger trajectory and true stroke spans.
	Performance *participant.Performance
}

// Perform writes seq with the given session and records it on dev in env.
// The seed controls the scene's stochastic components (noise, bursts)
// independently of the participant's motor randomness.
func Perform(sess *participant.Session, seq stroke.Sequence, dev acoustic.DeviceProfile, env acoustic.Environment, seed uint64) (*Recording, error) {
	perf, err := sess.Perform(seq)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return record(perf, dev, env, seed)
}

// PerformRecalled is Perform with scheme-recall errors applied at the
// given accuracy (learnability experiments).
func PerformRecalled(sess *participant.Session, intended stroke.Sequence, recallAcc float64, dev acoustic.DeviceProfile, env acoustic.Environment, seed uint64) (*Recording, error) {
	perf, err := sess.PerformRecalled(intended, recallAcc)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return record(perf, dev, env, seed)
}

// PerformWord encodes word under the session scheme and records its
// writing.
func PerformWord(sess *participant.Session, scheme *stroke.Scheme, word string, dev acoustic.DeviceProfile, env acoustic.Environment, seed uint64) (*Recording, error) {
	seq, err := scheme.Encode(word)
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return Perform(sess, seq, dev, env, seed)
}

func record(perf *participant.Performance, dev acoustic.DeviceProfile, env acoustic.Environment, seed uint64) (*Recording, error) {
	scene := &acoustic.Scene{
		Device:     dev,
		Env:        env,
		Reflectors: acoustic.HandReflectors(perf.Finger),
		Duration:   perf.Finger.Duration(),
		Seed:       seed,
	}
	sig, err := scene.Synthesize()
	if err != nil {
		return nil, fmt.Errorf("capture: %w", err)
	}
	return &Recording{Signal: sig, Performance: perf}, nil
}
