package capture

import (
	"testing"

	"repro/internal/acoustic"
	"repro/internal/participant"
	"repro/internal/stroke"
)

func session(seed uint64) *participant.Session {
	return participant.NewSession(participant.SixParticipants()[0], seed)
}

func TestPerform(t *testing.T) {
	rec, err := Perform(session(1), stroke.Sequence{stroke.S2, stroke.S3},
		acoustic.Mate9(), acoustic.StandardEnvironment(acoustic.MeetingRoom), 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Signal == nil || rec.Performance == nil {
		t.Fatal("nil recording fields")
	}
	if rec.Signal.Rate != 44100 {
		t.Errorf("rate = %g", rec.Signal.Rate)
	}
	if got, want := rec.Signal.Duration(), rec.Performance.Finger.Duration(); got < want-0.1 {
		t.Errorf("signal %gs shorter than trajectory %gs", got, want)
	}
	if len(rec.Performance.Spans) != 2 {
		t.Errorf("spans = %d", len(rec.Performance.Spans))
	}
}

func TestPerformEmptySequence(t *testing.T) {
	if _, err := Perform(session(1), nil, acoustic.Mate9(), acoustic.Environment{}, 1); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestPerformWord(t *testing.T) {
	rec, err := PerformWord(session(2), stroke.DefaultScheme(), "hi",
		acoustic.Mate9(), acoustic.Environment{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Performance.Performed) != 2 {
		t.Errorf("performed = %v", rec.Performance.Performed)
	}
	if _, err := PerformWord(session(2), stroke.DefaultScheme(), "h1",
		acoustic.Mate9(), acoustic.Environment{}, 2); err == nil {
		t.Error("non-letter word accepted")
	}
}

func TestPerformRecalledInjectsErrors(t *testing.T) {
	intended := stroke.Sequence{stroke.S1, stroke.S2, stroke.S3, stroke.S4, stroke.S5, stroke.S6}
	rec, err := PerformRecalled(session(3), intended, 0,
		acoustic.Watch2(), acoustic.Environment{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Performance.Performed.Equal(intended) {
		t.Error("zero recall accuracy left sequence intact")
	}
}
