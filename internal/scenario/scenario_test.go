package scenario

import (
	"bufio"
	"crypto/sha256"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestExpandOrderAndCount(t *testing.T) {
	m := DefaultMatrix()
	cells := m.Expand()
	want := len(m.Environments) * len(m.Devices) * len(m.Words) * len(m.Proficiencies) * len(m.Seeds)
	if len(cells) != want {
		t.Fatalf("expanded %d cells, want %d", len(cells), want)
	}
	// Fixed nesting order: the first len(Devices)*... cells share the
	// first environment.
	perEnv := want / len(m.Environments)
	for i, c := range cells {
		if c.Env != m.Environments[i/perEnv] {
			t.Fatalf("cell %d has env %v, expansion order drifted", i, c.Env)
		}
	}
	// Names are unique and flag-safe.
	seen := map[string]bool{}
	for _, c := range cells {
		n := c.Name()
		if seen[n] {
			t.Fatalf("duplicate cell name %s", n)
		}
		seen[n] = true
		if strings.ContainsAny(n, " /\\\t") {
			t.Fatalf("cell name %q not filesystem-safe", n)
		}
	}
}

func TestSelect(t *testing.T) {
	if cells, err := Select("all"); err != nil || len(cells) != len(DefaultMatrix().Expand()) {
		t.Fatalf("Select(all) = %d cells, %v", len(cells), err)
	}
	smoke := SmokeMatrix().Expand()
	if cells, err := Select("smoke"); err != nil || len(cells) != len(smoke) {
		t.Fatalf("Select(smoke) = %d cells, %v", len(cells), err)
	}
	one, err := Select(smoke[0].Name())
	if err != nil || len(one) != 1 || one[0] != smoke[0] {
		t.Fatalf("Select(%s) = %v, %v", smoke[0].Name(), one, err)
	}
	if _, err := Select("no-such-scenario"); err == nil {
		t.Fatal("bogus scenario name accepted")
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	c := SmokeMatrix().Expand()[0]
	a, err := c.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if math.Float64bits(a.Samples[i]) != math.Float64bits(b.Samples[i]) {
			t.Fatalf("sample %d differs between identical cells", i)
		}
	}
	// A different seed must not produce the same trace.
	c2 := c
	c2.Seed++
	d, err := c2.Synthesize()
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Samples) == len(a.Samples) {
		same := true
		for i := range a.Samples {
			if a.Samples[i] != d.Samples[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestSynthesizeRejectsBogusCell(t *testing.T) {
	c := SmokeMatrix().Expand()[0]
	c.Device = "no-such-device"
	if _, err := c.Synthesize(); err == nil {
		t.Error("unknown device accepted")
	}
	c = SmokeMatrix().Expand()[0]
	c.Env = 99
	if _, err := c.Synthesize(); err == nil {
		t.Error("unknown environment accepted")
	}
}

func TestTraceIDStableAndSensitive(t *testing.T) {
	c := SmokeMatrix().Expand()[0]
	if c.TraceID() != c.TraceID() {
		t.Fatal("TraceID not stable")
	}
	ids := map[string]string{c.Name(): c.TraceID()}
	for _, mut := range []func(*Cell){
		func(x *Cell) { x.Seed++ },
		func(x *Cell) { x.Word = "go" },
		func(x *Cell) { x.Device = "tablet" },
		func(x *Cell) { x.Proficiency.Level += 0.1 },
		func(x *Cell) { x.Proficiency.Drift += 0.01 },
	} {
		x := c
		mut(&x)
		id := x.TraceID()
		for name, other := range ids {
			if id == other {
				t.Fatalf("cell %s collides with %s", x.Name(), name)
			}
		}
		ids[x.Name()] = id
	}
}

func TestEnsureTraceCachesAndReplaysIdenticalBytes(t *testing.T) {
	dir := t.TempDir()
	c := SmokeMatrix().Expand()[0]
	p1, err := EnsureTrace(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	first, err := os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	// Sidecar exists and names the cell.
	side, err := os.ReadFile(strings.TrimSuffix(p1, ".wav") + ".json")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(side), c.Name()) {
		t.Errorf("sidecar does not name the cell:\n%s", side)
	}
	// Second Ensure must hit the cache: corrupt mtime-invisible state by
	// replacing the file, then verify EnsureTrace does NOT re-render.
	marker := []byte("MARKER")
	if err := os.WriteFile(p1, marker, 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := EnsureTrace(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1 {
		t.Fatalf("cache path moved: %s vs %s", p1, p2)
	}
	got, _ := os.ReadFile(p2)
	if string(got) != string(marker) {
		t.Fatal("EnsureTrace re-rendered a cached trace")
	}
	// Restore and check LoadTrace round-trips the recorded bytes.
	if err := os.WriteFile(p1, first, 0o644); err != nil {
		t.Fatal(err)
	}
	sig, err := LoadTrace(dir, c)
	if err != nil {
		t.Fatal(err)
	}
	if len(sig.Samples) == 0 || sig.Rate != 44100 {
		t.Fatalf("loaded trace: %d samples at %g Hz", len(sig.Samples), sig.Rate)
	}
}

const goldenTracePath = "testdata/golden_trace_hashes.txt"

// TestGoldenTraceHashes pins the recorded bytes of every smoke-matrix
// cell: the scenario harness's whole value is that a replayed soak
// sends identical traffic, so the WAV files themselves are golden.
// Regenerate deliberately with
//
//	EW_UPDATE_GOLDEN=1 go test -run TestGoldenTraceHashes ./internal/scenario
//
// and commit the diff next to the synthesis change that caused it
// (bumping traceFormatVersion at the same time). Byte-exactness is
// pinned on amd64, matching the pipeline spectrogram golden.
func TestGoldenTraceHashes(t *testing.T) {
	dir := t.TempDir()
	lines := []string{
		"# SHA-256 of each smoke-matrix trace WAV. Regenerate with",
		"# EW_UPDATE_GOLDEN=1 go test -run TestGoldenTraceHashes ./internal/scenario",
	}
	got := map[string]string{}
	for _, c := range SmokeMatrix().Expand() {
		p, err := EnsureTrace(dir, c)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		sum := fmt.Sprintf("%x", sha256.Sum256(blob))
		got[c.Name()] = sum
		lines = append(lines, c.Name()+" "+sum)
	}

	if os.Getenv("EW_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenTracePath, []byte(strings.Join(lines, "\n")+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d traces)", goldenTracePath, len(got))
		return
	}
	if runtime.GOARCH != "amd64" {
		t.Skipf("byte-exact golden pinned on amd64; GOARCH=%s rounds floating point differently", runtime.GOARCH)
	}
	f, err := os.Open(goldenTracePath)
	if err != nil {
		t.Fatalf("%v (regenerate with EW_UPDATE_GOLDEN=1)", err)
	}
	defer f.Close()
	want := map[string]string{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Fatalf("malformed golden line %q", line)
		}
		want[fields[0]] = fields[1]
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden lists %d traces, matrix has %d (regenerate)", len(want), len(got))
	}
	for name, sum := range got {
		if want[name] == "" {
			t.Errorf("cell %s missing from golden (regenerate)", name)
		} else if want[name] != sum {
			t.Errorf("trace %s drifted: sha256 %s, golden %s (deliberate synthesis change? bump traceFormatVersion and regenerate)",
				name, sum, want[name])
		}
	}
}
