package scenario

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/metrics/expose"
)

// fixture renders a strictly parseable /metricsz exposition with the
// families the band checker reads. The latency histogram puts `fast`
// observations in the 4 ms bucket and `slow` in the +Inf tail.
func fixture(t *testing.T, chunks, rejects, evictions, fast, slow int) []expose.Family {
	t.Helper()
	var b strings.Builder
	counter := func(name, help string, v int) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s{shard=\"0\"} %d\n", name, help, name, name, v)
	}
	counter("echowrite_chunks_total", "Chunks.", chunks)
	counter("echowrite_backpressure_rejects_total", "Rejects.", rejects)
	counter("echowrite_idle_evictions_total", "Evictions.", evictions)
	fmt.Fprintf(&b, "# HELP echowrite_feed_latency_milliseconds Latency.\n")
	fmt.Fprintf(&b, "# TYPE echowrite_feed_latency_milliseconds histogram\n")
	for _, le := range []string{"1", "4", "64", "512"} {
		cum := fast
		if le == "1" {
			cum = 0
		}
		fmt.Fprintf(&b, "echowrite_feed_latency_milliseconds_bucket{shard=\"0\",le=\"%s\"} %d\n", le, cum)
	}
	fmt.Fprintf(&b, "echowrite_feed_latency_milliseconds_bucket{shard=\"0\",le=\"+Inf\"} %d\n", fast+slow)
	fmt.Fprintf(&b, "echowrite_feed_latency_milliseconds_sum{shard=\"0\"} %d\n", 4*fast+1000*slow)
	fmt.Fprintf(&b, "echowrite_feed_latency_milliseconds_count{shard=\"0\"} %d\n", fast+slow)
	fams, err := expose.Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	return fams
}

func TestCheckMetricsHealthyFixturePasses(t *testing.T) {
	fams := fixture(t, 200, 5, 0, 200, 1)
	if err := DefaultBands().CheckMetrics(fams); err != nil {
		t.Fatalf("healthy fixture violated bands: %v", err)
	}
}

// TestCheckMetricsSickFixtureFails is the intentionally-failing
// fixture: a scrape showing evictions, majority shedding, and a fat
// latency tail must trip every corresponding band in one pass.
func TestCheckMetricsSickFixtureFails(t *testing.T) {
	fams := fixture(t, 100, 900, 3, 10, 90)
	err := DefaultBands().CheckMetrics(fams)
	if err == nil {
		t.Fatal("sick fixture passed the bands")
	}
	for _, want := range []string{"backpressure ratio", "idle_evictions", "feeds finished"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("violation report missing %q:\n%v", want, err)
		}
	}
}

func TestCheckMetricsMinChunks(t *testing.T) {
	fams := fixture(t, 0, 0, 0, 0, 0)
	err := DefaultBands().CheckMetrics(fams)
	if err == nil || !strings.Contains(err.Error(), "chunks_total") {
		t.Fatalf("dead run passed MinChunks: %v", err)
	}
}

func TestCheckMetricsDisabledBands(t *testing.T) {
	b := Bands{MaxErrorRate: 1, MaxBackpressureRatio: -1, MaxEvictions: -1}
	fams := fixture(t, 0, 1000, 50, 0, 100)
	if err := b.CheckMetrics(fams); err != nil {
		t.Fatalf("disabled bands still fired: %v", err)
	}
}

func TestCheckMetricsMissingFamily(t *testing.T) {
	fams := fixture(t, 100, 0, 0, 100, 0)
	// Drop the histogram family.
	var trimmed []expose.Family
	for _, f := range fams {
		if f.Name != "echowrite_feed_latency_milliseconds" {
			trimmed = append(trimmed, f)
		}
	}
	err := DefaultBands().CheckMetrics(trimmed)
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("missing histogram family not reported: %v", err)
	}
}

func TestCheckMetricsRequireWS(t *testing.T) {
	fams := fixture(t, 100, 0, 0, 100, 0)
	b := DefaultBands()
	b.RequireWS = true
	err := b.CheckMetrics(fams)
	if err == nil || !strings.Contains(err.Error(), "echowrite_ws_connections") {
		t.Fatalf("missing WS families not reported: %v", err)
	}
}

func TestCheckErrorRate(t *testing.T) {
	b := DefaultBands()
	if err := b.CheckErrorRate(0); err != nil {
		t.Errorf("zero error rate rejected: %v", err)
	}
	if err := b.CheckErrorRate(0.5); err == nil {
		t.Error("50% error rate passed a 1% band")
	}
	b.MaxErrorRate = 1
	if err := b.CheckErrorRate(0.99); err != nil {
		t.Errorf("MaxErrorRate=1 should disable the check: %v", err)
	}
}

func TestScrapeAndPush(t *testing.T) {
	exposition := "# HELP up Up.\n# TYPE up gauge\nup 1\n"
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, exposition)
	}))
	defer srv.Close()
	fams, raw, err := Scrape(nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(fams) != 1 || fams[0].Name != "up" {
		t.Fatalf("scraped %v", fams)
	}
	if string(raw) != exposition {
		t.Fatalf("raw bytes %q, want %q", raw, exposition)
	}

	var pushed []byte
	sink := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pushed, _ = io.ReadAll(r.Body)
	}))
	defer sink.Close()
	if err := Push(nil, sink.URL, raw); err != nil {
		t.Fatal(err)
	}
	if string(pushed) != exposition {
		t.Fatalf("pushed %q", pushed)
	}

	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadGateway)
	}))
	defer bad.Close()
	if _, _, err := Scrape(nil, bad.URL); err == nil {
		t.Error("bad scrape status accepted")
	}
	if err := Push(nil, bad.URL, raw); err == nil {
		t.Error("bad push status accepted")
	}

	garbled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "up 1\n") // no HELP/TYPE: strict parse must fail
	}))
	defer garbled.Close()
	if _, _, err := Scrape(nil, garbled.URL); err == nil {
		t.Error("unparseable exposition accepted")
	}
}
