package scenario

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/metrics/expose"
)

// Bands are the health assertions a soak run holds a /metricsz scrape
// (and the load report) to. Ceilings marked "negative disables" treat 0
// as a hard "none allowed" bound; floors and bounds marked "zero
// disables" are off when unset.
type Bands struct {
	// MaxErrorRate caps LoadReport.ErrorRate; 1 disables (nothing can
	// exceed a rate of 1).
	MaxErrorRate float64
	// MinChunks is a floor on summed echowrite_chunks_total — a soak
	// that processed nothing is a failure, not a pass. Zero disables.
	MinChunks float64
	// MaxBackpressureRatio caps rejects/(rejects+chunks) from the
	// echowrite_backpressure_rejects_total and echowrite_chunks_total
	// counters. Negative disables.
	MaxBackpressureRatio float64
	// MaxEvictions caps summed echowrite_idle_evictions_total — an
	// active soak should never idle a session out. Negative disables.
	MaxEvictions float64
	// FeedLatencyMaxMs bounds the echowrite_feed_latency_milliseconds
	// histogram: at least FeedLatencyQuantile of feeds must land in a
	// bucket at or under this many milliseconds (evaluated on the next
	// log-spaced bucket boundary at or above it, so the check is
	// conservative in the server's favor only by one bucket). Zero
	// disables.
	FeedLatencyMaxMs float64
	// FeedLatencyQuantile is the fraction of feeds that must meet
	// FeedLatencyMaxMs (default 0.99 when the bound is enabled).
	FeedLatencyQuantile float64
	// RequireWS additionally requires the streaming families
	// (echowrite_ws_*) to be present — set when the run exercised the
	// WebSocket ingest path.
	RequireWS bool
}

// DefaultBands is the assertion set ewload applies unless flags say
// otherwise: some progress, no evictions, bounded shedding, and a
// feed-latency tail that stays under half a second.
func DefaultBands() Bands {
	return Bands{
		MaxErrorRate:         0.01,
		MinChunks:            1,
		MaxBackpressureRatio: 0.5,
		MaxEvictions:         0,
		FeedLatencyMaxMs:     512,
		FeedLatencyQuantile:  0.99,
	}
}

// CheckErrorRate applies the MaxErrorRate band to a load report's
// error rate.
func (b Bands) CheckErrorRate(rate float64) error {
	if b.MaxErrorRate < 1 && rate > b.MaxErrorRate {
		return fmt.Errorf("scenario: error rate %.4f exceeds band %.4f", rate, b.MaxErrorRate)
	}
	return nil
}

// CheckMetrics applies the metric bands to a strictly parsed /metricsz
// exposition and returns every violation joined into one error (nil if
// all bands hold). Violations are independent so one scrape reports
// them all at once.
func (b Bands) CheckMetrics(fams []expose.Family) error {
	byName := make(map[string]*expose.Family, len(fams))
	for i := range fams {
		byName[fams[i].Name] = &fams[i]
	}
	var errs []error

	chunks, err := sumCounter(byName, "echowrite_chunks_total")
	if err != nil {
		errs = append(errs, err)
	}
	if b.MinChunks > 0 && chunks < b.MinChunks {
		errs = append(errs, fmt.Errorf("scenario: echowrite_chunks_total = %g, band requires ≥ %g", chunks, b.MinChunks))
	}

	if b.MaxBackpressureRatio >= 0 {
		rejects, err := sumCounter(byName, "echowrite_backpressure_rejects_total")
		if err != nil {
			errs = append(errs, err)
		} else if total := rejects + chunks; total > 0 {
			if ratio := rejects / total; ratio > b.MaxBackpressureRatio {
				errs = append(errs, fmt.Errorf("scenario: backpressure ratio %.4f (%g rejects / %g feeds) exceeds band %.4f",
					ratio, rejects, total, b.MaxBackpressureRatio))
			}
		}
	}

	if b.MaxEvictions >= 0 {
		ev, err := sumCounter(byName, "echowrite_idle_evictions_total")
		if err != nil {
			errs = append(errs, err)
		} else if ev > b.MaxEvictions {
			errs = append(errs, fmt.Errorf("scenario: echowrite_idle_evictions_total = %g exceeds band %g", ev, b.MaxEvictions))
		}
	}

	if b.FeedLatencyMaxMs > 0 {
		if err := b.checkFeedLatency(byName); err != nil {
			errs = append(errs, err)
		}
	}

	if b.RequireWS {
		for _, name := range []string{"echowrite_ws_connections", "echowrite_ws_frames_in_total", "echowrite_ws_frames_out_total"} {
			if byName[name] == nil {
				errs = append(errs, fmt.Errorf("scenario: streaming family %s missing from scrape", name))
			}
		}
	}
	return errors.Join(errs...)
}

// checkFeedLatency aggregates the per-shard feed-latency histogram and
// requires the configured quantile of observations at or under the
// bound.
func (b Bands) checkFeedLatency(byName map[string]*expose.Family) error {
	const famName = "echowrite_feed_latency_milliseconds"
	fam := byName[famName]
	if fam == nil {
		return fmt.Errorf("scenario: family %s missing from scrape", famName)
	}
	cum := map[float64]float64{} // upper bound → observations ≤ bound, summed over shards
	total := 0.0
	for _, s := range fam.Samples {
		switch s.Name {
		case famName + "_bucket":
			le, err := bucketBound(s.Labels)
			if err != nil {
				return err
			}
			cum[le] += s.Value
		case famName + "_count":
			total += s.Value
		}
	}
	if total == 0 {
		// Nothing observed; MinChunks is the band that catches a dead
		// run, an empty histogram has no tail to bound.
		return nil
	}
	bounds := make([]float64, 0, len(cum))
	for le := range cum {
		bounds = append(bounds, le)
	}
	sort.Float64s(bounds)
	// The first bucket boundary at or above the configured bound.
	bound := math.Inf(1)
	for _, le := range bounds {
		if le >= b.FeedLatencyMaxMs {
			bound = le
			break
		}
	}
	q := b.FeedLatencyQuantile
	if q <= 0 {
		q = 0.99
	}
	frac := cum[bound] / total
	if frac < q {
		return fmt.Errorf("scenario: only %.2f%% of %g feeds finished ≤ %gms (bucket le=%g), band requires %.2f%%",
			100*frac, total, b.FeedLatencyMaxMs, bound, 100*q)
	}
	return nil
}

func bucketBound(labels []expose.Label) (float64, error) {
	for _, l := range labels {
		if l.Name != "le" {
			continue
		}
		if l.Value == "+Inf" {
			return math.Inf(1), nil
		}
		le, err := strconv.ParseFloat(l.Value, 64)
		if err != nil {
			return 0, fmt.Errorf("scenario: bad le label %q: %w", l.Value, err)
		}
		return le, nil
	}
	return 0, fmt.Errorf("scenario: histogram bucket without le label")
}

func sumCounter(byName map[string]*expose.Family, name string) (float64, error) {
	fam := byName[name]
	if fam == nil {
		return 0, fmt.Errorf("scenario: family %s missing from scrape", name)
	}
	sum := 0.0
	for _, s := range fam.Samples {
		sum += s.Value
	}
	return sum, nil
}

// Scrape fetches url, strictly parses the exposition, and returns both
// the families and the raw bytes (for -metrics-push forwarding). A
// non-200 status or a parse failure is an error: a soak must not
// silently pass because its evidence was unreadable.
func Scrape(client *http.Client, url string) ([]expose.Family, []byte, error) {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: scrape %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, nil, fmt.Errorf("scenario: scrape %s: status %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	fams, err := expose.Parse(io.TeeReader(resp.Body, &buf))
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: scrape %s: %w", url, err)
	}
	return fams, buf.Bytes(), nil
}

// Push POSTs a raw exposition to a collector URL (pushgateway-style).
// Non-2xx responses are errors.
func Push(client *http.Client, url string, exposition []byte) error {
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Post(url, "text/plain; version=0.0.4", bytes.NewReader(exposition))
	if err != nil {
		return fmt.Errorf("scenario: push %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("scenario: push %s: status %d", url, resp.StatusCode)
	}
	return nil
}
