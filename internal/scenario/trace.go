package scenario

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/audio"
)

// traceFormatVersion invalidates the trace cache when the synthesis
// pipeline changes in a way that alters recorded bytes (the cache is
// addressed by the cell *descriptor*, not the audio, so a synthesis
// change would otherwise serve stale traces). Bump it alongside any
// such change and regenerate the golden trace hashes.
const traceFormatVersion = 1

// descriptor is the canonical, versioned identity of a trace. Field
// order is fixed by the struct, so json.Marshal output — and therefore
// the content address — is byte-stable.
type descriptor struct {
	Version     int     `json:"version"`
	Env         string  `json:"env"`
	Device      string  `json:"device"`
	Word        string  `json:"word"`
	Proficiency float64 `json:"proficiency"`
	Drift       float64 `json:"drift"`
	Seed        uint64  `json:"seed"`
}

func (c Cell) descriptor() descriptor {
	return descriptor{
		Version:     traceFormatVersion,
		Env:         c.Env.Slug(),
		Device:      c.Device,
		Word:        c.Word,
		Proficiency: c.Proficiency.Level,
		Drift:       c.Proficiency.Drift,
		Seed:        c.Seed,
	}
}

// TraceID is the content address: SHA-256 of the canonical descriptor
// JSON. Two cells that would record the same audio share an ID; any
// parameter change moves the trace to a new file instead of silently
// overwriting an old one.
func (c Cell) TraceID() string {
	blob, err := json.Marshal(c.descriptor())
	if err != nil {
		// Marshaling a flat struct of scalars cannot fail.
		panic(fmt.Sprintf("scenario: marshal descriptor: %v", err))
	}
	return fmt.Sprintf("%x", sha256.Sum256(blob))
}

// EnsureTrace returns the path of the cell's cached WAV under dir,
// synthesizing and recording it on first use. The write is
// tmp+rename-atomic so a crashed run never leaves a half trace behind,
// and a <id>.json sidecar records the human-readable descriptor next to
// the opaque hash. Replay runs read the identical bytes every time.
func EnsureTrace(dir string, c Cell) (string, error) {
	id := c.TraceID()
	wavPath := filepath.Join(dir, id+".wav")
	if _, err := os.Stat(wavPath); err == nil {
		return wavPath, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("scenario: trace dir: %w", err)
	}
	sig, err := c.Synthesize()
	if err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := audio.EncodeWAV(&buf, sig); err != nil {
		return "", fmt.Errorf("scenario %s: encode trace: %w", c.Name(), err)
	}
	if err := writeAtomic(wavPath, buf.Bytes()); err != nil {
		return "", err
	}
	side := struct {
		descriptor
		Cell string `json:"cell"`
	}{c.descriptor(), c.Name()}
	meta, err := json.MarshalIndent(side, "", "  ")
	if err != nil {
		panic(fmt.Sprintf("scenario: marshal sidecar: %v", err))
	}
	if err := writeAtomic(filepath.Join(dir, id+".json"), append(meta, '\n')); err != nil {
		return "", err
	}
	return wavPath, nil
}

// LoadTrace ensures the cell's trace exists and decodes it. Loading via
// the WAV file rather than re-synthesizing is the point: the bytes the
// server sees come from the cache, so a soak run is reproducible even
// across synthesis-code changes (until the cache is cleared).
func LoadTrace(dir string, c Cell) (*audio.Signal, error) {
	path, err := EnsureTrace(dir, c)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: open trace: %w", c.Name(), err)
	}
	defer f.Close()
	sig, err := audio.DecodeWAV(f)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: decode trace %s: %w", c.Name(), path, err)
	}
	return sig, nil
}

func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".trace-*")
	if err != nil {
		return fmt.Errorf("scenario: temp trace: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("scenario: write trace: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("scenario: close trace: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("scenario: publish trace: %w", err)
	}
	return nil
}
