// Package scenario turns a declarative test matrix — environment ×
// device × word/proficiency × seed — into deterministic recorded traffic
// traces and asserts service health bands over a /metricsz scrape. It is
// the glue between the acoustic simulator (what a writer sounds like)
// and the load harness (what the server does under many of them):
// cmd/ewload expands a matrix, records each cell's WAV trace once into a
// content-addressed cache, and replays identical bytes run after run.
package scenario

import (
	"fmt"
	"strings"

	"repro/internal/acoustic"
	"repro/internal/audio"
	"repro/internal/capture"
	"repro/internal/participant"
	"repro/internal/stroke"
)

// Prof is one proficiency treatment: a starting level plus the
// per-performance random-walk sigma (see participant.ProficiencyDrift).
type Prof struct {
	Level float64
	Drift float64
}

// Cell is one fully specified scenario: everything Synthesize needs to
// render the exact trace, and nothing more — the trace cache hashes the
// cell, so every field must be a value the recording depends on.
type Cell struct {
	Env         acoustic.EnvironmentKind
	Device      string // device slug, see acoustic.DeviceNames
	Word        string
	Proficiency Prof
	Seed        uint64
}

// Name is the cell's stable, filesystem- and flag-safe identifier:
// env.device.word.p<level%>d<drift‰>.s<seed>. ewload's -scenario flag
// accepts these names.
func (c Cell) Name() string {
	return fmt.Sprintf("%s.%s.%s.p%02.0fd%03.0f.s%d",
		c.Env.Slug(), c.Device, c.Word,
		c.Proficiency.Level*100, c.Proficiency.Drift*1000, c.Seed)
}

// Synthesize renders the cell's microphone trace: a participant (chosen
// from the roster by seed, at the cell's proficiency treatment) writes
// the word on the device in the environment. Same cell → bit-identical
// samples; that determinism is what the trace cache and the golden-hash
// test pin.
func (c Cell) Synthesize() (*audio.Signal, error) {
	dev, err := acoustic.DeviceByName(c.Device)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", c.Name(), err)
	}
	env, err := acoustic.EnvironmentByKind(c.Env)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", c.Name(), err)
	}
	roster := participant.SixParticipants()
	p := roster[int(c.Seed)%len(roster)].
		WithProficiency(c.Proficiency.Level).
		WithProficiencyDrift(c.Proficiency.Drift)
	// Decorrelate the motor seed from the acoustic seed (which Perform
	// shares with the scene synthesizer) with a fixed odd multiplier.
	sess := participant.NewSession(p, c.Seed*0x9e3779b1+1)
	rec, err := capture.PerformWord(sess, stroke.DefaultScheme(), c.Word, dev, env, c.Seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", c.Name(), err)
	}
	return rec.Signal, nil
}

// Matrix is the declarative cross product. Expand emits one Cell per
// combination in a fixed nesting order (environment, device, word,
// proficiency, seed), so cell lists — and therefore trace IDs and
// replay order — are stable across runs.
type Matrix struct {
	Name          string
	Environments  []acoustic.EnvironmentKind
	Devices       []string
	Words         []string
	Proficiencies []Prof
	Seeds         []uint64
}

// Expand materializes the cross product.
func (m Matrix) Expand() []Cell {
	cells := make([]Cell, 0,
		len(m.Environments)*len(m.Devices)*len(m.Words)*len(m.Proficiencies)*len(m.Seeds))
	for _, env := range m.Environments {
		for _, dev := range m.Devices {
			for _, w := range m.Words {
				for _, p := range m.Proficiencies {
					for _, s := range m.Seeds {
						cells = append(cells, Cell{
							Env: env, Device: dev, Word: w,
							Proficiency: p, Seed: s,
						})
					}
				}
			}
		}
	}
	return cells
}

// DefaultMatrix is the full soak surface: every environment the
// simulator models (including the adversarial café/cabin/second-writer
// additions) crossed with a phone, a tablet and a budget handset, a
// practiced and an unpracticed-but-drifting writer.
func DefaultMatrix() Matrix {
	return Matrix{
		Name:         "all",
		Environments: acoustic.AllEnvironmentKinds(),
		Devices:      []string{"mate9", "tablet", "budget"},
		Words:        []string{"on"},
		Proficiencies: []Prof{
			{Level: 0.8, Drift: 0},
			{Level: 0.3, Drift: 0.1},
		},
		Seeds: []uint64{1},
	}
}

// SmokeMatrix is the small slice `make soak-smoke` runs in CI: the two
// hardest new environments on the best and worst microphones.
func SmokeMatrix() Matrix {
	return Matrix{
		Name:          "smoke",
		Environments:  []acoustic.EnvironmentKind{acoustic.CafeBabble, acoustic.SecondWriter},
		Devices:       []string{"mate9", "budget"},
		Words:         []string{"on"},
		Proficiencies: []Prof{{Level: 0.7, Drift: 0.05}},
		Seeds:         []uint64{1},
	}
}

// Select resolves ewload's -scenario argument: a matrix name ("all",
// "smoke") yields its full expansion; otherwise the argument must be
// one cell name from either matrix. The error lists what would have
// matched.
func Select(name string) ([]Cell, error) {
	switch name {
	case "all":
		return DefaultMatrix().Expand(), nil
	case "smoke":
		return SmokeMatrix().Expand(), nil
	}
	all := append(DefaultMatrix().Expand(), SmokeMatrix().Expand()...)
	var names []string
	for _, c := range all {
		if c.Name() == name {
			return []Cell{c}, nil
		}
		names = append(names, c.Name())
	}
	return nil, fmt.Errorf("scenario: no matrix or cell named %q (have all, smoke, or one of: %s)",
		name, strings.Join(names, ", "))
}
