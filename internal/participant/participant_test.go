package participant

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stroke"
)

func TestSixParticipants(t *testing.T) {
	ps := SixParticipants()
	if len(ps) != 6 {
		t.Fatalf("roster has %d, want 6", len(ps))
	}
	for i, p := range ps {
		if p.ID != i+1 {
			t.Errorf("participant %d has ID %d", i, p.ID)
		}
		if p.WaypointJitter <= 0 || p.SpeedScale <= 0 || p.AmplitudeScale <= 0 {
			t.Errorf("%s has non-positive motor parameters: %+v", p.Name, p)
		}
		if p.RecallFloor >= p.RecallCeil {
			t.Errorf("%s recall floor %g >= ceil %g", p.Name, p.RecallFloor, p.RecallCeil)
		}
	}
}

func TestPerformEmptySequence(t *testing.T) {
	s := NewSession(SixParticipants()[0], 1)
	if _, err := s.Perform(nil); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestPerformSingleStroke(t *testing.T) {
	s := NewSession(SixParticipants()[0], 1)
	perf, err := s.Perform(stroke.Sequence{stroke.S2})
	if err != nil {
		t.Fatal(err)
	}
	if len(perf.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(perf.Spans))
	}
	sp := perf.Spans[0]
	if sp.Stroke != stroke.S2 {
		t.Errorf("span stroke = %v", sp.Stroke)
	}
	// Lead-in rest before the stroke.
	if sp.Start < 0.35 {
		t.Errorf("stroke starts at %g, want >= lead-in", sp.Start)
	}
	if sp.End <= sp.Start {
		t.Error("span end before start")
	}
	// Trajectory covers the whole performance with a tail.
	if perf.Finger.Duration() < sp.End+0.3 {
		t.Errorf("trajectory %gs ends too soon after stroke end %g", perf.Finger.Duration(), sp.End)
	}
	if !perf.Performed.Equal(stroke.Sequence{stroke.S2}) {
		t.Errorf("Performed = %v", perf.Performed)
	}
}

func TestPerformMultiStrokeSpansOrdered(t *testing.T) {
	s := NewSession(SixParticipants()[1], 7)
	seq := stroke.Sequence{stroke.S1, stroke.S5, stroke.S3, stroke.S2}
	perf, err := s.Perform(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(perf.Spans) != len(seq) {
		t.Fatalf("spans = %d, want %d", len(perf.Spans), len(seq))
	}
	for i := 1; i < len(perf.Spans); i++ {
		gap := perf.Spans[i].Start - perf.Spans[i-1].End
		if gap <= 0.2 {
			t.Errorf("gap between strokes %d,%d = %g, want > pause+reposition", i-1, i, gap)
		}
	}
}

func TestPerformDeterministicPerSeed(t *testing.T) {
	seq := stroke.Sequence{stroke.S1, stroke.S4}
	a, err := NewSession(SixParticipants()[2], 99).Perform(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSession(SixParticipants()[2], 99).Perform(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.1, 0.7, 1.4, 2.2} {
		if a.Finger.At(tt).Dist(b.Finger.At(tt)) > 1e-12 {
			t.Fatal("same seed produced different trajectories")
		}
	}
	c, err := NewSession(SixParticipants()[2], 100).Perform(seq)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, tt := range []float64{0.5, 1.0, 1.5} {
		if a.Finger.At(tt).Dist(c.Finger.At(tt)) > 1e-9 {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical trajectories")
	}
}

func TestRecallAccuracyCurve(t *testing.T) {
	p := SixParticipants()[0]
	if got := p.RecallAccuracy(0); math.Abs(got-p.RecallFloor) > 1e-9 {
		t.Errorf("t=0 recall = %g, want floor %g", got, p.RecallFloor)
	}
	if got := p.RecallAccuracy(1e6); math.Abs(got-p.RecallCeil) > 1e-9 {
		t.Errorf("t=∞ recall = %g, want ceil %g", got, p.RecallCeil)
	}
	if p.RecallAccuracy(-5) != p.RecallAccuracy(0) {
		t.Error("negative practice time not clamped")
	}
	// Monotone nondecreasing.
	prev := 0.0
	for m := 0.0; m <= 20; m += 0.5 {
		a := p.RecallAccuracy(m)
		if a < prev {
			t.Fatalf("recall decreased at %g min", m)
		}
		prev = a
	}
}

func TestRecallSequencePerfectAndBroken(t *testing.T) {
	s := NewSession(SixParticipants()[0], 5)
	seq := stroke.Sequence{stroke.S1, stroke.S2, stroke.S3, stroke.S4, stroke.S5, stroke.S6}
	// Accuracy 1 → identical.
	got := s.RecallSequence(seq, 1)
	if !got.Equal(seq) {
		t.Errorf("perfect recall altered sequence: %v", got)
	}
	// Accuracy 0 → every stroke replaced by a *different* valid stroke.
	got = s.RecallSequence(seq, 0)
	for i, st := range got {
		if st == seq[i] {
			t.Errorf("position %d unchanged under zero recall", i)
		}
		if !st.Valid() {
			t.Errorf("position %d invalid: %v", i, st)
		}
	}
}

func TestRecallSequenceLengthProperty(t *testing.T) {
	f := func(raw []uint8, accRaw uint8) bool {
		if len(raw) == 0 || len(raw) > 20 {
			return true
		}
		seq := make(stroke.Sequence, len(raw))
		for i, b := range raw {
			seq[i] = stroke.Stroke(int(b%stroke.NumStrokes) + 1)
		}
		s := NewSession(SixParticipants()[3], uint64(accRaw)+1)
		out := s.RecallSequence(seq, float64(accRaw)/255)
		if len(out) != len(seq) {
			return false
		}
		for _, st := range out {
			if !st.Valid() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPerformRecalled(t *testing.T) {
	s := NewSession(SixParticipants()[4], 11)
	intended := stroke.Sequence{stroke.S1, stroke.S2, stroke.S3}
	perf, err := s.PerformRecalled(intended, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(perf.Performed) != len(intended) {
		t.Errorf("performed length %d, want %d", len(perf.Performed), len(intended))
	}
	if len(perf.Spans) != len(intended) {
		t.Errorf("spans %d, want %d", len(perf.Spans), len(intended))
	}
	for i, sp := range perf.Spans {
		if sp.Stroke != perf.Performed[i] {
			t.Errorf("span %d stroke %v != performed %v", i, sp.Stroke, perf.Performed[i])
		}
	}
}

func TestRepositionIsGentle(t *testing.T) {
	// The between-stroke motion must stay under the segmentation
	// acceleration gate; check the radial acceleration of the reposition
	// region numerically.
	s := NewSession(SixParticipants()[0], 3)
	perf, err := s.Perform(stroke.Sequence{stroke.S2, stroke.S2})
	if err != nil {
		t.Fatal(err)
	}
	// Between spans: from end of stroke 1 + pause to start of stroke 2.
	from := perf.Spans[0].End + 0.15
	to := perf.Spans[1].Start - 0.05
	const dt = 0.0232 // one STFT hop
	maxAcc := 0.0
	prevV := 0.0
	for tt := from; tt < to; tt += dt {
		d0 := perf.Finger.At(tt).Norm()
		d1 := perf.Finger.At(tt + dt).Norm()
		v := (d1 - d0) / dt
		acc := math.Abs(v-prevV) / dt
		if tt > from && acc > maxAcc {
			maxAcc = acc
		}
		prevV = v
	}
	// Radial acceleration in Doppler units: 2·f0/c·a per second, ÷ frame
	// rate for Hz/frame; the gate is 8 Hz/frame.
	dopplerAccPerFrame := 2 * 20000 / 340.0 * maxAcc * dt
	if dopplerAccPerFrame > 7 {
		t.Errorf("reposition Doppler acceleration %.1f Hz/frame too close to the 8 Hz/frame gate", dopplerAccPerFrame)
	}
}

func TestProficiencyDriftWalksWithinBounds(t *testing.T) {
	p := SixParticipants()[0].WithProficiency(0.5).WithProficiencyDrift(0.15)
	sess := NewSession(p, 7)
	seq := stroke.Sequence{stroke.S1}
	seen := map[float64]bool{}
	for i := 0; i < 25; i++ {
		if _, err := sess.Perform(seq); err != nil {
			t.Fatal(err)
		}
		prof := sess.P.Proficiency
		if prof < 0 || prof > 1 {
			t.Fatalf("drifted proficiency %g escaped [0,1]", prof)
		}
		seen[prof] = true
	}
	if len(seen) < 10 {
		t.Errorf("proficiency barely drifted: %d distinct values over 25 performances", len(seen))
	}
}

func TestProficiencyDriftChangesTiming(t *testing.T) {
	// Same participant and seed, drift on vs off: the second performance
	// must diverge in duration once the walk kicks in, while drift=0 stays
	// bit-compatible with the historical behavior (no extra RNG draws).
	run := func(drift float64) []float64 {
		p := SixParticipants()[1].WithProficiency(0.5).WithProficiencyDrift(drift)
		sess := NewSession(p, 42)
		var durs []float64
		for i := 0; i < 4; i++ {
			perf, err := sess.Perform(stroke.Sequence{stroke.S2, stroke.S5})
			if err != nil {
				t.Fatal(err)
			}
			durs = append(durs, perf.Finger.Duration())
		}
		return durs
	}
	still, still2, drifted := run(0), run(0), run(0.2)
	for i := range still {
		if still[i] != still2[i] {
			t.Fatal("drift=0 is not deterministic")
		}
	}
	diverged := false
	for i := range still {
		if still[i] != drifted[i] {
			diverged = true
		}
	}
	if !diverged {
		t.Error("drift=0.2 never changed performance timing")
	}
}

func TestWithProficiencyDriftClamps(t *testing.T) {
	if d := SixParticipants()[0].WithProficiencyDrift(-1).ProficiencyDrift; d != 0 {
		t.Errorf("negative drift not clamped: %g", d)
	}
}
