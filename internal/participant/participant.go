// Package participant models the human side of EchoWrite's evaluation: how
// a user performs stroke gestures (motor variability), how they learn the
// input scheme (recall accuracy over practice), and how fast they write.
// The six modeled participants substitute for the paper's six recruited
// subjects; their parameter spread is what drives the user-diversity
// results (Fig. 13) and the learnability study (Figs. 4–6, 18).
package participant

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/geom"
	"repro/internal/stroke"
)

// Participant is one modeled user. Fields are motor-control parameters; a
// Session binds a participant to an RNG for reproducible performances.
type Participant struct {
	// ID is the 1-based participant number (P1..P6).
	ID int
	// Name labels the participant in reports.
	Name string
	// SpeedScale multiplies stroke durations (<1 is faster than nominal).
	SpeedScale float64
	// SpeedJitter is the per-performance log-normal sigma of TimeScale.
	SpeedJitter float64
	// AmplitudeScale multiplies gesture size.
	AmplitudeScale float64
	// AmplitudeJitter is the per-performance sigma of the size factor.
	AmplitudeJitter float64
	// WaypointJitter is the per-waypoint positional noise sigma in meters
	// — the dominant driver of stroke-recognition errors.
	WaypointJitter float64
	// OffsetStd is the per-performance hand-position offset sigma (m).
	OffsetStd float64
	// SloppyRate is the probability a stroke is performed carelessly
	// (waypoint jitter tripled), modeling lapses of attention.
	SloppyRate float64
	// RecallFloor and RecallCeil bound scheme-recall accuracy: the
	// probability of writing the correct stroke for a letter before any
	// practice (floor) and after full practice (ceil). See Learnability.
	RecallFloor, RecallCeil float64
	// LearnRateMin is the exponential learning time constant in minutes
	// for scheme recall.
	LearnRateMin float64
	// Proficiency in [0, 1] models motor practice with the input method:
	// 0 is a first-time user, 1 a fully trained one. It shortens stroke
	// durations, inter-stroke pauses and repositioning (the drivers of
	// the Fig. 18 speed curve). Zero value = novice.
	Proficiency float64
	// ProficiencyDrift is the sigma of a reflected random-walk step
	// applied to Proficiency before each performance within a session —
	// fatigue, warm-up and attention swings make even a trained user's
	// effective skill wander between words. Zero (the default) keeps
	// proficiency fixed and draws nothing from the RNG, so existing
	// seeded recordings are unchanged.
	ProficiencyDrift float64
}

// timing derived from proficiency: trained users write ~25 % faster
// strokes and halve their inter-stroke dwell.
func (p Participant) pauseScale() float64      { return 1 - 0.06*p.Proficiency }
func (p Participant) repositionScale() float64 { return 1 - 0.52*p.Proficiency }
func (p Participant) strokeTimeScale() float64 { return 1 - 0.28*p.Proficiency }

// WithProficiency returns a copy of p at the given proficiency level,
// clamped to [0, 1].
func (p Participant) WithProficiency(prof float64) Participant {
	if prof < 0 {
		prof = 0
	}
	if prof > 1 {
		prof = 1
	}
	p.Proficiency = prof
	return p
}

// WithProficiencyDrift returns a copy of p whose proficiency random-walks
// with the given per-performance sigma (negative values clamp to 0).
func (p Participant) WithProficiencyDrift(sigma float64) Participant {
	if sigma < 0 {
		sigma = 0
	}
	p.ProficiencyDrift = sigma
	return p
}

// SessionProficiency maps a practice-session number (1-based) to a
// proficiency level: an exponential approach that saturates around the
// paper's 13th session (Fig. 18).
func SessionProficiency(session int) float64 {
	if session < 1 {
		session = 1
	}
	return 1 - math.Exp(-float64(session-1)/4.0)
}

// SixParticipants returns the calibrated roster P1..P6. WaypointJitter and
// SloppyRate vary so per-participant stroke accuracy spreads ~2.6 % with a
// standard deviation near 1.1 %, as in Fig. 13.
func SixParticipants() []Participant {
	base := func(id int, wj, sloppy float64) Participant {
		return Participant{
			ID:              id,
			Name:            fmt.Sprintf("P%d", id),
			SpeedScale:      0.95 + 0.03*float64(id%3),
			SpeedJitter:     0.10,
			AmplitudeScale:  0.95 + 0.02*float64(id%4),
			AmplitudeJitter: 0.08,
			WaypointJitter:  wj,
			OffsetStd:       0.01,
			SloppyRate:      sloppy,
			RecallFloor:     0.86 + 0.02*float64(id%3),
			RecallCeil:      0.9975,
			LearnRateMin:    3.5 + 0.5*float64(id%3),
		}
	}
	return []Participant{
		base(1, 0.0065, 0.010), // most careful
		base(2, 0.0090, 0.030),
		base(3, 0.0095, 0.035),
		base(4, 0.0096, 0.035),
		base(5, 0.0078, 0.018),
		base(6, 0.0074, 0.015),
	}
}

// Session binds a participant to a deterministic RNG.
type Session struct {
	P   Participant
	rng *rand.Rand
}

// NewSession creates a reproducible session for participant p.
func NewSession(p Participant, seed uint64) *Session {
	return &Session{
		P:   p,
		rng: rand.New(rand.NewPCG(seed, uint64(p.ID)*0x9e3779b97f4a7c15+1)),
	}
}

// StrokeSpan is the ground-truth timing of one performed stroke within a
// performance's finger trajectory.
type StrokeSpan struct {
	Stroke stroke.Stroke
	// Start and End are seconds from the beginning of the trajectory.
	Start, End float64
}

// Performance is a complete finger trajectory for writing a stroke
// sequence, with ground-truth spans.
type Performance struct {
	// Finger is the full trajectory including rests and repositioning.
	Finger geom.Trajectory
	// Spans are the ground-truth stroke intervals.
	Spans []StrokeSpan
	// Performed is the stroke sequence actually written (equals the
	// request unless recall errors were injected via PerformRecalled).
	Performed stroke.Sequence
}

// performParams bundle per-performance randomness.
type performParams struct {
	offset    geom.Vec3
	sizeScale float64
	timeScale float64
}

func (s *Session) drawPerformParams() performParams {
	return performParams{
		offset: geom.Vec3{
			X: s.rng.NormFloat64() * s.P.OffsetStd,
			Y: s.rng.NormFloat64() * s.P.OffsetStd,
			Z: s.rng.NormFloat64() * s.P.OffsetStd,
		},
		sizeScale: s.P.AmplitudeScale * math.Exp(s.rng.NormFloat64()*s.P.AmplitudeJitter),
		timeScale: s.P.SpeedScale * s.P.strokeTimeScale() * math.Exp(s.rng.NormFloat64()*s.P.SpeedJitter),
	}
}

// shapeParamsFor draws the stochastic shape parameters for one stroke.
func (s *Session) shapeParamsFor(st stroke.Stroke, pp performParams) stroke.ShapeParams {
	jitter := s.P.WaypointJitter
	if s.rng.Float64() < s.P.SloppyRate {
		jitter *= 3
	}
	// Up to 4 waypoints per canonical stroke.
	seq := make([]geom.Vec3, 4)
	for i := range seq {
		seq[i] = geom.Vec3{
			X: s.rng.NormFloat64() * jitter,
			Y: s.rng.NormFloat64() * jitter,
			Z: s.rng.NormFloat64() * jitter,
		}
	}
	return stroke.ShapeParams{
		Offset:    pp.offset,
		Scale:     pp.sizeScale,
		TimeScale: pp.timeScale * math.Exp(s.rng.NormFloat64()*0.05),
		JitterSeq: seq,
	}
}

// Timing constants for the performance builder.
const (
	// leadInDur is the initial rest: the pipeline needs ~5 static frames
	// for spectral subtraction (paper §III-A).
	leadInDur = 0.40
	// interStrokePause is the natural dwell after finishing a stroke
	// before the hand starts repositioning; it gives the segmenter its
	// quiet end-of-stroke run.
	interStrokePause = 0.34
	// repositionDur is the gentle between-stroke hand return; slow enough
	// that its acceleration stays under the segmentation gate.
	repositionDur = 1.05
	// tailDur is the final rest.
	tailDur = 0.45
)

// Perform builds the finger trajectory for writing seq exactly as given.
func (s *Session) Perform(seq stroke.Sequence) (*Performance, error) {
	return s.perform(seq, nil)
}

// wordGapDur is the extra dwell a writer naturally leaves between words
// (on top of the usual inter-stroke pause + reposition); phrase-level
// recognition exploits this gap to find word boundaries.
const wordGapDur = 1.1

// PerformWords writes several words in one continuous performance,
// separated by a natural word gap. The returned counts give each word's
// stroke count (ground truth for boundary detection).
func (s *Session) PerformWords(seqs []stroke.Sequence) (*Performance, []int, error) {
	if len(seqs) == 0 {
		return nil, nil, fmt.Errorf("participant: no words")
	}
	var flat stroke.Sequence
	counts := make([]int, len(seqs))
	boundaries := make(map[int]bool, len(seqs))
	for i, q := range seqs {
		if len(q) == 0 {
			return nil, nil, fmt.Errorf("participant: word %d is empty", i)
		}
		counts[i] = len(q)
		flat = append(flat, q...)
		if i < len(seqs)-1 {
			boundaries[len(flat)] = true // extra gap before this stroke index
		}
	}
	perf, err := s.perform(flat, func(i int) float64 {
		if boundaries[i] {
			return wordGapDur * (0.9 + 0.2*s.rng.Float64())
		}
		return 0
	})
	if err != nil {
		return nil, nil, err
	}
	return perf, counts, nil
}

// driftProficiency advances the session's effective proficiency by one
// reflected random-walk step when the participant has drift configured.
// The drifted value lives in s.P, so callers can observe it between
// performances. Drift of zero draws nothing from the RNG, keeping all
// pre-drift seeded recordings bit-identical.
func (s *Session) driftProficiency() {
	if s.P.ProficiencyDrift <= 0 {
		return
	}
	prof := s.P.Proficiency + s.rng.NormFloat64()*s.P.ProficiencyDrift
	// Reflect at the [0, 1] walls so the walk stays a walk instead of
	// saturating at the boundary.
	if prof < 0 {
		prof = -prof
	}
	if prof > 1 {
		prof = 2 - prof
	}
	s.P = s.P.WithProficiency(prof)
}

// perform builds the trajectory; extraGap, when non-nil, returns an
// additional dwell inserted before stroke index i.
func (s *Session) perform(seq stroke.Sequence, extraGap func(int) float64) (*Performance, error) {
	if len(seq) == 0 {
		return nil, fmt.Errorf("participant: empty stroke sequence")
	}
	s.driftProficiency()
	pp := s.drawPerformParams()
	var (
		parts []geom.Trajectory
		spans []StrokeSpan
		tNow  float64
	)
	// Initial rest at the first stroke's start point.
	firstParams := s.shapeParamsFor(seq[0], pp)
	start0, err := stroke.StartPoint(seq[0], firstParams)
	if err != nil {
		return nil, fmt.Errorf("participant: %w", err)
	}
	parts = append(parts, &geom.StaticTrajectory{Pos: start0, Dur: leadInDur})
	tNow += leadInDur

	prevEnd := start0
	for i, st := range seq {
		var sp stroke.ShapeParams
		if i == 0 {
			sp = firstParams
		} else {
			sp = s.shapeParamsFor(st, pp)
		}
		startPt, err := stroke.StartPoint(st, sp)
		if err != nil {
			return nil, fmt.Errorf("participant: %w", err)
		}
		if i > 0 {
			// Dwell, then gently reposition from the previous stroke's
			// end to this stroke's start.
			pause := interStrokePause * s.P.pauseScale() * (0.8 + 0.4*s.rng.Float64())
			if extraGap != nil {
				pause += extraGap(i)
			}
			parts = append(parts, &geom.StaticTrajectory{Pos: prevEnd, Dur: pause})
			tNow += pause
			repDur := repositionDur * s.P.repositionScale() * (0.9 + 0.2*s.rng.Float64())
			rep, err := geom.NewPolyTrajectory([]geom.Waypoint{
				{T: 0, Pos: prevEnd},
				{T: repDur, Pos: startPt},
			})
			if err != nil {
				return nil, fmt.Errorf("participant: reposition: %w", err)
			}
			parts = append(parts, rep)
			tNow += repDur
		}
		tr, err := stroke.Shape(st, sp)
		if err != nil {
			return nil, fmt.Errorf("participant: %w", err)
		}
		parts = append(parts, tr)
		spans = append(spans, StrokeSpan{Stroke: st, Start: tNow, End: tNow + tr.Duration()})
		tNow += tr.Duration()
		prevEnd, err = stroke.EndPoint(st, sp)
		if err != nil {
			return nil, fmt.Errorf("participant: %w", err)
		}
	}
	parts = append(parts, &geom.StaticTrajectory{Pos: prevEnd, Dur: tailDur})
	finger, err := geom.NewCompositeTrajectory(parts...)
	if err != nil {
		return nil, fmt.Errorf("participant: %w", err)
	}
	return &Performance{Finger: finger, Spans: spans, Performed: append(stroke.Sequence(nil), seq...)}, nil
}

// RecallAccuracy returns the probability this participant writes the
// correct stroke for a letter after practicing for the given minutes:
// an exponential approach from RecallFloor to RecallCeil (Fig. 4's curve).
func (p Participant) RecallAccuracy(practiceMinutes float64) float64 {
	if practiceMinutes < 0 {
		practiceMinutes = 0
	}
	return p.RecallCeil - (p.RecallCeil-p.RecallFloor)*math.Exp(-practiceMinutes/p.LearnRateMin)
}

// RecallSequence applies scheme-recall errors to the intended sequence:
// each stroke independently survives with probability acc; otherwise the
// participant writes a uniformly random wrong stroke. Used by the
// learnability study where participants transcribe words from memory of
// the scheme.
func (s *Session) RecallSequence(intended stroke.Sequence, acc float64) stroke.Sequence {
	out := make(stroke.Sequence, len(intended))
	for i, st := range intended {
		if s.rng.Float64() < acc {
			out[i] = st
			continue
		}
		// Pick a wrong stroke uniformly.
		w := stroke.Stroke(1 + s.rng.IntN(stroke.NumStrokes-1))
		if w >= st {
			w++
		}
		out[i] = w
	}
	return out
}

// PerformRecalled performs seq after filtering it through scheme recall at
// the given accuracy, returning the performance of what was actually
// written.
func (s *Session) PerformRecalled(intended stroke.Sequence, recallAcc float64) (*Performance, error) {
	actual := s.RecallSequence(intended, recallAcc)
	return s.Perform(actual)
}
