// Package imgproc implements the two-dimensional image-processing
// operations the EchoWrite pipeline applies to spectrograms: median
// filtering, Gaussian smoothing, normalization, binarization, flood-fill
// hole filling, and connected-component labeling (§III-A of the paper).
//
// All functions operate on row-major matrices represented as [][]float64
// (or [][]uint8 for binary images) where m[r][c] addresses row r, column c.
// In pipeline usage a row is one STFT frame and a column is one frequency
// bin, but nothing here depends on that interpretation.
package imgproc

import (
	"fmt"
	"math"
	"sort"
)

// Dims returns the (rows, cols) of a rectangular matrix, or an error if the
// matrix is ragged or empty.
func Dims(m [][]float64) (rows, cols int, err error) {
	rows = len(m)
	if rows == 0 {
		return 0, 0, fmt.Errorf("imgproc: empty matrix")
	}
	cols = len(m[0])
	for r, row := range m {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("imgproc: ragged matrix: row %d has %d cols, want %d", r, len(row), cols)
		}
	}
	if cols == 0 {
		return 0, 0, fmt.Errorf("imgproc: matrix has zero columns")
	}
	return rows, cols, nil
}

// NewMatrix allocates a rows×cols zero matrix backed by one contiguous
// allocation.
func NewMatrix(rows, cols int) [][]float64 {
	return NewMatrixOf[float64](rows, cols)
}

// NewMatrixOf allocates a rows×cols zero matrix of any element type,
// backed by one contiguous allocation: two allocations total instead
// of rows+1, which keeps the per-flush enhancement chain off the
// hot-path allocation budget.
func NewMatrixOf[T any](rows, cols int) [][]T {
	backing := make([]T, rows*cols)
	m := make([][]T, rows)
	for r := range m {
		m[r], backing = backing[:cols:cols], backing[cols:]
	}
	return m
}

// Clone deep-copies a matrix.
func Clone(m [][]float64) [][]float64 {
	out := make([][]float64, len(m))
	for r, row := range m {
		out[r] = append([]float64(nil), row...)
	}
	return out
}

// Median3x3 applies a 3×3 median filter (the paper's random-noise removal
// step) and returns a new matrix. Border pixels use the intersection of the
// 3×3 neighborhood with the image.
func Median3x3(m [][]float64) ([][]float64, error) {
	rows, cols, err := Dims(m)
	if err != nil {
		return nil, err
	}
	out := NewMatrix(rows, cols)
	buf := make([]float64, 0, 9)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			buf = buf[:0]
			for dr := -1; dr <= 1; dr++ {
				for dc := -1; dc <= 1; dc++ {
					rr, cc := r+dr, c+dc
					if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
						continue
					}
					// ew:allow hotprop: buf is reset to buf[:0] each pixel and
					// holds at most the 9 taps its hoisted capacity covers, so
					// this append never grows the backing array.
					buf = append(buf, m[rr][cc])
				}
			}
			sort.Float64s(buf)
			out[r][c] = buf[len(buf)/2]
		}
	}
	return out, nil
}

// GaussianKernel builds a normalized odd-size Gaussian kernel with the
// given standard deviation. When sigma <= 0 a conventional default of
// 0.3·((size−1)/2 − 1) + 0.8 is used.
func GaussianKernel(size int, sigma float64) ([]float64, error) {
	if size <= 0 || size%2 == 0 {
		return nil, fmt.Errorf("imgproc: Gaussian kernel size must be odd and positive, got %d", size)
	}
	if sigma <= 0 {
		sigma = 0.3*(float64(size-1)/2-1) + 0.8
	}
	k := make([]float64, size)
	half := size / 2
	sum := 0.0
	for i := range k {
		x := float64(i - half)
		k[i] = math.Exp(-x * x / (2 * sigma * sigma))
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	return k, nil
}

// GaussianBlur smooths m with a separable size×size Gaussian kernel
// (paper: kernel size 5) and returns a new matrix. Borders are handled by
// renormalizing over the in-image kernel taps.
func GaussianBlur(m [][]float64, size int, sigma float64) ([][]float64, error) {
	rows, cols, err := Dims(m)
	if err != nil {
		return nil, err
	}
	k, err := GaussianKernel(size, sigma)
	if err != nil {
		return nil, err
	}
	half := size / 2
	// Horizontal pass.
	tmp := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sum, wsum := 0.0, 0.0
			for i := -half; i <= half; i++ {
				cc := c + i
				if cc < 0 || cc >= cols {
					continue
				}
				w := k[i+half]
				sum += w * m[r][cc]
				wsum += w
			}
			tmp[r][c] = sum / wsum
		}
	}
	// Vertical pass.
	out := NewMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			sum, wsum := 0.0, 0.0
			for i := -half; i <= half; i++ {
				rr := r + i
				if rr < 0 || rr >= rows {
					continue
				}
				w := k[i+half]
				sum += w * tmp[rr][c]
				wsum += w
			}
			out[r][c] = sum / wsum
		}
	}
	return out, nil
}

// Threshold zeroes every element of m strictly below t, in place, and
// returns m. This implements the paper's bursting-noise gate (threshold α).
func Threshold(m [][]float64, t float64) [][]float64 {
	for _, row := range m {
		for c, v := range row {
			if v < t {
				row[c] = 0
			}
		}
	}
	return m
}

// Normalize01 rescales all elements of m into [0, 1] in place and returns
// m (the paper's zero-one normalization). A constant matrix maps to zeros.
func Normalize01(m [][]float64) [][]float64 {
	first := true
	var minV, maxV float64
	for _, row := range m {
		for _, v := range row {
			if first {
				minV, maxV = v, v
				first = false
				continue
			}
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
	}
	span := maxV - minV
	for _, row := range m {
		for c := range row {
			if span == 0 {
				row[c] = 0
			} else {
				row[c] = (row[c] - minV) / span
			}
		}
	}
	return m
}

// Binarize maps m to a uint8 matrix with 1 where m[r][c] >= t and 0
// elsewhere (paper threshold: 0.15 after normalization). Rows share
// one contiguous backing allocation sized to the total element count,
// so ragged inputs keep their shape without per-row allocations.
func Binarize(m [][]float64, t float64) [][]uint8 {
	total := 0
	for _, row := range m {
		total += len(row)
	}
	backing := make([]uint8, total)
	out := make([][]uint8, len(m))
	for r, row := range m {
		out[r], backing = backing[:len(row):len(row)], backing[len(row):]
		for c, v := range row {
			if v >= t {
				out[r][c] = 1
			}
		}
	}
	return out
}
