package imgproc

import "fmt"

// FillHoles closes the "holes" of a binary image: background (0) regions
// that are not 4-connected to the image border become foreground (1). This
// is the morphological flood-fill-on-background operation the paper cites
// from Soille for repairing binarized Doppler blobs.
//
// The input is not modified; a new matrix is returned.
func FillHoles(bin [][]uint8) ([][]uint8, error) {
	rows, cols, err := dimsU8(bin)
	if err != nil {
		return nil, err
	}
	// reachable marks background pixels 4-connected to the border.
	reachable := NewMatrixOf[bool](rows, cols)
	stack := make([][2]int, 0, rows+cols)
	push := func(r, c int) {
		if r < 0 || r >= rows || c < 0 || c >= cols {
			return
		}
		if reachable[r][c] || bin[r][c] != 0 {
			return
		}
		reachable[r][c] = true
		stack = append(stack, [2]int{r, c})
	}
	for c := 0; c < cols; c++ {
		push(0, c)
		push(rows-1, c)
	}
	for r := 0; r < rows; r++ {
		push(r, 0)
		push(r, cols-1)
	}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push(p[0]-1, p[1])
		push(p[0]+1, p[1])
		push(p[0], p[1]-1)
		push(p[0], p[1]+1)
	}
	out := NewMatrixOf[uint8](rows, cols)
	for r := range out {
		for c := 0; c < cols; c++ {
			if bin[r][c] == 1 || !reachable[r][c] {
				out[r][c] = 1
			}
		}
	}
	return out, nil
}

// Component is one 4-connected foreground region of a binary image.
type Component struct {
	// Label is the 1-based component id.
	Label int
	// Size is the pixel count.
	Size int
	// MinRow, MaxRow, MinCol, MaxCol bound the component (inclusive).
	MinRow, MaxRow, MinCol, MaxCol int
}

// ConnectedComponents labels 4-connected foreground regions, returning the
// label matrix (0 = background) and per-component statistics ordered by
// label.
func ConnectedComponents(bin [][]uint8) ([][]int, []Component, error) {
	rows, cols, err := dimsU8(bin)
	if err != nil {
		return nil, nil, err
	}
	labels := NewMatrixOf[int](rows, cols)
	var comps []Component
	stack := make([][2]int, 0, 64)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if bin[r][c] != 1 || labels[r][c] != 0 {
				continue
			}
			id := len(comps) + 1
			comp := Component{Label: id, MinRow: r, MaxRow: r, MinCol: c, MaxCol: c}
			labels[r][c] = id
			// ew:allow hotprop: append into stack[:0] reuses the capacity
			// retained from every previous component; it allocates at most
			// once past the hoisted 64-slot seed.
			stack = append(stack[:0], [2]int{r, c})
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				comp.Size++
				if p[0] < comp.MinRow {
					comp.MinRow = p[0]
				}
				if p[0] > comp.MaxRow {
					comp.MaxRow = p[0]
				}
				if p[1] < comp.MinCol {
					comp.MinCol = p[1]
				}
				if p[1] > comp.MaxCol {
					comp.MaxCol = p[1]
				}
				for _, d := range [4][2]int{{-1, 0}, {1, 0}, {0, -1}, {0, 1}} {
					rr, cc := p[0]+d[0], p[1]+d[1]
					if rr < 0 || rr >= rows || cc < 0 || cc >= cols {
						continue
					}
					if bin[rr][cc] == 1 && labels[rr][cc] == 0 {
						labels[rr][cc] = id
						// ew:allow hotprop: flood-fill frontier growth is
						// amortized — each pixel is pushed at most once per
						// call, so total appends are bounded by rows·cols and
						// the backing array doubles O(log) times, not per
						// iteration.
						stack = append(stack, [2]int{rr, cc})
					}
				}
			}
			// ew:allow hotprop: one append per discovered component, not per
			// pixel; denoised spectrogram windows hold a handful of blobs.
			comps = append(comps, comp)
		}
	}
	return labels, comps, nil
}

// RemoveSmallComponents zeroes foreground components smaller than minSize
// pixels, returning a new binary matrix. It is used by the pipeline to
// discard isolated bursting-noise specks that survive thresholding.
func RemoveSmallComponents(bin [][]uint8, minSize int) ([][]uint8, error) {
	labels, comps, err := ConnectedComponents(bin)
	if err != nil {
		return nil, err
	}
	keep := make(map[int]bool, len(comps))
	for _, c := range comps {
		if c.Size >= minSize {
			keep[c.Label] = true
		}
	}
	out := NewMatrixOf[uint8](len(bin), len(bin[0]))
	for r := range bin {
		for c := range bin[r] {
			if bin[r][c] == 1 && keep[labels[r][c]] {
				out[r][c] = 1
			}
		}
	}
	return out, nil
}

func dimsU8(m [][]uint8) (rows, cols int, err error) {
	rows = len(m)
	if rows == 0 {
		return 0, 0, fmt.Errorf("imgproc: empty binary matrix")
	}
	cols = len(m[0])
	for r, row := range m {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("imgproc: ragged binary matrix: row %d has %d cols, want %d", r, len(row), cols)
		}
	}
	if cols == 0 {
		return 0, 0, fmt.Errorf("imgproc: binary matrix has zero columns")
	}
	return rows, cols, nil
}
