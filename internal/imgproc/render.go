package imgproc

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"
)

// RenderOptions control matrix-to-image conversion.
type RenderOptions struct {
	// Gamma compresses dynamic range (0 means 0.5, a square-root curve
	// that keeps weak echoes visible next to the carrier).
	Gamma float64
	// ZoomX and ZoomY replicate pixels for visibility (0 means 1).
	ZoomX, ZoomY int
}

func (o RenderOptions) normalize() RenderOptions {
	if o.Gamma == 0 {
		o.Gamma = 0.5
	}
	if o.ZoomX == 0 {
		o.ZoomX = 1
	}
	if o.ZoomY == 0 {
		o.ZoomY = 1
	}
	return o
}

// heat maps a normalized intensity to a dark-blue→yellow heat color.
func heat(v float64) color.NRGBA {
	switch {
	case v < 0:
		v = 0
	case v > 1:
		v = 1
	}
	r := math.Min(1, 3*v)
	g := math.Min(1, math.Max(0, 3*v-1))
	b := math.Min(1, math.Max(0, 3*v-2))
	return color.NRGBA{
		R: uint8(255 * r),
		G: uint8(255 * g),
		B: uint8(255 * (0.25 + 0.75*b) * (1 - 0.7*v)),
		A: 255,
	}
}

// RenderMatrixPNG writes m (rows = time frames, columns = frequency bins)
// as a PNG heat map with time on the X axis and frequency increasing
// upward on the Y axis — the conventional spectrogram orientation used by
// the paper's Fig. 8.
func RenderMatrixPNG(w io.Writer, m [][]float64, opts RenderOptions) error {
	rows, cols, err := Dims(m)
	if err != nil {
		return err
	}
	opts = opts.normalize()
	// Normalize a copy for display.
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range m {
		for _, v := range row {
			minV = math.Min(minV, v)
			maxV = math.Max(maxV, v)
		}
	}
	span := maxV - minV
	img := image.NewNRGBA(image.Rect(0, 0, rows*opts.ZoomX, cols*opts.ZoomY))
	for f := 0; f < rows; f++ {
		for b := 0; b < cols; b++ {
			v := 0.0
			if span > 0 {
				v = (m[f][b] - minV) / span
			}
			c := heat(math.Pow(v, opts.Gamma))
			for dx := 0; dx < opts.ZoomX; dx++ {
				for dy := 0; dy < opts.ZoomY; dy++ {
					// Flip Y: low frequency at the bottom.
					img.SetNRGBA(f*opts.ZoomX+dx, (cols-1-b)*opts.ZoomY+dy, c)
				}
			}
		}
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("imgproc: encoding PNG: %w", err)
	}
	return nil
}

// RenderBinaryPNG writes a binary image as black-on-white.
func RenderBinaryPNG(w io.Writer, bin [][]uint8, opts RenderOptions) error {
	rows, cols, err := dimsU8(bin)
	if err != nil {
		return err
	}
	opts = opts.normalize()
	img := image.NewNRGBA(image.Rect(0, 0, rows*opts.ZoomX, cols*opts.ZoomY))
	for f := 0; f < rows; f++ {
		for b := 0; b < cols; b++ {
			c := color.NRGBA{R: 245, G: 245, B: 245, A: 255}
			if bin[f][b] == 1 {
				c = color.NRGBA{R: 20, G: 20, B: 20, A: 255}
			}
			for dx := 0; dx < opts.ZoomX; dx++ {
				for dy := 0; dy < opts.ZoomY; dy++ {
					img.SetNRGBA(f*opts.ZoomX+dx, (cols-1-b)*opts.ZoomY+dy, c)
				}
			}
		}
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("imgproc: encoding PNG: %w", err)
	}
	return nil
}

// RenderProfilePNG plots a 1-D Doppler profile (Hz per frame) as a
// polyline with a zero axis — the Fig. 8(d)-style view.
func RenderProfilePNG(w io.Writer, profile []float64, height int, opts RenderOptions) error {
	if len(profile) == 0 {
		return fmt.Errorf("imgproc: empty profile")
	}
	if height <= 8 {
		height = 160
	}
	opts = opts.normalize()
	peak := 1.0
	for _, v := range profile {
		if a := math.Abs(v); a > peak {
			peak = a
		}
	}
	width := len(profile) * opts.ZoomX
	img := image.NewNRGBA(image.Rect(0, 0, width, height))
	bg := color.NRGBA{R: 250, G: 250, B: 250, A: 255}
	axis := color.NRGBA{R: 180, G: 180, B: 180, A: 255}
	line := color.NRGBA{R: 30, G: 90, B: 200, A: 255}
	for x := 0; x < width; x++ {
		for y := 0; y < height; y++ {
			img.SetNRGBA(x, y, bg)
		}
		img.SetNRGBA(x, height/2, axis)
	}
	toY := func(v float64) int {
		y := height/2 - int(v/peak*float64(height/2-2))
		if y < 0 {
			y = 0
		}
		if y >= height {
			y = height - 1
		}
		return y
	}
	prevY := toY(profile[0])
	for i, v := range profile {
		y := toY(v)
		x := i * opts.ZoomX
		lo, hi := min(prevY, y), max(prevY, y)
		for yy := lo; yy <= hi; yy++ {
			for dx := 0; dx < opts.ZoomX; dx++ {
				img.SetNRGBA(x+dx, yy, line)
			}
		}
		prevY = y
	}
	if err := png.Encode(w, img); err != nil {
		return fmt.Errorf("imgproc: encoding PNG: %w", err)
	}
	return nil
}
