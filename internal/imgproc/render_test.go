package imgproc

import (
	"bytes"
	"image/png"
	"testing"
)

func TestRenderMatrixPNG(t *testing.T) {
	m := NewMatrix(20, 10)
	m[5][5] = 10
	m[6][5] = 8
	var buf bytes.Buffer
	if err := RenderMatrixPNG(&buf, m, RenderOptions{ZoomX: 2, ZoomY: 3}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 40 || b.Dy() != 30 {
		t.Errorf("image %dx%d, want 40x30", b.Dx(), b.Dy())
	}
	if err := RenderMatrixPNG(&buf, nil, RenderOptions{}); err == nil {
		t.Error("empty matrix accepted")
	}
}

func TestRenderMatrixPNGConstant(t *testing.T) {
	// Constant matrices (zero span) must render without dividing by zero.
	m := NewMatrix(4, 4)
	var buf bytes.Buffer
	if err := RenderMatrixPNG(&buf, m, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderBinaryPNG(t *testing.T) {
	bin := [][]uint8{{0, 1}, {1, 0}, {1, 1}}
	var buf bytes.Buffer
	if err := RenderBinaryPNG(&buf, bin, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 3 || img.Bounds().Dy() != 2 {
		t.Errorf("image %v", img.Bounds())
	}
	if err := RenderBinaryPNG(&buf, [][]uint8{{1}, {1, 0}}, RenderOptions{}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestRenderProfilePNG(t *testing.T) {
	profile := []float64{0, 10, 40, 90, 40, 0, -30, -80, -20, 0}
	var buf bytes.Buffer
	if err := RenderProfilePNG(&buf, profile, 120, RenderOptions{ZoomX: 4}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 40 || img.Bounds().Dy() != 120 {
		t.Errorf("image %v, want 40x120", img.Bounds())
	}
	if err := RenderProfilePNG(&buf, nil, 100, RenderOptions{}); err == nil {
		t.Error("empty profile accepted")
	}
	// Tiny height falls back to a sane default.
	if err := RenderProfilePNG(&buf, profile, 2, RenderOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestHeatColormapRange(t *testing.T) {
	for _, v := range []float64{-1, 0, 0.25, 0.5, 0.75, 1, 2} {
		c := heat(v)
		_ = c // constructing must not panic; components are uint8 by type
	}
	lo, hi := heat(0), heat(1)
	if lo.R >= hi.R {
		t.Error("colormap not increasing in red channel")
	}
}
