package imgproc

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func binFrom(rows []string) [][]uint8 {
	out := make([][]uint8, len(rows))
	for r, s := range rows {
		out[r] = make([]uint8, len(s))
		for c := range s {
			if s[c] == '1' {
				out[r][c] = 1
			}
		}
	}
	return out
}

func TestFillHolesClosesInterior(t *testing.T) {
	in := binFrom([]string{
		"11111",
		"10001",
		"10101",
		"10001",
		"11111",
	})
	out, err := FillHoles(in)
	if err != nil {
		t.Fatal(err)
	}
	for r := range out {
		for c := range out[r] {
			if out[r][c] != 1 {
				t.Fatalf("hole at %d,%d not filled", r, c)
			}
		}
	}
}

func TestFillHolesKeepsBorderBackground(t *testing.T) {
	in := binFrom([]string{
		"00000",
		"01110",
		"01110",
		"00000",
	})
	out, err := FillHoles(in)
	if err != nil {
		t.Fatal(err)
	}
	// Outside background must survive.
	if out[0][0] != 0 || out[3][4] != 0 {
		t.Error("border-connected background was filled")
	}
	// Foreground survives.
	if out[1][1] != 1 {
		t.Error("foreground pixel lost")
	}
}

func TestFillHolesBayAccessibleFromBorder(t *testing.T) {
	// A bay (concavity open to the border) is not a hole.
	in := binFrom([]string{
		"11111",
		"10001",
		"10001",
		"10001",
	})
	out, err := FillHoles(in)
	if err != nil {
		t.Fatal(err)
	}
	if out[2][2] != 0 {
		t.Error("bay was incorrectly filled")
	}
}

func TestFillHolesErrors(t *testing.T) {
	if _, err := FillHoles(nil); err == nil {
		t.Error("nil matrix accepted")
	}
	if _, err := FillHoles([][]uint8{{1, 0}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func randomBinary(seed uint64, rows, cols int) [][]uint8 {
	rng := rand.New(rand.NewPCG(seed, 5))
	m := make([][]uint8, rows)
	for r := range m {
		m[r] = make([]uint8, cols)
		for c := range m[r] {
			if rng.Float64() < 0.45 {
				m[r][c] = 1
			}
		}
	}
	return m
}

func TestFillHolesIdempotentProperty(t *testing.T) {
	// Property: FillHoles(FillHoles(x)) == FillHoles(x).
	f := func(seed uint64) bool {
		in := randomBinary(seed, 9, 11)
		once, err := FillHoles(in)
		if err != nil {
			return false
		}
		twice, err := FillHoles(once)
		if err != nil {
			return false
		}
		for r := range once {
			for c := range once[r] {
				if once[r][c] != twice[r][c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFillHolesMonotoneProperty(t *testing.T) {
	// Property: FillHoles never clears a foreground pixel.
	f := func(seed uint64) bool {
		in := randomBinary(seed, 8, 8)
		out, err := FillHoles(in)
		if err != nil {
			return false
		}
		for r := range in {
			for c := range in[r] {
				if in[r][c] == 1 && out[r][c] != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConnectedComponents(t *testing.T) {
	in := binFrom([]string{
		"1100",
		"1100",
		"0011",
		"0011",
	})
	labels, comps, err := ConnectedComponents(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 2 {
		t.Fatalf("found %d components, want 2", len(comps))
	}
	if comps[0].Size != 4 || comps[1].Size != 4 {
		t.Errorf("component sizes %d, %d, want 4, 4", comps[0].Size, comps[1].Size)
	}
	if comps[0].MinRow != 0 || comps[0].MaxRow != 1 || comps[0].MinCol != 0 || comps[0].MaxCol != 1 {
		t.Errorf("component 1 bounds wrong: %+v", comps[0])
	}
	if labels[0][0] == labels[3][3] {
		t.Error("diagonal-only neighbors merged under 4-connectivity")
	}
	if labels[0][2] != 0 {
		t.Error("background labeled")
	}
}

func TestConnectedComponentsSizesSumProperty(t *testing.T) {
	// Property: component sizes sum to the number of foreground pixels.
	f := func(seed uint64) bool {
		in := randomBinary(seed, 10, 10)
		_, comps, err := ConnectedComponents(in)
		if err != nil {
			return false
		}
		sum := 0
		for _, c := range comps {
			sum += c.Size
		}
		fg := 0
		for _, row := range in {
			for _, v := range row {
				if v == 1 {
					fg++
				}
			}
		}
		return sum == fg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRemoveSmallComponents(t *testing.T) {
	in := binFrom([]string{
		"1000",
		"0000",
		"0111",
		"0111",
	})
	out, err := RemoveSmallComponents(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if out[0][0] != 0 {
		t.Error("1-pixel speck survived")
	}
	if out[2][1] != 1 {
		t.Error("large component removed")
	}
}
