package imgproc

import "testing"

// The enhancement chain runs once per pipeline flush on the hot path,
// so its matrix constructors were rewritten to share one contiguous
// backing allocation instead of allocating every row (flagged by
// hotprop). These tests pin the post-fix allocation budgets: with
// 32-row inputs the old per-row scheme cost ≥ rows allocations per
// call, so a single-digit bound fails loudly on any regression.

func grid(rows, cols int) [][]uint8 {
	m := NewMatrixOf[uint8](rows, cols)
	for r := 2; r < rows-2; r++ {
		for c := 2; c < cols-2; c++ {
			m[r][c] = 1
		}
	}
	// Punch an interior hole so FillHoles and the component scan do work.
	m[rows/2][cols/2] = 0
	return m
}

func TestFillHolesAllocBudget(t *testing.T) {
	bin := grid(32, 32)
	got := testing.AllocsPerRun(20, func() {
		if _, err := FillHoles(bin); err != nil {
			t.Fatal(err)
		}
	})
	if got > 8 {
		t.Errorf("FillHoles allocates %.0f times per call, want <= 8 (contiguous backing regressed)", got)
	}
}

func TestConnectedComponentsAllocBudget(t *testing.T) {
	bin := grid(32, 32)
	got := testing.AllocsPerRun(20, func() {
		if _, _, err := ConnectedComponents(bin); err != nil {
			t.Fatal(err)
		}
	})
	if got > 8 {
		t.Errorf("ConnectedComponents allocates %.0f times per call, want <= 8 (contiguous backing regressed)", got)
	}
}

func TestRemoveSmallComponentsAllocBudget(t *testing.T) {
	bin := grid(32, 32)
	got := testing.AllocsPerRun(20, func() {
		if _, err := RemoveSmallComponents(bin, 2); err != nil {
			t.Fatal(err)
		}
	})
	if got > 16 {
		t.Errorf("RemoveSmallComponents allocates %.0f times per call, want <= 16 (contiguous backing regressed)", got)
	}
}

func TestBinarizeAllocBudget(t *testing.T) {
	m := NewMatrix(32, 32)
	got := testing.AllocsPerRun(20, func() {
		Binarize(m, 0.5)
	})
	if got > 2 {
		t.Errorf("Binarize allocates %.0f times per call, want <= 2 (contiguous backing regressed)", got)
	}
}

// TestBinarizeRaggedShape pins the pre-rewrite contract that Binarize,
// unlike the validating operations, accepts ragged input and mirrors
// its shape.
func TestBinarizeRaggedShape(t *testing.T) {
	m := [][]float64{{0.9}, {0.1, 0.8, 0.2}, {}}
	out := Binarize(m, 0.5)
	if len(out) != len(m) {
		t.Fatalf("rows: got %d, want %d", len(out), len(m))
	}
	for r := range m {
		if len(out[r]) != len(m[r]) {
			t.Fatalf("row %d length: got %d, want %d", r, len(out[r]), len(m[r]))
		}
	}
	want := [][]uint8{{1}, {0, 1, 0}, {}}
	for r := range want {
		for c := range want[r] {
			if out[r][c] != want[r][c] {
				t.Errorf("out[%d][%d] = %d, want %d", r, c, out[r][c], want[r][c])
			}
		}
	}
}
