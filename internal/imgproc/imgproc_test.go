package imgproc

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestDims(t *testing.T) {
	if _, _, err := Dims(nil); err == nil {
		t.Error("empty matrix accepted")
	}
	if _, _, err := Dims([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix accepted")
	}
	if _, _, err := Dims([][]float64{{}}); err == nil {
		t.Error("zero-column matrix accepted")
	}
	r, c, err := Dims([][]float64{{1, 2, 3}, {4, 5, 6}})
	if err != nil || r != 2 || c != 3 {
		t.Errorf("Dims = %d,%d,%v; want 2,3,nil", r, c, err)
	}
}

func TestNewMatrixContiguousAndZero(t *testing.T) {
	m := NewMatrix(3, 4)
	if len(m) != 3 || len(m[0]) != 4 {
		t.Fatalf("dims %dx%d, want 3x4", len(m), len(m[0]))
	}
	for r := range m {
		for c := range m[r] {
			if m[r][c] != 0 {
				t.Fatalf("m[%d][%d] = %g, want 0", r, c, m[r][c])
			}
		}
	}
	// Rows must not alias each other.
	m[0][3] = 7
	if m[1][0] == 7 {
		t.Error("rows alias")
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := [][]float64{{1, 2}, {3, 4}}
	c := Clone(m)
	c[1][1] = 99
	if m[1][1] == 99 {
		t.Error("Clone shares storage")
	}
}

func TestMedian3x3RemovesSalt(t *testing.T) {
	m := NewMatrix(5, 5)
	m[2][2] = 100 // isolated spike
	out, err := Median3x3(m)
	if err != nil {
		t.Fatal(err)
	}
	if out[2][2] != 0 {
		t.Errorf("median kept the spike: %g", out[2][2])
	}
}

func TestMedian3x3PreservesLargeBlob(t *testing.T) {
	m := NewMatrix(7, 7)
	for r := 2; r <= 4; r++ {
		for c := 2; c <= 4; c++ {
			m[r][c] = 10
		}
	}
	out, err := Median3x3(m)
	if err != nil {
		t.Fatal(err)
	}
	if out[3][3] != 10 {
		t.Errorf("median destroyed blob center: %g", out[3][3])
	}
}

func TestGaussianKernel(t *testing.T) {
	if _, err := GaussianKernel(4, 1); err == nil {
		t.Error("even kernel size accepted")
	}
	k, err := GaussianKernel(5, 1)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range k {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("kernel sum = %g, want 1", sum)
	}
	// Symmetric with peak at center.
	if k[0] != k[4] || k[1] != k[3] {
		t.Error("kernel not symmetric")
	}
	if k[2] <= k[1] {
		t.Error("kernel peak not at center")
	}
}

func TestGaussianBlurPreservesMassApproximately(t *testing.T) {
	m := NewMatrix(9, 9)
	m[4][4] = 81
	out, err := GaussianBlur(m, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, row := range out {
		for _, v := range row {
			sum += v
		}
	}
	// Border renormalization keeps total mass within a few percent for an
	// interior impulse.
	if math.Abs(sum-81) > 2 {
		t.Errorf("mass after blur = %g, want ≈81", sum)
	}
	if out[4][4] >= 81 {
		t.Error("blur did not spread the impulse")
	}
	if out[4][3] <= 0 {
		t.Error("blur left neighbors empty")
	}
}

func TestGaussianBlurConstantFixedPointProperty(t *testing.T) {
	// Property: constant images are fixed points of the blur.
	f := func(cRaw int16) bool {
		c := float64(cRaw)
		m := NewMatrix(6, 6)
		for r := range m {
			for i := range m[r] {
				m[r][i] = c
			}
		}
		out, err := GaussianBlur(m, 5, 0)
		if err != nil {
			return false
		}
		for r := range out {
			for i := range out[r] {
				if math.Abs(out[r][i]-c) > 1e-9*(1+math.Abs(c)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestThreshold(t *testing.T) {
	m := [][]float64{{1, 5, 10}}
	Threshold(m, 5)
	want := []float64{0, 5, 10}
	for i := range want {
		if m[0][i] != want[i] {
			t.Errorf("m[0][%d] = %g, want %g", i, m[0][i], want[i])
		}
	}
}

func TestNormalize01(t *testing.T) {
	m := [][]float64{{2, 6}, {4, 10}}
	Normalize01(m)
	if m[0][0] != 0 || m[1][1] != 1 {
		t.Errorf("normalize endpoints wrong: %v", m)
	}
	if math.Abs(m[0][1]-0.5) > 1e-12 {
		t.Errorf("mid value = %g, want 0.5", m[0][1])
	}
	// Constant matrix becomes zeros.
	c := [][]float64{{3, 3}}
	Normalize01(c)
	if c[0][0] != 0 || c[0][1] != 0 {
		t.Errorf("constant matrix = %v, want zeros", c)
	}
}

func TestBinarize(t *testing.T) {
	m := [][]float64{{0.1, 0.15, 0.2}}
	b := Binarize(m, 0.15)
	want := []uint8{0, 1, 1}
	for i := range want {
		if b[0][i] != want[i] {
			t.Errorf("b[0][%d] = %d, want %d", i, b[0][i], want[i])
		}
	}
}

func TestBinarizeOutputsOnlyBinaryProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 4))
		m := NewMatrix(4, 5)
		for r := range m {
			for c := range m[r] {
				m[r][c] = rng.Float64()
			}
		}
		for _, row := range Binarize(m, 0.5) {
			for _, v := range row {
				if v != 0 && v != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
