// Package infer implements EchoWrite's text-inference layer (§III-C,
// Algorithm 2): Bayesian word recognition over stroke sequences, the
// paper's restricted stroke-correction rule, top-k candidate lists, and
// bigram next-word prediction.
package infer

import (
	"fmt"

	"repro/internal/stroke"
)

// Confusion is the stroke confusion model: Confusion[intended][observed]
// is P(recognize observed | user wrote intended), indexed by
// Stroke.Index(). Rows must sum to 1.
type Confusion [stroke.NumStrokes][stroke.NumStrokes]float64

// Validate checks that every row is a probability distribution.
func (c *Confusion) Validate() error {
	for i, row := range c {
		sum := 0.0
		for _, p := range row {
			if p < 0 || p > 1 {
				return fmt.Errorf("infer: confusion[%d] has probability %g outside [0,1]", i, p)
			}
			sum += p
		}
		if sum < 0.999 || sum > 1.001 {
			return fmt.Errorf("infer: confusion row %d sums to %g, want 1", i, sum)
		}
	}
	return nil
}

// P returns P(observed|intended).
func (c *Confusion) P(intended, observed stroke.Stroke) float64 {
	if !intended.Valid() || !observed.Valid() {
		return 0
	}
	return c[intended.Index()][observed.Index()]
}

// Normalize rescales each row to sum to 1 (rows of all zeros become
// uniform).
func (c *Confusion) Normalize() {
	for i := range c {
		sum := 0.0
		for _, p := range c[i] {
			sum += p
		}
		if sum == 0 {
			for j := range c[i] {
				c[i][j] = 1.0 / stroke.NumStrokes
			}
			continue
		}
		for j := range c[i] {
			c[i][j] /= sum
		}
	}
}

// DefaultConfusion returns a calibrated confusion model reflecting the
// paper's reported error structure (§III-C): S2, S4 and S6 are
// occasionally recognized as S1 (S1's high false-positive rate), and S5 is
// occasionally recognized as S2 or S6 (S5's high false-negative rate).
// Diagonal values sit in the paper's 88–99 % per-stroke accuracy range
// (Fig. 12).
func DefaultConfusion() *Confusion {
	c := &Confusion{}
	set := func(intended stroke.Stroke, probs map[stroke.Stroke]float64) {
		for observed, p := range probs {
			c[intended.Index()][observed.Index()] = p
		}
	}
	set(stroke.S1, map[stroke.Stroke]float64{
		stroke.S1: 0.965, stroke.S2: 0.010, stroke.S3: 0.005,
		stroke.S4: 0.005, stroke.S5: 0.005, stroke.S6: 0.010,
	})
	set(stroke.S2, map[stroke.Stroke]float64{
		stroke.S1: 0.035, stroke.S2: 0.945, stroke.S3: 0.005,
		stroke.S4: 0.005, stroke.S5: 0.005, stroke.S6: 0.005,
	})
	set(stroke.S3, map[stroke.Stroke]float64{
		stroke.S1: 0.005, stroke.S2: 0.005, stroke.S3: 0.975,
		stroke.S4: 0.005, stroke.S5: 0.005, stroke.S6: 0.005,
	})
	set(stroke.S4, map[stroke.Stroke]float64{
		stroke.S1: 0.045, stroke.S2: 0.010, stroke.S3: 0.005,
		stroke.S4: 0.920, stroke.S5: 0.010, stroke.S6: 0.010,
	})
	set(stroke.S5, map[stroke.Stroke]float64{
		stroke.S1: 0.010, stroke.S2: 0.035, stroke.S3: 0.005,
		stroke.S4: 0.010, stroke.S5: 0.900, stroke.S6: 0.040,
	})
	set(stroke.S6, map[stroke.Stroke]float64{
		stroke.S1: 0.040, stroke.S2: 0.005, stroke.S3: 0.005,
		stroke.S4: 0.005, stroke.S5: 0.010, stroke.S6: 0.935,
	})
	c.Normalize()
	return c
}
