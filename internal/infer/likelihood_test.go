package infer

import (
	"testing"

	"repro/internal/stroke"
)

// uniformRows builds likelihood rows concentrated on the observed strokes
// with the given mass, spreading the rest uniformly.
func uniformRows(observed stroke.Sequence, mass float64) [][stroke.NumStrokes]float64 {
	rows := make([][stroke.NumStrokes]float64, len(observed))
	rest := (1 - mass) / (stroke.NumStrokes - 1)
	for i, st := range observed {
		for j := range rows[i] {
			rows[i][j] = rest
		}
		rows[i][st.Index()] = mass
	}
	return rows
}

func TestRecognizeWithLikelihoodsExact(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	seq, err := r.Dictionary().Scheme().Encode("the")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := r.RecognizeWithLikelihoods(seq, uniformRows(seq, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || cands[0].Word != "the" {
		t.Errorf("candidates = %v", cands)
	}
}

func TestRecognizeWithLikelihoodsValidation(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	if _, err := r.RecognizeWithLikelihoods(nil, nil); err == nil {
		t.Error("empty sequence accepted")
	}
	seq := stroke.Sequence{stroke.S1, stroke.S2}
	if _, err := r.RecognizeWithLikelihoods(seq, uniformRows(seq[:1], 0.9)); err == nil {
		t.Error("row-count mismatch accepted")
	}
}

func TestLikelihoodsOverrideAmbiguity(t *testing.T) {
	// "he" and "it" share the stroke sequence S2-S1; "it" wins on prior
	// frequency. A likelihood row strongly favoring the *correction*
	// S5 at position 1 should instead surface an S2-S5 word.
	r := newTestRecognizer(t, DefaultConfig())
	seq, err := r.Dictionary().Scheme().Encode("he")
	if err != nil {
		t.Fatal(err)
	}
	// Confusion-matrix scoring: "it" ranks first (frequency).
	base, err := r.Recognize(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 || base[0].Word != "it" {
		t.Fatalf("baseline top = %v, want \"it\"", base)
	}
	// Likelihood scoring with near-certain observations keeps the same
	// class but ranks by prior within it — top stays an S2-S1 word.
	cands, err := r.RecognizeWithLikelihoods(seq, uniformRows(seq, 0.99))
	if err != nil {
		t.Fatal(err)
	}
	top, err := r.Dictionary().Scheme().Encode(cands[0].Word)
	if err != nil {
		t.Fatal(err)
	}
	if !top.Equal(seq) {
		t.Errorf("high-confidence likelihoods surfaced corrected word %q", cands[0].Word)
	}
	// Now make position 0 ambiguous toward S5 (observed S2, but the
	// profile actually looked like S5 — exactly the paper's S5 false
	// negative, which the correction rule S2→S5 covers): corrected
	// S5-S1 words such as "of" should outrank plain S2-S1 ones.
	rows := uniformRows(seq, 0.95)
	for j := range rows[0] {
		rows[0][j] = 0.02
	}
	rows[0][stroke.S5.Index()] = 0.88
	rows[0][stroke.S2.Index()] = 0.08
	cands, err = r.RecognizeWithLikelihoods(seq, rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	topSeq, err := r.Dictionary().Scheme().Encode(cands[0].Word)
	if err != nil {
		t.Fatal(err)
	}
	if topSeq[0] != stroke.S5 {
		t.Errorf("likelihoods did not steer correction: top %q (%v)", cands[0].Word, topSeq)
	}
}

func TestLikelihoodCandidatesRespectTopK(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TopK = 2
	r := newTestRecognizer(t, cfg)
	seq, err := r.Dictionary().Scheme().Encode("in")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := r.RecognizeWithLikelihoods(seq, uniformRows(seq, 0.9))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 2 {
		t.Errorf("TopK=2 returned %d candidates", len(cands))
	}
}
