package infer

import "repro/internal/stroke"

// CorrectionScope selects how aggressively stroke correction expands the
// candidate set.
type CorrectionScope int

// Correction scopes.
const (
	// CorrectionNone disables correction: only the observed sequence is
	// looked up (the paper's "without stroke correction" baseline of
	// Fig. 15).
	CorrectionNone CorrectionScope = iota + 1
	// CorrectionPaper applies the paper's restricted rule: substitute one
	// observed S1 by S2/S4/S6, or one observed S2/S6 by S5, one position
	// at a time. The rule inverts the dominant recognition errors (S1's
	// false positives, S5's false negatives).
	CorrectionPaper
	// CorrectionFull substitutes any single position by any other stroke
	// (edit distance 1, substitution only) — the exhaustive variant the
	// paper rejects as unnecessary; kept for the ablation benchmark.
	CorrectionFull
)

// String implements fmt.Stringer.
func (s CorrectionScope) String() string {
	switch s {
	case CorrectionNone:
		return "none"
	case CorrectionPaper:
		return "paper"
	case CorrectionFull:
		return "full"
	default:
		return "unknown"
	}
}

// paperSubstitutions maps an observed stroke to the intended strokes it
// frequently masks (inverse of the dominant confusions).
var paperSubstitutions = map[stroke.Stroke][]stroke.Stroke{
	stroke.S1: {stroke.S2, stroke.S4, stroke.S6},
	stroke.S2: {stroke.S5},
	stroke.S6: {stroke.S5},
}

// Corrections returns the candidate sequences for an observed sequence
// under the given scope. The observed sequence itself is always first;
// every candidate has the same length (substitution-only, per the paper's
// argument that the acceleration-based detector makes insert/delete errors
// negligible).
func Corrections(observed stroke.Sequence, scope CorrectionScope) []stroke.Sequence {
	out := []stroke.Sequence{append(stroke.Sequence(nil), observed...)}
	switch scope {
	case CorrectionNone:
		return out
	case CorrectionFull:
		for i, cur := range observed {
			for _, alt := range stroke.AllStrokes() {
				if alt == cur {
					continue
				}
				cand := append(stroke.Sequence(nil), observed...)
				cand[i] = alt
				out = append(out, cand)
			}
		}
		return out
	default: // CorrectionPaper
		for i, cur := range observed {
			for _, alt := range paperSubstitutions[cur] {
				cand := append(stroke.Sequence(nil), observed...)
				cand[i] = alt
				out = append(out, cand)
			}
		}
		return out
	}
}
