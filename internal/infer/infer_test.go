package infer

import (
	"testing"
	"testing/quick"

	"repro/internal/lexicon"
	"repro/internal/stroke"
)

func TestDefaultConfusionValid(t *testing.T) {
	c := DefaultConfusion()
	if err := c.Validate(); err != nil {
		t.Fatalf("default confusion invalid: %v", err)
	}
	// Diagonal dominates each row.
	for _, s := range stroke.AllStrokes() {
		diag := c.P(s, s)
		for _, o := range stroke.AllStrokes() {
			if o != s && c.P(s, o) >= diag {
				t.Errorf("P(%v|%v)=%g >= diagonal %g", o, s, c.P(s, o), diag)
			}
		}
	}
	// The paper's error structure: S1 false positives from S2/S4/S6, S5
	// false negatives toward S2/S6.
	if c.P(stroke.S4, stroke.S1) <= c.P(stroke.S4, stroke.S3) {
		t.Error("S4→S1 confusion should exceed S4→S3")
	}
	if c.P(stroke.S5, stroke.S6) <= c.P(stroke.S5, stroke.S3) {
		t.Error("S5→S6 confusion should exceed S5→S3")
	}
}

func TestConfusionValidateCatchesBadRows(t *testing.T) {
	var c Confusion
	if err := c.Validate(); err == nil {
		t.Error("zero matrix accepted")
	}
	c = *DefaultConfusion()
	c[0][0] = 2
	if err := c.Validate(); err == nil {
		t.Error("out-of-range probability accepted")
	}
}

func TestConfusionNormalize(t *testing.T) {
	var c Confusion
	c[0][0], c[0][1] = 3, 1
	c.Normalize()
	if c[0][0] != 0.75 || c[0][1] != 0.25 {
		t.Errorf("row 0 = %v", c[0])
	}
	// Empty rows become uniform.
	if c[1][0] != 1.0/stroke.NumStrokes {
		t.Errorf("empty row value = %g", c[1][0])
	}
}

func TestConfusionPInvalidStrokes(t *testing.T) {
	c := DefaultConfusion()
	if c.P(stroke.Stroke(0), stroke.S1) != 0 || c.P(stroke.S1, stroke.Stroke(9)) != 0 {
		t.Error("invalid strokes should give 0")
	}
}

func TestCorrectionsNone(t *testing.T) {
	obs := stroke.Sequence{stroke.S1, stroke.S2}
	cands := Corrections(obs, CorrectionNone)
	if len(cands) != 1 || !cands[0].Equal(obs) {
		t.Errorf("CorrectionNone = %v", cands)
	}
}

func TestCorrectionsPaperRule(t *testing.T) {
	// Observed S1 expands to S2/S4/S6 at that position; observed S2 and
	// S6 expand to S5; S3/S4/S5 expand to nothing.
	obs := stroke.Sequence{stroke.S1, stroke.S3}
	cands := Corrections(obs, CorrectionPaper)
	want := []stroke.Sequence{
		{stroke.S1, stroke.S3},
		{stroke.S2, stroke.S3},
		{stroke.S4, stroke.S3},
		{stroke.S6, stroke.S3},
	}
	if len(cands) != len(want) {
		t.Fatalf("got %d candidates %v, want %d", len(cands), cands, len(want))
	}
	for i := range want {
		if !cands[i].Equal(want[i]) {
			t.Errorf("candidate %d = %v, want %v", i, cands[i], want[i])
		}
	}
}

func TestCorrectionsSingleSubstitutionOnly(t *testing.T) {
	obs := stroke.Sequence{stroke.S1, stroke.S1}
	for _, c := range Corrections(obs, CorrectionPaper) {
		diff := 0
		for i := range obs {
			if c[i] != obs[i] {
				diff++
			}
		}
		if diff > 1 {
			t.Errorf("candidate %v differs in %d positions", c, diff)
		}
	}
}

func TestCorrectionsFullCount(t *testing.T) {
	obs := stroke.Sequence{stroke.S1, stroke.S2, stroke.S3}
	cands := Corrections(obs, CorrectionFull)
	// 1 original + 3 positions × 5 alternatives.
	if len(cands) != 16 {
		t.Errorf("full correction gave %d candidates, want 16", len(cands))
	}
}

func TestCorrectionsLengthPreservedProperty(t *testing.T) {
	f := func(raw []uint8, scopeRaw uint8) bool {
		if len(raw) == 0 || len(raw) > 12 {
			return true
		}
		obs := make(stroke.Sequence, len(raw))
		for i, b := range raw {
			obs[i] = stroke.Stroke(int(b%stroke.NumStrokes) + 1)
		}
		scope := []CorrectionScope{CorrectionNone, CorrectionPaper, CorrectionFull}[scopeRaw%3]
		for _, c := range Corrections(obs, scope) {
			if len(c) != len(obs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func newTestRecognizer(t *testing.T, cfg Config) *Recognizer {
	t.Helper()
	dict, err := lexicon.Default()
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRecognizer(dict, DefaultConfusion(), lexicon.DefaultBigram(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRecognizeExactWord(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	seq, err := r.Dictionary().Scheme().Encode("the")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := r.Recognize(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	// "the" is the highest-frequency word; with a correct stroke
	// sequence it must rank first.
	if cands[0].Word != "the" {
		t.Errorf("top candidate = %q, want \"the\"", cands[0].Word)
	}
	if cands[0].Corrected {
		t.Error("exact match flagged as corrected")
	}
}

func TestRecognizeWithSubstitutionError(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	seq, err := r.Dictionary().Scheme().Encode("the")
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt one stroke the way the pipeline plausibly would:
	// T (S1) recognized correctly, H (S2) misrecognized as S1.
	// The paper rule substitutes observed S1 back to S2.
	corrupted := append(stroke.Sequence(nil), seq...)
	for i, s := range corrupted {
		if s == stroke.S2 {
			corrupted[i] = stroke.S1
			break
		}
	}
	cands, err := r.Recognize(corrupted)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range cands {
		if c.Word == "the" {
			found = true
		}
	}
	if !found {
		t.Errorf(`"the" not recovered by correction: %v`, cands)
	}
}

func TestRecognizeTopKLimit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TopK = 2
	r := newTestRecognizer(t, cfg)
	seq, err := r.Dictionary().Scheme().Encode("he")
	if err != nil {
		t.Fatal(err)
	}
	cands, err := r.Recognize(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) > 2 {
		t.Errorf("TopK=2 returned %d candidates", len(cands))
	}
}

func TestRecognizeEmptySequence(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	if _, err := r.Recognize(nil); err == nil {
		t.Error("empty sequence accepted")
	}
}

func TestRecognizeUnknownSequence(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	// A long implausible sequence with no dictionary match.
	seq := make(stroke.Sequence, 18)
	for i := range seq {
		seq[i] = stroke.S3
	}
	cands, err := r.Recognize(seq)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("unexpected candidates: %v", cands)
	}
}

func TestNewRecognizerValidation(t *testing.T) {
	dict, err := lexicon.Default()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRecognizer(nil, DefaultConfusion(), nil, DefaultConfig()); err == nil {
		t.Error("nil dictionary accepted")
	}
	if _, err := NewRecognizer(dict, nil, nil, DefaultConfig()); err == nil {
		t.Error("nil confusion accepted")
	}
	bad := DefaultConfig()
	bad.TopK = 0
	if _, err := NewRecognizer(dict, DefaultConfusion(), nil, bad); err == nil {
		t.Error("zero TopK accepted")
	}
	bad = DefaultConfig()
	bad.Correction = CorrectionScope(99)
	if _, err := NewRecognizer(dict, DefaultConfusion(), nil, bad); err == nil {
		t.Error("unknown correction scope accepted")
	}
}

func TestPredict(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	preds := r.Predict("the")
	if len(preds) == 0 {
		t.Error(`no predictions after "the"`)
	}
	// Without a bigram model prediction is disabled.
	dict, err := lexicon.Default()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRecognizer(dict, DefaultConfusion(), nil, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Predict("the") != nil {
		t.Error("prediction without bigram model")
	}
}

func TestSessionEnterWord(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	sess := NewSession(r)
	seq, err := r.Dictionary().Scheme().Encode("the")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.EnterWord("the", seq)
	if err != nil {
		t.Fatal(err)
	}
	if res.Chosen != "the" || res.Rank != 1 || res.Predicted {
		t.Errorf("result = %+v", res)
	}
	// Whatever the model's top prediction after "the" is, entering that
	// word next must hit the prediction path without needing strokes.
	preds := r.Predict("the")
	if len(preds) == 0 {
		t.Fatal(`no predictions after "the"`)
	}
	res2, err := sess.EnterWord(preds[0], nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Predicted || res2.Chosen != preds[0] {
		t.Errorf("prediction path not taken: %+v", res2)
	}
}

func TestSessionReset(t *testing.T) {
	r := newTestRecognizer(t, DefaultConfig())
	sess := NewSession(r)
	seq, err := r.Dictionary().Scheme().Encode("the")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.EnterWord("the", seq); err != nil {
		t.Fatal(err)
	}
	sess.Reset()
	// After reset, prediction context is gone; entering a word with nil
	// strokes must fail gracefully via Recognize's empty-sequence error.
	if _, err := sess.EnterWord("people", nil); err == nil {
		t.Error("empty strokes after reset should error")
	}
}

func TestScopeString(t *testing.T) {
	if CorrectionNone.String() != "none" || CorrectionPaper.String() != "paper" ||
		CorrectionFull.String() != "full" || CorrectionScope(9).String() != "unknown" {
		t.Error("String() values wrong")
	}
}
