package infer

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lexicon"
	"repro/internal/stroke"
)

// Candidate is one scored word suggestion.
type Candidate struct {
	// Word is the suggested word.
	Word string
	// Score is the unnormalized posterior P(w)·∏P(sᵢ|lᵢ).
	Score float64
	// Corrected reports whether the match required stroke correction
	// (the word's sequence differs from the observed one).
	Corrected bool
}

// Config parameterizes the recognizer.
type Config struct {
	// TopK is the number of candidates surfaced to the user (paper: 5).
	TopK int
	// Correction selects the correction scope (paper rule by default).
	Correction CorrectionScope
	// PredictK is the number of next-word predictions offered (paper
	// implicitly small; default 3).
	PredictK int
}

// DefaultConfig matches the paper's implementation choices.
func DefaultConfig() Config {
	return Config{TopK: 5, Correction: CorrectionPaper, PredictK: 3}
}

// Recognizer performs word recognition over stroke sequences.
type Recognizer struct {
	dict      *lexicon.Dictionary
	confusion *Confusion
	bigram    *lexicon.Bigram
	cfg       Config
}

// NewRecognizer assembles a recognizer. bigram may be nil to disable
// prediction.
func NewRecognizer(dict *lexicon.Dictionary, confusion *Confusion, bigram *lexicon.Bigram, cfg Config) (*Recognizer, error) {
	if dict == nil {
		return nil, fmt.Errorf("infer: nil dictionary")
	}
	if confusion == nil {
		return nil, fmt.Errorf("infer: nil confusion model")
	}
	if err := confusion.Validate(); err != nil {
		return nil, err
	}
	if cfg.TopK <= 0 {
		return nil, fmt.Errorf("infer: TopK must be positive, got %d", cfg.TopK)
	}
	switch cfg.Correction {
	case CorrectionNone, CorrectionPaper, CorrectionFull:
	default:
		return nil, fmt.Errorf("infer: unknown correction scope %d", cfg.Correction)
	}
	return &Recognizer{dict: dict, confusion: confusion, bigram: bigram, cfg: cfg}, nil
}

// Config returns the recognizer configuration.
func (r *Recognizer) Config() Config { return r.cfg }

// Dictionary returns the underlying dictionary.
func (r *Recognizer) Dictionary() *lexicon.Dictionary { return r.dict }

// Recognize implements Algorithm 2: expand the observed sequence with
// stroke correction, look every candidate sequence up in the dictionary,
// score matches by P(w)·∏P(observed sᵢ | intended stroke of lᵢ), and
// return the TopK candidates ordered by word length ascending then score
// descending (the paper's display order).
func (r *Recognizer) Recognize(observed stroke.Sequence) ([]Candidate, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("infer: empty stroke sequence")
	}
	candSeqs := Corrections(observed, r.cfg.Correction)
	seenWord := make(map[string]bool)
	var (
		entries []*lexicon.Entry
		flags   []bool
	)
	for i, seq := range candSeqs {
		for _, e := range r.dict.Lookup(seq) {
			if seenWord[e.Word] {
				continue
			}
			seenWord[e.Word] = true
			entries = append(entries, e)
			flags = append(flags, i > 0)
		}
	}
	if len(entries) == 0 {
		return nil, nil
	}
	cands := make([]Candidate, len(entries))
	for i, e := range entries {
		score := r.dict.Prior(e)
		for j, intended := range e.StrokeSeq {
			score *= r.confusion.P(intended, observed[j])
		}
		cands[i] = Candidate{Word: e.Word, Score: score, Corrected: flags[i]}
	}
	// All substitution-only candidates share the observed length, so the
	// length key is constant here; it matters once predictions of other
	// lengths join the list. Keep the paper's stated order.
	sort.SliceStable(cands, func(a, b int) bool {
		la, lb := len(cands[a].Word), len(cands[b].Word)
		if la != lb {
			return la < lb
		}
		return cands[a].Score > cands[b].Score
	})
	if len(cands) > r.cfg.TopK {
		cands = cands[:r.cfg.TopK]
	}
	return cands, nil
}

// RecognizeWithLikelihoods scores candidates using per-detection
// observation likelihoods instead of the global confusion matrix:
// P(w|I) ∝ P(w)·∏ L_i[stroke(l_i)], where L_i is the softmax the DTW
// matcher produced for position i. This is an extension beyond the paper
// (which uses the confusion matrix): per-instance likelihoods let a
// cleanly-written stroke outweigh the prior where the aggregate confusion
// statistics would not.
//
// likelihoods must have one row per observed stroke; each row holds the
// probability of each template (indexed by Stroke.Index()). The observed
// sequence is still used for correction-candidate generation.
func (r *Recognizer) RecognizeWithLikelihoods(observed stroke.Sequence, likelihoods [][stroke.NumStrokes]float64) ([]Candidate, error) {
	if len(observed) == 0 {
		return nil, fmt.Errorf("infer: empty stroke sequence")
	}
	if len(likelihoods) != len(observed) {
		return nil, fmt.Errorf("infer: %d likelihood rows for %d strokes", len(likelihoods), len(observed))
	}
	candSeqs := Corrections(observed, r.cfg.Correction)
	seenWord := make(map[string]bool)
	var cands []Candidate
	for i, seq := range candSeqs {
		for _, e := range r.dict.Lookup(seq) {
			if seenWord[e.Word] {
				continue
			}
			seenWord[e.Word] = true
			score := r.dict.Prior(e)
			for j, intended := range e.StrokeSeq {
				score *= likelihoods[j][intended.Index()]
			}
			cands = append(cands, Candidate{Word: e.Word, Score: score, Corrected: i > 0})
		}
	}
	if len(cands) == 0 {
		return nil, nil
	}
	sort.SliceStable(cands, func(a, b int) bool {
		la, lb := len(cands[a].Word), len(cands[b].Word)
		if la != lb {
			return la < lb
		}
		return cands[a].Score > cands[b].Score
	})
	if len(cands) > r.cfg.TopK {
		cands = cands[:r.cfg.TopK]
	}
	return cands, nil
}

// Predict returns next-word suggestions after prev using the bigram
// model, or nil when no model is attached.
func (r *Recognizer) Predict(prev string) []string {
	if r.bigram == nil {
		return nil
	}
	k := r.cfg.PredictK
	if k <= 0 {
		k = 3
	}
	preds, err := r.bigram.Predict(prev, k)
	if err != nil || len(preds) == 0 {
		return nil
	}
	out := make([]string, len(preds))
	for i, p := range preds {
		out[i] = p.Word
	}
	return out
}

// SessionResult is the outcome of entering one word in a Session.
type SessionResult struct {
	// Candidates is the displayed list.
	Candidates []Candidate
	// Chosen is the word accepted (the intended word when present within
	// TopK, else the top candidate — modeling the paper's auto-accept of
	// the top suggestion after 1 s).
	Chosen string
	// Rank is the 1-based rank of the intended word in Candidates, or 0
	// when absent.
	Rank int
	// Predicted reports whether the word was accepted from a next-word
	// prediction instead of being written.
	Predicted bool
}

// Session tracks sentence context for successive word entry with
// prediction.
type Session struct {
	r    *Recognizer
	prev string
}

// NewSession starts a text-entry session.
func NewSession(r *Recognizer) *Session { return &Session{r: r} }

// EnterWord simulates entering one intended word given the observed stroke
// sequence the pipeline recognized for it. If the intended word appears in
// the current next-word predictions it is accepted directly (no writing
// needed).
func (s *Session) EnterWord(intended string, observed stroke.Sequence) (*SessionResult, error) {
	intended = strings.ToLower(intended)
	if s.prev != "" {
		for _, p := range s.r.Predict(s.prev) {
			if p == intended {
				s.prev = intended
				return &SessionResult{Chosen: intended, Rank: 1, Predicted: true}, nil
			}
		}
	}
	cands, err := s.r.Recognize(observed)
	if err != nil {
		return nil, err
	}
	res := &SessionResult{Candidates: cands}
	for i, c := range cands {
		if c.Word == intended {
			res.Rank = i + 1
			break
		}
	}
	switch {
	case res.Rank > 0:
		res.Chosen = intended
	case len(cands) > 0:
		res.Chosen = cands[0].Word
	}
	s.prev = res.Chosen
	return res, nil
}

// Reset clears sentence context (start of a new phrase).
func (s *Session) Reset() { s.prev = "" }
