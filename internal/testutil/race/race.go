// Package race exposes whether the race detector is compiled into the
// current binary, so tests with wall-clock-derived assertions (the
// paper's CPU-occupancy model feeds on real measured stroke time) can
// relax them under the detector's ~5-10× slowdown instead of failing
// on timing alone.
package race
