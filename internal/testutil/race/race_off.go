//go:build !race

package race

// Enabled reports that this binary was built without -race.
const Enabled = false
