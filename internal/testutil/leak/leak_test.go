package leak

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Errorf calls so the checker can be tested without
// failing the real test.
type recorder struct {
	cleanups []func()
	errors   []string
}

func (r *recorder) Helper() {}
func (r *recorder) Errorf(format string, args ...any) {
	r.errors = append(r.errors, format)
}
func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }

func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestCheckCleanPasses(t *testing.T) {
	r := &recorder{}
	Check(r)
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
	r.runCleanups()
	if len(r.errors) != 0 {
		t.Fatalf("clean test reported a leak: %v", r.errors)
	}
}

func TestCheckWaitsForStragglers(t *testing.T) {
	r := &recorder{}
	Check(r)
	// A goroutine still draining when cleanup starts but gone within
	// the backoff window must not be reported.
	go time.Sleep(30 * time.Millisecond)
	r.runCleanups()
	if len(r.errors) != 0 {
		t.Fatalf("straggler within the grace period reported: %v", r.errors)
	}
}

func TestCheckReportsLeak(t *testing.T) {
	r := &recorder{}
	Check(r)
	quit := make(chan struct{})
	go func() { <-quit }()
	start := time.Now()
	r.runCleanups()
	close(quit)
	if len(r.errors) == 0 {
		t.Fatal("leaked goroutine not reported")
	}
	if !strings.Contains(r.errors[0], "outlived the test") {
		t.Fatalf("unexpected error format: %q", r.errors[0])
	}
	if elapsed := time.Since(start); elapsed < maxWait {
		t.Fatalf("reported a leak after %v, before the %v grace period", elapsed, maxWait)
	}
}

func TestStacksParse(t *testing.T) {
	gs := stacks()
	if len(gs) == 0 {
		t.Fatal("no goroutines parsed from runtime.Stack")
	}
	seen := make(map[string]bool)
	for _, g := range gs {
		if g.id == "" {
			t.Fatalf("goroutine with empty id: %q", g.stack)
		}
		if seen[g.id] {
			t.Fatalf("duplicate goroutine id %s", g.id)
		}
		seen[g.id] = true
		if g.top() == "(empty stack)" && !strings.Contains(g.stack, "goroutine") {
			t.Fatalf("unparseable stack: %q", g.stack)
		}
	}
}
