// Package leak is a zero-dependency goroutine-leak checker for tests.
// Check snapshots the live goroutines when called and, at test
// cleanup, verifies every goroutine started since has exited —
// retrying with backoff so goroutines that are mid-shutdown when the
// test body returns get a grace period instead of a false positive.
//
// Known long-lived runtime and library goroutines (the testing
// harness, runtime helpers, net/http's keep-alive connection pool)
// are ignored, so suites that exercise HTTP servers can use the
// checker without tearing down http.DefaultClient's idle connections.
package leak

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of *testing.T the checker needs; an interface so
// the package stays import-cycle-free and testable.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Cleanup(func())
}

// maxWait bounds how long Check waits for straggling goroutines to
// exit before declaring a leak.
const maxWait = 2 * time.Second

// Check registers a cleanup that fails t if goroutines created after
// the call are still running once the test (and its other cleanups
// registered later) finish. Call it first thing in a test:
//
//	func TestServer(t *testing.T) {
//		leak.Check(t)
//		...
//	}
func Check(t TB) {
	t.Helper()
	before := goroutineIDs()
	t.Cleanup(func() {
		t.Helper()
		var leaked []string
		for delay := time.Millisecond; ; delay *= 2 {
			leaked = leakedSince(before)
			if len(leaked) == 0 {
				return
			}
			if delay > maxWait {
				break
			}
			time.Sleep(delay)
		}
		t.Errorf("leak: %d goroutine(s) outlived the test:\n%s",
			len(leaked), strings.Join(leaked, "\n"))
	})
}

// leakedSince returns one-line descriptions of goroutines running now
// that were not in before and are not ignorable.
func leakedSince(before map[string]bool) []string {
	var leaked []string
	for _, g := range stacks() {
		if before[g.id] || ignorable(g.stack) {
			continue
		}
		leaked = append(leaked, fmt.Sprintf("  goroutine %s: %s", g.id, g.top()))
	}
	return leaked
}

// goroutineIDs snapshots the IDs of all live goroutines.
func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, g := range stacks() {
		ids[g.id] = true
	}
	return ids
}

type goroutine struct {
	id    string
	stack string
}

// top returns the first function frame of the goroutine's stack, the
// most useful single line for identifying a leak.
func (g goroutine) top() string {
	for _, line := range strings.Split(g.stack, "\n")[1:] {
		line = strings.TrimSpace(line)
		if line != "" {
			return line
		}
	}
	return "(empty stack)"
}

// stacks parses runtime.Stack(all=true) output into goroutines. The
// format — "goroutine N [state]:" headers separated by blank lines —
// is stable across the Go releases this module supports.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		header, _, _ := strings.Cut(block, "\n")
		rest, ok := strings.CutPrefix(header, "goroutine ")
		if !ok {
			continue
		}
		id, _, ok := strings.Cut(rest, " ")
		if !ok {
			continue
		}
		out = append(out, goroutine{id: id, stack: block})
	}
	return out
}

// ignorable reports whether a stack belongs to a goroutine the runtime
// or standard library keeps alive across tests.
func ignorable(stack string) bool {
	for _, marker := range []string{
		"testing.(*T).Run",          // the test harness itself
		"testing.(*M).",             // test main
		"testing.tRunner",           // per-test runner waiting on children
		"testing.runTests",          //
		"runtime.goexit",            // header-only stacks
		"runtime.gc",                // GC workers
		"runtime.bgsweep",           //
		"runtime.bgscavenge",        //
		"runtime.forcegchelper",     //
		"runtime.ReadTrace",         //
		"net/http.(*persistConn).",  // keep-alive pool of http clients
		"net/http.(*Transport).",    //
		"net/http.setRequestCancel", //
		"os/signal.signal_recv",     // signal watcher
		"os/signal.loop",            //
		"runtime/pprof.profileWriter",
	} {
		if strings.Contains(stack, marker) {
			return true
		}
	}
	return false
}
