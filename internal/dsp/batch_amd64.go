//go:build amd64

package dsp

// hasAVX512 reports whether the CPU and OS support full 512-bit AVX-512
// state (F+DQ plus opmask/ZMM XCR0 enablement). The batched spectral
// path widens the radix-4 DIF kernel to four butterflies per iteration
// when available; the two-butterfly AVX kernel and the pure-Go loop are
// the fallbacks, all three bit-identical on band magnitudes.
var hasAVX512 = cpuHasAVX512()

// cpuHasAVX512 checks CPUID for AVX512F/DQ and XGETBV for ZMM state
// enablement. Implemented in batch_amd64.s.
func cpuHasAVX512() bool

// difStageAVX512 runs one radix-4 DIF stage of the given span over z,
// processing four butterflies per iteration. tzv is the stage's
// lane-duplicated quad twiddle table (see newStageTwiddlesQuad). span
// must be >= 16 so every block holds at least one butterfly quad, and
// the caller must have verified hasAVX512. Implemented in
// batch_amd64.s.
//
//go:noescape
func difStageAVX512(z []complex128, tzv []float64, span int)

// difStage16x4AVX512 runs the fused tail of the DIF network — the
// span-16 radix-4 stage immediately followed by the multiplication-free
// span-4 stage — per 16-complex block entirely in registers. tzv is the
// span-16 quad twiddle table (48 doubles, shared by every block).
// len(z) must be a multiple of 16 and the caller must have verified
// hasAVX512. Implemented in batch_amd64.s.
//
//go:noescape
func difStage16x4AVX512(z []complex128, tzv []float64)

// packMulAVX performs the fused window multiply of the even/odd pack
// pass: dst viewed as 2·len(dst) doubles receives frame[i]·win[i]. The
// caller guarantees len(frame) == len(win) == 2·len(dst), that the
// length is a multiple of 8, and hasAVX. Implemented in batch_amd64.s.
//
//go:noescape
func packMulAVX(dst []complex128, frame, win []float64)
