package dsp

import (
	"fmt"
	"math"
)

// WindowKind enumerates the supported analysis windows.
type WindowKind int

// Supported window shapes. The paper's pipeline uses the Hanning window for
// every STFT; the others exist for ablation experiments.
const (
	WindowHanning WindowKind = iota + 1
	WindowHamming
	WindowRectangular
	WindowBlackman
)

// String implements fmt.Stringer.
func (k WindowKind) String() string {
	switch k {
	case WindowHanning:
		return "hanning"
	case WindowHamming:
		return "hamming"
	case WindowRectangular:
		return "rectangular"
	case WindowBlackman:
		return "blackman"
	default:
		return fmt.Sprintf("WindowKind(%d)", int(k))
	}
}

// Window holds precomputed window coefficients of a fixed length.
type Window struct {
	kind   WindowKind
	coeffs []float64
}

// NewWindow precomputes an n-point window of the given kind. n must be
// positive.
func NewWindow(kind WindowKind, n int) (*Window, error) {
	if n <= 0 {
		return nil, fmt.Errorf("dsp: window length must be positive, got %d", n)
	}
	w := &Window{kind: kind, coeffs: make([]float64, n)}
	switch kind {
	case WindowHanning:
		for i := range w.coeffs {
			w.coeffs[i] = 0.5 * (1 - math.Cos(2*math.Pi*float64(i)/float64(n-1)))
		}
		if n == 1 {
			w.coeffs[0] = 1
		}
	case WindowHamming:
		for i := range w.coeffs {
			w.coeffs[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n-1))
		}
		if n == 1 {
			w.coeffs[0] = 1
		}
	case WindowRectangular:
		for i := range w.coeffs {
			w.coeffs[i] = 1
		}
	case WindowBlackman:
		for i := range w.coeffs {
			x := 2 * math.Pi * float64(i) / float64(n-1)
			w.coeffs[i] = 0.42 - 0.5*math.Cos(x) + 0.08*math.Cos(2*x)
		}
		if n == 1 {
			w.coeffs[0] = 1
		}
	default:
		return nil, fmt.Errorf("dsp: unknown window kind %v", kind)
	}
	return w, nil
}

// Len reports the window length.
func (w *Window) Len() int { return len(w.coeffs) }

// Kind reports the window shape.
func (w *Window) Kind() WindowKind { return w.kind }

// Apply multiplies frame element-wise by the window coefficients, writing
// the result into dst and returning it. dst may alias frame. Both slices
// must have exactly the window length.
func (w *Window) Apply(frame, dst []float64) ([]float64, error) {
	if len(frame) != len(w.coeffs) {
		return nil, fmt.Errorf("dsp: frame length %d does not match window length %d", len(frame), len(w.coeffs))
	}
	if dst == nil {
		dst = make([]float64, len(frame))
	}
	if len(dst) != len(w.coeffs) {
		return nil, fmt.Errorf("dsp: dst length %d does not match window length %d", len(dst), len(w.coeffs))
	}
	for i, v := range frame {
		dst[i] = v * w.coeffs[i]
	}
	return dst, nil
}

// CoherentGain returns the mean of the window coefficients, the factor by
// which a coherent sinusoid's spectral peak is scaled.
func (w *Window) CoherentGain() float64 {
	sum := 0.0
	for _, c := range w.coeffs {
		sum += c
	}
	return sum / float64(len(w.coeffs))
}
