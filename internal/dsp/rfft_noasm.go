//go:build !amd64

package dsp

// hasAVX is false off amd64; forwardDIF always takes the pure-Go loop.
const hasAVX = false

// difStageAVX is never called when hasAVX is false; this stub keeps
// forwardDIF portable.
func difStageAVX(z []complex128, twv []float64, span int) {
	panic("dsp: difStageAVX called without AVX support")
}
