//go:build !amd64

package dsp

// hasAVX512 is false off amd64; BatchPlan always takes the pure-Go
// stage loops.
const hasAVX512 = false

// difStageAVX512 is never called when hasAVX512 is false; this stub
// keeps the batch path portable.
func difStageAVX512(z []complex128, tzv []float64, span int) {
	panic("dsp: difStageAVX512 called without AVX-512 support")
}

// difStage16x4AVX512 is never called when hasAVX512 is false; this stub
// keeps the batch path portable.
func difStage16x4AVX512(z []complex128, tzv []float64) {
	panic("dsp: difStage16x4AVX512 called without AVX-512 support")
}

// packMulAVX is never called when hasAVX is false; this stub keeps the
// batch path portable.
func packMulAVX(dst []complex128, frame, win []float64) {
	panic("dsp: packMulAVX called without AVX support")
}
