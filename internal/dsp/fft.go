// Package dsp provides the digital signal processing substrate used by the
// EchoWrite pipeline: fast Fourier transforms, window functions, short-time
// Fourier transform (STFT), one-dimensional filters and the spectrogram
// container the image-processing stage operates on.
//
// All routines are deterministic, allocation-conscious and implemented with
// the standard library only.
package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// FFTPlan caches the twiddle factors and bit-reversal permutation for a
// fixed power-of-two transform size. Reusing a plan across calls avoids
// recomputing trigonometric tables for every frame of an STFT.
//
// A plan is safe for concurrent use after construction because Forward and
// Inverse never mutate plan state.
type FFTPlan struct {
	n       int
	logN    uint
	rev     []int        // bit-reversal permutation
	twiddle []complex128 // e^{-2πik/n} for k in [0, n/2)
}

// NewFFTPlan builds a plan for transforms of size n. n must be a power of
// two and at least 1.
func NewFFTPlan(n int) (*FFTPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: FFT size must be a positive power of two, got %d", n)
	}
	logN := uint(0)
	for 1<<logN < n {
		logN++
	}
	p := &FFTPlan{
		n:       n,
		logN:    logN,
		rev:     make([]int, n),
		twiddle: make([]complex128, n/2),
	}
	for i := 0; i < n; i++ {
		p.rev[i] = reverseBits(i, logN)
	}
	for k := 0; k < n/2; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		p.twiddle[k] = cmplx.Exp(complex(0, angle))
	}
	return p, nil
}

// Size reports the transform length the plan was built for.
func (p *FFTPlan) Size() int { return p.n }

func reverseBits(x int, bits uint) int {
	r := 0
	for i := uint(0); i < bits; i++ {
		r = (r << 1) | (x & 1)
		x >>= 1
	}
	return r
}

// Forward computes the in-place forward discrete Fourier transform of x.
// len(x) must equal the plan size. The transform is unnormalized:
// X[k] = Σ x[j]·e^{-2πijk/n}.
func (p *FFTPlan) Forward(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: Forward input length %d does not match plan size %d", len(x), p.n)
	}
	p.transform(x, false)
	return nil
}

// Inverse computes the in-place inverse discrete Fourier transform of x,
// normalized by 1/n so that Inverse(Forward(x)) == x up to rounding.
func (p *FFTPlan) Inverse(x []complex128) error {
	if len(x) != p.n {
		return fmt.Errorf("dsp: Inverse input length %d does not match plan size %d", len(x), p.n)
	}
	p.transform(x, true)
	scale := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

// transform runs the iterative radix-2 Cooley-Tukey butterfly network.
// When inverse is true the conjugate twiddle factors are used.
func (p *FFTPlan) transform(x []complex128, inverse bool) {
	n := p.n
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := p.rev[i]
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			k := 0
			for off := 0; off < half; off++ {
				w := p.twiddle[k]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+off]
				b := x[start+off+half] * w
				x[start+off] = a + b
				x[start+off+half] = a - b
				k += step
			}
		}
	}
}

// ForwardReal transforms a real-valued frame, returning a freshly allocated
// complex spectrum of the plan size. The input may be shorter than the plan
// size, in which case it is zero-padded; it must not be longer.
func (p *FFTPlan) ForwardReal(frame []float64) ([]complex128, error) {
	if len(frame) > p.n {
		return nil, fmt.Errorf("dsp: real frame length %d exceeds plan size %d", len(frame), p.n)
	}
	buf := make([]complex128, p.n)
	for i, v := range frame {
		buf[i] = complex(v, 0)
	}
	p.transform(buf, false)
	return buf, nil
}

// Magnitudes writes |spec[i]| for the first len(dst) bins of spec into dst
// and returns dst. If dst is nil a new slice covering all of spec is
// allocated.
func Magnitudes(spec []complex128, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(spec))
	}
	for i := range dst {
		dst[i] = cmplx.Abs(spec[i])
	}
	return dst
}
