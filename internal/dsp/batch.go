package dsp

import (
	"fmt"
	"math"
	"math/cmplx"
)

// batchTile is the depth-first tile of BatchPlan's stage traversal, in
// complexes: stages with span above it run breadth-first over each
// lane's whole plane (their twiddle tables stay cache-hot while the
// lanes stream through back-to-back); the remaining stages are carried
// tile by tile while the tile is L1-resident. 1024 complexes = 16 KiB,
// a third of L1d on the serving hardware, leaving room for the narrow
// tail twiddles.
const batchTile = 1024

// BatchPlan computes the band magnitudes of up to K independent
// real-valued frames — one per session — through one shared
// twiddle/scratch set. The per-frame RFFTPlan math is unchanged: the
// same even/odd pack, the same radix-4 DIF butterfly sequence, the same
// band-only unpacking, so columns are bit-identical to the per-frame
// path. What batching buys is kernel width and table reuse: the pack
// runs through a vectorized window-multiply kernel, the wide DIF stages
// stream every lane past twiddle tables that stay resident, and on
// AVX-512 hardware the two final stages (span 16 and the
// multiplication-free span 4) collapse into one fused four-butterfly
// kernel that never spills the block between stages.
//
// A BatchPlan owns one scratch plane the lanes stream through and is
// not safe for concurrent use; the serve collector drives one per
// shard.
type BatchPlan struct {
	n int // real frame length
	m int // n/2, the complex transform length
	k int // max lanes per call
	// post, rev and stages are the same tables an RFFTPlan of size n
	// builds; see NewRFFTPlan.
	post   []complex128
	rev    []int
	stages []stageTwiddles
	// zv holds per-stage quad twiddle tables for the AVX-512 kernels
	// (nil entries where the stage is too narrow to group by four).
	zv [][]float64
	// z is the packed scratch plane, m complexes, reused per lane.
	z []complex128
	// r2 records a trailing radix-2 stage (log2(m) odd); fuse records
	// that the stage list ends (span 16, span 4) so the fused tail
	// kernel applies.
	r2, fuse bool
	// vec routes eligible stages through the AVX pair kernel, vec512
	// through the AVX-512 quad kernels. Construction seeds them from
	// the host CPU; tests flip them to pin kernel-tier equivalence.
	vec, vec512 bool
}

// NewBatchPlan builds a shared plan for batches of up to k real frames
// of length n. n must be a power of two and at least 2; k at least 1.
func NewBatchPlan(n, k int) (*BatchPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: batch plan size must be a power of two >= 2, got %d", n)
	}
	if k < 1 {
		return nil, fmt.Errorf("dsp: batch plan lanes must be >= 1, got %d", k)
	}
	m := n / 2
	p := &BatchPlan{
		n:      n,
		m:      m,
		k:      k,
		z:      make([]complex128, m),
		vec:    hasAVX,
		vec512: hasAVX512,
	}
	p.post, p.rev, p.stages = newRFFTTables(n)
	p.zv = make([][]float64, len(p.stages))
	for i, st := range p.stages {
		p.zv[i] = newStageTwiddlesQuad(st.w, st.span)
	}
	ns := len(p.stages)
	p.r2 = m >= 2 && trailingRadix2(m)
	p.fuse = ns >= 2 && p.stages[ns-1].span == 4 && p.stages[ns-2].span == 16
	return p, nil
}

// Size reports the real frame length the plan was built for.
func (p *BatchPlan) Size() int { return p.n }

// Lanes reports the maximum number of frames per Columns call.
func (p *BatchPlan) Lanes() int { return p.k }

// Columns computes the magnitudes of DFT bins [low, high) for each
// frame in one shared pass: dsts[i] receives the column of frames[i].
// win is the analysis window (nil for none; otherwise frame length),
// fused into the pack pass exactly as rfftBand does, so the results are
// bit-identical to per-frame WindowedMagnitudes calls. len(frames) and
// len(dsts) must match and not exceed Lanes; every frame must have
// length Size and every dst length high-low. The call performs no
// allocation.
func (p *BatchPlan) Columns(frames [][]float64, win []float64, low, high int, dsts [][]float64) error {
	return p.columns(frames, win, low, high, dsts, false)
}

// columns is Columns with the magnitude formula selectable: hypot false
// matches rfftBand (sqrt(re²+im²)), true matches the EngineRFFT
// reference path (cmplx.Abs).
func (p *BatchPlan) columns(frames [][]float64, win []float64, low, high int, dsts [][]float64, hypot bool) error {
	lanes := len(frames)
	if lanes == 0 {
		return nil
	}
	if lanes > p.k {
		return fmt.Errorf("dsp: batch of %d frames exceeds plan lanes %d", lanes, p.k)
	}
	if len(dsts) != lanes {
		return fmt.Errorf("dsp: batch dst count %d does not match frame count %d", len(dsts), lanes)
	}
	if low < 0 || high > p.m || low >= high {
		return fmt.Errorf("dsp: band [%d,%d) invalid for transform size %d", low, high, p.n)
	}
	if win != nil && len(win) != p.n {
		return fmt.Errorf("dsp: window length %d does not match plan size %d", len(win), p.n)
	}
	w := high - low
	for l, frame := range frames {
		if len(frame) != p.n {
			return fmt.Errorf("dsp: batch frame %d length %d does not match plan size %d", l, len(frame), p.n)
		}
		if len(dsts[l]) != w {
			return fmt.Errorf("dsp: batch dst %d length %d does not match band width %d", l, len(dsts[l]), w)
		}
	}
	// One lane at a time through the single shared plane: the plane and
	// the narrow-stage twiddle tables stay cache-resident while the
	// lanes stream through back-to-back, which is where batching wins
	// over per-session plans — a resident-plane-per-lane layout was
	// measured ~25% slower from the extra working set alone.
	for l, frame := range frames {
		p.pack(p.z, frame, win)
		p.forward(p.z)
		p.unpackBand(low, high, dsts[l], hypot)
	}
	return nil
}

// pack fills one lane's plane with the even/odd packed, window-fused
// frame — the same elementwise products as RFFTPlan.transformHalf, via
// the vector kernel when available.
//
// ew:hotpath — runs once per lane per batch on the serving path.
func (p *BatchPlan) pack(z []complex128, frame, win []float64) {
	if win == nil {
		for i := range z {
			z[i] = complex(frame[2*i], frame[2*i+1])
		}
		return
	}
	if p.vec && p.n%8 == 0 {
		packMulAVX(z, frame, win)
		return
	}
	for i := range z {
		z[i] = complex(frame[2*i]*win[2*i], frame[2*i+1]*win[2*i+1])
	}
}

// forward runs the DIF stage network over one lane's plane: the wide
// stages sweep the whole plane, then the narrow tail runs depth-first
// per 16 KiB tile — the tile stays L1-resident across the remaining
// stages, and on AVX-512 the span-16/span-4 pair collapses into a
// single register-resident kernel.
//
// ew:hotpath — the butterfly network is the dominant per-column cost.
func (p *BatchPlan) forward(z []complex128) {
	ns := len(p.stages)
	si := 0
	step := batchTile
	if step > p.m {
		step = p.m
	}
	for ; si < ns && p.stages[si].span > step; si++ {
		p.runStage(z, si)
	}
	fuse := p.fuse && p.vec512
	for base := 0; base < p.m; base += step {
		blk := z[base : base+step : base+step]
		for sj := si; sj < ns; sj++ {
			if fuse && sj == ns-2 {
				difStage16x4AVX512(blk, p.zv[sj])
				break
			}
			p.runStage(blk, sj)
		}
		if p.r2 {
			for j := 0; j+1 < len(blk); j += 2 {
				a, b := blk[j], blk[j+1]
				blk[j] = a + b
				blk[j+1] = a - b
			}
		}
	}
}

// runStage applies stage si over z (a whole plane or an aligned tile),
// through the widest kernel tier available: AVX-512 quad, AVX pair,
// then the scalar loops of the per-frame path.
func (p *BatchPlan) runStage(z []complex128, si int) {
	st := p.stages[si]
	if p.vec512 && p.zv[si] != nil {
		difStageAVX512(z, p.zv[si], st.span)
		return
	}
	if p.vec && st.wv != nil {
		difStageAVX(z, st.wv, st.span)
		return
	}
	difStageScalar(z, st)
}

// unpackBand recovers band bins [low, high) of the current lane from
// the shared plane and writes their magnitudes into dst, using the same
// per-bin recombination as RFFTPlan.unpackBin read against the shared
// tables.
//
// ew:hotpath — O(B) recombinations per lane per column.
func (p *BatchPlan) unpackBand(low, high int, dst []float64, hypot bool) {
	z := p.z
	m := p.m
	for i := range dst {
		k := low + i
		zk := z[p.rev[k]]
		zm := z[p.rev[(m-k)&(m-1)]]
		zr, zi := real(zk), imag(zk)
		mr, mi := real(zm), imag(zm)
		er, ei := (zr+mr)/2, (zi-mi)/2
		or, oi := (zi+mi)/2, (mr-zr)/2
		tw := p.post[k]
		wr, wi := real(tw), imag(tw)
		x := complex(er+wr*or-wi*oi, ei+wr*oi+wi*or)
		if hypot {
			dst[i] = cmplx.Abs(x)
		} else {
			dst[i] = math.Sqrt(real(x)*real(x) + imag(x)*imag(x))
		}
	}
}

// BatchSTFT adapts a BatchPlan to an STFTConfig: it resolves the
// configured engine exactly as NewSTFT does and computes batched
// columns bit-identical to what a per-session STFT would produce for
// the same config. The two rfft-backed engines (the serving default
// EngineAuto when the band is wide, and the EngineRFFT reference) run
// through the shared BatchPlan; the Goertzel bank and the full-FFT
// reference have no shared-plan structure to exploit, so those configs
// fall back to a per-frame loop over one internal STFT — still one
// instance per shard instead of per session.
//
// A BatchSTFT is not safe for concurrent use.
type BatchSTFT struct {
	cfg    STFTConfig
	window *Window
	plan   *BatchPlan // rfft-backed engines; nil for fallback configs
	hypot  bool       // EngineRFFT magnitude formula (cmplx.Abs)
	seq    *STFT      // per-frame fallback engine
	k      int
}

// NewBatchSTFT validates cfg like NewSTFT and builds a batched column
// computer for up to k frames per call.
func NewBatchSTFT(cfg STFTConfig, k int) (*BatchSTFT, error) {
	if k < 1 {
		return nil, fmt.Errorf("dsp: batch lanes must be >= 1, got %d", k)
	}
	// Resolve defaults and the engine choice through the per-frame
	// constructor so batching can never disagree with it.
	st, err := NewSTFT(cfg)
	if err != nil {
		return nil, err
	}
	cfg = st.Config()
	b := &BatchSTFT{cfg: cfg, window: st.window, seq: st, k: k}
	if st.EngineKind() == EngineRFFT {
		plan, err := NewBatchPlan(cfg.FFTSize, k)
		if err != nil {
			return nil, err
		}
		b.plan = plan
		b.hypot = cfg.Engine == EngineRFFT
	}
	return b, nil
}

// Config returns the configuration (after defaulting).
func (b *BatchSTFT) Config() STFTConfig { return b.cfg }

// Lanes reports the maximum number of frames per Columns call.
func (b *BatchSTFT) Lanes() int { return b.k }

// Bins reports the retained band width, the length of every column.
func (b *BatchSTFT) Bins() int { return b.cfg.HighBin - b.cfg.LowBin }

// Batched reports whether columns run through the shared BatchPlan
// (false for configs that fall back to the per-frame loop).
func (b *BatchSTFT) Batched() bool { return b.plan != nil }

// Columns computes one magnitude column per frame: dsts[i] receives the
// column of frames[i] and must have length Bins (its backing array is
// written in place, so the call performs no allocation). At most Lanes
// frames per call; every frame must be exactly FFTSize samples. Columns
// are bit-identical to FrameColumn on a per-session STFT with the same
// config.
//
// ew:hotpath — one call per collector cycle on the batched serving path.
func (b *BatchSTFT) Columns(frames [][]float64, dsts [][]float64) error {
	if len(frames) > b.k {
		return fmt.Errorf("dsp: batch of %d frames exceeds lanes %d", len(frames), b.k)
	}
	if b.plan != nil {
		win := b.window.coeffs
		return b.plan.columns(frames, win, b.cfg.LowBin, b.cfg.HighBin, dsts, b.hypot)
	}
	if len(dsts) != len(frames) {
		return fmt.Errorf("dsp: batch dst count %d does not match frame count %d", len(dsts), len(frames))
	}
	for i, frame := range frames {
		if len(dsts[i]) != b.Bins() {
			return fmt.Errorf("dsp: batch dst %d length %d does not match band width %d", i, len(dsts[i]), b.Bins())
		}
		if _, err := b.seq.FrameColumnInto(dsts[i][:0], frame); err != nil {
			return err
		}
	}
	return nil
}
