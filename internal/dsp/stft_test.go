package dsp

import (
	"math"
	"testing"
)

func TestDefaultSTFTConfigMatchesPaper(t *testing.T) {
	cfg := DefaultSTFTConfig()
	if cfg.FFTSize != 8192 || cfg.HopSize != 1024 || cfg.SampleRate != 44100 {
		t.Fatalf("default STFT = %+v, want paper parameters 8192/1024/44100", cfg)
	}
	// The retained band should cover [19530, 20470] Hz, ≈350 bins wide
	// (paper §III-A: "reduced from 8192 to 350").
	width := cfg.HighBin - cfg.LowBin
	if width < 170 || width > 360 {
		t.Errorf("band width = %d bins, want within a factor of the paper's 350-ish", width)
	}
	lowHz := float64(cfg.LowBin) * cfg.SampleRate / float64(cfg.FFTSize)
	highHz := float64(cfg.HighBin) * cfg.SampleRate / float64(cfg.FFTSize)
	if lowHz > 19530+6 || lowHz < 19500 {
		t.Errorf("low edge = %g Hz, want ≈19530", lowHz)
	}
	if highHz < 20470-6 || highHz > 20500 {
		t.Errorf("high edge = %g Hz, want ≈20470", highHz)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestSTFTConfigValidation(t *testing.T) {
	base := DefaultSTFTConfig()
	cases := []struct {
		name   string
		mutate func(*STFTConfig)
	}{
		{"zero sample rate", func(c *STFTConfig) { c.SampleRate = 0 }},
		{"non power of two", func(c *STFTConfig) { c.FFTSize = 1000 }},
		{"zero hop", func(c *STFTConfig) { c.HopSize = 0 }},
		{"hop exceeds frame", func(c *STFTConfig) { c.HopSize = c.FFTSize * 2 }},
		{"negative low bin", func(c *STFTConfig) { c.LowBin = -1 }},
		{"band beyond Nyquist", func(c *STFTConfig) { c.HighBin = c.FFTSize }},
		{"inverted band", func(c *STFTConfig) { c.LowBin, c.HighBin = 100, 50 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("Validate() accepted invalid config")
			}
		})
	}
}

func TestSTFTComputeFindsTone(t *testing.T) {
	cfg := STFTConfig{SampleRate: 44100, FFTSize: 4096, HopSize: 1024, Window: WindowHanning}
	st, err := NewSTFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two seconds of 20 kHz tone.
	n := 2 * 44100
	sig := make([]float64, n)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 20000 * float64(i) / 44100)
	}
	spec, err := st.Compute(sig)
	if err != nil {
		t.Fatal(err)
	}
	wantFrames := (n-4096)/1024 + 1
	if spec.Frames() != wantFrames {
		t.Errorf("Frames() = %d, want %d", spec.Frames(), wantFrames)
	}
	if spec.Bins() != 2048 {
		t.Errorf("Bins() = %d, want 2048 (full half-spectrum)", spec.Bins())
	}
	// Peak bin should be at ≈20 kHz in every frame.
	toneBin := spec.FreqBin(20000)
	for f := 0; f < spec.Frames(); f++ {
		maxBin, maxVal := 0, 0.0
		for b, v := range spec.Data[f] {
			if v > maxVal {
				maxVal, maxBin = v, b
			}
		}
		if d := maxBin - toneBin; d < -1 || d > 1 {
			t.Fatalf("frame %d peak at bin %d, want ≈%d", f, maxBin, toneBin)
		}
	}
}

func TestSTFTBandCrop(t *testing.T) {
	cfg := DefaultSTFTConfig()
	st, err := NewSTFT(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sig := make([]float64, 3*8192)
	for i := range sig {
		sig[i] = math.Sin(2 * math.Pi * 20000 * float64(i) / 44100)
	}
	spec, err := st.Compute(sig)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Bins() != cfg.HighBin-cfg.LowBin {
		t.Errorf("Bins() = %d, want %d", spec.Bins(), cfg.HighBin-cfg.LowBin)
	}
	if spec.BinLow != cfg.LowBin {
		t.Errorf("BinLow = %d, want %d", spec.BinLow, cfg.LowBin)
	}
	// The 20 kHz tone must appear within the cropped band.
	local := spec.FreqBin(20000)
	if local < 0 || local >= spec.Bins() {
		t.Fatalf("carrier local bin %d outside band", local)
	}
	if spec.Data[0][local] < 100 {
		t.Errorf("carrier magnitude %g unexpectedly small", spec.Data[0][local])
	}
}

func TestSTFTShortSignal(t *testing.T) {
	st, err := NewSTFT(STFTConfig{SampleRate: 44100, FFTSize: 1024, HopSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Compute(make([]float64, 512)); err == nil {
		t.Error("signal shorter than one frame accepted, want error")
	}
}

func TestFrameColumnLengthCheck(t *testing.T) {
	st, err := NewSTFT(STFTConfig{SampleRate: 44100, FFTSize: 1024, HopSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.FrameColumn(make([]float64, 100)); err == nil {
		t.Error("short frame accepted, want error")
	}
}

func TestSpectrogramAccessors(t *testing.T) {
	s := &Spectrogram{
		Data:       [][]float64{{1, 2, 3}, {4, 5, 6}},
		SampleRate: 44100,
		FFTSize:    8192,
		HopSize:    1024,
		BinLow:     3628,
	}
	if s.Frames() != 2 || s.Bins() != 3 {
		t.Fatalf("dims = %d×%d, want 2×3", s.Frames(), s.Bins())
	}
	if got := s.BinFreq(0); math.Abs(got-float64(3628)*44100/8192) > 1e-9 {
		t.Errorf("BinFreq(0) = %g", got)
	}
	if got := s.FrameTime(1); math.Abs(got-1024.0/44100) > 1e-12 {
		t.Errorf("FrameTime(1) = %g", got)
	}
	if got := s.FrameDuration(); math.Abs(got-1024.0/44100) > 1e-12 {
		t.Errorf("FrameDuration() = %g", got)
	}
	if got := s.MaxValue(); got != 6 {
		t.Errorf("MaxValue() = %g, want 6", got)
	}
	// Round trip bin <-> freq.
	if got := s.FreqBin(s.BinFreq(2)); got != 2 {
		t.Errorf("FreqBin(BinFreq(2)) = %d, want 2", got)
	}
}

func TestSpectrogramCloneIsDeep(t *testing.T) {
	s := &Spectrogram{Data: [][]float64{{1, 2}}, SampleRate: 44100, FFTSize: 8, HopSize: 4}
	c := s.Clone()
	c.Data[0][0] = 99
	if s.Data[0][0] == 99 {
		t.Error("Clone shares backing storage")
	}
}

func TestSpectrogramCrop(t *testing.T) {
	s := &Spectrogram{
		Data:       [][]float64{{1, 2, 3, 4}, {5, 6, 7, 8}},
		SampleRate: 44100,
		FFTSize:    8192,
		HopSize:    1024,
		BinLow:     100,
	}
	c, err := s.Crop(101, 103)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bins() != 2 || c.BinLow != 101 {
		t.Fatalf("crop dims wrong: bins=%d binLow=%d", c.Bins(), c.BinLow)
	}
	if c.Data[0][0] != 2 || c.Data[1][1] != 7 {
		t.Errorf("crop values wrong: %v", c.Data)
	}
	if _, err := s.Crop(99, 102); err == nil {
		t.Error("crop below band accepted, want error")
	}
	if _, err := s.Crop(103, 103); err == nil {
		t.Error("empty crop accepted, want error")
	}
}

func TestEmptySpectrogram(t *testing.T) {
	s := &Spectrogram{}
	if s.Bins() != 0 || s.Frames() != 0 || s.MaxValue() != 0 {
		t.Error("empty spectrogram accessors should return zeros")
	}
}
