package dsp

import "fmt"

// STFTConfig parameterizes a short-time Fourier transform. The paper's
// settings are FFTSize=8192 (~0.186 s at 44.1 kHz) and HopSize=1024
// (~0.023 s), Hanning window.
type STFTConfig struct {
	// SampleRate of the input signal in Hz. Must be positive.
	SampleRate float64
	// FFTSize is the frame length in samples; must be a power of two.
	FFTSize int
	// HopSize is the step between frames in samples; must be positive and
	// no larger than FFTSize.
	HopSize int
	// Window selects the analysis window; zero value means Hanning.
	Window WindowKind
	// LowBin and HighBin optionally restrict the retained band to absolute
	// FFT bins [LowBin, HighBin). When both are zero the full non-negative
	// half [0, FFTSize/2) is kept.
	LowBin, HighBin int
	// Engine selects how columns are computed. The zero value EngineAuto
	// picks the cheapest band-limited engine for the configured band;
	// EngineFFT is the full-FFT reference the fast paths are
	// differentially tested against. All engines produce identical
	// Spectrogram output within the differential harness tolerance.
	Engine EngineKind
}

// DefaultSTFTConfig returns the paper's STFT parameters for a 44.1 kHz
// stream, retaining the band of interest around the 20 kHz carrier
// ([19530, 20470] Hz, about 350 bins wide; see §III-A).
func DefaultSTFTConfig() STFTConfig {
	cfg := STFTConfig{
		SampleRate: 44100,
		FFTSize:    8192,
		HopSize:    1024,
		Window:     WindowHanning,
	}
	// 19530 Hz and 20470 Hz expressed as absolute bin indices.
	cfg.LowBin = int(19530 * float64(cfg.FFTSize) / cfg.SampleRate)
	cfg.HighBin = int(20470*float64(cfg.FFTSize)/cfg.SampleRate+0.5) + 1
	return cfg
}

// Validate checks config consistency.
func (c STFTConfig) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("dsp: sample rate must be positive, got %g", c.SampleRate)
	}
	if c.FFTSize < 2 || c.FFTSize&(c.FFTSize-1) != 0 {
		return fmt.Errorf("dsp: FFT size must be a power of two >= 2, got %d", c.FFTSize)
	}
	if c.HopSize <= 0 || c.HopSize > c.FFTSize {
		return fmt.Errorf("dsp: hop size must be in (0, %d], got %d", c.FFTSize, c.HopSize)
	}
	if c.LowBin < 0 || c.HighBin > c.FFTSize/2 || (c.HighBin != 0 && c.LowBin >= c.HighBin) {
		return fmt.Errorf("dsp: bin band [%d,%d) invalid for FFT size %d", c.LowBin, c.HighBin, c.FFTSize)
	}
	switch c.Engine {
	case EngineAuto, EngineFFT, EngineRFFT, EngineGoertzel:
	default:
		return fmt.Errorf("dsp: unknown spectral engine %d", int(c.Engine))
	}
	return nil
}

// STFT converts fixed-size signal frames into spectrogram columns. It owns
// a spectral engine, a window, and scratch buffers, so one instance should
// be reused across frames of a stream. An STFT is not safe for concurrent
// use.
type STFT struct {
	cfg    STFTConfig
	window *Window
	framed []float64
	// Exactly one engine is populated, per cfg.Engine:
	band    BandTransform // EngineAuto / EngineGoertzel (band-limited path)
	rfft    *RFFTPlan     // EngineRFFT (full half-spectrum, then crop)
	half    []complex128  // EngineRFFT half-spectrum scratch
	plan    *FFTPlan      // EngineFFT (full complex reference)
	scratch []complex128  // EngineFFT scratch
	// bandWin is band when it supports fusing the window multiply into its
	// first pass over the frame (resolved once at construction so the hot
	// path never type-asserts).
	bandWin windowedBandTransform
}

// NewSTFT validates cfg and precomputes the engine plan and window.
func NewSTFT(cfg STFTConfig) (*STFT, error) {
	if cfg.Window == 0 {
		cfg.Window = WindowHanning
	}
	if cfg.HighBin == 0 && cfg.LowBin == 0 {
		cfg.HighBin = cfg.FFTSize / 2
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	win, err := NewWindow(cfg.Window, cfg.FFTSize)
	if err != nil {
		return nil, err
	}
	s := &STFT{
		cfg:    cfg,
		window: win,
		framed: make([]float64, cfg.FFTSize),
	}
	switch cfg.Engine {
	case EngineFFT:
		plan, err := NewFFTPlan(cfg.FFTSize)
		if err != nil {
			return nil, err
		}
		s.plan = plan
		s.scratch = make([]complex128, cfg.FFTSize)
	case EngineRFFT:
		plan, err := NewRFFTPlan(cfg.FFTSize)
		if err != nil {
			return nil, err
		}
		s.rfft = plan
		s.half = make([]complex128, cfg.FFTSize/2)
	default: // EngineAuto, EngineGoertzel
		band, err := NewBandTransform(cfg.FFTSize, cfg.LowBin, cfg.HighBin, cfg.Engine)
		if err != nil {
			return nil, err
		}
		s.band = band
		s.bandWin, _ = band.(windowedBandTransform)
	}
	return s, nil
}

// Config returns the configuration the STFT was built with (after
// defaulting).
func (s *STFT) Config() STFTConfig { return s.cfg }

// EngineKind reports the concrete engine computing columns, with
// EngineAuto resolved to the implementation it selected.
func (s *STFT) EngineKind() EngineKind {
	if s.band != nil {
		return s.band.Kind()
	}
	if s.rfft != nil {
		return EngineRFFT
	}
	return EngineFFT
}

// Bins reports the retained band width, the length of every column.
func (s *STFT) Bins() int { return s.cfg.HighBin - s.cfg.LowBin }

// FrameColumn computes the magnitude spectrum of one frame, returning the
// retained band as a newly allocated slice. frame must be exactly FFTSize
// samples.
func (s *STFT) FrameColumn(frame []float64) ([]float64, error) {
	col, err := s.FrameColumnInto(make([]float64, 0, s.Bins()), frame)
	if err != nil {
		return nil, err
	}
	return col, nil
}

// FrameColumnInto computes the magnitude spectrum of one frame and
// appends the retained band to dst, returning the extended slice. frame
// must be exactly FFTSize samples. Callers computing many columns should
// preallocate dst with capacity frames×Bins so the column loop performs
// no per-column allocation (Compute does exactly this).
//
// ew:hotpath — runs once per hop per session on the serving path; the
// hotalloc analyzer keeps allocations out of its loops.
func (s *STFT) FrameColumnInto(dst []float64, frame []float64) ([]float64, error) {
	if len(frame) != s.cfg.FFTSize {
		return nil, fmt.Errorf("dsp: frame length %d does not match FFT size %d", len(frame), s.cfg.FFTSize)
	}
	w := s.Bins()
	n := len(dst)
	if cap(dst)-n < w {
		dst = append(dst, make([]float64, w)...)
	} else {
		dst = dst[: n+w : cap(dst)]
	}
	out := dst[n : n+w]
	if s.bandWin != nil {
		// Fused path: the engine applies the window inside its first pass
		// over the frame, skipping the separate Window.Apply sweep.
		if err := s.bandWin.WindowedMagnitudes(frame, s.window.coeffs, out); err != nil {
			return nil, err
		}
		return dst, nil
	}
	if _, err := s.window.Apply(frame, s.framed); err != nil {
		return nil, err
	}
	switch {
	case s.band != nil:
		if err := s.band.Magnitudes(s.framed, out); err != nil {
			return nil, err
		}
	case s.rfft != nil:
		if err := s.rfft.Transform(s.framed, s.half); err != nil {
			return nil, err
		}
		Magnitudes(s.half[s.cfg.LowBin:s.cfg.HighBin], out)
	default:
		for i, v := range s.framed {
			s.scratch[i] = complex(v, 0)
		}
		s.plan.transform(s.scratch, false)
		Magnitudes(s.scratch[s.cfg.LowBin:s.cfg.HighBin], out)
	}
	return dst, nil
}

// Compute runs the full STFT over signal, producing a spectrogram with one
// column per hop. Frames that would run past the end of the signal are
// dropped (no padding), matching a streaming implementation that waits for
// a full frame. All columns share one backing array sized up front, so the
// column loop itself allocates nothing.
//
// ew:hotpath — the column loop dominates signal-processing time; the
// hotalloc analyzer keeps per-iteration allocations out of it.
func (s *STFT) Compute(signal []float64) (*Spectrogram, error) {
	if len(signal) < s.cfg.FFTSize {
		return nil, fmt.Errorf("dsp: signal length %d shorter than one FFT frame (%d)", len(signal), s.cfg.FFTSize)
	}
	nFrames := (len(signal)-s.cfg.FFTSize)/s.cfg.HopSize + 1
	w := s.Bins()
	out := &Spectrogram{
		Data:       make([][]float64, nFrames),
		SampleRate: s.cfg.SampleRate,
		FFTSize:    s.cfg.FFTSize,
		HopSize:    s.cfg.HopSize,
		BinLow:     s.cfg.LowBin,
	}
	backing := make([]float64, 0, nFrames*w)
	for f := 0; f < nFrames; f++ {
		start := f * s.cfg.HopSize
		var err error
		backing, err = s.FrameColumnInto(backing, signal[start:start+s.cfg.FFTSize])
		if err != nil {
			return nil, fmt.Errorf("dsp: frame %d: %w", f, err)
		}
		out.Data[f] = backing[f*w : (f+1)*w : (f+1)*w]
	}
	return out, nil
}
