package dsp

import "fmt"

// STFTConfig parameterizes a short-time Fourier transform. The paper's
// settings are FFTSize=8192 (~0.186 s at 44.1 kHz) and HopSize=1024
// (~0.023 s), Hanning window.
type STFTConfig struct {
	// SampleRate of the input signal in Hz. Must be positive.
	SampleRate float64
	// FFTSize is the frame length in samples; must be a power of two.
	FFTSize int
	// HopSize is the step between frames in samples; must be positive and
	// no larger than FFTSize.
	HopSize int
	// Window selects the analysis window; zero value means Hanning.
	Window WindowKind
	// LowBin and HighBin optionally restrict the retained band to absolute
	// FFT bins [LowBin, HighBin). When both are zero the full non-negative
	// half [0, FFTSize/2) is kept.
	LowBin, HighBin int
}

// DefaultSTFTConfig returns the paper's STFT parameters for a 44.1 kHz
// stream, retaining the band of interest around the 20 kHz carrier
// ([19530, 20470] Hz, about 350 bins wide; see §III-A).
func DefaultSTFTConfig() STFTConfig {
	cfg := STFTConfig{
		SampleRate: 44100,
		FFTSize:    8192,
		HopSize:    1024,
		Window:     WindowHanning,
	}
	// 19530 Hz and 20470 Hz expressed as absolute bin indices.
	cfg.LowBin = int(19530 * float64(cfg.FFTSize) / cfg.SampleRate)
	cfg.HighBin = int(20470*float64(cfg.FFTSize)/cfg.SampleRate+0.5) + 1
	return cfg
}

// Validate checks config consistency.
func (c STFTConfig) Validate() error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("dsp: sample rate must be positive, got %g", c.SampleRate)
	}
	if c.FFTSize < 2 || c.FFTSize&(c.FFTSize-1) != 0 {
		return fmt.Errorf("dsp: FFT size must be a power of two >= 2, got %d", c.FFTSize)
	}
	if c.HopSize <= 0 || c.HopSize > c.FFTSize {
		return fmt.Errorf("dsp: hop size must be in (0, %d], got %d", c.FFTSize, c.HopSize)
	}
	if c.LowBin < 0 || c.HighBin > c.FFTSize/2 || (c.HighBin != 0 && c.LowBin >= c.HighBin) {
		return fmt.Errorf("dsp: bin band [%d,%d) invalid for FFT size %d", c.LowBin, c.HighBin, c.FFTSize)
	}
	return nil
}

// STFT converts fixed-size signal frames into spectrogram columns. It owns
// an FFT plan, a window, and scratch buffers, so one instance should be
// reused across frames of a stream. An STFT is not safe for concurrent use.
type STFT struct {
	cfg     STFTConfig
	plan    *FFTPlan
	window  *Window
	scratch []complex128
	framed  []float64
}

// NewSTFT validates cfg and precomputes the FFT plan and window.
func NewSTFT(cfg STFTConfig) (*STFT, error) {
	if cfg.Window == 0 {
		cfg.Window = WindowHanning
	}
	if cfg.HighBin == 0 && cfg.LowBin == 0 {
		cfg.HighBin = cfg.FFTSize / 2
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	plan, err := NewFFTPlan(cfg.FFTSize)
	if err != nil {
		return nil, err
	}
	win, err := NewWindow(cfg.Window, cfg.FFTSize)
	if err != nil {
		return nil, err
	}
	return &STFT{
		cfg:     cfg,
		plan:    plan,
		window:  win,
		scratch: make([]complex128, cfg.FFTSize),
		framed:  make([]float64, cfg.FFTSize),
	}, nil
}

// Config returns the configuration the STFT was built with (after
// defaulting).
func (s *STFT) Config() STFTConfig { return s.cfg }

// FrameColumn computes the magnitude spectrum of one frame, returning the
// retained band as a newly allocated slice. frame must be exactly FFTSize
// samples.
func (s *STFT) FrameColumn(frame []float64) ([]float64, error) {
	if len(frame) != s.cfg.FFTSize {
		return nil, fmt.Errorf("dsp: frame length %d does not match FFT size %d", len(frame), s.cfg.FFTSize)
	}
	if _, err := s.window.Apply(frame, s.framed); err != nil {
		return nil, err
	}
	for i, v := range s.framed {
		s.scratch[i] = complex(v, 0)
	}
	s.plan.transform(s.scratch, false)
	col := make([]float64, s.cfg.HighBin-s.cfg.LowBin)
	Magnitudes(s.scratch[s.cfg.LowBin:s.cfg.HighBin], col)
	return col, nil
}

// Compute runs the full STFT over signal, producing a spectrogram with one
// column per hop. Frames that would run past the end of the signal are
// dropped (no padding), matching a streaming implementation that waits for
// a full frame.
//
// ew:hotpath — the column loop dominates signal-processing time; the
// hotalloc analyzer keeps per-iteration allocations out of it.
func (s *STFT) Compute(signal []float64) (*Spectrogram, error) {
	if len(signal) < s.cfg.FFTSize {
		return nil, fmt.Errorf("dsp: signal length %d shorter than one FFT frame (%d)", len(signal), s.cfg.FFTSize)
	}
	nFrames := (len(signal)-s.cfg.FFTSize)/s.cfg.HopSize + 1
	out := &Spectrogram{
		Data:       make([][]float64, nFrames),
		SampleRate: s.cfg.SampleRate,
		FFTSize:    s.cfg.FFTSize,
		HopSize:    s.cfg.HopSize,
		BinLow:     s.cfg.LowBin,
	}
	for f := 0; f < nFrames; f++ {
		start := f * s.cfg.HopSize
		col, err := s.FrameColumn(signal[start : start+s.cfg.FFTSize])
		if err != nil {
			return nil, fmt.Errorf("dsp: frame %d: %w", f, err)
		}
		out.Data[f] = col
	}
	return out, nil
}
