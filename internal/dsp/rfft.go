package dsp

import (
	"fmt"
	"math"
)

// RFFTPlan computes the non-negative half-spectrum of a real-valued frame
// using an N/2-point complex transform plus a post-twiddle unpacking pass,
// the classic real-input factorization: the even samples become the real
// parts and the odd samples the imaginary parts of an N/2-length complex
// sequence, one small transform runs, and each output bin is recovered
// from the conjugate-symmetric combination of two bins of that transform.
// Compared with embedding the real frame in a full N-point complex FFT
// this halves the butterfly count and skips the conjugate half entirely.
//
// The inner transform is a radix-4 decimation-in-frequency kernel over an
// interleaved complex plane, tuned for the per-hop serving path:
// natural-order input, digit-reversed output — the reversal
// permutation is never applied to the data; instead the unpacking pass
// reads through the index table, which costs O(B) lookups for a B-bin
// band instead of an O(N) reordering pass. Twiddles are laid out
// sequentially per stage so the inner loops stream them in order.
//
// A plan owns scratch state, so unlike FFTPlan it is not safe for
// concurrent use; create one per goroutine (the STFT does).
type RFFTPlan struct {
	n int // real frame length
	m int // n/2, the complex transform length
	// post[k] = e^{-2πik/n} for k in [0, n/2): the unpacking twiddles.
	post []complex128
	// rev maps a natural-order bin index of the half-size transform to
	// its position in the digit-reversed output of the DIF kernel.
	rev []int
	// stages holds per-stage sequential twiddle tables for the radix-4
	// passes; see newStageTwiddles for the layout.
	stages []stageTwiddles
	z      []complex128 // packed scratch plane, length m
	// vec routes eligible radix-4 stages through the AVX kernel. It is
	// hasAVX at construction; tests flip it to pin kernel equivalence.
	vec bool
}

// stageTwiddles holds the three twiddle factors of one radix-4 DIF stage
// of span L, interleaved per butterfly index i in [0, L/4):
// [w1r w1i w2r w2i w3r w3i]... with wp = e^{-2πi·p·i/L}. wv is the same
// table re-laid for the AVX kernel (see newStageTwiddlesVec), nil when
// the stage is too narrow to vectorize.
type stageTwiddles struct {
	span int
	w    []float64
	wv   []float64
}

// NewRFFTPlan builds a plan for real frames of length n. n must be a
// power of two and at least 2.
func NewRFFTPlan(n int) (*RFFTPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("dsp: RFFT size must be a power of two >= 2, got %d", n)
	}
	m := n / 2
	p := &RFFTPlan{
		n: n,
		m: m,
		z: make([]complex128, m),
	}
	p.post, p.rev, p.stages = newRFFTTables(n)
	p.vec = hasAVX
	return p, nil
}

// newRFFTTables builds the read-only tables of a real-input plan of
// size n (a validated power of two >= 2): the unpacking post-twiddles,
// the digit-reversed output permutation of the DIF recursion, and the
// per-stage sequential twiddle tables. Shared by RFFTPlan and
// BatchPlan so both transforms run the identical factorization against
// bit-identical factors.
func newRFFTTables(n int) (post []complex128, rev []int, stages []stageTwiddles) {
	m := n / 2
	post = make([]complex128, m)
	rev = make([]int, m)
	for k := 0; k < m; k++ {
		angle := -2 * math.Pi * float64(k) / float64(n)
		post[k] = complex(math.Cos(angle), math.Sin(angle))
	}
	// Radix sequence: radix-4 stages down to span 4, with a final radix-2
	// stage when log2(m) is odd. Record it to derive the digit-reversed
	// output permutation of the DIF recursion.
	var radices []int
	for span := m; span > 1; {
		if span%4 == 0 {
			radices = append(radices, 4)
			span /= 4
		} else {
			radices = append(radices, 2)
			span /= 2
		}
	}
	for k := 0; k < m; k++ {
		pos, rem, span := 0, k, m
		for _, r := range radices {
			span /= r
			pos += (rem % r) * span
			rem /= r
		}
		rev[k] = pos
	}
	for span := m; span >= 4; span /= 4 {
		if span%4 != 0 {
			break
		}
		stages = append(stages, newStageTwiddles(span))
	}
	return post, rev, stages
}

// newStageTwiddles precomputes the sequential twiddle table for a
// radix-4 DIF stage of the given span.
func newStageTwiddles(span int) stageTwiddles {
	q := span / 4
	w := make([]float64, 6*q)
	for i := 0; i < q; i++ {
		for pw := 1; pw <= 3; pw++ {
			angle := -2 * math.Pi * float64(pw*i) / float64(span)
			w[6*i+2*(pw-1)] = math.Cos(angle)
			w[6*i+2*(pw-1)+1] = math.Sin(angle)
		}
	}
	return stageTwiddles{span: span, w: w, wv: newStageTwiddlesVec(w, span)}
}

// newStageTwiddlesVec re-lays a stage's scalar twiddle table for the AVX
// kernel: per butterfly pair (i, i+1) and twiddle power p in 1..3, the
// real parts duplicated across each complex lane followed by the
// imaginary parts likewise,
//
//	[cp_i cp_i cp_{i+1} cp_{i+1}]  [dp_i dp_i dp_{i+1} dp_{i+1}]
//
// 24 floats (192 bytes) per pair, matching the fixed offsets the kernel
// reads. Values are copied from the scalar table, so both kernels
// multiply by bit-identical factors. Returns nil when the butterfly
// count is odd (span 4), which the kernel cannot pair.
func newStageTwiddlesVec(w []float64, span int) []float64 {
	q := span / 4
	if q%2 != 0 {
		return nil
	}
	wv := make([]float64, 0, 24*(q/2))
	for i := 0; i < q; i += 2 {
		for p := 0; p < 3; p++ {
			c0, d0 := w[6*i+2*p], w[6*i+2*p+1]
			c1, d1 := w[6*(i+1)+2*p], w[6*(i+1)+2*p+1]
			wv = append(wv, c0, c0, c1, c1, d0, d0, d1, d1)
		}
	}
	return wv
}

// newStageTwiddlesQuad re-lays a stage's scalar twiddle table for the
// AVX-512 kernel: per butterfly quad (i .. i+3) and twiddle power p in
// 1..3, the real parts duplicated across each complex lane followed by
// the imaginary parts likewise,
//
//	[cp_i cp_i cp_{i+1} cp_{i+1} cp_{i+2} cp_{i+2} cp_{i+3} cp_{i+3}]
//	[dp_i dp_i dp_{i+1} dp_{i+1} dp_{i+2} dp_{i+2} dp_{i+3} dp_{i+3}]
//
// 48 floats (384 bytes) per quad, matching the fixed offsets the kernel
// reads. Values are copied from the scalar table, so all kernels
// multiply by bit-identical factors. Returns nil when the butterfly
// count is not a multiple of four, which the kernel cannot group. Only
// BatchPlan builds these tables; per-frame plans stay at the pair
// layout so pooled sessions carry no unused state.
func newStageTwiddlesQuad(w []float64, span int) []float64 {
	q := span / 4
	if q%4 != 0 {
		return nil
	}
	zv := make([]float64, 0, 48*(q/4))
	for i := 0; i < q; i += 4 {
		for p := 0; p < 3; p++ {
			for lane := 0; lane < 4; lane++ {
				c := w[6*(i+lane)+2*p]
				zv = append(zv, c, c)
			}
			for lane := 0; lane < 4; lane++ {
				d := w[6*(i+lane)+2*p+1]
				zv = append(zv, d, d)
			}
		}
	}
	return zv
}

// Size reports the real frame length the plan was built for.
func (p *RFFTPlan) Size() int { return p.n }

// transformHalf packs frame into the scratch plane — fusing the analysis
// window multiply into the pack pass when win is non-nil, which saves a
// full read-modify-write sweep over the frame — and runs the N/2
// transform in place, leaving the packed spectrum Z in digit-reversed
// order. Callers then unpack the bins they need with unpackBin. win must
// be nil or of frame length.
//
// ew:hotpath — runs once per STFT column on the serving path.
func (p *RFFTPlan) transformHalf(frame, win []float64) error {
	if len(frame) != p.n {
		return fmt.Errorf("dsp: RFFT frame length %d does not match plan size %d", len(frame), p.n)
	}
	z := p.z
	if win == nil {
		for i := range z {
			z[i] = complex(frame[2*i], frame[2*i+1])
		}
	} else {
		if len(win) != p.n {
			return fmt.Errorf("dsp: window length %d does not match plan size %d", len(win), p.n)
		}
		for i := range z {
			z[i] = complex(frame[2*i]*win[2*i], frame[2*i+1]*win[2*i+1])
		}
	}
	p.forwardDIF(z)
	return nil
}

// forwardDIF runs the radix-4 (plus optional final radix-2) DIF passes
// over the packed plane. Output is in digit-reversed order per p.rev.
// The four quarters of each block are re-sliced to equal lengths so the
// compiler can prove every access in bounds and drop the checks from the
// inner loop.
//
// ew:hotpath — the butterfly network is the dominant per-column cost.
func (p *RFFTPlan) forwardDIF(z []complex128) {
	m := p.m
	for _, st := range p.stages {
		if p.vec && st.wv != nil {
			difStageAVX(z, st.wv, st.span)
			continue
		}
		difStageScalar(z, st)
	}
	// Final radix-2 stage when log2(m) is odd (span 2, twiddle 1).
	if m >= 2 && trailingRadix2(m) {
		for j := 0; j+1 < m; j += 2 {
			a, b := z[j], z[j+1]
			z[j] = a + b
			z[j+1] = a - b
		}
	}
}

// difStageScalar runs one radix-4 DIF stage over z (a whole plane or an
// aligned tile whose length is a multiple of the span) with the plain
// scalar loops — the reference the vector kernels are pinned against,
// and the fallback tier shared by RFFTPlan and BatchPlan. The four
// quarters of each block are re-sliced to equal lengths so the compiler
// can prove every access in bounds and drop the checks from the inner
// loop.
//
// ew:hotpath — the butterfly network is the dominant per-column cost.
func difStageScalar(z []complex128, st stageTwiddles) {
	span := st.span
	q := span / 4
	tw := st.w
	if span == 4 {
		// Every twiddle of the span-4 stage is 1 (q = 1 ⇒ i = 0), so
		// the whole pass is multiplication-free.
		for base := 0; base+3 < len(z); base += 4 {
			a, b, c, d := z[base], z[base+1], z[base+2], z[base+3]
			t0, t1 := a+c, a-c
			t2 := b + d
			t3 := complex(imag(b)-imag(d), real(d)-real(b)) // (b-d)·(-i)
			z[base] = t0 + t2
			z[base+1] = t1 + t3
			z[base+2] = t0 - t2
			z[base+3] = t1 - t3
		}
		return
	}
	for base := 0; base < len(z); base += span {
		za := z[base : base+q : base+q]
		zb := z[base+q : base+2*q : base+2*q]
		zc := z[base+2*q : base+3*q : base+3*q]
		zd := z[base+3*q : base+span : base+span]
		for i := range za {
			w := tw[6*i : 6*i+6 : 6*i+6]
			a, b, c, d := za[i], zb[i], zc[i], zd[i]
			t0, t1 := a+c, a-c
			t2 := b + d
			t3r, t3i := imag(b)-imag(d), real(d)-real(b) // (b-d)·(-i)
			za[i] = t0 + t2
			u1r, u1i := real(t1)+t3r, imag(t1)+t3i
			u2r, u2i := real(t0)-real(t2), imag(t0)-imag(t2)
			u3r, u3i := real(t1)-t3r, imag(t1)-t3i
			zb[i] = complex(u1r*w[0]-u1i*w[1], u1r*w[1]+u1i*w[0])
			zc[i] = complex(u2r*w[2]-u2i*w[3], u2r*w[3]+u2i*w[2])
			zd[i] = complex(u3r*w[4]-u3i*w[5], u3r*w[5]+u3i*w[4])
		}
	}
}

// trailingRadix2 reports whether the radix sequence for size m ends in a
// radix-2 stage, i.e. log2(m) is odd.
func trailingRadix2(m int) bool {
	bits := 0
	for 1<<bits < m {
		bits++
	}
	return bits%2 == 1
}

// unpackBin recovers bin k (0 <= k < n/2) of the length-n real-input DFT
// from the packed half-size spectrum computed by transformHalf:
//
//	E[k] = (Z[k] + conj(Z[M-k]))/2        (even-sample spectrum)
//	O[k] = -i·(Z[k] - conj(Z[M-k]))/2     (odd-sample spectrum)
//	X[k] = E[k] + e^{-2πik/n}·O[k]
//
// with M = n/2 and Z[M] identified with Z[0]. Z is read through the
// digit-reversal table, so no reordering pass ever runs.
//
// ew:hotpath — the band engines call this once per retained bin per column.
func (p *RFFTPlan) unpackBin(k int) complex128 {
	m := p.m
	zk := p.z[p.rev[k]]
	zm := p.z[p.rev[(m-k)&(m-1)]] // (m-k) mod m; m is a power of two
	zr, zi := real(zk), imag(zk)
	mr, mi := real(zm), imag(zm)
	// E = (zk + conj(zm))/2, O = -i(zk - conj(zm))/2, expanded to reals.
	er, ei := (zr+mr)/2, (zi-mi)/2
	or, oi := (zi+mi)/2, (mr-zr)/2
	w := p.post[k]
	wr, wi := real(w), imag(w)
	return complex(er+wr*or-wi*oi, ei+wr*oi+wi*or)
}

// Transform computes the non-negative half-spectrum X[0 .. n/2) of the
// real frame into dst, which must have length n/2. The values equal the
// first n/2 bins of FFTPlan.Forward on the zero-imaginary embedding of
// the frame, up to rounding.
func (p *RFFTPlan) Transform(frame []float64, dst []complex128) error {
	if len(dst) != p.m {
		return fmt.Errorf("dsp: RFFT dst length %d does not match half-spectrum size %d", len(dst), p.m)
	}
	if err := p.transformHalf(frame, nil); err != nil {
		return err
	}
	for k := range dst {
		dst[k] = p.unpackBin(k)
	}
	return nil
}
