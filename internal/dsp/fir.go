package dsp

import (
	"fmt"
	"math"
)

// FIRBandpass designs a linear-phase bandpass filter by the windowed-sinc
// method (Hamming window): numTaps coefficients passing [f1, f2] Hz at
// sample rate fs. numTaps must be odd so the filter has integer group
// delay.
func FIRBandpass(numTaps int, fs, f1, f2 float64) ([]float64, error) {
	if numTaps < 3 || numTaps%2 == 0 {
		return nil, fmt.Errorf("dsp: FIR taps must be odd and >= 3, got %d", numTaps)
	}
	if fs <= 0 {
		return nil, fmt.Errorf("dsp: sample rate must be positive, got %g", fs)
	}
	if f1 <= 0 || f2 <= f1 || f2 >= fs/2 {
		return nil, fmt.Errorf("dsp: band [%g, %g] invalid for fs %g", f1, f2, fs)
	}
	h := make([]float64, numTaps)
	m := numTaps / 2
	w1 := 2 * math.Pi * f1 / fs
	w2 := 2 * math.Pi * f2 / fs
	for i := range h {
		n := i - m
		var ideal float64
		if n == 0 {
			ideal = (w2 - w1) / math.Pi
		} else {
			ideal = (math.Sin(w2*float64(n)) - math.Sin(w1*float64(n))) / (math.Pi * float64(n))
		}
		window := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(numTaps-1))
		h[i] = ideal * window
	}
	return h, nil
}

// FilterDecimate convolves x with FIR taps h and keeps every factor-th
// output sample — the bandpass-sampling front-end of the paper's §VII-A
// optimization. The output is delayed by the filter's group delay
// (len(h)/2 input samples); edges use zero padding.
func FilterDecimate(x, h []float64, factor int) ([]float64, error) {
	if factor < 1 {
		return nil, fmt.Errorf("dsp: decimation factor must be >= 1, got %d", factor)
	}
	if len(h) == 0 {
		return nil, fmt.Errorf("dsp: empty filter")
	}
	delay := len(h) / 2
	n := len(x) / factor
	out := make([]float64, 0, n)
	for i := 0; i < len(x); i += factor {
		center := i + delay
		acc := 0.0
		for j, tap := range h {
			k := center - j
			if k < 0 || k >= len(x) {
				continue
			}
			acc += tap * x[k]
		}
		out = append(out, acc)
	}
	return out, nil
}

// FrequencyResponse evaluates the filter's magnitude response at
// frequency f Hz for sample rate fs.
func FrequencyResponse(h []float64, fs, f float64) float64 {
	w := 2 * math.Pi * f / fs
	re, im := 0.0, 0.0
	for n, tap := range h {
		re += tap * math.Cos(w*float64(n))
		im -= tap * math.Sin(w*float64(n))
	}
	return math.Hypot(re, im)
}
