package dsp

import (
	"fmt"
	"sort"
)

// MovingAverage smooths x with a centered simple moving average of the
// given odd window size, returning a new slice. This is the "SMA" step of
// Algorithm 1 in the paper (window size 3). Edges use a shrunken window so
// the output has the same length as the input.
func MovingAverage(x []float64, window int) ([]float64, error) {
	if window <= 0 || window%2 == 0 {
		return nil, fmt.Errorf("dsp: moving average window must be odd and positive, got %d", window)
	}
	out := make([]float64, len(x))
	half := window / 2
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(x) {
			hi = len(x)
		}
		sum := 0.0
		for j := lo; j < hi; j++ {
			sum += x[j]
		}
		out[i] = sum / float64(hi-lo)
	}
	return out, nil
}

// Median1D applies a centered one-dimensional median filter of odd window
// size, returning a new slice. Edges use a shrunken window.
func Median1D(x []float64, window int) ([]float64, error) {
	if window <= 0 || window%2 == 0 {
		return nil, fmt.Errorf("dsp: median window must be odd and positive, got %d", window)
	}
	out := make([]float64, len(x))
	half := window / 2
	buf := make([]float64, 0, window)
	for i := range x {
		lo := i - half
		if lo < 0 {
			lo = 0
		}
		hi := i + half + 1
		if hi > len(x) {
			hi = len(x)
		}
		buf = buf[:0]
		buf = append(buf, x[lo:hi]...)
		sort.Float64s(buf)
		out[i] = buf[len(buf)/2]
	}
	return out, nil
}

// SmoothDerivative computes the noise-robust first-order differential of
// Eq. 2 in the paper (Holoborodko's 5-point smooth differentiator):
//
//	acc(i) = (2·[y(i+1) − y(i−1)] + [y(i+2) − y(i−2)]) / 8
//
// Values within two samples of either edge are computed with a plain
// central/one-sided difference so the output has the same length as the
// input. The result is per-sample; callers wanting per-second units divide
// by the sample interval.
func SmoothDerivative(y []float64) []float64 {
	n := len(y)
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	for i := range y {
		switch {
		case i >= 2 && i < n-2:
			out[i] = (2*(y[i+1]-y[i-1]) + (y[i+2] - y[i-2])) / 8
		case i >= 1 && i < n-1:
			out[i] = (y[i+1] - y[i-1]) / 2
		case i == 0:
			out[i] = y[1] - y[0]
		default: // i == n-1
			out[i] = y[n-1] - y[n-2]
		}
	}
	return out
}

// ZeroOneNormalize linearly rescales x into [0, 1] in place and returns x.
// A constant input maps to all zeros.
func ZeroOneNormalize(x []float64) []float64 {
	if len(x) == 0 {
		return x
	}
	minV, maxV := x[0], x[0]
	for _, v := range x[1:] {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	span := maxV - minV
	// A constant input yields span identically zero (maxV and minV are
	// copies of the same element); any nonzero span, however small,
	// still keeps (x[i]-minV)/span inside [0,1] because x[i]-minV ≤ span
	// exactly.
	// ew:exact
	if span == 0 {
		for i := range x {
			x[i] = 0
		}
		return x
	}
	for i := range x {
		x[i] = (x[i] - minV) / span
	}
	return x
}
