package dsp

import (
	"math"
	"testing"
)

func TestNewWindowRejectsBadLength(t *testing.T) {
	for _, n := range []int{0, -5} {
		if _, err := NewWindow(WindowHanning, n); err == nil {
			t.Errorf("NewWindow(hanning, %d) succeeded, want error", n)
		}
	}
	if _, err := NewWindow(WindowKind(99), 8); err == nil {
		t.Error("unknown window kind accepted, want error")
	}
}

func TestHanningProperties(t *testing.T) {
	w, err := NewWindow(WindowHanning, 64)
	if err != nil {
		t.Fatal(err)
	}
	c := w.coeffs
	// Endpoints are zero, center is one.
	if math.Abs(c[0]) > 1e-12 || math.Abs(c[63]) > 1e-12 {
		t.Errorf("endpoints = %g, %g, want 0", c[0], c[63])
	}
	mid := c[31]
	if mid < 0.99 {
		t.Errorf("near-center coefficient %g, want ≈1", mid)
	}
	// Symmetry.
	for i := 0; i < 32; i++ {
		if math.Abs(c[i]-c[63-i]) > 1e-12 {
			t.Errorf("asymmetric at %d: %g vs %g", i, c[i], c[63-i])
		}
	}
	// Coherent gain of Hanning ≈ 0.5.
	if g := w.CoherentGain(); math.Abs(g-0.5) > 0.01 {
		t.Errorf("coherent gain = %g, want ≈0.5", g)
	}
}

func TestWindowKinds(t *testing.T) {
	cases := []struct {
		kind WindowKind
		name string
	}{
		{WindowHanning, "hanning"},
		{WindowHamming, "hamming"},
		{WindowRectangular, "rectangular"},
		{WindowBlackman, "blackman"},
	}
	for _, tc := range cases {
		if got := tc.kind.String(); got != tc.name {
			t.Errorf("String() = %q, want %q", got, tc.name)
		}
		w, err := NewWindow(tc.kind, 33)
		if err != nil {
			t.Fatalf("NewWindow(%v): %v", tc.kind, err)
		}
		if w.Len() != 33 {
			t.Errorf("Len() = %d, want 33", w.Len())
		}
		if w.Kind() != tc.kind {
			t.Errorf("Kind() = %v, want %v", w.Kind(), tc.kind)
		}
		for i, v := range w.coeffs {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v coeff[%d] = %g outside [0,1]", tc.kind, i, v)
			}
		}
	}
}

func TestWindowLengthOne(t *testing.T) {
	for _, kind := range []WindowKind{WindowHanning, WindowHamming, WindowBlackman, WindowRectangular} {
		w, err := NewWindow(kind, 1)
		if err != nil {
			t.Fatalf("NewWindow(%v, 1): %v", kind, err)
		}
		if w.coeffs[0] != 1 {
			t.Errorf("%v length-1 coeff = %g, want 1", kind, w.coeffs[0])
		}
	}
}

func TestApply(t *testing.T) {
	w, err := NewWindow(WindowRectangular, 4)
	if err != nil {
		t.Fatal(err)
	}
	frame := []float64{1, 2, 3, 4}
	out, err := w.Apply(frame, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range frame {
		if out[i] != frame[i] {
			t.Errorf("rectangular window altered sample %d", i)
		}
	}
	// In-place aliasing works.
	if _, err := w.Apply(frame, frame); err != nil {
		t.Fatal(err)
	}
	// Length mismatches are errors.
	if _, err := w.Apply([]float64{1}, nil); err == nil {
		t.Error("short frame accepted, want error")
	}
	if _, err := w.Apply(frame, make([]float64, 2)); err == nil {
		t.Error("short dst accepted, want error")
	}
}
