package dsp

import "fmt"

// Spectrogram is a time-frequency magnitude matrix produced by the STFT.
// Data is indexed as Data[frame][bin]; a "column" in the paper's terminology
// (one frame's spectrum) is one Data[i] slice. BinLow is the index of the
// first retained FFT bin, so absolute bin b corresponds to Data[.][b-BinLow].
type Spectrogram struct {
	// Data holds magnitudes, Data[frame][bin].
	Data [][]float64
	// SampleRate is the audio sample rate in Hz.
	SampleRate float64
	// FFTSize is the transform length used to produce each frame.
	FFTSize int
	// HopSize is the number of samples between successive frames.
	HopSize int
	// BinLow is the absolute FFT bin index of Data[.][0].
	BinLow int
}

// Frames reports the number of time frames.
func (s *Spectrogram) Frames() int { return len(s.Data) }

// Bins reports the number of retained frequency bins per frame.
func (s *Spectrogram) Bins() int {
	if len(s.Data) == 0 {
		return 0
	}
	return len(s.Data[0])
}

// BinFreq returns the center frequency in Hz of local bin index i.
func (s *Spectrogram) BinFreq(i int) float64 {
	return float64(s.BinLow+i) * s.SampleRate / float64(s.FFTSize)
}

// FreqBin returns the local bin index whose center frequency is nearest to
// f Hz. The result may be out of range if f lies outside the retained band;
// callers should clamp with Bins.
func (s *Spectrogram) FreqBin(f float64) int {
	abs := int(f*float64(s.FFTSize)/s.SampleRate + 0.5)
	return abs - s.BinLow
}

// FrameTime returns the start time in seconds of frame i.
func (s *Spectrogram) FrameTime(i int) float64 {
	return float64(i*s.HopSize) / s.SampleRate
}

// FrameDuration returns the hop interval in seconds, the time step between
// consecutive frames.
func (s *Spectrogram) FrameDuration() float64 {
	return float64(s.HopSize) / s.SampleRate
}

// Clone deep-copies the spectrogram so that destructive image-processing
// stages can preserve intermediate results.
func (s *Spectrogram) Clone() *Spectrogram {
	out := &Spectrogram{
		Data:       make([][]float64, len(s.Data)),
		SampleRate: s.SampleRate,
		FFTSize:    s.FFTSize,
		HopSize:    s.HopSize,
		BinLow:     s.BinLow,
	}
	for i, row := range s.Data {
		out.Data[i] = append([]float64(nil), row...)
	}
	return out
}

// Crop returns a new spectrogram retaining only absolute bins
// [lowBin, highBin). It validates the range against the current band.
func (s *Spectrogram) Crop(lowBin, highBin int) (*Spectrogram, error) {
	if lowBin < s.BinLow || highBin > s.BinLow+s.Bins() || lowBin >= highBin {
		return nil, fmt.Errorf("dsp: crop [%d,%d) outside retained band [%d,%d)",
			lowBin, highBin, s.BinLow, s.BinLow+s.Bins())
	}
	out := &Spectrogram{
		Data:       make([][]float64, len(s.Data)),
		SampleRate: s.SampleRate,
		FFTSize:    s.FFTSize,
		HopSize:    s.HopSize,
		BinLow:     lowBin,
	}
	lo := lowBin - s.BinLow
	hi := highBin - s.BinLow
	for i, row := range s.Data {
		out.Data[i] = append([]float64(nil), row[lo:hi]...)
	}
	return out, nil
}

// MaxValue returns the largest magnitude in the spectrogram, or 0 when the
// spectrogram is empty.
func (s *Spectrogram) MaxValue() float64 {
	maxV := 0.0
	for _, row := range s.Data {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
		}
	}
	return maxV
}
