// AVX kernel for the radix-4 DIF stages of RFFTPlan. Two butterflies per
// iteration: each 256-bit register holds two interleaved complex128
// values, so the four quarter loads/stores and the butterfly adds map
// 1:1 onto vector ops. Complex twiddle multiplies use the classic
// shuffle + vaddsubpd sequence against lane-duplicated twiddle tables
// (see newStageTwiddlesVec): with u = [ur ui] and w = c + di,
//
//	[ur·c  ui·c] ∓ [ui·d  ur·d]  =  [ur·c−ui·d  ui·c+ur·d]  =  u·w
//
// The kernel performs exactly the flops of the pure-Go loop in
// forwardDIF, in the same order, so band magnitudes are bit-identical
// (intermediate spectra may differ only in the sign of zeros, because
// t3 is formed as -(b-d) swapped rather than (d-b)).

#include "textflag.h"

// signOdd flips the sign of the odd (imaginary) lanes.
DATA signOdd<>+0(SB)/8, $0x0000000000000000
DATA signOdd<>+8(SB)/8, $0x8000000000000000
DATA signOdd<>+16(SB)/8, $0x0000000000000000
DATA signOdd<>+24(SB)/8, $0x8000000000000000
GLOBL signOdd<>(SB), RODATA|NOPTR, $32

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL $1, AX
	MOVL $0, CX
	CPUID
	// CX bit 27 = OSXSAVE, bit 28 = AVX.
	ANDL $0x18000000, CX
	CMPL CX, $0x18000000
	JNE  noavx
	MOVL $0, CX
	XGETBV
	// XCR0 bits 1 (SSE) and 2 (AVX) must both be OS-enabled.
	ANDL $6, AX
	CMPL AX, $6
	JNE  noavx
	MOVB $1, ret+0(FP)
	RET
noavx:
	MOVB $0, ret+0(FP)
	RET

// func difStageAVX(z []complex128, twv []float64, span int)
TEXT ·difStageAVX(SB), NOSPLIT, $0-56
	MOVQ z_base+0(FP), SI
	MOVQ z_len+8(FP), CX      // remaining complexes
	MOVQ twv_base+24(FP), BX
	MOVQ span+48(FP), R8      // span in complexes
	MOVQ R8, DX
	SHLQ $2, DX               // quarter stride: span/4 complexes × 16 B
	VMOVUPD signOdd<>(SB), Y8
	MOVQ SI, DI               // current block

block:
	MOVQ DI, R10              // za
	LEAQ (DI)(DX*1), R11      // zb
	LEAQ (R11)(DX*1), R12     // zc
	LEAQ (R12)(DX*1), R13     // zd
	MOVQ BX, R9               // twiddles restart every block
	MOVQ R8, AX
	SHRQ $3, AX               // span/8 = q/2 butterfly pairs

pair:
	VMOVUPD (R10), Y0         // a (two complexes)
	VMOVUPD (R11), Y1         // b
	VMOVUPD (R12), Y2         // c
	VMOVUPD (R13), Y3         // d
	VADDPD  Y2, Y0, Y4        // t0 = a+c
	VSUBPD  Y2, Y0, Y5        // t1 = a-c
	VADDPD  Y3, Y1, Y6        // t2 = b+d
	VSUBPD  Y3, Y1, Y7        // b-d
	VPERMILPD $0x5, Y7, Y7    // swap re/im within each complex
	VXORPD  Y8, Y7, Y7        // t3 = (b-d)·(-i)
	VADDPD  Y6, Y4, Y9        // y0 = t0+t2: twiddle-free
	VMOVUPD Y9, (R10)
	VSUBPD  Y6, Y4, Y9        // u2 = t0-t2
	VADDPD  Y7, Y5, Y10       // u1 = t1+t3
	VSUBPD  Y7, Y5, Y11       // u3 = t1-t3

	// y1 = u1·w1
	VMULPD  (R9), Y10, Y12
	VPERMILPD $0x5, Y10, Y13
	VMULPD  32(R9), Y13, Y13
	VADDSUBPD Y13, Y12, Y12
	VMOVUPD Y12, (R11)

	// y2 = u2·w2
	VMULPD  64(R9), Y9, Y12
	VPERMILPD $0x5, Y9, Y13
	VMULPD  96(R9), Y13, Y13
	VADDSUBPD Y13, Y12, Y12
	VMOVUPD Y12, (R12)

	// y3 = u3·w3
	VMULPD  128(R9), Y11, Y12
	VPERMILPD $0x5, Y11, Y13
	VMULPD  160(R9), Y13, Y13
	VADDSUBPD Y13, Y12, Y12
	VMOVUPD Y12, (R13)

	ADDQ $32, R10
	ADDQ $32, R11
	ADDQ $32, R12
	ADDQ $32, R13
	ADDQ $192, R9
	DECQ AX
	JNZ  pair

	LEAQ (DI)(DX*4), DI       // next block
	SUBQ R8, CX
	JNZ  block

	VZEROUPPER
	RET
