package dsp

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzBandTransform drives arbitrary PCM16 bytes and arbitrary band
// edges through every band engine and asserts two invariants: each
// engine's spectrogram matches the full-FFT reference within the
// differential tolerance, and per-frame FrameColumn calls reproduce
// Compute's columns exactly (the streaming path and the batch path must
// never diverge).
func FuzzBandTransform(f *testing.F) {
	const n = 512 // one frame; large enough for 5 radix-4 stages + unpack

	f.Add([]byte{}, uint8(0), uint8(255), uint8(0))
	f.Add(make([]byte, 2*n), uint8(10), uint8(1), uint8(1)) // silence, 1-bin band
	f.Add([]byte{0x01, 0x80, 0xff, 0x7f}, uint8(255), uint8(255), uint8(2))
	tone := make([]byte, 4*n)
	for i := 0; i < 2*n; i++ {
		v := int16(20000 * math.Sin(2*math.Pi*float64(i)/8))
		binary.LittleEndian.PutUint16(tone[2*i:], uint16(v))
	}
	f.Add(tone, uint8(60), uint8(9), uint8(3))

	windows := []WindowKind{WindowHanning, WindowHamming, WindowRectangular, WindowBlackman}
	f.Fuzz(func(t *testing.T, data []byte, lowSel, widthSel, winSel uint8) {
		// Decode PCM16 into [-1,1) and pad/trim to [n, 4n] samples so
		// Compute always has at least one frame and at most 13 hops.
		nsamp := len(data) / 2
		if nsamp > 4*n {
			nsamp = 4 * n
		}
		sig := make([]float64, nsamp)
		for i := range sig {
			sig[i] = float64(int16(binary.LittleEndian.Uint16(data[2*i:]))) / 32768
		}
		for len(sig) < n {
			sig = append(sig, 0)
		}

		low := int(lowSel) % (n / 2)
		high := low + 1 + int(widthSel)%(n/2-low)
		cfg := STFTConfig{
			SampleRate: 44100,
			FFTSize:    n,
			HopSize:    n / 4,
			Window:     windows[int(winSel)%len(windows)],
			LowBin:     low,
			HighBin:    high,
		}
		want := referenceColumns(t, cfg, sig)

		for _, eng := range []EngineKind{EngineAuto, EngineRFFT, EngineGoertzel} {
			c := cfg
			c.Engine = eng
			st, err := NewSTFT(c)
			if err != nil {
				t.Fatalf("engine=%v band=[%d,%d): %v", eng, low, high, err)
			}
			got, err := st.Compute(sig)
			if err != nil {
				t.Fatalf("engine=%v band=[%d,%d): %v", eng, low, high, err)
			}
			assertSpectrogramsClose(t, got, want, "engine=%v band=[%d,%d)", eng, low, high)

			// Streaming/batch invariance: the per-frame entry point on the
			// same STFT instance must reproduce Compute's columns exactly,
			// whatever residue state the previous frames left behind.
			for fr := range got.Data {
				start := fr * c.HopSize
				col, err := st.FrameColumn(sig[start : start+n])
				if err != nil {
					t.Fatalf("engine=%v frame %d: %v", eng, fr, err)
				}
				for b := range col {
					if col[b] != got.Data[fr][b] {
						t.Fatalf("engine=%v frame %d bin %d: FrameColumn %.17g, Compute %.17g (must be bit-identical)",
							eng, fr, b, col[b], got.Data[fr][b])
					}
				}
			}
		}
	})
}
