package dsp

import (
	"math"
	"math/rand"
	"testing"
)

// refHalfSpectrum computes the first n/2 bins of the DFT of frame through
// the full complex FFT — the reference the real-input plan must match.
func refHalfSpectrum(t testing.TB, frame []float64) []complex128 {
	t.Helper()
	plan, err := NewFFTPlan(len(frame))
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]complex128, len(frame))
	for i, v := range frame {
		buf[i] = complex(v, 0)
	}
	if err := plan.Forward(buf); err != nil {
		t.Fatal(err)
	}
	return buf[:len(frame)/2]
}

// diffTol is the differential-harness bound: per-bin agreement to 1e-9
// relative (plus 1e-9 absolute floor for near-zero bins).
const diffTol = 1e-9

// withinTol reports |a-b| <= diffTol·(1+max(|a|,|b|)).
func withinTol(a, b float64) bool {
	m := math.Abs(a)
	if mb := math.Abs(b); mb > m {
		m = mb
	}
	return math.Abs(a-b) <= diffTol*(1+m)
}

func TestRFFTMatchesFullFFT(t *testing.T) {
	for _, n := range []int{2, 4, 8, 64, 256, 1024, 8192} {
		rng := rand.New(rand.NewSource(int64(n)))
		frame := make([]float64, n)
		for i := range frame {
			frame[i] = 2*rng.Float64() - 1
		}
		plan, err := NewRFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]complex128, n/2)
		if err := plan.Transform(frame, got); err != nil {
			t.Fatal(err)
		}
		want := refHalfSpectrum(t, frame)
		for k := range want {
			if !withinTol(real(got[k]), real(want[k])) || !withinTol(imag(got[k]), imag(want[k])) {
				t.Fatalf("n=%d bin %d: rfft %v, reference %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestRFFTKnownSpectra(t *testing.T) {
	const n = 64
	plan, err := NewRFFTPlan(n)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]complex128, n/2)

	// Constant input: all energy in DC.
	frame := make([]float64, n)
	for i := range frame {
		frame[i] = 1
	}
	if err := plan.Transform(frame, dst); err != nil {
		t.Fatal(err)
	}
	if !withinTol(real(dst[0]), float64(n)) || !withinTol(imag(dst[0]), 0) {
		t.Errorf("DC bin = %v, want %d", dst[0], n)
	}
	for k := 1; k < n/2; k++ {
		if !withinTol(real(dst[k]), 0) || !withinTol(imag(dst[k]), 0) {
			t.Errorf("bin %d = %v, want 0", k, dst[k])
		}
	}

	// Pure cosine at bin 5: X[5] = n/2, everything else ~0.
	for i := range frame {
		frame[i] = math.Cos(2 * math.Pi * 5 * float64(i) / n)
	}
	if err := plan.Transform(frame, dst); err != nil {
		t.Fatal(err)
	}
	if !withinTol(real(dst[5]), float64(n)/2) || !withinTol(imag(dst[5]), 0) {
		t.Errorf("tone bin = %v, want %g", dst[5], float64(n)/2)
	}
}

func TestRFFTValidation(t *testing.T) {
	if _, err := NewRFFTPlan(0); err == nil {
		t.Error("size 0 accepted")
	}
	if _, err := NewRFFTPlan(1); err == nil {
		t.Error("size 1 accepted (no half transform exists)")
	}
	if _, err := NewRFFTPlan(48); err == nil {
		t.Error("non-power-of-two size accepted")
	}
	plan, err := NewRFFTPlan(16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Size() != 16 {
		t.Errorf("Size() = %d, want 16", plan.Size())
	}
	if err := plan.Transform(make([]float64, 8), make([]complex128, 8)); err == nil {
		t.Error("short frame accepted")
	}
	if err := plan.Transform(make([]float64, 16), make([]complex128, 4)); err == nil {
		t.Error("short dst accepted")
	}
}

// TestRFFTVectorKernelMatchesScalar pins the AVX stage kernel against the
// pure-Go loop: both perform the same flops in the same order, so band
// magnitudes must agree exactly (bit-for-bit), and spectra may differ at
// most in the sign of zeros, which withinTol absorbs.
func TestRFFTVectorKernelMatchesScalar(t *testing.T) {
	if !hasAVX {
		t.Skip("no AVX: the scalar loop is the only kernel")
	}
	for _, n := range []int{8, 16, 64, 128, 512, 2048, 8192} {
		vec, err := NewRFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		scalar, err := NewRFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		if !vec.vec {
			t.Fatal("plan did not enable the vector kernel despite AVX support")
		}
		scalar.vec = false
		rng := rand.New(rand.NewSource(int64(n) * 7))
		frame := make([]float64, n)
		for i := range frame {
			frame[i] = 2*rng.Float64() - 1
		}
		gotSpec := make([]complex128, n/2)
		wantSpec := make([]complex128, n/2)
		if err := vec.Transform(frame, gotSpec); err != nil {
			t.Fatal(err)
		}
		if err := scalar.Transform(frame, wantSpec); err != nil {
			t.Fatal(err)
		}
		for k := range wantSpec {
			if !withinTol(real(gotSpec[k]), real(wantSpec[k])) || !withinTol(imag(gotSpec[k]), imag(wantSpec[k])) {
				t.Fatalf("n=%d bin %d: vector %v, scalar %v", n, k, gotSpec[k], wantSpec[k])
			}
		}
		low, high := n/4, n/2
		vb, err := NewBandTransform(n, low, high, EngineRFFT)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := NewBandTransform(n, low, high, EngineRFFT)
		if err != nil {
			t.Fatal(err)
		}
		sb.(*rfftBand).plan.vec = false
		got := make([]float64, high-low)
		want := make([]float64, high-low)
		if err := vb.Magnitudes(frame, got); err != nil {
			t.Fatal(err)
		}
		if err := sb.Magnitudes(frame, want); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d bin %d: vector magnitude %.17g, scalar %.17g (must be bit-identical)",
					n, low+i, got[i], want[i])
			}
		}
	}
}

// TestRFFTDigitReversalRoundTrip pins the digit-reversal table: it must
// be a permutation of [0, n/2).
func TestRFFTDigitReversalRoundTrip(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 64, 128, 8192} {
		plan, err := NewRFFTPlan(n)
		if err != nil {
			t.Fatal(err)
		}
		seen := make([]bool, n/2)
		for _, pos := range plan.rev {
			if pos < 0 || pos >= n/2 || seen[pos] {
				t.Fatalf("n=%d: rev is not a permutation: %v", n, plan.rev)
			}
			seen[pos] = true
		}
	}
}
